//go:build !race

package kindle_test

// raceEnabled reports whether the race detector instruments this build; see
// race_on_test.go.
const raceEnabled = false
