// Command kindle-bench regenerates the tables and figures of the Kindle
// paper's evaluation.
//
// Usage:
//
//	kindle-bench [-scale 1.0] [-parallel N] [-fork] [-shards N] [-experiment all|tableI|tableII|fig4a|fig4b|tableIII|tableIV|fig5|intervals|image-sizes|hscc|crash-sweep|traffic|extensions] [-check]
//
// -scale shrinks footprints, trace lengths and intervals proportionally
// (0.0625 runs the whole suite in about a minute; 1.0 is paper scale).
// -parallel bounds the worker pool independent simulation runs fan out
// over (default: one worker per CPU). Each run owns its machine — clock,
// stats, RNG — so parallel execution produces byte-identical output.
// -fork boots persistence-grid cells by forking a shared copy-on-write
// snapshot of the warmed boot state instead of re-simulating it per cell;
// results are byte-identical either way. -shards routes replay-bearing
// cells that only need total simulated time through the sharded replay
// engine (sharded times are only comparable to sharded times — keep the
// value fixed when diffing reports). -check validates the published shapes
// after running.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"kindle/internal/bench"
	"kindle/internal/obs/monitor"
)

// writeFileSafe writes data through a buffered writer, propagating flush
// and close errors (a full disk must not yield a silently truncated CSV)
// and removing the partial file when the write fails.
func writeFileSafe(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	_, werr := w.Write(data)
	if werr == nil {
		werr = w.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return werr
	}
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale (1.0 = paper parameters)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent simulation runs (1 = sequential)")
	experiment := flag.String("experiment", "all", "which experiment to run")
	check := flag.Bool("check", false, "verify the published shapes")
	csvPath := flag.String("csv", "", "also write all data points as CSV (with -experiment all)")
	monitorAddr := flag.String("monitor", "", "serve live telemetry on this HTTP address (e.g. :8090): /metrics, /progress, /debug/pprof/")
	liveProgress := flag.Bool("progress", true, "render a live progress/ETA line on stderr")
	fork := flag.Bool("fork", false, "fork warmed boot snapshots (copy-on-write) across persistence-grid cells instead of cold-booting each")
	shards := flag.Int("shards", 0, "route replay-bearing cells through the sharded replay engine at this shard count (0 = plain replay)")
	flag.Parse()

	tracker := bench.NewTracker()
	opt := bench.Options{Scale: *scale, Parallel: *parallel, Progress: tracker,
		WarmFork: *fork, Shards: *shards}
	progress := func(s string) {
		if stderrIsTTY() {
			fmt.Fprint(os.Stderr, "\r\x1b[K")
		}
		fmt.Fprintln(os.Stderr, "[kindle-bench] "+s)
	}

	if *monitorAddr != "" {
		mon, err := monitor.Listen(*monitorAddr, monitor.Options{
			Progress: func() any { return tracker.Snapshot() },
			Gauges:   tracker.Gauges,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: listening on http://%s\n", mon.Addr())
	}
	if *liveProgress {
		stop := startProgressLine(tracker)
		defer stop()
	}

	run := func(e bench.Experiment, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		}
		fmt.Println(e.Render())
		if *check {
			if err := e.CheckShape(); err != nil {
				fmt.Fprintln(os.Stderr, "kindle-bench: shape check failed:", err)
				os.Exit(1)
			}
			fmt.Println("shape check: ok")
		}
	}

	switch *experiment {
	case "all":
		res, err := bench.RunAll(opt, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		if *csvPath != "" {
			if err := writeFileSafe(*csvPath, []byte(res.RenderCSV())); err != nil {
				fmt.Fprintln(os.Stderr, "kindle-bench:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "[kindle-bench] CSV written to "+*csvPath)
		}
		if *check {
			if err := res.CheckShapes(); err != nil {
				fmt.Fprintln(os.Stderr, "kindle-bench:", err)
				os.Exit(1)
			}
			fmt.Println("shape checks: all ok")
		}
	case "tableI":
		run(bench.TableI(), nil)
	case "tableII":
		r, err := bench.TableII(opt)
		run(r, err)
	case "fig4a":
		r, err := bench.Fig4a(opt)
		run(r, err)
	case "fig4b":
		r, err := bench.Fig4b(opt)
		run(r, err)
	case "tableIII":
		r, err := bench.TableIII(opt)
		run(r, err)
	case "tableIV":
		r, err := bench.TableIV(opt)
		run(r, err)
	case "fig5":
		r, err := bench.Fig5(opt)
		run(r, err)
	case "intervals":
		r, err := bench.Intervals(opt)
		run(r, err)
	case "image-sizes", "imagesizes":
		r, err := bench.ImageSizes(opt)
		run(r, err)
	case "hscc":
		tv, f6, t6, err := bench.HSCCAll(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		}
		for _, e := range []bench.Experiment{tv, f6, t6} {
			run(e, nil)
		}
	case "crash-sweep", "crashsweep":
		r, err := bench.CrashSweep(opt)
		run(r, err)
	case "traffic":
		r, err := bench.Traffic(opt)
		run(r, err)
	case "extensions":
		// Studies beyond the paper's evaluation that it points at:
		// consolidation frequency, NVM technologies, write-buffer depth,
		// context-switch interference.
		if r, err := bench.ExtConsolidation(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
		if r, err := bench.ExtNVMTech(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
		if r, err := bench.ExtWriteBuffer(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
		if r, err := bench.ExtContextSwitch(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
		if r, err := bench.ExtCheckCost(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
		if r, err := bench.ExtRecoveryTime(opt); err != nil {
			fmt.Fprintln(os.Stderr, "kindle-bench:", err)
			os.Exit(1)
		} else {
			run(r, nil)
		}
	default:
		fmt.Fprintf(os.Stderr, "kindle-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// stderrIsTTY reports whether stderr is a character device (a terminal
// that supports in-place line rewriting).
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// startProgressLine renders the tracker's progress/ETA line on stderr —
// rewritten in place once a second on a terminal, appended every ten
// seconds otherwise (so CI logs stay readable). The returned stop function
// ends the feed and terminates an in-place line with a newline.
func startProgressLine(tr *bench.Tracker) (stop func()) {
	tty := stderrIsTTY()
	period := time.Second
	if !tty {
		period = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(period)
		defer tick.Stop()
		wrote := false
		for {
			select {
			case <-done:
				if tty && wrote {
					fmt.Fprintln(os.Stderr)
				}
				return
			case <-tick.C:
				line := "[kindle-bench] " + tr.Snapshot().Line()
				wrote = true
				if tty {
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s", line)
				} else {
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}
	}()
	return func() { close(done); <-finished }
}
