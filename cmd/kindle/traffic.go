package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/obs/monitor"
	"kindle/internal/persist"
	"kindle/internal/traffic"
)

// trafficFlags carries the flag subset the traffic mode consumes.
type trafficFlags struct {
	spec    string
	tenants int
	seed    uint64
	seedSet bool
	small   bool

	persistMode string
	interval    time.Duration

	stats       bool
	statsOut    string
	eventClock  bool
	monitorAddr string
	monitorHold time.Duration
}

// trafficProgress is the /progress payload of a traffic run.
type trafficProgress struct {
	OpsDone  int64   `json:"ops_done"`
	OpsTotal int64   `json:"ops_total"`
	Fraction float64 `json:"fraction"`
	Tenants  int     `json:"tenants"`
	Done     bool    `json:"done"`
}

// runTraffic drives the multi-tenant synthetic-load engine: N gemOS
// processes time-sliced on one machine, contending for shared DRAM/NVM and
// (with -persist) checkpoint bandwidth. Same seed + spec ⇒ byte-identical
// stats dumps, under -event-clock too.
func runTraffic(fl trafficFlags) {
	specStr := fl.spec
	if specStr == "default" {
		specStr = ""
	}
	spec, err := traffic.ParseSpec(specStr)
	if err != nil {
		fatal(err)
	}
	if fl.tenants > 0 {
		spec.Tenants = fl.tenants
	}
	if fl.seedSet {
		spec.Seed = fl.seed
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	cfg := machine.DefaultConfig()
	if fl.small {
		cfg = machine.TestConfig()
	}
	cfg.EventDrivenClock = fl.eventClock
	f := core.New(cfg)

	var progDone, progTotal atomic.Int64
	var finished atomic.Bool
	var mon *monitor.Server
	if fl.monitorAddr != "" {
		progTotal.Store(int64(spec.Tenants * spec.Ops))
		mon, err = monitor.Listen(fl.monitorAddr, monitor.Options{
			Stats: f.M.Stats,
			Progress: func() any {
				p := trafficProgress{
					OpsDone:  progDone.Load(),
					OpsTotal: progTotal.Load(),
					Tenants:  spec.Tenants,
					Done:     finished.Load(),
				}
				switch {
				case p.Done:
					p.Fraction = 1
				case p.OpsTotal > 0:
					p.Fraction = float64(p.OpsDone) / float64(p.OpsTotal)
				}
				return p
			},
		})
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: listening on http://%s\n", mon.Addr())
	}

	switch fl.persistMode {
	case "":
	case "rebuild":
		_, err = f.EnablePersistence(persist.Rebuild, fl.interval)
	case "persistent":
		_, err = f.EnablePersistence(persist.Persistent, fl.interval)
	default:
		fatal(fmt.Errorf("unknown persistence scheme %q", fl.persistMode))
	}
	if err != nil {
		fatal(err)
	}
	if mgr := f.Manager(); mgr != nil {
		mgr.Start()
	}

	fmt.Printf("traffic: %d tenants, %d ops each, %s %s-loop, seed %d\n",
		spec.Tenants, spec.Ops, spec.Arrival, spec.Loop, spec.Seed)
	var onOp func(done, total int)
	if mon != nil {
		onOp = func(done, _ int) { progDone.Store(int64(done)) }
	}
	res, err := f.RunTraffic(spec, onOp)
	if err != nil {
		fatal(err)
	}
	finished.Store(true)

	fmt.Printf("completed %d ops in %.3f ms simulated (%d cycles)\n",
		res.Ops, f.M.ElapsedMillis(), f.M.Clock.Now())
	fmt.Printf("latency cycles: mean %.0f  p50 %d  p95 %d  p99 %d\n",
		res.MeanLat, res.P50, res.P95, res.P99)
	fmt.Printf("fairness (Jain, per-tenant mean latency): %.4f\n", res.Jain)
	for _, t := range res.Tenants {
		kind := "dram"
		if t.NVM {
			kind = "nvm"
		}
		fmt.Printf("  %s %-4s ops=%-6d mean=%-8.0f p99=%-8d cpu=%-10d faults=%-5d resident=%-5d switches=%d\n",
			t.Name, kind, t.Ops, t.MeanLat, t.P99, t.Acct.CPUCycles, t.Acct.Faults, t.Acct.ResidentPages, t.Acct.Switches)
	}

	if fl.stats {
		fmt.Print(f.M.Stats.Dump(""))
	}
	if fl.statsOut != "" {
		sf, err := os.Create(fl.statsOut)
		if err != nil {
			fatal(err)
		}
		werr := f.M.Stats.WriteStatsFile(sf)
		if cerr := sf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("stats written to %s\n", fl.statsOut)
	}
	if mon != nil && fl.monitorHold > 0 {
		fmt.Fprintf(os.Stderr, "monitor: run complete; holding endpoint for %s\n", fl.monitorHold)
		time.Sleep(fl.monitorHold)
	}
}
