package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/obs/monitor"
)

// Machine snapshots on the CLI: -snapshot-out freezes the framework
// mid-replay into a file (copy-on-write, so the writing run continues and
// finishes normally — its output is identical to a run without the flag);
// -snapshot-in resumes a frozen run against the same trace image and plays
// out the remainder. A resumed run's stats dump is byte-identical to the
// uninterrupted one: the snapshot restores the full architectural state and
// the replay fast-forwards the decoder to the captured position.

// snapshotFlags carries the flag subset -snapshot-in consumes.
type snapshotFlags struct {
	snapshotIn    string
	image         string
	decodeWorkers int
	stats         bool
	statsOut      string
	monitorAddr   string
	monitorHold   time.Duration
}

// writeSnapshot captures the framework at the replay's current position and
// saves it to path. The run keeps going; the frame store forks
// copy-on-write.
func writeSnapshot(f *core.Framework, rep *core.Replay, path string) {
	sf, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	werr := f.Snapshot(rep).Save(sf)
	if cerr := sf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fatal(werr)
	}
	fmt.Printf("snapshot written to %s at record %d (t=%.3f ms)\n",
		path, rep.Consumed(), f.M.ElapsedMillis())
}

// runFromSnapshot resumes a saved snapshot over the same trace image and
// replays the remaining records.
func runFromSnapshot(fl snapshotFlags) {
	if fl.image == "" {
		fatal(fmt.Errorf("-snapshot-in requires -image (the same trace the snapshot was taken from)"))
	}
	snapFile, err := os.Open(fl.snapshotIn)
	if err != nil {
		fatal(err)
	}
	snap, err := core.LoadSnapshot(snapFile)
	snapFile.Close()
	if err != nil {
		fatal(err)
	}
	src, err := openSource(fl.image, "", false, fl.decodeWorkers)
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	f, rep, err := core.RunFromSnapshot(snap, src)
	if err != nil {
		fatal(err)
	}

	var mon *monitor.Server
	var progConsumed, progTotal atomic.Int64
	var progDone atomic.Bool
	if fl.monitorAddr != "" {
		progTotal.Store(int64(rep.Total()))
		progConsumed.Store(int64(rep.Consumed()))
		mon, err = monitor.Listen(fl.monitorAddr, monitor.Options{
			Stats:  f.M.Stats,
			Gauges: mergeGauges(decodeGauges(src), memGauges(f.M)),
			Progress: func() any {
				p := replayProgress{
					RecordsReplayed: progConsumed.Load(),
					RecordsTotal:    progTotal.Load(),
					Done:            progDone.Load(),
				}
				switch {
				case p.Done:
					p.Fraction = 1
				case p.RecordsTotal > 0:
					p.Fraction = float64(p.RecordsReplayed) / float64(p.RecordsTotal)
				}
				return p
			},
		})
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: listening on http://%s\n", mon.Addr())
		rep.OnStep = func(consumed, _ int) { progConsumed.Store(int64(consumed)) }
	}

	fmt.Printf("resuming %s from snapshot at record %d (t=%.3f ms)\n",
		src.Benchmark(), rep.Consumed(), f.M.ElapsedMillis())
	if err := rep.Run(); err != nil {
		fatal(err)
	}
	if mon != nil {
		progConsumed.Store(int64(rep.Consumed()))
		progDone.Store(true)
	}

	fmt.Printf("execution time: %.3f ms simulated (%d cycles)\n", f.M.ElapsedMillis(), f.M.Clock.Now())
	fmt.Printf("kernel share:   %.1f%%\n",
		100*float64(f.M.Stats.Get("cpu.kernel_cycles"))/float64(f.M.Clock.Now()))
	if fl.stats {
		fmt.Print(f.M.Stats.Dump(""))
	}
	if fl.statsOut != "" {
		sf, err := os.Create(fl.statsOut)
		if err != nil {
			fatal(err)
		}
		werr := f.M.Stats.WriteStatsFile(sf)
		if cerr := sf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("stats written to %s\n", fl.statsOut)
	}
	if mon != nil && fl.monitorHold > 0 {
		fmt.Fprintf(os.Stderr, "monitor: run complete; holding endpoint for %s\n", fl.monitorHold)
		time.Sleep(fl.monitorHold)
	}
}

// memGauges exposes the backing store's resident footprint as /metrics
// gauges (the dense slab directory's populated-frame counter is atomic, so
// the monitor goroutine reads it race-free).
func memGauges(m *machine.Machine) func() map[string]float64 {
	b := m.Ctrl.Backing()
	return func() map[string]float64 {
		return map[string]float64{
			"kindle_mem_resident_frames": float64(b.FrameCount()),
			"kindle_mem_resident_bytes":  float64(b.ResidentBytes()),
		}
	}
}

// mergeGauges combines gauge sources, skipping nil ones. Later sources win
// on (unexpected) key collisions.
func mergeGauges(srcs ...func() map[string]float64) func() map[string]float64 {
	var live []func() map[string]float64
	for _, s := range srcs {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	return func() map[string]float64 {
		out := map[string]float64{}
		for _, s := range live {
			for k, v := range s() {
				out[k] = v
			}
		}
		return out
	}
}
