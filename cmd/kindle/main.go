// Command kindle runs one full-system simulation: it loads a disk image
// produced by kindle-prep (or traces a benchmark on the fly), boots the
// machine + gemOS, optionally enables process persistence, SSP or HSCC,
// replays the application, and reports execution statistics. With
// -crash-at it also demonstrates full process persistence: the machine
// power-fails mid-run, reboots, recovers the process from NVM and finishes
// the remaining trace.
//
// Usage:
//
//	kindle -image images/Ycsb_mem.img -persist rebuild -interval 10ms -crash-at 0.5
//	kindle -benchmark Gapbs_pr -small -ssp 5ms
//	kindle -benchmark Ycsb_mem -small -hscc 25
//	kindle -image images/Ycsb_mem.img -snapshot-out warm.snap -snapshot-at 4096
//	kindle -image images/Ycsb_mem.img -snapshot-in warm.snap
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"kindle/internal/core"
	"kindle/internal/hscc"
	"kindle/internal/machine"
	"kindle/internal/obs"
	"kindle/internal/obs/monitor"
	"kindle/internal/persist"
	"kindle/internal/prep"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/trace"
)

func main() {
	image := flag.String("image", "", "disk image to replay (from kindle-prep)")
	benchmark := flag.String("benchmark", "", "trace a benchmark on the fly instead of -image")
	small := flag.Bool("small", false, "reduced workload configuration")
	persistMode := flag.String("persist", "", "process persistence scheme: rebuild or persistent")
	interval := flag.Duration("interval", 10*time.Millisecond, "checkpoint interval")
	crashAt := flag.Float64("crash-at", 0, "crash after this fraction of the trace (0 = no crash)")
	sspInterval := flag.Duration("ssp", 0, "enable SSP with this consistency interval")
	hsccThreshold := flag.Uint("hscc", 0, "enable HSCC with this fetch threshold")
	stats := flag.Bool("stats", false, "dump simulator statistics")
	statsOut := flag.String("stats-out", "", "write gem5-format stats file here")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON here (open in chrome://tracing)")
	traceCats := flag.String("trace-categories", "all", "comma-separated trace categories: mem,cache,tlb,ptwalk,checkpoint,recovery,syscall or all")
	statsInterval := flag.Duration("stats-interval", 0, "dump gem5 interval stat blocks every simulated duration (0 = off)")
	monitorAddr := flag.String("monitor", "", "serve live telemetry on this HTTP address (e.g. :8090): /metrics, /events, /progress, /debug/pprof/")
	monitorHold := flag.Duration("monitor-hold", 0, "keep the monitor endpoint serving this long after the run completes")
	decodeWorkers := flag.Int("decode-workers", 0, "v2 chunk-decode worker pool size (0 = GOMAXPROCS, 1 = serial)")
	eventClock := flag.Bool("event-clock", false, "advance the clock event-to-event instead of stepping cycle groups; stats are identical either way, idle-heavy runs finish faster")
	idleAfter := flag.Duration("idle-after", 0, "keep the machine idling this much simulated time after the replay (timers keep firing); mainly for exercising -event-clock")
	idleTick := flag.Duration("idle-tick", 10*time.Microsecond, "cycle-group grain for -idle-after idling")
	shards := flag.Int("shards", 0, "replay the trace sharded across N machine instances (0 = off); requires a v2 -image")
	segmentChunks := flag.Int("segment-chunks", 0, "sharded partition grain in chunks (0 = default); affects results, unlike -shards")
	shardStatsDir := flag.String("shard-stats-dir", "", "with -shards, also write each segment's stats file into this directory")
	snapshotOut := flag.String("snapshot-out", "", "freeze the machine into this file mid-replay (copy-on-write; the run still completes normally)")
	snapshotAt := flag.Int("snapshot-at", 0, "with -snapshot-out, take the snapshot after this many records (rounded up to a tick boundary; 0 = right after launch)")
	snapshotIn := flag.String("snapshot-in", "", "resume a run frozen by -snapshot-out; requires -image pointing at the same trace")
	trafficSpec := flag.String("traffic", "", "run the multi-tenant traffic engine with this spec (\"default\" or key=value;... — see internal/traffic.ParseSpec)")
	tenants := flag.Int("tenants", 0, "with -traffic, override the spec's tenant count")
	seed := flag.Uint64("seed", 0, "with -traffic, override the spec's RNG seed")
	flag.Parse()

	if *snapshotOut != "" || *snapshotIn != "" {
		// Snapshots capture the machine + kernel + persistence manager +
		// replay position. Stacks whose pending events cannot be re-armed by
		// name (SSP, HSCC, interval dumps, scheduler ticks) and modes that
		// fork their own machines are refused up front, instead of failing
		// at resume time.
		switch {
		case *trafficSpec != "" || *shards > 0:
			fatal(fmt.Errorf("-snapshot-out/-snapshot-in are incompatible with -traffic/-shards (snapshots capture one replaying machine)"))
		case *sspInterval > 0 || *hsccThreshold > 0:
			fatal(fmt.Errorf("-snapshot-out/-snapshot-in are incompatible with -ssp/-hscc (their pending events cannot be re-armed on resume)"))
		case *crashAt > 0:
			fatal(fmt.Errorf("-snapshot-out/-snapshot-in are incompatible with -crash-at"))
		case *traceOut != "" || *statsInterval > 0:
			fatal(fmt.Errorf("-snapshot-out/-snapshot-in are incompatible with -trace-out/-stats-interval"))
		case *idleAfter > 0:
			fatal(fmt.Errorf("-snapshot-out/-snapshot-in are incompatible with -idle-after"))
		}
	}
	if *snapshotIn != "" {
		// The snapshot pins the persistence scheme and the clock engine; the
		// flags that would re-choose them are refused rather than silently
		// ignored.
		if *persistMode != "" {
			fatal(fmt.Errorf("-snapshot-in restores the persistence state captured in the snapshot; drop -persist"))
		}
		if *snapshotOut != "" {
			fatal(fmt.Errorf("-snapshot-in and -snapshot-out are mutually exclusive"))
		}
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "event-clock" {
				fatal(fmt.Errorf("-snapshot-in restores the clock engine captured in the snapshot; drop -event-clock"))
			}
		})
		runFromSnapshot(snapshotFlags{
			snapshotIn:    *snapshotIn,
			image:         *image,
			decodeWorkers: *decodeWorkers,
			stats:         *stats,
			statsOut:      *statsOut,
			monitorAddr:   *monitorAddr,
			monitorHold:   *monitorHold,
		})
		return
	}

	if *trafficSpec != "" {
		// The traffic engine generates its own load on one machine; replay
		// inputs, sharding and the replay-attached prototypes don't apply.
		switch {
		case *image != "" || *benchmark != "":
			fatal(fmt.Errorf("-traffic generates synthetic load; it is incompatible with -image/-benchmark"))
		case *shards > 0:
			fatal(fmt.Errorf("-traffic is incompatible with -shards (one machine, many tenants)"))
		case *sspInterval > 0 || *hsccThreshold > 0:
			fatal(fmt.Errorf("-traffic is incompatible with -ssp/-hscc (prototypes attach to a replayed process)"))
		case *crashAt > 0:
			fatal(fmt.Errorf("-traffic is incompatible with -crash-at (crash points are trace fractions)"))
		case *traceOut != "" || *statsInterval > 0:
			fatal(fmt.Errorf("-traffic is incompatible with -trace-out/-stats-interval"))
		case *idleAfter > 0:
			fatal(fmt.Errorf("-traffic is incompatible with -idle-after (the engine idles between arrivals itself)"))
		}
		seedSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "seed" {
				seedSet = true
			}
		})
		runTraffic(trafficFlags{
			spec:        *trafficSpec,
			tenants:     *tenants,
			seed:        *seed,
			seedSet:     seedSet,
			small:       *small,
			persistMode: *persistMode,
			interval:    *interval,
			stats:       *stats,
			statsOut:    *statsOut,
			eventClock:  *eventClock,
			monitorAddr: *monitorAddr,
			monitorHold: *monitorHold,
		})
		return
	}

	if *shards > 0 {
		// Sharded mode runs N independent machines; the single-machine
		// features cannot meaningfully span them.
		switch {
		case *benchmark != "":
			fatal(fmt.Errorf("-shards replays an on-disk v2 image; use -image, not -benchmark"))
		case *persistMode != "" || *crashAt > 0:
			fatal(fmt.Errorf("-shards is incompatible with -persist/-crash-at (persistence is per-machine)"))
		case *sspInterval > 0 || *hsccThreshold > 0:
			fatal(fmt.Errorf("-shards is incompatible with -ssp/-hscc (prototypes attach to one machine)"))
		case *traceOut != "" || *statsInterval > 0:
			fatal(fmt.Errorf("-shards is incompatible with -trace-out/-stats-interval"))
		case *idleAfter > 0:
			fatal(fmt.Errorf("-shards is incompatible with -idle-after (idling is per-machine)"))
		}
		runSharded(shardedFlags{
			image:       *image,
			shards:      *shards,
			segChunks:   *segmentChunks,
			statsDir:    *shardStatsDir,
			stats:       *stats,
			statsOut:    *statsOut,
			eventClock:  *eventClock,
			monitorAddr: *monitorAddr,
			monitorHold: *monitorHold,
		})
		return
	}

	src, err := openSource(*image, *benchmark, *small, *decodeWorkers)
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	cfg := machine.DefaultConfig()
	cfg.EventDrivenClock = *eventClock
	if *traceOut != "" {
		mask, err := obs.ParseCategories(*traceCats)
		if err != nil {
			fatal(err)
		}
		if mask == 0 {
			fatal(fmt.Errorf("-trace-out set but -trace-categories selects nothing"))
		}
		cfg.Trace = obs.Config{Categories: mask}
	}
	f := core.New(cfg)

	// Live monitor: an optional HTTP endpoint over the running simulation.
	// With -monitor unset nothing below runs — no hub, no goroutines, no
	// hot-path cost.
	var hub *monitor.Hub
	var mon *monitor.Server
	var progConsumed, progTotal atomic.Int64
	var progDone atomic.Bool
	if *monitorAddr != "" {
		hub = monitor.NewHub()
		f.M.Tracer.SetSink(hub)
		progTotal.Store(-1)
		mon, err = monitor.Listen(*monitorAddr, monitor.Options{
			Stats:  f.M.Stats,
			Hub:    hub,
			Gauges: mergeGauges(decodeGauges(src), memGauges(f.M)),
			Progress: func() any {
				p := replayProgress{
					RecordsReplayed: progConsumed.Load(),
					RecordsTotal:    progTotal.Load(),
					Done:            progDone.Load(),
				}
				switch {
				case p.Done:
					p.Fraction = 1
				case p.RecordsTotal > 0:
					p.Fraction = float64(p.RecordsReplayed) / float64(p.RecordsTotal)
				}
				return p
			},
		})
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: listening on http://%s\n", mon.Addr())
	}

	// Interval stats: a recurring simulated-time event snapshots counter
	// deltas à la `m5 dumpstats`. Crash drains the event queue, so the
	// post-recovery path re-arms it below.
	var intervalBuf bytes.Buffer
	var armIntervalDump func()
	if *statsInterval > 0 {
		iv := sim.FromDuration(*statsInterval)
		armIntervalDump = func() {
			f.M.Events.Schedule(f.M.Clock.Now()+iv, "stats.interval", func(sim.Cycles) {
				mark := intervalBuf.Len()
				if err := f.M.Stats.DumpInterval(&intervalBuf); err != nil {
					fatal(err)
				}
				if hub != nil {
					// Hand the hub its own copy: intervalBuf keeps growing.
					block := append([]byte(nil), intervalBuf.Bytes()[mark:]...)
					hub.PublishInterval(f.M.Stats.IntervalCount(), block)
				}
				armIntervalDump()
			})
		}
		armIntervalDump()
	}

	var mgr *persist.Manager
	switch *persistMode {
	case "":
	case "rebuild":
		mgr, err = f.EnablePersistence(persist.Rebuild, *interval)
	case "persistent":
		mgr, err = f.EnablePersistence(persist.Persistent, *interval)
	default:
		fatal(fmt.Errorf("unknown persistence scheme %q", *persistMode))
	}
	if err != nil {
		fatal(err)
	}

	p, rep, err := f.LaunchStream(src)
	if err != nil {
		fatal(err)
	}
	if mon != nil {
		progTotal.Store(int64(rep.Total()))
		rep.OnStep = func(consumed, _ int) { progConsumed.Store(int64(consumed)) }
	}

	var sspCtl *ssp.Controller
	if *sspInterval > 0 {
		cfg := ssp.DefaultConfig()
		cfg.ConsistencyInterval = sim.FromDuration(*sspInterval)
		if sspCtl, err = f.EnableSSP(cfg); err != nil {
			fatal(err)
		}
		lo, hi := rep.NVMRange()
		sspCtl.Enable(lo, hi)
	}
	var hsccCtl *hscc.Controller
	if *hsccThreshold > 0 {
		cfg := hscc.DefaultConfig()
		cfg.FetchThreshold = uint32(*hsccThreshold)
		if hsccCtl, err = f.EnableHSCC(p, cfg); err != nil {
			fatal(err)
		}
		hsccCtl.Start()
	}
	if mgr != nil {
		mgr.Start()
	}

	total := rep.Total()
	crashPoint := 0
	if *crashAt > 0 {
		if total < 0 {
			fatal(fmt.Errorf("-crash-at needs the trace length, which this source cannot report"))
		}
		crashPoint = int(float64(total) * *crashAt)
	}
	if total >= 0 {
		fmt.Printf("replaying %s: %d records on %s\n", src.Benchmark(), total, "3GB DRAM + 2GB NVM @ 3GHz")
	} else {
		fmt.Printf("replaying %s (streamed) on %s\n", src.Benchmark(), "3GB DRAM + 2GB NVM @ 3GHz")
	}

	if *snapshotOut != "" {
		// Round the capture point up to a tick boundary: tick firing is
		// consumed-count-based, so a boundary-aligned snapshot resumes on
		// exactly the cold run's event trajectory.
		at := *snapshotAt
		if te := rep.TickEvery; te > 0 && at%te != 0 {
			at += te - at%te
		}
		if at > 0 {
			if _, err := rep.Step(at); err != nil {
				fatal(err)
			}
		}
		writeSnapshot(f, rep, *snapshotOut)
	}

	if crashPoint > 0 && mgr != nil {
		if _, err := rep.Step(crashPoint); err != nil {
			fatal(err)
		}
		mgr.Checkpoint()
		fmt.Printf("-- crash injected at record %d (t=%.3f ms) --\n", crashPoint, f.M.ElapsedMillis())
		f.Crash()
		procs, err := f.Recover(*interval)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- recovered %d process(es); resuming --\n", len(procs))
		if len(procs) > 0 {
			if err := rep.Rebind(procs[0]); err != nil {
				fatal(err)
			}
			f.K.Switch(procs[0])
		}
		if mgr = f.Manager(); mgr != nil {
			mgr.Start()
		}
		if armIntervalDump != nil {
			armIntervalDump()
		}
	}
	if err := rep.Run(); err != nil && crashPoint == 0 {
		fatal(err)
	} else if err != nil {
		// After a crash the replay cursor may point into VMAs restored
		// from the checkpoint; surviving NVM areas keep working.
		fmt.Println("note: post-crash replay stopped:", err)
	}

	// Optional idle tail: simulated time keeps passing with no instructions
	// in flight, so checkpoint/migration/scheduler timers keep firing. This
	// is the idle-skip case the event-driven clock exists for; the stats are
	// identical either way.
	if *idleAfter > 0 {
		f.RunIdle(*idleAfter, *idleTick)
	}

	if mon != nil {
		progConsumed.Store(int64(rep.Consumed()))
		progDone.Store(true)
	}

	if sspCtl != nil {
		sspCtl.Disable()
	}
	if hsccCtl != nil {
		hsccCtl.Stop()
	}

	fmt.Printf("execution time: %.3f ms simulated (%d cycles)\n", f.M.ElapsedMillis(), f.M.Clock.Now())
	fmt.Printf("kernel share:   %.1f%%\n",
		100*float64(f.M.Stats.Get("cpu.kernel_cycles"))/float64(f.M.Clock.Now()))
	if *stats {
		fmt.Print(f.M.Stats.Dump(""))
	}
	// Close the last interval so the per-block deltas sum to the final
	// totals, then emit: the totals block first (ParseStatsFile reads it),
	// interval blocks after (ParseStatsBlocks reads them all).
	if *statsInterval > 0 {
		if err := f.M.Stats.DumpInterval(&intervalBuf); err != nil {
			fatal(err)
		}
	}
	if *statsOut != "" {
		sf, err := os.Create(*statsOut)
		if err != nil {
			fatal(err)
		}
		werr := f.M.Stats.WriteStatsFile(sf)
		if werr == nil && intervalBuf.Len() > 0 {
			_, werr = sf.Write(intervalBuf.Bytes())
		}
		if cerr := sf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("stats written to %s (%d interval blocks)\n", *statsOut, f.M.Stats.IntervalCount())
	} else if intervalBuf.Len() > 0 {
		fmt.Print(intervalBuf.String())
	}
	if *traceOut != "" {
		if d := f.M.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr,
				"kindle: warning: trace ring wrapped: %d events dropped (ring holds %d; the written trace is the most recent window of the run)\n",
				d, f.M.Tracer.Cap())
		}
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		werr := f.M.Tracer.WriteChrome(tf)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("trace written to %s (%d events, %d dropped)\n", *traceOut, f.M.Tracer.Len(), f.M.Tracer.Dropped())
	}
	if mon != nil && *monitorHold > 0 {
		fmt.Fprintf(os.Stderr, "monitor: run complete; holding endpoint for %s\n", *monitorHold)
		time.Sleep(*monitorHold)
	}
}

// replayProgress is the /progress payload of a single kindle run.
type replayProgress struct {
	RecordsReplayed int64   `json:"records_replayed"`
	RecordsTotal    int64   `json:"records_total"` // -1: source cannot tell
	Fraction        float64 `json:"fraction"`
	Done            bool    `json:"done"`
}

// openSource yields the replay's record stream: a disk image (either
// binary format, sniffed from the header, decoded chunk-by-chunk) or an
// on-the-fly traced benchmark.
func openSource(path, benchmark string, small bool, decodeWorkers int) (trace.RecordSource, error) {
	switch {
	case path != "":
		return prep.OpenImageStreamConfig(path, trace.StreamConfig{DecodeWorkers: decodeWorkers})
	case benchmark != "":
		img, err := core.Prepare(benchmark, small)
		if err != nil {
			return nil, err
		}
		return trace.NewImageSource(img), nil
	default:
		return nil, fmt.Errorf("one of -image or -benchmark is required")
	}
}

// decodeGauges returns a /metrics gauge source for the decode pool's stall
// counters, or nil when the source has no pool (serial or materialized).
func decodeGauges(src trace.RecordSource) func() map[string]float64 {
	if is, ok := src.(*prep.ImageStream); ok {
		src = is.DecodeSource()
	}
	ds, ok := src.(trace.DecodeStatsSource)
	if !ok {
		return nil
	}
	return func() map[string]float64 {
		st := ds.DecodeStats()
		return map[string]float64{
			"kindle_decode_workers":               float64(st.Workers),
			"kindle_decode_chunks":                float64(st.Chunks),
			"kindle_decode_reorder_stalls":        float64(st.ReorderStalls),
			"kindle_decode_reorder_stall_seconds": float64(st.ReorderStallNs) / 1e9,
			"kindle_decode_buffer_stalls":         float64(st.BufferStalls),
			"kindle_decode_buffer_stall_seconds":  float64(st.BufferStallNs) / 1e9,
		}
	}
}

// shardedFlags carries the flag subset the sharded mode consumes.
type shardedFlags struct {
	image       string
	shards      int
	segChunks   int
	statsDir    string
	stats       bool
	statsOut    string
	eventClock  bool
	monitorAddr string
	monitorHold time.Duration
}

// shardProgress is the /progress payload of a sharded run.
type shardProgress struct {
	RecordsReplayed int64   `json:"records_replayed"`
	RecordsTotal    int64   `json:"records_total"`
	Fraction        float64 `json:"fraction"`
	Shards          int     `json:"shards"`
	Done            bool    `json:"done"`
}

// runSharded replays a v2 image partitioned across independent machine
// instances (core.ReplaySharded) and reports the deterministically merged
// stats. Persistence, crash injection, SSP/HSCC and event tracing apply to
// a single machine and are not available here.
func runSharded(fl shardedFlags) {
	if fl.image == "" {
		fatal(fmt.Errorf("-shards requires -image (a v2 disk image)"))
	}
	var progDone, progTotal atomic.Int64
	var finished atomic.Bool
	var mon *monitor.Server
	if fl.monitorAddr != "" {
		progTotal.Store(-1)
		var err error
		mon, err = monitor.Listen(fl.monitorAddr, monitor.Options{
			Progress: func() any {
				p := shardProgress{
					RecordsReplayed: progDone.Load(),
					RecordsTotal:    progTotal.Load(),
					Shards:          fl.shards,
					Done:            finished.Load(),
				}
				switch {
				case p.Done:
					p.Fraction = 1
				case p.RecordsTotal > 0:
					p.Fraction = float64(p.RecordsReplayed) / float64(p.RecordsTotal)
				}
				return p
			},
			Gauges: func() map[string]float64 {
				done, total := progDone.Load(), progTotal.Load()
				frac := 0.0
				if total > 0 {
					frac = float64(done) / float64(total)
				}
				return map[string]float64{
					"kindle_shard_records_replayed": float64(done),
					"kindle_shard_records_total":    float64(total),
					"kindle_shard_fraction":         frac,
					"kindle_shards":                 float64(fl.shards),
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: listening on http://%s\n", mon.Addr())
	}

	start := time.Now()
	cfg := machine.DefaultConfig()
	cfg.EventDrivenClock = fl.eventClock
	res, err := core.ReplayShardedFile(fl.image, core.ShardedOptions{
		Shards:        fl.shards,
		SegmentChunks: fl.segChunks,
		Config:        &cfg,
		OnProgress: func(done, total int) {
			progDone.Store(int64(done))
			progTotal.Store(int64(total))
		},
	})
	if err != nil {
		fatal(err)
	}
	finished.Store(true)
	progDone.Store(int64(res.Records))
	elapsed := time.Since(start)
	fmt.Printf("sharded replay: %d records, %d segments across %d shards in %.2fs (%.2fM records/sec)\n",
		res.Records, len(res.Segments), res.Shards, elapsed.Seconds(),
		float64(res.Records)/elapsed.Seconds()/1e6)

	if fl.stats {
		fmt.Print(res.Stats.Dump(""))
	}
	if fl.statsOut != "" {
		sf, err := os.Create(fl.statsOut)
		if err != nil {
			fatal(err)
		}
		werr := res.Stats.WriteStatsFile(sf)
		if cerr := sf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("merged stats written to %s\n", fl.statsOut)
	}
	if fl.statsDir != "" {
		if err := os.MkdirAll(fl.statsDir, 0o755); err != nil {
			fatal(err)
		}
		for i, seg := range res.Segments {
			path := filepath.Join(fl.statsDir, fmt.Sprintf("segment-%04d.stats", i))
			sf, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			werr := seg.Stats.WriteStatsFile(sf)
			if cerr := sf.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatal(werr)
			}
		}
		fmt.Printf("%d segment stats files written to %s\n", len(res.Segments), fl.statsDir)
	}
	if mon != nil && fl.monitorHold > 0 {
		fmt.Fprintf(os.Stderr, "monitor: run complete; holding endpoint for %s\n", fl.monitorHold)
		time.Sleep(fl.monitorHold)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kindle:", err)
	os.Exit(1)
}
