// Command kindle-trace converts between Kindle's binary disk-image format
// and the human-readable text trace format, and prints summaries — the
// escape hatch for inspecting traces, diffing them in review, or importing
// externally produced ones (ChampSim-style trace interop).
//
// Usage:
//
//	kindle-trace -in images/Ycsb_mem.img -summary
//	kindle-trace -in images/Ycsb_mem.img -out trace.txt            # bin → text
//	kindle-trace -in trace.txt -text-in -out images/custom.img     # text → bin
package main

import (
	"flag"
	"fmt"
	"os"

	"kindle/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace file")
	out := flag.String("out", "", "output trace file (extension-independent; format by flags)")
	textIn := flag.Bool("text-in", false, "input is the text format (default: binary)")
	textOut := flag.Bool("text-out", true, "output in the text format (false: binary)")
	format := flag.String("format", "v1", "binary output format: v1 (flat) or v2 (chunked+compressed)")
	summary := flag.Bool("summary", false, "print a summary of the trace")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "kindle-trace: -in required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var img *trace.Image
	if *textIn {
		img, err = trace.DecodeText(f)
	} else {
		img, err = trace.Decode(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	if *summary || *out == "" {
		r, w := img.Mix()
		fmt.Printf("benchmark: %s\n", img.Benchmark)
		fmt.Printf("records:   %d (%.1f%% read / %.1f%% write)\n", len(img.Records), r, w)
		fmt.Printf("footprint: %d KiB in %d areas\n", img.Footprint()/1024, len(img.Areas))
		for i, a := range img.Areas {
			kind := "DRAM"
			if a.NVM {
				kind = "NVM"
			}
			fmt.Printf("  area %2d: %-16s %8d KiB  %s\n", i, a.Name, a.Size/1024, kind)
		}
	}
	if *out == "" {
		return
	}
	o, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer o.Close()
	switch {
	case *textOut:
		err = trace.EncodeText(o, img)
	case *format == "v2":
		err = trace.EncodeV2(o, img, trace.StreamOptions{})
	case *format == "v1":
		err = trace.Encode(o, img)
	default:
		err = fmt.Errorf("unknown -format %q (want v1 or v2)", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("written:", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kindle-trace:", err)
	os.Exit(1)
}
