// Command kindle-prep is the preparation component's CLI: it traces a
// Table II benchmark (the Pin stand-in), captures its memory layout (the
// /proc/pid/maps + SniP capture) and generates the disk image plus the
// gemOS template code for the simulation component.
//
// Usage:
//
//	kindle-prep -benchmark Ycsb_mem -out ./images [-small] [-maps] [-format v2]
//	kindle-prep -convert images/Ycsb_mem.img -format v2 -o images/Ycsb_mem.v2.img
package main

import (
	"flag"
	"fmt"
	"os"

	"kindle/internal/prep"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark to trace (Gapbs_pr, G500_sssp, Ycsb_mem)")
	out := flag.String("out", "images", "output directory for the disk image and template")
	small := flag.Bool("small", false, "use the reduced test-scale configuration")
	maps := flag.Bool("maps", false, "print the captured /proc-style maps layout")
	list := flag.Bool("list", false, "list available benchmarks")
	format := flag.String("format", prep.FormatV1, "disk-image format: v1 (flat) or v2 (chunked+compressed, streamed)")
	convert := flag.String("convert", "", "convert an existing image to -format instead of tracing")
	convOut := flag.String("o", "", "output path for -convert")
	flag.Parse()

	if *list {
		for _, b := range prep.Benchmarks() {
			fmt.Println(b)
		}
		return
	}
	if *convert != "" {
		if *convOut == "" {
			fmt.Fprintln(os.Stderr, "kindle-prep: -convert requires -o <output path>")
			os.Exit(2)
		}
		n, err := prep.ConvertImage(*convert, *convOut, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kindle-prep:", err)
			os.Exit(1)
		}
		fmt.Printf("converted %s -> %s (%s, %d records)\n", *convert, *convOut, *format, n)
		return
	}
	if *benchmark == "" {
		fmt.Fprintln(os.Stderr, "kindle-prep: -benchmark required (see -list)")
		os.Exit(2)
	}
	d := &prep.Driver{OutDir: *out, Small: *small, Format: *format}
	res, err := d.Run(*benchmark)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kindle-prep:", err)
		os.Exit(1)
	}
	fmt.Printf("traced %s: %d records, %d areas, %.0f%% read / %.0f%% write, footprint %d KiB\n",
		*benchmark, res.Records, len(res.Image.Areas), res.ReadPct, res.WritePct, res.Image.Footprint()/1024)
	fmt.Println("disk image:", res.ImagePath)
	fmt.Println("template:  ", res.TemplatePath)
	if *maps {
		fmt.Print(res.MapsText)
	}
}
