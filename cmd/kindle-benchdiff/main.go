// Command kindle-benchdiff compares two bench report JSON files (see `make
// bench` and BENCH_replay.json) and exits non-zero on a throughput
// regression beyond the failure threshold. CI's bench-regression job runs
// it against the committed snapshot; throughputs are normalized by each
// report's gomaxprocs so differently-sized runners compare sanely.
//
// Usage:
//
//	kindle-benchdiff -base BENCH_replay.json -fresh /tmp/BENCH_fresh.json
package main

import (
	"flag"
	"fmt"
	"os"

	"kindle/internal/bench"
)

func main() {
	base := flag.String("base", "BENCH_replay.json", "committed baseline report")
	fresh := flag.String("fresh", "", "freshly measured report")
	warn := flag.Float64("warn", 0.10, "warn when a metric drops more than this fraction")
	fail := flag.Float64("fail", 0.20, "fail when a metric drops more than this fraction")
	ratioWarn := flag.Float64("ratio-warn", 0.10, "warn when the stream/materialized throughput ratio drops more than this fraction (0 disables)")
	ratioFail := flag.Float64("ratio-fail", 0.20, "fail when the stream/materialized throughput ratio drops more than this fraction (0 disables)")
	minRatio := flag.Float64("min-ratio", 1.0, "fail when the fresh stream/materialized ratio is below this absolute floor; set 0 on hosts without a spare core, where the pipelined decoder cannot hide decode cost")
	normEnv := flag.Bool("normalize-env", false, "compare reports from different gomaxprocs/suite_scale/shards/decode_workers/fork environments, normalizing throughput per proc (refused otherwise)")
	flag.Parse()

	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "kindle-benchdiff: -fresh required")
		os.Exit(2)
	}
	b, err := bench.LoadReport(*base)
	if err != nil {
		fatal(err)
	}
	f, err := bench.LoadReport(*fresh)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("base:  %.0f rec/s (stream %.0f, ratio %.2f) on %d procs\n", b.RecordsPerSec, b.StreamRecordsPerSec, b.Ratio(), b.GOMAXPROCS)
	fmt.Printf("       %s\n", b.Env)
	fmt.Printf("fresh: %.0f rec/s (stream %.0f, ratio %.2f) on %d procs\n", f.RecordsPerSec, f.StreamRecordsPerSec, f.Ratio(), f.GOMAXPROCS)
	fmt.Printf("       %s\n", f.Env)
	warnings, err := bench.CompareReports(b, f, bench.CompareOptions{
		WarnFrac:      *warn,
		FailFrac:      *fail,
		RatioWarnFrac: *ratioWarn,
		RatioFailFrac: *ratioFail,
		MinRatio:      *minRatio,
		NormalizeEnv:  *normEnv,
	})
	for _, w := range warnings {
		fmt.Println("warning:", w)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("bench comparison ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kindle-benchdiff:", err)
	os.Exit(1)
}
