package kindle_test

// Traffic smoke test (`make trafficsmoke`, part of `make check`): build the
// real kindle binary and run the same seeded multi-tenant traffic spec
// three times — twice stepped, once with -event-clock — requiring all three
// stats dumps to be byte-identical. This pins the traffic engine's
// determinism contract end to end: same seed + spec ⇒ the same arrivals,
// the same schedule, the same dump, whichever clock engine runs it.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestTrafficSmoke(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kindle")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/kindle").CombinedOutput(); err != nil {
		t.Fatalf("building cmd/kindle: %v\n%s", err, out)
	}

	const spec = "tenants=6;ops=400;mix=scan:0.2,point:0.7,write:0.1;footprint=128KiB"
	runs := []struct {
		name  string
		extra []string
	}{
		{"stepped-a", nil},
		{"stepped-b", nil},
		{"event", []string{"-event-clock"}},
	}
	dumps := make([][]byte, len(runs))
	for i, r := range runs {
		statsOut := filepath.Join(dir, "stats."+r.name)
		args := append([]string{
			"-traffic", spec,
			"-seed", "7",
			"-small",
			"-persist", "rebuild",
			"-interval", "300us",
			"-stats-out", statsOut,
		}, r.extra...)
		if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("kindle (%s): %v\n%s", r.name, err, out)
		}
		data, err := os.ReadFile(statsOut)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s run wrote an empty stats file", r.name)
		}
		if !bytes.Contains(data, []byte("traffic.t0005.lat::samples")) {
			t.Fatalf("%s stats file lacks per-tenant latency histograms", r.name)
		}
		dumps[i] = data
	}
	for i := 1; i < len(runs); i++ {
		if bytes.Equal(dumps[0], dumps[i]) {
			continue
		}
		al := bytes.Split(dumps[0], []byte("\n"))
		bl := bytes.Split(dumps[i], []byte("\n"))
		for j := 0; j < len(al) && j < len(bl); j++ {
			if !bytes.Equal(al[j], bl[j]) {
				t.Fatalf("stats dumps diverge (%s vs %s) at line %d:\n %s: %s\n %s: %s",
					runs[0].name, runs[i].name, j+1, runs[0].name, al[j], runs[i].name, bl[j])
			}
		}
		t.Fatalf("stats dumps differ in length (%s vs %s): %d vs %d lines",
			runs[0].name, runs[i].name, len(al), len(bl))
	}
}
