package kindle_test

// Zero-allocation guards for the replay fast path. The perf work in the
// replay engine (translation cache, MRU probes, flat cache/TLB backing,
// pooled persist-domain buffers, recycled stream chunk buffers) holds only
// if the steady state stays allocation-free — a single escaping value on
// the per-record path costs more than the optimizations save. These tests
// pin that property in CI (`make allocguard`, part of `make check`): they
// warm the simulator past the faulting/buffer-growing phase, then require
// testing.AllocsPerRun to observe zero allocations per run.

import (
	"bytes"
	"testing"

	"kindle/internal/core"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// TestReplayStepZeroAlloc: once the working set is faulted in, stepping the
// materialized replay (TLB → page table → caches → memory, kernel ticking)
// must not allocate.
func TestReplayStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := core.NewDefault()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: fault in the working set, grow the persist-domain buffer
	// pool and the allocator map to their high-water marks.
	if _, err := rep.Step(20_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := rep.Step(64); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state replay step allocates %.1f times per 64 records, want 0", avg)
	}
}

// TestStreamNextZeroAlloc: after the decode buffers reach chunk size, the
// v2 streamed source (including its read-ahead goroutine: chunk read,
// DEFLATE inflate, varint decode) must not allocate per batch.
func TestStreamNextZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const (
		chunkRecs = 1024
		nChunks   = 128
	)
	img := &trace.Image{
		Benchmark: "allocguard",
		Areas:     []trace.Area{{Name: "heap0", Size: 1 << 20, Write: true}},
	}
	for i := 0; i < chunkRecs*nChunks; i++ {
		img.Records = append(img.Records, trace.Record{
			Period: uint64(i),
			Offset: uint64(i*61) % ((1 << 20) - 8),
			Op:     trace.Op(i & 1),
			Size:   8,
		})
	}
	var buf bytes.Buffer
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{ChunkRecords: chunkRecs}); err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Warm-up: the first batches grow the disk/raw/record buffers; the
	// chunks that follow reuse them.
	for i := 0; i < 8; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		batch, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != chunkRecs {
			t.Fatalf("batch of %d records, want %d", len(batch), chunkRecs)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state stream decode allocates %.1f times per chunk, want 0", avg)
	}
}

// TestStreamNextZeroAllocPipelined: the same guard for the pipelined
// decoder. AllocsPerRun counts mallocs across ALL goroutines, so this pins
// the whole pool — reader framing, worker inflate+decode, emitter reorder —
// to recycled buffers once the pools are warm.
func TestStreamNextZeroAllocPipelined(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const (
		chunkRecs = 1024
		nChunks   = 128
	)
	img := &trace.Image{
		Benchmark: "allocguard",
		Areas:     []trace.Area{{Name: "heap0", Size: 1 << 20, Write: true}},
	}
	for i := 0; i < chunkRecs*nChunks; i++ {
		img.Records = append(img.Records, trace.Record{
			Period: uint64(i),
			Offset: uint64(i*61) % ((1 << 20) - 8),
			Op:     trace.Op(i & 1),
			Size:   8,
		})
	}
	var buf bytes.Buffer
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{ChunkRecords: chunkRecs}); err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenStreamConfig(bytes.NewReader(buf.Bytes()), trace.StreamConfig{DecodeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Warm-up: let every pooled disk and record buffer cycle through the
	// pipeline and grow to chunk size.
	for i := 0; i < 16; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		batch, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != chunkRecs {
			t.Fatalf("batch of %d records, want %d", len(batch), chunkRecs)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state pipelined decode allocates %.1f times per chunk, want 0", avg)
	}
}
