package kindle_test

import (
	"bytes"
	"testing"
	"time"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/persist"
	"kindle/internal/workloads"
)

// TestEventClockStatsIdentity is the end-to-end contract behind the
// event-driven clock: replaying a YCSB workload with periodic checkpoints
// and idle stretches between replay steps — the workload shape the
// event-driven engine exists for — must finish at the same simulated clock
// and produce byte-identical gem5-format stats dumps with
// Config.EventDrivenClock on and off, with the fast paths both enabled and
// disabled. Event-to-event jumps are a host-side shortcut only; no
// simulated outcome may depend on them.
func TestEventClockStatsIdentity(t *testing.T) {
	wcfg := workloads.SmallYCSB()
	wcfg.Ops = 30_000
	img, err := workloads.YCSB(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(event, slow bool) (clock uint64, dump []byte) {
		mcfg := machine.TestConfig()
		mcfg.EventDrivenClock = event
		mcfg.DisableFastPaths = slow
		f := core.New(mcfg)
		if _, err := f.EnablePersistence(persist.Rebuild, 300*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			t.Fatal(err)
		}
		f.Manager().Start()
		// Interleave replay bursts with pure-idle stretches: the timers
		// (checkpoints, scheduler ticks, NVM drains) keep firing while no
		// instructions are in flight.
		for {
			done, err := rep.Step(10_000)
			if err != nil {
				t.Fatal(err)
			}
			f.RunIdle(2*time.Millisecond, 5*time.Microsecond)
			if done {
				break
			}
		}
		var buf bytes.Buffer
		if err := f.M.Stats.WriteStatsFile(&buf); err != nil {
			t.Fatal(err)
		}
		return uint64(f.M.Clock.Now()), buf.Bytes()
	}

	for _, slow := range []bool{false, true} {
		name := "fastpaths"
		if slow {
			name = "slowpaths"
		}
		t.Run(name, func(t *testing.T) {
			stepClock, stepDump := run(false, slow)
			evClock, evDump := run(true, slow)
			if stepClock != evClock {
				t.Fatalf("final clock %d stepped, %d event-driven", stepClock, evClock)
			}
			if !bytes.Equal(stepDump, evDump) {
				// Find the first differing line so the failure names the stat.
				sl := bytes.Split(stepDump, []byte("\n"))
				el := bytes.Split(evDump, []byte("\n"))
				for i := 0; i < len(sl) && i < len(el); i++ {
					if !bytes.Equal(sl[i], el[i]) {
						t.Fatalf("stats dumps diverge at line %d:\n stepped: %s\n event:   %s", i+1, sl[i], el[i])
					}
				}
				t.Fatalf("stats dumps differ in length: %d vs %d lines", len(sl), len(el))
			}
		})
	}
}
