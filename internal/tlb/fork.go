package tlb

import "fmt"

// Snapshot mirrors of the TLB state, for machine forks. Geometry comes
// from the machine Config on the restoring side; RestoreState rejects a
// mismatch. The unexported lru stamp is exported in the mirror — future
// evictions depend on it, so dropping it would make a fork diverge from
// the machine it was taken from.

// EntryState mirrors one live translation, including its LRU stamp.
type EntryState struct {
	VPN uint64
	LRU uint64
	PFN uint64

	SSPAlt     uint64
	SSPUpdated uint64
	SSPCurrent uint64

	AccessCount  uint32
	CountSpilled bool

	Writable bool
	NVM      bool
	SSPValid bool
}

// LevelState mirrors one TLB level's mutable state.
type LevelState struct {
	Entries []EntryState // flat sets*ways store, invalid slots zeroed
	Lens    []int32
	MRU     []int32
	Clock   uint64
}

// State mirrors the two-level TLB plus its structural generation.
type State struct {
	L1, L2 LevelState
	Gen    uint64
}

func stateOf(e Entry) EntryState {
	return EntryState{
		VPN: e.VPN, LRU: e.lru, PFN: e.PFN,
		SSPAlt: e.SSPAlt, SSPUpdated: e.SSPUpdated, SSPCurrent: e.SSPCurrent,
		AccessCount: e.AccessCount, CountSpilled: e.CountSpilled,
		Writable: e.Writable, NVM: e.NVM, SSPValid: e.SSPValid,
	}
}

func entryOf(s EntryState) Entry {
	return Entry{
		VPN: s.VPN, lru: s.LRU, PFN: s.PFN,
		SSPAlt: s.SSPAlt, SSPUpdated: s.SSPUpdated, SSPCurrent: s.SSPCurrent,
		AccessCount: s.AccessCount, CountSpilled: s.CountSpilled,
		Writable: s.Writable, NVM: s.NVM, SSPValid: s.SSPValid,
	}
}

func (l *level) captureState() LevelState {
	st := LevelState{
		Entries: make([]EntryState, len(l.store)),
		Lens:    append([]int32(nil), l.lens...),
		MRU:     append([]int32(nil), l.mru...),
		Clock:   l.clock,
	}
	// Copy only the valid prefix of each set so stale slots past lens
	// (left behind by swap-remove invalidations) don't leak into the
	// snapshot and make equal TLBs serialize differently.
	for si := range l.lens {
		b := si * l.ways
		for i := 0; i < int(l.lens[si]); i++ {
			st.Entries[b+i] = stateOf(l.store[b+i])
		}
	}
	return st
}

func (l *level) restoreState(st LevelState) error {
	if len(st.Entries) != len(l.store) || len(st.Lens) != len(l.lens) {
		return fmt.Errorf("tlb: %s geometry mismatch: %d/%d entries, %d/%d sets",
			l.name, len(st.Entries), len(l.store), len(st.Lens), len(l.lens))
	}
	for i := range l.store {
		l.store[i] = entryOf(st.Entries[i])
	}
	copy(l.lens, st.Lens)
	copy(l.mru, st.MRU)
	l.clock = st.Clock
	return nil
}

// CaptureState copies the TLB's mutable state.
func (t *TLB) CaptureState() State {
	return State{L1: t.l1.captureState(), L2: t.l2.captureState(), Gen: t.gen}
}

// RestoreState overwrites the TLB from a capture taken on an identically
// configured TLB. Any pointers previously returned by Lookup are invalid
// afterwards (gen is restored, not advanced, so the core's translation
// cache must be cleared separately — cpu.Core.RestoreState does).
func (t *TLB) RestoreState(st State) error {
	if err := t.l1.restoreState(st.L1); err != nil {
		return err
	}
	if err := t.l2.restoreState(st.L2); err != nil {
		return err
	}
	t.gen = st.Gen
	return nil
}
