package tlb

import (
	"bytes"
	"testing"

	"kindle/internal/sim"
)

// TestMRUProbeEquivalenceRandomized drives two TLBs — MRU-way probe on and
// off — through the same randomized lookup/insert/invalidate sequence and
// requires identical results, latencies, eviction streams and statistics.
// The probe is a host-side shortcut over the set scan; if it ever changes
// which entry hits, which victim leaves, or what gets charged, the two
// runs diverge here long before an end-to-end test would notice.
func TestMRUProbeEquivalenceRandomized(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xDECAF} {
		statsOn, statsOff := sim.NewStats(), sim.NewStats()
		on := NewDefault(statsOn)
		off := NewDefault(statsOff)
		off.SetMRUProbe(false)

		var evOn, evOff []uint64
		on.SetEvictHook(func(e *Entry) { evOn = append(evOn, e.VPN) })
		off.SetEvictHook(func(e *Entry) { evOff = append(evOff, e.VPN) })

		// A VPN space a few times the L1 reach keeps all three regimes
		// live: L1 hits, L2 promotions and full misses with evictions.
		const vpns = 512
		rng := sim.NewRNG(seed)
		for i := 0; i < 20_000; i++ {
			vpn := rng.Uint64n(vpns)
			switch op := rng.Intn(100); {
			case op < 70: // lookup
				eOn, latOn := on.Lookup(vpn)
				eOff, latOff := off.Lookup(vpn)
				if (eOn == nil) != (eOff == nil) {
					t.Fatalf("seed %d op %d: lookup(%d) hit disagrees", seed, i, vpn)
				}
				if latOn != latOff {
					t.Fatalf("seed %d op %d: lookup(%d) latency %d vs %d", seed, i, vpn, latOn, latOff)
				}
				if eOn != nil && (eOn.PFN != eOff.PFN || eOn.Writable != eOff.Writable) {
					t.Fatalf("seed %d op %d: lookup(%d) entry %+v vs %+v", seed, i, vpn, *eOn, *eOff)
				}
			case op < 90: // insert (gen bump on both)
				e := Entry{VPN: vpn, PFN: vpn + 1000, Writable: vpn%2 == 0, NVM: vpn%3 == 0}
				on.Insert(e)
				off.Insert(e)
			case op < 97: // single invalidation
				on.Invalidate(vpn)
				off.Invalidate(vpn)
			default: // structural flush
				on.InvalidateAll()
				off.InvalidateAll()
			}
			if on.Gen() != off.Gen() {
				t.Fatalf("seed %d op %d: generation %d vs %d", seed, i, on.Gen(), off.Gen())
			}
		}
		if len(evOn) != len(evOff) {
			t.Fatalf("seed %d: %d evictions with probe, %d without", seed, len(evOn), len(evOff))
		}
		for i := range evOn {
			if evOn[i] != evOff[i] {
				t.Fatalf("seed %d: eviction %d is vpn %d with probe, %d without", seed, i, evOn[i], evOff[i])
			}
		}
		var dumpOn, dumpOff bytes.Buffer
		if err := statsOn.WriteStatsFile(&dumpOn); err != nil {
			t.Fatal(err)
		}
		if err := statsOff.WriteStatsFile(&dumpOff); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dumpOn.Bytes(), dumpOff.Bytes()) {
			t.Fatalf("seed %d: stats dumps differ with/without MRU probe:\n%s\n----\n%s",
				seed, dumpOn.String(), dumpOff.String())
		}
	}
}
