package tlb

import (
	"testing"
	"testing/quick"

	"kindle/internal/sim"
)

func TestLookupMissThenHit(t *testing.T) {
	stats := sim.NewStats()
	tb := NewDefault(stats)
	if e, _ := tb.Lookup(5); e != nil {
		t.Fatal("hit on empty TLB")
	}
	tb.Insert(Entry{VPN: 5, PFN: 42, Writable: true})
	e, lat := tb.Lookup(5)
	if e == nil || e.PFN != 42 || !e.Writable {
		t.Fatalf("entry after insert: %+v", e)
	}
	if lat != DefaultConfigL1().Latency {
		t.Fatalf("L1 hit latency = %d", lat)
	}
	if stats.Get("tlb.l1.hit") != 1 || stats.Get("tlb.l2.miss") != 1 {
		t.Fatal("stats wrong")
	}
}

func TestInsertReplacesSameVPN(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	tb.Insert(Entry{VPN: 7, PFN: 1})
	tb.Insert(Entry{VPN: 7, PFN: 2})
	e, _ := tb.Lookup(7)
	if e.PFN != 2 {
		t.Fatalf("PFN = %d, want 2 (replacement)", e.PFN)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	stats := sim.NewStats()
	tb := NewDefault(stats)
	// Fill one L1 set (4 ways, 16 sets): VPNs congruent mod 16.
	for i := 0; i < 5; i++ {
		tb.Insert(Entry{VPN: uint64(i * 16), PFN: uint64(i)})
	}
	// The first-inserted entry was evicted from L1 but must be findable
	// via L2.
	e, lat := tb.Lookup(0)
	if e == nil || e.PFN != 0 {
		t.Fatal("entry lost after L1 eviction")
	}
	if lat <= DefaultConfigL1().Latency {
		t.Fatalf("L2 hit latency %d too low", lat)
	}
	if stats.Get("tlb.l2.hit") != 1 {
		t.Fatal("L2 hit not counted")
	}
}

func TestEvictHookFiresFromL2Only(t *testing.T) {
	stats := sim.NewStats()
	tb := New(Config{Name: "l1", Entries: 4, Ways: 4, Latency: 1},
		Config{Name: "l2", Entries: 8, Ways: 8, Latency: 7}, stats)
	var evicted []uint64
	tb.SetEvictHook(func(e *Entry) { evicted = append(evicted, e.VPN) })
	// 4 into L1; next 8 push earlier ones into L2; beyond that, L2 evicts.
	for i := uint64(0); i < 13; i++ {
		tb.Insert(Entry{VPN: i, PFN: i})
	}
	if len(evicted) != 1 {
		t.Fatalf("evictions observed: %v (want exactly 1)", evicted)
	}
	if evicted[0] != 0 {
		t.Fatalf("wrong victim: %d, want 0 (LRU)", evicted[0])
	}
}

func TestInvalidateFiresHook(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	var got []uint64
	tb.SetEvictHook(func(e *Entry) { got = append(got, e.VPN) })
	tb.Insert(Entry{VPN: 9, PFN: 1, AccessCount: 3})
	if !tb.Invalidate(9) {
		t.Fatal("Invalidate missed present entry")
	}
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("hook observed %v", got)
	}
	if tb.Invalidate(9) {
		t.Fatal("Invalidate found absent entry")
	}
	if e, _ := tb.Lookup(9); e != nil {
		t.Fatal("entry survived invalidation")
	}
}

func TestInvalidateAll(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	count := 0
	tb.SetEvictHook(func(e *Entry) { count++ })
	for i := uint64(0); i < 10; i++ {
		tb.Insert(Entry{VPN: i})
	}
	tb.InvalidateAll()
	if count != 10 {
		t.Fatalf("hook fired %d times, want 10", count)
	}
	for i := uint64(0); i < 10; i++ {
		if e, _ := tb.Lookup(i); e != nil {
			t.Fatal("entry survived InvalidateAll")
		}
	}
}

func TestMutableEntryExtensions(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	tb.Insert(Entry{VPN: 3, PFN: 8, NVM: true, SSPValid: true, SSPAlt: 9})
	e, _ := tb.Lookup(3)
	e.SSPUpdated |= 1 << 5
	e.AccessCount++
	e2, _ := tb.Lookup(3)
	if e2.SSPUpdated != 1<<5 || e2.AccessCount != 1 {
		t.Fatal("in-place mutation lost")
	}
	if !e2.NVM || !e2.SSPValid || e2.SSPAlt != 9 {
		t.Fatal("extension fields lost")
	}
}

func TestForEachVisitsBothLevels(t *testing.T) {
	tb := New(Config{Name: "l1", Entries: 2, Ways: 2, Latency: 1},
		Config{Name: "l2", Entries: 8, Ways: 8, Latency: 7}, sim.NewStats())
	for i := uint64(0); i < 6; i++ {
		tb.Insert(Entry{VPN: i})
	}
	seen := map[uint64]bool{}
	tb.ForEach(func(e *Entry) { seen[e.VPN] = true })
	if len(seen) != 6 {
		t.Fatalf("ForEach saw %d entries, want 6", len(seen))
	}
}

func TestResetSilent(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	fired := false
	tb.SetEvictHook(func(e *Entry) { fired = true })
	tb.Insert(Entry{VPN: 1})
	tb.Reset()
	if fired {
		t.Fatal("Reset fired hooks (power loss must be silent)")
	}
	if e, _ := tb.Lookup(1); e != nil {
		t.Fatal("entry survived Reset")
	}
}

func TestPromotionKeepsSingleCopy(t *testing.T) {
	tb := New(Config{Name: "l1", Entries: 2, Ways: 2, Latency: 1},
		Config{Name: "l2", Entries: 8, Ways: 8, Latency: 7}, sim.NewStats())
	tb.Insert(Entry{VPN: 1})
	tb.Insert(Entry{VPN: 2})
	tb.Insert(Entry{VPN: 3}) // pushes 1 to L2
	tb.Lookup(1)             // promotes 1 back to L1
	// Count copies of VPN 1.
	n := 0
	tb.ForEach(func(e *Entry) {
		if e.VPN == 1 {
			n++
		}
	})
	if n != 1 {
		t.Fatalf("VPN 1 present %d times, want 1", n)
	}
}

func TestPageOffsetLineBit(t *testing.T) {
	if PageOffsetLineBit(0) != 0 || PageOffsetLineBit(63) != 0 {
		t.Fatal("first line bit wrong")
	}
	if PageOffsetLineBit(64) != 1 || PageOffsetLineBit(4095) != 63 {
		t.Fatal("line bit math wrong")
	}
	if PageOffsetLineBit(0x1234_5000+130) != 2 {
		t.Fatal("line bit ignores page base")
	}
}

func TestLookupInsertProperty(t *testing.T) {
	tb := NewDefault(sim.NewStats())
	f := func(vpn uint16, pfn uint32) bool {
		tb.Insert(Entry{VPN: uint64(vpn), PFN: uint64(pfn)})
		e, _ := tb.Lookup(uint64(vpn))
		return e != nil && e.PFN == uint64(pfn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newLevel(Config{Name: "bad", Entries: 7, Ways: 2}, sim.NewStats())
}

func BenchmarkTLBHit(b *testing.B) {
	tb := NewDefault(sim.NewStats())
	tb.Insert(Entry{VPN: 1, PFN: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(1)
	}
}

func BenchmarkTLBChurn(b *testing.B) {
	tb := NewDefault(sim.NewStats())
	for i := 0; i < b.N; i++ {
		vpn := uint64(i % 4096)
		if e, _ := tb.Lookup(vpn); e == nil {
			tb.Insert(Entry{VPN: vpn, PFN: vpn})
		}
	}
}
