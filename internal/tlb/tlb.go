// Package tlb models the translation lookaside buffers of a Kindle core.
//
// The paper's prototypes both extend the TLB: SSP adds an alternate
// physical-page field plus `updated`/`current` bitmaps per entry (one bit
// per 64-byte sub-page line), and HSCC adds a per-page access counter that
// is spilled to the page table on eviction. Entry therefore carries those
// extension fields, and eviction is observable through a hook so the
// prototypes can write metadata back.
package tlb

import (
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Entry is one TLB translation with Kindle's prototype extensions.
type Entry struct {
	VPN      uint64 // virtual page number
	PFN      uint64 // physical frame number
	Writable bool
	NVM      bool // translation targets NVM (set from the VMA kind)

	// SSP extension (Shadow Sub-Paging): the alternate physical page, and
	// the per-line bitmaps. Updated marks lines written in the current
	// consistency interval; Current marks which physical copy holds the
	// latest version of each line.
	SSPAlt     uint64
	SSPUpdated uint64
	SSPCurrent uint64
	SSPValid   bool // extension fields populated

	// HSCC extension: access counter incremented on LLC miss for this
	// page; written back to the PTE/lookup table on eviction or once per
	// migration interval.
	AccessCount  uint32
	CountSpilled bool // already written out this interval

	lru uint64
}

// EvictFn observes an entry leaving the TLB (capacity eviction or explicit
// invalidation). SSP uses it to push bitmaps to the SSP cache; HSCC uses it
// to spill the access count.
type EvictFn func(e *Entry)

// Config sizes one TLB level.
type Config struct {
	Name    string
	Entries int
	Ways    int
	Latency sim.Cycles
}

// level is one set-associative TLB.
type level struct {
	name    string
	sets    int
	ways    int
	latency sim.Cycles
	tags    [][]Entry
	clock   uint64
	stats   *sim.Stats

	evicts *sim.Counter // "tlb.<name>.evict", resolved once
}

func newLevel(cfg Config, stats *sim.Stats) *level {
	if cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry for %s", cfg.Name))
	}
	return &level{
		name:    cfg.Name,
		sets:    cfg.Entries / cfg.Ways,
		ways:    cfg.Ways,
		latency: cfg.Latency,
		tags:    make([][]Entry, cfg.Entries/cfg.Ways),
		stats:   stats,
		evicts:  stats.Counter("tlb." + cfg.Name + ".evict"),
	}
}

func (l *level) setIndex(vpn uint64) int { return int(vpn % uint64(l.sets)) }

func (l *level) lookup(vpn uint64) *Entry {
	set := l.tags[l.setIndex(vpn)]
	for i := range set {
		if set[i].VPN == vpn {
			l.clock++
			set[i].lru = l.clock
			return &set[i]
		}
	}
	return nil
}

func (l *level) insert(e Entry, onEvict EvictFn) {
	si := l.setIndex(e.VPN)
	set := l.tags[si]
	l.clock++
	e.lru = l.clock
	// Replace an existing translation for the same VPN.
	for i := range set {
		if set[i].VPN == e.VPN {
			set[i] = e
			return
		}
	}
	if len(set) < l.ways {
		if set == nil {
			set = make([]Entry, 0, l.ways)
		}
		l.tags[si] = append(set, e)
		return
	}
	lruIdx := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[lruIdx].lru {
			lruIdx = i
		}
	}
	victim := set[lruIdx]
	set[lruIdx] = e
	l.evicts.Inc()
	if onEvict != nil {
		onEvict(&victim)
	}
}

func (l *level) invalidate(vpn uint64) (Entry, bool) {
	si := l.setIndex(vpn)
	set := l.tags[si]
	for i := range set {
		if set[i].VPN == vpn {
			victim := set[i]
			set[i] = set[len(set)-1]
			l.tags[si] = set[:len(set)-1]
			return victim, true
		}
	}
	return Entry{}, false
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = nil
	}
}

// forEach visits every entry (mutable).
func (l *level) forEach(fn func(e *Entry)) {
	for si := range l.tags {
		for i := range l.tags[si] {
			fn(&l.tags[si][i])
		}
	}
}

// TLB is the two-level translation cache (64-entry L1 dTLB, 1536-entry L2
// STLB, conventional sizes for the simulated core).
type TLB struct {
	l1, l2  *level
	stats   *sim.Stats
	onEvict EvictFn

	// gen counts structural changes (inserts, promotions, invalidations,
	// resets). A cached *Entry obtained from Lookup stays valid exactly
	// while gen is unchanged — the core's last-translation cache keys on
	// it.
	gen uint64

	l1Hit, l1Miss *sim.Counter
	l2Hit, l2Miss *sim.Counter
	invalidates   *sim.Counter
	flushes       *sim.Counter
}

// DefaultConfigL1 is a 64-entry 4-way L1 dTLB with 1-cycle lookup.
func DefaultConfigL1() Config { return Config{Name: "l1", Entries: 64, Ways: 4, Latency: 1} }

// DefaultConfigL2 is a 1536-entry 12-way STLB with 7-cycle lookup.
func DefaultConfigL2() Config { return Config{Name: "l2", Entries: 1536, Ways: 12, Latency: 7} }

// New builds the two-level TLB.
func New(l1, l2 Config, stats *sim.Stats) *TLB {
	return &TLB{
		l1: newLevel(l1, stats), l2: newLevel(l2, stats), stats: stats,
		l1Hit: stats.Counter("tlb.l1.hit"), l1Miss: stats.Counter("tlb.l1.miss"),
		l2Hit: stats.Counter("tlb.l2.hit"), l2Miss: stats.Counter("tlb.l2.miss"),
		invalidates: stats.Counter("tlb.invalidate"),
		flushes:     stats.Counter("tlb.flush_all"),
	}
}

// NewDefault builds the TLB with default geometry.
func NewDefault(stats *sim.Stats) *TLB {
	return New(DefaultConfigL1(), DefaultConfigL2(), stats)
}

// SetEvictHook installs fn to observe entries leaving the whole TLB.
// An entry evicted from L1 falls into L2 (exclusive fill), so only L2
// evictions and explicit invalidations reach the hook.
func (t *TLB) SetEvictHook(fn EvictFn) { t.onEvict = fn }

// Lookup translates vpn. On hit it returns the entry (mutable — prototype
// extensions update counters in place) and the lookup latency. On miss the
// entry is nil and latency covers both level probes; the caller walks the
// page table and calls Insert.
func (t *TLB) Lookup(vpn uint64) (*Entry, sim.Cycles) {
	if e := t.l1.lookup(vpn); e != nil {
		t.l1Hit.Inc()
		return e, t.l1.latency
	}
	t.l1Miss.Inc()
	if e := t.l2.lookup(vpn); e != nil {
		t.l2Hit.Inc()
		// Promote to L1; the L1 victim falls back into L2. Entries move,
		// so previously returned pointers go stale.
		t.gen++
		promoted := *e
		t.l2.invalidate(vpn)
		t.l1.insert(promoted, func(v *Entry) { t.l2.insert(*v, t.onEvict) })
		if e1 := t.l1.lookup(vpn); e1 != nil {
			return e1, t.l1.latency + t.l2.latency
		}
		panic("tlb: promoted entry vanished")
	}
	t.l2Miss.Inc()
	return nil, t.l1.latency + t.l2.latency
}

// Gen returns the structural generation. It advances whenever entries may
// have moved (Insert, L2→L1 promotion, invalidation, reset); an *Entry
// returned by Lookup is safe to retain only while Gen is unchanged.
func (t *TLB) Gen() uint64 { return t.gen }

// FastHit re-touches an entry known (by an unchanged Gen) to still sit in
// L1: it refreshes the entry's LRU stamp, counts an L1 hit and returns the
// L1 latency — state-for-state what a full Lookup hit on the entry would
// do, without the set scan. The core's last-translation cache is the only
// intended caller.
func (t *TLB) FastHit(e *Entry) sim.Cycles {
	t.l1.clock++
	e.lru = t.l1.clock
	t.l1Hit.Inc()
	return t.l1.latency
}

// Insert installs a fresh translation (after a page-table walk) into L1.
func (t *TLB) Insert(e Entry) {
	t.gen++
	t.l1.insert(e, func(v *Entry) { t.l2.insert(*v, t.onEvict) })
}

// Invalidate removes vpn from both levels, firing the evict hook if the
// translation was present (the OS invalidates after PTE changes; prototype
// metadata must be saved first, as in the paper's SSP design where
// TLB-evicted entries are marked in the SSP cache).
func (t *TLB) Invalidate(vpn uint64) bool {
	t.gen++
	found := false
	if v, ok := t.l1.invalidate(vpn); ok {
		found = true
		if t.onEvict != nil {
			t.onEvict(&v)
		}
	}
	if v, ok := t.l2.invalidate(vpn); ok {
		found = true
		if t.onEvict != nil {
			t.onEvict(&v)
		}
	}
	if found {
		t.invalidates.Inc()
	}
	return found
}

// InvalidateAll flushes the whole TLB (context switch / global shootdown),
// firing the evict hook per entry.
func (t *TLB) InvalidateAll() {
	t.gen++
	if t.onEvict != nil {
		t.l1.forEach(func(e *Entry) { t.onEvict(e) })
		t.l2.forEach(func(e *Entry) { t.onEvict(e) })
	}
	t.l1.reset()
	t.l2.reset()
	t.flushes.Inc()
}

// ForEach visits every live entry in both levels (prototypes scan the TLB
// at interval boundaries: SSP harvests bitmaps, HSCC spills counters).
func (t *TLB) ForEach(fn func(e *Entry)) {
	t.l1.forEach(fn)
	t.l2.forEach(fn)
}

// Reset empties the TLB without firing hooks (power loss).
func (t *TLB) Reset() {
	t.gen++
	t.l1.reset()
	t.l2.reset()
}

// PageOffsetLineBit returns the bit index (0..63) of the sub-page line that
// virtual address va falls in — the bit SSP sets in the Updated bitmap.
func PageOffsetLineBit(va uint64) uint {
	return uint((va % mem.PageSize) / mem.LineSize)
}
