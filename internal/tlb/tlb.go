// Package tlb models the translation lookaside buffers of a Kindle core.
//
// The paper's prototypes both extend the TLB: SSP adds an alternate
// physical-page field plus `updated`/`current` bitmaps per entry (one bit
// per 64-byte sub-page line), and HSCC adds a per-page access counter that
// is spilled to the page table on eviction. Entry therefore carries those
// extension fields, and eviction is observable through a hook so the
// prototypes can write metadata back.
package tlb

import (
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Entry is one TLB translation with Kindle's prototype extensions.
//
// Field order is deliberate: VPN and lru lead so the tag compares and LRU
// loads of a set scan land in the same host cache line per entry, and the
// bool/uint32 fields pack at the tail, keeping the entry at 56 bytes —
// the set scans in lookup/insert/take are the hottest loops in the TLB.
type Entry struct {
	VPN uint64 // virtual page number
	lru uint64
	PFN uint64 // physical frame number

	// SSP extension (Shadow Sub-Paging): the alternate physical page, and
	// the per-line bitmaps. Updated marks lines written in the current
	// consistency interval; Current marks which physical copy holds the
	// latest version of each line.
	SSPAlt     uint64
	SSPUpdated uint64
	SSPCurrent uint64

	// HSCC extension: access counter incremented on LLC miss for this
	// page; written back to the PTE/lookup table on eviction or once per
	// migration interval.
	AccessCount  uint32
	CountSpilled bool // already written out this interval

	Writable bool
	NVM      bool // translation targets NVM (set from the VMA kind)
	SSPValid bool // extension fields populated
}

// EvictFn observes an entry leaving the TLB (capacity eviction or explicit
// invalidation). SSP uses it to push bitmaps to the SSP cache; HSCC uses it
// to spill the access count.
type EvictFn func(e *Entry)

// Config sizes one TLB level.
type Config struct {
	Name    string
	Entries int
	Ways    int
	Latency sim.Cycles
}

// level is one set-associative TLB.
type level struct {
	name    string
	sets    int
	setMask uint64 // sets-1 when sets is a power of two, else 0 (use modulo)
	ways    int
	latency sim.Cycles
	// Flat tag store: set si owns store[si*ways : si*ways+lens[si]].
	// Counting occupancy in lens instead of reslicing per-set slices
	// keeps the promote/demote churn free of slice-header writes (and
	// their GC barriers); entry pointers are stable for the life of the
	// level.
	store []Entry
	lens  []int32
	clock uint64
	stats *sim.Stats

	// mru[set] is the way index of the set's last hit or fill — a probe
	// hint only, always verified against the tag before use, so it can
	// dangle after invalidations without affecting simulated state.
	mru    []int32
	mruOff bool // disables the MRU fast probe (equivalence testing)

	evicts *sim.Counter // "tlb.<name>.evict", resolved once
}

func newLevel(cfg Config, stats *sim.Stats) *level {
	if cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry for %s", cfg.Name))
	}
	sets := cfg.Entries / cfg.Ways
	l := &level{
		name:    cfg.Name,
		sets:    sets,
		ways:    cfg.Ways,
		latency: cfg.Latency,
		store:   make([]Entry, sets*cfg.Ways),
		lens:    make([]int32, sets),
		mru:     make([]int32, sets),
		stats:   stats,
		evicts:  stats.Counter("tlb." + cfg.Name + ".evict"),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	return l
}

func (l *level) setIndex(vpn uint64) int {
	if l.setMask != 0 || l.sets == 1 {
		return int(vpn & l.setMask)
	}
	return int(vpn % uint64(l.sets))
}

func (l *level) lookup(vpn uint64) *Entry {
	si := l.setIndex(vpn)
	set := l.store[si*l.ways : si*l.ways+int(l.lens[si])]
	if !l.mruOff {
		// Probe the last-hit way before scanning the set: replay streams
		// hit the same translation repeatedly, so the hint almost always
		// verifies. The hit-side effects are identical to a scan hit.
		if m := l.mru[si]; int(m) < len(set) && set[m].VPN == vpn {
			l.clock++
			set[m].lru = l.clock
			return &set[m]
		}
	}
	for i := range set {
		if set[i].VPN == vpn {
			l.clock++
			set[i].lru = l.clock
			l.mru[si] = int32(i)
			return &set[i]
		}
	}
	return nil
}

// insert installs e and returns a pointer to its live slot. When the set
// was full the evicted entry is returned by value (evicted=true); the
// caller demotes or drops it. Returning the victim instead of firing a
// callback keeps it on the stack — the old closure-based hook forced a
// heap allocation per eviction. The same-VPN and LRU scans are fused into
// one pass; the outcome is identical to scanning twice because a same-VPN
// match returns before the LRU result is ever used.
func (l *level) insert(e Entry) (slot *Entry, victim Entry, evicted bool) {
	si := l.setIndex(e.VPN)
	b := si * l.ways
	n := int(l.lens[si])
	set := l.store[b : b+n]
	l.clock++
	e.lru = l.clock
	lruIdx := 0
	for i := range set {
		// Replace an existing translation for the same VPN.
		if set[i].VPN == e.VPN {
			set[i] = e
			l.mru[si] = int32(i)
			return &set[i], Entry{}, false
		}
		if set[i].lru < set[lruIdx].lru {
			lruIdx = i
		}
	}
	if n < l.ways {
		l.store[b+n] = e
		l.lens[si] = int32(n + 1)
		l.mru[si] = int32(n)
		return &l.store[b+n], Entry{}, false
	}
	victim = set[lruIdx]
	set[lruIdx] = e
	l.mru[si] = int32(lruIdx)
	l.evicts.Inc()
	return &set[lruIdx], victim, true
}

// take removes and returns the entry for vpn, touching it exactly as
// lookup would first (clock advance + LRU stamp on the returned copy), so
// a lookup-then-invalidate pair collapses into one set scan with
// bit-identical level state.
func (l *level) take(vpn uint64) (Entry, bool) {
	si := l.setIndex(vpn)
	set := l.store[si*l.ways : si*l.ways+int(l.lens[si])]
	for i := range set {
		if set[i].VPN == vpn {
			l.clock++
			victim := set[i]
			victim.lru = l.clock
			set[i] = set[len(set)-1]
			l.lens[si]--
			return victim, true
		}
	}
	return Entry{}, false
}

func (l *level) invalidate(vpn uint64) (Entry, bool) {
	si := l.setIndex(vpn)
	set := l.store[si*l.ways : si*l.ways+int(l.lens[si])]
	for i := range set {
		if set[i].VPN == vpn {
			victim := set[i]
			set[i] = set[len(set)-1]
			l.lens[si]--
			return victim, true
		}
	}
	return Entry{}, false
}

func (l *level) reset() {
	for i := range l.lens {
		l.lens[i] = 0
	}
}

// forEach visits every entry (mutable).
func (l *level) forEach(fn func(e *Entry)) {
	for si := range l.lens {
		set := l.store[si*l.ways : si*l.ways+int(l.lens[si])]
		for i := range set {
			fn(&set[i])
		}
	}
}

// TLB is the two-level translation cache (64-entry L1 dTLB, 1536-entry L2
// STLB, conventional sizes for the simulated core).
type TLB struct {
	l1, l2  *level
	stats   *sim.Stats
	onEvict EvictFn

	// gen counts structural changes (inserts, promotions, invalidations,
	// resets). A cached *Entry obtained from Lookup stays valid exactly
	// while gen is unchanged — the core's last-translation cache keys on
	// it.
	gen uint64

	l1Hit, l1Miss *sim.Counter
	l2Hit, l2Miss *sim.Counter
	invalidates   *sim.Counter
	flushes       *sim.Counter
}

// DefaultConfigL1 is a 64-entry 4-way L1 dTLB with 1-cycle lookup.
func DefaultConfigL1() Config { return Config{Name: "l1", Entries: 64, Ways: 4, Latency: 1} }

// DefaultConfigL2 is a 1536-entry 12-way STLB with 7-cycle lookup.
func DefaultConfigL2() Config { return Config{Name: "l2", Entries: 1536, Ways: 12, Latency: 7} }

// New builds the two-level TLB.
func New(l1, l2 Config, stats *sim.Stats) *TLB {
	return &TLB{
		l1: newLevel(l1, stats), l2: newLevel(l2, stats), stats: stats,
		l1Hit: stats.Counter("tlb.l1.hit"), l1Miss: stats.Counter("tlb.l1.miss"),
		l2Hit: stats.Counter("tlb.l2.hit"), l2Miss: stats.Counter("tlb.l2.miss"),
		invalidates: stats.Counter("tlb.invalidate"),
		flushes:     stats.Counter("tlb.flush_all"),
	}
}

// NewDefault builds the TLB with default geometry.
func NewDefault(stats *sim.Stats) *TLB {
	return New(DefaultConfigL1(), DefaultConfigL2(), stats)
}

// SetEvictHook installs fn to observe entries leaving the whole TLB.
// An entry evicted from L1 falls into L2 (exclusive fill), so only L2
// evictions and explicit invalidations reach the hook.
func (t *TLB) SetEvictHook(fn EvictFn) { t.onEvict = fn }

// Lookup translates vpn. On hit it returns the entry (mutable — prototype
// extensions update counters in place) and the lookup latency. On miss the
// entry is nil and latency covers both level probes; the caller walks the
// page table and calls Insert.
func (t *TLB) Lookup(vpn uint64) (*Entry, sim.Cycles) {
	if e := t.l1.lookup(vpn); e != nil {
		t.l1Hit.Inc()
		return e, t.l1.latency
	}
	t.l1Miss.Inc()
	if promoted, ok := t.l2.take(vpn); ok {
		t.l2Hit.Inc()
		// Promote to L1; the L1 victim falls back into L2. Entries move,
		// so previously returned pointers go stale.
		t.gen++
		e1, v, evicted := t.l1.insert(promoted)
		if evicted {
			t.demote(v)
		}
		// Re-touch exactly as the pre-insert code's trailing L1 lookup
		// did, so LRU state stays bit-identical without the set scan.
		t.l1.clock++
		e1.lru = t.l1.clock
		return e1, t.l1.latency + t.l2.latency
	}
	t.l2Miss.Inc()
	return nil, t.l1.latency + t.l2.latency
}

// demote drops an L1 victim into L2, firing the whole-TLB evict hook when
// that in turn pushes an entry out of L2 (exclusive two-level fill). The
// escaping copy for the hook is made only on the evict branch so the
// common no-evict demote stays allocation-free.
func (t *TLB) demote(v Entry) {
	_, v2, evicted := t.l2.insert(v)
	if evicted && t.onEvict != nil {
		hooked := v2
		t.onEvict(&hooked)
	}
}

// Gen returns the structural generation. It advances whenever entries may
// have moved (Insert, L2→L1 promotion, invalidation, reset); an *Entry
// returned by Lookup is safe to retain only while Gen is unchanged.
func (t *TLB) Gen() uint64 { return t.gen }

// FastHit re-touches an entry known (by an unchanged Gen) to still sit in
// L1: it refreshes the entry's LRU stamp, counts an L1 hit and returns the
// L1 latency — state-for-state what a full Lookup hit on the entry would
// do, without the set scan. The core's last-translation cache is the only
// intended caller.
func (t *TLB) FastHit(e *Entry) sim.Cycles {
	t.l1.clock++
	e.lru = t.l1.clock
	t.l1Hit.Inc()
	return t.l1.latency
}

// Insert installs a fresh translation (after a page-table walk) into L1.
func (t *TLB) Insert(e Entry) {
	t.InsertAndGet(e)
}

// InsertAndGet installs a fresh translation into L1 and returns the live
// entry, without counting a hit or charging lookup latency: hardware
// completes a walked translation from the walk result, it does not re-probe
// the TLB it just filled. The core's translate path uses this to finish a
// miss; the returned pointer is valid until Gen next changes.
func (t *TLB) InsertAndGet(e Entry) *Entry {
	t.gen++
	slot, v, evicted := t.l1.insert(e)
	if evicted {
		t.demote(v)
	}
	return slot
}

// SetMRUProbe enables or disables the per-set last-hit-way fast probe in
// both levels (on by default). The probe is semantically invisible — hit
// order, LRU stamps and stats are identical either way — so the switch
// exists only for the equivalence tests that pin that claim.
func (t *TLB) SetMRUProbe(on bool) {
	t.l1.mruOff = !on
	t.l2.mruOff = !on
}

// Invalidate removes vpn from both levels, firing the evict hook if the
// translation was present (the OS invalidates after PTE changes; prototype
// metadata must be saved first, as in the paper's SSP design where
// TLB-evicted entries are marked in the SSP cache).
func (t *TLB) Invalidate(vpn uint64) bool {
	t.gen++
	found := false
	if v, ok := t.l1.invalidate(vpn); ok {
		found = true
		if t.onEvict != nil {
			t.onEvict(&v)
		}
	}
	if v, ok := t.l2.invalidate(vpn); ok {
		found = true
		if t.onEvict != nil {
			t.onEvict(&v)
		}
	}
	if found {
		t.invalidates.Inc()
	}
	return found
}

// InvalidateAll flushes the whole TLB (context switch / global shootdown),
// firing the evict hook per entry.
func (t *TLB) InvalidateAll() {
	t.gen++
	if t.onEvict != nil {
		t.l1.forEach(func(e *Entry) { t.onEvict(e) })
		t.l2.forEach(func(e *Entry) { t.onEvict(e) })
	}
	t.l1.reset()
	t.l2.reset()
	t.flushes.Inc()
}

// ForEach visits every live entry in both levels (prototypes scan the TLB
// at interval boundaries: SSP harvests bitmaps, HSCC spills counters).
func (t *TLB) ForEach(fn func(e *Entry)) {
	t.l1.forEach(fn)
	t.l2.forEach(fn)
}

// Reset empties the TLB without firing hooks (power loss).
func (t *TLB) Reset() {
	t.gen++
	t.l1.reset()
	t.l2.reset()
}

// PageOffsetLineBit returns the bit index (0..63) of the sub-page line that
// virtual address va falls in — the bit SSP sets in the Updated bitmap.
func PageOffsetLineBit(va uint64) uint {
	return uint((va % mem.PageSize) / mem.LineSize)
}
