package cpu_test

import (
	"bytes"
	"fmt"
	"testing"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// bootPair builds two identically-configured machines, one with every
// replay fast path disabled, each with the same pair of mapped regions
// (one DRAM, one NVM). Returns the machines and the two region bases.
func bootPair(t *testing.T) (fast, slow *machine.Machine, dram, nvm uint64, pages uint64) {
	t.Helper()
	const regionPages = 64
	build := func(disable bool) (*machine.Machine, uint64, uint64) {
		cfg := machine.TestConfig()
		cfg.DisableFastPaths = disable
		m := machine.New(cfg)
		k := gemos.Boot(m)
		p, err := k.Spawn("fastpath-test")
		if err != nil {
			t.Fatal(err)
		}
		k.Switch(p)
		d, err := k.Mmap(p, 0, regionPages*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := k.Mmap(p, 0, regionPages*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		if err != nil {
			t.Fatal(err)
		}
		return m, d, n
	}
	fast, dramF, nvmF := build(false)
	slow, dramS, nvmS := build(true)
	if dramF != dramS || nvmF != nvmS {
		t.Fatalf("mmap layout differs between machines: %#x/%#x vs %#x/%#x", dramF, nvmF, dramS, nvmS)
	}
	return fast, slow, dramF, nvmF, regionPages
}

// TestFastPathEquivalenceRandomized is the property test for the whole
// fast-path stack: the core's software translation cache, the single-line
// Access shortcut, and the cache/TLB MRU-way probes. It drives a machine
// with the fast paths on and a machine with DisableFastPaths through the
// same randomized sequence of accesses (random page, offset, size — many
// spanning lines and pages — and demand faults on first touch),
// single-page TLB shootdowns, and full TLB flushes (which bump the
// structural generation the translation cache keys on). Every operation
// must charge the same latency, the clocks must stay in lockstep, and the
// final gem5-format stats dumps must be byte-identical.
func TestFastPathEquivalenceRandomized(t *testing.T) {
	for _, seed := range []uint64{3, 17, 0xBADCAB} {
		fast, slow, dram, nvm, pages := bootPair(t)
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 100, 256}
		rng := sim.NewRNG(seed)
		for i := 0; i < 15_000; i++ {
			region := dram
			if rng.Intn(2) == 1 {
				region = nvm
			}
			page := rng.Uint64n(pages)
			switch op := rng.Intn(100); {
			case op < 90:
				// Offsets near the end of the page make line- and
				// page-spanning accesses routine.
				off := rng.Uint64n(mem.PageSize)
				size := sizes[rng.Intn(len(sizes))]
				if page == pages-1 && off+uint64(size) > mem.PageSize {
					off = mem.PageSize - uint64(size) // stay inside the mapping
				}
				va := region + page*mem.PageSize + off
				write := rng.Intn(3) == 0
				latF, errF := fast.Core.Access(va, write, size)
				latS, errS := slow.Core.Access(va, write, size)
				if (errF == nil) != (errS == nil) {
					t.Fatalf("seed %d op %d: access(%#x,%v,%d) err %v vs %v", seed, i, va, write, size, errF, errS)
				}
				if latF != latS {
					t.Fatalf("seed %d op %d: access(%#x,%v,%d) latency %d fast, %d slow",
						seed, i, va, write, size, latF, latS)
				}
			case op < 97:
				vpn := (region + page*mem.PageSize) / mem.PageSize
				fast.TLB.Invalidate(vpn)
				slow.TLB.Invalidate(vpn)
			default:
				fast.TLB.InvalidateAll()
				slow.TLB.InvalidateAll()
			}
			if fast.Clock.Now() != slow.Clock.Now() {
				t.Fatalf("seed %d op %d: clock %d fast, %d slow", seed, i, fast.Clock.Now(), slow.Clock.Now())
			}
		}
		var dumpF, dumpS bytes.Buffer
		if err := fast.Stats.WriteStatsFile(&dumpF); err != nil {
			t.Fatal(err)
		}
		if err := slow.Stats.WriteStatsFile(&dumpS); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dumpF.Bytes(), dumpS.Bytes()) {
			t.Fatalf("seed %d: stats dumps differ between fast and slow paths", seed)
		}
	}
}

// translateRecorder records the (vpn, write) sequence OnTranslate observes.
type translateRecorder struct {
	calls []string
}

func (r *translateRecorder) OnTranslate(e *tlb.Entry, va uint64, write bool) {
	r.calls = append(r.calls, fmt.Sprintf("vpn=%#x write=%v", va/mem.PageSize, write))
}

func (r *translateRecorder) OnLLCMiss(e *tlb.Entry, va uint64, write bool) {}

// TestOnTranslateFiresOncePerPage pins the hook contract the prototype
// controllers (SSP, HSCC) depend on: OnTranslate fires exactly once per
// translated page per access — once for a single-line access, once per
// page for a spanning access, and still exactly once when the translation
// demand-faults and the translate loop retries after the kernel maps the
// page. The contract must hold identically with the fast paths on and off.
func TestOnTranslateFiresOncePerPage(t *testing.T) {
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("DisableFastPaths=%v", disable), func(t *testing.T) {
			cfg := machine.TestConfig()
			cfg.DisableFastPaths = disable
			m := machine.New(cfg)
			k := gemos.Boot(m)
			p, err := k.Spawn("hook-test")
			if err != nil {
				t.Fatal(err)
			}
			k.Switch(p)
			a, err := k.Mmap(p, 0, 4*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
			if err != nil {
				t.Fatal(err)
			}
			rec := &translateRecorder{}
			m.Core.SetHooks(rec)
			vpn := a / mem.PageSize

			mustAccess := func(va uint64, write bool, size int) {
				t.Helper()
				if _, err := m.Core.Access(va, write, size); err != nil {
					t.Fatalf("access(%#x,%v,%d): %v", va, write, size, err)
				}
			}
			expect := func(what string, want ...string) {
				t.Helper()
				if len(rec.calls) != len(want) {
					t.Fatalf("%s: %d OnTranslate calls %v, want %d %v", what, len(rec.calls), rec.calls, len(want), want)
				}
				for i := range want {
					if rec.calls[i] != want[i] {
						t.Fatalf("%s: call %d = %q, want %q", what, i, rec.calls[i], want[i])
					}
				}
				rec.calls = rec.calls[:0]
			}

			// First touch demand-faults; the translate retry after the
			// kernel installs the mapping must not double-fire the hook.
			mustAccess(a, true, 8)
			expect("demand-fault write", fmt.Sprintf("vpn=%#x write=true", vpn))

			// Warm single-line access: one call.
			mustAccess(a+64, false, 8)
			expect("warm read", fmt.Sprintf("vpn=%#x write=false", vpn))

			// Multi-line access inside one page: still one call.
			mustAccess(a+100, false, 200)
			expect("multi-line read", fmt.Sprintf("vpn=%#x write=false", vpn))

			// Page-spanning access: one call per page, in address order.
			// Page vpn+1 is untouched, so its translation demand-faults
			// mid-record — still exactly one call for it.
			mustAccess(a+mem.PageSize-32, true, 64)
			expect("page-spanning write",
				fmt.Sprintf("vpn=%#x write=true", vpn),
				fmt.Sprintf("vpn=%#x write=true", vpn+1))

			// A structural flush invalidates the translation cache; the
			// re-walk still fires exactly once.
			m.TLB.InvalidateAll()
			mustAccess(a, false, 8)
			expect("post-flush read", fmt.Sprintf("vpn=%#x write=false", vpn))
		})
	}
}
