package cpu_test

import (
	"strings"
	"testing"

	"kindle/internal/cpu"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
)

func boot(t testing.TB) (*machine.Machine, *gemos.Kernel, *gemos.Process) {
	t.Helper()
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	p, err := k.Spawn("cpu-test")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	return m, k, p
}

func TestPageFaultErrorMessage(t *testing.T) {
	e := &cpu.PageFaultError{VA: 0x1234, Write: true, Cause: "boom"}
	msg := e.Error()
	if !strings.Contains(msg, "write") || !strings.Contains(msg, "0x1234") || !strings.Contains(msg, "boom") {
		t.Fatalf("error message %q", msg)
	}
	r := &cpu.PageFaultError{VA: 1, Write: false, Cause: "x"}
	if !strings.Contains(r.Error(), "read") {
		t.Fatal("read fault not labelled")
	}
}

func TestAccessWithoutAddressSpace(t *testing.T) {
	m := machine.New(machine.TestConfig())
	if _, err := m.Core.Access(0x1000, false, 8); err == nil {
		t.Fatal("access with no address space succeeded")
	}
}

func TestRegistersSurviveSwitchRoundTrip(t *testing.T) {
	m, k, p1 := boot(t)
	p2, _ := k.Spawn("other")
	m.Core.Regs.GPR[cpu.RAX] = 111
	m.Core.Regs.RIP = 0x4000
	k.Switch(p2)
	m.Core.Regs.GPR[cpu.RAX] = 222
	k.Switch(p1)
	if m.Core.Regs.GPR[cpu.RAX] != 111 || m.Core.Regs.RIP != 0x4000 {
		t.Fatalf("register state lost across switches: rax=%d", m.Core.Regs.GPR[cpu.RAX])
	}
	_ = p1
}

func TestVirtToPhysUnmapped(t *testing.T) {
	m, _, _ := boot(t)
	if _, ok := m.Core.VirtToPhys(0xDEAD000); ok {
		t.Fatal("unmapped VA translated")
	}
	m.Core.Reset()
	if _, ok := m.Core.VirtToPhys(0x1000); ok {
		t.Fatal("translation after reset succeeded")
	}
}

func TestInKernelToggle(t *testing.T) {
	m, _, _ := boot(t)
	if m.Core.InKernel() {
		t.Fatal("booted in kernel mode")
	}
	m.Core.EnterKernel()
	if !m.Core.InKernel() {
		t.Fatal("EnterKernel had no effect")
	}
	m.Core.ExitKernel()
	if m.Core.InKernel() {
		t.Fatal("ExitKernel had no effect")
	}
}

func TestMSRResetOnCrash(t *testing.T) {
	m, _, _ := boot(t)
	m.Core.WriteMSR(cpu.MSRSSPEnable, 1)
	m.Crash()
	if m.Core.ReadMSR(cpu.MSRSSPEnable) != 0 {
		t.Fatal("MSR survived crash")
	}
}

func TestTLBCachesTranslationAcrossPTBRNoop(t *testing.T) {
	m, k, p := boot(t)
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, 0)
	m.Core.Access(a, true, 1)
	misses := m.Stats.Get("tlb.l2.miss")
	// Switching to the same address space must not flush the TLB.
	m.Core.SetAddressSpace(p.Table)
	m.Core.Access(a, false, 1)
	if m.Stats.Get("tlb.l2.miss") != misses {
		t.Fatal("same-table SetAddressSpace flushed the TLB")
	}
}

func TestPhysAccessAdvancesClock(t *testing.T) {
	m, _, _ := boot(t)
	before := m.Clock.Now()
	lat := m.Core.PhysAccess(0x100, true)
	if lat == 0 || m.Clock.Now() != before+lat {
		t.Fatalf("PhysAccess lat=%d now=%d", lat, m.Clock.Now())
	}
}

func TestFenceAfterNVMWrites(t *testing.T) {
	m, _, _ := boot(t)
	nvm := m.Cfg.Layout.NVMBase
	// Push writes into the NVM buffer, then fence: the fence must wait.
	for i := 0; i < 8; i++ {
		m.Core.PhysAccess(nvm+mem.PhysAddr(i*64), true)
		m.Core.Clwb(nvm + mem.PhysAddr(i*64))
	}
	if lat := m.Core.Fence(); lat == 0 {
		t.Fatal("fence free despite pending NVM writes")
	}
	if lat := m.Core.Fence(); lat != 0 {
		t.Fatalf("second fence cost %d with drained buffer", lat)
	}
}

func TestAccessSizeSpansManyLines(t *testing.T) {
	m, k, p := boot(t)
	a, _ := k.Mmap(p, 0, 8192, gemos.ProtRead|gemos.ProtWrite, 0)
	if _, err := m.Core.Access(a, true, 4096); err != nil {
		t.Fatal(err)
	}
	// 4096-byte write touches 64 lines.
	if m.Stats.Get("cache.l1.miss") < 32 {
		t.Fatalf("wide access touched too few lines: %d misses", m.Stats.Get("cache.l1.miss"))
	}
}

func TestLLCMissModeAttribution(t *testing.T) {
	m, k, p := boot(t)
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, 0)
	m.Core.Access(a, true, 8) // user-mode cold miss (plus kernel fault work)
	if m.Stats.Get("cache.llc_miss_user") == 0 {
		t.Fatal("user-mode LLC miss not attributed")
	}
	m.Core.EnterKernel()
	m.Core.PhysAccess(mem.PhysAddr(0x400000), false) // kernel cold miss
	m.Core.ExitKernel()
	if m.Stats.Get("cache.llc_miss_kernel") == 0 {
		t.Fatal("kernel-mode LLC miss not attributed")
	}
}

func TestKernelModeNests(t *testing.T) {
	m, _, _ := boot(t)
	m.Core.EnterKernel()
	m.Core.EnterKernel()
	m.Core.ExitKernel()
	if !m.Core.InKernel() {
		t.Fatal("nested ExitKernel dropped out of kernel mode early")
	}
	m.Core.ExitKernel()
	if m.Core.InKernel() {
		t.Fatal("still in kernel after balanced exits")
	}
	m.Core.ExitKernel() // underflow is clamped
	if m.Core.InKernel() {
		t.Fatal("underflow produced kernel mode")
	}
}
