package cpu

import (
	"sort"

	"kindle/internal/pt"
)

// Snapshot mirror of the core's architectural state, for machine forks.
// The software translation cache is deliberately not captured: it is an
// exact specialization of the slow path (semantically invisible), so a
// fork restarting with a cold tc produces bit-identical simulated state.

// MSRState is one model-specific register value.
type MSRState struct {
	Index uint32
	Value uint64
}

// CoreState mirrors the core's mutable architectural state.
type CoreState struct {
	Regs        Registers
	MSRs        []MSRState // index-sorted
	KernelDepth int
}

// CaptureState copies the core's architectural state.
func (c *Core) CaptureState() CoreState {
	st := CoreState{Regs: c.Regs, KernelDepth: c.kernelDepth}
	st.MSRs = make([]MSRState, 0, len(c.msrs))
	for n, v := range c.msrs {
		st.MSRs = append(st.MSRs, MSRState{Index: n, Value: v})
	}
	sort.Slice(st.MSRs, func(i, j int) bool { return st.MSRs[i].Index < st.MSRs[j].Index })
	return st
}

// RestoreState overwrites the core's architectural state and drops the
// software translation cache (its cached TLB pointers belong to another
// machine's TLB).
func (c *Core) RestoreState(st CoreState) {
	c.Regs = st.Regs
	c.msrs = make(map[uint32]uint64, len(st.MSRs))
	for _, m := range st.MSRs {
		c.msrs[m.Index] = m.Value
	}
	c.kernelDepth = st.KernelDepth
	c.tc = [tcSlots]tcEntry{}
	c.llcMissed = false
}

// RestoreAddressSpace points the PTBR at table without the TLB flush and
// ptbr_write count a live SetAddressSpace performs: on a fork the restored
// TLB contents already describe this address space, and the switch-cost
// stats were captured with the rest of the registry.
func (c *Core) RestoreAddressSpace(t *pt.Table) { c.table = t }
