// Package cpu models the execution core of a Kindle machine: the register
// file that process persistence checkpoints, model-specific registers
// (MSRs) used by the SSP prototype to communicate NVM ranges and metadata
// bases to hardware, and the virtual-memory access path
// (TLB → page-table walk → cache hierarchy → memory).
package cpu

import (
	"fmt"

	"kindle/internal/cache"
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/pt"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// Registers is the architectural register file saved and restored by
// context switches and persistence checkpoints.
type Registers struct {
	GPR    [16]uint64 // rax..r15
	RIP    uint64
	RFLAGS uint64
}

// Common GPR indices (System V order).
const (
	RAX = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
)

// MSR numbers defined by the Kindle prototypes. The SSP hardware extension
// reads the NVM virtual range and the SSP-cache base from these, exactly as
// the paper describes ("we use Model Specific Registers to communicate the
// virtual address range corresponding to NVM allocation to hardware").
const (
	MSRSSPRangeBase uint32 = 0xC000_0100
	MSRSSPRangeEnd  uint32 = 0xC000_0101
	MSRSSPCacheBase uint32 = 0xC000_0102
	MSRSSPEnable    uint32 = 0xC000_0103
)

// PageFaultError describes a translation failure the OS refused to fix.
type PageFaultError struct {
	VA    uint64
	Write bool
	Cause string
}

func (e *PageFaultError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("cpu: page fault on %s of %#x: %s", op, e.VA, e.Cause)
}

// FaultHandler is the OS upcall invoked on a page fault. On success it must
// have installed a mapping for va (the core retries the walk) and returns
// the kernel latency consumed. On failure it returns an error; the core
// surfaces it (the process would be killed).
type FaultHandler interface {
	HandlePageFault(va uint64, write bool) (sim.Cycles, error)
}

// Hooks observe the access path. Prototypes install them: SSP marks updated
// bitmaps on NVM stores, HSCC counts LLC misses per page.
type Hooks interface {
	// OnTranslate runs after a successful translation, before the cache
	// access. The entry is mutable.
	OnTranslate(e *tlb.Entry, va uint64, write bool)
	// OnLLCMiss runs when the access misses the last-level cache.
	OnLLCMiss(e *tlb.Entry, va uint64, write bool)
}

// tcSlots sizes the core's software translation cache. 64 direct-mapped
// entries cover the hot pages between TLB structural changes; the array is
// small enough that the whole cache stays in the host's L1.
const tcSlots = 64

// tcEntry is one translation-cache slot: a VPN, the TLB entry it resolved
// to, and the TLB structural generation at fill time. The slot hits only
// while the generation is unchanged, which guarantees the pointer still
// names a live L1 TLB slot holding the same translation.
type tcEntry struct {
	vpn uint64
	gen uint64
	e   *tlb.Entry
}

// Core is a single simulated CPU.
type Core struct {
	clock *sim.Clock
	stats *sim.Stats

	Regs Registers
	msrs map[uint32]uint64

	TLB  *tlb.TLB
	Hier *cache.Hierarchy
	ctrl *mem.Controller

	table *pt.Table // current address space
	fault FaultHandler
	hooks Hooks

	// kernelDepth attributes access time to OS work (stats only); a
	// nesting depth rather than a flag so kernel paths that call other
	// kernel paths (a syscall triggering a checkpoint, recovery adopting
	// processes) keep correct attribution.
	kernelDepth int

	llcMissed bool // scratch flag set by the hierarchy miss observer

	// Software translation cache: the entries returned by recent
	// successful translates, direct-mapped on VPN, each valid while the
	// TLB's structural generation is unchanged since it was cached.
	// Accesses that alternate among a working set of hot pages (the
	// common replay pattern) skip the TLB set scan entirely; FastHit
	// keeps LRU state, stats and timing identical to the L1 lookup hit
	// it replaces, so the cache is semantically invisible.
	tc      [tcSlots]tcEntry
	fastOff bool // disables the tc and Access fast path (equivalence testing)

	tr *obs.Tracer // nil when tracing is off

	tlbLookupLat *sim.Histogram
	ptwalkLat    *sim.Histogram

	kernelCycles  *sim.Counter
	userCycles    *sim.Counter
	loads         *sim.Counter
	stores        *sim.Counter
	fences        *sim.Counter
	ptbrWrites    *sim.Counter
	llcMissKernel *sim.Counter
	llcMissUser   *sim.Counter
}

// New builds a core bound to the given translation and memory structures.
func New(clock *sim.Clock, stats *sim.Stats, t *tlb.TLB, h *cache.Hierarchy, ctrl *mem.Controller) *Core {
	c := &Core{
		clock:        clock,
		stats:        stats,
		msrs:         make(map[uint32]uint64),
		TLB:          t,
		Hier:         h,
		ctrl:         ctrl,
		tlbLookupLat: stats.Hist("tlb.lookup_lat"),
		ptwalkLat:    stats.Hist("cpu.ptwalk_lat"),

		kernelCycles:  stats.Counter("cpu.kernel_cycles"),
		userCycles:    stats.Counter("cpu.user_cycles"),
		loads:         stats.Counter("cpu.load"),
		stores:        stats.Counter("cpu.store"),
		fences:        stats.Counter("cpu.fence"),
		ptbrWrites:    stats.Counter("cpu.ptbr_write"),
		llcMissKernel: stats.Counter("cache.llc_miss_kernel"),
		llcMissUser:   stats.Counter("cache.llc_miss_user"),
	}
	h.SetMissObserver(func(pa mem.PhysAddr, write bool) {
		c.llcMissed = true
		// Attribute the miss to the privilege mode, so experiments can
		// quantify cache pollution caused by OS activities (migrations,
		// checkpoints) separately from application misses.
		if c.kernelDepth > 0 {
			c.llcMissKernel.Inc()
		} else {
			c.llcMissUser.Inc()
		}
	})
	return c
}

// SetFaultHandler installs the OS page-fault upcall.
func (c *Core) SetFaultHandler(h FaultHandler) { c.fault = h }

// SetTracer installs the event tracer (nil disables).
func (c *Core) SetTracer(tr *obs.Tracer) { c.tr = tr }

// SetHooks installs prototype observation hooks (nil clears).
func (c *Core) SetHooks(h Hooks) { c.hooks = h }

// SetFastPaths enables or disables the core's software fast paths (on by
// default): the N-entry translation cache and the single-line Access
// shortcut. Both are exact specializations of the slow path — simulated
// time, stats and hook firings are bit-identical either way — so the
// switch exists only for the equivalence tests that pin that claim.
func (c *Core) SetFastPaths(on bool) {
	c.fastOff = !on
	if !on {
		c.tc = [tcSlots]tcEntry{}
	}
}

// SetAddressSpace points the core's PTBR at table and flushes the TLB
// (firing eviction hooks, as a real context switch would let the prototype
// hardware write back metadata first).
func (c *Core) SetAddressSpace(t *pt.Table) {
	if c.table == t {
		return
	}
	c.table = t
	c.TLB.InvalidateAll()
	c.ptbrWrites.Inc()
}

// AddressSpace returns the current table (nil before the first switch).
func (c *Core) AddressSpace() *pt.Table { return c.table }

// EnterKernel / ExitKernel bracket OS work for time attribution; calls
// nest.
func (c *Core) EnterKernel() { c.kernelDepth++ }
func (c *Core) ExitKernel() {
	if c.kernelDepth > 0 {
		c.kernelDepth--
	}
}

// InKernel reports the current mode.
func (c *Core) InKernel() bool { return c.kernelDepth > 0 }

// ReadMSR returns the MSR value (zero when never written).
func (c *Core) ReadMSR(n uint32) uint64 { return c.msrs[n] }

// WriteMSR sets an MSR.
func (c *Core) WriteMSR(n uint32, v uint64) { c.msrs[n] = v }

// charge advances the clock and attributes the time.
func (c *Core) charge(lat sim.Cycles) {
	c.clock.Advance(lat)
	if c.kernelDepth > 0 {
		c.kernelCycles.Add(uint64(lat))
	} else {
		c.userCycles.Add(uint64(lat))
	}
}

// translate resolves va to a TLB entry, walking and fault-handling as
// needed. The returned entry is live TLB state.
func (c *Core) translate(va uint64, write bool) (*tlb.Entry, error) {
	vpn := va / mem.PageSize
	if !c.fastOff {
		if s := &c.tc[vpn&(tcSlots-1)]; s.vpn == vpn && s.gen == c.TLB.Gen() && s.e != nil {
			// The translation was cached while it sat in the TLB's L1 and
			// the TLB has not been structurally touched since, so it still
			// does. FastHit charges and counts exactly what the full
			// lookup would.
			lat := c.TLB.FastHit(s.e)
			c.charge(lat)
			c.tlbLookupLat.ObserveCycles(lat)
			return s.e, nil
		}
	}
	for attempt := 0; attempt < 3; attempt++ {
		e, lat := c.TLB.Lookup(vpn)
		c.charge(lat)
		c.tlbLookupLat.ObserveCycles(lat)
		if e != nil {
			c.tc[vpn&(tcSlots-1)] = tcEntry{vpn: vpn, gen: c.TLB.Gen(), e: e}
			return e, nil
		}
		if c.tr.Enabled(obs.CatTLB) {
			c.tr.Instant(obs.CatTLB, "tlb.miss", "va", va)
		}
		if c.table == nil {
			return nil, &PageFaultError{VA: va, Write: write, Cause: "no address space"}
		}
		walkStart := c.clock.Now()
		leaf, wlat, ok := c.table.Walk(va)
		c.charge(wlat)
		c.ptwalkLat.ObserveCycles(wlat)
		if c.tr.Enabled(obs.CatPTWalk) {
			// The walk itself advances the clock inside Walk (timed memory
			// reads), so the span covers walkStart..Now rather than wlat.
			c.tr.Span(obs.CatPTWalk, "ptwalk", walkStart, c.clock.Now()-walkStart, "va", va)
		}
		if ok {
			// Complete the translation from the walk result, as the
			// hardware fill path does. Charging a fresh Lookup here (the
			// pre-fix behavior) double-charged every TLB fill with an L1
			// probe the real machine never issues.
			e := c.TLB.InsertAndGet(tlb.Entry{
				VPN:      vpn,
				PFN:      leaf.PFN(),
				Writable: leaf.Writable(),
				NVM:      leaf.NVM(),
			})
			c.tc[vpn&(tcSlots-1)] = tcEntry{vpn: vpn, gen: c.TLB.Gen(), e: e}
			return e, nil
		}
		if c.fault == nil {
			return nil, &PageFaultError{VA: va, Write: write, Cause: "no fault handler"}
		}
		flat, err := c.fault.HandlePageFault(va, write)
		// Fault handler runs in kernel mode; its own memory operations
		// already advanced the clock. flat covers fixed entry/exit cost.
		c.kernelCycles.Add(uint64(flat))
		c.clock.Advance(flat)
		if err != nil {
			return nil, err
		}
	}
	return nil, &PageFaultError{VA: va, Write: write, Cause: "translation did not converge"}
}

// Access performs a timed user/kernel data access of size bytes at va,
// splitting across cache lines and pages as needed. It returns the total
// latency (the clock has already advanced).
func (c *Core) Access(va uint64, write bool, size int) (sim.Cycles, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cpu: access size %d", size)
	}
	start := c.clock.Now()
	if !c.fastOff && va^(va+uint64(size)-1) < mem.LineSize {
		// Fast path: the access stays inside one cache line (and therefore
		// one page) — the overwhelmingly common replay shape. This is the
		// general loop below specialized to a single iteration; every
		// charge, stat and hook fires identically.
		e, err := c.translate(va, write)
		if err != nil {
			return c.clock.Now() - start, err
		}
		if write && !e.Writable {
			return c.clock.Now() - start, &PageFaultError{VA: va, Write: true, Cause: "write to read-only page"}
		}
		if c.hooks != nil {
			c.hooks.OnTranslate(e, va, write)
		}
		pa := mem.FrameBase(e.PFN) + mem.PhysAddr(va%mem.PageSize)
		c.llcMissed = false
		lat := c.Hier.Access(pa, write)
		c.charge(lat)
		if c.llcMissed && c.hooks != nil {
			c.hooks.OnLLCMiss(e, va, write)
		}
		if write {
			c.stores.Inc()
		} else {
			c.loads.Inc()
		}
		return c.clock.Now() - start, nil
	}
	end := va + uint64(size)
	for cur := va; cur < end; {
		e, err := c.translate(cur, write)
		if err != nil {
			return c.clock.Now() - start, err
		}
		if write && !e.Writable {
			return c.clock.Now() - start, &PageFaultError{VA: cur, Write: true, Cause: "write to read-only page"}
		}
		if c.hooks != nil {
			c.hooks.OnTranslate(e, cur, write)
		}
		// Access the lines this request covers within the current page.
		pageEnd := (cur/mem.PageSize + 1) * mem.PageSize
		chunkEnd := end
		if chunkEnd > pageEnd {
			chunkEnd = pageEnd
		}
		for line := cur &^ (mem.LineSize - 1); line < chunkEnd; line += mem.LineSize {
			pa := mem.FrameBase(e.PFN) + mem.PhysAddr(line%mem.PageSize)
			c.llcMissed = false
			lat := c.Hier.Access(pa, write)
			c.charge(lat)
			if c.llcMissed && c.hooks != nil {
				c.hooks.OnLLCMiss(e, cur, write)
			}
		}
		cur = chunkEnd
	}
	if write {
		c.stores.Inc()
	} else {
		c.loads.Inc()
	}
	return c.clock.Now() - start, nil
}

// PhysAccess performs a timed access by physical address (kernel paths that
// bypass translation: page copies, metadata updates).
func (c *Core) PhysAccess(pa mem.PhysAddr, write bool) sim.Cycles {
	lat := c.Hier.Access(pa, write)
	c.charge(lat)
	return lat
}

// Clwb issues a cache-line write-back for the line holding physical
// address pa, advancing the clock.
func (c *Core) Clwb(pa mem.PhysAddr) sim.Cycles {
	lat := c.Hier.Clwb(pa)
	c.charge(lat)
	return lat
}

// Fence drains the NVM write buffer (sfence + ADR semantics): the caller
// observes all previously issued NVM writes as durable once it returns.
func (c *Core) Fence() sim.Cycles {
	lat := c.ctrl.NVM().DrainLatency()
	c.charge(lat)
	c.fences.Inc()
	return lat
}

// VirtToPhys translates functionally (no timing, no TLB effects); returns
// ok=false when unmapped. Diagnostic and recovery use.
func (c *Core) VirtToPhys(va uint64) (mem.PhysAddr, bool) {
	if c.table == nil {
		return 0, false
	}
	e, ok := c.table.Lookup(va)
	if !ok {
		return 0, false
	}
	return mem.FrameBase(e.PFN()) + mem.PhysAddr(va%mem.PageSize), true
}

// Reset models the core losing volatile state at power failure.
func (c *Core) Reset() {
	c.Regs = Registers{}
	c.tc = [tcSlots]tcEntry{} // release stale TLB pointers
	c.msrs = make(map[uint32]uint64)
	c.TLB.Reset()
	c.table = nil
	c.kernelDepth = 0
}
