package traffic

import (
	"fmt"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/sim"
)

// TenantPrefix returns tenant i's stats namespace ("traffic.t0007").
func TenantPrefix(i int) string { return fmt.Sprintf("traffic.t%04d", i) }

// TenantLatStat returns the name of tenant i's latency histogram.
func TenantLatStat(i int) string { return TenantPrefix(i) + ".lat" }

// pendingOp is one arrived-but-not-yet-executed operation. Its parameters
// are drawn from the tenant's RNG at arrival time, so the random streams
// advance on the arrival schedule regardless of execution order.
type pendingOp struct {
	arrival sim.Cycles
	kind    OpKind
	off     uint64
	size    uint64
}

// tenant is one load-generating gemOS process plus its samplers and queue.
type tenant struct {
	id      int
	proc    *gemos.Process
	area    uint64 // base VA of the mmap'd working area
	areaLen uint64
	nvm     bool

	arrivals arrivalSampler
	keys     keySampler
	sizes    sizeSampler
	mix      mixPicker

	lat *sim.Histogram

	queue []pendingOp
	qhead int

	// nextArrival is armed (arrivalDue) while a future arrival is
	// scheduled: always in the open loop until the op budget is issued; in
	// the closed loop only between an op's completion and the next issue.
	nextArrival sim.Cycles
	arrivalDue  bool

	issued, done int
}

func (t *tenant) queued() int { return len(t.queue) - t.qhead }

func (t *tenant) push(op pendingOp) { t.queue = append(t.queue, op) }

func (t *tenant) pop() pendingOp {
	op := t.queue[t.qhead]
	t.qhead++
	if t.qhead == len(t.queue) {
		t.queue = t.queue[:0]
		t.qhead = 0
	}
	return op
}

// Engine drives a fleet of tenants through the kernel's scheduler. Build
// with New, run with Run; one Engine per run.
type Engine struct {
	k    *gemos.Kernel
	m    *machine.Machine
	spec Spec

	sched   *gemos.Scheduler
	tenants []*tenant
	byPID   map[int]*tenant

	aggLat  *sim.Histogram
	kindLat [numOpKinds]*sim.Histogram

	done, total int

	// OnOp, when non-nil, is called after every completed operation with
	// the running completion count (progress reporting).
	OnOp func(done, total int)
}

// New validates spec, spawns the tenant processes (each with a demand-paged
// working area, NVM-backed per Spec.NVMFraction), registers their latency
// histograms and enrolls them with a fresh round-robin scheduler. Tenants
// start blocked; arrivals unblock them.
func New(k *gemos.Kernel, spec Spec) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		k:     k,
		m:     k.M,
		spec:  spec,
		sched: gemos.NewScheduler(k, sim.FromDuration(spec.Quantum)),
		byPID: make(map[int]*tenant),
	}
	e.aggLat = e.m.Stats.Hist("traffic.lat")
	for kind := OpPoint; kind < numOpKinds; kind++ {
		e.kindLat[kind] = e.m.Stats.Hist("traffic.lat." + kind.String())
	}
	for i := 0; i < spec.Tenants; i++ {
		p, err := k.Spawn(fmt.Sprintf("tenant-%04d", i))
		if err != nil {
			return nil, fmt.Errorf("traffic: spawn tenant %d: %w", i, err)
		}
		var flags uint32
		nvm := nvmTenant(i, spec.NVMFraction)
		if nvm {
			flags = gemos.MapNVM
		}
		area, err := k.Mmap(p, 0, spec.Footprint, gemos.ProtRead|gemos.ProtWrite, flags)
		if err != nil {
			return nil, fmt.Errorf("traffic: map tenant %d area: %w", i, err)
		}
		rng := sim.NewRNG(deriveSeed(spec.Seed, i))
		t := &tenant{
			id:       i,
			proc:     p,
			area:     area,
			areaLen:  spec.Footprint,
			nvm:      nvm,
			arrivals: newArrivalSampler(spec, rng),
			keys:     newKeySampler(spec, rng),
			sizes:    newSizeSampler(spec, rng),
			mix:      newMixPicker(spec.Mix, rng),
			lat:      e.m.Stats.Hist(TenantLatStat(i)),
		}
		p.State = gemos.ProcBlocked
		e.sched.Add(p)
		e.tenants = append(e.tenants, t)
		e.byPID[p.PID] = t
	}
	return e, nil
}

// Run executes the workload to completion: spec.Ops operations per tenant,
// scheduled round-robin with quantum preemption at op boundaries, idling
// (event-aware) between arrivals. It returns the run summary; the same
// numbers are published into the machine's stats registry under traffic.*.
func (e *Engine) Run() (*Result, error) {
	e.total = e.spec.Tenants * e.spec.Ops
	idleTick := sim.FromDuration(e.spec.IdleTick)
	e.sched.Start()
	defer e.sched.Stop()
	now := e.m.Clock.Now()
	for _, t := range e.tenants {
		if e.spec.Ops > 0 {
			t.nextArrival = now + t.arrivals.next()
			t.arrivalDue = true
		}
	}
	for e.done < e.total {
		e.admit()
		p := e.k.Current()
		if p == nil || e.byPID[p.PID] == nil || e.byPID[p.PID].queued() == 0 || e.sched.NeedsResched() {
			p = e.sched.Resched()
		}
		if p == nil {
			// Every tenant is blocked: park until the earliest scheduled
			// arrival, firing timer events along the way.
			target, ok := e.nextDeadline()
			if !ok {
				return nil, fmt.Errorf("traffic: engine stalled with %d/%d ops done", e.done, e.total)
			}
			if now := e.m.Clock.Now(); target > now {
				e.k.Park(target-now, idleTick)
			}
			continue
		}
		t := e.byPID[p.PID]
		if err := e.exec(t, t.pop()); err != nil {
			return nil, err
		}
	}
	return e.finalize(), nil
}

// admit materializes every arrival due by now, in tenant order. Open-loop
// tenants immediately re-arm their next arrival, so a backlogged tenant
// keeps queueing work (the open-loop tail-latency regime).
func (e *Engine) admit() {
	now := e.m.Clock.Now()
	for _, t := range e.tenants {
		for t.arrivalDue && t.nextArrival <= now {
			at := t.nextArrival
			t.push(pendingOp{arrival: at, kind: t.mix.next(), off: t.keys.next(), size: t.sizes.next()})
			t.issued++
			switch {
			case t.issued >= e.spec.Ops:
				t.arrivalDue = false
			case e.spec.Loop == LoopOpen:
				t.nextArrival = at + t.arrivals.next()
			default: // closed loop: re-armed at completion
				t.arrivalDue = false
			}
			if t.proc.State == gemos.ProcBlocked {
				t.proc.State = gemos.ProcReady
			}
		}
	}
}

// nextDeadline returns the earliest armed arrival across tenants.
func (e *Engine) nextDeadline() (sim.Cycles, bool) {
	var min sim.Cycles
	found := false
	for _, t := range e.tenants {
		if !t.arrivalDue {
			continue
		}
		if !found || t.nextArrival < min {
			min, found = t.nextArrival, true
		}
	}
	return min, found
}

// exec runs one operation on the core as tenant t, records its latency
// (completion minus arrival, so queueing delay under contention counts)
// and fires due machine events.
func (e *Engine) exec(t *tenant, op pendingOp) error {
	core := e.m.Core
	var err error
	switch op.kind {
	case OpWrite:
		_, err = core.Access(t.area+op.off, true, 8)
	case OpScan:
		size := op.size
		if size > t.areaLen {
			size = t.areaLen
		}
		if size < 1 {
			size = 1
		}
		if first := t.areaLen - op.off; first >= size {
			_, err = core.Access(t.area+op.off, false, int(size))
		} else {
			// The scan wraps at the end of the area.
			if _, err = core.Access(t.area+op.off, false, int(first)); err == nil {
				_, err = core.Access(t.area, false, int(size-first))
			}
		}
	default: // OpPoint
		_, err = core.Access(t.area+op.off, false, 8)
	}
	if err != nil {
		return fmt.Errorf("traffic: tenant %s %s at +%#x: %w", t.proc.Name, op.kind, op.off, err)
	}
	lat := uint64(e.m.Clock.Now() - op.arrival)
	t.lat.Observe(lat)
	e.kindLat[op.kind].Observe(lat)
	e.aggLat.Observe(lat)
	t.done++
	e.done++
	if e.spec.Loop == LoopClosed && t.issued < e.spec.Ops {
		t.nextArrival = e.m.Clock.Now() + t.arrivals.next()
		t.arrivalDue = true
	}
	if t.queued() == 0 {
		t.proc.State = gemos.ProcBlocked
	}
	e.k.Tick()
	if e.OnOp != nil {
		e.OnOp(e.done, e.total)
	}
	return nil
}

// Result summarizes a traffic run. Every field is also published as a
// traffic.* stat, so stats dumps carry the whole summary.
type Result struct {
	Spec Spec
	// Ops is the total operations completed across tenants.
	Ops uint64
	// P50/P95/P99 are log2-bucket upper bounds on the aggregate latency
	// quantiles, in cycles.
	P50, P95, P99 uint64
	// MeanLat is the aggregate mean operation latency in cycles.
	MeanLat float64
	// Jain is Jain's fairness index over per-tenant mean latencies:
	// 1.0 when every tenant sees the same mean, approaching 1/n under
	// maximal skew.
	Jain    float64
	Tenants []TenantResult
}

// TenantResult is one tenant's slice of the run.
type TenantResult struct {
	ID      int
	Name    string
	PID     int
	NVM     bool
	Ops     uint64
	MeanLat float64
	P99     uint64
	Acct    gemos.Acct
}

// finalize settles CPU accounting and publishes the deterministic summary
// (fixed names, tenant-index order) into the stats registry.
func (e *Engine) finalize() *Result {
	e.k.AccountNow()
	st := e.m.Stats
	res := &Result{
		Spec:    e.spec,
		Ops:     uint64(e.done),
		P50:     e.aggLat.Quantile(0.50),
		P95:     e.aggLat.Quantile(0.95),
		P99:     e.aggLat.Quantile(0.99),
		MeanLat: e.aggLat.Mean(),
	}
	var sum, sumsq float64
	sampled := 0
	for _, t := range e.tenants {
		if t.lat.Count() == 0 {
			continue
		}
		m := t.lat.Mean()
		sum += m
		sumsq += m * m
		sampled++
	}
	if sampled > 0 && sumsq > 0 {
		res.Jain = sum * sum / (float64(sampled) * sumsq)
	}
	st.Set("traffic.tenants", uint64(len(e.tenants)))
	st.Set("traffic.ops", res.Ops)
	st.Set("traffic.lat_p50", res.P50)
	st.Set("traffic.lat_p95", res.P95)
	st.Set("traffic.lat_p99", res.P99)
	st.Set("traffic.fairness_jain_x1e6", uint64(res.Jain*1e6+0.5))
	for _, t := range e.tenants {
		acct := t.proc.Accounting()
		pfx := TenantPrefix(t.id)
		st.Set(pfx+".ops", uint64(t.done))
		st.Set(pfx+".faults", acct.Faults)
		st.Set(pfx+".resident_pages", acct.ResidentPages)
		st.Set(pfx+".cpu_cycles", uint64(acct.CPUCycles))
		st.Set(pfx+".switches", acct.Switches)
		st.Set(pfx+".migrations", acct.Migrations)
		res.Tenants = append(res.Tenants, TenantResult{
			ID:      t.id,
			Name:    t.proc.Name,
			PID:     t.proc.PID,
			NVM:     t.nvm,
			Ops:     uint64(t.done),
			MeanLat: t.lat.Mean(),
			P99:     t.lat.Quantile(0.99),
			Acct:    acct,
		})
	}
	return res
}
