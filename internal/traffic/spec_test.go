package traffic

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if spec != DefaultSpec() {
		t.Fatalf("empty spec is not the default: %+v", spec)
	}
}

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("tenants=32;seed=7;ops=2000;arrival=fixed;loop=closed;rate=50000;" +
		"mix=scan:0.2,point:0.7,write:0.1;keys=zipf:0.9;sizes=uniform:64-1KiB;" +
		"footprint=1MiB;nvm=0.25;quantum=2ms;idle-tick=5us")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tenants != 32 || spec.Seed != 7 || spec.Ops != 2000 {
		t.Fatalf("tenants/seed/ops wrong: %+v", spec)
	}
	if spec.Arrival != ArrivalFixed || spec.Loop != LoopClosed || spec.Rate != 50000 {
		t.Fatalf("arrival/loop/rate wrong: %+v", spec)
	}
	if spec.Mix != [3]float64{OpPoint: 0.7, OpScan: 0.2, OpWrite: 0.1} {
		t.Fatalf("mix wrong: %v", spec.Mix)
	}
	if spec.Keys != KeysZipf || spec.Theta != 0.9 {
		t.Fatalf("keys wrong: %+v", spec)
	}
	if spec.Sizes != SizesUniform || spec.SizeLo != 64 || spec.SizeHi != 1024 {
		t.Fatalf("sizes wrong: %+v", spec)
	}
	if spec.Footprint != 1<<20 || spec.NVMFraction != 0.25 {
		t.Fatalf("footprint/nvm wrong: %+v", spec)
	}
	if spec.Quantum != 2*time.Millisecond || spec.IdleTick != 5*time.Microsecond {
		t.Fatalf("quantum/idle-tick wrong: %+v", spec)
	}
}

func TestParseSpecMixShorthand(t *testing.T) {
	spec, err := ParseSpec("scan:0.2,point:0.7,write:0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := [3]float64{OpPoint: 0.7, OpScan: 0.2, OpWrite: 0.1}
	if spec.Mix != want {
		t.Fatalf("mix = %v, want %v", spec.Mix, want)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	orig, err := ParseSpec("tenants=5;loop=closed;keys=uniform;sizes=uniform:64-4096;nvm=0.4")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(orig.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", orig.String(), err)
	}
	if orig != again {
		t.Fatalf("round trip changed the spec:\n  orig:  %+v\n  again: %+v", orig, again)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []struct{ in, frag string }{
		{"bogus", "not key=value"},
		{"frobnicate=1", "unknown spec field"},
		{"arrival=bursty", "unknown arrival"},
		{"loop=half", "unknown loop"},
		{"rate=-5", "positive"},
		{"mix=read:1", "unknown mix kind"},
		{"mix=point:0,scan:0", "no positive weight"},
		{"keys=pareto", "unknown key distribution"},
		{"keys=zipf:1.5", "theta"},
		{"sizes=uniform:64", "lo-hi"},
		{"sizes=uniform:1024-64", "size range"},
		{"tenants=0", "at least 1"},
		{"footprint=8", "key stride"},
		{"nvm=1.5", "must be in [0, 1]"},
		{"quantum=0s", "must be positive"},
	} {
		_, err := ParseSpec(bad.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error containing %q", bad.in, bad.frag)
			continue
		}
		if !strings.Contains(err.Error(), bad.frag) {
			t.Errorf("ParseSpec(%q) error %q lacks %q", bad.in, err, bad.frag)
		}
	}
}

func TestNVMTenantInterleave(t *testing.T) {
	count := func(n int, frac float64) int {
		c := 0
		for i := 0; i < n; i++ {
			if nvmTenant(i, frac) {
				c++
			}
		}
		return c
	}
	if got := count(8, 0); got != 0 {
		t.Fatalf("frac=0 backed %d tenants with NVM", got)
	}
	if got := count(8, 1); got != 8 {
		t.Fatalf("frac=1 backed %d/8 tenants with NVM", got)
	}
	if got := count(8, 0.5); got != 4 {
		t.Fatalf("frac=0.5 backed %d/8 tenants with NVM, want 4", got)
	}
	// Growing the fleet never flips an existing tenant's backing.
	for i := 0; i < 16; i++ {
		if nvmTenant(i, 0.5) != nvmTenant(i, 0.5) {
			t.Fatal("nvmTenant not a pure function of (i, frac)")
		}
	}
}

func TestDeriveSeedStreamsIndependent(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := deriveSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("tenants %d and %d share derived seed %#x", prev, i, s)
		}
		seen[s] = i
	}
	if deriveSeed(1, 0) == deriveSeed(2, 0) {
		t.Fatal("different root seeds gave tenant 0 the same stream")
	}
}
