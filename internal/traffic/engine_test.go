package traffic

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/sim"
)

// runDump executes spec on a fresh small machine and returns the result
// plus the full stats dump.
func runDump(t *testing.T, spec Spec, event bool) (*Result, string) {
	t.Helper()
	cfg := machine.TestConfig()
	cfg.EventDrivenClock = event
	m := machine.New(cfg)
	eng, err := New(gemos.Boot(m), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, m.Stats.Dump("")
}

func quickSpec() Spec {
	spec := DefaultSpec()
	spec.Tenants = 4
	spec.Ops = 150
	spec.Footprint = 64 << 10
	return spec
}

func TestEngineSeedDeterminism(t *testing.T) {
	spec := quickSpec()
	_, a := runDump(t, spec, false)
	_, b := runDump(t, spec, false)
	if a != b {
		t.Fatal("same seed + spec produced different stats dumps")
	}
	spec.Seed = 99
	_, c := runDump(t, spec, false)
	if a == c {
		t.Fatal("different seeds produced identical dumps; the seed is not reaching the samplers")
	}
}

func TestEngineEventClockIdentity(t *testing.T) {
	for _, loop := range []LoopKind{LoopOpen, LoopClosed} {
		spec := quickSpec()
		spec.Loop = loop
		_, stepped := runDump(t, spec, false)
		_, event := runDump(t, spec, true)
		if stepped != event {
			t.Fatalf("%s-loop: stepped vs event-clock dumps differ:\n%s",
				loop, firstLineDiff(stepped, event))
		}
	}
}

func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  stepped: %s\n  event:   %s", i+1, al[i], bl[i])
		}
	}
	return "dumps differ in length only"
}

func TestEngineCompletesBudgetAndAccounts(t *testing.T) {
	spec := quickSpec()
	res, dump := runDump(t, spec, false)
	if res.Ops != uint64(spec.Tenants*spec.Ops) {
		t.Fatalf("completed %d ops, want %d", res.Ops, spec.Tenants*spec.Ops)
	}
	if len(res.Tenants) != spec.Tenants {
		t.Fatalf("%d tenant results, want %d", len(res.Tenants), spec.Tenants)
	}
	var switches uint64
	for _, tr := range res.Tenants {
		if tr.Ops != uint64(spec.Ops) {
			t.Fatalf("tenant %d completed %d ops, want %d", tr.ID, tr.Ops, spec.Ops)
		}
		if tr.Acct.CPUCycles == 0 {
			t.Fatalf("tenant %d ran %d ops with zero CPU cycles", tr.ID, tr.Ops)
		}
		if tr.Acct.Faults == 0 || tr.Acct.ResidentPages == 0 {
			t.Fatalf("tenant %d demand-paged nothing: %+v", tr.ID, tr.Acct)
		}
		if tr.Acct.ResidentPages > tr.Acct.Faults {
			t.Fatalf("tenant %d resident pages %d exceed faults %d", tr.ID, tr.Acct.ResidentPages, tr.Acct.Faults)
		}
		switches += tr.Acct.Switches
	}
	if switches < uint64(spec.Tenants) {
		t.Fatalf("only %d context switches across %d tenants; no time slicing happened", switches, spec.Tenants)
	}
	if res.P50 > res.P95 || res.P95 > res.P99 {
		t.Fatalf("quantiles out of order: p50=%d p95=%d p99=%d", res.P50, res.P95, res.P99)
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Fatalf("Jain index %v outside (0, 1]", res.Jain)
	}
	// The published summary must land in the dump, per tenant.
	for i := 0; i < spec.Tenants; i++ {
		for _, stat := range []string{".lat::samples", ".ops", ".cpu_cycles", ".resident_pages"} {
			if !strings.Contains(dump, TenantPrefix(i)+stat) {
				t.Fatalf("dump lacks %s%s", TenantPrefix(i), stat)
			}
		}
	}
}

func TestEngineZeroOps(t *testing.T) {
	spec := quickSpec()
	spec.Ops = 0
	res, _ := runDump(t, spec, false)
	if res.Ops != 0 {
		t.Fatalf("zero-budget run completed %d ops", res.Ops)
	}
	if res.P50 != 0 || res.P99 != 0 || res.Jain != 0 {
		t.Fatalf("zero-budget run reports non-empty summary: %+v", res)
	}
}

func TestEngineLatencyIncludesQueueing(t *testing.T) {
	// One tenant, fixed arrivals far faster than the machine can serve:
	// open-loop backlog must push observed latency far above per-op
	// service time, while the closed-loop variant of the same spec stays
	// near service time.
	base := quickSpec()
	base.Tenants = 1
	base.Ops = 300
	base.Arrival = ArrivalFixed
	base.Rate = 50_000_000 // one op per 60 cycles: unserviceable
	base.Loop = LoopOpen
	open, _ := runDump(t, base, false)
	base.Loop = LoopClosed
	closed, _ := runDump(t, base, false)
	if open.MeanLat < 4*closed.MeanLat {
		t.Fatalf("open-loop backlog mean %v not clearly above closed-loop %v; queueing delay is not being measured",
			open.MeanLat, closed.MeanLat)
	}
}

func TestEngineTenantHistogramCollisionPanics(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	// A counter squatting on tenant 0's histogram name must panic at
	// engine construction, not silently alias the stat.
	m.Stats.Inc(TenantLatStat(0))
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on a counter/histogram name collision")
		}
	}()
	New(k, quickSpec()) //nolint:errcheck // panics before returning
}

func TestEngineEmptyTenantHistogramExtrema(t *testing.T) {
	// A registered-but-empty per-tenant histogram must dump zero extrema
	// and survive a stats merge without poisoning the merged min (the
	// empty-side extrema rule in sim.MergeFrom).
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	spec := quickSpec()
	spec.Ops = 0
	eng, err := New(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	h := m.Stats.Hist(TenantLatStat(0))
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty tenant histogram has samples=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}

	other := sim.NewStats()
	other.Hist(TenantLatStat(0)).Observe(100)
	other.MergeFrom(m.Stats)
	merged := other.Hist(TenantLatStat(0))
	if merged.Count() != 1 || merged.Min() != 100 || merged.Max() != 100 {
		t.Fatalf("merging an empty tenant histogram perturbed extrema: samples=%d min=%d max=%d",
			merged.Count(), merged.Min(), merged.Max())
	}
}

func TestEngineDumpSectionStable(t *testing.T) {
	// The traffic.* dump section alone (what bench.Traffic compares across
	// parallel and sequential grid runs) is deterministic and lists every
	// tenant in index order.
	spec := quickSpec()
	run := func() string {
		m := machine.New(machine.TestConfig())
		eng, err := New(gemos.Boot(m), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Dump("traffic.")
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("traffic.* dump section not stable across runs")
	}
	var prev string
	for i := 0; i < spec.Tenants; i++ {
		pfx := TenantPrefix(i)
		if !strings.Contains(a, pfx+".ops") {
			t.Fatalf("dump section lacks %s.ops", pfx)
		}
		if prev != "" && strings.Index(a, pfx+".") < strings.Index(a, prev+".") {
			t.Fatalf("tenant sections out of order: %s before %s", pfx, prev)
		}
		prev = pfx
	}
	if bytes.Contains([]byte(a), []byte("os.")) {
		t.Fatal("prefix filter leaked non-traffic stats into the section")
	}
}
