// Package traffic is Kindle's deterministic multi-tenant synthetic-load
// engine: it spawns a fleet of gemOS processes ("tenants") and drives them
// through the kernel's round-robin scheduler under a configurable synthetic
// workload — open- or closed-loop arrival processes (Poisson or fixed
// rate), Zipfian or uniform key distributions over per-tenant address
// spaces, fixed or uniform per-op sizes and a point/scan/write operation
// mix. All tenants contend for the one simulated machine: shared DRAM/NVM
// frame pools, the NVM write buffers, cache and TLB capacity, and (when
// persistence is attached) checkpoint bandwidth.
//
// Determinism is the contract: the same Spec and seed produce byte-
// identical stats dumps run after run, and under the stepped and the
// event-driven clock engines alike. Every random draw comes from seeded
// sim.RNG streams (one per tenant), every scheduling decision depends only
// on the virtual clock, and all iteration is in tenant-index order.
package traffic

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// OpKind is a synthetic operation class.
type OpKind uint8

// Operation classes of the workload mix.
const (
	// OpPoint reads 8 bytes at the keyed offset (a point lookup).
	OpPoint OpKind = iota
	// OpScan reads size bytes sequentially from the keyed offset, wrapping
	// at the end of the tenant's area (a range scan).
	OpScan
	// OpWrite writes 8 bytes at the keyed offset (an update).
	OpWrite

	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpPoint:
		return "point"
	case OpScan:
		return "scan"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// ArrivalKind selects the arrival (or think-time) process.
type ArrivalKind uint8

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps with mean 1/Rate.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalFixed spaces arrivals exactly 1/Rate apart.
	ArrivalFixed
)

func (a ArrivalKind) String() string {
	if a == ArrivalFixed {
		return "fixed"
	}
	return "poisson"
}

// LoopKind selects open- vs closed-loop load generation.
type LoopKind uint8

// Load-generation loops.
const (
	// LoopOpen issues arrivals on schedule regardless of completions:
	// backlog builds when the machine cannot keep up (the tail-latency
	// regime of interest).
	LoopOpen LoopKind = iota
	// LoopClosed keeps at most one outstanding op per tenant; the arrival
	// process supplies the think time between completion and next issue.
	LoopClosed
)

func (l LoopKind) String() string {
	if l == LoopClosed {
		return "closed"
	}
	return "open"
}

// KeyDist selects the key (offset) distribution.
type KeyDist uint8

// Key distributions.
const (
	// KeysZipf draws keys Zipfian with exponent Theta (rank 0 hottest).
	KeysZipf KeyDist = iota
	// KeysUniform draws keys uniformly.
	KeysUniform
)

func (k KeyDist) String() string {
	if k == KeysUniform {
		return "uniform"
	}
	return "zipf"
}

// SizeDistKind selects the per-op size distribution.
type SizeDistKind uint8

// Size distributions.
const (
	// SizesFixed uses SizeLo bytes for every op.
	SizesFixed SizeDistKind = iota
	// SizesUniform draws sizes uniformly in [SizeLo, SizeHi].
	SizesUniform
)

func (s SizeDistKind) String() string {
	if s == SizesUniform {
		return "uniform"
	}
	return "fixed"
}

// Spec describes one multi-tenant traffic run. The zero value is not
// usable; start from DefaultSpec or ParseSpec.
type Spec struct {
	// Tenants is the number of concurrent gemOS processes.
	Tenants int
	// Seed roots every per-tenant RNG stream (same seed ⇒ same run).
	Seed uint64
	// Ops is the per-tenant operation budget.
	Ops int

	Arrival ArrivalKind
	Loop    LoopKind
	// Rate is the per-tenant mean arrival (open loop) or think (closed
	// loop) rate in operations per simulated second.
	Rate float64

	// Mix weights the operation classes; weights need not sum to 1.
	Mix [3]float64

	Keys KeyDist
	// Theta is the Zipfian exponent (YCSB default 0.99); ignored for
	// uniform keys.
	Theta float64

	Sizes SizeDistKind
	// SizeLo and SizeHi bound the per-op byte size (SizeHi ignored for
	// fixed sizes). Scans touch this many bytes; point/write ops clamp to
	// 8 bytes.
	SizeLo, SizeHi uint64

	// Footprint is the per-tenant address-space size in bytes (page
	// aligned up).
	Footprint uint64
	// NVMFraction is the fraction of tenants whose area is NVM-backed
	// (spread evenly across tenant ids).
	NVMFraction float64

	// Quantum is the scheduler time slice; preemption is cooperative at
	// op boundaries, so a long scan overruns its slice and is rotated out
	// at the next boundary.
	Quantum time.Duration
	// IdleTick is the stepped engine's cycle-group grain while the engine
	// idles between arrivals (the event-driven clock jumps instead).
	IdleTick time.Duration
}

// DefaultSpec returns a small mixed workload: 4 tenants, open-loop Poisson
// arrivals, the ISSUE's scan/point/write mix, Zipfian keys.
func DefaultSpec() Spec {
	return Spec{
		Tenants:     4,
		Seed:        1,
		Ops:         256,
		Arrival:     ArrivalPoisson,
		Loop:        LoopOpen,
		Rate:        200_000,
		Mix:         [3]float64{OpPoint: 0.7, OpScan: 0.2, OpWrite: 0.1},
		Keys:        KeysZipf,
		Theta:       0.99,
		Sizes:       SizesFixed,
		SizeLo:      256,
		SizeHi:      256,
		Footprint:   256 << 10,
		NVMFraction: 0.5,
		Quantum:     time.Millisecond,
		IdleTick:    time.Microsecond,
	}
}

// ParseSpec builds a Spec from a compact flag string: semicolon-separated
// key=value fields over DefaultSpec, e.g.
//
//	mix=scan:0.2,point:0.7,write:0.1;arrival=poisson;loop=open;rate=200000;
//	keys=zipf:0.99;sizes=uniform:64-1024;ops=2000;footprint=1MiB;nvm=0.5;
//	tenants=32;seed=7;quantum=1ms;idle-tick=1us
//
// A bare mix ("scan:0.2,point:0.7,write:0.1") is accepted as shorthand for
// mix=... so the most common sweep reads naturally on the command line.
func ParseSpec(s string) (Spec, error) {
	spec := DefaultSpec()
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	if !strings.Contains(s, "=") && strings.Contains(s, ":") {
		s = "mix=" + s
	}
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("traffic: spec field %q is not key=value", field)
		}
		if err := spec.apply(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return spec, err
		}
	}
	return spec, spec.Validate()
}

func (s *Spec) apply(key, val string) error {
	switch key {
	case "tenants":
		return parseInt(val, &s.Tenants)
	case "seed":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("traffic: seed %q: %w", val, err)
		}
		s.Seed = v
	case "ops":
		return parseInt(val, &s.Ops)
	case "arrival":
		switch val {
		case "poisson":
			s.Arrival = ArrivalPoisson
		case "fixed":
			s.Arrival = ArrivalFixed
		default:
			return fmt.Errorf("traffic: unknown arrival process %q (poisson|fixed)", val)
		}
	case "loop":
		switch val {
		case "open":
			s.Loop = LoopOpen
		case "closed":
			s.Loop = LoopClosed
		default:
			return fmt.Errorf("traffic: unknown loop mode %q (open|closed)", val)
		}
	case "rate":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("traffic: rate %q must be a positive ops/sec", val)
		}
		s.Rate = v
	case "mix":
		mix, err := parseMix(val)
		if err != nil {
			return err
		}
		s.Mix = mix
	case "keys":
		dist, arg, _ := strings.Cut(val, ":")
		switch dist {
		case "zipf":
			s.Keys = KeysZipf
			if arg != "" {
				th, err := strconv.ParseFloat(arg, 64)
				if err != nil {
					return fmt.Errorf("traffic: zipf theta %q: %w", arg, err)
				}
				s.Theta = th
			}
		case "uniform":
			s.Keys = KeysUniform
		default:
			return fmt.Errorf("traffic: unknown key distribution %q (zipf[:theta]|uniform)", val)
		}
	case "sizes":
		dist, arg, _ := strings.Cut(val, ":")
		switch dist {
		case "fixed":
			n, err := parseBytes(arg)
			if err != nil {
				return fmt.Errorf("traffic: fixed size %q: %w", arg, err)
			}
			s.Sizes, s.SizeLo, s.SizeHi = SizesFixed, n, n
		case "uniform":
			lo, hi, ok := strings.Cut(arg, "-")
			if !ok {
				return fmt.Errorf("traffic: uniform sizes want lo-hi, got %q", arg)
			}
			l, err := parseBytes(lo)
			if err != nil {
				return fmt.Errorf("traffic: size bound %q: %w", lo, err)
			}
			h, err := parseBytes(hi)
			if err != nil {
				return fmt.Errorf("traffic: size bound %q: %w", hi, err)
			}
			s.Sizes, s.SizeLo, s.SizeHi = SizesUniform, l, h
		default:
			return fmt.Errorf("traffic: unknown size distribution %q (fixed:N|uniform:LO-HI)", val)
		}
	case "footprint":
		n, err := parseBytes(val)
		if err != nil {
			return fmt.Errorf("traffic: footprint %q: %w", val, err)
		}
		s.Footprint = n
	case "nvm":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("traffic: nvm fraction %q: %w", val, err)
		}
		s.NVMFraction = v
	case "quantum":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("traffic: quantum %q: %w", val, err)
		}
		s.Quantum = d
	case "idle-tick":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("traffic: idle-tick %q: %w", val, err)
		}
		s.IdleTick = d
	default:
		return fmt.Errorf("traffic: unknown spec field %q", key)
	}
	return nil
}

func parseInt(val string, dst *int) error {
	v, err := strconv.Atoi(val)
	if err != nil || v < 0 {
		return fmt.Errorf("traffic: %q must be a non-negative integer", val)
	}
	*dst = v
	return nil
}

// parseMix parses "scan:0.2,point:0.7,write:0.1" (any subset; omitted
// kinds weigh 0).
func parseMix(val string) ([3]float64, error) {
	var mix [3]float64
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return mix, fmt.Errorf("traffic: mix term %q is not kind:weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("traffic: mix weight %q must be a non-negative number", wstr)
		}
		switch strings.TrimSpace(name) {
		case "point":
			mix[OpPoint] = w
		case "scan":
			mix[OpScan] = w
		case "write":
			mix[OpWrite] = w
		default:
			return mix, fmt.Errorf("traffic: unknown mix kind %q (point|scan|write)", name)
		}
	}
	if mix[OpPoint]+mix[OpScan]+mix[OpWrite] <= 0 {
		return mix, fmt.Errorf("traffic: mix %q has no positive weight", val)
	}
	return mix, nil
}

// parseBytes parses a byte size with an optional KiB/MiB/GiB (or K/M/G)
// suffix.
func parseBytes(val string) (uint64, error) {
	mult := uint64(1)
	v := val
	for _, suf := range []struct {
		s string
		m uint64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(v, suf.s) {
			mult = suf.m
			v = strings.TrimSuffix(v, suf.s)
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	switch {
	case s.Tenants < 1:
		return fmt.Errorf("traffic: %d tenants; need at least 1", s.Tenants)
	case s.Ops < 0:
		return fmt.Errorf("traffic: negative op budget %d", s.Ops)
	case s.Rate <= 0:
		return fmt.Errorf("traffic: rate %v must be positive", s.Rate)
	case s.Mix[OpPoint] < 0 || s.Mix[OpScan] < 0 || s.Mix[OpWrite] < 0:
		return fmt.Errorf("traffic: negative mix weight")
	case s.Mix[OpPoint]+s.Mix[OpScan]+s.Mix[OpWrite] <= 0:
		return fmt.Errorf("traffic: mix has no positive weight")
	case s.Keys == KeysZipf && (s.Theta <= 0 || s.Theta >= 1):
		return fmt.Errorf("traffic: zipf theta %v must be in (0, 1)", s.Theta)
	case s.SizeLo < 1 || s.SizeHi < s.SizeLo:
		return fmt.Errorf("traffic: size range [%d, %d] invalid", s.SizeLo, s.SizeHi)
	case s.Footprint < 64:
		return fmt.Errorf("traffic: footprint %d below one key stride (64 B)", s.Footprint)
	case s.NVMFraction < 0 || s.NVMFraction > 1:
		return fmt.Errorf("traffic: nvm fraction %v must be in [0, 1]", s.NVMFraction)
	case s.Quantum <= 0:
		return fmt.Errorf("traffic: quantum %v must be positive", s.Quantum)
	case s.IdleTick <= 0:
		return fmt.Errorf("traffic: idle-tick %v must be positive", s.IdleTick)
	}
	return nil
}

// String renders the spec in ParseSpec's format (canonical field order).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenants=%d;seed=%d;ops=%d;arrival=%s;loop=%s;rate=%g",
		s.Tenants, s.Seed, s.Ops, s.Arrival, s.Loop, s.Rate)
	fmt.Fprintf(&b, ";mix=point:%g,scan:%g,write:%g", s.Mix[OpPoint], s.Mix[OpScan], s.Mix[OpWrite])
	if s.Keys == KeysZipf {
		fmt.Fprintf(&b, ";keys=zipf:%g", s.Theta)
	} else {
		b.WriteString(";keys=uniform")
	}
	if s.Sizes == SizesFixed {
		fmt.Fprintf(&b, ";sizes=fixed:%d", s.SizeLo)
	} else {
		fmt.Fprintf(&b, ";sizes=uniform:%d-%d", s.SizeLo, s.SizeHi)
	}
	fmt.Fprintf(&b, ";footprint=%d;nvm=%g;quantum=%s;idle-tick=%s",
		s.Footprint, s.NVMFraction, s.Quantum, s.IdleTick)
	return b.String()
}
