package traffic

import (
	"math"

	"kindle/internal/sim"
)

// keyStride is the byte distance between adjacent keys: one cache line, so
// distinct keys are distinct lines and the Zipfian hot set concentrates at
// the front of the tenant's area.
const keyStride = 64

// deriveSeed gives tenant i an RNG stream independent of every other
// tenant's and of the root seed's raw value (splitmix64 finalizer over a
// golden-ratio stride). Adding a tenant therefore never perturbs the
// streams of existing ones.
func deriveSeed(seed uint64, i int) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// arrivalSampler draws inter-arrival (open loop) or think-time (closed
// loop) gaps in cycles.
type arrivalSampler struct {
	kind ArrivalKind
	mean float64 // cycles between arrivals
	rng  *sim.RNG
}

func newArrivalSampler(spec Spec, rng *sim.RNG) arrivalSampler {
	// Rate is ops per simulated second; the virtual clock runs at
	// sim.CyclesPerNano GHz.
	return arrivalSampler{
		kind: spec.Arrival,
		mean: float64(sim.FromNanos(1e9)) / spec.Rate,
		rng:  rng,
	}
}

// next returns the gap to the next arrival, at least one cycle.
func (a arrivalSampler) next() sim.Cycles {
	gap := a.mean
	if a.kind == ArrivalPoisson {
		// Exponential gaps via inverse transform; Float64 is in [0, 1) so
		// the log argument stays positive.
		gap = -math.Log(1-a.rng.Float64()) * a.mean
	}
	if gap < 1 {
		gap = 1
	}
	return sim.Cycles(gap)
}

// keySampler draws line-aligned byte offsets into the tenant's area.
type keySampler struct {
	zipf *sim.Zipf
	rng  *sim.RNG
	keys uint64
}

func newKeySampler(spec Spec, rng *sim.RNG) keySampler {
	keys := spec.Footprint / keyStride
	if keys == 0 {
		keys = 1
	}
	ks := keySampler{rng: rng, keys: keys}
	if spec.Keys == KeysZipf {
		ks.zipf = sim.NewZipf(rng, keys, spec.Theta)
	}
	return ks
}

func (k keySampler) next() uint64 {
	var rank uint64
	if k.zipf != nil {
		rank = k.zipf.Next()
	} else {
		rank = k.rng.Uint64n(k.keys)
	}
	if rank >= k.keys { // quick-zipf can round to n at the tail
		rank = k.keys - 1
	}
	return rank * keyStride
}

// sizeSampler draws per-op byte sizes.
type sizeSampler struct {
	kind   SizeDistKind
	lo, hi uint64
	rng    *sim.RNG
}

func newSizeSampler(spec Spec, rng *sim.RNG) sizeSampler {
	return sizeSampler{kind: spec.Sizes, lo: spec.SizeLo, hi: spec.SizeHi, rng: rng}
}

func (s sizeSampler) next() uint64 {
	if s.kind == SizesFixed || s.hi <= s.lo {
		return s.lo
	}
	return s.lo + s.rng.Uint64n(s.hi-s.lo+1)
}

// mixPicker draws operation kinds from the normalized mix CDF.
type mixPicker struct {
	cdf [numOpKinds]float64
	rng *sim.RNG
}

func newMixPicker(mix [3]float64, rng *sim.RNG) mixPicker {
	p := mixPicker{rng: rng}
	total := mix[OpPoint] + mix[OpScan] + mix[OpWrite]
	var cum float64
	for i, w := range mix {
		cum += w / total
		p.cdf[i] = cum
	}
	p.cdf[numOpKinds-1] = 1 // absorb rounding
	return p
}

func (p mixPicker) next() OpKind {
	u := p.rng.Float64()
	for i, c := range p.cdf {
		if u < c {
			return OpKind(i)
		}
	}
	return numOpKinds - 1
}

// nvmTenant reports whether tenant i is NVM-backed: the fraction is spread
// evenly across tenant ids (every tenant for frac=1, every other for 0.5,
// none for 0) so the NVM population is stable as the tenant count sweeps.
func nvmTenant(i int, frac float64) bool {
	return uint64(float64(i+1)*frac) > uint64(float64(i)*frac)
}
