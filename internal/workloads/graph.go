package workloads

import "kindle/internal/sim"

// Graph is a directed graph in CSR (compressed sparse row) form, the
// layout both GAP and Graph500 kernels operate on.
type Graph struct {
	N       int      // vertices
	Offsets []uint64 // len N+1, indices into Edges
	Edges   []uint32 // destination vertices
	Weights []uint8  // per-edge weights (SSSP)
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// GenRMAT builds a scale-free directed graph with n vertices and about
// degree*n edges using an R-MAT style recursive partitioning (the Graph500
// generator family; GAP's Kronecker inputs have the same skew). The result
// is deterministic for a given seed.
func GenRMAT(n, degree int, seed uint64) *Graph {
	rng := sim.NewRNG(seed)
	m := n * degree
	// R-MAT probabilities (a,b,c,d) = (0.57,0.19,0.19,0.05).
	srcs := make([]uint32, m)
	dsts := make([]uint32, m)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for e := 0; e < m; e++ {
		var u, v int
		for b := 0; b < bits; b++ {
			r := rng.Float64()
			switch {
			case r < 0.57:
				// quadrant a: (0,0)
			case r < 0.76:
				v |= 1 << b
			case r < 0.95:
				u |= 1 << b
			default:
				u |= 1 << b
				v |= 1 << b
			}
		}
		if u >= n {
			u %= n
		}
		if v >= n {
			v %= n
		}
		srcs[e], dsts[e] = uint32(u), uint32(v)
	}
	// Counting sort into CSR.
	g := &Graph{N: n, Offsets: make([]uint64, n+1)}
	for _, u := range srcs {
		g.Offsets[u+1]++
	}
	for i := 0; i < n; i++ {
		g.Offsets[i+1] += g.Offsets[i]
	}
	g.Edges = make([]uint32, m)
	g.Weights = make([]uint8, m)
	cursor := make([]uint64, n)
	copy(cursor, g.Offsets[:n])
	for e := 0; e < m; e++ {
		u := srcs[e]
		idx := cursor[u]
		cursor[u]++
		g.Edges[idx] = dsts[e]
		g.Weights[idx] = uint8(1 + rng.Intn(255))
	}
	return g
}

// permutation returns a deterministic Fisher-Yates shuffle of [0, n).
func permutation(n int, seed uint64) []int {
	rng := sim.NewRNG(seed ^ 0xBADC0FFEE)
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// GenUniform builds a uniform random directed graph (used by tests for a
// non-skewed counterpoint).
func GenUniform(n, degree int, seed uint64) *Graph {
	rng := sim.NewRNG(seed)
	g := &Graph{N: n, Offsets: make([]uint64, n+1)}
	m := n * degree
	g.Edges = make([]uint32, m)
	g.Weights = make([]uint8, m)
	for v := 0; v <= n; v++ {
		g.Offsets[v] = uint64(v * degree)
	}
	for e := 0; e < m; e++ {
		g.Edges[e] = uint32(rng.Intn(n))
		g.Weights[e] = uint8(1 + rng.Intn(255))
	}
	return g
}
