package workloads

import (
	"fmt"

	"kindle/internal/sim"
	"kindle/internal/trace"
)

// YCSBMTConfig sizes the multi-threaded Ycsb_mem variant. The paper's
// preparation component uses SniP to capture per-thread stack areas of
// multi-threaded applications (the /proc maps file alone cannot attribute
// them); this workload produces exactly that shape: one shared store, N
// worker threads with private stacks, and a trace that interleaves the
// workers' operations (the single-core interleaving a trace-based
// framework can express — §V-C).
type YCSBMTConfig struct {
	YCSBConfig
	Threads int
}

// DefaultYCSBMT returns a 4-thread paper-scale configuration.
func DefaultYCSBMT() YCSBMTConfig {
	return YCSBMTConfig{YCSBConfig: DefaultYCSB(), Threads: 4}
}

// SmallYCSBMT is a fast configuration for tests.
func SmallYCSBMT() YCSBMTConfig {
	return YCSBMTConfig{YCSBConfig: SmallYCSB(), Threads: 4}
}

// YCSBMT runs the multi-threaded key-value workload. Each worker has its
// own zipfian stream and its own stack area ("stack.tid<N>", the SniP
// capture); operations round-robin across workers in fixed bursts,
// modelling a fair single-core schedule.
func YCSBMT(cfg YCSBMTConfig) (*trace.Image, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("workloads: YCSBMT with %d threads", cfg.Threads)
	}
	rec := NewRecorder("Ycsb_mem_mt", cfg.Ops)
	rec.StreamTo(cfg.Sink)
	nBuckets := uint64(cfg.Records)
	buckets := rec.AddArea("heap.buckets", nBuckets*8, true, true)
	entries := rec.AddArea("heap.entries", uint64(cfg.Records)*ycsbEntrySize, true, true)

	type worker struct {
		stack int
		rng   *sim.RNG
		zipf  *sim.Zipf
		op    uint64
	}
	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		rng := sim.NewRNG(cfg.Seed + uint64(i)*7919)
		workers[i] = &worker{
			stack: rec.AddArea(fmt.Sprintf("stack.tid%d", i+1), 64*1024, false, true),
			rng:   rng,
			zipf:  sim.NewZipf(rng, uint64(cfg.Records), cfg.Theta),
		}
	}

	chains := make([][]uint32, nBuckets)
	hash := func(key uint64) uint64 { return (key * 0x9E3779B97F4A7C15) % nBuckets }
	for k := 0; k < cfg.Records; k++ {
		b := hash(uint64(k))
		chains[b] = append(chains[b], uint32(k))
	}

	// Fixed burst per scheduling slot: each worker executes `burst` ops
	// before the next worker runs, approximating quantum-sized slices.
	const burst = 64
	for !rec.Full() {
		for _, w := range workers {
			for b := 0; b < burst && !rec.Full(); b++ {
				key := w.zipf.Next()
				isRead := w.rng.Float64() < cfg.ReadRatio
				rec.Frame(w.stack, w.op, ycsbFrameSpills)
				rec.Load(w.stack, (w.op*64)%(64*1024-16), 8)
				rec.Load(w.stack, (w.op*64)%(64*1024-16)+8, 8)
				w.op++
				bkt := hash(key)
				rec.Load(buckets, bkt*8, 8)
				for _, id := range chains[bkt] {
					rec.Load(entries, uint64(id)*ycsbEntrySize, 8)
					if uint64(id) == key {
						break
					}
					rec.Load(entries, uint64(id)*ycsbEntrySize+8, 8)
				}
				valOff := key*ycsbEntrySize + 16
				if isRead {
					rec.Load(entries, valOff, 48)
					rec.Load(entries, valOff+48, 64)
				} else {
					rec.Load(entries, valOff, 48)
					rec.Load(entries, valOff+48, 64)
					rec.Store(entries, valOff, 48)
					rec.Store(entries, valOff+48, 64)
				}
			}
		}
	}
	return rec.Image()
}
