package workloads

import (
	"kindle/internal/sim"
	"kindle/internal/trace"
)

// YCSBConfig sizes the Ycsb_mem workload: a zipfian-keyed in-memory
// key-value store (workload-B flavoured mix).
type YCSBConfig struct {
	Records   int     // keys loaded into the store
	Ops       int     // trace record budget
	ReadRatio float64 // fraction of GET operations (rest are UPDATE)
	Theta     float64 // zipfian skew
	Seed      uint64
	// Sink, when set, streams records to a RecordSink instead of
	// materializing them (see Recorder.StreamTo).
	Sink SinkOpenFunc
}

// DefaultYCSB returns the paper-scale configuration.
func DefaultYCSB() YCSBConfig {
	return YCSBConfig{Records: 1 << 17, Ops: PaperOps, ReadRatio: 0.70, Theta: 0.99, Seed: 99}
}

// SmallYCSB is a fast configuration for tests.
func SmallYCSB() YCSBConfig {
	return YCSBConfig{Records: 1 << 12, Ops: 200_000, ReadRatio: 0.70, Theta: 0.99, Seed: 99}
}

// Store layout constants: chained hash table with 128-byte entries
// (8 B key, 8 B next pointer, 112 B value → two cache lines of value
// traffic per full read/update).
const (
	ycsbEntrySize  = 128
	ycsbValueLines = 2
	// ycsbFrameSpills calibrates per-op stack traffic so the traced mix
	// matches Table II's Ycsb_mem 71 % read / 29 % write.
	ycsbFrameSpills = 3
)

// YCSB runs the key-value workload, recording every access: bucket-array
// reads, chain probes, value line reads/writes and per-op stack frames.
func YCSB(cfg YCSBConfig) (*trace.Image, error) {
	rec := NewRecorder("Ycsb_mem", cfg.Ops)
	rec.StreamTo(cfg.Sink)
	nBuckets := uint64(cfg.Records) // load factor 1
	buckets := rec.AddArea("heap.buckets", nBuckets*8, true, true)
	entries := rec.AddArea("heap.entries", uint64(cfg.Records)*ycsbEntrySize, true, true)
	stack := rec.AddArea("stack.main", 64*1024, false, true)

	rng := sim.NewRNG(cfg.Seed)
	zipf := sim.NewZipf(rng, uint64(cfg.Records), cfg.Theta)

	// Host-side chain structure: bucket -> list of record ids, built like
	// the loader phase of YCSB (not traced — the paper traces the
	// transaction phase).
	chains := make([][]uint32, nBuckets)
	hash := func(key uint64) uint64 { return (key * 0x9E3779B97F4A7C15) % nBuckets }
	for k := 0; k < cfg.Records; k++ {
		b := hash(uint64(k))
		chains[b] = append(chains[b], uint32(k))
	}

	for op := uint64(0); !rec.Full(); op++ {
		key := zipf.Next()
		isRead := rng.Float64() < cfg.ReadRatio
		rec.Frame(stack, op, ycsbFrameSpills)
		// Key marshalling reads the request's key buffer off the stack.
		rec.Load(stack, (op*64)%(64*1024-16), 8)
		rec.Load(stack, (op*64)%(64*1024-16)+8, 8)
		b := hash(key)
		rec.Load(buckets, b*8, 8)
		// Probe the chain to the target record.
		for _, id := range chains[b] {
			rec.Load(entries, uint64(id)*ycsbEntrySize, 8) // key compare
			if uint64(id) == key {
				break
			}
			rec.Load(entries, uint64(id)*ycsbEntrySize+8, 8) // next pointer
		}
		// Value spans the rest of line 0 (48 B) plus line 1 (64 B).
		valOff := key*ycsbEntrySize + 16
		if isRead {
			rec.Load(entries, valOff, 48)
			rec.Load(entries, valOff+48, 64)
		} else {
			// UPDATE is read-modify-write: the old record is read, the
			// changed fields merged, then both value lines written.
			rec.Load(entries, valOff, 48)
			rec.Load(entries, valOff+48, 64)
			rec.Store(entries, valOff, 48)
			rec.Store(entries, valOff+48, 64)
		}
	}
	return rec.Image()
}
