package workloads

import "kindle/internal/trace"

// Table II targets.
const (
	// PaperOps is the trace length used throughout the paper's Table II.
	PaperOps = 10_000_000
)

// PageRankConfig sizes the Gapbs_pr workload.
type PageRankConfig struct {
	Vertices int
	Degree   int
	Ops      int // trace record budget
	Seed     uint64
	// Sink, when set, streams records to a RecordSink instead of
	// materializing them (see Recorder.StreamTo).
	Sink SinkOpenFunc
}

// DefaultPageRank returns the paper-scale configuration (10 M ops over a
// scale-free graph whose footprint far exceeds the HSCC DRAM pool).
func DefaultPageRank() PageRankConfig {
	return PageRankConfig{Vertices: 1 << 17, Degree: 8, Ops: PaperOps, Seed: 42}
}

// SmallPageRank is a fast configuration for tests.
func SmallPageRank() PageRankConfig {
	return PageRankConfig{Vertices: 1 << 10, Degree: 8, Ops: 200_000, Seed: 42}
}

// prFrameSpills calibrates per-vertex stack traffic (register spills and
// reloads of the gather routine) so the traced mix matches Table II's
// Gapbs_pr 77 % read / 23 % write. Pin traces stack accesses too; they are
// part of the published mixes.
const prFrameSpills = 5

// PageRank runs GAP-style PageRank (contribution precompute + pull gather)
// over an R-MAT graph, recording every memory access. It returns the trace
// image for the simulation component.
func PageRank(cfg PageRankConfig) (*trace.Image, error) {
	g := GenRMAT(cfg.Vertices, cfg.Degree, cfg.Seed)
	rec := NewRecorder("Gapbs_pr", cfg.Ops)
	rec.StreamTo(cfg.Sink)

	offsets := rec.AddArea("heap.offsets", uint64(len(g.Offsets))*8, true, false)
	edges := rec.AddArea("heap.edges", uint64(len(g.Edges))*4, true, false)
	rank := rec.AddArea("heap.rank", uint64(g.N)*8, true, true)
	contrib := rec.AddArea("heap.contrib", uint64(g.N)*8, true, true)
	stack := rec.AddArea("stack.main", 64*1024, false, true)

	ranks := make([]float64, g.N)
	contribs := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range ranks {
		ranks[i] = 1.0 / float64(g.N)
	}
	const damping = 0.85
	base := (1 - damping) / float64(g.N)

	// Vertices are visited in a fixed pseudo-random permutation (standard
	// graph reordering) and the contribution/gather phases interleave at
	// block granularity (propagation blocking, Gauss-Seidel flavoured).
	// R-MAT correlates degree with vertex index and the phases have
	// different read/write mixes, so this keeps the traced mix stationary
	// however long the traced window is.
	perm := permutation(g.N, cfg.Seed)
	const block = 1024

	for !rec.Full() {
		for lo := 0; lo < g.N && !rec.Full(); lo += block {
			hi := lo + block
			if hi > g.N {
				hi = g.N
			}
			// Phase A over the block: contrib[u] = rank[u] / degree[u].
			for i := lo; i < hi && !rec.Full(); i++ {
				u := perm[i]
				rec.Load(rank, uint64(u)*8, 8)
				rec.Load(offsets, uint64(u)*8, 8) // degree from CSR offsets
				d := g.Degree(u)
				if d == 0 {
					d = 1
				}
				contribs[u] = ranks[u] / float64(d)
				rec.Store(contrib, uint64(u)*8, 8)
			}
			// Phase B over the block: pull gather per destination vertex.
			for i := lo; i < hi && !rec.Full(); i++ {
				v := perm[i]
				rec.Frame(stack, uint64(v), prFrameSpills)
				rec.Load(offsets, uint64(v)*8, 8)
				sum := 0.0
				for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
					rec.Load(edges, e*4, 4)
					u := g.Edges[e]
					rec.Load(contrib, uint64(u)*8, 8)
					sum += contribs[u]
				}
				next[v] = base + damping*sum
				rec.Store(rank, uint64(v)*8, 8)
			}
		}
		copy(ranks, next)
	}
	return rec.Image()
}
