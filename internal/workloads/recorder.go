// Package workloads implements the applications of the paper's Table II —
// Gapbs_pr (GAP PageRank), G500_sssp (Graph500 single-source shortest
// paths) and Ycsb_mem (YCSB-style in-memory key-value store) — as
// *instrumented* Go programs: every load and store they perform on their
// data structures (and their stack activity, which Pin would also capture)
// is recorded as a trace tuple. It also provides the micro-benchmarks used
// by the process-persistence experiments (Fig. 4, Tables III/IV).
package workloads

import (
	"fmt"

	"kindle/internal/trace"
)

// SinkOpenFunc opens a streaming destination for a recorder once the trace
// header (benchmark name and area table) is known. The recorder calls it
// lazily at the first recorded access — every Kindle workload registers all
// of its areas before touching memory, so the header is complete by then.
type SinkOpenFunc func(benchmark string, areas []trace.Area) (trace.RecordSink, error)

// Recorder captures memory accesses into a trace image. It plays the role
// of Pin in the paper's preparation component: the workload "executes" and
// the recorder observes its loads/stores with (period, offset, op, size,
// area) fidelity. With StreamTo, records flow straight to a RecordSink
// (e.g. a v2 StreamWriter on disk) instead of accumulating in memory.
type Recorder struct {
	img    trace.Image
	period uint64
	limit  int // stop recording past this many records (0 = unlimited)
	paused bool

	sinkOpen SinkOpenFunc
	sink     trace.RecordSink
	sinkErr  error
	count    int
}

// NewRecorder starts a trace for the named benchmark. limit caps the
// record count (the paper traces 10,000,000 operations per benchmark).
func NewRecorder(benchmark string, limit int) *Recorder {
	return &Recorder{img: trace.Image{Benchmark: benchmark}, limit: limit}
}

// StreamTo switches the recorder to streaming capture: instead of
// materializing records, each access is written to the sink that open
// returns. Must be called before the first access is recorded; a nil open
// is a no-op (materialized capture). The caller owns the opened sink's
// lifetime (the recorder never closes it); check SinkErr after the run.
func (r *Recorder) StreamTo(open SinkOpenFunc) { r.sinkOpen = open }

// SinkErr returns the first error the streaming sink reported, if any.
func (r *Recorder) SinkErr() error { return r.sinkErr }

// AddArea registers a memory area and returns its index.
func (r *Recorder) AddArea(name string, size uint64, nvm, write bool) int {
	size = (size + 4095) &^ 4095
	r.img.Areas = append(r.img.Areas, trace.Area{Name: name, Size: size, NVM: nvm, Write: write})
	return len(r.img.Areas) - 1
}

// Full reports whether the record limit has been reached (or streaming
// failed, which also stops recording).
func (r *Recorder) Full() bool {
	if r.sinkErr != nil {
		return true
	}
	return r.limit > 0 && r.count >= r.limit
}

// Tick advances logical time without recording (models non-memory
// instructions between accesses).
func (r *Recorder) Tick(n uint64) { r.period += n }

// Pause suspends recording: the workload keeps executing but its accesses
// are not traced. The preparation methodology uses this to skip
// initialization phases and trace only the region of interest, as Pin
// harnesses conventionally do.
func (r *Recorder) Pause() { r.paused = true }

// Resume re-enables recording after Pause.
func (r *Recorder) Resume() { r.paused = false }

func (r *Recorder) record(area int, off uint64, op trace.Op, size uint32) {
	if r.paused || r.Full() {
		return
	}
	r.period++
	rec := trace.Record{
		Period: r.period,
		Offset: off,
		Op:     op,
		Size:   size,
		Area:   uint32(area),
	}
	if r.sinkOpen != nil {
		if r.sink == nil {
			r.sink, r.sinkErr = r.sinkOpen(r.img.Benchmark, r.img.Areas)
			if r.sinkErr != nil {
				r.sinkOpen = nil
				return
			}
		}
		if err := r.sink.Write(rec); err != nil {
			r.sinkErr = err
			return
		}
		r.count++
		return
	}
	r.img.Records = append(r.img.Records, rec)
	r.count++
}

// Load records a read of size bytes at off in area.
func (r *Recorder) Load(area int, off uint64, size uint32) { r.record(area, off, trace.Read, size) }

// Store records a write of size bytes at off in area.
func (r *Recorder) Store(area int, off uint64, size uint32) { r.record(area, off, trace.Write, size) }

// Frame models the stack traffic of a function call: n spill stores on
// entry and n reloads on exit, within the stack area. Pin traces these too;
// they are a real part of the Table II read/write mixes.
func (r *Recorder) Frame(stackArea int, depth uint64, n int) {
	base := depth * 256 % (r.img.Areas[stackArea].Size - 256)
	for i := 0; i < n; i++ {
		r.Store(stackArea, base+uint64(i*8), 8)
	}
	for i := 0; i < n; i++ {
		r.Load(stackArea, base+uint64(i*8), 8)
	}
}

// Image finalizes and returns the trace. In streaming mode the records
// already live in the sink, so the returned image carries the header
// (benchmark, areas) with no records; SinkErr failures surface here.
func (r *Recorder) Image() (*trace.Image, error) {
	if r.sinkErr != nil {
		return nil, fmt.Errorf("workloads: streaming capture: %w", r.sinkErr)
	}
	if err := r.img.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	return &r.img, nil
}

// MustImage is Image for construction paths that cannot fail.
func (r *Recorder) MustImage() *trace.Image {
	img, err := r.Image()
	if err != nil {
		panic(err)
	}
	return img
}
