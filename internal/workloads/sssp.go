package workloads

import "kindle/internal/trace"

// SSSPConfig sizes the G500_sssp workload.
type SSSPConfig struct {
	Vertices int
	Degree   int
	Ops      int
	Seed     uint64
	// Sink, when set, streams records to a RecordSink instead of
	// materializing them (see Recorder.StreamTo).
	Sink SinkOpenFunc
}

// DefaultSSSP returns the paper-scale configuration.
func DefaultSSSP() SSSPConfig {
	return SSSPConfig{Vertices: 1 << 17, Degree: 8, Ops: PaperOps, Seed: 7}
}

// SmallSSSP is a fast configuration for tests.
func SmallSSSP() SSSPConfig {
	return SSSPConfig{Vertices: 1 << 10, Degree: 8, Ops: 200_000, Seed: 7}
}

// ssspFrameSpills calibrates per-vertex stack traffic so the traced mix
// matches Table II's G500_sssp 68 % read / 32 % write.
const ssspFrameSpills = 10

// ssspPopsPerRoot bounds the relaxation work per source, like a Graph500
// harness cycling through many roots. Each root's traversal then has the
// same phase profile (improvement-heavy start, probe-heavy tail), which
// keeps the traced read/write mix stationary regardless of trace length.
const ssspPopsPerRoot = 2048

// SSSP runs a bucketed relaxation (delta-stepping flavoured) single-source
// shortest path over an R-MAT graph with unit-byte weights, recording every
// memory access: distance loads/stores, bucket pushes, CSR reads.
func SSSP(cfg SSSPConfig) (*trace.Image, error) {
	g := GenRMAT(cfg.Vertices, cfg.Degree, cfg.Seed)
	rec := NewRecorder("G500_sssp", cfg.Ops)
	rec.StreamTo(cfg.Sink)

	offsets := rec.AddArea("heap.offsets", uint64(len(g.Offsets))*8, true, false)
	edges := rec.AddArea("heap.edges", uint64(len(g.Edges))*4, true, false)
	weights := rec.AddArea("heap.weights", uint64(len(g.Weights)), true, false)
	dist := rec.AddArea("heap.dist", uint64(g.N)*8, true, true)
	bucket := rec.AddArea("heap.bucket", uint64(g.N)*8*4, true, true)
	stack := rec.AddArea("stack.main", 64*1024, false, true)

	const inf = int64(1) << 62
	dists := make([]int64, g.N)
	for i := range dists {
		dists[i] = inf
	}

	// Frontier ring (host side) mirrors the traced bucket area.
	frontier := make([]uint32, 0, g.N)
	pos := uint64(0)
	push := func(v uint32) {
		frontier = append(frontier, v)
		rec.Store(bucket, (pos*8)%(uint64(g.N)*8*4), 8)
		pos++
	}

	for src := 0; !rec.Full(); src = (src + 911) % g.N {
		// New source: reset distances between roots like the Graph500
		// harness runs multiple roots (host-side reset; the traced run
		// keeps going over the same areas).
		for i := range dists {
			dists[i] = inf
		}
		dists[src] = 0
		frontier = frontier[:0]
		push(uint32(src))
		for pops := 0; len(frontier) > 0 && pops < ssspPopsPerRoot && !rec.Full(); pops++ {
			u := frontier[0]
			frontier = frontier[1:]
			rec.Frame(stack, uint64(u), ssspFrameSpills)
			rec.Load(bucket, (pos*8)%(uint64(g.N)*8*4), 8) // pop
			rec.Load(dist, uint64(u)*8, 8)
			rec.Load(offsets, uint64(u)*8, 8)
			du := dists[u]
			for i := g.Offsets[u]; i < g.Offsets[u+1] && !rec.Full(); i++ {
				rec.Load(edges, i*4, 4)
				rec.Load(weights, i, 1)
				v := g.Edges[i]
				w := int64(g.Weights[i])
				rec.Load(dist, uint64(v)*8, 8)
				// Delta-stepping writes the relaxation candidate into the
				// request bucket unconditionally; the improvement test
				// happens when the bucket is processed.
				rec.Store(bucket, (pos*8)%(uint64(g.N)*8*4), 8)
				if du+w < dists[v] {
					dists[v] = du + w
					rec.Store(dist, uint64(v)*8, 8)
					push(v)
				}
			}
		}
	}
	return rec.Image()
}
