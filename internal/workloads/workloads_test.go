package workloads

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"kindle/internal/trace"
)

func TestGraphGenerators(t *testing.T) {
	g := GenRMAT(1024, 8, 1)
	if g.N != 1024 || len(g.Edges) != 1024*8 {
		t.Fatalf("RMAT size: %d vertices %d edges", g.N, len(g.Edges))
	}
	if g.Offsets[g.N] != uint64(len(g.Edges)) {
		t.Fatal("CSR offsets inconsistent")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			t.Fatal("offsets not monotone")
		}
	}
	for _, e := range g.Edges {
		if int(e) >= g.N {
			t.Fatal("edge out of range")
		}
	}
	// Determinism.
	g2 := GenRMAT(1024, 8, 1)
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
	// Skew: max degree must far exceed average.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8*4 {
		t.Fatalf("RMAT max degree %d not skewed", maxDeg)
	}
	u := GenUniform(512, 4, 2)
	if u.Offsets[u.N] != uint64(len(u.Edges)) {
		t.Fatal("uniform CSR inconsistent")
	}
}

func checkMix(t *testing.T, img *trace.Image, wantRead float64) {
	t.Helper()
	r, w := img.Mix()
	if math.Abs(r-wantRead) > 2.0 {
		t.Fatalf("%s mix = %.1f/%.1f, want %.0f/%.0f (±2)", img.Benchmark, r, w, wantRead, 100-wantRead)
	}
}

func TestPageRankMixMatchesTableII(t *testing.T) {
	img, err := PageRank(SmallPageRank())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Records) != SmallPageRank().Ops {
		t.Fatalf("records = %d", len(img.Records))
	}
	checkMix(t, img, 77)
}

func TestSSSPMixMatchesTableII(t *testing.T) {
	img, err := SSSP(SmallSSSP())
	if err != nil {
		t.Fatal(err)
	}
	checkMix(t, img, 68)
}

func TestYCSBMixMatchesTableII(t *testing.T) {
	img, err := YCSB(SmallYCSB())
	if err != nil {
		t.Fatal(err)
	}
	checkMix(t, img, 71)
}

func TestWorkloadAreasAreNVMHeapPlusDRAMStack(t *testing.T) {
	img, err := PageRank(SmallPageRank())
	if err != nil {
		t.Fatal(err)
	}
	heap, stack := 0, 0
	for _, a := range img.Areas {
		if a.NVM {
			heap++
		} else {
			stack++
		}
	}
	if heap == 0 || stack == 0 {
		t.Fatalf("areas heap=%d stack=%d", heap, stack)
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	img, err := YCSB(SmallYCSB())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != img.Benchmark || len(got.Records) != len(img.Records) || len(got.Areas) != len(img.Areas) {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range img.Records {
		if got.Records[i] != img.Records[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got.Records[i], img.Records[i])
		}
	}
	for i := range img.Areas {
		if got.Areas[i] != img.Areas[i] {
			t.Fatalf("area %d mismatch", i)
		}
	}
}

func TestTraceValidateRejectsBadImages(t *testing.T) {
	img := &trace.Image{Benchmark: "x", Areas: []trace.Area{{Name: "a", Size: 4096}}}
	img.Records = []trace.Record{{Offset: 4090, Size: 16, Area: 0, Period: 1}}
	if img.Validate() == nil {
		t.Fatal("overrun accepted")
	}
	img.Records = []trace.Record{{Offset: 0, Size: 8, Area: 5, Period: 1}}
	if img.Validate() == nil {
		t.Fatal("bad area accepted")
	}
	img.Records = []trace.Record{{Offset: 0, Size: 0, Area: 0, Period: 1}}
	if img.Validate() == nil {
		t.Fatal("zero size accepted")
	}
	img.Records = []trace.Record{{Period: 5, Size: 8}, {Period: 3, Size: 8}}
	if img.Validate() == nil {
		t.Fatal("backwards period accepted")
	}
	if (&trace.Image{}).Validate() == nil {
		t.Fatal("empty image accepted")
	}
}

func TestTraceDecodeRejectsGarbage(t *testing.T) {
	if _, err := trace.Decode(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := trace.Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a, _ := YCSB(SmallYCSB())
	b, _ := YCSB(SmallYCSB())
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorder("x", 3)
	a := rec.AddArea("a", 4096, false, true)
	for i := 0; i < 10; i++ {
		rec.Store(a, 0, 8)
	}
	img := rec.MustImage()
	if len(img.Records) != 3 {
		t.Fatalf("limit not enforced: %d", len(img.Records))
	}
	if !rec.Full() {
		t.Fatal("Full() false at limit")
	}
}

func TestRecorderPeriodsMonotone(t *testing.T) {
	img, _ := SSSP(SmallSSSP())
	last := uint64(0)
	for _, r := range img.Records {
		if r.Period < last {
			t.Fatal("period regressed")
		}
		last = r.Period
	}
}

func TestFootprintExceedsHSCCPool(t *testing.T) {
	// The HSCC experiments need an NVM working set much larger than the
	// 512-page (2 MiB) DRAM pool; verify paper-scale configs provide it.
	img := func() *trace.Image {
		r := NewRecorder("probe", 1)
		cfg := DefaultPageRank()
		r.AddArea("offsets", uint64(cfg.Vertices+1)*8, true, false)
		r.AddArea("edges", uint64(cfg.Vertices*cfg.Degree)*4, true, false)
		r.AddArea("rank", uint64(cfg.Vertices)*8, true, true)
		a := r.AddArea("s", 4096, false, true)
		r.Store(a, 0, 8)
		return r.MustImage()
	}()
	if img.Footprint() < 4<<20 {
		t.Fatalf("paper-scale footprint too small: %d", img.Footprint())
	}
}

func BenchmarkPageRankTraceGen(b *testing.B) {
	cfg := SmallPageRank()
	for i := 0; i < b.N; i++ {
		if _, err := PageRank(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	img, _ := YCSB(SmallYCSB())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		trace.Encode(&buf, img)
	}
}

func TestYCSBMTPerThreadStacks(t *testing.T) {
	cfg := SmallYCSBMT()
	cfg.Ops = 100_000
	img, err := YCSBMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stacks := 0
	for _, a := range img.Areas {
		if len(a.Name) > 5 && a.Name[:5] == "stack" {
			stacks++
		}
	}
	if stacks != cfg.Threads {
		t.Fatalf("stack areas = %d, want %d (one per thread, the SniP capture)", stacks, cfg.Threads)
	}
	checkMix(t, img, 71)
	// Interleaving: records from different thread stacks alternate in
	// bursts, never one thread monopolizing the whole trace.
	seen := map[uint32]bool{}
	for _, r := range img.Records[:20000] {
		if img.Areas[r.Area].NVM {
			continue
		}
		seen[r.Area] = true
	}
	if len(seen) < cfg.Threads {
		t.Fatalf("first window touched %d thread stacks, want %d", len(seen), cfg.Threads)
	}
}

func TestYCSBMTRejectsZeroThreads(t *testing.T) {
	cfg := SmallYCSBMT()
	cfg.Threads = 0
	if _, err := YCSBMT(cfg); err == nil {
		t.Fatal("zero threads accepted")
	}
}

// recordCollector is a RecordSink capturing what a streaming run emits.
type recordCollector struct {
	benchmark string
	areas     []trace.Area
	records   []trace.Record
}

func (c *recordCollector) Write(rec trace.Record) error {
	c.records = append(c.records, rec)
	return nil
}

// TestStreamedCaptureMatchesMaterialized runs each workload twice — once
// materializing, once streaming to a sink — and requires identical record
// sequences: streaming capture must not perturb the trace.
func TestStreamedCaptureMatchesMaterialized(t *testing.T) {
	type runner func(sink SinkOpenFunc) (*trace.Image, error)
	cases := map[string]runner{
		"ycsb": func(sink SinkOpenFunc) (*trace.Image, error) {
			cfg := SmallYCSB()
			cfg.Ops = 30_000
			cfg.Sink = sink
			return YCSB(cfg)
		},
		"pagerank": func(sink SinkOpenFunc) (*trace.Image, error) {
			cfg := SmallPageRank()
			cfg.Ops = 30_000
			cfg.Sink = sink
			return PageRank(cfg)
		},
		"sssp": func(sink SinkOpenFunc) (*trace.Image, error) {
			cfg := SmallSSSP()
			cfg.Ops = 30_000
			cfg.Sink = sink
			return SSSP(cfg)
		},
		"ycsbmt": func(sink SinkOpenFunc) (*trace.Image, error) {
			cfg := SmallYCSBMT()
			cfg.Ops = 30_000
			cfg.Sink = sink
			return YCSBMT(cfg)
		},
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			ref, err := run(nil)
			if err != nil {
				t.Fatal(err)
			}
			col := &recordCollector{}
			hdr, err := run(func(bm string, areas []trace.Area) (trace.RecordSink, error) {
				col.benchmark = bm
				col.areas = append([]trace.Area(nil), areas...)
				return col, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(hdr.Records) != 0 {
				t.Fatalf("streaming run materialized %d records", len(hdr.Records))
			}
			if col.benchmark != ref.Benchmark || len(col.areas) != len(ref.Areas) {
				t.Fatalf("sink header %q/%d areas, want %q/%d", col.benchmark, len(col.areas), ref.Benchmark, len(ref.Areas))
			}
			if len(col.records) != len(ref.Records) {
				t.Fatalf("streamed %d records, materialized %d", len(col.records), len(ref.Records))
			}
			for i := range ref.Records {
				if col.records[i] != ref.Records[i] {
					t.Fatalf("record %d: %+v != %+v", i, col.records[i], ref.Records[i])
				}
			}
		})
	}
}

// errorSink fails after a few writes; the recorder must stop and surface
// the error instead of recording into the void.
type errorSink struct{ left int }

func (s *errorSink) Write(trace.Record) error {
	if s.left--; s.left < 0 {
		return errSinkFull
	}
	return nil
}

var errSinkFull = errors.New("sink full")

func TestRecorderSurfacesSinkError(t *testing.T) {
	cfg := SmallYCSB()
	cfg.Ops = 10_000
	cfg.Sink = func(string, []trace.Area) (trace.RecordSink, error) {
		return &errorSink{left: 100}, nil
	}
	_, err := YCSB(cfg)
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("sink error lost: %v", err)
	}
}
