package pt

import (
	"sort"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Snapshot mirror of a Table handle. The radix tree's contents live in
// physical memory and ride in the copy-on-write Backing a fork shares; the
// handle only carries bookkeeping, so capture/restore is O(table pages)
// and never touches the tree (Attach's rescan would, and would charge
// nothing but would re-derive state we already have exactly).

// State mirrors one Table handle.
type State struct {
	Root       uint64
	Kind       mem.Kind
	TablePages []uint64 // sorted
	Mapped     int
}

// CaptureState copies the table's bookkeeping.
func (t *Table) CaptureState() State {
	st := State{Root: uint64(t.root), Kind: t.kind, Mapped: t.mapped}
	st.TablePages = make([]uint64, 0, len(t.tablePages))
	for pfn := range t.tablePages {
		st.TablePages = append(st.TablePages, pfn)
	}
	sort.Slice(st.TablePages, func(i, j int) bool { return st.TablePages[i] < st.TablePages[j] })
	return st
}

// FromState rebuilds a Table handle over a tree that already exists in
// m's physical memory (a forked machine's restored backing). The write
// hook starts at the default; the persistence layer reinstalls its own
// on its own restore path.
func FromState(st State, m Memory, alloc FrameAllocator, stats *sim.Stats) *Table {
	t := &Table{
		root:       mem.PhysAddr(st.Root),
		kind:       st.Kind,
		mem:        m,
		alloc:      alloc,
		stats:      stats,
		mapped:     st.Mapped,
		tablePages: make(map[uint64]bool, len(st.TablePages)),
	}
	for _, pfn := range st.TablePages {
		t.tablePages[pfn] = true
	}
	t.resolveCounters()
	t.write = t.defaultWrite
	return t
}
