// Package pt implements x86-64 4-level page tables that live inside the
// simulated physical memory. Table pages are real simulated frames, entry
// reads and writes are real simulated memory accesses — which is exactly
// why the paper's two page-table consistency schemes behave differently:
// hosting the table in NVM makes every walk and every modification pay NVM
// latency, hosting it in DRAM requires rebuilding after a crash.
package pt

import "fmt"

// PTE is one 64-bit page-table entry in x86-64 format.
type PTE uint64

// Architectural and software-defined PTE flag bits.
const (
	FlagPresent  = 1 << 0
	FlagWritable = 1 << 1
	FlagUser     = 1 << 2
	FlagAccessed = 1 << 5
	FlagDirty    = 1 << 6
	// FlagNVM is a software bit (one of the ignored bits 9-11) Kindle uses
	// to tag translations that target NVM frames, so the TLB fill can set
	// Entry.NVM and the prototypes can filter NVM pages cheaply.
	FlagNVM = 1 << 9

	pfnShift = 12
	pfnMask  = (uint64(1)<<40 - 1) << pfnShift // bits 12..51
)

// Make builds a PTE from a frame number and flag bits.
func Make(pfn uint64, flags uint64) PTE {
	return PTE((pfn << pfnShift & pfnMask) | (flags &^ pfnMask))
}

// Present reports bit 0.
func (p PTE) Present() bool { return p&FlagPresent != 0 }

// Writable reports bit 1.
func (p PTE) Writable() bool { return p&FlagWritable != 0 }

// User reports bit 2.
func (p PTE) User() bool { return p&FlagUser != 0 }

// Dirty reports bit 6.
func (p PTE) Dirty() bool { return p&FlagDirty != 0 }

// NVM reports the software NVM-target bit.
func (p PTE) NVM() bool { return p&FlagNVM != 0 }

// PFN extracts the frame number.
func (p PTE) PFN() uint64 { return (uint64(p) & pfnMask) >> pfnShift }

// WithFlags returns p with extra flags or-ed in.
func (p PTE) WithFlags(flags uint64) PTE { return p | PTE(flags&^pfnMask) }

func (p PTE) String() string {
	if !p.Present() {
		return "PTE{not present}"
	}
	s := fmt.Sprintf("PTE{pfn=%#x", p.PFN())
	if p.Writable() {
		s += " W"
	}
	if p.User() {
		s += " U"
	}
	if p.Dirty() {
		s += " D"
	}
	if p.NVM() {
		s += " NVM"
	}
	return s + "}"
}

// Levels of the radix tree, top-down. Level 4 = PML4, 1 = leaf page table.
const Levels = 4

// indexAt returns the 9-bit table index for va at the given level (4..1).
func indexAt(va uint64, level int) uint64 {
	shift := uint(12 + 9*(level-1))
	return (va >> shift) & 0x1FF
}

// EntriesPerTable is 512 for 4 KiB tables of 8-byte entries.
const EntriesPerTable = 512

// CanonicalMax is the highest user virtual address we model (47-bit user
// space, matching x86-64 lower-half canonical addresses).
const CanonicalMax = uint64(1)<<47 - 1
