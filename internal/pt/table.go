package pt

import (
	"errors"
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Memory is the machine port the page table uses: timed line accesses
// through the cache hierarchy plus functional 64-bit loads/stores through
// the controller (persist-domain aware). machine.Machine satisfies it.
type Memory interface {
	// AccessTimed performs a timed access to the cache line containing pa
	// and returns its latency.
	AccessTimed(pa mem.PhysAddr, write bool) sim.Cycles
	// LoadU64 / StoreU64 move functional data (cache-visible semantics).
	LoadU64(pa mem.PhysAddr) uint64
	StoreU64(pa mem.PhysAddr, v uint64)
}

// FrameAllocator hands out physical frames for table pages.
type FrameAllocator interface {
	AllocFrame(kind mem.Kind) (pfn uint64, err error)
	FreeFrame(pfn uint64)
}

// WriteHook observes and times one PTE store. The persistent page-table
// scheme replaces the default (a plain timed store) with a version that
// wraps the store in an NVM consistency mechanism (log + clwb + fence).
// It must perform the functional store itself and return the total latency.
type WriteHook func(pa mem.PhysAddr, v PTE) sim.Cycles

// ErrNoMemory is returned when the frame allocator is exhausted.
var ErrNoMemory = errors.New("pt: out of frames for page-table pages")

// Table is one process's 4-level page table.
type Table struct {
	root  mem.PhysAddr // PML4 physical base
	kind  mem.Kind     // where table pages are hosted (DRAM or NVM)
	mem   Memory
	alloc FrameAllocator
	write WriteHook
	stats *sim.Stats

	tablePages map[uint64]bool // pfns of all table pages incl. root
	mapped     int             // count of present leaf PTEs

	// Walk/update counters, resolved once (hot path on every access).
	walks, walkFaults         *sim.Counter
	installs, removes         *sim.Counter
	protects, tablePageAllocs *sim.Counter
}

// New allocates a root table page of the given kind and returns the table.
func New(m Memory, alloc FrameAllocator, kind mem.Kind, stats *sim.Stats) (*Table, error) {
	rootPFN, err := alloc.AllocFrame(kind)
	if err != nil {
		return nil, fmt.Errorf("pt: allocating root: %w", err)
	}
	t := &Table{
		root:       mem.FrameBase(rootPFN),
		kind:       kind,
		mem:        m,
		alloc:      alloc,
		stats:      stats,
		tablePages: map[uint64]bool{rootPFN: true},
	}
	t.resolveCounters()
	t.write = t.defaultWrite
	return t, nil
}

// Attach reconstructs a Table handle over an existing radix tree rooted at
// root (the persistent scheme's recovery: set PTBR and go). The table-page
// set and mapped count are rebuilt by scanning the tree functionally.
func Attach(m Memory, alloc FrameAllocator, kind mem.Kind, root mem.PhysAddr, stats *sim.Stats) *Table {
	t := &Table{
		root:       root,
		kind:       kind,
		mem:        m,
		alloc:      alloc,
		stats:      stats,
		tablePages: map[uint64]bool{mem.FrameNumber(root): true},
	}
	t.resolveCounters()
	t.write = t.defaultWrite
	t.rescan()
	return t
}

// resolveCounters binds the per-operation counters once so walks and PTE
// updates never pay the name lookup.
func (t *Table) resolveCounters() {
	t.walks = t.stats.Counter("pt.walk")
	t.walkFaults = t.stats.Counter("pt.walk_fault")
	t.installs = t.stats.Counter("pt.install")
	t.removes = t.stats.Counter("pt.remove")
	t.protects = t.stats.Counter("pt.protect")
	t.tablePageAllocs = t.stats.Counter("pt.table_page_alloc")
}

// rescan rebuilds bookkeeping (table pages, mapped count) from the tree.
func (t *Table) rescan() {
	t.mapped = 0
	var walk func(base mem.PhysAddr, level int)
	walk = func(base mem.PhysAddr, level int) {
		for i := uint64(0); i < EntriesPerTable; i++ {
			e := PTE(t.mem.LoadU64(base + mem.PhysAddr(i*8)))
			if !e.Present() {
				continue
			}
			if level == 1 {
				t.mapped++
				continue
			}
			t.tablePages[e.PFN()] = true
			walk(mem.FrameBase(e.PFN()), level-1)
		}
	}
	walk(t.root, Levels)
}

// Root returns the PML4 base (the PTBR value).
func (t *Table) Root() mem.PhysAddr { return t.root }

// Kind returns where table pages are hosted.
func (t *Table) Kind() mem.Kind { return t.kind }

// Mapped returns the number of present leaf PTEs.
func (t *Table) Mapped() int { return t.mapped }

// TablePageCount returns how many physical frames the tree occupies.
func (t *Table) TablePageCount() int { return len(t.tablePages) }

// TablePages returns the frame numbers of every table page (root
// included). Recovery garbage collection uses them as GC roots for
// NVM-hosted tables.
func (t *Table) TablePages() []uint64 {
	out := make([]uint64, 0, len(t.tablePages))
	for pfn := range t.tablePages {
		out = append(out, pfn)
	}
	return out
}

// SetWriteHook replaces the PTE-store path (nil restores the default).
func (t *Table) SetWriteHook(h WriteHook) {
	if h == nil {
		t.write = t.defaultWrite
		return
	}
	t.write = h
}

// defaultWrite is a plain timed store of one PTE.
func (t *Table) defaultWrite(pa mem.PhysAddr, v PTE) sim.Cycles {
	lat := t.mem.AccessTimed(pa, true)
	t.mem.StoreU64(pa, uint64(v))
	return lat
}

// readTimed reads one PTE with timing.
func (t *Table) readTimed(pa mem.PhysAddr) (PTE, sim.Cycles) {
	lat := t.mem.AccessTimed(pa, false)
	return PTE(t.mem.LoadU64(pa)), lat
}

// entryAddr returns the physical address of the PTE for va at level inside
// the table page at base.
func entryAddr(base mem.PhysAddr, va uint64, level int) mem.PhysAddr {
	return base + mem.PhysAddr(indexAt(va, level)*8)
}

// Install maps va -> pfn with flags (FlagPresent is implied), creating
// intermediate table pages as needed. It returns the simulated latency of
// all entry reads/writes performed. Installing over an existing mapping
// replaces it. NewTablePages reports frames allocated for intermediate
// levels during this call, which the persistence layer logs.
func (t *Table) Install(va uint64, pfn uint64, flags uint64) (lat sim.Cycles, newTablePages []uint64, err error) {
	if va > CanonicalMax {
		return 0, nil, fmt.Errorf("pt: non-canonical va %#x", va)
	}
	base := t.root
	for level := Levels; level > 1; level-- {
		ea := entryAddr(base, va, level)
		e, l := t.readTimed(ea)
		lat += l
		if !e.Present() {
			tp, aerr := t.alloc.AllocFrame(t.kind)
			if aerr != nil {
				return lat, newTablePages, ErrNoMemory
			}
			t.zeroTablePage(tp)
			t.tablePages[tp] = true
			newTablePages = append(newTablePages, tp)
			e = Make(tp, FlagPresent|FlagWritable|FlagUser)
			lat += t.write(ea, e)
			t.tablePageAllocs.Inc()
		}
		base = mem.FrameBase(e.PFN())
	}
	ea := entryAddr(base, va, 1)
	old, l := t.readTimed(ea)
	lat += l
	leaf := Make(pfn, flags|FlagPresent)
	lat += t.write(ea, leaf)
	if !old.Present() {
		t.mapped++
	}
	t.installs.Inc()
	return lat, newTablePages, nil
}

// Committer is an optional Memory capability: making a physical range
// durable. The machine implements it via the persist domain; NVM-hosted
// tables use it so freshly zeroed table pages survive a crash (a reused
// frame could otherwise resurrect stale committed entries).
type Committer interface {
	CommitRange(pa mem.PhysAddr, size uint64)
}

// zeroTablePage clears a fresh table frame with timed line writes, and for
// NVM-hosted tables commits the zeroed page.
func (t *Table) zeroTablePage(pfn uint64) {
	base := mem.FrameBase(pfn)
	for off := uint64(0); off < mem.PageSize; off += 8 {
		t.mem.StoreU64(base+mem.PhysAddr(off), 0)
	}
	for off := uint64(0); off < mem.PageSize; off += mem.LineSize {
		t.mem.AccessTimed(base+mem.PhysAddr(off), true)
	}
	if t.kind == mem.NVM {
		if c, ok := t.mem.(Committer); ok {
			c.CommitRange(base, mem.PageSize)
		}
	}
}

// Remove unmaps va. It returns the old leaf (so the caller can free the
// data frame), the latency, and whether a mapping was present.
func (t *Table) Remove(va uint64) (old PTE, lat sim.Cycles, present bool) {
	base := t.root
	for level := Levels; level > 1; level-- {
		ea := entryAddr(base, va, level)
		e, l := t.readTimed(ea)
		lat += l
		if !e.Present() {
			return 0, lat, false
		}
		base = mem.FrameBase(e.PFN())
	}
	ea := entryAddr(base, va, 1)
	e, l := t.readTimed(ea)
	lat += l
	if !e.Present() {
		return 0, lat, false
	}
	lat += t.write(ea, 0)
	t.mapped--
	t.removes.Inc()
	return e, lat, true
}

// Protect rewrites the flags of an existing mapping (mprotect). Returns
// ok=false when va is unmapped.
func (t *Table) Protect(va uint64, flags uint64) (lat sim.Cycles, ok bool) {
	base := t.root
	for level := Levels; level > 1; level-- {
		ea := entryAddr(base, va, level)
		e, l := t.readTimed(ea)
		lat += l
		if !e.Present() {
			return lat, false
		}
		base = mem.FrameBase(e.PFN())
	}
	ea := entryAddr(base, va, 1)
	e, l := t.readTimed(ea)
	lat += l
	if !e.Present() {
		return lat, false
	}
	lat += t.write(ea, Make(e.PFN(), flags|FlagPresent))
	t.protects.Inc()
	return lat, true
}

// Lookup translates va functionally (no timing, no state change): the
// OS-internal query path.
func (t *Table) Lookup(va uint64) (PTE, bool) {
	base := t.root
	for level := Levels; level > 1; level-- {
		e := PTE(t.mem.LoadU64(entryAddr(base, va, level)))
		if !e.Present() {
			return 0, false
		}
		base = mem.FrameBase(e.PFN())
	}
	e := PTE(t.mem.LoadU64(entryAddr(base, va, 1)))
	if !e.Present() {
		return 0, false
	}
	return e, true
}

// Walk performs the hardware page-table walk for va: four timed PTE reads
// through the cache hierarchy (walker caches are not modeled). Returns the
// leaf, total latency, and whether translation succeeded.
func (t *Table) Walk(va uint64) (PTE, sim.Cycles, bool) {
	var lat sim.Cycles
	base := t.root
	for level := Levels; level > 1; level-- {
		e, l := t.readTimed(entryAddr(base, va, level))
		lat += l
		if !e.Present() {
			t.walkFaults.Inc()
			return 0, lat, false
		}
		base = mem.FrameBase(e.PFN())
	}
	e, l := t.readTimed(entryAddr(base, va, 1))
	lat += l
	if !e.Present() {
		t.walkFaults.Inc()
		return 0, lat, false
	}
	t.walks.Inc()
	return e, lat, true
}

// ForEachMapped visits every present leaf mapping in ascending va order.
// Return false from fn to stop early. Traversal is functional — callers
// that model traversal cost (checkpointing, HSCC scans) charge it
// separately via bulk costing, keeping host time bounded on huge tables.
func (t *Table) ForEachMapped(fn func(va uint64, e PTE) bool) {
	t.forEachIn(t.root, Levels, 0, fn)
}

func (t *Table) forEachIn(base mem.PhysAddr, level int, vaPrefix uint64, fn func(va uint64, e PTE) bool) bool {
	for i := uint64(0); i < EntriesPerTable; i++ {
		e := PTE(t.mem.LoadU64(base + mem.PhysAddr(i*8)))
		if !e.Present() {
			continue
		}
		va := vaPrefix | i<<uint(12+9*(level-1))
		if level == 1 {
			if !fn(va, e) {
				return false
			}
			continue
		}
		if !t.forEachIn(mem.FrameBase(e.PFN()), level-1, va, fn) {
			return false
		}
	}
	return true
}

// UpdateLeaf rewrites the leaf PTE for va via the write hook without
// touching intermediate levels (HSCC remapping and access-count resets).
// ok=false when va is unmapped.
func (t *Table) UpdateLeaf(va uint64, e PTE) (lat sim.Cycles, ok bool) {
	base := t.root
	for level := Levels; level > 1; level-- {
		pe := PTE(t.mem.LoadU64(entryAddr(base, va, level)))
		if !pe.Present() {
			return 0, false
		}
		base = mem.FrameBase(pe.PFN())
	}
	ea := entryAddr(base, va, 1)
	if !PTE(t.mem.LoadU64(ea)).Present() {
		return 0, false
	}
	return t.write(ea, e.WithFlags(FlagPresent)), true
}

// Destroy frees all table pages (not the mapped data frames). The table is
// unusable afterwards.
func (t *Table) Destroy() {
	for pfn := range t.tablePages {
		t.alloc.FreeFrame(pfn)
	}
	t.tablePages = map[uint64]bool{}
	t.mapped = 0
}
