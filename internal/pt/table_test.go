package pt

import (
	"sort"
	"testing"
	"testing/quick"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// testMem adapts controller + hierarchy-free timing for pt unit tests:
// timed accesses just charge device latency via the controller, and the
// clock advances so device buffers behave realistically.
type testMem struct {
	ctrl  *mem.Controller
	clock *sim.Clock
}

func (m *testMem) AccessTimed(pa mem.PhysAddr, write bool) sim.Cycles {
	lat := m.ctrl.AccessLine(pa, write)
	m.clock.Advance(lat)
	return lat
}
func (m *testMem) LoadU64(pa mem.PhysAddr) uint64     { return m.ctrl.ReadU64(pa) }
func (m *testMem) StoreU64(pa mem.PhysAddr, v uint64) { m.ctrl.WriteU64(pa, v) }

// bumpAlloc is a trivial per-kind bump allocator with a free list.
type bumpAlloc struct {
	layout mem.Layout
	nextD  uint64
	nextN  uint64
	free   []uint64
	freed  map[uint64]bool
}

func newBumpAlloc(l mem.Layout) *bumpAlloc {
	return &bumpAlloc{
		layout: l,
		nextD:  mem.FrameNumber(l.DRAMBase),
		nextN:  mem.FrameNumber(l.NVMBase),
		freed:  map[uint64]bool{},
	}
}

func (a *bumpAlloc) AllocFrame(k mem.Kind) (uint64, error) {
	if n := len(a.free); n > 0 {
		pfn := a.free[n-1]
		a.free = a.free[:n-1]
		delete(a.freed, pfn)
		return pfn, nil
	}
	if k == mem.DRAM {
		pfn := a.nextD
		a.nextD++
		return pfn, nil
	}
	pfn := a.nextN
	a.nextN++
	return pfn, nil
}

func (a *bumpAlloc) FreeFrame(pfn uint64) {
	if a.freed[pfn] {
		panic("double free")
	}
	a.freed[pfn] = true
	a.free = append(a.free, pfn)
}

func newTestTable(t testing.TB, kind mem.Kind) (*Table, *testMem, *bumpAlloc) {
	t.Helper()
	clock := sim.NewClock()
	stats := sim.NewStats()
	ctrl := mem.NewController(mem.SmallLayout(), mem.DDR4_2400(), mem.PCM(), clock, stats)
	m := &testMem{ctrl: ctrl, clock: clock}
	alloc := newBumpAlloc(ctrl.Layout)
	tbl, err := New(m, alloc, kind, stats)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, m, alloc
}

func TestPTEBits(t *testing.T) {
	e := Make(0x12345, FlagWritable|FlagUser|FlagNVM|FlagPresent)
	if !e.Present() || !e.Writable() || !e.User() || !e.NVM() || e.Dirty() {
		t.Fatalf("flag decode wrong: %v", e)
	}
	if e.PFN() != 0x12345 {
		t.Fatalf("PFN = %#x", e.PFN())
	}
	if PTE(0).String() != "PTE{not present}" {
		t.Fatal("zero PTE string")
	}
	e2 := e.WithFlags(FlagDirty)
	if !e2.Dirty() || e2.PFN() != 0x12345 {
		t.Fatal("WithFlags broke PFN or missed flag")
	}
}

func TestPTEPFNRoundTripProperty(t *testing.T) {
	f := func(pfn uint32, flags uint16) bool {
		e := Make(uint64(pfn), uint64(flags)|FlagPresent)
		return e.PFN() == uint64(pfn) && e.Present()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexAt(t *testing.T) {
	va := CanonicalMax
	for level := 1; level <= 3; level++ {
		if got := indexAt(va, level); got != 0x1FF {
			t.Fatalf("indexAt(max, %d) = %#x", level, got)
		}
	}
	// 47-bit user space only reaches half the PML4.
	if got := indexAt(va, 4); got != 0xFF {
		t.Fatalf("indexAt(max, 4) = %#x, want 0xff", got)
	}
	if indexAt(0, 4) != 0 || indexAt(1<<21, 1) != 0 || indexAt(1<<21, 2) != 1 {
		t.Fatal("indexAt arithmetic wrong")
	}
}

func TestInstallLookupWalk(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	va := uint64(0x4000_0000) // 1 GiB: exercises distinct L3/L2/L1 indices
	lat, newPages, err := tbl.Install(va, 777, FlagWritable|FlagUser)
	if err != nil {
		t.Fatal(err)
	}
	if lat == 0 {
		t.Fatal("install charged no time")
	}
	if len(newPages) != 3 {
		t.Fatalf("intermediate pages allocated = %d, want 3 (L3,L2,L1)", len(newPages))
	}
	e, ok := tbl.Lookup(va)
	if !ok || e.PFN() != 777 || !e.Writable() {
		t.Fatalf("Lookup: %v %v", e, ok)
	}
	we, wlat, ok := tbl.Walk(va)
	if !ok || we.PFN() != 777 || wlat == 0 {
		t.Fatalf("Walk: %v %d %v", we, wlat, ok)
	}
	if _, ok := tbl.Lookup(va + mem.PageSize); ok {
		t.Fatal("phantom mapping")
	}
	if tbl.Mapped() != 1 {
		t.Fatalf("Mapped = %d", tbl.Mapped())
	}
	if tbl.TablePageCount() != 4 { // root + 3
		t.Fatalf("TablePageCount = %d", tbl.TablePageCount())
	}
}

func TestInstallSharedIntermediates(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	if _, p, _ := tbl.Install(0x1000, 1, 0); len(p) != 3 {
		t.Fatal("first install should allocate 3 levels")
	}
	// Next page in the same 2 MiB region shares all intermediates.
	if _, p, _ := tbl.Install(0x2000, 2, 0); len(p) != 0 {
		t.Fatalf("second install allocated %d new table pages", len(p))
	}
	// A page 1 GiB away shares only the root and L3.
	if _, p, _ := tbl.Install(1<<30, 3, 0); len(p) != 2 {
		t.Fatalf("1GiB-away install allocated %d new table pages, want 2", len(p))
	}
}

func TestInstallReplace(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	tbl.Install(0x1000, 10, 0)
	tbl.Install(0x1000, 20, 0)
	if e, _ := tbl.Lookup(0x1000); e.PFN() != 20 {
		t.Fatalf("replacement failed: %v", e)
	}
	if tbl.Mapped() != 1 {
		t.Fatalf("Mapped = %d after replace", tbl.Mapped())
	}
}

func TestRemove(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	tbl.Install(0x5000, 55, FlagNVM)
	old, lat, present := tbl.Remove(0x5000)
	if !present || old.PFN() != 55 || !old.NVM() || lat == 0 {
		t.Fatalf("Remove: %v %d %v", old, lat, present)
	}
	if _, ok := tbl.Lookup(0x5000); ok {
		t.Fatal("mapping survived Remove")
	}
	if tbl.Mapped() != 0 {
		t.Fatal("Mapped not decremented")
	}
	if _, _, present := tbl.Remove(0x5000); present {
		t.Fatal("double Remove reported present")
	}
	// Removing in a never-touched region is safe.
	if _, _, present := tbl.Remove(1 << 40); present {
		t.Fatal("Remove found mapping in empty region")
	}
}

func TestProtect(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	tbl.Install(0x1000, 5, FlagWritable)
	if _, ok := tbl.Protect(0x1000, 0); !ok {
		t.Fatal("Protect failed")
	}
	e, _ := tbl.Lookup(0x1000)
	if e.Writable() {
		t.Fatal("Protect did not clear writable")
	}
	if e.PFN() != 5 {
		t.Fatal("Protect clobbered PFN")
	}
	if _, ok := tbl.Protect(0x9000, 0); ok {
		t.Fatal("Protect of unmapped va succeeded")
	}
}

func TestWalkFault(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	if _, _, ok := tbl.Walk(0x1234000); ok {
		t.Fatal("walk of empty table succeeded")
	}
	tbl.Install(0x1000, 1, 0)
	// Sibling page: intermediates exist, leaf absent.
	if _, _, ok := tbl.Walk(0x2000); ok {
		t.Fatal("walk found absent leaf")
	}
}

func TestForEachMappedOrderAndEarlyStop(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	vas := []uint64{1 << 30, 0x1000, 5 << 21, 0x3000}
	for i, va := range vas {
		tbl.Install(va, uint64(100+i), 0)
	}
	var seen []uint64
	tbl.ForEachMapped(func(va uint64, e PTE) bool {
		seen = append(seen, va)
		return true
	})
	want := append([]uint64(nil), vas...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(seen) != len(want) {
		t.Fatalf("visited %d, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order: got %#x want %#x at %d", seen[i], want[i], i)
		}
	}
	// Early stop.
	n := 0
	tbl.ForEachMapped(func(uint64, PTE) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestUpdateLeaf(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	tbl.Install(0x1000, 5, FlagWritable|FlagNVM)
	lat, ok := tbl.UpdateLeaf(0x1000, Make(9, FlagWritable))
	if !ok || lat == 0 {
		t.Fatal("UpdateLeaf failed")
	}
	e, _ := tbl.Lookup(0x1000)
	if e.PFN() != 9 || e.NVM() {
		t.Fatalf("UpdateLeaf result: %v", e)
	}
	if _, ok := tbl.UpdateLeaf(0x8000, Make(1, 0)); ok {
		t.Fatal("UpdateLeaf of unmapped va succeeded")
	}
	if tbl.Mapped() != 1 {
		t.Fatal("UpdateLeaf changed mapped count")
	}
}

func TestWriteHook(t *testing.T) {
	tbl, m, _ := newTestTable(t, mem.NVM)
	var hookWrites int
	tbl.SetWriteHook(func(pa mem.PhysAddr, v PTE) sim.Cycles {
		hookWrites++
		m.StoreU64(pa, uint64(v))
		return 123
	})
	tbl.Install(0x1000, 7, 0)
	if hookWrites != 4 { // 3 intermediates + 1 leaf
		t.Fatalf("hook writes = %d, want 4", hookWrites)
	}
	if e, ok := tbl.Lookup(0x1000); !ok || e.PFN() != 7 {
		t.Fatal("hooked install not visible")
	}
	tbl.SetWriteHook(nil)
	tbl.Install(0x2000, 8, 0)
	if hookWrites != 4 {
		t.Fatal("hook fired after removal")
	}
}

func TestNVMTableSlower(t *testing.T) {
	dtbl, dm, _ := newTestTable(t, mem.DRAM)
	ntbl, nm, _ := newTestTable(t, mem.NVM)
	dLat, _, _ := dtbl.Install(0x1000, 1, 0)
	nLat, _, _ := ntbl.Install(0x1000, 1, 0)
	if nLat <= dLat {
		t.Fatalf("NVM-hosted install (%d) not slower than DRAM-hosted (%d)", nLat, dLat)
	}
	// Walks too (no caches in this harness: raw device latency). Let the
	// NVM write buffer drain first so reads hit the array, not the buffer.
	nm.clock.Advance(sim.FromNanos(1e6))
	dm.clock.Advance(sim.FromNanos(1e6))
	_, dw, _ := dtbl.Walk(0x1000)
	_, nw, _ := ntbl.Walk(0x1000)
	if nw <= dw {
		t.Fatalf("NVM walk (%d) not slower than DRAM walk (%d)", nw, dw)
	}
}

func TestAttachRebuildsState(t *testing.T) {
	tbl, m, alloc := newTestTable(t, mem.NVM)
	for i := uint64(0); i < 20; i++ {
		tbl.Install(0x1000+i*mem.PageSize, 100+i, FlagNVM)
	}
	tbl.Install(1<<35, 999, 0)
	re := Attach(m, alloc, mem.NVM, tbl.Root(), sim.NewStats())
	if re.Mapped() != 21 {
		t.Fatalf("reattached Mapped = %d, want 21", re.Mapped())
	}
	if re.TablePageCount() != tbl.TablePageCount() {
		t.Fatalf("table pages %d vs %d", re.TablePageCount(), tbl.TablePageCount())
	}
	if e, ok := re.Lookup(1 << 35); !ok || e.PFN() != 999 {
		t.Fatal("reattached table lost a mapping")
	}
}

func TestDestroyFreesTablePages(t *testing.T) {
	tbl, _, alloc := newTestTable(t, mem.DRAM)
	tbl.Install(0x1000, 1, 0)
	n := tbl.TablePageCount()
	tbl.Destroy()
	if len(alloc.free) != n {
		t.Fatalf("freed %d frames, want %d", len(alloc.free), n)
	}
	if tbl.Mapped() != 0 || tbl.TablePageCount() != 0 {
		t.Fatal("Destroy left state")
	}
}

func TestNonCanonicalInstall(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	if _, _, err := tbl.Install(1<<48, 1, 0); err == nil {
		t.Fatal("non-canonical va accepted")
	}
}

func TestInstallLookupProperty(t *testing.T) {
	tbl, _, _ := newTestTable(t, mem.DRAM)
	f := func(page uint16, pfn uint16) bool {
		va := uint64(page) * mem.PageSize
		if _, _, err := tbl.Install(va, uint64(pfn), FlagWritable); err != nil {
			return false
		}
		e, ok := tbl.Lookup(va)
		return ok && e.PFN() == uint64(pfn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWalk(b *testing.B) {
	tbl, _, _ := newTestTable(b, mem.DRAM)
	tbl.Install(0x1000, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Walk(0x1000)
	}
}

func BenchmarkInstallRemove(b *testing.B) {
	tbl, _, _ := newTestTable(b, mem.DRAM)
	for i := 0; i < b.N; i++ {
		va := uint64(i%10000+1) * mem.PageSize
		tbl.Install(va, uint64(i), 0)
		tbl.Remove(va)
	}
}
