package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DumpInterval writes one gem5-format statistics block containing the
// counter *deltas* since the previous DumpInterval call (or since the
// beginning of the run for the first call), then advances the interval
// baseline — the à-la-`m5 dumpstats` periodic dump. Appending each block
// to one file reproduces gem5's multi-block stats.txt; the per-block
// deltas of any counter sum to its end-of-run total when a final
// DumpInterval is issued at the end of the run.
//
// Every counter that ever moved appears in every block (zero deltas
// included) so downstream tooling sees a rectangular table. Histograms
// are cumulative-state stats and are excluded from interval blocks; use
// WriteStatsFile for their end-of-run rendering.
func (s *Stats) DumpInterval(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, beginMarker); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%-*s %20d                       # (Unspecified)\n",
		NameColWidth, "interval.index", s.intervals+1); err != nil {
		return err
	}
	for _, name := range s.Names() {
		delta := s.counters[name].v
		if s.intervalSnap != nil {
			delta -= s.intervalSnap[name]
		}
		if _, err := fmt.Fprintf(bw, "%-*s %20d                       # (Unspecified)\n",
			NameColWidth, name, delta); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, endMarker); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Advance the interval state only once the block is fully written, so
	// a failed dump can be retried without skipping an index or losing
	// the deltas it would have covered.
	s.intervals++
	s.intervalSnap = s.Snapshot()
	return nil
}

// IntervalCount reports how many interval blocks have been dumped.
func (s *Stats) IntervalCount() int { return s.intervals }

// ParseStatsBlocks reads a multi-block stats file (as produced by
// repeated DumpInterval calls, or by gem5's periodic stat dumps) and
// returns one counter map per Begin/End block, in file order.
// Non-integer stats are skipped, as in ParseStatsFile.
func ParseStatsBlocks(r io.Reader) ([]map[string]uint64, error) {
	var blocks []map[string]uint64
	var cur map[string]uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "---------- Begin"):
			cur = make(map[string]uint64)
			continue
		case strings.HasPrefix(line, "---------- End"):
			if cur != nil {
				blocks = append(blocks, cur)
				cur = nil
			}
			continue
		}
		if cur == nil {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sim: stats line %d malformed: %q", lineNo, line)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue // float stat; skip like ParseStatsFile
		}
		cur[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return blocks, nil
}
