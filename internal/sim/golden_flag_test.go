package sim

import "flag"

// updateGolden rewrites testdata golden files instead of comparing.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")
