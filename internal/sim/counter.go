package sim

import "sync/atomic"

// Counter is a handle to one named counter in a Stats registry, resolved
// once at component construction — the counter analogue of Stats.Hist.
// Inc/Add on the handle are plain field increments with no map lookup, so
// components sit them directly on hot paths; the name-based Stats
// methods (Inc/Add/Get/...) remain available for cold paths and always
// observe the same value (both views alias the same cell).
type Counter struct {
	name string
	v    uint64
}

// Name returns the registered stat name.
func (c *Counter) Name() string { return c.name }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v += delta }

// Set overwrites the counter.
func (c *Counter) Set(v uint64) { c.v = v }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Sample reads the counter from a goroutine other than the simulation's —
// the monitor endpoint's snapshot primitive. The load is atomic, so a
// concurrent observer can never see a torn value, but it deliberately does
// not synchronize with the simulation's plain increments: a scrape taken
// mid-run sees a value at most one increment stale, which is exactly the
// freshness a metrics endpoint needs and costs the hot path nothing.
// Simulation code should keep using Value.
func (c *Counter) Sample() uint64 { return atomic.LoadUint64(&c.v) }
