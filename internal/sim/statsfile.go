package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteStatsFile renders the registry in gem5's stats.txt format — the
// paper's artifact ships Python scripts that parse exactly this layout, so
// Kindle emits it for drop-in compatibility with existing tooling.
func (s *Stats) WriteStatsFile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "---------- Begin Simulation Statistics ----------"); err != nil {
		return err
	}
	for _, name := range s.Names() {
		if _, err := fmt.Fprintf(bw, "%-44s %20d                       # (Unspecified)\n", name, s.counters[name]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "---------- End Simulation Statistics   ----------"); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseStatsFile reads a stats file written by WriteStatsFile (or by gem5,
// for integer scalar stats) back into a counter map.
func ParseStatsFile(r io.Reader) (map[string]uint64, error) {
	out := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inBlock := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "---------- Begin"):
			inBlock = true
			continue
		case strings.HasPrefix(line, "---------- End"):
			inBlock = false
			continue
		}
		if !inBlock {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sim: stats line %d malformed: %q", lineNo, line)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			// gem5 emits non-integer stats too; skip them, as the
			// artifact's parsers do for values they don't use.
			continue
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
