package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NameColWidth is the column the stat value starts at in every rendered
// layout (Dump, WriteStatsFile, DumpInterval). Names longer than the pad
// simply push the value right, exactly as gem5 does; parsers split on
// whitespace so nothing breaks.
const NameColWidth = 48

const (
	beginMarker = "---------- Begin Simulation Statistics ----------"
	endMarker   = "---------- End Simulation Statistics   ----------"
)

// WriteStatsFile renders the registry in gem5's stats.txt format — the
// paper's artifact ships Python scripts that parse exactly this layout, so
// Kindle emits it for drop-in compatibility with existing tooling.
// Histograms render as gem5 distribution stats: name::samples, a float
// name::mean, name::min_value / ::max_value and one line per non-empty
// log2 bucket (name::lo-hi).
func (s *Stats) WriteStatsFile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, beginMarker); err != nil {
		return err
	}
	var werr error
	s.forEachStat(func(name string, v uint64, fv float64, isFloat bool) {
		if werr != nil {
			return
		}
		if isFloat {
			_, werr = fmt.Fprintf(bw, "%-*s %20.6f                       # (Unspecified)\n", NameColWidth, name, fv)
		} else {
			_, werr = fmt.Fprintf(bw, "%-*s %20d                       # (Unspecified)\n", NameColWidth, name, v)
		}
	})
	if werr != nil {
		return werr
	}
	if _, err := fmt.Fprintln(bw, endMarker); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseStatsFile reads a stats file written by WriteStatsFile (or by gem5,
// for integer scalar stats) back into a counter map. Only the first
// Begin/End block is read: cmd/kindle appends interval blocks (deltas,
// not totals) after the end-of-run totals block, and later gem5 dumps
// are likewise deltas since the previous dump. Use ParseStatsBlocks to
// read every block of a multi-block file.
func ParseStatsFile(r io.Reader) (map[string]uint64, error) {
	out := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inBlock := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "---------- Begin"):
			inBlock = true
			continue
		case strings.HasPrefix(line, "---------- End"):
			return out, nil
		}
		if !inBlock {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sim: stats line %d malformed: %q", lineNo, line)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			// gem5 emits non-integer stats too; skip them, as the
			// artifact's parsers do for values they don't use.
			continue
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
