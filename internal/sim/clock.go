// Package sim provides the simulation kernel shared by every Kindle
// component: a global cycle clock, a deterministic event queue, a stats
// registry, and a reproducible random-number source.
//
// All timing in Kindle is expressed in CPU cycles of a fixed-frequency core
// (3 GHz, matching the paper's gem5 configuration). Components convert
// nanosecond device parameters to cycles through the Clock so the whole
// machine shares one time base.
package sim

import (
	"fmt"
	"time"
)

// Cycles counts CPU clock cycles. It is the single unit of simulated time.
type Cycles uint64

// Frequency is the simulated core clock in Hz. The paper configures gem5
// with an Intel 64-bit in-order CPU at 3 GHz.
const Frequency = 3_000_000_000

// CyclesPerNano is the number of cycles in one nanosecond at Frequency.
const CyclesPerNano = Frequency / 1_000_000_000

// FromNanos converts a duration in nanoseconds to cycles.
func FromNanos(ns float64) Cycles {
	if ns <= 0 {
		return 0
	}
	return Cycles(ns*float64(CyclesPerNano) + 0.5)
}

// FromDuration converts a wall-clock style duration to cycles.
func FromDuration(d time.Duration) Cycles {
	return Cycles(uint64(d.Nanoseconds()) * CyclesPerNano)
}

// Nanos converts cycles to nanoseconds.
func (c Cycles) Nanos() float64 { return float64(c) / float64(CyclesPerNano) }

// Micros converts cycles to microseconds.
func (c Cycles) Micros() float64 { return c.Nanos() / 1e3 }

// Millis converts cycles to milliseconds.
func (c Cycles) Millis() float64 { return c.Nanos() / 1e6 }

// Duration converts cycles to a time.Duration (nanosecond granularity).
func (c Cycles) Duration() time.Duration {
	return time.Duration(uint64(c) / CyclesPerNano)
}

func (c Cycles) String() string {
	switch {
	case c >= FromDuration(time.Millisecond):
		return fmt.Sprintf("%.3fms", c.Millis())
	case c >= FromDuration(time.Microsecond):
		return fmt.Sprintf("%.3fµs", c.Micros())
	default:
		return fmt.Sprintf("%.0fns", c.Nanos())
	}
}

// Clock is the global simulated time source. It only moves forward.
// Components advance it as latencies accrue; the event queue fires callbacks
// whose deadlines have passed.
type Clock struct {
	now Cycles
}

// NewClock returns a clock at cycle zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated cycle.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves simulated time forward by d cycles.
func (c *Clock) Advance(d Cycles) { c.now += d }

// AdvanceTo moves simulated time forward to at least t. Moving backwards is
// a programming error and panics: simulated time is monotonic.
func (c *Clock) AdvanceTo(t Cycles) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: now=%d target=%d", c.now, t))
	}
	c.now = t
}

// Reset rewinds the clock to zero. Only Machine reset paths (reboot after a
// crash keeps the clock; unit tests reset it) should use this.
func (c *Clock) Reset() { c.now = 0 }
