package sim

import "testing"

// BenchmarkStatsIncByName measures the string-keyed counter path every
// uncached call site pays (map hash + lookup per event).
func BenchmarkStatsIncByName(b *testing.B) {
	s := NewStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Inc("cache.l1.hit")
	}
}

// BenchmarkStatsAddByName is the Add variant (cycle attribution counters).
func BenchmarkStatsAddByName(b *testing.B) {
	s := NewStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add("cpu.user_cycles", 42)
	}
}

// BenchmarkCounterHandleInc measures the cached-handle path the hot call
// sites use after resolving the counter once at construction.
func BenchmarkCounterHandleInc(b *testing.B) {
	s := NewStats()
	c := s.Counter("cache.l1.hit")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterHandleAdd is the Add variant on a cached handle.
func BenchmarkCounterHandleAdd(b *testing.B) {
	s := NewStats()
	c := s.Counter("cpu.user_cycles")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(42)
	}
}
