package sim

import (
	"bytes"
	"strings"
	"testing"
)

// TestCounterHandleAliasesName pins the core contract of the handle API:
// the handle and the name-based methods read and write the same cell, in
// both directions.
func TestCounterHandleAliasesName(t *testing.T) {
	s := NewStats()
	c := s.Counter("cache.l1.hit")
	if got := s.Counter("cache.l1.hit"); got != c {
		t.Fatalf("second Counter call returned a different handle: %p vs %p", got, c)
	}
	c.Inc()
	c.Add(4)
	if got := s.Get("cache.l1.hit"); got != 5 {
		t.Fatalf("name view after handle writes = %d, want 5", got)
	}
	s.Add("cache.l1.hit", 10)
	s.Inc("cache.l1.hit")
	if got := c.Value(); got != 16 {
		t.Fatalf("handle view after name writes = %d, want 16", got)
	}
	s.Set("cache.l1.hit", 3)
	if got := c.Value(); got != 3 {
		t.Fatalf("handle view after Set = %d, want 3", got)
	}
	c.Set(9)
	if got := s.Get("cache.l1.hit"); got != 9 {
		t.Fatalf("name view after handle Set = %d, want 9", got)
	}
	if c.Name() != "cache.l1.hit" {
		t.Fatalf("handle name = %q", c.Name())
	}
	// A handle obtained after name-based registration aliases too.
	s.Inc("late")
	if got := s.Counter("late").Value(); got != 1 {
		t.Fatalf("handle for pre-existing name = %d, want 1", got)
	}
}

// TestCounterResetKeepsHandles verifies Reset zeroes the value but leaves
// every previously obtained handle live and aliased.
func TestCounterResetKeepsHandles(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	c.Add(7)
	s.Reset()
	if c.Value() != 0 || s.Get("x") != 0 {
		t.Fatalf("Reset left x at handle=%d name=%d", c.Value(), s.Get("x"))
	}
	c.Inc()
	if s.Get("x") != 1 {
		t.Fatalf("handle detached after Reset: name view = %d, want 1", s.Get("x"))
	}
	if names := s.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("registration lost across Reset: %v", names)
	}
}

// TestCounterSnapshotAndIntervals drives Snapshot/DiffFrom and DumpInterval
// through handle-written counters: deltas must track handle increments and
// per-block deltas must sum to the end-of-run total.
func TestCounterSnapshotAndIntervals(t *testing.T) {
	s := NewStats()
	c := s.Counter("nvm.write")
	c.Add(3)
	snap := s.Snapshot()
	c.Add(5)
	if d := s.DiffFrom(snap); d["nvm.write"] != 5 {
		t.Fatalf("DiffFrom after handle writes = %v, want nvm.write:5", d)
	}

	var buf bytes.Buffer
	if err := s.DumpInterval(&buf); err != nil {
		t.Fatal(err)
	}
	c.Add(4)
	s.Inc("nvm.write") // mixed handle + name writes within one interval
	if err := s.DumpInterval(&buf); err != nil {
		t.Fatal(err)
	}
	blocks, err := ParseStatsBlocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0]["nvm.write"] != 8 || blocks[1]["nvm.write"] != 5 {
		t.Fatalf("interval deltas = %d, %d; want 8, 5", blocks[0]["nvm.write"], blocks[1]["nvm.write"])
	}
	if sum := blocks[0]["nvm.write"] + blocks[1]["nvm.write"]; sum != c.Value() {
		t.Fatalf("deltas sum to %d, total is %d", sum, c.Value())
	}
}

// TestCounterHistogramCollisionPanics pins both registration orders: a
// Counter handle under a histogram name and a histogram under a counter
// name must fail loudly.
func TestCounterHistogramCollisionPanics(t *testing.T) {
	s := NewStats()
	s.Hist("lat")
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("Counter under a histogram name did not panic")
			} else if !strings.Contains(r.(string), "lat") {
				t.Errorf("panic message %q does not name the stat", r)
			}
		}()
		s.Counter("lat")
	}()

	s2 := NewStats()
	s2.Counter("n")
	defer func() {
		if recover() == nil {
			t.Error("Hist under a counter-handle name did not panic")
		}
	}()
	s2.Hist("n")
}

// TestCounterHandleNoAlloc pins the hot-path property the handles exist
// for: Inc/Add on a resolved handle must not allocate.
func TestCounterHandleNoAlloc(t *testing.T) {
	s := NewStats()
	c := s.Counter("hot")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); allocs != 0 {
		t.Fatalf("handle Inc/Add allocates %v per run", allocs)
	}
}
