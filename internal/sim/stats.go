package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a flat registry of named counters and histograms, mirroring
// gem5's stats files. Components register counters under dotted names
// ("cache.l1d.miss", "nvm.write.drained"). Counters are plain uint64s;
// Kindle simulations are single-goroutine so no synchronization is needed.
//
// Histograms (log2-bucketed distributions) live alongside the counters:
// components fetch one with Hist once at construction and Observe samples
// on hot paths without further map lookups.
type Stats struct {
	counters map[string]uint64
	hists    map[string]*Histogram

	// intervalSnap is the counter baseline of the current interval
	// (DumpInterval); nil until the first interval dump.
	intervalSnap map[string]uint64
	intervals    int
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta uint64) { s.counters[name] += delta }

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.counters[name]++ }

// Set overwrites counter name.
func (s *Stats) Set(name string, v uint64) { s.counters[name] = v }

// Get returns counter name (zero when never touched).
func (s *Stats) Get(name string) uint64 { return s.counters[name] }

// Hist returns the histogram registered under name, creating it on first
// use. Callers cache the pointer; Observe on it never touches the map.
func (s *Stats) Hist(name string) *Histogram {
	h := s.hists[name]
	if h == nil {
		if _, clash := s.counters[name]; clash {
			panic(fmt.Sprintf("sim: stat %q already registered as a counter", name))
		}
		h = &Histogram{name: name}
		s.hists[name] = h
	}
	return h
}

// Histograms returns all registered histograms sorted by name.
func (s *Stats) Histograms() []*Histogram {
	names := make([]string, 0, len(s.hists))
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Histogram, len(names))
	for i, n := range names {
		out[i] = s.hists[n]
	}
	return out
}

// Reset zeroes every counter and histogram but keeps registrations. The
// interval baseline is cleared too.
func (s *Stats) Reset() {
	for k := range s.counters {
		s.counters[k] = 0
	}
	for _, h := range s.hists {
		h.Reset()
	}
	s.intervalSnap = nil
	s.intervals = 0
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, for diffing across a phase.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// DiffFrom returns per-counter deltas since a snapshot taken earlier.
func (s *Stats) DiffFrom(snap map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range s.counters {
		if d := v - snap[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Dump renders all counters and histograms with a given name prefix,
// gem5-stats style.
func (s *Stats) Dump(prefix string) string {
	var b strings.Builder
	s.forEachStat(func(name string, v uint64, fv float64, isFloat bool) {
		if !strings.HasPrefix(name, prefix) {
			return
		}
		if isFloat {
			fmt.Fprintf(&b, "%-*s %12.6f\n", NameColWidth, name, fv)
		} else {
			fmt.Fprintf(&b, "%-*s %12d\n", NameColWidth, name, v)
		}
	})
	return b.String()
}

// forEachStat visits every stat line (counters and expanded histograms)
// in one sorted sequence: a histogram's lines appear at the position of
// its base name.
func (s *Stats) forEachStat(fn func(name string, v uint64, fv float64, isFloat bool)) {
	names := make([]string, 0, len(s.counters)+len(s.hists))
	for k := range s.counters {
		names = append(names, k)
	}
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	prev := ""
	for i, name := range names {
		if i > 0 && name == prev {
			// Hist rejects names with an existing counter, but a counter
			// can still be created under a histogram's name afterwards;
			// rendering would then drop one of them and break the
			// interval-deltas-sum-to-totals invariant, so fail loudly.
			panic(fmt.Sprintf("sim: stat %q registered as both counter and histogram", name))
		}
		prev = name
		if h, ok := s.hists[name]; ok {
			h.ForEachStat(fn)
			continue
		}
		fn(name, s.counters[name], 0, false)
	}
}

// Ratio returns num/den as a float, or 0 when den is 0.
func (s *Stats) Ratio(num, den string) float64 {
	d := s.counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.counters[num]) / float64(d)
}
