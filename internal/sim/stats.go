package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Stats is a flat registry of named counters and histograms, mirroring
// gem5's stats files. Components register counters under dotted names
// ("cache.l1d.miss", "nvm.write.drained"). Counters are plain uint64 cells;
// Kindle simulations are single-goroutine so no synchronization is needed.
//
// Hot paths resolve a *Counter handle once at construction (Counter) and
// bump it without further map lookups; the name-based Inc/Add/Set/Get
// remain for cold paths. Histograms (log2-bucketed distributions) live
// alongside the counters with the same handle pattern (Hist).
type Stats struct {
	counters map[string]*Counter
	hists    map[string]*Histogram

	// index is the immutable registered-stat view republished on every
	// registration (copy-on-write), so concurrent observers — the monitor
	// endpoint — can walk the registry without touching the maps the
	// simulation goroutine may be inserting into. See Registered.
	index atomic.Pointer[StatIndex]

	// intervalSnap is the counter baseline of the current interval
	// (DumpInterval); nil until the first interval dump.
	intervalSnap map[string]uint64
	intervals    int
}

// StatIndex is an immutable snapshot of everything registered in a Stats:
// the counter and histogram handles in name-sorted order. The slices are
// never mutated after publication; the handles themselves stay live (read
// them with Counter.Sample / Histogram.Sample from other goroutines).
type StatIndex struct {
	Counters []*Counter
	Hists    []*Histogram
}

// Registered returns the current registered-stat index. The call is one
// atomic pointer load, safe from any goroutine at any time; registrations
// that race with it appear in a later index. The returned value must be
// treated as read-only.
func (s *Stats) Registered() *StatIndex {
	if idx := s.index.Load(); idx != nil {
		return idx
	}
	return &StatIndex{}
}

// publishIndex rebuilds and republishes the registered-stat index. Called
// on the registration (cold) path only; cost is O(n log n) in the registry
// size, never on a simulation hot path.
func (s *Stats) publishIndex() {
	idx := &StatIndex{
		Counters: make([]*Counter, 0, len(s.counters)),
		Hists:    make([]*Histogram, 0, len(s.hists)),
	}
	for _, c := range s.counters {
		idx.Counters = append(idx.Counters, c)
	}
	for _, h := range s.hists {
		idx.Hists = append(idx.Hists, h)
	}
	sort.Slice(idx.Counters, func(i, j int) bool { return idx.Counters[i].name < idx.Counters[j].name })
	sort.Slice(idx.Hists, func(i, j int) bool { return idx.Hists[i].name < idx.Hists[j].name })
	s.index.Store(idx)
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the handle registered under name, creating it on first
// use. Callers cache the handle; Inc/Add on it never touch the map. The
// handle and the name-based methods alias the same cell.
func (s *Stats) Counter(name string) *Counter {
	c := s.counters[name]
	if c == nil {
		if _, clash := s.hists[name]; clash {
			panic(fmt.Sprintf("sim: stat %q already registered as a histogram", name))
		}
		c = &Counter{name: name}
		s.counters[name] = c
		s.publishIndex()
	}
	return c
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta uint64) { s.Counter(name).v += delta }

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Counter(name).v++ }

// Set overwrites counter name.
func (s *Stats) Set(name string, v uint64) { s.Counter(name).v = v }

// Get returns counter name (zero when never touched; never registers).
func (s *Stats) Get(name string) uint64 {
	if c := s.counters[name]; c != nil {
		return c.v
	}
	return 0
}

// Hist returns the histogram registered under name, creating it on first
// use. Callers cache the pointer; Observe on it never touches the map.
func (s *Stats) Hist(name string) *Histogram {
	h := s.hists[name]
	if h == nil {
		if _, clash := s.counters[name]; clash {
			panic(fmt.Sprintf("sim: stat %q already registered as a counter", name))
		}
		h = &Histogram{name: name}
		s.hists[name] = h
		s.publishIndex()
	}
	return h
}

// Histograms returns all registered histograms sorted by name.
func (s *Stats) Histograms() []*Histogram {
	names := make([]string, 0, len(s.hists))
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Histogram, len(names))
	for i, n := range names {
		out[i] = s.hists[n]
	}
	return out
}

// Reset zeroes every counter and histogram but keeps registrations (handles
// stay valid). The interval baseline is cleared too.
func (s *Stats) Reset() {
	for _, c := range s.counters {
		c.v = 0
	}
	for _, h := range s.hists {
		h.Reset()
	}
	s.intervalSnap = nil
	s.intervals = 0
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, for diffing across a phase.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, c := range s.counters {
		out[k] = c.v
	}
	return out
}

// DiffFrom returns per-counter deltas since a snapshot taken earlier.
func (s *Stats) DiffFrom(snap map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, c := range s.counters {
		if d := c.v - snap[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Dump renders all counters and histograms with a given name prefix,
// gem5-stats style.
func (s *Stats) Dump(prefix string) string {
	var b strings.Builder
	s.forEachStat(func(name string, v uint64, fv float64, isFloat bool) {
		if !strings.HasPrefix(name, prefix) {
			return
		}
		if isFloat {
			fmt.Fprintf(&b, "%-*s %12.6f\n", NameColWidth, name, fv)
		} else {
			fmt.Fprintf(&b, "%-*s %12d\n", NameColWidth, name, v)
		}
	})
	return b.String()
}

// forEachStat visits every stat line (counters and expanded histograms)
// in one sorted sequence: a histogram's lines appear at the position of
// its base name.
func (s *Stats) forEachStat(fn func(name string, v uint64, fv float64, isFloat bool)) {
	names := make([]string, 0, len(s.counters)+len(s.hists))
	for k := range s.counters {
		names = append(names, k)
	}
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	prev := ""
	for i, name := range names {
		if i > 0 && name == prev {
			// Counter and Hist both reject each other's names at
			// registration, so this is unreachable unless the maps were
			// mutated out of band; rendering a duplicate would drop a stat
			// and break the interval-deltas-sum-to-totals invariant, so
			// fail loudly anyway.
			panic(fmt.Sprintf("sim: stat %q registered as both counter and histogram", name))
		}
		prev = name
		if h, ok := s.hists[name]; ok {
			h.ForEachStat(fn)
			continue
		}
		fn(name, s.counters[name].v, 0, false)
	}
}

// Ratio returns num/den as a float, or 0 when den is 0.
func (s *Stats) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}
