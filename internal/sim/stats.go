package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a flat registry of named counters, mirroring gem5's stats files.
// Components register counters under dotted names ("cache.l1d.miss",
// "nvm.write.drained"). Counters are plain uint64s; Kindle simulations are
// single-goroutine so no synchronization is needed.
type Stats struct {
	counters map[string]uint64
}

// NewStats returns an empty registry.
func NewStats() *Stats { return &Stats{counters: make(map[string]uint64)} }

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta uint64) { s.counters[name] += delta }

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.counters[name]++ }

// Set overwrites counter name.
func (s *Stats) Set(name string, v uint64) { s.counters[name] = v }

// Get returns counter name (zero when never touched).
func (s *Stats) Get(name string) uint64 { return s.counters[name] }

// Reset zeroes every counter but keeps registrations.
func (s *Stats) Reset() {
	for k := range s.counters {
		s.counters[k] = 0
	}
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, for diffing across a phase.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// DiffFrom returns per-counter deltas since a snapshot taken earlier.
func (s *Stats) DiffFrom(snap map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range s.counters {
		if d := v - snap[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Dump renders all counters with a given name prefix, gem5-stats style.
func (s *Stats) Dump(prefix string) string {
	var b strings.Builder
	for _, name := range s.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		fmt.Fprintf(&b, "%-48s %12d\n", name, s.counters[name])
	}
	return b.String()
}

// Ratio returns num/den as a float, or 0 when den is 0.
func (s *Stats) Ratio(num, den string) float64 {
	d := s.counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.counters[num]) / float64(d)
}
