package sim

import "sort"

// This file holds the state-capture half of the simulation kernel: plain,
// serializable mirrors of the clock/queue/stats/rng internals that
// machine.Snapshot packs up so a forked machine can resume byte-identical
// to the original. Every exported State type here is gob-encodable.

// State returns the RNG's internal state for snapshotting.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the RNG's internal state with one captured from a
// live generator (in place, so components holding the pointer follow).
func (r *RNG) SetState(state uint64) {
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	r.state = state
}

// PendingEvent describes one queued event for snapshotting: its deadline
// and registered name, in firing order. Handlers are closures and cannot
// be serialized; restore re-arms them by name (machine.RearmEvents).
type PendingEvent struct {
	When Cycles
	Name string
}

// PendingEvents returns the queue's pending events sorted by firing order
// (deadline, then insertion order). Re-scheduling events in exactly this
// order on a fresh queue reproduces the original's FIFO tie-breaking.
func (q *Queue) PendingEvents() []PendingEvent {
	evs := make([]*Event, len(q.h))
	copy(evs, q.h)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].When != evs[j].When {
			return evs[i].When < evs[j].When
		}
		return evs[i].seq < evs[j].seq
	})
	out := make([]PendingEvent, len(evs))
	for i, e := range evs {
		out[i] = PendingEvent{When: e.When, Name: e.Name}
	}
	return out
}

// CounterState is one named counter value.
type CounterState struct {
	Name  string
	Value uint64
}

// HistogramState is a full histogram mirror.
type HistogramState struct {
	Name                 string
	Count, Sum, Min, Max uint64
	Buckets              [65]uint64
}

// StatsState captures a whole Stats registry: every counter and histogram
// (name-sorted, so serialized snapshots are deterministic) plus the
// interval-dump baseline.
type StatsState struct {
	Counters     []CounterState
	Hists        []HistogramState
	IntervalSnap []CounterState // interval baseline, empty until the first DumpInterval
	Intervals    int
}

// CaptureState copies the registry's current values.
func (s *Stats) CaptureState() StatsState {
	var st StatsState
	st.Counters = make([]CounterState, 0, len(s.counters))
	for name, c := range s.counters {
		st.Counters = append(st.Counters, CounterState{Name: name, Value: c.v})
	}
	sort.Slice(st.Counters, func(i, j int) bool { return st.Counters[i].Name < st.Counters[j].Name })
	st.Hists = make([]HistogramState, 0, len(s.hists))
	for name, h := range s.hists {
		st.Hists = append(st.Hists, HistogramState{
			Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.buckets,
		})
	}
	sort.Slice(st.Hists, func(i, j int) bool { return st.Hists[i].Name < st.Hists[j].Name })
	if s.intervalSnap != nil {
		st.IntervalSnap = make([]CounterState, 0, len(s.intervalSnap))
		for name, v := range s.intervalSnap {
			st.IntervalSnap = append(st.IntervalSnap, CounterState{Name: name, Value: v})
		}
		sort.Slice(st.IntervalSnap, func(i, j int) bool { return st.IntervalSnap[i].Name < st.IntervalSnap[j].Name })
	}
	st.Intervals = s.intervals
	return st
}

// RestoreState overwrites the registry with a captured state. Existing
// registrations are mutated in place — components holding pre-resolved
// Counter/Histogram handles keep observing the restored values — and
// stats present only in the capture are registered fresh. Dump output is
// name-sorted, so registration-order differences between the capturing
// and restoring machines are invisible.
func (s *Stats) RestoreState(st StatsState) {
	for _, c := range s.counters {
		c.v = 0
	}
	for _, h := range s.hists {
		h.Reset()
	}
	for _, cs := range st.Counters {
		s.Counter(cs.Name).v = cs.Value
	}
	for _, hs := range st.Hists {
		h := s.Hist(hs.Name)
		h.count = hs.Count
		h.sum = hs.Sum
		h.min = hs.Min
		h.max = hs.Max
		h.buckets = hs.Buckets
	}
	s.intervalSnap = nil
	if st.IntervalSnap != nil {
		s.intervalSnap = make(map[string]uint64, len(st.IntervalSnap))
		for _, cs := range st.IntervalSnap {
			s.intervalSnap[cs.Name] = cs.Value
		}
	}
	s.intervals = st.Intervals
}
