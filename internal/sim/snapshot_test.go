package sim

import (
	"strings"
	"sync"
	"testing"
)

// TestRegisteredIndexSorted: the published index lists every registered
// counter and histogram in name order, and registrations republish it.
func TestRegisteredIndexSorted(t *testing.T) {
	s := NewStats()
	if idx := s.Registered(); len(idx.Counters) != 0 || len(idx.Hists) != 0 {
		t.Fatalf("fresh stats publish a non-empty index: %+v", idx)
	}
	s.Counter("cpu.load")
	s.Counter("cache.l1d.miss")
	s.Hist("mem.lat")
	s.Counter("cpu.store")
	idx := s.Registered()
	var names []string
	for _, c := range idx.Counters {
		names = append(names, c.Name())
	}
	if got, want := strings.Join(names, ","), "cache.l1d.miss,cpu.load,cpu.store"; got != want {
		t.Fatalf("counter index = %s, want %s", got, want)
	}
	if len(idx.Hists) != 1 || idx.Hists[0].Name() != "mem.lat" {
		t.Fatalf("hist index = %+v", idx.Hists)
	}
	// A later registration must not mutate the already-returned index.
	s.Counter("aaa.first")
	if len(idx.Counters) != 3 {
		t.Fatalf("published index mutated in place: %d counters", len(idx.Counters))
	}
	if got := len(s.Registered().Counters); got != 4 {
		t.Fatalf("republished index has %d counters, want 4", got)
	}
}

// TestRegisteredIndexConcurrentReaders: observers may load the index and
// sample handles while the registering goroutine keeps adding stats.
// (Values sampled here are only written before the readers start or by
// Sample itself, so the test is race-detector clean; live value scrapes
// are the documented benign race.)
func TestRegisteredIndexConcurrentReaders(t *testing.T) {
	s := NewStats()
	s.Counter("seed").Add(7)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := s.Registered()
				for _, c := range idx.Counters {
					c.Sample()
				}
				for _, h := range idx.Hists {
					h.Sample()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s.Counter(strings.Repeat("c", 1+i%8) + string(rune('a'+i%26)))
		s.Hist("h" + string(rune('a'+i%26)))
	}
	close(stop)
	wg.Wait()
	if got := s.Counter("seed").Sample(); got != 7 {
		t.Fatalf("seed sample = %d, want 7", got)
	}
}

// TestCounterSampleMatchesValue: Sample and Value alias the same cell.
func TestCounterSampleMatchesValue(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	c.Add(41)
	c.Inc()
	if c.Sample() != 42 || c.Value() != 42 {
		t.Fatalf("sample %d / value %d, want 42/42", c.Sample(), c.Value())
	}
}

// TestHistSample: the sampled summary and buckets match the live
// histogram, and an empty histogram samples as zeroes.
func TestHistSample(t *testing.T) {
	s := NewStats()
	h := s.Hist("lat")
	empty := h.Sample()
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 || len(empty.Buckets()) != 0 {
		t.Fatalf("empty histogram sample = %+v", empty)
	}
	for _, v := range []uint64{0, 1, 2, 3, 900, 17} {
		h.Observe(v)
	}
	hs := h.Sample()
	if hs.Count != h.Count() || hs.Sum != h.Sum() || hs.Min != h.Min() || hs.Max != h.Max() {
		t.Fatalf("sample summary %+v disagrees with live histogram (count %d sum %d min %d max %d)",
			hs, h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if hs.Mean() != h.Mean() {
		t.Fatalf("sample mean %v, live mean %v", hs.Mean(), h.Mean())
	}
	live, snap := h.Buckets(), hs.Buckets()
	if len(live) != len(snap) {
		t.Fatalf("bucket count %d vs %d", len(snap), len(live))
	}
	for i := range live {
		if live[i] != snap[i] {
			t.Fatalf("bucket %d: sample %+v, live %+v", i, snap[i], live[i])
		}
	}
}
