package sim

// Stats merging: sharded replay runs one independent machine (and so one
// Stats) per trace segment, then folds every shard's registry into a single
// one. All simulation stats are either sums (counters, histogram counts and
// buckets) or order-free extrema (histogram min/max), so the merge is
// commutative and associative — but ShardedReplay still merges in segment
// order, which keeps the operation trivially deterministic without relying
// on that property.

// MergeFrom folds every counter and histogram of other into s, registering
// names s has not seen. Counters add; histograms merge bucket-wise. other
// is not modified. Counter-vs-histogram name clashes panic exactly as they
// do at registration time.
func (s *Stats) MergeFrom(other *Stats) {
	for name, oc := range other.counters {
		s.Counter(name).v += oc.v
	}
	for name, oh := range other.hists {
		s.Hist(name).MergeFrom(oh)
	}
}

// MergeFrom folds histogram o into h: counts, sums and buckets add, the
// min/max range widens to cover both. o is not modified.
//
// A zero-sample side carries no extrema: its min/max fields are the zero
// value, not observations. Merging an empty o must be a no-op (early
// return — otherwise its min==0 would clamp h's minimum), and merging into
// an empty h must adopt o's minimum unconditionally (the h.count == 0 arm
// — h.min == 0 is "no samples", not "observed 0"). Max needs no guard:
// maxima only widen upward and 0 never wins against a real observation.
func (h *Histogram) MergeFrom(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}
