package sim

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(1234)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1234 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 1234 (clamped to extrema)", q, got)
		}
	}
}

func TestQuantileBucketBound(t *testing.T) {
	var h Histogram
	// 90 samples in bucket [1024, 2047], 10 in [65536, 131071].
	for i := 0; i < 90; i++ {
		h.Observe(1500)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000)
	}
	if got := h.Quantile(0.5); got != 2047 {
		t.Fatalf("p50 = %d, want the 2047 bucket edge", got)
	}
	if got := h.Quantile(0.9); got != 2047 {
		t.Fatalf("p90 = %d, want the 2047 bucket edge (cumulative 90/100)", got)
	}
	// p95 falls in the tail bucket; the bound clamps to the observed max.
	if got := h.Quantile(0.95); got != 100_000 {
		t.Fatalf("p95 = %d, want max-clamped 100000", got)
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("p100 = %d, want max %d", got, h.Max())
	}
}

func TestQuantileClampsArgument(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %d, want Quantile(0) = %d", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %d, want Quantile(1) = %d", got, h.Quantile(1))
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		h.Observe(rng.Uint64n(1 << 20))
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %d after %d", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %d, want max %d", h.Quantile(1), h.Max())
	}
	if h.Quantile(0) < h.Min() {
		t.Fatalf("Quantile(0) = %d below min %d", h.Quantile(0), h.Min())
	}
}

func TestQuantileTopBucketEdge(t *testing.T) {
	var h Histogram
	// The top bucket's upper edge is MaxUint64; the bound must clamp to
	// the observed max, not overflow.
	h.Observe(math.MaxUint64)
	if got := h.Quantile(0.99); got != math.MaxUint64 {
		t.Fatalf("top-bucket quantile = %d, want MaxUint64", got)
	}
}
