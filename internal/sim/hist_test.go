package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	s := NewStats()
	h := s.Hist("mem.dram.read_lat")
	if s.Hist("mem.dram.read_lat") != h {
		t.Fatal("Hist did not return the registered histogram")
	}
	for _, v := range []uint64{0, 1, 5, 5, 9, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1020 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Mean() != 170 {
		t.Fatalf("mean=%v", h.Mean())
	}
	// Buckets: 0 → bucket [0,0]; 1 → [1,1]; 5,5 → [4,7]; 9 → [8,15];
	// 1000 → [512,1023].
	bks := h.Buckets()
	want := []Bucket{
		{0, 0, 1}, {1, 1, 1}, {4, 7, 2}, {8, 15, 1}, {512, 1023, 1},
	}
	if len(bks) != len(want) {
		t.Fatalf("buckets = %v", bks)
	}
	for i, b := range bks {
		if b != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, b, want[i])
		}
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	s := NewStats()
	h := s.Hist("x")
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(42)
	s.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Stats.Reset did not reset histograms")
	}
	if h.Name() != "x" {
		t.Fatal("Reset lost the name")
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	s := NewStats()
	h := s.Hist("lat")
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(123) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run", allocs)
	}
}

func TestDumpIncludesHistograms(t *testing.T) {
	s := NewStats()
	s.Set("cache.l1.hit", 3)
	s.Hist("cache.hit_lat").Observe(4)
	out := s.Dump("cache.")
	for _, want := range []string{"cache.l1.hit", "cache.hit_lat::samples", "cache.hit_lat::mean", "cache.hit_lat::4-7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
}

// TestStatsFileWidthRoundTrip pins the WriteStatsFile↔ParseStatsFile
// symmetry, including a counter name wider than the pad column.
func TestStatsFileWidthRoundTrip(t *testing.T) {
	s := NewStats()
	wide := "persist.checkpoint.v2p_verification_pass_cycles_total" // > NameColWidth chars
	if len(wide) <= NameColWidth {
		t.Fatalf("test name no longer wider than pad (%d <= %d)", len(wide), NameColWidth)
	}
	s.Set(wide, 987654321)
	s.Set("a", 1)
	var buf bytes.Buffer
	if err := s.WriteStatsFile(&buf); err != nil {
		t.Fatal(err)
	}
	// Both Dump and WriteStatsFile must pad to the same column.
	dump := s.Dump("a")
	if idx := strings.Index(dump, "1"); idx < NameColWidth {
		t.Fatalf("Dump pads to %d, want >= %d", idx, NameColWidth)
	}
	fileLine := strings.SplitN(buf.String(), "\n", 3)[1]
	if !strings.HasPrefix(fileLine, "a ") {
		t.Fatalf("unexpected first stat line %q", fileLine)
	}
	if len(fileLine) < NameColWidth {
		t.Fatalf("stats-file line shorter than pad: %q", fileLine)
	}
	got, err := ParseStatsFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[wide] != 987654321 || got["a"] != 1 {
		t.Fatalf("round trip lost values: %v", got)
	}
}

func TestHistogramStatsFileRoundTrip(t *testing.T) {
	s := NewStats()
	s.Set("nvm.write", 7)
	h := s.Hist("mem.nvm.read_lat")
	for _, v := range []uint64{450, 460, 470, 9000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := s.WriteStatsFile(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseStatsFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got["mem.nvm.read_lat::samples"] != 4 {
		t.Fatalf("samples = %d", got["mem.nvm.read_lat::samples"])
	}
	if got["mem.nvm.read_lat::min_value"] != 450 || got["mem.nvm.read_lat::max_value"] != 9000 {
		t.Fatalf("min/max lost: %v", got)
	}
	if got["mem.nvm.read_lat::256-511"] != 3 || got["mem.nvm.read_lat::8192-16383"] != 1 {
		t.Fatalf("buckets lost: %v", got)
	}
	if _, ok := got["mem.nvm.read_lat::mean"]; ok {
		t.Fatal("float mean parsed as integer counter")
	}
	if got["nvm.write"] != 7 {
		t.Fatal("plain counter lost")
	}
}

// TestStatsFileGolden pins the exact gem5 rendering (counters + histogram
// lines) against a checked-in golden file so paper-artifact parser
// compatibility cannot drift silently. Regenerate with:
//
//	go test ./internal/sim -run TestStatsFileGolden -update-golden
func TestStatsFileGolden(t *testing.T) {
	s := NewStats()
	s.Set("cache.l1.hit", 1048576)
	s.Set("cache.l1.miss", 2048)
	s.Set("machine.crashes", 1)
	s.Set("persist.checkpoints", 12)
	s.Set("persist.checkpoint.v2p_verification_pass_cycles_total", 98765432109)
	h := s.Hist("mem.nvm.write_lat")
	for _, v := range []uint64{0, 10, 10, 11, 1500, 1500, 1501, 40000} {
		h.Observe(v)
	}
	o := s.Hist("nvm.wbuf_occupancy")
	for _, v := range []uint64{0, 1, 2, 3, 47, 48} {
		o.Observe(v)
	}

	var buf bytes.Buffer
	if err := s.WriteStatsFile(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stats_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stats file drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

func TestDumpIntervalDeltasSumToTotals(t *testing.T) {
	s := NewStats()
	var out bytes.Buffer

	s.Add("nvm.write", 10)
	s.Add("cache.l1.hit", 100)
	if err := s.DumpInterval(&out); err != nil {
		t.Fatal(err)
	}
	s.Add("nvm.write", 5)
	if err := s.DumpInterval(&out); err != nil {
		t.Fatal(err)
	}
	s.Add("nvm.write", 7)
	s.Add("dram.read", 3) // counter born in the last interval
	if err := s.DumpInterval(&out); err != nil {
		t.Fatal(err)
	}

	blocks, err := ParseStatsBlocks(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	for i, b := range blocks {
		if b["interval.index"] != uint64(i+1) {
			t.Fatalf("block %d index = %d", i, b["interval.index"])
		}
	}
	// Zero deltas are present so the table is rectangular.
	if v, ok := blocks[1]["cache.l1.hit"]; !ok || v != 0 {
		t.Fatalf("block 1 cache.l1.hit = %d, present=%v", v, ok)
	}
	sums := map[string]uint64{}
	for _, b := range blocks {
		for k, v := range b {
			sums[k] += v
		}
	}
	for _, name := range []string{"nvm.write", "cache.l1.hit", "dram.read"} {
		if sums[name] != s.Get(name) {
			t.Fatalf("%s: interval deltas sum to %d, total %d", name, sums[name], s.Get(name))
		}
	}
	if s.IntervalCount() != 3 {
		t.Fatalf("IntervalCount = %d", s.IntervalCount())
	}
}

func TestParseStatsBlocksSingleBlockMatchesParseStatsFile(t *testing.T) {
	s := NewStats()
	s.Set("a.b", 4)
	var buf bytes.Buffer
	if err := s.WriteStatsFile(&buf); err != nil {
		t.Fatal(err)
	}
	blocks, err := ParseStatsBlocks(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0]["a.b"] != 4 {
		t.Fatalf("blocks = %v", blocks)
	}
}
