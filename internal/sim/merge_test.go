package sim

import "testing"

func TestStatsMergeFrom(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Add("x", 3)
	a.Add("only.a", 1)
	b.Add("x", 4)
	b.Add("only.b", 2)
	a.Hist("lat").Observe(1)
	a.Hist("lat").Observe(100)
	b.Hist("lat").Observe(7)
	b.Hist("only.b.hist").Observe(5)

	a.MergeFrom(b)
	if got := a.Get("x"); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	if got := a.Get("only.a"); got != 1 {
		t.Fatalf("only.a = %d", got)
	}
	if got := a.Get("only.b"); got != 2 {
		t.Fatalf("only.b = %d", got)
	}
	h := a.Hist("lat")
	if h.Count() != 3 || h.Sum() != 108 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("lat = count %d sum %d min %d max %d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if a.Hist("only.b.hist").Count() != 1 {
		t.Fatal("only.b.hist not merged")
	}
	// b must be untouched.
	if b.Get("x") != 4 || b.Hist("lat").Count() != 1 {
		t.Fatal("merge mutated the source registry")
	}
}

// TestMergeOrderIrrelevant pins commutativity: folding registries in any
// order produces identical dumps (ShardedReplay merges in segment order
// anyway, but the property makes the determinism unconditional).
func TestMergeOrderIrrelevant(t *testing.T) {
	mk := func(seed uint64) *Stats {
		s := NewStats()
		s.Add("c", seed)
		h := s.Hist("h")
		h.Observe(seed)
		h.Observe(seed * 31)
		return s
	}
	parts := []*Stats{mk(1), mk(9), mk(200), mk(4)}
	fwd, rev := NewStats(), NewStats()
	for _, p := range parts {
		fwd.MergeFrom(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.MergeFrom(parts[i])
	}
	if fwd.Dump("") != rev.Dump("") {
		t.Fatal("merge order changed the dump")
	}
}

func TestMergeEmptyHistogram(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Hist("h").Observe(5)
	b.Hist("h") // registered, never observed
	before := a.Dump("")
	a.MergeFrom(b)
	if a.Dump("") != before {
		t.Fatal("merging an empty histogram changed the stats")
	}
	// And the other direction: empty target adopts the source wholesale.
	c := NewStats()
	c.MergeFrom(a)
	if c.Dump("") != a.Dump("") {
		t.Fatal("merge into empty registry diverged")
	}
}
