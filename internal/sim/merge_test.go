package sim

import "testing"

func TestStatsMergeFrom(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Add("x", 3)
	a.Add("only.a", 1)
	b.Add("x", 4)
	b.Add("only.b", 2)
	a.Hist("lat").Observe(1)
	a.Hist("lat").Observe(100)
	b.Hist("lat").Observe(7)
	b.Hist("only.b.hist").Observe(5)

	a.MergeFrom(b)
	if got := a.Get("x"); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	if got := a.Get("only.a"); got != 1 {
		t.Fatalf("only.a = %d", got)
	}
	if got := a.Get("only.b"); got != 2 {
		t.Fatalf("only.b = %d", got)
	}
	h := a.Hist("lat")
	if h.Count() != 3 || h.Sum() != 108 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("lat = count %d sum %d min %d max %d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if a.Hist("only.b.hist").Count() != 1 {
		t.Fatal("only.b.hist not merged")
	}
	// b must be untouched.
	if b.Get("x") != 4 || b.Hist("lat").Count() != 1 {
		t.Fatal("merge mutated the source registry")
	}
}

// TestMergeOrderIrrelevant pins commutativity: folding registries in any
// order produces identical dumps (ShardedReplay merges in segment order
// anyway, but the property makes the determinism unconditional).
func TestMergeOrderIrrelevant(t *testing.T) {
	mk := func(seed uint64) *Stats {
		s := NewStats()
		s.Add("c", seed)
		h := s.Hist("h")
		h.Observe(seed)
		h.Observe(seed * 31)
		return s
	}
	parts := []*Stats{mk(1), mk(9), mk(200), mk(4)}
	fwd, rev := NewStats(), NewStats()
	for _, p := range parts {
		fwd.MergeFrom(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.MergeFrom(parts[i])
	}
	if fwd.Dump("") != rev.Dump("") {
		t.Fatal("merge order changed the dump")
	}
}

// TestMergeEmptyHistogramMinMax pins the extrema folding when one side has
// zero samples, in both orders. An empty segment's histogram holds min=0 as
// "no samples", not as an observation — a merge that treated it as one
// would clamp the merged minimum to 0 (empty-into-nonempty) or lose the
// real minimum entirely (nonempty-into-empty).
func TestMergeEmptyHistogramMinMax(t *testing.T) {
	mkFull := func() *Histogram {
		s := NewStats()
		h := s.Hist("h")
		h.Observe(5)
		h.Observe(900)
		return h
	}
	mkEmpty := func() *Histogram {
		return NewStats().Hist("h") // registered, never observed
	}

	// Empty into nonempty: a no-op, min must stay 5 (not clamp to 0).
	full := mkFull()
	full.MergeFrom(mkEmpty())
	if full.Count() != 2 || full.Min() != 5 || full.Max() != 900 {
		t.Fatalf("empty-into-nonempty: count %d min %d max %d, want 2/5/900",
			full.Count(), full.Min(), full.Max())
	}

	// Nonempty into empty: adopt the source extrema wholesale.
	empty := mkEmpty()
	empty.MergeFrom(mkFull())
	if empty.Count() != 2 || empty.Min() != 5 || empty.Max() != 900 {
		t.Fatalf("nonempty-into-empty: count %d min %d max %d, want 2/5/900",
			empty.Count(), empty.Min(), empty.Max())
	}

	// Both orders at the registry level must render identically — including
	// the ::min_value/::max_value gauge lines the dump derives from extrema.
	a, b := NewStats(), NewStats()
	a.Hist("h").Observe(5)
	a.Hist("h").Observe(900)
	b.Hist("h") // empty side
	ab, ba := NewStats(), NewStats()
	ab.MergeFrom(a)
	ab.MergeFrom(b)
	ba.MergeFrom(b)
	ba.MergeFrom(a)
	if ab.Dump("") != ba.Dump("") {
		t.Fatalf("merge order with an empty side changed the dump:\n--- a,b ---\n%s\n--- b,a ---\n%s",
			ab.Dump(""), ba.Dump(""))
	}
	// Two empty sides merged stay empty (min/max stay the no-sample zero).
	e := mkEmpty()
	e.MergeFrom(mkEmpty())
	if e.Count() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatalf("empty+empty: count %d min %d max %d, want zeros", e.Count(), e.Min(), e.Max())
	}
}

func TestMergeEmptyHistogram(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Hist("h").Observe(5)
	b.Hist("h") // registered, never observed
	before := a.Dump("")
	a.MergeFrom(b)
	if a.Dump("") != before {
		t.Fatal("merging an empty histogram changed the stats")
	}
	// And the other direction: empty target adopts the source wholesale.
	c := NewStats()
	c.MergeFrom(a)
	if c.Dump("") != a.Dump("") {
		t.Fatal("merge into empty registry diverged")
	}
}
