package sim

import "math"

// RNG is a small, fast, deterministic random source (xorshift64*). Kindle
// needs reproducible runs — the same seed must produce the same trace, the
// same migrations and the same cycle counts — so we avoid math/rand's global
// state and version-dependent streams.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. A zero seed is remapped to a fixed non-zero
// constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics when n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf draws ranks in [0, n) following a Zipfian distribution with exponent
// theta, the access skew used by YCSB workloads. It uses the classic
// Gray et al. quick-zipf construction with precomputed constants.
type Zipf struct {
	rng   *RNG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf builds a Zipfian sampler over [0, n) with exponent theta
// (YCSB default 0.99).
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("sim: NewZipf with zero n")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next returns the next sample in [0, n); rank 0 is the hottest item.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
