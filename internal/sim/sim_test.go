package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCyclesConversions(t *testing.T) {
	if got := FromNanos(1); got != 3 {
		t.Fatalf("FromNanos(1) = %d, want 3", got)
	}
	if got := FromNanos(0); got != 0 {
		t.Fatalf("FromNanos(0) = %d, want 0", got)
	}
	if got := FromNanos(-5); got != 0 {
		t.Fatalf("FromNanos(-5) = %d, want 0", got)
	}
	if got := FromDuration(time.Millisecond); got != 3_000_000 {
		t.Fatalf("FromDuration(1ms) = %d, want 3e6", got)
	}
	c := FromDuration(2 * time.Millisecond)
	if c.Millis() != 2 {
		t.Fatalf("Millis = %v, want 2", c.Millis())
	}
	if c.Duration() != 2*time.Millisecond {
		t.Fatalf("Duration = %v, want 2ms", c.Duration())
	}
}

func TestCyclesRoundTripProperty(t *testing.T) {
	f := func(ns uint32) bool {
		c := FromNanos(float64(ns))
		// Round-trip through nanoseconds must be exact for integral ns.
		return c.Nanos() == float64(ns)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesString(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{FromNanos(10), "10ns"},
		{FromDuration(2 * time.Microsecond), "2.000µs"},
		{FromDuration(3 * time.Millisecond), "3.000ms"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(100)
	c.AdvanceTo(150)
	if c.Now() != 150 {
		t.Fatalf("Now = %d, want 150", c.Now())
	}
	c.AdvanceTo(150) // same-time is fine
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	c := NewClock()
	c.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	c.AdvanceTo(5)
}

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var order []string
	q.Schedule(30, "c", func(Cycles) { order = append(order, "c") })
	q.Schedule(10, "a", func(Cycles) { order = append(order, "a") })
	q.Schedule(20, "b", func(Cycles) { order = append(order, "b") })
	n := q.RunDue(25)
	if n != 2 || len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("RunDue(25): fired %d, order %v", n, order)
	}
	q.RunDue(30)
	if len(order) != 3 || order[2] != "c" {
		t.Fatalf("final order %v", order)
	}
}

func TestQueueFIFOAtSameDeadline(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, "e", func(Cycles) { order = append(order, i) })
	}
	q.RunDue(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal deadline fired out of order: %v", order)
		}
	}
}

func TestQueueRescheduleDuringRun(t *testing.T) {
	q := NewQueue()
	count := 0
	var tick func(now Cycles)
	tick = func(now Cycles) {
		count++
		if count < 3 {
			q.Schedule(now, "again", tick) // immediately due again
		}
	}
	q.Schedule(1, "tick", tick)
	q.RunDue(1)
	if count != 3 {
		t.Fatalf("chained same-deadline events: count=%d, want 3", count)
	}
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	fired := false
	e := q.Schedule(10, "x", func(Cycles) { fired = true })
	q.Cancel(e)
	q.Cancel(e) // double-cancel is a no-op
	q.RunDue(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after cancel: %d", q.Len())
	}
}

func TestQueueCancelMiddle(t *testing.T) {
	q := NewQueue()
	var got []string
	a := q.Schedule(1, "a", func(Cycles) { got = append(got, "a") })
	b := q.Schedule(2, "b", func(Cycles) { got = append(got, "b") })
	c := q.Schedule(3, "c", func(Cycles) { got = append(got, "c") })
	_ = a
	q.Cancel(b)
	q.RunDue(10)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after middle cancel: %v", got)
	}
	_ = c
}

func TestQueueNextDeadlineAndDrain(t *testing.T) {
	q := NewQueue()
	if _, ok := q.NextDeadline(); ok {
		t.Fatal("empty queue reported a deadline")
	}
	q.Schedule(42, "x", func(Cycles) {})
	if when, ok := q.NextDeadline(); !ok || when != 42 {
		t.Fatalf("NextDeadline = %d,%v", when, ok)
	}
	q.Drain()
	if q.Len() != 0 {
		t.Fatal("Drain left events")
	}
}

func TestQueueNilHandlerPanics(t *testing.T) {
	q := NewQueue()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	q.Schedule(1, "bad", nil)
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	s.Inc("a.hits")
	s.Add("a.hits", 4)
	s.Set("a.total", 10)
	if s.Get("a.hits") != 5 || s.Get("a.total") != 10 {
		t.Fatalf("counters wrong: hits=%d total=%d", s.Get("a.hits"), s.Get("a.total"))
	}
	if r := s.Ratio("a.hits", "a.total"); r != 0.5 {
		t.Fatalf("Ratio = %v, want 0.5", r)
	}
	if r := s.Ratio("a.hits", "missing"); r != 0 {
		t.Fatalf("Ratio with zero denominator = %v, want 0", r)
	}
}

func TestStatsSnapshotDiff(t *testing.T) {
	s := NewStats()
	s.Add("x", 3)
	snap := s.Snapshot()
	s.Add("x", 7)
	s.Add("y", 1)
	d := s.DiffFrom(snap)
	if d["x"] != 7 || d["y"] != 1 {
		t.Fatalf("diff = %v", d)
	}
	if len(d) != 2 {
		t.Fatalf("diff has unchanged entries: %v", d)
	}
}

func TestStatsDumpAndNames(t *testing.T) {
	s := NewStats()
	s.Inc("b.z")
	s.Inc("a.x")
	s.Inc("a.y")
	names := s.Names()
	if len(names) != 3 || names[0] != "a.x" || names[2] != "b.z" {
		t.Fatalf("Names = %v", names)
	}
	dump := s.Dump("a.")
	if dump == "" {
		t.Fatal("empty dump")
	}
	s.Reset()
	if s.Get("a.x") != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(42)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be by far the hottest and the top-10 ranks must carry a
	// large share — the defining property YCSB relies on.
	top := 0
	for i := uint64(0); i < 10; i++ {
		top += counts[i]
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("zipf not skewed: c0=%d c500=%d", counts[0], counts[500])
	}
	if float64(top)/draws < 0.30 {
		t.Fatalf("top-10 share too small: %v", float64(top)/draws)
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(NewRNG(1), 1<<20, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func BenchmarkEventQueue(b *testing.B) {
	q := NewQueue()
	for i := 0; i < b.N; i++ {
		q.Schedule(Cycles(i), "e", func(Cycles) {})
	}
	q.RunDue(Cycles(b.N))
}

func TestStatsFileRoundTrip(t *testing.T) {
	s := NewStats()
	s.Set("cache.l1.hit", 12345)
	s.Set("nvm.write", 67)
	s.Set("persist.checkpoints", 8)
	var buf bytes.Buffer
	if err := s.WriteStatsFile(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Begin Simulation Statistics") {
		t.Fatal("missing gem5 header")
	}
	got, err := ParseStatsFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]uint64{"cache.l1.hit": 12345, "nvm.write": 67, "persist.checkpoints": 8} {
		if got[k] != v {
			t.Fatalf("%s = %d, want %d", k, got[k], v)
		}
	}
}

func TestParseStatsFileSkipsNonInteger(t *testing.T) {
	in := `---------- Begin Simulation Statistics ----------
sim_seconds                                  0.001025                       # Number of seconds simulated
sim_ticks                                  1024768500                       # Number of ticks simulated
host_mem_usage                                 673824                       # Number of bytes of host memory used
---------- End Simulation Statistics   ----------
`
	got, err := ParseStatsFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["sim_ticks"] != 1024768500 || got["host_mem_usage"] != 673824 {
		t.Fatalf("parsed %v", got)
	}
	if _, ok := got["sim_seconds"]; ok {
		t.Fatal("non-integer stat not skipped")
	}
}

// TestParseStatsFileReadsTotalsNotIntervals pins the cmd/kindle stats-out
// layout: end-of-run totals block first, interval delta blocks appended
// after. ParseStatsFile must return the totals, not the last interval's
// near-zero deltas.
func TestParseStatsFileReadsTotalsNotIntervals(t *testing.T) {
	s := NewStats()
	s.Set("nvm.write", 95)
	var intervals bytes.Buffer
	if err := s.DumpInterval(&intervals); err != nil { // interval 1: delta 95
		t.Fatal(err)
	}
	s.Add("nvm.write", 5)
	var file bytes.Buffer
	if err := s.WriteStatsFile(&file); err != nil { // totals: 100
		t.Fatal(err)
	}
	if err := s.DumpInterval(&intervals); err != nil { // interval 2: delta 5
		t.Fatal(err)
	}
	intervals.WriteTo(&file) // the -stats-out layout: totals, then intervals
	got, err := ParseStatsFile(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got["nvm.write"] != 100 {
		t.Fatalf("nvm.write = %d, want end-of-run total 100", got["nvm.write"])
	}
	blocks, err := ParseStatsBlocks(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 || blocks[0]["nvm.write"] != 100 ||
		blocks[1]["nvm.write"] != 95 || blocks[2]["nvm.write"] != 5 {
		t.Fatalf("ParseStatsBlocks = %v, want totals block then delta blocks 95, 5", blocks)
	}
}

// failAfterWriter fails every write once budget bytes have been accepted.
type failAfterWriter struct {
	budget int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errFull
	}
	w.budget -= len(p)
	return len(p), nil
}

var errFull = fmt.Errorf("writer full")

func TestDumpIntervalFailedWriteLeavesStateConsistent(t *testing.T) {
	s := NewStats()
	s.Set("x", 7)
	if err := s.DumpInterval(&failAfterWriter{budget: 10}); err == nil {
		t.Fatal("DumpInterval to a failing writer did not error")
	}
	if s.IntervalCount() != 0 {
		t.Fatalf("failed dump advanced IntervalCount to %d", s.IntervalCount())
	}
	var buf bytes.Buffer
	if err := s.DumpInterval(&buf); err != nil {
		t.Fatal(err)
	}
	blocks, err := ParseStatsBlocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0]["interval.index"] != 1 || blocks[0]["x"] != 7 {
		t.Fatalf("retry after failed dump produced %v, want index 1 with full delta 7", blocks)
	}
}

func TestHistCounterNameCollisionPanics(t *testing.T) {
	s := NewStats()
	s.Inc("dual")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Hist on an existing counter name did not panic")
			}
		}()
		s.Hist("dual")
	}()

	// Reverse order — counter created after the histogram — is caught at
	// registration too, so a collision can never silently drop a stat.
	s2 := NewStats()
	s2.Hist("dual").Observe(1)
	defer func() {
		if recover() == nil {
			t.Error("counter registration under a histogram name did not panic")
		}
	}()
	s2.Inc("dual")
}

func TestParseStatsFileIgnoresOutsideBlock(t *testing.T) {
	in := "noise 42\n---------- Begin Simulation Statistics ----------\nreal 7 #\n---------- End Simulation Statistics   ----------\ntrailing 9\n"
	got, err := ParseStatsFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["real"] != 7 {
		t.Fatalf("parsed %v", got)
	}
}
