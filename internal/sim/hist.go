package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a log2-bucketed distribution of uint64 samples (latencies
// in cycles, queue occupancies, ...). Bucket i holds values whose bit
// length is i, i.e. [2^(i-1), 2^i); bucket 0 holds the value 0. Observe is
// allocation-free — components sit it directly on hot paths.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64
}

// Name returns the registered stat name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// ObserveCycles records a latency sample.
func (h *Histogram) ObserveCycles(c Cycles) { h.Observe(uint64(c)) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Reset zeroes the histogram but keeps the registration.
func (h *Histogram) Reset() {
	*h = Histogram{name: h.name}
}

// Quantile returns an upper bound on the q-quantile sample (q in [0, 1]):
// the inclusive upper edge of the first bucket at which the cumulative
// count reaches ceil(q*count), clamped to the observed extrema. With log2
// buckets the bound is within a factor of two of the true quantile — the
// right fidelity for tail-latency summaries over cycle counts. Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum < target {
			continue
		}
		var hi uint64
		if i > 0 {
			hi = 1<<uint(i) - 1 // i == 64 wraps to MaxUint64, the bucket's true edge
		}
		if hi > h.max {
			hi = h.max
		}
		if hi < h.min {
			hi = h.min
		}
		return hi
	}
	return h.max
}

// Bucket is one non-empty histogram bucket: the closed value range
// [Lo, Hi] and its sample count.
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	return bucketsOf(&h.buckets)
}

func bucketsOf(buckets *[65]uint64) []Bucket {
	var out []Bucket
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		var lo, hi uint64
		if i > 0 {
			lo = 1 << (i - 1)
			hi = 1<<i - 1
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// HistSample is a concurrent observer's copy of a histogram: the scalar
// summary fields plus the raw log2 buckets. See Histogram.Sample.
type HistSample struct {
	Count, Sum, Min, Max uint64
	RawBuckets           [65]uint64
}

// Buckets returns the sample's non-empty buckets in ascending value order,
// with the same ranges as Histogram.Buckets.
func (s *HistSample) Buckets() []Bucket { return bucketsOf(&s.RawBuckets) }

// Mean returns the sample's arithmetic mean (0 when empty).
func (s *HistSample) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Sample reads the histogram from a goroutine other than the simulation's,
// the counterpart of Counter.Sample. Each field is loaded atomically (no
// torn words) but the fields are read at slightly different instants, so a
// scrape taken mid-run can be internally skewed by the samples observed
// while it walked the buckets; counts are monotonic, so the skew is bounded
// by that in-flight window. Simulation code should keep using the plain
// accessors.
func (h *Histogram) Sample() HistSample {
	var s HistSample
	s.Count = atomic.LoadUint64(&h.count)
	s.Sum = atomic.LoadUint64(&h.sum)
	s.Max = atomic.LoadUint64(&h.max)
	if s.Count > 0 {
		s.Min = atomic.LoadUint64(&h.min)
	}
	for i := range h.buckets {
		s.RawBuckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	return s
}

// ForEachStat visits the histogram's gem5-style stat lines in render
// order: scalar summary fields (::samples, ::mean, ::min_value,
// ::max_value) followed by one line per non-empty bucket (::lo-hi).
// Integer fields survive a ParseStatsFile round trip; ::mean is a float
// and is skipped by the parser, exactly as gem5's float stats are.
func (h *Histogram) ForEachStat(fn func(name string, v uint64, fv float64, isFloat bool)) {
	fn(h.name+"::samples", h.count, 0, false)
	fn(h.name+"::mean", 0, h.Mean(), true)
	fn(h.name+"::min_value", h.Min(), 0, false)
	fn(h.name+"::max_value", h.Max(), 0, false)
	for _, bk := range h.Buckets() {
		fn(fmt.Sprintf("%s::%d-%d", h.name, bk.Lo, bk.Hi), bk.Count, 0, false)
	}
}
