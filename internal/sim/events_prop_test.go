package sim

import (
	"fmt"
	"testing"
)

// propOp is one step of a generated queue script: schedule an event at a
// (frequently colliding) deadline, cancel a live event, or advance the
// virtual clock and run everything due.
type propOp struct {
	kind   int    // 0 = schedule, 1 = cancel, 2 = advance
	when   Cycles // schedule: absolute deadline
	cancel int    // cancel: index into the script's schedule history
	adv    Cycles // advance: clock delta
}

// genScript builds a deterministic op sequence from a seed. Deadlines are
// drawn from a tiny range so equal-cycle collisions are the common case,
// which is exactly where FIFO tie-breaking matters.
func genScript(seed uint64, n int) []propOp {
	rng := NewRNG(seed)
	ops := make([]propOp, 0, n)
	scheduled := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			ops = append(ops, propOp{kind: 0, when: Cycles(rng.Intn(8))})
			scheduled++
		case 2:
			if scheduled == 0 {
				continue
			}
			ops = append(ops, propOp{kind: 1, cancel: rng.Intn(scheduled)})
		default:
			ops = append(ops, propOp{kind: 2, adv: Cycles(rng.Intn(4))})
		}
	}
	return ops
}

// runScript executes a script against a fresh queue and returns the firing
// log: "name@cycle" per fired event, in firing order. Deadlines are offset
// from a moving base clock so the script exercises past-due scheduling too.
func runScript(ops []propOp) []string {
	q := NewQueue()
	now := Cycles(0)
	var log []string
	var handles []*Event
	for i, op := range ops {
		switch op.kind {
		case 0:
			name := fmt.Sprintf("ev%d", i)
			handles = append(handles, q.Schedule(now+op.when, name, func(fire Cycles) {
				log = append(log, fmt.Sprintf("%s@%d", name, fire))
			}))
		case 1:
			q.Cancel(handles[op.cancel]) // may already have fired: no-op
		case 2:
			now += op.adv
			q.RunDue(now)
		}
	}
	// Drain the tail so every surviving event's order is observed.
	now += 16
	q.RunDue(now)
	return log
}

// TestQueuePropertyDeterministicInterleavings: any interleaving of
// Schedule/Cancel/advance+RunDue — with equal-cycle deadlines the common
// case — fires in a deterministic order: identical scripts produce
// identical firing logs, and equal-deadline survivors fire in insertion
// order.
func TestQueuePropertyDeterministicInterleavings(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		ops := genScript(seed, 40)
		a := runScript(ops)
		b := runScript(ops)
		if len(a) != len(b) {
			t.Fatalf("seed %d: runs fired %d vs %d events", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: firing %d differs: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}

// TestQueueEqualDeadlineInsertionOrder pins the FIFO tie-break against a
// model: schedule many events at the same deadline with cancels
// interleaved; survivors must fire exactly in insertion order — including
// events re-armed via Reschedule, whose FIFO position is their re-arm
// order, not their original insertion order.
func TestQueueEqualDeadlineInsertionOrder(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := NewRNG(seed)
		q := NewQueue()
		const deadline = Cycles(100)
		var fired []int
		var handles []*Event
		var expect []int // model: insertion order of surviving events
		for i := 0; i < 30; i++ {
			id := len(handles)
			if len(handles) > 0 && rng.Intn(3) == 0 {
				// Cancel a random earlier event; drop it from the model.
				victim := rng.Intn(len(handles))
				q.Cancel(handles[victim])
				for j, e := range expect {
					if e == victim {
						expect = append(expect[:j], expect[j+1:]...)
						break
					}
				}
				continue
			}
			handles = append(handles, q.Schedule(deadline, "e", func(Cycles) {
				fired = append(fired, id)
			}))
			expect = append(expect, id)
		}
		// Re-arm a few cancelled-or-fired? None fired yet; cancel one live
		// event and Reschedule it at the same deadline: it moves to the
		// FIFO tail.
		if len(expect) > 1 {
			head := expect[0]
			q.Cancel(handles[head])
			q.Reschedule(handles[head], deadline)
			expect = append(expect[1:], head)
		}
		if got := q.RunDue(deadline); got != len(expect) {
			t.Fatalf("seed %d: fired %d, want %d", seed, got, len(expect))
		}
		for i := range expect {
			if fired[i] != expect[i] {
				t.Fatalf("seed %d: firing order %v, want %v", seed, fired, expect)
			}
		}
	}
}

// TestQueueDrainReleasesHandles: Drain must leave discarded events in the
// unqueued state so held handles stay safe — Cancel is a no-op and
// Reschedule re-arms them (the post-crash timer re-arm path).
func TestQueueDrainReleasesHandles(t *testing.T) {
	q := NewQueue()
	fired := 0
	a := q.Schedule(10, "a", func(Cycles) { fired++ })
	b := q.Schedule(20, "b", func(Cycles) { fired++ })
	q.Drain()
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
	q.Cancel(a) // must be a no-op, not corrupt the (empty) heap
	q.Reschedule(b, 5)
	if q.Len() != 1 {
		t.Fatalf("len after post-drain reschedule = %d", q.Len())
	}
	q.RunDue(5)
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (only the rescheduled event)", fired)
	}
}

// TestQueueReschedulePanicsWhilePending: moving a still-queued event's
// deadline via Reschedule is a caller bug and must panic.
func TestQueueReschedulePanicsWhilePending(t *testing.T) {
	q := NewQueue()
	e := q.Schedule(10, "e", func(Cycles) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule of a pending event did not panic")
		}
	}()
	q.Reschedule(e, 20)
}
