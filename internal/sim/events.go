package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a simulated deadline. Handlers run
// synchronously on the simulation goroutine when Queue.RunDue is called with
// a clock at or past the deadline. A handler may reschedule itself (periodic
// timers do).
type Event struct {
	When Cycles
	Name string
	Fn   func(now Cycles)

	seq   uint64 // tie-break so equal deadlines fire FIFO
	index int    // heap index, -1 when not queued
}

// Queue is a deterministic min-heap of events ordered by (When, insertion
// order). It is not safe for concurrent use; Kindle simulations are
// single-goroutine by design (the paper's gem5 runs are too).
type Queue struct {
	h   eventHeap
	seq uint64
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Schedule enqueues fn to run at deadline when. It returns the event so
// callers can cancel it.
func (q *Queue) Schedule(when Cycles, name string, fn func(now Cycles)) *Event {
	if fn == nil {
		panic("sim: Schedule with nil handler")
	}
	e := &Event{When: when, Name: name, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes e from the queue. Cancelling an already-fired or cancelled
// event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(q.h) || q.h[e.index] != e {
		return
	}
	heap.Remove(&q.h, e.index)
}

// Reschedule re-enqueues a previously fired (or cancelled) event at a new
// deadline, reusing its allocation — periodic timers re-arm without an
// allocation per period, which keeps the replay steady state allocation-
// free. The event takes a fresh insertion sequence, so its FIFO position at
// the new deadline is exactly as if it had been Scheduled then. Rescheduling
// an event that is still pending panics: the caller has lost track of its
// timer state and silently moving the deadline would hide that.
func (q *Queue) Reschedule(e *Event, when Cycles) {
	if e == nil || e.Fn == nil {
		panic("sim: Reschedule of a nil or never-scheduled event")
	}
	if e.index >= 0 && e.index < len(q.h) && q.h[e.index] == e {
		panic(fmt.Sprintf("sim: Reschedule of pending event %q", e.Name))
	}
	e.When = when
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextDeadline returns the earliest pending deadline, or ok=false when the
// queue is empty.
func (q *Queue) NextDeadline() (when Cycles, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].When, true
}

// RunDue fires, in deadline order, every event whose deadline is <= now.
// Handlers run with the deadline that triggered them; they may schedule new
// events (including ones already due, which fire in the same call). The
// number of events fired is returned.
func (q *Queue) RunDue(now Cycles) int {
	n := 0
	for len(q.h) > 0 && q.h[0].When <= now {
		e := heap.Pop(&q.h).(*Event)
		e.Fn(e.When)
		n++
	}
	return n
}

// Drain discards all pending events (used on machine crash: a power failure
// forgets every scheduled activity). Each discarded event is marked
// unqueued, so holders of an *Event can safely Cancel or Reschedule it
// after the drain.
func (q *Queue) Drain() {
	for i, e := range q.h {
		e.index = -1
		q.h[i] = nil
	}
	q.h = q.h[:0]
}

func (q *Queue) String() string {
	return fmt.Sprintf("sim.Queue{pending: %d}", len(q.h))
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
