package core

import (
	"sync"
	"testing"

	"kindle/internal/machine"
	"kindle/internal/trace"
)

// replayDump runs one full framework over img and returns the complete
// stats dump plus the final simulated time.
func replayDump(img *trace.Image) (string, uint64, error) {
	f := NewDefault()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		return "", 0, err
	}
	if err := rep.Run(); err != nil {
		return "", 0, err
	}
	return f.M.Stats.Dump(""), uint64(f.M.Clock.Now()), nil
}

// TestConcurrentFrameworksIsolated replays the same image on several
// frameworks at once (run under -race in make check) and requires every
// run to match a solo run bit-for-bit: concurrent machines must share no
// clock, stats, RNG or backing state. This pins the property the parallel
// experiment runner relies on.
// TestConcurrentShardedIsolated runs several sharded replays of the same
// image at once (under -race in make check), each itself fanning segments
// across workers, and requires every merged dump to match a solo sharded
// run bit-for-bit — the two levels of concurrency (replays × shards) must
// share nothing.
func TestConcurrentShardedIsolated(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	cfg := machine.TestConfig()
	opt := ShardedOptions{Shards: 2, SegmentChunks: 3, Config: &cfg}

	solo, err := ReplayShardedFile(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	soloDump := solo.Stats.Dump("")
	if soloDump == "" {
		t.Fatal("solo sharded run produced an empty stats dump")
	}

	const n = 3
	dumps := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := ReplayShardedFile(path, opt)
			if err != nil {
				errs[i] = err
				return
			}
			dumps[i] = res.Stats.Dump("")
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent sharded run %d: %v", i, errs[i])
		}
		if dumps[i] != soloDump {
			t.Errorf("concurrent sharded run %d stats diverged from the solo run", i)
		}
	}
}

func TestConcurrentFrameworksIsolated(t *testing.T) {
	img := smallImage(t)

	soloDump, soloEnd, err := replayDump(img)
	if err != nil {
		t.Fatal(err)
	}
	if soloDump == "" {
		t.Fatal("solo run produced an empty stats dump")
	}

	const n = 4
	dumps := make([]string, n)
	ends := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dumps[i], ends[i], errs[i] = replayDump(img)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if ends[i] != soloEnd {
			t.Errorf("concurrent run %d ended at cycle %d, solo at %d", i, ends[i], soloEnd)
		}
		if dumps[i] != soloDump {
			t.Errorf("concurrent run %d stats diverged from the solo run", i)
		}
	}
}
