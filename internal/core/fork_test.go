package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"kindle/internal/machine"
	"kindle/internal/persist"
	"kindle/internal/trace"
)

// forkWarmup is the warm-prefix length for the fork identity tests: a
// multiple of the replay tick grain (32), mid-trace for the 20k-record
// small image.
const forkWarmup = 8000

// coldForkRun replays the image end-to-end on a fresh framework — the
// reference trajectory the forked runs must reproduce byte-for-byte. The
// run is split at the warmup boundary exactly like the forked run (same
// Step call sequence), so any dump difference is the fork's fault, not
// stepping granularity.
func coldForkRun(t *testing.T, cfg machine.Config, scheme *persist.Scheme) (string, uint64) {
	t.Helper()
	f := New(cfg)
	if scheme != nil {
		mgr, err := f.EnablePersistence(*scheme, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		mgr.Start()
	}
	_, rep, err := f.LaunchInit(smallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Step(forkWarmup); err != nil {
		t.Fatal(err)
	}
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	return f.M.Stats.Dump(""), uint64(f.M.Clock.Now())
}

// warmForkRun replays the warm prefix once, snapshots, and finishes the
// trace on a resumed child. It returns the child's dump/clock plus the
// parent's after the parent also finishes its own run.
func warmForkRun(t *testing.T, cfg machine.Config, scheme *persist.Scheme) (child, parent string, childClock uint64) {
	t.Helper()
	img := smallImage(t)
	f := New(cfg)
	if scheme != nil {
		mgr, err := f.EnablePersistence(*scheme, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		mgr.Start()
	}
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Step(forkWarmup); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot(rep)

	cf, crep, err := RunFromSnapshot(snap, traceSource(t, img))
	if err != nil {
		t.Fatal(err)
	}
	if crep.Consumed() != forkWarmup {
		t.Fatalf("resumed replay at %d records, want %d", crep.Consumed(), forkWarmup)
	}
	if err := crep.Run(); err != nil {
		t.Fatal(err)
	}

	// The parent keeps running after the snapshot; COW must leave its
	// trajectory untouched.
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	return cf.M.Stats.Dump(""), f.M.Stats.Dump(""), uint64(cf.M.Clock.Now())
}

func traceSource(t *testing.T, img *trace.Image) trace.RecordSource {
	t.Helper()
	return trace.NewImageSource(img)
}

func TestForkIdentityPlainReplay(t *testing.T) {
	cfg := machine.TestConfig()
	wantDump, wantClock := coldForkRun(t, cfg, nil)
	child, parent, childClock := warmForkRun(t, cfg, nil)
	if childClock != wantClock {
		t.Fatalf("forked clock %d != cold %d", childClock, wantClock)
	}
	if child != wantDump {
		t.Fatalf("forked dump differs from cold boot:\n%s", firstDiff(child, wantDump))
	}
	if parent != wantDump {
		t.Fatalf("parent dump diverged after snapshot:\n%s", firstDiff(parent, wantDump))
	}
}

func TestForkIdentityWithPersistence(t *testing.T) {
	for _, scheme := range []persist.Scheme{persist.Rebuild, persist.Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := machine.TestConfig()
			wantDump, wantClock := coldForkRun(t, cfg, &scheme)
			child, parent, childClock := warmForkRun(t, cfg, &scheme)
			if childClock != wantClock {
				t.Fatalf("forked clock %d != cold %d", childClock, wantClock)
			}
			if child != wantDump {
				t.Fatalf("forked dump differs from cold boot:\n%s", firstDiff(child, wantDump))
			}
			if parent != wantDump {
				t.Fatalf("parent dump diverged after snapshot:\n%s", firstDiff(parent, wantDump))
			}
		})
	}
}

func TestForkIdentityEventClock(t *testing.T) {
	cfg := machine.TestConfig()
	cfg.EventDrivenClock = true
	scheme := persist.Rebuild
	wantDump, wantClock := coldForkRun(t, cfg, &scheme)
	child, _, childClock := warmForkRun(t, cfg, &scheme)
	if childClock != wantClock {
		t.Fatalf("forked clock %d != cold %d", childClock, wantClock)
	}
	if child != wantDump {
		t.Fatalf("forked dump differs from cold boot:\n%s", firstDiff(child, wantDump))
	}
}

// TestForkSiblingsIndependent resumes several children from one snapshot
// concurrently; under -race this pins that siblings share no mutable
// state, and their dumps must all match the cold reference.
func TestForkSiblingsIndependent(t *testing.T) {
	cfg := machine.TestConfig()
	scheme := persist.Rebuild
	wantDump, _ := coldForkRun(t, cfg, &scheme)

	img := smallImage(t)
	f := New(cfg)
	mgr, err := f.EnablePersistence(scheme, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Step(forkWarmup); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot(rep)

	const siblings = 4
	dumps := make([]string, siblings)
	var wg sync.WaitGroup
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cf, crep, err := RunFromSnapshot(snap, traceSource(t, img))
			if err != nil {
				t.Error(err)
				return
			}
			if err := crep.Run(); err != nil {
				t.Error(err)
				return
			}
			dumps[i] = cf.M.Stats.Dump("")
		}(i)
	}
	// The parent races ahead at the same time — COW isolation both ways.
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, d := range dumps {
		if d != wantDump {
			t.Fatalf("sibling %d dump differs from cold boot:\n%s", i, firstDiff(d, wantDump))
		}
	}
	if got := f.M.Stats.Dump(""); got != wantDump {
		t.Fatalf("parent dump diverged:\n%s", firstDiff(got, wantDump))
	}
}

// TestSnapshotSaveLoadRoundTrip serializes a snapshot to bytes and resumes
// from the decoded copy — the CLI's -snapshot-out/-snapshot-in path.
func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	cfg := machine.TestConfig()
	scheme := persist.Rebuild
	wantDump, wantClock := coldForkRun(t, cfg, &scheme)

	img := smallImage(t)
	f := New(cfg)
	mgr, err := f.EnablePersistence(scheme, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Step(forkWarmup); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Snapshot(rep).Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cf, crep, err := RunFromSnapshot(loaded, traceSource(t, img))
	if err != nil {
		t.Fatal(err)
	}
	if err := crep.Run(); err != nil {
		t.Fatal(err)
	}
	if got := uint64(cf.M.Clock.Now()); got != wantClock {
		t.Fatalf("resumed clock %d != cold %d", got, wantClock)
	}
	if got := cf.M.Stats.Dump(""); got != wantDump {
		t.Fatalf("resumed dump differs from cold boot:\n%s", firstDiff(got, wantDump))
	}
}

// TestForkThenCrashRecover crashes a forked machine and runs recovery on
// it: the crash's DRAM DropRange and the recovery's NVM reads all land on
// copy-on-write slabs shared with the still-running parent, which must
// stay byte-identical to a cold run throughout.
func TestForkThenCrashRecover(t *testing.T) {
	cfg := machine.TestConfig()
	img := smallImage(t)

	run := func(fork bool) (dump string, mapped int) {
		f := New(cfg)
		mgr, err := f.EnablePersistence(persist.Rebuild, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		mgr.Start()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Step(forkWarmup); err != nil {
			t.Fatal(err)
		}
		var parent *Framework
		var parentRep *Replay
		if fork {
			snap := f.Snapshot(rep)
			parent, parentRep = f, rep
			f, rep, err = RunFromSnapshot(snap, traceSource(t, img))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		f.Manager().Checkpoint()
		f.Crash()
		procs, err := f.Recover(2 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(procs) != 1 {
			t.Fatalf("recovered %d processes, want 1", len(procs))
		}
		if fork {
			// The parent keeps replaying across the child's crash; its
			// final state must not have been disturbed.
			if err := parentRep.Run(); err != nil {
				t.Fatal(err)
			}
			if got := uint64(parent.M.Clock.Now()); got == 0 {
				t.Fatal("parent clock lost")
			}
		}
		return f.M.Stats.Dump(""), procs[0].Table.Mapped()
	}

	coldDump, coldMapped := run(false)
	forkDump, forkMapped := run(true)
	if forkMapped != coldMapped {
		t.Fatalf("forked recovery mapped %d pages, cold %d", forkMapped, coldMapped)
	}
	if forkDump != coldDump {
		t.Fatalf("forked crash/recover dump differs:\n%s", firstDiff(forkDump, coldDump))
	}
}

// firstDiff returns the first differing line pair of two dumps, keeping
// failure output readable.
func firstDiff(got, want string) string {
	g := bytes.Split([]byte(got), []byte("\n"))
	w := bytes.Split([]byte(want), []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			return "got:  " + string(g[i]) + "\nwant: " + string(w[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(g), len(w))
}
