package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"kindle/internal/machine"
	"kindle/internal/obs"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// TestObservabilityEndToEnd drives the full pipeline the CLI exposes:
// trace a checkpointed crash-recovery run with all categories enabled and
// periodic interval dumps, then verify (a) the Chrome export is valid JSON
// containing checkpoint and recovery span events, and (b) the interval
// blocks parse back with counter deltas summing to the end-of-run totals.
func TestObservabilityEndToEnd(t *testing.T) {
	cfg := machine.TestConfig()
	cfg.Trace = obs.Config{Categories: obs.CatAll}
	f := New(cfg)
	if f.M.Tracer == nil {
		t.Fatal("tracer not created from machine.Config")
	}
	mgr, err := f.EnablePersistence(persist.Rebuild, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	img := smallImage(t)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()

	// Dump well below the run's simulated length (~0.3 ms) so several
	// periodic blocks land before and after the crash.
	var intervals bytes.Buffer
	iv := sim.FromDuration(50 * time.Microsecond)
	var arm func()
	arm = func() {
		f.M.Events.Schedule(f.M.Clock.Now()+iv, "stats.interval", func(sim.Cycles) {
			if err := f.M.Stats.DumpInterval(&intervals); err != nil {
				t.Error(err)
			}
			arm()
		})
	}
	arm()

	half := rep.Remaining() / 2
	if _, err := rep.Step(half); err != nil {
		t.Fatal(err)
	}
	mgr.Checkpoint()
	f.Crash()
	procs, err := f.Recover(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 {
		t.Fatalf("recovered %d processes", len(procs))
	}
	f.Manager().Start()
	arm() // the crash drained the event queue
	if err := rep.Rebind(procs[0]); err != nil {
		t.Fatal(err)
	}
	f.K.Switch(procs[0])
	rep.Run() // post-crash replay may stop early; the trace is what matters
	if err := f.M.Stats.DumpInterval(&intervals); err != nil {
		t.Fatal(err)
	}

	// (a) Chrome trace: valid JSON with checkpoint + recovery spans.
	var out bytes.Buffer
	if err := f.M.Tracer.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans[e.Name]++
		}
	}
	for _, want := range []string{"checkpoint", "checkpoint.regs", "checkpoint.redo_drain", "recovery", "recovery.table", "page_fault"} {
		if spans[want] == 0 {
			t.Errorf("Chrome trace has no %q span (spans: %v)", want, spans)
		}
	}

	// (b) interval blocks: >= 2, deltas sum to totals for every counter.
	blocks, err := sim.ParseStatsBlocks(bytes.NewReader(intervals.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("interval blocks = %d, want >= 2", len(blocks))
	}
	sums := map[string]uint64{}
	for _, b := range blocks {
		for k, v := range b {
			sums[k] += v
		}
	}
	for name, sum := range sums {
		if name == "interval.index" {
			continue
		}
		if total := f.M.Stats.Get(name); sum != total {
			t.Errorf("%s: interval deltas sum to %d, total %d", name, sum, total)
		}
	}
}
