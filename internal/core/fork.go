package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
	"kindle/internal/trace"
)

// Framework-level snapshots: a machine snapshot plus the OS state layered
// on top (kernel, persistence manager, replay position). Taking one is
// cheap — the frame store is shared copy-on-write — so a warmed framework
// can be forked once per grid cell, per trace segment or per crash point
// instead of re-simulating the warmup each time.

// ReplayState records where a replay stood at snapshot time. The record
// source itself is a stream and cannot be captured; ResumeReplay reopens
// the trace and fast-forwards the decoder (decode is cheap — the
// simulation of the prefix is what the snapshot saves).
type ReplayState struct {
	PID                    int
	Consumed               int
	LastPeriod             uint64
	Bases                  []uint64
	ComputeCyclesPerPeriod sim.Cycles
	TickEvery              int
}

// Snapshot is a warmed framework frozen in time. All exported fields are
// plain data (gob-encodable); the frame store travels via Save/Load.
type Snapshot struct {
	M      *machine.Snapshot
	Kernel gemos.KernelState
	Mgr    *persist.ManagerState // nil when persistence is not enabled
	Replay *ReplayState          // nil when no replay was captured
}

// Snapshot captures the framework's full state. rep, when non-nil, records
// the replay position so ResumeReplay can continue the trace from here.
// The framework keeps running; its frame store switches to copy-on-write.
func (f *Framework) Snapshot(rep *Replay) *Snapshot {
	s := &Snapshot{M: f.M.Snapshot(), Kernel: f.K.CaptureState()}
	if f.mgr != nil {
		ms := f.mgr.CaptureState()
		s.Mgr = &ms
	}
	if rep != nil {
		s.Replay = &ReplayState{
			PID:                    rep.P.PID,
			Consumed:               rep.consumed,
			LastPeriod:             rep.lastPeriod,
			Bases:                  append([]uint64(nil), rep.bases...),
			ComputeCyclesPerPeriod: rep.ComputeCyclesPerPeriod,
			TickEvery:              rep.TickEvery,
		}
	}
	return s
}

// Resume builds a fresh framework from a snapshot: machine restored with a
// copy-on-write fork of the frame store, kernel and persistence manager
// rebuilt over it, pending events re-armed ("nvm.drain" by the machine,
// "persist.checkpoint" by the manager; a snapshot carrying events from
// stacks this path does not support — SSP, HSCC, scheduler ticks — refuses
// to resume). Safe to call concurrently on one Snapshot.
func Resume(s *Snapshot) (*Framework, error) {
	m, err := machine.NewFromSnapshot(s.M)
	if err != nil {
		return nil, err
	}
	k, err := gemos.RestoreKernel(m, s.Kernel)
	if err != nil {
		return nil, err
	}
	f := &Framework{M: m, K: k}
	extra := map[string]func(when sim.Cycles){}
	if s.Mgr != nil {
		mgr, err := persist.RestoreManager(k, *s.Mgr)
		if err != nil {
			return nil, err
		}
		f.mgr = mgr
		extra["persist.checkpoint"] = mgr.RearmCheckpoint
	}
	if err := m.RearmEvents(s.M, extra); err != nil {
		return nil, err
	}
	return f, nil
}

// ResumeReplay rebinds a snapshot's replay to a resumed framework. src
// must be a fresh source over the same trace the snapshot was taken from;
// the decoder fast-forwards past the records the snapshot already
// simulated. Tick boundaries are consumed-count-based, so the resumed
// replay fires them at exactly the cycles a never-interrupted run would.
func (f *Framework) ResumeReplay(s *Snapshot, src trace.RecordSource) (*Replay, error) {
	st := s.Replay
	if st == nil {
		return nil, fmt.Errorf("core: snapshot carries no replay state")
	}
	p := f.K.Process(st.PID)
	if p == nil {
		return nil, fmt.Errorf("core: snapshot replay pid %d not in restored process table", st.PID)
	}
	areas := src.Areas()
	if len(areas) != len(st.Bases) {
		return nil, fmt.Errorf("core: source has %d areas, snapshot mapped %d", len(areas), len(st.Bases))
	}
	rep := &Replay{
		f:                      f,
		P:                      p,
		src:                    src,
		areas:                  areas,
		bases:                  append([]uint64(nil), st.Bases...),
		total:                  src.Total(),
		ComputeCyclesPerPeriod: st.ComputeCyclesPerPeriod,
		TickEvery:              st.TickEvery,
		lastPeriod:             st.LastPeriod,
	}
	if err := rep.skip(st.Consumed); err != nil {
		return nil, err
	}
	rep.resumedAt = st.Consumed
	return rep, nil
}

// skip fast-forwards the decoder past n records without simulating them.
func (r *Replay) skip(n int) error {
	for n > 0 {
		if r.pos >= len(r.batch) {
			ok, err := r.fill()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("core: trace ends %d records before the snapshot position", n)
			}
		}
		run := len(r.batch) - r.pos
		if run > n {
			run = n
		}
		r.pos += run
		r.consumed += run
		n -= run
	}
	return nil
}

// RunFromSnapshot resumes a framework and its replay in one call — the
// cold-boot-free equivalent of New + LaunchStream + (rewarm). The caller
// still drives rep.Run() and owns src.
func RunFromSnapshot(s *Snapshot, src trace.RecordSource) (*Framework, *Replay, error) {
	f, err := Resume(s)
	if err != nil {
		return nil, nil, err
	}
	rep, err := f.ResumeReplay(s, src)
	if err != nil {
		return nil, nil, err
	}
	return f, rep, nil
}

// snapshotFile is the on-disk envelope: the snapshot plus the materialized
// frame store (machine.Snapshot's live store is unexported and travels as
// a deterministic PFN-sorted image).
type snapshotFile struct {
	Snap *Snapshot
	Img  mem.BackingImage
}

// Save serializes the snapshot (gob). The output is deterministic: all
// captured state is name- or address-sorted.
func (s *Snapshot) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshotFile{Snap: s, Img: s.M.BackingImage()})
}

// LoadSnapshot deserializes a snapshot written by Save, ready for Resume.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var sf snapshotFile
	if err := gob.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if sf.Snap == nil || sf.Snap.M == nil {
		return nil, fmt.Errorf("core: snapshot file carries no machine state")
	}
	if err := sf.Snap.M.SetBackingImage(sf.Img); err != nil {
		return nil, err
	}
	return sf.Snap, nil
}
