// Package core is Kindle's public API: it composes the simulated machine,
// the gemOS kernel, the preparation component and the prototypes into the
// two-part framework of the paper — prepare an application into a disk
// image, then simulate it on a hybrid-memory machine with process
// persistence, SSP or HSCC enabled — behind a small facade.
//
// Typical use:
//
//	f := core.NewDefault()
//	img, _ := core.Prepare(core.BenchYCSB, true)
//	proc, rep, _ := f.LaunchInit(img)
//	mgr, _ := f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
//	mgr.Start()
//	rep.Run()
//	f.Crash()
//	procs, _ := f.Recover(10 * time.Millisecond)
package core

import (
	"fmt"
	"io"
	"time"

	"kindle/internal/gemos"
	"kindle/internal/hscc"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/prep"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/trace"
	"kindle/internal/traffic"
)

// Re-exported benchmark names.
const (
	BenchPageRank = prep.BenchPageRank
	BenchSSSP     = prep.BenchSSSP
	BenchYCSB     = prep.BenchYCSB
)

// Framework is one Kindle instance: a machine plus its kernel.
type Framework struct {
	M *machine.Machine
	K *gemos.Kernel

	mgr *persist.Manager
}

// New boots a framework on a machine with the given configuration.
func New(cfg machine.Config) *Framework {
	m := machine.New(cfg)
	return &Framework{M: m, K: gemos.Boot(m)}
}

// NewDefault boots the paper's Table I machine.
func NewDefault() *Framework { return New(machine.DefaultConfig()) }

// NewSmall boots a reduced machine for tests and quick runs.
func NewSmall() *Framework { return New(machine.TestConfig()) }

// Prepare runs the preparation component for a Table II benchmark and
// returns its disk image. small selects the reduced configuration.
func Prepare(benchmark string, small bool) (*trace.Image, error) {
	d := &prep.Driver{Small: small}
	res, err := d.Run(benchmark)
	if err != nil {
		return nil, err
	}
	return res.Image, nil
}

// EnablePersistence attaches the process-persistence manager with the
// given page-table scheme and checkpoint interval. It must be called
// before spawning the processes that should be persisted.
func (f *Framework) EnablePersistence(scheme persist.Scheme, interval time.Duration) (*persist.Manager, error) {
	mgr, err := persist.Attach(f.K, scheme, sim.FromDuration(interval))
	if err != nil {
		return nil, err
	}
	f.mgr = mgr
	return mgr, nil
}

// EnableSSP attaches the Shadow Sub-Paging prototype.
func (f *Framework) EnableSSP(cfg ssp.Config) (*ssp.Controller, error) {
	return ssp.Attach(f.K, cfg)
}

// EnableHSCC attaches the HSCC prototype for process p.
func (f *Framework) EnableHSCC(p *gemos.Process, cfg hscc.Config) (*hscc.Controller, error) {
	return hscc.Attach(f.K, p, cfg)
}

// RunTraffic runs the multi-tenant synthetic-load engine to completion:
// spec.Tenants gemOS processes driven through the scheduler under the
// spec's arrival process and workload mix, contending for the machine's
// shared memory system (and, when persistence is enabled, checkpoint
// bandwidth). onOp, when non-nil, observes per-op progress. The run is
// deterministic: the same spec and seed produce byte-identical stats
// dumps, under the stepped and the event-driven clock alike.
func (f *Framework) RunTraffic(spec traffic.Spec, onOp func(done, total int)) (*traffic.Result, error) {
	eng, err := traffic.New(f.K, spec)
	if err != nil {
		return nil, err
	}
	eng.OnOp = onOp
	return eng.Run()
}

// Crash power-fails the machine.
func (f *Framework) Crash() { f.M.Crash() }

// Recover reboots the OS on the crashed machine and runs the recovery
// procedure, returning the recovered processes. The framework's kernel is
// replaced (the old kernel state was volatile).
func (f *Framework) Recover(interval time.Duration) ([]*gemos.Process, error) {
	f.K = gemos.Boot(f.M)
	mgr, err := persist.Reattach(f.K, sim.FromDuration(interval))
	if err != nil {
		return nil, err
	}
	f.mgr = mgr
	return mgr.Recover()
}

// Manager returns the active persistence manager (nil when persistence is
// not enabled).
func (f *Framework) Manager() *persist.Manager { return f.mgr }

// RunIdle passes d of simulated time with no instructions in flight —
// checkpoint timers, migration intervals and NVM drains keep firing. tick
// is the stepped engine's cycle-group grain (0 = a single step); with
// machine.Config.EventDrivenClock set the clock jumps dead time instead,
// with byte-identical stats (see machine.RunUntil).
func (f *Framework) RunIdle(d, tick time.Duration) {
	f.M.RunUntil(f.M.Clock.Now()+sim.FromDuration(d), sim.FromDuration(tick))
}

// Replay drives a traced application through the simulated machine — the
// generated template program running as gemOS's init process. The record
// stream comes from a trace.RecordSource, so a replay holds at most a
// couple of decoded chunks in memory regardless of trace length; a
// materialized Image replays through the same path via its adapter.
type Replay struct {
	f     *Framework
	P     *gemos.Process
	src   trace.RecordSource
	areas []trace.Area
	bases []uint64

	batch    []trace.Record
	pos      int // cursor into batch
	consumed int
	// resumedAt is the consumed count a snapshot-resumed replay started
	// from (0 for a replay launched cold); Replayed subtracts it so
	// progress accounting only counts records this run simulated.
	resumedAt int
	total     int // -1 when the source cannot tell upfront
	drained   bool

	// ComputeCyclesPerPeriod charges non-memory instruction time between
	// records from the trace's logical periods.
	ComputeCyclesPerPeriod sim.Cycles
	// TickEvery fires machine events every N records (default 32).
	TickEvery int

	// OnStep, when set, observes replay progress: it is called once per
	// Step call (not per record — Run steps in 64Ki-record slabs, so the
	// hook costs nothing measurable) with the consumed count and the trace
	// total (-1 when the source cannot tell). The monitor's /progress
	// endpoint hangs off this.
	OnStep func(consumed, total int)

	lastPeriod uint64
}

// LaunchInit spawns the init process for a materialized image: each traced
// area is mmapped (MAP_NVM for NVM areas) and a replayer is returned.
func (f *Framework) LaunchInit(img *trace.Image) (*gemos.Process, *Replay, error) {
	if err := img.Validate(); err != nil {
		return nil, nil, err
	}
	return f.LaunchStream(trace.NewImageSource(img))
}

// LaunchStream spawns the init process for a streamed trace. The source's
// header must be complete (benchmark, areas); records decode on demand as
// the replay advances. The caller keeps ownership of the source and must
// Close it after the replay (the replayer never does).
func (f *Framework) LaunchStream(src trace.RecordSource) (*gemos.Process, *Replay, error) {
	areas := src.Areas()
	if err := trace.ValidateHeader(src.Benchmark(), areas); err != nil {
		return nil, nil, err
	}
	p, err := f.K.Spawn(src.Benchmark())
	if err != nil {
		return nil, nil, err
	}
	f.K.Switch(p)
	rep := &Replay{
		f:                      f,
		P:                      p,
		src:                    src,
		areas:                  areas,
		total:                  src.Total(),
		ComputeCyclesPerPeriod: 2,
		TickEvery:              32,
	}
	for _, a := range areas {
		var flags uint32
		if a.NVM {
			flags |= gemos.MapNVM
		}
		prot := gemos.ProtRead
		if a.Write {
			prot |= gemos.ProtWrite
		}
		base, err := f.K.Mmap(p, 0, a.Size, prot, flags)
		if err != nil {
			return nil, nil, fmt.Errorf("core: mapping area %q: %w", a.Name, err)
		}
		rep.bases = append(rep.bases, base)
	}
	return p, rep, nil
}

// NVMRange returns the lowest and highest virtual addresses of the
// replay's NVM areas (the range communicated to SSP hardware via MSRs).
func (r *Replay) NVMRange() (lo, hi uint64) {
	for i, a := range r.areas {
		if !a.NVM {
			continue
		}
		base := r.bases[i]
		if lo == 0 || base < lo {
			lo = base
		}
		if base+a.Size > hi {
			hi = base + a.Size
		}
	}
	return lo, hi
}

// Rebind points the replay at a recovered process after crash recovery.
// The recovered VMA layout must still cover the replay's area bases (it
// does when recovery restored the checkpointed layout of the same run).
func (r *Replay) Rebind(p *gemos.Process) error {
	for i, a := range r.areas {
		v := p.AS.Find(r.bases[i])
		if v == nil {
			return fmt.Errorf("core: recovered process lacks area %q at %#x", a.Name, r.bases[i])
		}
	}
	r.P = p
	return nil
}

// Done reports whether the trace is exhausted.
func (r *Replay) Done() bool {
	if r.pos < len(r.batch) {
		return false
	}
	if r.total >= 0 {
		return r.consumed >= r.total
	}
	return r.drained
}

// Total returns the record count of the trace, or -1 when the source
// cannot tell without decoding to the end (a non-seekable v2 stream).
func (r *Replay) Total() int { return r.total }

// Consumed returns how many records have been replayed so far, counting
// any prefix a snapshot-resumed replay skipped over (the absolute trace
// position).
func (r *Replay) Consumed() int { return r.consumed }

// Replayed returns how many records this run actually simulated: Consumed
// minus the prefix a snapshot resume fast-forwarded past. Progress
// accounting (bench.Tracker records gauges) sums Replayed so forked cells
// sharing one warmup never double-count it — the gauges stay cumulative
// and monotone.
func (r *Replay) Replayed() int { return r.consumed - r.resumedAt }

// Remaining returns how many records are left, or -1 when the source's
// total is unknown.
func (r *Replay) Remaining() int {
	if r.total < 0 {
		return -1
	}
	return r.total - r.consumed
}

// fill fetches the next decoded batch from the source. It returns false at
// end of stream.
func (r *Replay) fill() (bool, error) {
	for {
		batch, err := r.src.Next()
		if err == io.EOF {
			r.drained = true
			if r.total >= 0 && r.consumed < r.total {
				return false, fmt.Errorf("core: trace ends after %d of %d records", r.consumed, r.total)
			}
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("core: reading trace: %w", err)
		}
		if len(batch) == 0 {
			continue
		}
		r.batch, r.pos = batch, 0
		return true, nil
	}
}

// Step replays up to n records, firing machine events along the way. It
// returns done=true when the trace is exhausted.
//
// Dispatch is batched: records are consumed in contiguous runs bounded by
// the decoded batch, the remaining budget and the next tick boundary, so
// the per-record path carries none of the refill, tick-modulo or field
// re-resolution work — stepBatch hoists it all per run.
func (r *Replay) Step(n int) (done bool, err error) {
	k := r.f.K
	if k.Current() != r.P {
		k.Switch(r.P)
	}
	tickEvery := r.TickEvery
	if tickEvery <= 0 {
		tickEvery = 32
	}
	for remaining := n; remaining > 0; {
		if r.pos >= len(r.batch) {
			ok, err := r.fill()
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
		}
		run := len(r.batch) - r.pos
		if run > remaining {
			run = remaining
		}
		if until := tickEvery - r.consumed%tickEvery; run > until {
			run = until
		}
		if err := r.stepBatch(r.batch[r.pos : r.pos+run]); err != nil {
			return false, err
		}
		remaining -= run
		if r.consumed%tickEvery == 0 {
			k.Tick()
		}
	}
	k.Tick()
	if r.OnStep != nil {
		r.OnStep(r.consumed, r.total)
	}
	return r.Done(), nil
}

// stepBatch replays one contiguous run of records with the loop-invariant
// state (clock, core, area bases, compute-cycle rate) resolved once. The
// caller has already sized recs so no tick boundary falls inside the run.
func (r *Replay) stepBatch(recs []trace.Record) error {
	m := r.f.M
	clock := m.Clock
	core := m.Core
	bases := r.bases
	ccp := r.ComputeCyclesPerPeriod
	lastPeriod := r.lastPeriod
	for j := range recs {
		rec := &recs[j]
		if rec.Period > lastPeriod {
			clock.Advance(sim.Cycles(rec.Period-lastPeriod) * ccp)
			lastPeriod = rec.Period
		}
		va := bases[rec.Area] + rec.Offset
		if _, err := core.Access(va, rec.Op == trace.Write, int(rec.Size)); err != nil {
			// The failing record counts as consumed, exactly as before.
			r.pos += j + 1
			r.consumed += j + 1
			r.lastPeriod = lastPeriod
			return fmt.Errorf("core: replaying record %d: %w", r.consumed-1, err)
		}
	}
	r.pos += len(recs)
	r.consumed += len(recs)
	r.lastPeriod = lastPeriod
	return nil
}

// Run replays the whole remaining trace.
func (r *Replay) Run() error {
	for {
		done, err := r.Step(1 << 16)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Teardown munmaps every area (the template's trailing munmap calls).
func (r *Replay) Teardown() error {
	for i, a := range r.areas {
		if err := r.f.K.Munmap(r.P, r.bases[i], a.Size); err != nil {
			return err
		}
	}
	return nil
}

// MemKindOf reports which memory technology backs a replay area (tests).
func (r *Replay) MemKindOf(area int) mem.Kind {
	if r.areas[area].NVM {
		return mem.NVM
	}
	return mem.DRAM
}
