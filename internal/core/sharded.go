package core

// Sharded replay: partition a v2 trace's chunk index into fixed-size
// segments and replay each on its own independent machine instance, then
// merge the per-segment stats deterministically. The segment grain is a
// property of the trace walk, not of the worker count, so the merged stats
// are byte-identical for every shard count — N shards only decide how many
// segments replay concurrently.
//
// A segment replays on a cold machine: caches, TLBs and page tables start
// empty at every segment boundary, exactly as they would at N=1 with the
// same grain. That is what buys the N-independence; it also means sharded
// totals are not comparable to an unsharded end-to-end replay (which
// carries warm state across the whole trace). Compare sharded runs against
// sharded runs.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"kindle/internal/machine"
	"kindle/internal/sim"
	"kindle/internal/trace"
)

// DefaultSegmentChunks is the fixed partition grain of sharded replay:
// chunks per segment. With the v2 writer's default of 64Ki records per
// chunk a segment replays 256Ki records — long enough to amortize the cold
// start, short enough that a 4-way shard of any real trace has work for
// every worker.
const DefaultSegmentChunks = 4

// ShardedOptions tunes ReplaySharded. The zero value replays with
// GOMAXPROCS shards at the default segment grain on the paper's default
// machine.
type ShardedOptions struct {
	// Shards bounds how many segments replay concurrently (0 = GOMAXPROCS).
	// It never affects results, only wall-clock time.
	Shards int
	// SegmentChunks is the partition grain in chunks (0 =
	// DefaultSegmentChunks). Unlike Shards it DOES affect results: segment
	// boundaries are cold-machine boundaries.
	SegmentChunks int
	// Config is the machine configuration each segment's instance boots
	// with (nil = machine.DefaultConfig()).
	Config *machine.Config
	// WarmFork seeds every segment from one shared boot snapshot (machine
	// booted, init spawned, areas mapped) forked copy-on-write, instead of
	// cold-booting per segment. Results are byte-identical either way —
	// pinned by TestShardedWarmForkIdentity — the fork only skips
	// re-simulating the boot prefix.
	WarmFork bool
	// OnProgress, when set, observes global progress: records replayed
	// across all segments so far, out of the trace total. Called from
	// worker goroutines; it must be safe for concurrent use (bench.Tracker
	// and the monitor gauges are).
	OnProgress func(done, total int)
}

// SegmentStats is one segment's outcome, the debugging view of a sharded
// run: its chunk range, record count, end-of-segment clock and private
// stats registry.
type SegmentStats struct {
	Lo, Hi  int // chunk range [Lo, Hi) in the trace's chunk index
	Records int
	Cycles  sim.Cycles // segment-local clock at completion
	Stats   *sim.Stats
}

// ShardedResult is a sharded replay's outcome.
type ShardedResult struct {
	// Stats is the deterministic merge of every segment's registry, folded
	// in segment order. Its dump is byte-identical for every shard count.
	Stats *sim.Stats
	// Segments holds the per-segment registries in segment order.
	Segments []SegmentStats
	// Records is the total records replayed; Shards the worker count used.
	Records int
	Shards  int
	// Cycles sums the per-segment clocks — the simulated-time proxy of a
	// sharded run. It depends on the segment grain (cold boundaries) but
	// not on the shard count, so sharded runs compare against sharded runs.
	Cycles sim.Cycles
}

// ReplaySharded replays a v2 trace partitioned across independent machine
// instances. open must return a fresh reader over the same image on every
// call (one per concurrent segment, plus one for the index scan); readers
// that implement io.Closer are closed when their segment finishes.
func ReplaySharded(open func() (io.ReadSeeker, error), opt ShardedOptions) (*ShardedResult, error) {
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	segChunks := opt.SegmentChunks
	if segChunks <= 0 {
		segChunks = DefaultSegmentChunks
	}
	cfg := machine.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}

	rs, err := open()
	if err != nil {
		return nil, fmt.Errorf("core: opening trace for index scan: %w", err)
	}
	ix, err := trace.ScanChunkIndex(rs)
	closeReader(rs)
	if err != nil {
		return nil, fmt.Errorf("core: scanning chunk index: %w", err)
	}

	// WarmFork: simulate the boot prefix (machine boot, init spawn, area
	// mmaps) exactly once and freeze it; every segment resumes from a
	// copy-on-write fork instead of re-simulating it. The template replay
	// consumes zero records, so a resumed segment starts at the same point
	// a cold-booted one would.
	var seed *Snapshot
	if opt.WarmFork {
		rs, err := open()
		if err != nil {
			return nil, fmt.Errorf("core: opening trace for warm template: %w", err)
		}
		src, err := ix.OpenRange(rs, 0, 0)
		if err != nil {
			closeReader(rs)
			return nil, err
		}
		f := New(cfg)
		_, rep, err := f.LaunchStream(src)
		if err == nil {
			seed = f.Snapshot(rep)
		}
		src.Close()
		closeReader(rs)
		if err != nil {
			return nil, fmt.Errorf("core: building warm template: %w", err)
		}
	}

	nSegs := (len(ix.Chunks) + segChunks - 1) / segChunks
	if nSegs == 0 {
		// A v2 trace with zero records has no chunks. Still replay one
		// empty segment so the result carries a booted machine's registry
		// (boot-time page-table and checkpoint-area stats) exactly like
		// `-shards 1` — not an empty stats file.
		nSegs = 1
	}
	res := &ShardedResult{
		Stats:    sim.NewStats(),
		Segments: make([]SegmentStats, nSegs),
		Shards:   shards,
	}
	var done atomic.Int64
	err = forEachSegment(shards, nSegs, func(i int) error {
		lo := i * segChunks
		hi := min(lo+segChunks, len(ix.Chunks))
		var report func(delta int)
		if opt.OnProgress != nil {
			report = func(delta int) {
				opt.OnProgress(int(done.Add(int64(delta))), ix.Total)
			}
		}
		st, n, cyc, err := replaySegment(ix, open, lo, hi, cfg, seed, report)
		if err != nil {
			return fmt.Errorf("core: segment %d (chunks [%d, %d)): %w", i, lo, hi, err)
		}
		res.Segments[i] = SegmentStats{Lo: lo, Hi: hi, Records: n, Cycles: cyc, Stats: st}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The merge folds in segment order. The stats themselves are sums and
	// extrema, so any order would produce the same registry — ordering
	// keeps the determinism obvious rather than argued.
	for _, seg := range res.Segments {
		res.Stats.MergeFrom(seg.Stats)
		res.Records += seg.Records
		res.Cycles += seg.Cycles
	}
	return res, nil
}

// ReplayShardedFile is ReplaySharded over an image file on disk.
func ReplayShardedFile(path string, opt ShardedOptions) (*ShardedResult, error) {
	return ReplaySharded(func() (io.ReadSeeker, error) { return os.Open(path) }, opt)
}

// replaySegment replays chunks [lo, hi) on a fresh framework — cold-booted,
// or forked from the warm seed snapshot — and returns its stats registry,
// record count and final clock.
func replaySegment(ix *trace.ChunkIndex, open func() (io.ReadSeeker, error), lo, hi int, cfg machine.Config, seed *Snapshot, report func(delta int)) (*sim.Stats, int, sim.Cycles, error) {
	rs, err := open()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("opening trace: %w", err)
	}
	defer closeReader(rs)
	src, err := ix.OpenRange(rs, lo, hi)
	if err != nil {
		return nil, 0, 0, err
	}
	defer src.Close()
	var f *Framework
	var rep *Replay
	if seed != nil {
		f, rep, err = RunFromSnapshot(seed, src)
	} else {
		f = New(cfg)
		_, rep, err = f.LaunchStream(src)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	// Seed the replay clock with the segment's base period: the first
	// record advances the machine by its in-segment delta, not by its
	// absolute period — every segment starts at local time zero, which is
	// what makes the grain (and not the shard count) define the results.
	if lo < hi {
		rep.lastPeriod = ix.Chunks[lo].BasePeriod
	}
	if report != nil {
		last := 0
		rep.OnStep = func(consumed, total int) {
			if consumed > last {
				report(consumed - last)
				last = consumed
			}
		}
	}
	if err := rep.Run(); err != nil {
		return nil, 0, 0, err
	}
	if err := rep.Teardown(); err != nil {
		return nil, 0, 0, err
	}
	return f.M.Stats, rep.Consumed(), f.M.Clock.Now(), nil
}

func closeReader(rs io.ReadSeeker) {
	if c, ok := rs.(io.Closer); ok {
		c.Close()
	}
}

// forEachSegment fans fn(0..n-1) over at most workers goroutines, each
// index exactly once, writing only its own slot; the returned error is the
// lowest-index failure so the outcome is scheduling-independent. (Local
// clone of the bench worker pool — bench imports core, so core cannot
// import it back.)
func forEachSegment(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
