package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kindle/internal/machine"
	"kindle/internal/trace"
)

// shardedImageFile encodes img as a v2 file with small chunks so even the
// test trace splits into plenty of segments.
func shardedImageFile(t *testing.T, img *trace.Image, chunkRecords int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.kt2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, img, trace.StreamOptions{ChunkRecords: chunkRecords}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedStatsIdentity pins the tentpole determinism claim: N-shard
// merged stats dumps are byte-identical to the 1-shard run, with the fast
// paths both on and off. The shard count must select concurrency only —
// never results.
func TestShardedStatsIdentity(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	for _, disable := range []bool{false, true} {
		name := "fastpaths"
		if disable {
			name = "slowpaths"
		}
		t.Run(name, func(t *testing.T) {
			cfg := machine.TestConfig()
			cfg.DisableFastPaths = disable
			opt := ShardedOptions{SegmentChunks: 3, Config: &cfg}

			opt.Shards = 1
			base, err := ReplayShardedFile(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			baseDump := base.Stats.Dump("")
			if baseDump == "" {
				t.Fatal("1-shard run produced an empty stats dump")
			}
			var baseFile bytes.Buffer
			if err := base.Stats.WriteStatsFile(&baseFile); err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 4} {
				opt.Shards = shards
				got, err := ReplayShardedFile(path, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Records != base.Records {
					t.Fatalf("%d shards replayed %d records, 1 shard %d", shards, got.Records, base.Records)
				}
				if dump := got.Stats.Dump(""); dump != baseDump {
					t.Fatalf("%d-shard merged dump diverged from 1-shard", shards)
				}
				var gotFile bytes.Buffer
				if err := got.Stats.WriteStatsFile(&gotFile); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotFile.Bytes(), baseFile.Bytes()) {
					t.Fatalf("%d-shard stats file diverged from 1-shard", shards)
				}
				// Per-segment registries must be N-independent too.
				if len(got.Segments) != len(base.Segments) {
					t.Fatalf("%d shards produced %d segments, 1 shard %d", shards, len(got.Segments), len(base.Segments))
				}
				for i := range got.Segments {
					if got.Segments[i].Stats.Dump("") != base.Segments[i].Stats.Dump("") {
						t.Fatalf("%d shards: segment %d stats diverged", shards, i)
					}
				}
			}
		})
	}
}

// TestShardedSegmentation checks the partition covers the trace exactly
// once at the configured grain.
func TestShardedSegmentation(t *testing.T) {
	img := smallImage(t)
	path := shardedImageFile(t, img, 1024)
	cfg := machine.TestConfig()
	res, err := ReplayShardedFile(path, ShardedOptions{Shards: 2, SegmentChunks: 4, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != len(img.Records) {
		t.Fatalf("replayed %d records, trace holds %d", res.Records, len(img.Records))
	}
	nChunks := (len(img.Records) + 1023) / 1024
	wantSegs := (nChunks + 3) / 4
	if len(res.Segments) != wantSegs {
		t.Fatalf("%d segments, want %d", len(res.Segments), wantSegs)
	}
	next := 0
	total := 0
	for i, seg := range res.Segments {
		if seg.Lo != next {
			t.Fatalf("segment %d starts at chunk %d, want %d", i, seg.Lo, next)
		}
		if seg.Hi <= seg.Lo {
			t.Fatalf("segment %d empty range [%d, %d)", i, seg.Lo, seg.Hi)
		}
		next = seg.Hi
		total += seg.Records
	}
	if next != nChunks {
		t.Fatalf("segments cover %d chunks, trace holds %d", next, nChunks)
	}
	if total != res.Records {
		t.Fatalf("segment records sum to %d, result says %d", total, res.Records)
	}
}

// TestShardedProgress checks OnProgress reports monotonically to the exact
// total.
func TestShardedProgress(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	cfg := machine.TestConfig()
	var mu = make(chan struct{}, 1)
	maxDone, calls, lastTotal := 0, 0, 0
	_, err := ReplayShardedFile(path, ShardedOptions{
		Shards: 2, SegmentChunks: 2, Config: &cfg,
		OnProgress: func(done, total int) {
			mu <- struct{}{}
			if done > maxDone {
				maxDone = done
			}
			calls++
			lastTotal = total
			<-mu
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if maxDone != 20_000 || lastTotal != 20_000 {
		t.Fatalf("progress peaked at %d/%d, want 20000/20000", maxDone, lastTotal)
	}
}

// TestShardedRejectsCorruptTrace checks scan-time and replay-time failures
// surface as errors, not hangs or partial results.
func TestShardedRejectsCorruptTrace(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.kt2")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := machine.TestConfig()
	if _, err := ReplayShardedFile(torn, ShardedOptions{Shards: 2, Config: &cfg}); err == nil {
		t.Fatal("sharded replay of a torn trace succeeded")
	}
	if _, err := ReplayShardedFile(filepath.Join(t.TempDir(), "missing.kt2"), ShardedOptions{Config: &cfg}); err == nil {
		t.Fatal("sharded replay of a missing file succeeded")
	}
}
