package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kindle/internal/machine"
	"kindle/internal/trace"
)

// shardedImageFile encodes img as a v2 file with small chunks so even the
// test trace splits into plenty of segments.
func shardedImageFile(t *testing.T, img *trace.Image, chunkRecords int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.kt2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, img, trace.StreamOptions{ChunkRecords: chunkRecords}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedStatsIdentity pins the tentpole determinism claim: N-shard
// merged stats dumps are byte-identical to the 1-shard run, with the fast
// paths both on and off. The shard count must select concurrency only —
// never results.
func TestShardedStatsIdentity(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	for _, disable := range []bool{false, true} {
		name := "fastpaths"
		if disable {
			name = "slowpaths"
		}
		t.Run(name, func(t *testing.T) {
			cfg := machine.TestConfig()
			cfg.DisableFastPaths = disable
			opt := ShardedOptions{SegmentChunks: 3, Config: &cfg}

			opt.Shards = 1
			base, err := ReplayShardedFile(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			baseDump := base.Stats.Dump("")
			if baseDump == "" {
				t.Fatal("1-shard run produced an empty stats dump")
			}
			var baseFile bytes.Buffer
			if err := base.Stats.WriteStatsFile(&baseFile); err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 4} {
				opt.Shards = shards
				got, err := ReplayShardedFile(path, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Records != base.Records {
					t.Fatalf("%d shards replayed %d records, 1 shard %d", shards, got.Records, base.Records)
				}
				if dump := got.Stats.Dump(""); dump != baseDump {
					t.Fatalf("%d-shard merged dump diverged from 1-shard", shards)
				}
				var gotFile bytes.Buffer
				if err := got.Stats.WriteStatsFile(&gotFile); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotFile.Bytes(), baseFile.Bytes()) {
					t.Fatalf("%d-shard stats file diverged from 1-shard", shards)
				}
				// Per-segment registries must be N-independent too.
				if len(got.Segments) != len(base.Segments) {
					t.Fatalf("%d shards produced %d segments, 1 shard %d", shards, len(got.Segments), len(base.Segments))
				}
				for i := range got.Segments {
					if got.Segments[i].Stats.Dump("") != base.Segments[i].Stats.Dump("") {
						t.Fatalf("%d shards: segment %d stats diverged", shards, i)
					}
				}
			}
		})
	}
}

// TestShardedWarmForkIdentity pins the snapshot-seeded sharding claim:
// segments forked from the shared boot snapshot produce dumps
// byte-identical to cold-booted segments, at every shard count, under the
// stepped and the event-driven clock alike.
func TestShardedWarmForkIdentity(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	for _, eventClock := range []bool{false, true} {
		name := "stepped"
		if eventClock {
			name = "event-clock"
		}
		t.Run(name, func(t *testing.T) {
			cfg := machine.TestConfig()
			cfg.EventDrivenClock = eventClock
			opt := ShardedOptions{Shards: 1, SegmentChunks: 3, Config: &cfg}
			cold, err := ReplayShardedFile(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			coldDump := cold.Stats.Dump("")
			for _, shards := range []int{1, 2, 4} {
				opt.Shards = shards
				opt.WarmFork = true
				warm, err := ReplayShardedFile(path, opt)
				if err != nil {
					t.Fatal(err)
				}
				if warm.Records != cold.Records {
					t.Fatalf("warm fork at %d shards replayed %d records, cold %d",
						shards, warm.Records, cold.Records)
				}
				if warm.Cycles != cold.Cycles {
					t.Fatalf("warm fork at %d shards: %d cycles, cold %d",
						shards, warm.Cycles, cold.Cycles)
				}
				if dump := warm.Stats.Dump(""); dump != coldDump {
					t.Fatalf("warm-forked %d-shard dump diverged from cold boot", shards)
				}
				for i := range warm.Segments {
					if warm.Segments[i].Cycles != cold.Segments[i].Cycles {
						t.Fatalf("segment %d: warm clock %d, cold %d",
							i, warm.Segments[i].Cycles, cold.Segments[i].Cycles)
					}
				}
			}
		})
	}
}

// TestShardedDegenerateInputs pins the zero-record and
// fewer-chunks-than-grain regressions: both must produce the same
// (non-empty) dump as a 1-shard run, not an empty or partial stats file.
// A v2 trace with no records has no chunks at all, so the partition used
// to come out empty and the merged result carried a bare sim.NewStats()
// with none of the boot-time registry a real machine dumps.
func TestShardedDegenerateInputs(t *testing.T) {
	full := smallImage(t)
	empty := &trace.Image{Benchmark: full.Benchmark, Areas: full.Areas}
	tiny := &trace.Image{Benchmark: full.Benchmark, Areas: full.Areas,
		Records: full.Records[:100]}

	cases := []struct {
		name         string
		img          *trace.Image
		chunkRecords int
	}{
		// Zero records: zero chunks, the partition must still boot one
		// machine per the `-shards 1` contract.
		{"zero-records", empty, 1024},
		// 100 records in one 1024-record chunk with an 8-chunk grain:
		// a single segment smaller than the grain.
		{"fewer-chunks-than-grain", tiny, 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := shardedImageFile(t, tc.img, tc.chunkRecords)
			cfg := machine.TestConfig()
			opt := ShardedOptions{Shards: 1, SegmentChunks: 8, Config: &cfg}
			base, err := ReplayShardedFile(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			if base.Records != len(tc.img.Records) {
				t.Fatalf("1 shard replayed %d records, trace holds %d", base.Records, len(tc.img.Records))
			}
			baseDump := base.Stats.Dump("")
			if baseDump == "" {
				t.Fatal("1-shard run produced an empty stats dump")
			}
			// The dump must carry a booted machine's registry, not a bare
			// merged-stats shell.
			if !strings.Contains(baseDump, "nvm.write") {
				t.Fatal("1-shard dump is missing boot-time registry stats")
			}
			if len(base.Segments) != 1 {
				t.Fatalf("1 shard produced %d segments, want 1", len(base.Segments))
			}
			for _, shards := range []int{2, 4} {
				opt.Shards = shards
				got, err := ReplayShardedFile(path, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Records != base.Records {
					t.Fatalf("%d shards replayed %d records, 1 shard %d", shards, got.Records, base.Records)
				}
				if dump := got.Stats.Dump(""); dump != baseDump {
					t.Fatalf("%d-shard dump diverged from 1-shard on %s input", shards, tc.name)
				}
			}
		})
	}
}

// TestShardedSegmentation checks the partition covers the trace exactly
// once at the configured grain.
func TestShardedSegmentation(t *testing.T) {
	img := smallImage(t)
	path := shardedImageFile(t, img, 1024)
	cfg := machine.TestConfig()
	res, err := ReplayShardedFile(path, ShardedOptions{Shards: 2, SegmentChunks: 4, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != len(img.Records) {
		t.Fatalf("replayed %d records, trace holds %d", res.Records, len(img.Records))
	}
	nChunks := (len(img.Records) + 1023) / 1024
	wantSegs := (nChunks + 3) / 4
	if len(res.Segments) != wantSegs {
		t.Fatalf("%d segments, want %d", len(res.Segments), wantSegs)
	}
	next := 0
	total := 0
	for i, seg := range res.Segments {
		if seg.Lo != next {
			t.Fatalf("segment %d starts at chunk %d, want %d", i, seg.Lo, next)
		}
		if seg.Hi <= seg.Lo {
			t.Fatalf("segment %d empty range [%d, %d)", i, seg.Lo, seg.Hi)
		}
		next = seg.Hi
		total += seg.Records
	}
	if next != nChunks {
		t.Fatalf("segments cover %d chunks, trace holds %d", next, nChunks)
	}
	if total != res.Records {
		t.Fatalf("segment records sum to %d, result says %d", total, res.Records)
	}
}

// TestShardedProgress checks OnProgress reports monotonically to the exact
// total.
func TestShardedProgress(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	cfg := machine.TestConfig()
	var mu = make(chan struct{}, 1)
	maxDone, calls, lastTotal := 0, 0, 0
	_, err := ReplayShardedFile(path, ShardedOptions{
		Shards: 2, SegmentChunks: 2, Config: &cfg,
		OnProgress: func(done, total int) {
			mu <- struct{}{}
			if done > maxDone {
				maxDone = done
			}
			calls++
			lastTotal = total
			<-mu
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if maxDone != 20_000 || lastTotal != 20_000 {
		t.Fatalf("progress peaked at %d/%d, want 20000/20000", maxDone, lastTotal)
	}
}

// TestShardedRejectsCorruptTrace checks scan-time and replay-time failures
// surface as errors, not hangs or partial results.
func TestShardedRejectsCorruptTrace(t *testing.T) {
	path := shardedImageFile(t, smallImage(t), 1024)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.kt2")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := machine.TestConfig()
	if _, err := ReplayShardedFile(torn, ShardedOptions{Shards: 2, Config: &cfg}); err == nil {
		t.Fatal("sharded replay of a torn trace succeeded")
	}
	if _, err := ReplayShardedFile(filepath.Join(t.TempDir(), "missing.kt2"), ShardedOptions{Config: &cfg}); err == nil {
		t.Fatal("sharded replay of a missing file succeeded")
	}
}
