package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

func smallImage(t testing.TB) *trace.Image {
	t.Helper()
	cfg := workloads.SmallYCSB()
	cfg.Ops = 20_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPrepare(t *testing.T) {
	img, err := Prepare(BenchPageRank, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.Benchmark != BenchPageRank {
		t.Fatal("wrong image")
	}
	if _, err := Prepare("bogus", true); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestLaunchInitMapsAreas(t *testing.T) {
	f := NewSmall()
	img := smallImage(t)
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every traced area has a VMA of the right kind.
	for i, a := range img.Areas {
		v := p.AS.Find(rep.bases[i])
		if v == nil {
			t.Fatalf("area %q unmapped", a.Name)
		}
		wantKind := mem.DRAM
		if a.NVM {
			wantKind = mem.NVM
		}
		if v.Kind != wantKind {
			t.Fatalf("area %q kind %v, want %v", a.Name, v.Kind, wantKind)
		}
	}
	lo, hi := rep.NVMRange()
	if lo == 0 || hi <= lo {
		t.Fatalf("NVM range [%#x, %#x)", lo, hi)
	}
}

func TestReplayRunsToCompletion(t *testing.T) {
	f := NewSmall()
	img := smallImage(t)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	before := f.M.Clock.Now()
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Done() || rep.Remaining() != 0 {
		t.Fatal("replay not done")
	}
	if f.M.Clock.Now() <= before {
		t.Fatal("replay consumed no simulated time")
	}
	if f.M.Stats.Get("cpu.load") == 0 || f.M.Stats.Get("cpu.store") == 0 {
		t.Fatal("no accesses recorded")
	}
	if err := rep.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayStepIncrements(t *testing.T) {
	f := NewSmall()
	img := smallImage(t)
	_, rep, _ := f.LaunchInit(img)
	done, err := rep.Step(100)
	if err != nil || done {
		t.Fatalf("step: done=%v err=%v", done, err)
	}
	if rep.Remaining() != len(img.Records)-100 {
		t.Fatalf("remaining = %d", rep.Remaining())
	}
}

func TestReplayDeterministic(t *testing.T) {
	run := func() uint64 {
		f := NewSmall()
		img := smallImage(t)
		_, rep, _ := f.LaunchInit(img)
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		return uint64(f.M.Clock.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic replay: %d vs %d cycles", a, b)
	}
}

func TestEndToEndPersistenceCrashRecover(t *testing.T) {
	f := NewSmall()
	mgr, err := f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	img := smallImage(t)
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	mgr.Checkpoint()
	mappedBefore := p.Table.Mapped()
	if mappedBefore == 0 {
		t.Fatal("nothing mapped after replay")
	}
	f.Crash()
	procs, err := f.Recover(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].Name != img.Benchmark {
		t.Fatalf("recovered: %v", procs)
	}
	// NVM mappings survive; DRAM (stack) mappings refault.
	nvmPages := 0
	for _, a := range img.Areas {
		if a.NVM {
			nvmPages += int(a.Size / mem.PageSize)
		}
	}
	if got := procs[0].Table.Mapped(); got == 0 || got > mappedBefore {
		t.Fatalf("recovered mappings = %d (before crash %d)", got, mappedBefore)
	}
}

func TestPersistentSchemeEndToEnd(t *testing.T) {
	f := NewSmall()
	mgr, err := f.EnablePersistence(persist.Persistent, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	img := smallImage(t)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	mgr.Checkpoint()
	f.Crash()
	procs, err := f.Recover(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 {
		t.Fatalf("recovered %d", len(procs))
	}
	if procs[0].Table.Kind() != mem.NVM {
		t.Fatal("persistent table not NVM after recovery")
	}
}

func TestRecoveredReplayContinues(t *testing.T) {
	// A recovered process can keep executing against its recovered
	// address space.
	f := NewSmall()
	f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
	img := smallImage(t)
	_, rep, _ := f.LaunchInit(img)
	rep.Step(5000)
	f.Manager().Checkpoint()
	f.Crash()
	procs, err := f.Recover(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rp := procs[0]
	f.K.Switch(rp)
	// Touch a recovered NVM page.
	var nvmVA uint64
	rp.AS.All()
	for _, v := range rp.AS.All() {
		if v.Kind == mem.NVM {
			nvmVA = v.Start
			break
		}
	}
	if nvmVA == 0 {
		t.Fatal("no NVM VMA after recovery")
	}
	if _, err := f.M.Core.Access(nvmVA, false, 8); err != nil {
		t.Fatalf("access after recovery: %v", err)
	}
}

func BenchmarkReplayYCSB(b *testing.B) {
	f := NewSmall()
	cfg := workloads.SmallYCSB()
	cfg.Ops = b.N
	if cfg.Ops < 1000 {
		cfg.Ops = 1000
	}
	img, _ := workloads.YCSB(cfg)
	_, rep, _ := f.LaunchInit(img)
	b.ResetTimer()
	if err := rep.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestRebindAfterRecovery(t *testing.T) {
	f := NewSmall()
	f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
	img := smallImage(t)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	rep.Step(5000)
	f.Manager().Checkpoint()
	f.Crash()
	procs, err := f.Recover(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Rebind(procs[0]); err != nil {
		t.Fatal(err)
	}
	if rep.P != procs[0] {
		t.Fatal("Rebind did not switch process")
	}
	// Replay continues against the recovered address space.
	if _, err := rep.Step(1000); err != nil {
		t.Fatalf("post-rebind step: %v", err)
	}
}

func TestRebindRejectsForeignProcess(t *testing.T) {
	f := NewSmall()
	img := smallImage(t)
	_, rep, _ := f.LaunchInit(img)
	stranger, _ := f.K.Spawn("stranger")
	if err := rep.Rebind(stranger); err == nil {
		t.Fatal("Rebind accepted a process without the replay areas")
	}
}

func TestRepeatedCrashRestartValidation(t *testing.T) {
	// The paper's §V-A validation: "crashing and restarting the
	// application multiple times". Replay a workload; every fifth of the
	// trace, checkpoint, crash, recover, rebind, and continue. The replay
	// must complete and the recovered process must stay usable throughout.
	f := NewSmall()
	if _, err := f.EnablePersistence(persist.Persistent, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	img := smallImage(t)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	f.Manager().Start()
	chunk := len(img.Records) / 5
	for round := 0; round < 4; round++ {
		if _, err := rep.Step(chunk); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f.Manager().Checkpoint()
		f.Crash()
		procs, err := f.Recover(5 * time.Millisecond)
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		if len(procs) != 1 {
			t.Fatalf("round %d: %d processes", round, len(procs))
		}
		if err := rep.Rebind(procs[0]); err != nil {
			t.Fatalf("round %d rebind: %v", round, err)
		}
		f.K.Switch(procs[0])
		f.Manager().Start()
	}
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Done() {
		t.Fatal("trace not completed across 4 crashes")
	}
	if f.M.BootGeneration() != 4 {
		t.Fatalf("boot generation = %d", f.M.BootGeneration())
	}
}

// TestStreamReplayMatchesMaterialized pins result determinism across the
// two replay paths: streaming a v2-encoded image through LaunchStream must
// produce exactly the simulated clock and statistics of replaying the
// materialized image, chunk boundaries and read-ahead notwithstanding.
func TestStreamReplayMatchesMaterialized(t *testing.T) {
	img := smallImage(t)

	runMaterialized := func() (uint64, string) {
		f := NewSmall()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		return uint64(f.M.Clock.Now()), f.M.Stats.Dump("")
	}
	runStreamed := func(chunk int) (uint64, string) {
		var buf bytes.Buffer
		if err := trace.EncodeV2(&buf, img, trace.StreamOptions{ChunkRecords: chunk}); err != nil {
			t.Fatal(err)
		}
		src, err := trace.OpenStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		f := NewSmall()
		_, rep, err := f.LaunchStream(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Consumed() != len(img.Records) {
			t.Fatalf("streamed %d of %d records", rep.Consumed(), len(img.Records))
		}
		return uint64(f.M.Clock.Now()), f.M.Stats.Dump("")
	}

	wantClock, wantStats := runMaterialized()
	for _, chunk := range []int{0, 777} { // default chunking and an odd size
		gotClock, gotStats := runStreamed(chunk)
		if gotClock != wantClock {
			t.Fatalf("chunk %d: clock %d != materialized %d", chunk, gotClock, wantClock)
		}
		if gotStats != wantStats {
			t.Fatalf("chunk %d: stats diverge from materialized replay", chunk)
		}
	}
}

// TestLaunchStreamUnknownTotal replays through a source that cannot report
// its length upfront (a non-seekable v2 stream): Done/Remaining must work
// off stream exhaustion.
func TestLaunchStreamUnknownTotal(t *testing.T) {
	img := smallImage(t)
	var buf bytes.Buffer
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenStream(io.MultiReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	f := NewSmall()
	_, rep, err := f.LaunchStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != -1 || rep.Remaining() != -1 {
		t.Fatalf("total = %d, remaining = %d, want -1", rep.Total(), rep.Remaining())
	}
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Done() || rep.Consumed() != len(img.Records) {
		t.Fatalf("done=%v consumed=%d want %d", rep.Done(), rep.Consumed(), len(img.Records))
	}
}
