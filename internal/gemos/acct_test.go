package gemos

import (
	"testing"

	"kindle/internal/mem"
)

func TestAcctFaultsAndResidentPages(t *testing.T) {
	k, p := bootTest(t)
	a, err := k.Mmap(p, 0, 4*mem.PageSize, ProtRead|ProtWrite, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if _, err := k.M.Core.Access(a+i*mem.PageSize, true, 8); err != nil {
			t.Fatal(err)
		}
	}
	acct := p.Accounting()
	if acct.Faults != 4 || acct.ResidentPages != 4 {
		t.Fatalf("after 4 demand faults: Faults=%d ResidentPages=%d, want 4/4", acct.Faults, acct.ResidentPages)
	}
	// Re-touching resident pages faults nothing.
	if _, err := k.M.Core.Access(a, false, 8); err != nil {
		t.Fatal(err)
	}
	if got := p.Accounting(); got.Faults != 4 || got.ResidentPages != 4 {
		t.Fatalf("resident re-access changed accounting: %+v", got)
	}
	// Munmap returns the frames and the per-process residency with them;
	// the fault count is cumulative and stays.
	if err := k.Munmap(p, a, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.Accounting(); got.Faults != 4 || got.ResidentPages != 2 {
		t.Fatalf("after unmapping 2 resident pages: Faults=%d ResidentPages=%d, want 4/2", got.Faults, got.ResidentPages)
	}
	// Exit zeroes residency (the table is destroyed).
	k.Exit(p)
	if got := p.Accounting(); got.ResidentPages != 0 {
		t.Fatalf("after exit: ResidentPages=%d, want 0", got.ResidentPages)
	}
}

func TestAcctCPUCyclesAcrossSwitches(t *testing.T) {
	k, p1 := bootTest(t)
	p2, err := k.Spawn("other")
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.Mmap(p1, 0, mem.PageSize, ProtRead|ProtWrite, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.M.Core.Access(a, true, 8); err != nil {
		t.Fatal(err)
	}
	k.Switch(p2) // settles p1's dispatch period
	acct1 := p1.Accounting()
	if acct1.CPUCycles == 0 {
		t.Fatal("p1 ran memory work but has zero CPU cycles")
	}
	if acct1.Switches != 1 {
		t.Fatalf("p1 Switches=%d, want 1 (the initial dispatch)", acct1.Switches)
	}
	// The switch cost itself is kernel time: it lands on neither side.
	if got := p2.Accounting().CPUCycles; got != 0 {
		t.Fatalf("p2 charged %d cycles before running anything", got)
	}
	// AccountNow folds the open period without a switch.
	k.M.Clock.Advance(500)
	k.AccountNow()
	if got := p2.Accounting().CPUCycles; got != 500 {
		t.Fatalf("p2 CPUCycles=%d after AccountNow, want 500", got)
	}
	// A second AccountNow with no elapsed time adds nothing.
	k.AccountNow()
	if got := p2.Accounting().CPUCycles; got != 500 {
		t.Fatalf("AccountNow double-charged: %d", got)
	}
}

func TestParkChargesNoProcess(t *testing.T) {
	k, p := bootTest(t)
	k.AccountNow()
	before := p.Accounting().CPUCycles
	k.Park(10_000, 1000)
	k.AccountNow()
	if got := p.Accounting().CPUCycles; got != before {
		t.Fatalf("Park charged the current process: %d -> %d cycles", before, got)
	}
	// Plain Idle, by contrast, leaves the dispatch period open across the
	// dead time, so the next settle charges it.
	k.Idle(10_000, 1000)
	k.AccountNow()
	if got := p.Accounting().CPUCycles; got != before+10_000 {
		t.Fatalf("Idle+AccountNow charged %d cycles, want %d", got-before, 10_000)
	}
}

func TestSchedulerSkipsBlocked(t *testing.T) {
	k, p1 := bootTest(t)
	p2, err := k.Spawn("blocked")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(k, 1000)
	s.Add(p1)
	s.Add(p2)
	p2.State = ProcBlocked
	for i := 0; i < 3; i++ {
		if got := s.Resched(); got != p1 {
			t.Fatalf("Resched %d picked %v, want the only runnable process", i, got)
		}
	}
	p2.State = ProcReady
	picked := map[*Process]bool{}
	picked[s.Resched()] = true
	picked[s.Resched()] = true
	if !picked[p1] || !picked[p2] {
		t.Fatal("unblocked process never scheduled")
	}
	// With every process blocked, Resched reports no runnable process.
	p1.State = ProcBlocked
	p2.State = ProcBlocked
	if got := s.Resched(); got != nil {
		t.Fatalf("Resched with all blocked returned %v, want nil", got)
	}
}
