package gemos

import (
	"fmt"
	"sort"

	"kindle/internal/cpu"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

// Snapshot mirrors of the kernel state, for machine forks. Everything the
// kernel tracks outside physical memory is plain bookkeeping: the process
// table, per-process accounting, the frame-pool cursors and free lists.
// Page-table contents, the persisted NVM allocation bitmap and all user
// data already ride in the copy-on-write frame store the machine snapshot
// carries, so the kernel mirror is small and O(processes + free lists).
//
// Free lists are captured in LIFO order, not sorted: allocation pops from
// the tail, so reordering them would hand out different frames after a
// fork than the parent would have — byte-identity requires the exact
// stack.

// ProcessState mirrors one process control block.
type ProcessState struct {
	PID          int
	Name         string
	State        ProcState
	Regs         cpu.Registers
	VMAs         []VMA // address order
	Table        pt.State
	MmapCursor   uint64
	Slot         int
	Recovered    bool
	Acct         Acct
	DispatchedAt sim.Cycles
}

// AllocState mirrors the frame allocator's mutable state. Pool bounds and
// the bitmap base are derived from the layout on restore.
type AllocState struct {
	DRAMNext uint64
	DRAMFree []uint64 // LIFO order
	NVMNext  uint64
	NVMFree  []uint64 // LIFO order
	Alloced  []uint64 // sorted (map mirror)
	DeferNVM bool
	Deferred []uint64 // FIFO order (flushed front to back)
}

// KernelState mirrors the whole kernel: process table (PID-sorted),
// scheduler current, allocator pools. Persistence-layer wiring (PTEHook,
// Meta, OnSpawn/OnExit, slots' backing areas) is not captured here — the
// persistence manager has its own capture/restore that re-wires those
// after RestoreKernel.
type KernelState struct {
	NextPID    int
	CurrentPID int // 0 = none running
	PTKind     mem.Kind
	Procs      []ProcessState
	Alloc      AllocState
}

func (a *FrameAllocator) captureState() AllocState {
	st := AllocState{
		DRAMNext: a.dramNext,
		DRAMFree: append([]uint64(nil), a.dramFree...),
		NVMNext:  a.nvmNext,
		NVMFree:  append([]uint64(nil), a.nvmFree...),
		DeferNVM: a.deferNVM,
		Deferred: append([]uint64(nil), a.deferred...),
	}
	st.Alloced = make([]uint64, 0, len(a.allocated))
	for pfn := range a.allocated {
		st.Alloced = append(st.Alloced, pfn)
	}
	sort.Slice(st.Alloced, func(i, j int) bool { return st.Alloced[i] < st.Alloced[j] })
	return st
}

func (a *FrameAllocator) restoreState(st AllocState) {
	a.dramNext = st.DRAMNext
	a.dramFree = append([]uint64(nil), st.DRAMFree...)
	a.nvmNext = st.NVMNext
	a.nvmFree = append([]uint64(nil), st.NVMFree...)
	a.allocated = make(map[uint64]bool, len(st.Alloced))
	for _, pfn := range st.Alloced {
		a.allocated[pfn] = true
	}
	a.deferNVM = st.DeferNVM
	a.deferred = append([]uint64(nil), st.Deferred...)
}

func captureProcess(p *Process) ProcessState {
	ps := ProcessState{
		PID:          p.PID,
		Name:         p.Name,
		State:        p.State,
		Regs:         p.Regs,
		Table:        p.Table.CaptureState(),
		MmapCursor:   p.mmapCursor,
		Slot:         p.Slot,
		Recovered:    p.Recovered,
		Acct:         p.acct,
		DispatchedAt: p.dispatchedAt,
	}
	vmas := p.AS.All()
	ps.VMAs = make([]VMA, len(vmas))
	for i, v := range vmas {
		ps.VMAs[i] = *v
	}
	return ps
}

// CaptureState copies the kernel's bookkeeping. The current process's live
// register file is in the core (captured with the machine state), so its
// saved Regs here may be stale — RestoreKernel puts the core's registers
// back the same way, so the pair round-trips exactly.
func (k *Kernel) CaptureState() KernelState {
	st := KernelState{
		NextPID: k.nextPID,
		PTKind:  k.PTKind,
		Alloc:   k.Alloc.captureState(),
	}
	if k.current != nil {
		st.CurrentPID = k.current.PID
	}
	st.Procs = make([]ProcessState, 0, len(k.procs))
	for _, p := range k.procs {
		st.Procs = append(st.Procs, captureProcess(p))
	}
	sort.Slice(st.Procs, func(i, j int) bool { return st.Procs[i].PID < st.Procs[j].PID })
	return st
}

// RestoreKernel boots a kernel on a machine restored from a snapshot and
// overlays the captured kernel state: the allocator pools resume exactly
// where the parent's were, every process is rebuilt with its page-table
// handle pointing into the (already restored) frame store, and the PTBR is
// pointed at the current process without the TLB flush a live Switch
// performs — the restored TLB contents already describe that address
// space.
//
// Persistence wiring (PTEHook, Meta, OnSpawn/OnExit, per-table write
// hooks) is deliberately left at boot defaults; persist.RestoreManager
// reinstalls it when a persistence scheme was attached.
func RestoreKernel(m *machine.Machine, st KernelState) (*Kernel, error) {
	k := Boot(m)
	k.nextPID = st.NextPID
	k.PTKind = st.PTKind
	k.Alloc.restoreState(st.Alloc)
	for i := range st.Procs {
		ps := &st.Procs[i]
		p := &Process{
			PID:          ps.PID,
			Name:         ps.Name,
			State:        ps.State,
			Regs:         ps.Regs,
			Table:        pt.FromState(ps.Table, m, k.Alloc, m.Stats),
			mmapCursor:   ps.MmapCursor,
			Slot:         ps.Slot,
			Recovered:    ps.Recovered,
			acct:         ps.Acct,
			dispatchedAt: ps.DispatchedAt,
		}
		for j := range ps.VMAs {
			v := ps.VMAs[j]
			if err := p.AS.Insert(&v); err != nil {
				return nil, fmt.Errorf("gemos: restore pid %d: %w", ps.PID, err)
			}
		}
		k.procs[p.PID] = p
	}
	if st.CurrentPID != 0 {
		p := k.procs[st.CurrentPID]
		if p == nil {
			return nil, fmt.Errorf("gemos: restore: current pid %d not in process table", st.CurrentPID)
		}
		k.current = p
		m.Core.RestoreAddressSpace(p.Table)
	}
	return k, nil
}
