package gemos

import (
	"errors"
	"fmt"
	"sort"

	"kindle/internal/machine"
	"kindle/internal/mem"
)

// ErrOutOfMemory is returned when a pool is exhausted.
var ErrOutOfMemory = errors.New("gemos: out of physical frames")

// FrameAllocator manages the DRAM and NVM physical frame pools.
//
// Following the paper ("we also modify the physical page allocation
// mechanism in gemOS to persist the page allocation meta-data to ensure
// correctness after crash and reboot"), NVM allocations are recorded in a
// persistent bitmap that itself lives in NVM: every NVM alloc/free performs
// a timed read-modify-write of the bitmap word plus a clwb, so the metadata
// is durable and the allocator can be reconstructed after a crash.
type FrameAllocator struct {
	m      *machine.Machine
	layout mem.Layout

	dramNext, dramMax uint64
	dramFree          []uint64

	nvmNext, nvmMax uint64
	nvmFree         []uint64
	nvmPoolStart    uint64 // first pool pfn (after the reserved meta region)

	bitmapBase mem.PhysAddr // persisted NVM allocation bitmap

	allocated map[uint64]bool // double-alloc/free guard (volatile)

	// Deferred reclamation: while enabled (process persistence attached),
	// NVM frees do not clear the persisted bitmap or return the frame to
	// the pool until FlushDeferredFrees — otherwise a crash between a
	// munmap and the next checkpoint would leave the checkpoint-consistent
	// saved state referencing frames the allocator considers free (or,
	// worse, already reused).
	deferNVM bool
	deferred []uint64
}

// NewFrameAllocator builds the allocator. reservedNVM bytes at the start of
// the NVM region are carved out for persistence structures (boot record,
// this bitmap, saved states, logs) and never handed to the pool.
// bitmapBase must point inside that reserved region.
func NewFrameAllocator(m *machine.Machine, layout mem.Layout, reservedNVM uint64, bitmapBase mem.PhysAddr) *FrameAllocator {
	poolStart := mem.FrameNumber(layout.NVMBase + mem.PhysAddr(reservedNVM))
	return &FrameAllocator{
		m:            m,
		layout:       layout,
		dramNext:     mem.FrameNumber(layout.DRAMBase),
		dramMax:      mem.FrameNumber(layout.DRAMBase + mem.PhysAddr(layout.DRAMSize)),
		nvmNext:      poolStart,
		nvmMax:       mem.FrameNumber(layout.NVMBase + mem.PhysAddr(layout.NVMSize)),
		nvmPoolStart: poolStart,
		bitmapBase:   bitmapBase,
		// Modestly presized: enough to skip the first few grow/rehash
		// rounds on the fault path without paying a large up-front bucket
		// array at every machine construction.
		allocated: make(map[uint64]bool, 1<<9),
	}
}

// bitmapWord returns the address of the bitmap uint64 covering pool pfn and
// the bit index within it.
func (a *FrameAllocator) bitmapWord(pfn uint64) (mem.PhysAddr, uint) {
	idx := pfn - a.nvmPoolStart
	return a.bitmapBase + mem.PhysAddr((idx/64)*8), uint(idx % 64)
}

// markNVM persists the allocation state of pfn: timed RMW + clwb + commit.
func (a *FrameAllocator) markNVM(pfn uint64, used bool) {
	wa, bit := a.bitmapWord(pfn)
	a.m.AccessTimed(wa, false)
	w := a.m.LoadU64(wa)
	if used {
		w |= 1 << bit
	} else {
		w &^= 1 << bit
	}
	a.m.AccessTimed(wa, true)
	a.m.StoreU64(wa, w)
	a.m.Core.Clwb(wa)
}

// AllocFrame satisfies pt.FrameAllocator.
func (a *FrameAllocator) AllocFrame(kind mem.Kind) (uint64, error) {
	var pfn uint64
	switch kind {
	case mem.DRAM:
		if n := len(a.dramFree); n > 0 {
			pfn = a.dramFree[n-1]
			a.dramFree = a.dramFree[:n-1]
		} else if a.dramNext < a.dramMax {
			pfn = a.dramNext
			a.dramNext++
		} else {
			return 0, fmt.Errorf("%w (DRAM)", ErrOutOfMemory)
		}
	case mem.NVM:
		if n := len(a.nvmFree); n > 0 {
			pfn = a.nvmFree[n-1]
			a.nvmFree = a.nvmFree[:n-1]
		} else if a.nvmNext < a.nvmMax {
			pfn = a.nvmNext
			a.nvmNext++
		} else {
			return 0, fmt.Errorf("%w (NVM)", ErrOutOfMemory)
		}
		a.markNVM(pfn, true)
	default:
		return 0, fmt.Errorf("gemos: alloc of kind %v", kind)
	}
	if a.allocated[pfn] {
		panic(fmt.Sprintf("gemos: frame %#x double-allocated", pfn))
	}
	a.allocated[pfn] = true
	return pfn, nil
}

// FreeFrame satisfies pt.FrameAllocator; the kind is derived from the
// address.
func (a *FrameAllocator) FreeFrame(pfn uint64) {
	if !a.allocated[pfn] {
		panic(fmt.Sprintf("gemos: frame %#x freed but not allocated", pfn))
	}
	switch a.layout.KindOf(mem.FrameBase(pfn)) {
	case mem.DRAM:
		delete(a.allocated, pfn)
		a.dramFree = append(a.dramFree, pfn)
	case mem.NVM:
		if a.deferNVM {
			// Keep the frame reserved (and the bitmap bit set) until the
			// next checkpoint commits; see FlushDeferredFrees.
			a.deferred = append(a.deferred, pfn)
			return
		}
		delete(a.allocated, pfn)
		a.markNVM(pfn, false)
		a.nvmFree = append(a.nvmFree, pfn)
	default:
		panic(fmt.Sprintf("gemos: free of unmapped frame %#x", pfn))
	}
}

// SetDeferNVMFrees toggles deferred NVM reclamation (enabled by the
// persistence manager).
func (a *FrameAllocator) SetDeferNVMFrees(on bool) { a.deferNVM = on }

// FlushDeferredFrees makes all deferred NVM frees effective: the persisted
// bitmap bits clear and the frames return to the pool. The persistence
// manager calls this after a checkpoint's consistent-copy flip commits, so
// the durable allocator metadata never runs ahead of the durable process
// metadata.
func (a *FrameAllocator) FlushDeferredFrees() int {
	n := len(a.deferred)
	for _, pfn := range a.deferred {
		delete(a.allocated, pfn)
		a.markNVM(pfn, false)
		a.nvmFree = append(a.nvmFree, pfn)
	}
	a.deferred = a.deferred[:0]
	return n
}

// DeferredFrees reports pending deferred frees (tests).
func (a *FrameAllocator) DeferredFrees() int { return len(a.deferred) }

// ReclaimUnreferenced sweeps the NVM pool after recovery: every frame the
// persisted bitmap marks used but that no recovered structure references
// (referenced keys are pool PFNs) is returned to the pool. This garbage-
// collects frames that were allocated after the last checkpoint — durable
// in the bitmap but unknown to any consistent saved state.
func (a *FrameAllocator) ReclaimUnreferenced(referenced map[uint64]bool) int {
	var victims []uint64
	for pfn := range a.allocated {
		if a.layout.KindOf(mem.FrameBase(pfn)) != mem.NVM || referenced[pfn] {
			continue
		}
		victims = append(victims, pfn)
	}
	// Deterministic pool order regardless of map iteration.
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, pfn := range victims {
		delete(a.allocated, pfn)
		a.markNVM(pfn, false)
		a.nvmFree = append(a.nvmFree, pfn)
	}
	return len(victims)
}

// InUse reports whether pfn is currently allocated (volatile view).
func (a *FrameAllocator) InUse(pfn uint64) bool { return a.allocated[pfn] }

// FreeDRAM / FreeNVM report remaining capacity in frames.
func (a *FrameAllocator) FreeDRAM() uint64 {
	return a.dramMax - a.dramNext + uint64(len(a.dramFree))
}
func (a *FrameAllocator) FreeNVM() uint64 {
	return a.nvmMax - a.nvmNext + uint64(len(a.nvmFree))
}

// RecoverFromBitmap rebuilds the NVM allocator state from the persisted
// bitmap after a crash: frames with a set bit stay allocated (their data is
// owned by recovered processes), clear frames return to the pool. DRAM
// state is volatile; the DRAM pool restarts empty. The cost of scanning the
// bitmap is charged as timed reads (one per word).
func (a *FrameAllocator) RecoverFromBitmap() {
	a.allocated = make(map[uint64]bool)
	a.dramFree = nil
	a.dramNext = mem.FrameNumber(a.layout.DRAMBase)
	a.nvmFree = nil

	words := (a.nvmMax - a.nvmPoolStart + 63) / 64
	highest := a.nvmPoolStart
	for w := uint64(0); w < words; w++ {
		wa := a.bitmapBase + mem.PhysAddr(w*8)
		a.m.AccessTimed(wa, false)
		bits := a.m.LoadU64(wa)
		if bits == 0 {
			continue
		}
		for b := uint(0); b < 64; b++ {
			if bits&(1<<b) == 0 {
				continue
			}
			pfn := a.nvmPoolStart + w*64 + uint64(b)
			if pfn >= a.nvmMax {
				break
			}
			a.allocated[pfn] = true
			if pfn+1 > highest {
				highest = pfn + 1
			}
		}
	}
	// Resume bump allocation above the highest used frame; holes below it
	// go to the free list.
	a.nvmNext = highest
	for pfn := a.nvmPoolStart; pfn < highest; pfn++ {
		if !a.allocated[pfn] {
			a.nvmFree = append(a.nvmFree, pfn)
		}
	}
}
