package gemos

import (
	"fmt"

	"kindle/internal/cpu"
	"kindle/internal/pt"
)

// ProcState is a process lifecycle state.
type ProcState uint8

// Process states.
const (
	ProcReady ProcState = iota
	ProcRunning
	ProcZombie
)

func (s ProcState) String() string {
	switch s {
	case ProcReady:
		return "ready"
	case ProcRunning:
		return "running"
	default:
		return "zombie"
	}
}

// Default virtual layout constants for user processes.
const (
	// MmapBase is where anonymous mappings are placed by default.
	MmapBase = uint64(0x4000_0000)
	// StackTop is the top of the main stack area.
	StackTop = uint64(0x7FFF_FFF0_0000)
	// StackSize is the default stack reservation.
	StackSize = uint64(8 << 20)
)

// Process is one gemOS execution context.
type Process struct {
	PID   int
	Name  string
	State ProcState

	// Regs is the saved architectural state while not running; the live
	// state is in the core when this process is current.
	Regs cpu.Registers

	AS    AddressSpace
	Table *pt.Table

	mmapCursor uint64

	// Slot is the saved-state slot index assigned by the persistence
	// layer, or -1 when the process is not persisted.
	Slot int

	// Recovered marks a context recreated by crash recovery.
	Recovered bool
}

// MmapCursor returns the next-allocation hint (persisted in the saved
// state so recovered processes keep allocating above old mappings).
func (p *Process) MmapCursor() uint64 { return p.mmapCursor }

// SetMmapCursor restores the allocation hint during recovery.
func (p *Process) SetMmapCursor(v uint64) {
	if v >= MmapBase {
		p.mmapCursor = v
	}
}

func (p *Process) String() string {
	return fmt.Sprintf("pid %d (%s) %s, %d VMAs, %d pages mapped",
		p.PID, p.Name, p.State, p.AS.Count(), p.Table.Mapped())
}
