package gemos

import (
	"fmt"

	"kindle/internal/cpu"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

// ProcState is a process lifecycle state.
type ProcState uint8

// Process states.
const (
	ProcReady ProcState = iota
	ProcRunning
	ProcZombie
	// ProcBlocked marks a process waiting for work (an empty tenant queue
	// in the traffic engine, a sleeping service). The scheduler skips
	// blocked processes; setting State back to ProcReady unblocks.
	ProcBlocked
)

func (s ProcState) String() string {
	switch s {
	case ProcReady:
		return "ready"
	case ProcRunning:
		return "running"
	case ProcBlocked:
		return "blocked"
	default:
		return "zombie"
	}
}

// Acct accumulates per-process resource accounting, the OS-side view the
// multi-tenant experiments aggregate per tenant: demand faults serviced,
// pages currently resident, pages migrated on the process's behalf (HSCC),
// cycles the core spent dispatched to the process and how many times it was
// switched onto the core. The kernel maintains every field; readers take a
// copy via Process.Accounting.
type Acct struct {
	Faults        uint64
	ResidentPages uint64
	Migrations    uint64
	CPUCycles     sim.Cycles
	Switches      uint64
}

// Default virtual layout constants for user processes.
const (
	// MmapBase is where anonymous mappings are placed by default.
	MmapBase = uint64(0x4000_0000)
	// StackTop is the top of the main stack area.
	StackTop = uint64(0x7FFF_FFF0_0000)
	// StackSize is the default stack reservation.
	StackSize = uint64(8 << 20)
)

// Process is one gemOS execution context.
type Process struct {
	PID   int
	Name  string
	State ProcState

	// Regs is the saved architectural state while not running; the live
	// state is in the core when this process is current.
	Regs cpu.Registers

	AS    AddressSpace
	Table *pt.Table

	mmapCursor uint64

	// Slot is the saved-state slot index assigned by the persistence
	// layer, or -1 when the process is not persisted.
	Slot int

	// Recovered marks a context recreated by crash recovery.
	Recovered bool

	// acct is the kernel-maintained accounting; dispatchedAt is the clock
	// value when the process was last switched onto the core (valid while
	// it is current).
	acct         Acct
	dispatchedAt sim.Cycles
}

// Accounting returns a copy of the process's resource accounting. While the
// process is running, CPUCycles excludes the current dispatch period; call
// Kernel.AccountNow first to fold it in.
func (p *Process) Accounting() Acct { return p.acct }

// AccountMigrations charges n page migrations to the process. The HSCC
// prototype calls it from its migration activity.
func (p *Process) AccountMigrations(n uint64) { p.acct.Migrations += n }

// MmapCursor returns the next-allocation hint (persisted in the saved
// state so recovered processes keep allocating above old mappings).
func (p *Process) MmapCursor() uint64 { return p.mmapCursor }

// SetMmapCursor restores the allocation hint during recovery.
func (p *Process) SetMmapCursor(v uint64) {
	if v >= MmapBase {
		p.mmapCursor = v
	}
}

func (p *Process) String() string {
	return fmt.Sprintf("pid %d (%s) %s, %d VMAs, %d pages mapped",
		p.PID, p.Name, p.State, p.AS.Count(), p.Table.Mapped())
}
