package gemos

import (
	"fmt"
	"sort"

	"kindle/internal/mem"
)

// Prot is the access protection of a virtual memory area.
type Prot uint8

// Protection bits (mmap PROT_* analogues).
const (
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
)

// Mmap flags. MapNVM is the extension the paper adds to gemOS: an
// application passes it in mmap() to allocate the area from NVM.
const (
	MapNVM uint32 = 1 << 0
)

// VMA is one virtual memory area. Kindle tags each VMA as DRAM or NVM
// (from the MapNVM flag) and physical frames are allocated from the
// matching pool on demand.
type VMA struct {
	Start uint64 // inclusive, page-aligned
	End   uint64 // exclusive, page-aligned
	Prot  Prot
	Kind  mem.Kind
	Name  string
}

// Len returns the area size in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Pages returns the area size in pages.
func (v *VMA) Pages() uint64 { return v.Len() / mem.PageSize }

// Contains reports whether va falls inside the area.
func (v *VMA) Contains(va uint64) bool { return va >= v.Start && va < v.End }

func (v *VMA) String() string {
	w := "-"
	if v.Prot&ProtWrite != 0 {
		w = "w"
	}
	return fmt.Sprintf("%#x-%#x r%s %s %s", v.Start, v.End, w, v.Kind, v.Name)
}

// AddressSpace is an ordered, non-overlapping set of VMAs.
type AddressSpace struct {
	vmas []*VMA
}

// Find returns the VMA containing va, or nil.
func (as *AddressSpace) Find(va uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > va })
	if i < len(as.vmas) && as.vmas[i].Contains(va) {
		return as.vmas[i]
	}
	return nil
}

// Overlaps reports whether [start, end) intersects any VMA.
func (as *AddressSpace) Overlaps(start, end uint64) bool {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > start })
	return i < len(as.vmas) && as.vmas[i].Start < end
}

// Insert adds a VMA; it must not overlap existing areas.
func (as *AddressSpace) Insert(v *VMA) error {
	if v.Start >= v.End || v.Start%mem.PageSize != 0 || v.End%mem.PageSize != 0 {
		return fmt.Errorf("gemos: bad VMA bounds %#x-%#x", v.Start, v.End)
	}
	if as.Overlaps(v.Start, v.End) {
		return fmt.Errorf("gemos: VMA %#x-%#x overlaps existing area", v.Start, v.End)
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start > v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
	return nil
}

// RemoveRange carves [start, end) out of the address space, splitting
// partially covered VMAs. It returns the removed pieces (full page ranges
// that were previously mapped by some VMA).
func (as *AddressSpace) RemoveRange(start, end uint64) []VMA {
	var removed []VMA
	var keep []*VMA
	for _, v := range as.vmas {
		switch {
		case v.End <= start || v.Start >= end:
			keep = append(keep, v)
		case v.Start >= start && v.End <= end:
			removed = append(removed, *v)
		case v.Start < start && v.End > end:
			// Split into two.
			right := &VMA{Start: end, End: v.End, Prot: v.Prot, Kind: v.Kind, Name: v.Name}
			removed = append(removed, VMA{Start: start, End: end, Prot: v.Prot, Kind: v.Kind, Name: v.Name})
			v.End = start
			keep = append(keep, v, right)
		case v.Start < start:
			removed = append(removed, VMA{Start: start, End: v.End, Prot: v.Prot, Kind: v.Kind, Name: v.Name})
			v.End = start
			keep = append(keep, v)
		default: // v.End > end
			removed = append(removed, VMA{Start: v.Start, End: end, Prot: v.Prot, Kind: v.Kind, Name: v.Name})
			v.Start = end
			keep = append(keep, v)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].Start < keep[j].Start })
	as.vmas = keep
	return removed
}

// SetProt rewrites the protection of [start, end), splitting VMAs at the
// boundaries. It returns the areas whose protection changed.
func (as *AddressSpace) SetProt(start, end uint64, prot Prot) []VMA {
	removed := as.RemoveRange(start, end)
	var changed []VMA
	for _, r := range removed {
		nv := &VMA{Start: r.Start, End: r.End, Prot: prot, Kind: r.Kind, Name: r.Name}
		if err := as.Insert(nv); err != nil {
			panic("gemos: SetProt reinsert failed: " + err.Error())
		}
		changed = append(changed, *nv)
	}
	return changed
}

// All returns the VMAs in address order (callers must not mutate bounds).
func (as *AddressSpace) All() []*VMA { return as.vmas }

// Count returns the number of areas.
func (as *AddressSpace) Count() int { return len(as.vmas) }

// TotalPages sums pages over all areas.
func (as *AddressSpace) TotalPages() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += v.Pages()
	}
	return n
}

// FindFree locates a gap of length bytes at or above hint, page aligned.
func (as *AddressSpace) FindFree(hint, length uint64) uint64 {
	start := hint
	for _, v := range as.vmas {
		if v.End <= start {
			continue
		}
		if v.Start >= start+length {
			break
		}
		start = v.End
	}
	return start
}
