package gemos

import (
	"testing"
	"testing/quick"

	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

func bootTest(t testing.TB) (*Kernel, *Process) {
	t.Helper()
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	p, err := k.Spawn("test")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	return k, p
}

func TestSpawnAndSwitch(t *testing.T) {
	k, p := bootTest(t)
	if k.Current() != p || p.State != ProcRunning {
		t.Fatal("process not running after switch")
	}
	if p.AS.Count() != 1 || p.AS.All()[0].Name != "[stack]" {
		t.Fatal("default stack VMA missing")
	}
	if k.Process(p.PID) != p {
		t.Fatal("process lookup failed")
	}
	p2, _ := k.Spawn("other")
	k.Switch(p2)
	if p.State != ProcReady || p2.State != ProcRunning {
		t.Fatal("state transitions wrong")
	}
	if len(k.Processes()) != 2 {
		t.Fatal("process list wrong")
	}
}

func TestMmapDRAMAndNVM(t *testing.T) {
	k, p := bootTest(t)
	d, err := k.Mmap(p, 0, 8192, ProtRead|ProtWrite, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := k.Mmap(p, 0, 4096, ProtRead|ProtWrite, MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	if d == n {
		t.Fatal("overlapping mappings")
	}
	vd, vn := p.AS.Find(d), p.AS.Find(n)
	if vd.Kind != mem.DRAM || vn.Kind != mem.NVM {
		t.Fatalf("kinds: %v %v", vd.Kind, vn.Kind)
	}
	// Store to each; frames must come from the right pools.
	if _, err := k.M.Core.Access(d, true, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.M.Core.Access(n, true, 1); err != nil {
		t.Fatal(err)
	}
	ed, _ := p.Table.Lookup(d)
	en, _ := p.Table.Lookup(n)
	if k.M.Cfg.Layout.KindOf(mem.FrameBase(ed.PFN())) != mem.DRAM {
		t.Fatal("DRAM area got non-DRAM frame")
	}
	if k.M.Cfg.Layout.KindOf(mem.FrameBase(en.PFN())) != mem.NVM {
		t.Fatal("NVM area got non-NVM frame")
	}
	if !en.NVM() || ed.NVM() {
		t.Fatal("FlagNVM tagging wrong")
	}
}

func TestListingOneSemantics(t *testing.T) {
	// The paper's Listing 1: two mmaps, one NVM one DRAM, store a byte in
	// each, munmap both.
	k, p := bootTest(t)
	ptr1, err := k.Mmap(p, 0, 4096, ProtWrite|ProtRead, MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	ptr2, err := k.Mmap(p, 0, 4096, ProtWrite|ProtRead, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.M.Core.Access(ptr1, true, 1); err != nil {
		t.Fatal("store to NVM:", err)
	}
	if _, err := k.M.Core.Access(ptr2, true, 1); err != nil {
		t.Fatal("store to DRAM:", err)
	}
	if err := k.Munmap(p, ptr1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := k.Munmap(p, ptr2, 4096); err != nil {
		t.Fatal(err)
	}
	if p.Table.Mapped() != 0 {
		t.Fatalf("mappings remain: %d", p.Table.Mapped())
	}
}

func TestSegfaultOutsideVMA(t *testing.T) {
	k, _ := bootTest(t)
	if _, err := k.M.Core.Access(0x100, false, 1); err == nil {
		t.Fatal("access outside any VMA succeeded")
	}
	if k.M.Stats.Get("os.fault_segv") == 0 {
		t.Fatal("segv not counted")
	}
}

func TestWriteToReadOnlyVMA(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 4096, ProtRead, 0)
	if _, err := k.M.Core.Access(a, true, 1); err == nil {
		t.Fatal("write to read-only VMA succeeded")
	}
	if _, err := k.M.Core.Access(a, false, 1); err != nil {
		t.Fatalf("read failed: %v", err)
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 16*4096, ProtRead|ProtWrite, MapNVM)
	for i := uint64(0); i < 16; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	freeBefore := k.Alloc.FreeNVM()
	if err := k.Munmap(p, a, 16*4096); err != nil {
		t.Fatal(err)
	}
	if k.Alloc.FreeNVM() != freeBefore+16 {
		t.Fatalf("frames not freed: %d -> %d", freeBefore, k.Alloc.FreeNVM())
	}
	// Access after munmap faults.
	if _, err := k.M.Core.Access(a, false, 1); err == nil {
		t.Fatal("access to unmapped range succeeded")
	}
}

func TestMunmapPartialSplitsVMA(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 4*4096, ProtRead|ProtWrite, 0)
	// Unmap the middle two pages.
	if err := k.Munmap(p, a+4096, 2*4096); err != nil {
		t.Fatal(err)
	}
	if p.AS.Find(a) == nil || p.AS.Find(a+3*4096) == nil {
		t.Fatal("ends lost")
	}
	if p.AS.Find(a+4096) != nil || p.AS.Find(a+2*4096) != nil {
		t.Fatal("middle still mapped")
	}
}

func TestMmapReuseAfterMunmap(t *testing.T) {
	// The churn pattern of Table III: munmap then mmap the same range.
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 8*4096, ProtRead|ProtWrite, MapNVM)
	for i := uint64(0); i < 8; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	if err := k.Munmap(p, a, 4*4096); err != nil {
		t.Fatal(err)
	}
	got, err := k.Mmap(p, a, 4*4096, ProtRead|ProtWrite, MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("fixed remap at %#x landed at %#x", a, got)
	}
	// Fresh pages demand-fault again.
	if _, err := k.M.Core.Access(a, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMprotect(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 2*4096, ProtRead|ProtWrite, 0)
	k.M.Core.Access(a, true, 1)
	if err := k.Mprotect(p, a, 2*4096, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := k.M.Core.Access(a, true, 1); err == nil {
		t.Fatal("write after mprotect(PROT_READ) succeeded")
	}
	if _, err := k.M.Core.Access(a, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMremapGrowMoves(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 2*4096, ProtRead|ProtWrite, MapNVM)
	k.M.Core.Access(a, true, 1)
	e, _ := p.Table.Lookup(a)
	oldPFN := e.PFN()
	na, err := k.Mremap(p, a, 2*4096, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	if na == a {
		t.Fatal("grow did not move (old range still reserved)")
	}
	if p.AS.Find(a) != nil {
		t.Fatal("old VMA survived mremap")
	}
	ne, ok := p.Table.Lookup(na)
	if !ok || ne.PFN() != oldPFN {
		t.Fatal("mapping did not move with mremap")
	}
	// New tail pages demand-fault.
	if _, err := k.M.Core.Access(na+3*4096, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMremapShrink(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 4*4096, ProtRead|ProtWrite, 0)
	for i := uint64(0); i < 4; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	na, err := k.Mremap(p, a, 4*4096, 2*4096)
	if err != nil || na != a {
		t.Fatalf("shrink: %v %#x", err, na)
	}
	if p.Table.Mapped() != 2 {
		t.Fatalf("mapped after shrink = %d", p.Table.Mapped())
	}
}

func TestSyscallErrors(t *testing.T) {
	k, p := bootTest(t)
	if _, err := k.Mmap(p, 0, 0, ProtRead, 0); err == nil {
		t.Fatal("mmap(0 length) accepted")
	}
	if _, err := k.Mmap(p, 123, 4096, ProtRead, 0); err == nil {
		t.Fatal("unaligned hint accepted")
	}
	if err := k.Munmap(p, 5, 4096); err == nil {
		t.Fatal("unaligned munmap accepted")
	}
	if _, err := k.Mremap(p, 0x999000, 4096, 8192); err == nil {
		t.Fatal("mremap of unknown VMA accepted")
	}
	a, _ := k.Mmap(p, 0, 4096, ProtRead, 0)
	if _, err := k.Mmap(p, a, 4096, ProtRead, 0); err == nil {
		t.Fatal("fixed overlapping mmap accepted")
	}
}

func TestExitReleasesEverything(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 32*4096, ProtRead|ProtWrite, MapNVM)
	for i := uint64(0); i < 32; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	freeN := k.Alloc.FreeNVM()
	k.Exit(p)
	if k.Alloc.FreeNVM() < freeN+32 {
		t.Fatal("exit did not free NVM frames")
	}
	if k.Process(p.PID) != nil || k.Current() != nil {
		t.Fatal("process table not cleaned")
	}
}

func TestAllocatorPoolsDisjoint(t *testing.T) {
	k, _ := bootTest(t)
	d, _ := k.Alloc.AllocFrame(mem.DRAM)
	n, _ := k.Alloc.AllocFrame(mem.NVM)
	if k.M.Cfg.Layout.KindOf(mem.FrameBase(d)) != mem.DRAM {
		t.Fatal("DRAM pool crossed")
	}
	if k.M.Cfg.Layout.KindOf(mem.FrameBase(n)) != mem.NVM {
		t.Fatal("NVM pool crossed")
	}
	// NVM pool starts above the reserved carve-out.
	reserved := reservedNVMBytes(k.M.Cfg.Layout)
	if mem.FrameBase(n) < k.M.Cfg.Layout.NVMBase+mem.PhysAddr(reserved) {
		t.Fatal("NVM pool overlaps reserved region")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	k, _ := bootTest(t)
	pfn, _ := k.Alloc.AllocFrame(mem.DRAM)
	k.Alloc.FreeFrame(pfn)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	k.Alloc.FreeFrame(pfn)
}

func TestAllocatorRecoverFromBitmap(t *testing.T) {
	k, _ := bootTest(t)
	var used []uint64
	for i := 0; i < 10; i++ {
		pfn, err := k.Alloc.AllocFrame(mem.NVM)
		if err != nil {
			t.Fatal(err)
		}
		used = append(used, pfn)
	}
	// Free two in the middle (durably recorded).
	k.Alloc.FreeFrame(used[3])
	k.Alloc.FreeFrame(used[7])
	// The bitmap writes were clwb'd; crash and recover.
	k.M.Crash()
	k.Alloc.RecoverFromBitmap()
	for i, pfn := range used {
		want := i != 3 && i != 7
		if k.Alloc.InUse(pfn) != want {
			t.Fatalf("frame %#x in-use=%v, want %v", pfn, k.Alloc.InUse(pfn), want)
		}
	}
	// The recovered allocator reuses the holes first.
	a, _ := k.Alloc.AllocFrame(mem.NVM)
	b, _ := k.Alloc.AllocFrame(mem.NVM)
	got := map[uint64]bool{a: true, b: true}
	if !got[used[3]] || !got[used[7]] {
		t.Fatalf("holes not reused: got %#x %#x", a, b)
	}
}

func TestVMAFindFree(t *testing.T) {
	var as AddressSpace
	as.Insert(&VMA{Start: 0x10000, End: 0x12000, Prot: ProtRead})
	as.Insert(&VMA{Start: 0x14000, End: 0x16000, Prot: ProtRead})
	if got := as.FindFree(0x10000, 0x2000); got != 0x12000 {
		t.Fatalf("FindFree = %#x, want 0x12000", got)
	}
	if got := as.FindFree(0x10000, 0x3000); got != 0x16000 {
		t.Fatalf("FindFree big = %#x, want 0x16000", got)
	}
}

func TestVMARemoveRangeProperty(t *testing.T) {
	f := func(startPage, lenPages, rmStart, rmLen uint8) bool {
		var as AddressSpace
		s := uint64(startPage) * mem.PageSize
		e := s + (uint64(lenPages)+1)*mem.PageSize
		if err := as.Insert(&VMA{Start: s, End: e, Prot: ProtRead}); err != nil {
			return false
		}
		rs := uint64(rmStart) * mem.PageSize
		re := rs + (uint64(rmLen)+1)*mem.PageSize
		removed := as.RemoveRange(rs, re)
		// Invariant: removed + remaining partition the original area.
		var total uint64
		for _, r := range removed {
			total += r.End - r.Start
		}
		for _, v := range as.All() {
			total += v.Len()
			// Remaining areas never intersect the removed range.
			if v.Start < re && v.End > rs {
				return false
			}
		}
		return total == e-s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCostCharged(t *testing.T) {
	k, p := bootTest(t)
	a, _ := k.Mmap(p, 0, 4096, ProtRead|ProtWrite, 0)
	before := k.M.Stats.Get("cpu.kernel_cycles")
	k.M.Core.Access(a, true, 1)
	if k.M.Stats.Get("cpu.kernel_cycles") <= before {
		t.Fatal("fault charged no kernel time")
	}
}

func TestPTKindNVMHostsTables(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	k.PTKind = mem.NVM
	p, err := k.Spawn("nvmpt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Table.Kind() != mem.NVM {
		t.Fatal("table not NVM-hosted")
	}
	if m.Cfg.Layout.KindOf(p.Table.Root()) != mem.NVM {
		t.Fatal("root frame not in NVM")
	}
}

func TestPTEHookApplied(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	calls := 0
	k.PTEHook = func(p *Process) pt.WriteHook {
		return func(pa mem.PhysAddr, v pt.PTE) sim.Cycles {
			calls++
			m.StoreU64(pa, uint64(v))
			return 1
		}
	}
	p, _ := k.Spawn("hooked")
	k.Switch(p)
	a, _ := k.Mmap(p, 0, 4096, ProtRead|ProtWrite, MapNVM)
	m.Core.Access(a, true, 1)
	if calls == 0 {
		t.Fatal("PTE hook never fired")
	}
}

func BenchmarkDemandFault(b *testing.B) {
	// Fault in batches and unmap between them so arbitrary b.N never
	// exhausts the small test layout's DRAM pool.
	k, p := bootTest(b)
	const batch = 4096
	a, _ := k.Mmap(p, 0, batch*4096, ProtRead|ProtWrite, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%batch == 0 && i > 0 {
			b.StopTimer()
			k.Munmap(p, a, batch*4096)
			a, _ = k.Mmap(p, a, batch*4096, ProtRead|ProtWrite, 0)
			b.StartTimer()
		}
		if _, err := k.M.Core.Access(a+uint64(i%batch)*4096, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMmapMunmapChurn(b *testing.B) {
	k, p := bootTest(b)
	for i := 0; i < b.N; i++ {
		a, _ := k.Mmap(p, 0, 16*4096, ProtRead|ProtWrite, MapNVM)
		k.M.Core.Access(a, true, 1)
		k.Munmap(p, a, 16*4096)
	}
}

func TestSchedulerRoundRobin(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	p1, _ := k.Spawn("a")
	p2, _ := k.Spawn("b")
	s := NewScheduler(k, 1000)
	s.Add(p1)
	s.Add(p2)
	if s.Len() != 2 {
		t.Fatal("queue length")
	}
	first := s.Resched()
	second := s.Resched()
	third := s.Resched()
	if first == second || first != third {
		t.Fatalf("not round robin: %v %v %v", first.PID, second.PID, third.PID)
	}
	if k.Current() != third {
		t.Fatal("Resched did not switch")
	}
}

func TestSchedulerTimerSetsNeedsResched(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	p, _ := k.Spawn("only")
	s := NewScheduler(k, 3000)
	s.Add(p)
	s.Start()
	if s.NeedsResched() {
		t.Fatal("resched flag set before quantum")
	}
	m.Clock.Advance(3000)
	m.Tick()
	if !s.NeedsResched() {
		t.Fatal("quantum expiry not flagged")
	}
	s.Resched()
	if s.NeedsResched() {
		t.Fatal("flag not cleared by Resched")
	}
	s.Stop()
	m.Clock.Advance(10000)
	m.Tick()
	if s.NeedsResched() {
		t.Fatal("timer fired after Stop")
	}
}

func TestSchedulerSkipsZombies(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	p1, _ := k.Spawn("a")
	p2, _ := k.Spawn("b")
	s := NewScheduler(k, 1000)
	s.Add(p1)
	s.Add(p2)
	k.Exit(p2)
	for i := 0; i < 4; i++ {
		if got := s.Resched(); got != p1 {
			t.Fatalf("scheduled zombie or nil: %v", got)
		}
	}
	s.Remove(p1)
	if s.Resched() != nil {
		t.Fatal("empty queue scheduled something")
	}
}

func TestSchedulerRemoveMidQueue(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := Boot(m)
	var ps []*Process
	for i := 0; i < 3; i++ {
		p, _ := k.Spawn("p")
		ps = append(ps, p)
		_ = p
	}
	s := NewScheduler(k, 1000)
	for _, p := range ps {
		s.Add(p)
	}
	s.Resched() // ps[0]
	s.Resched() // ps[1]
	s.Remove(ps[1])
	if s.Len() != 2 {
		t.Fatal("remove failed")
	}
	// Continue cycling without ps[1].
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[s.Resched().PID] = true
	}
	if seen[ps[1].PID] {
		t.Fatal("removed process still scheduled")
	}
}

func TestDeferredNVMFrees(t *testing.T) {
	k, p := bootTest(t)
	k.Alloc.SetDeferNVMFrees(true)
	a, _ := k.Mmap(p, 0, 4*4096, ProtRead|ProtWrite, MapNVM)
	for i := uint64(0); i < 4; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	var pfns []uint64
	p.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		pfns = append(pfns, e.PFN())
		return true
	})
	if err := k.Munmap(p, a, 4*4096); err != nil {
		t.Fatal(err)
	}
	// The frames stay reserved until the flush.
	if k.Alloc.DeferredFrees() != 4 {
		t.Fatalf("deferred = %d, want 4", k.Alloc.DeferredFrees())
	}
	for _, pfn := range pfns {
		if !k.Alloc.InUse(pfn) {
			t.Fatal("deferred frame not reserved")
		}
	}
	if got := k.Alloc.FlushDeferredFrees(); got != 4 {
		t.Fatalf("flushed = %d", got)
	}
	for _, pfn := range pfns {
		if k.Alloc.InUse(pfn) {
			t.Fatal("flushed frame still reserved")
		}
	}
	if k.Alloc.DeferredFrees() != 0 {
		t.Fatal("deferred list not drained")
	}
}

func TestReclaimUnreferenced(t *testing.T) {
	k, _ := bootTest(t)
	a, _ := k.Alloc.AllocFrame(mem.NVM)
	b, _ := k.Alloc.AllocFrame(mem.NVM)
	c, _ := k.Alloc.AllocFrame(mem.NVM)
	n := k.Alloc.ReclaimUnreferenced(map[uint64]bool{b: true})
	if n != 2 {
		t.Fatalf("reclaimed %d, want 2", n)
	}
	if k.Alloc.InUse(a) || !k.Alloc.InUse(b) || k.Alloc.InUse(c) {
		t.Fatal("wrong frames reclaimed")
	}
	// Reclaimed frames are reusable and the bitmap is durably cleared.
	d, err := k.Alloc.AllocFrame(mem.NVM)
	if err != nil {
		t.Fatal(err)
	}
	if d != a && d != c {
		t.Fatalf("reclaimed frame not reused: got %#x", d)
	}
}

func TestKernelAccessors(t *testing.T) {
	k, p := bootTest(t)
	base, size := k.PersistArea()
	if k.M.Cfg.Layout.KindOf(base) != mem.NVM || size == 0 {
		t.Fatal("PersistArea not in NVM")
	}
	if k.M.Cfg.Layout.KindOf(k.BootRecordAddr()) != mem.NVM {
		t.Fatal("boot record not in NVM")
	}
	if k.Alloc.FreeDRAM() == 0 {
		t.Fatal("no free DRAM reported")
	}
	k.Tick() // no events: must be a harmless no-op
	if p.String() == "" || p.State.String() != "running" {
		t.Fatal("process String/state rendering broken")
	}
	if ProcZombie.String() != "zombie" || ProcReady.String() != "ready" {
		t.Fatal("state strings")
	}
}

func TestAdoptPreservesPIDSpace(t *testing.T) {
	k, p := bootTest(t)
	ghost := &Process{PID: 42, Name: "ghost", Slot: -1}
	tbl, err := pt.New(k.M, k.Alloc, mem.DRAM, k.M.Stats)
	if err != nil {
		t.Fatal(err)
	}
	ghost.Table = tbl
	k.Adopt(ghost)
	if k.Process(42) != ghost {
		t.Fatal("adopted process not registered")
	}
	if ghost.MmapCursor() != MmapBase {
		t.Fatal("adopt did not default the mmap cursor")
	}
	ghost.SetMmapCursor(MmapBase + 0x10000)
	if ghost.MmapCursor() != MmapBase+0x10000 {
		t.Fatal("SetMmapCursor ignored valid value")
	}
	ghost.SetMmapCursor(5) // below MmapBase: ignored
	if ghost.MmapCursor() != MmapBase+0x10000 {
		t.Fatal("SetMmapCursor accepted bogus value")
	}
	// New spawns get PIDs above the adopted one.
	q, _ := k.Spawn("after")
	if q.PID <= 42 {
		t.Fatalf("PID %d collides with adopted space", q.PID)
	}
	_ = p
}

func TestVMAHelpers(t *testing.T) {
	v := &VMA{Start: 0x1000, End: 0x5000, Prot: ProtRead | ProtWrite, Kind: mem.NVM, Name: "x"}
	if v.Pages() != 4 || !v.Contains(0x1000) || v.Contains(0x5000) {
		t.Fatal("VMA arithmetic")
	}
	if v.String() == "" {
		t.Fatal("VMA string")
	}
	var as AddressSpace
	as.Insert(v)
	as.Insert(&VMA{Start: 0x8000, End: 0xA000, Prot: ProtRead})
	if as.TotalPages() != 6 {
		t.Fatalf("TotalPages = %d", as.TotalPages())
	}
}
