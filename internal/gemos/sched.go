package gemos

import "kindle/internal/sim"

// Scheduler is a round-robin time slicer. gemOS keeps scheduling minimal —
// the paper values it for *not* running background services that pollute
// statistics — but Kindle exposes a scheduler so experiments can study the
// influence of context switches and co-running processes on hybrid-memory
// mechanisms (an OS activity user-level simulators cannot model).
type Scheduler struct {
	k       *Kernel
	quantum sim.Cycles
	queue   []*Process
	next    int

	ev *sim.Event
	on bool

	// expired is set by the timer event; the run loop observes it via
	// NeedsResched and performs the switch at the next safe point
	// (between instructions), like a real kernel's need_resched flag.
	expired bool
}

// NewScheduler builds a scheduler with the given time quantum.
func NewScheduler(k *Kernel, quantum sim.Cycles) *Scheduler {
	return &Scheduler{k: k, quantum: quantum}
}

// Add enqueues a process for time slicing.
func (s *Scheduler) Add(p *Process) {
	s.queue = append(s.queue, p)
}

// Remove drops a process (exited or detached).
func (s *Scheduler) Remove(p *Process) {
	for i, q := range s.queue {
		if q == p {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			if s.next > i {
				s.next--
			}
			return
		}
	}
}

// Len reports the number of scheduled processes.
func (s *Scheduler) Len() int { return len(s.queue) }

// Start arms the preemption timer.
func (s *Scheduler) Start() {
	if s.on {
		return
	}
	s.on = true
	s.arm()
}

// Stop disarms it. The event allocation is kept for the next Start.
func (s *Scheduler) Stop() {
	s.on = false
	s.k.M.Events.Cancel(s.ev)
}

// arm schedules the next preemption tick, reusing one Event allocation for
// the scheduler's lifetime so periodic re-arming stays allocation-free.
func (s *Scheduler) arm() {
	when := s.k.M.Clock.Now() + s.quantum
	if s.ev != nil {
		s.k.M.Events.Reschedule(s.ev, when)
		return
	}
	s.ev = s.k.M.Events.Schedule(when, "sched.tick", func(sim.Cycles) {
		if !s.on {
			return
		}
		s.expired = true
		s.k.schedTicks.Inc()
		s.arm()
	})
}

// NeedsResched reports whether the quantum expired since the last switch.
func (s *Scheduler) NeedsResched() bool { return s.expired }

// Resched rotates to the next ready process and switches to it, clearing
// the expired flag. Zombie and blocked processes are skipped. It returns
// the process now running (nil when no process is runnable — the caller
// idles until one unblocks).
func (s *Scheduler) Resched() *Process {
	s.expired = false
	if len(s.queue) == 0 {
		return nil
	}
	for tries := 0; tries < len(s.queue); tries++ {
		p := s.queue[s.next%len(s.queue)]
		s.next++
		if p.State == ProcZombie || p.State == ProcBlocked {
			continue
		}
		s.k.Switch(p)
		return p
	}
	return nil
}
