// Package gemos is Kindle's lightweight operating system — the counterpart
// of the paper's modified gemOS. It provides processes with virtual address
// spaces, an mmap/munmap/mremap/mprotect syscall surface extended with the
// MAP_NVM flag, demand paging backed by per-technology frame pools (with
// persisted NVM allocation metadata), and the hooks the persistence layer
// and the SSP/HSCC prototypes attach to.
package gemos

import (
	"errors"
	"fmt"

	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

// Reserved NVM carve-out, from the start of the NVM region:
//
//	+0              boot record (1 page)
//	+4 KiB          NVM frame-allocation bitmap (persisted)
//	+4 KiB + 1 MiB  persistence area (saved states, redo log, prototype
//	                metadata) — subdivided by internal/persist
const (
	bootRecordOff   = 0
	allocBitmapOff  = mem.PageSize
	allocBitmapSize = 1 * mem.MiB
	persistAreaOff  = allocBitmapOff + allocBitmapSize
)

// reservedNVMBytes sizes the carve-out: 64 MiB on full-size machines,
// a quarter of NVM on small test layouts.
func reservedNVMBytes(layout mem.Layout) uint64 {
	r := uint64(64 * mem.MiB)
	if q := layout.NVMSize / 4; q < r {
		r = q
	}
	return r
}

// Syscall cost constants: fixed kernel entry/exit and fault dispatch
// overheads in cycles (privilege switch, register save, dispatch), on top
// of whatever memory work the handler performs.
const (
	SyscallCost sim.Cycles = 300
	FaultCost   sim.Cycles = 600
	SwitchCost  sim.Cycles = 1000
)

// MetaLogger observes OS-level process metadata changes. The persistence
// layer implements it: VMA-layout changes and page-mapping changes are
// recorded in the NVM redo log / dirty sets between checkpoints.
type MetaLogger interface {
	// LogVMAChange records that p's VMA layout changed.
	LogVMAChange(p *Process)
	// LogMapping records that vpn→pfn was mapped (mapped=true) or
	// unmapped (mapped=false) in p's address space. Only NVM-backed pages
	// are reported (the paper's saved state tracks virtual-to-NVM-physical
	// mappings).
	LogMapping(p *Process, vpn, pfn uint64, mapped bool)
}

// Kernel is the gemOS kernel instance for one machine.
type Kernel struct {
	M     *machine.Machine
	Alloc *FrameAllocator

	procs   map[int]*Process
	nextPID int
	current *Process

	// PTKind selects where page-table pages are hosted: DRAM for the
	// rebuild scheme (default), NVM for the persistent scheme.
	PTKind mem.Kind

	// PTEHook, when non-nil, supplies a pt.WriteHook wrapping every
	// page-table store of a process (the persistent scheme's NVM
	// consistency mechanism).
	PTEHook func(p *Process) pt.WriteHook

	// Meta observes metadata changes (nil when persistence is off).
	Meta MetaLogger

	// OnSpawn is invoked after a process is created (persistence layer
	// assigns a saved-state slot).
	OnSpawn func(p *Process)

	// OnExit is invoked as a process is torn down (persistence layer
	// releases its saved-state slot).
	OnExit func(p *Process)

	faultLat *sim.Histogram // demand-fault service time (incl. FaultCost)

	// Per-event counters on the fault/switch/tick paths, resolved once.
	faultDemand     *sim.Counter
	contextSwitches *sim.Counter
	schedTicks      *sim.Counter
	kernelCycles    *sim.Counter
}

// Boot initializes the kernel on m.
func Boot(m *machine.Machine) *Kernel {
	layout := m.Cfg.Layout
	reserved := reservedNVMBytes(layout)
	bitmapBase := layout.NVMBase + mem.PhysAddr(allocBitmapOff)
	k := &Kernel{
		M:        m,
		Alloc:    NewFrameAllocator(m, layout, reserved, bitmapBase),
		procs:    make(map[int]*Process),
		PTKind:   mem.DRAM,
		faultLat: m.Stats.Hist("os.fault_lat"),

		faultDemand:     m.Stats.Counter("os.fault_demand"),
		contextSwitches: m.Stats.Counter("os.context_switch"),
		schedTicks:      m.Stats.Counter("os.sched_tick"),
		kernelCycles:    m.Stats.Counter("cpu.kernel_cycles"),
	}
	m.Core.SetFaultHandler(k)
	return k
}

// PersistArea returns the NVM region reserved for the persistence layer.
func (k *Kernel) PersistArea() (base mem.PhysAddr, size uint64) {
	layout := k.M.Cfg.Layout
	reserved := reservedNVMBytes(layout)
	return layout.NVMBase + mem.PhysAddr(persistAreaOff), reserved - persistAreaOff
}

// BootRecordAddr returns the NVM address of the boot record page.
func (k *Kernel) BootRecordAddr() mem.PhysAddr {
	return k.M.Cfg.Layout.NVMBase + mem.PhysAddr(bootRecordOff)
}

// Spawn creates a process with an empty address space (plus the default
// stack VMA in DRAM) and a fresh page table hosted per PTKind.
func (k *Kernel) Spawn(name string) (*Process, error) {
	k.M.Core.EnterKernel()
	defer k.M.Core.ExitKernel()

	k.nextPID++
	p := &Process{
		PID:        k.nextPID,
		Name:       name,
		State:      ProcReady,
		mmapCursor: MmapBase,
		Slot:       -1,
	}
	tbl, err := pt.New(k.M, k.Alloc, k.PTKind, k.M.Stats)
	if err != nil {
		return nil, fmt.Errorf("gemos: spawn %s: %w", name, err)
	}
	p.Table = tbl
	if k.PTEHook != nil {
		tbl.SetWriteHook(k.PTEHook(p))
	}
	stack := &VMA{Start: StackTop - StackSize, End: StackTop, Prot: ProtRead | ProtWrite, Kind: mem.DRAM, Name: "[stack]"}
	if err := p.AS.Insert(stack); err != nil {
		return nil, err
	}
	k.procs[p.PID] = p
	if k.Meta != nil {
		k.Meta.LogVMAChange(p)
	}
	if k.OnSpawn != nil {
		k.OnSpawn(p)
	}
	k.M.Stats.Inc("os.spawn")
	return p, nil
}

// Process looks up a PID.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Adopt registers a process reconstructed by crash recovery (the recovery
// procedure builds the context from the saved state itself rather than
// going through Spawn, preserving the original PID).
func (k *Kernel) Adopt(p *Process) {
	if p.PID >= k.nextPID {
		k.nextPID = p.PID
	}
	if p.mmapCursor == 0 {
		p.mmapCursor = MmapBase
	}
	k.procs[p.PID] = p
	k.M.Stats.Inc("os.adopt")
}

// Processes returns all live processes.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// Current returns the running process (nil at boot).
func (k *Kernel) Current() *Process { return k.current }

// Switch makes p the running process: saves the outgoing register file,
// restores p's, points the PTBR at p's table (flushing the TLB) and
// charges the context-switch cost. The outgoing process is credited the
// cycles it spent on the core; the switch cost itself is kernel time and
// belongs to neither side's CPU accounting.
func (k *Kernel) Switch(p *Process) {
	k.M.Core.EnterKernel()
	defer k.M.Core.ExitKernel()
	if k.current == p {
		return
	}
	if k.current != nil {
		k.current.Regs = k.M.Core.Regs
		k.current.acct.CPUCycles += k.M.Clock.Now() - k.current.dispatchedAt
		if k.current.State == ProcRunning {
			k.current.State = ProcReady
		}
	}
	k.M.Core.Regs = p.Regs
	k.M.Core.SetAddressSpace(p.Table)
	p.State = ProcRunning
	k.current = p
	k.M.Clock.Advance(SwitchCost)
	p.dispatchedAt = k.M.Clock.Now()
	p.acct.Switches++
	k.contextSwitches.Inc()
	k.kernelCycles.Add(uint64(SwitchCost))
}

// AccountNow folds the running process's current dispatch period into its
// CPUCycles accounting and restarts the period, so Accounting reads taken
// mid-dispatch are up to date.
func (k *Kernel) AccountNow() {
	if k.current == nil {
		return
	}
	now := k.M.Clock.Now()
	k.current.acct.CPUCycles += now - k.current.dispatchedAt
	k.current.dispatchedAt = now
}

// HandlePageFault implements cpu.FaultHandler: demand paging. The faulting
// VA must fall in a VMA of the current process; a frame of the VMA's kind
// is allocated and mapped.
func (k *Kernel) HandlePageFault(va uint64, write bool) (sim.Cycles, error) {
	p := k.current
	if p == nil {
		return FaultCost, errors.New("gemos: page fault with no current process")
	}
	k.M.Core.EnterKernel()
	defer k.M.Core.ExitKernel()
	start := k.M.Clock.Now()
	defer func() {
		// Handler memory work advanced the clock; FaultCost is charged by
		// the core after return, so fold it into the recorded service time.
		dur := k.M.Clock.Now() - start + FaultCost
		k.faultLat.ObserveCycles(dur)
		if k.M.Tracer.Enabled(obs.CatSyscall) {
			k.M.Tracer.Span(obs.CatSyscall, "page_fault", start, dur, "va", va)
		}
	}()

	v := p.AS.Find(va)
	if v == nil {
		k.M.Stats.Inc("os.fault_segv")
		return FaultCost, fmt.Errorf("gemos: segmentation fault at %#x (pid %d)", va, p.PID)
	}
	if write && v.Prot&ProtWrite == 0 {
		k.M.Stats.Inc("os.fault_prot")
		return FaultCost, fmt.Errorf("gemos: write to read-only area at %#x (pid %d)", va, p.PID)
	}
	pfn, err := k.Alloc.AllocFrame(v.Kind)
	if err != nil {
		return FaultCost, err
	}
	flags := uint64(pt.FlagUser)
	if v.Prot&ProtWrite != 0 {
		flags |= pt.FlagWritable
	}
	if v.Kind == mem.NVM {
		flags |= pt.FlagNVM
	}
	pageVA := va &^ (mem.PageSize - 1)
	if _, _, err := p.Table.Install(pageVA, pfn, flags); err != nil {
		k.Alloc.FreeFrame(pfn)
		return FaultCost, err
	}
	if k.Meta != nil && v.Kind == mem.NVM {
		k.Meta.LogMapping(p, pageVA/mem.PageSize, pfn, true)
	}
	k.faultDemand.Inc()
	p.acct.Faults++
	p.acct.ResidentPages++
	return FaultCost, nil
}

// Tick fires due machine events (checkpoint timers, migration intervals,
// consolidation threads). Call between user operations.
func (k *Kernel) Tick() { k.M.Tick() }

// Idle passes d cycles of simulated time with no process work, firing timer
// and device events along the way. tick is the stepped engine's cycle-group
// grain (0 = a single step); with Config.EventDrivenClock the machine jumps
// dead time instead — see machine.RunUntil.
func (k *Kernel) Idle(d, tick sim.Cycles) {
	k.M.RunUntil(k.M.Clock.Now()+d, tick)
}

// Park idles for d cycles like Idle, but charges the dead time to no
// process: the current process's CPU accounting is settled up to the park
// and its dispatch period restarts afterwards. Load generators use it to
// wait for the next arrival without inflating the parked tenant's CPU
// time.
func (k *Kernel) Park(d, tick sim.Cycles) {
	k.AccountNow()
	k.Idle(d, tick)
	if k.current != nil {
		k.current.dispatchedAt = k.M.Clock.Now()
	}
}

// Exit tears down p: unmaps everything, frees frames and table pages.
func (k *Kernel) Exit(p *Process) {
	k.M.Core.EnterKernel()
	defer k.M.Core.ExitKernel()
	if k.current == p {
		p.acct.CPUCycles += k.M.Clock.Now() - p.dispatchedAt
	}
	if k.OnExit != nil {
		k.OnExit(p)
	}
	var leaves []uint64
	p.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		leaves = append(leaves, e.PFN())
		return true
	})
	for _, pfn := range leaves {
		k.Alloc.FreeFrame(pfn)
	}
	p.Table.Destroy()
	p.acct.ResidentPages = 0
	p.State = ProcZombie
	delete(k.procs, p.PID)
	if k.current == p {
		k.current = nil
	}
	k.M.Stats.Inc("os.exit")
}
