package gemos

import (
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/pt"
)

// pageAlignUp rounds n up to a page multiple.
func pageAlignUp(n uint64) uint64 {
	return (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
}

// enterSyscall charges the fixed syscall overhead in kernel mode.
func (k *Kernel) enterSyscall(name string) {
	k.M.Core.EnterKernel()
	k.M.Clock.Advance(SyscallCost)
	k.kernelCycles.Add(uint64(SyscallCost))
	k.M.Stats.Inc("os.syscall." + name)
	if k.M.Tracer.Enabled(obs.CatSyscall) {
		pid := uint64(0)
		if k.current != nil {
			pid = uint64(k.current.PID)
		}
		k.M.Tracer.Instant(obs.CatSyscall, "syscall."+name, "pid", pid)
	}
}

// Mmap maps length bytes for p. addr==0 lets the kernel choose a range.
// Passing MapNVM in flags allocates the area from NVM, the paper's gemOS
// API extension (Listing 1). The mapping is demand-paged: physical frames
// are allocated at first access.
func (k *Kernel) Mmap(p *Process, addr uint64, length uint64, prot Prot, flags uint32) (uint64, error) {
	k.enterSyscall("mmap")
	defer k.M.Core.ExitKernel()
	if length == 0 {
		return 0, fmt.Errorf("gemos: mmap with zero length")
	}
	length = pageAlignUp(length)
	kind := mem.DRAM
	if flags&MapNVM != 0 {
		kind = mem.NVM
	}
	start := addr
	if start == 0 {
		start = p.AS.FindFree(p.mmapCursor, length)
	} else if start%mem.PageSize != 0 {
		return 0, fmt.Errorf("gemos: mmap hint %#x not page aligned", addr)
	}
	if p.AS.Overlaps(start, start+length) {
		if addr != 0 {
			return 0, fmt.Errorf("gemos: mmap fixed range %#x-%#x overlaps", start, start+length)
		}
		start = p.AS.FindFree(start, length)
	}
	name := "[anon]"
	if kind == mem.NVM {
		name = "[anon-nvm]"
	}
	v := &VMA{Start: start, End: start + length, Prot: prot, Kind: kind, Name: name}
	if err := p.AS.Insert(v); err != nil {
		return 0, err
	}
	if start+length > p.mmapCursor {
		p.mmapCursor = start + length
	}
	if k.Meta != nil {
		k.Meta.LogVMAChange(p)
	}
	k.M.Stats.Inc("os.mmap")
	return start, nil
}

// Munmap unmaps [addr, addr+length): VMAs are trimmed/split, present PTEs
// are removed (timed page-table writes, wrapped by the consistency hook
// under the persistent scheme) and their frames freed.
func (k *Kernel) Munmap(p *Process, addr uint64, length uint64) error {
	k.enterSyscall("munmap")
	defer k.M.Core.ExitKernel()
	if length == 0 || addr%mem.PageSize != 0 {
		return fmt.Errorf("gemos: munmap bad range %#x+%#x", addr, length)
	}
	length = pageAlignUp(length)
	removed := p.AS.RemoveRange(addr, addr+length)
	for _, r := range removed {
		for va := r.Start; va < r.End; va += mem.PageSize {
			old, _, present := p.Table.Remove(va)
			if !present {
				continue
			}
			if p.acct.ResidentPages > 0 {
				p.acct.ResidentPages--
			}
			k.Alloc.FreeFrame(old.PFN())
			k.M.TLB.Invalidate(va / mem.PageSize)
			if k.Meta != nil && r.Kind == mem.NVM {
				k.Meta.LogMapping(p, va/mem.PageSize, old.PFN(), false)
			}
		}
	}
	if k.Meta != nil {
		k.Meta.LogVMAChange(p)
	}
	k.M.Stats.Inc("os.munmap")
	return nil
}

// Mprotect rewrites protections on [addr, addr+length).
func (k *Kernel) Mprotect(p *Process, addr uint64, length uint64, prot Prot) error {
	k.enterSyscall("mprotect")
	defer k.M.Core.ExitKernel()
	if length == 0 || addr%mem.PageSize != 0 {
		return fmt.Errorf("gemos: mprotect bad range %#x+%#x", addr, length)
	}
	length = pageAlignUp(length)
	changed := p.AS.SetProt(addr, addr+length, prot)
	for _, c := range changed {
		for va := c.Start; va < c.End; va += mem.PageSize {
			e, ok := p.Table.Lookup(va)
			if !ok {
				continue
			}
			flags := uint64(pt.FlagUser)
			if prot&ProtWrite != 0 {
				flags |= pt.FlagWritable
			}
			if e.NVM() {
				flags |= pt.FlagNVM
			}
			p.Table.Protect(va, flags)
			k.M.TLB.Invalidate(va / mem.PageSize)
		}
	}
	if k.Meta != nil {
		k.Meta.LogVMAChange(p)
	}
	k.M.Stats.Inc("os.mprotect")
	return nil
}

// Mremap moves/resizes the mapping at oldAddr. Shrinking trims in place;
// growing relocates the area to a fresh range, migrating page-table
// entries (frames are not copied — the mapping moves, as with Linux
// MREMAP_MAYMOVE). It returns the new address.
func (k *Kernel) Mremap(p *Process, oldAddr, oldLen, newLen uint64) (uint64, error) {
	k.enterSyscall("mremap")
	defer k.M.Core.ExitKernel()
	if oldLen == 0 || newLen == 0 || oldAddr%mem.PageSize != 0 {
		return 0, fmt.Errorf("gemos: mremap bad args")
	}
	oldLen, newLen = pageAlignUp(oldLen), pageAlignUp(newLen)
	v := p.AS.Find(oldAddr)
	if v == nil || v.Start != oldAddr || v.Len() != oldLen {
		return 0, fmt.Errorf("gemos: mremap range %#x+%#x does not match a VMA", oldAddr, oldLen)
	}
	if newLen <= oldLen {
		// Trim tail.
		k.M.Core.ExitKernel() // Munmap re-enters
		if err := k.Munmap(p, oldAddr+newLen, oldLen-newLen); err != nil {
			return 0, err
		}
		k.M.Core.EnterKernel()
		return oldAddr, nil
	}
	// Relocate. Capture the old area before mutating the address space.
	old := *v
	newStart := p.AS.FindFree(p.mmapCursor, newLen)
	p.AS.RemoveRange(old.Start, old.End)
	nv := &VMA{Start: newStart, End: newStart + newLen, Prot: old.Prot, Kind: old.Kind, Name: old.Name}
	if err := p.AS.Insert(nv); err != nil {
		return 0, err
	}
	if newStart+newLen > p.mmapCursor {
		p.mmapCursor = newStart + newLen
	}
	for off := uint64(0); off < oldLen; off += mem.PageSize {
		oldVA := old.Start + off
		e, _, present := p.Table.Remove(oldVA)
		if !present {
			continue
		}
		k.M.TLB.Invalidate(oldVA / mem.PageSize)
		newVA := newStart + off
		if _, _, err := p.Table.Install(newVA, e.PFN(), uint64(e)&^(pt.FlagPresent)|pt.FlagPresent); err != nil {
			return 0, err
		}
		if k.Meta != nil && old.Kind == mem.NVM {
			k.Meta.LogMapping(p, oldVA/mem.PageSize, e.PFN(), false)
			k.Meta.LogMapping(p, newVA/mem.PageSize, e.PFN(), true)
		}
	}
	if k.Meta != nil {
		k.Meta.LogVMAChange(p)
	}
	k.M.Stats.Inc("os.mremap")
	return newStart, nil
}
