package hscc_test

import (
	"testing"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/hscc"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
	"kindle/internal/workloads"
)

func setup(t testing.TB, cfg hscc.Config) (*core.Framework, *hscc.Controller, *core.Replay, *gemos.Process) {
	t.Helper()
	f := core.NewSmall()
	wcfg := workloads.SmallYCSB()
	wcfg.Ops = 30_000
	img, err := workloads.YCSB(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	c, err := hscc.Attach(f.K, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, c, rep, p
}

func testConfig() hscc.Config {
	cfg := hscc.DefaultConfig()
	cfg.PoolPages = 64
	cfg.MigrationInterval = sim.FromDuration(50 * time.Microsecond)
	cfg.FetchThreshold = 2
	return cfg
}

func TestAccessCountsAccumulate(t *testing.T) {
	f, _, rep, _ := setup(t, testConfig())
	rep.Step(5000)
	// Counts are visible through spill stats after enough LLC misses.
	if f.M.Stats.Get("hscc.count_spill") == 0 {
		t.Fatal("no access counts spilled")
	}
}

func TestMigrationMovesHotPages(t *testing.T) {
	f, c, rep, _ := setup(t, testConfig())
	c.Start()
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if f.M.Stats.Get("hscc.intervals") == 0 {
		t.Fatal("no migration intervals fired")
	}
	if f.M.Stats.Get("hscc.pages_migrated") == 0 {
		t.Fatal("no pages migrated")
	}
	if c.CachedPages() == 0 {
		t.Fatal("no pages cached in DRAM pool")
	}
}

func TestMigratedPageServedFromDRAM(t *testing.T) {
	f, c, rep, p := setup(t, testConfig())
	c.Start()
	rep.Step(20_000)
	c.Stop()
	if c.CachedPages() == 0 {
		t.Skip("no migrations in this window")
	}
	// Find a migrated vpn via the page table: a page in an NVM VMA whose
	// PTE now points at DRAM.
	var migratedVA uint64
	p.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		if !e.NVM() && f.M.Cfg.Layout.KindOf(mem.FrameBase(e.PFN())) == mem.DRAM {
			if v := p.AS.Find(va); v != nil && v.Kind == mem.NVM {
				migratedVA = va
				return false
			}
		}
		return true
	})
	if migratedVA == 0 {
		t.Fatal("no migrated PTE found")
	}
	if _, err := f.M.Core.Access(migratedVA, false, 8); err != nil {
		t.Fatalf("access to migrated page: %v", err)
	}
}

func TestHigherThresholdMigratesFewer(t *testing.T) {
	// Table V's shape: pages migrated falls sharply as the threshold
	// rises.
	run := func(th uint32) uint64 {
		cfg := testConfig()
		cfg.FetchThreshold = th
		f, c, rep, _ := setup(t, cfg)
		c.Start()
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		c.Stop()
		return f.M.Stats.Get("hscc.pages_migrated")
	}
	low := run(1)
	high := run(40)
	if low == 0 {
		t.Fatal("no migrations at low threshold")
	}
	if high >= low {
		t.Fatalf("migrations: th=1 %d, th=40 %d (want fewer at higher threshold)", low, high)
	}
}

func TestOSTimeChargedVsHWOnly(t *testing.T) {
	// Fig. 6's normalization baseline: HW-only migrations take less
	// simulated time than OS-charged migrations of the same workload.
	run := func(chargeOS bool) sim.Cycles {
		cfg := testConfig()
		cfg.ChargeOSTime = chargeOS
		f, c, rep, _ := setup(t, cfg)
		c.Start()
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		c.Stop()
		return f.M.Clock.Now()
	}
	withOS := run(true)
	hwOnly := run(false)
	if withOS <= hwOnly {
		t.Fatalf("OS-charged run (%d) not slower than HW-only (%d)", withOS, hwOnly)
	}
}

func TestPageCopyDominatesSelection(t *testing.T) {
	// Table VI's shape: page copy takes the lion's share of OS migration
	// time while the free list lasts.
	f, c, rep, _ := setup(t, testConfig())
	c.Start()
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	sel := f.M.Stats.Get("hscc.page_selection_cycles")
	cp := f.M.Stats.Get("hscc.page_copy_cycles")
	if cp == 0 {
		t.Fatal("no copy cycles recorded")
	}
	if sel > cp {
		t.Fatalf("selection (%d) exceeded copy (%d) with a fresh pool", sel, cp)
	}
}

func TestDirtyCopyBackOnPoolPressure(t *testing.T) {
	// With a tiny pool and a low threshold, reclaim must reach the dirty
	// list and pay copy-backs.
	cfg := testConfig()
	cfg.PoolPages = 4
	cfg.FetchThreshold = 1
	f, c, rep, _ := setup(t, cfg)
	c.Start()
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if f.M.Stats.Get("hscc.select_free") == 0 {
		t.Fatal("free list never used")
	}
	reclaims := f.M.Stats.Get("hscc.select_clean") + f.M.Stats.Get("hscc.select_dirty_copyback")
	if reclaims == 0 {
		t.Fatal("pool pressure never forced reclaim")
	}
}

func TestPoolAccounting(t *testing.T) {
	cfg := testConfig()
	f, c, rep, _ := setup(t, cfg)
	free0, clean0, dirty0 := c.PoolCounts()
	if free0 != cfg.PoolPages || clean0 != 0 || dirty0 != 0 {
		t.Fatalf("initial pool: %d/%d/%d", free0, clean0, dirty0)
	}
	c.Start()
	rep.Run()
	c.Stop()
	free1, clean1, dirty1 := c.PoolCounts()
	if free1+clean1+dirty1 != cfg.PoolPages {
		t.Fatalf("pool frames leaked: %d+%d+%d != %d", free1, clean1, dirty1, cfg.PoolPages)
	}
	_ = f
}

func TestDataIntegrityAcrossMigration(t *testing.T) {
	// Data written before migration must read back identically after the
	// page moves to DRAM (and after copy-back to NVM under pressure).
	f := core.NewSmall()
	k := f.K
	p, err := k.Spawn("integrity")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	a, err := k.Mmap(p, 0, 8*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.FetchThreshold = 0 // every touched page migrates
	c, err := hscc.Attach(k, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Write patterns, commit them (assumed data-consistency), then drive
	// misses so counts accumulate.
	for i := uint64(0); i < 8; i++ {
		va := a + i*mem.PageSize
		if _, err := f.M.Core.Access(va, true, 8); err != nil {
			t.Fatal(err)
		}
		pa, _ := f.M.Core.VirtToPhys(va)
		f.M.Ctrl.WriteU64(pa, 0xA5A5_0000+i)
	}
	// Evict from caches so subsequent accesses miss the LLC and count.
	for i := 0; i < 3*64*1024; i++ {
		f.M.Hier.Access(mem.PhysAddr(i*mem.LineSize), false)
	}
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 8; i++ {
			f.M.Core.Access(a+i*mem.PageSize, false, 8)
		}
	}
	c.MigrationActivity()
	if c.CachedPages() == 0 {
		t.Fatal("no pages migrated")
	}
	for i := uint64(0); i < 8; i++ {
		va := a + i*mem.PageSize
		pa, ok := f.M.Core.VirtToPhys(va)
		if !ok {
			t.Fatalf("page %d unmapped after migration", i)
		}
		if got := f.M.Ctrl.ReadU64(pa); got != 0xA5A5_0000+i {
			t.Fatalf("page %d data = %#x after migration", i, got)
		}
	}
	c.Detach()
	// After detach the mappings are NVM again with intact data.
	for i := uint64(0); i < 8; i++ {
		pa, _ := f.M.Core.VirtToPhys(a + i*mem.PageSize)
		if f.M.Cfg.Layout.KindOf(pa) != mem.NVM {
			t.Fatalf("page %d not back in NVM after detach", i)
		}
		if got := f.M.Ctrl.ReadU64(pa); got != 0xA5A5_0000+i {
			t.Fatalf("page %d data = %#x after detach", i, got)
		}
	}
}
