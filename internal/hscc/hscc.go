// Package hscc prototypes Hardware/Software Cooperative Caching (Liu et
// al., ICS'17) on Kindle, following the paper's §III-C implementation:
// DRAM and NVM sit in a flat address space with a 512-page DRAM pool
// managed by the OS as a cache for NVM pages. NVM page access counts are
// maintained in the TLB (incremented when a data access misses the LLC)
// and spilled to the page-table side on eviction or once per migration
// interval. Every 31.25 ms the OS inspects the counts with a software
// page-table walk and migrates pages exceeding the fetch threshold:
// page selection takes a destination frame from the free, clean or dirty
// list (dirty requires a copy-back to NVM first), page copy flushes the
// NVM page's cache lines and copies the 4 KB. Unlike the original HSCC's
// 96-bit PTEs, the NVM↔DRAM mapping lives in a lookup table indexable by
// both frame numbers, exactly the design choice described in the paper.
package hscc

import (
	"fmt"
	"time"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// Config parameterizes the prototype.
type Config struct {
	// FetchThreshold is the access count an NVM page must exceed within a
	// migration interval to become a migration candidate (Fig. 6 uses 5,
	// 25 and 50).
	FetchThreshold uint32
	// MigrationInterval is 31.25 ms (10^8 cycles in the HSCC paper).
	MigrationInterval sim.Cycles
	// PoolPages is the DRAM cache size (512 pages in the paper).
	PoolPages int
	// ChargeOSTime, when false, performs migrations functionally without
	// charging the OS work (page selection, page copy) — the
	// "hardware-only migration activities" baseline of Fig. 6.
	ChargeOSTime bool
	// PTEScanCost is the per-PTE cost of the software page-table walk
	// that inspects access counts each interval.
	PTEScanCost sim.Cycles
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		FetchThreshold:    25,
		MigrationInterval: sim.FromDuration(31250 * time.Microsecond),
		PoolPages:         512,
		ChargeOSTime:      true,
		PTEScanCost:       sim.FromNanos(10),
	}
}

// pageState tracks one DRAM pool frame.
type pageState struct {
	dramPFN uint64
	nvmPFN  uint64 // 0 when free
	vpn     uint64
	dirty   bool
}

// Controller is the HSCC prototype attached to a kernel.
type Controller struct {
	m   *machine.Machine
	k   *gemos.Kernel
	cfg Config

	tableBase mem.PhysAddr // lookup table region in NVM

	// DRAM pool lists (free/clean/dirty), updated at interval start.
	// Pages migrated during the current interval sit in recent — they are
	// the hottest pages and only become reclaim victims from the next
	// interval on.
	free   []*pageState
	clean  []*pageState
	dirty  []*pageState
	recent []*pageState
	byVPN  map[uint64]*pageState // migrated pages by vpn
	byDst  map[uint64]*pageState // migrated pages by DRAM pfn

	// counts is the PTE-side access count store (spilled from TLB).
	counts map[uint64]uint32 // vpn -> count

	proc *gemos.Process
	ev   *sim.Event
	on   bool

	countSpills *sim.Counter // "hscc.count_spill", fires per TLB evict/harvest
}

// Attach builds the prototype over k for process p, allocating the DRAM
// pool and the lookup table.
func Attach(k *gemos.Kernel, p *gemos.Process, cfg Config) (*Controller, error) {
	if cfg.PoolPages <= 0 {
		return nil, fmt.Errorf("hscc: pool of %d pages", cfg.PoolPages)
	}
	base, size := k.PersistArea()
	if uint64(cfg.PoolPages)*16 > size {
		return nil, fmt.Errorf("hscc: reserved area too small for lookup table")
	}
	c := &Controller{
		m:         k.M,
		k:         k,
		cfg:       cfg,
		tableBase: base,
		byVPN:     make(map[uint64]*pageState),
		byDst:     make(map[uint64]*pageState),
		counts:    make(map[uint64]uint32),
		proc:      p,

		countSpills: k.M.Stats.Counter("hscc.count_spill"),
	}
	for i := 0; i < cfg.PoolPages; i++ {
		pfn, err := k.Alloc.AllocFrame(mem.DRAM)
		if err != nil {
			return nil, fmt.Errorf("hscc: allocating pool: %w", err)
		}
		c.free = append(c.free, &pageState{dramPFN: pfn})
	}
	k.M.Core.SetHooks(c)
	k.M.TLB.SetEvictHook(c.onTLBEvict)
	return c, nil
}

// Start schedules the periodic migration activity.
func (c *Controller) Start() {
	if c.on {
		return
	}
	c.on = true
	c.schedule()
}

// Stop cancels it. The event allocation is kept for the next Start.
func (c *Controller) Stop() {
	c.on = false
	c.m.Events.Cancel(c.ev)
}

// schedule arms the next migration interval, reusing one Event allocation
// for the controller's lifetime.
func (c *Controller) schedule() {
	when := c.m.Clock.Now() + c.cfg.MigrationInterval
	if c.ev != nil {
		c.m.Events.Reschedule(c.ev, when)
		return
	}
	c.ev = c.m.Events.Schedule(when, "hscc.migrate", func(sim.Cycles) {
		if !c.on {
			return
		}
		c.MigrationActivity()
		if c.on {
			c.schedule()
		}
	})
}

// OnTranslate implements cpu.Hooks: stores to migrated (DRAM-cached) pages
// mark the pool frame dirty, so page selection knows a copy-back is needed
// before reuse.
func (c *Controller) OnTranslate(e *tlb.Entry, va uint64, write bool) {
	if !write || e.NVM {
		return
	}
	if ps, ok := c.byVPN[va/mem.PageSize]; ok {
		ps.dirty = true
	}
}

// OnLLCMiss implements cpu.Hooks: the TLB-held access count of an NVM page
// increments when a data access misses the LLC.
func (c *Controller) OnLLCMiss(e *tlb.Entry, va uint64, write bool) {
	if !e.NVM {
		return
	}
	e.AccessCount++
	if !e.CountSpilled {
		// Written out to the PTE side once during the interval.
		c.spillCount(e.VPN, e.AccessCount)
		e.CountSpilled = true
	}
}

// onTLBEvict spills the access count to the PTE-side store.
func (c *Controller) onTLBEvict(e *tlb.Entry) {
	if !e.NVM || e.AccessCount == 0 {
		return
	}
	c.spillCount(e.VPN, e.AccessCount)
}

// spillCount merges a TLB count into the lookup-table store (timed line
// write — the HSCC hardware writes the count out to the extended PTE).
func (c *Controller) spillCount(vpn uint64, count uint32) {
	if count > c.counts[vpn] {
		c.counts[vpn] = count
	}
	ea := c.tableBase + mem.PhysAddr((vpn%4096)*16)
	c.m.AccessTimed(ea, true)
	c.countSpills.Inc()
}

// MigrationActivity is the per-interval OS work: refresh the pool lists,
// harvest TLB counts, software-walk the page table to find candidates,
// migrate them, then reset all counts and invalidate TLB entries so the
// next interval starts fresh.
func (c *Controller) MigrationActivity() {
	m := c.m
	m.Core.EnterKernel()
	defer m.Core.ExitKernel()
	intervalStart := m.Clock.Now()

	// Update free/clean/dirty lists at interval start; last interval's
	// migrations become reclaimable now.
	var clean, dirty []*pageState
	all := append(append(append([]*pageState{}, c.clean...), c.dirty...), c.recent...)
	for _, ps := range all {
		if ps.dirty {
			dirty = append(dirty, ps)
		} else {
			clean = append(clean, ps)
		}
	}
	c.clean, c.dirty, c.recent = clean, dirty, nil

	// Harvest counts still sitting in the TLB.
	m.TLB.ForEach(func(e *tlb.Entry) {
		if e.NVM && e.AccessCount > 0 {
			if e.AccessCount > c.counts[e.VPN] {
				c.counts[e.VPN] = e.AccessCount
			}
		}
	})

	// Software page-table walk inspecting access counts in PTEs.
	type cand struct {
		vpn uint64
		pfn uint64
		cnt uint32
	}
	var cands []cand
	scanned := 0
	c.proc.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		scanned++
		if !e.NVM() {
			return true
		}
		vpn := va / mem.PageSize
		if cnt := c.counts[vpn]; cnt > c.cfg.FetchThreshold {
			cands = append(cands, cand{vpn: vpn, pfn: e.PFN(), cnt: cnt})
		}
		return true
	})
	if c.cfg.ChargeOSTime {
		m.Clock.Advance(sim.Cycles(scanned) * c.cfg.PTEScanCost)
		m.Stats.Add("cpu.kernel_cycles", uint64(scanned)*uint64(c.cfg.PTEScanCost))
	}

	migrated := 0
	for _, cd := range cands {
		if c.byVPN[cd.vpn] != nil {
			continue // already cached in DRAM
		}
		ps := c.selectPage()
		if ps == nil {
			m.Stats.Inc("hscc.pool_exhausted")
			break
		}
		c.copyPage(ps, cd.vpn, cd.pfn)
		migrated++
	}

	// Reset counts and invalidate TLB entries so only the most recent
	// interval's accesses drive the next round.
	c.counts = make(map[uint64]uint32)
	m.TLB.ForEach(func(e *tlb.Entry) {
		e.AccessCount = 0
		e.CountSpilled = false
	})

	m.Stats.Inc("hscc.intervals")
	m.Stats.Add("hscc.pages_migrated", uint64(migrated))
	c.proc.AccountMigrations(uint64(migrated))
	m.Stats.Add("hscc.os_migration_cycles", uint64(m.Clock.Now()-intervalStart))
}

// selectPage pops a destination DRAM frame: free list, then clean list,
// then dirty (which costs a copy-back to NVM before reuse). The elapsed
// simulated time is attributed to page selection.
func (c *Controller) selectPage() *pageState {
	m := c.m
	start := m.Clock.Now()
	defer func() {
		if c.cfg.ChargeOSTime {
			m.Stats.Add("hscc.page_selection_cycles", uint64(m.Clock.Now()-start))
		}
	}()
	if n := len(c.free); n > 0 {
		ps := c.free[n-1]
		c.free = c.free[:n-1]
		m.Stats.Inc("hscc.select_free")
		return ps
	}
	if n := len(c.clean); n > 0 {
		ps := c.clean[0]
		c.clean = c.clean[1:]
		c.unmapCached(ps)
		m.Stats.Inc("hscc.select_clean")
		return ps
	}
	if n := len(c.dirty); n > 0 {
		ps := c.dirty[0]
		c.dirty = c.dirty[1:]
		// Copy the page back from DRAM to NVM before reuse.
		c.transferPage(mem.FrameBase(ps.dramPFN), mem.FrameBase(ps.nvmPFN), c.cfg.ChargeOSTime)
		c.unmapCached(ps)
		m.Stats.Inc("hscc.select_dirty_copyback")
		return ps
	}
	return nil
}

// unmapCached restores the NVM mapping of a reclaimed pool frame and
// invalidates its TLB entry.
func (c *Controller) unmapCached(ps *pageState) {
	flags := uint64(pt.FlagUser | pt.FlagWritable | pt.FlagNVM)
	if c.cfg.ChargeOSTime {
		c.proc.Table.UpdateLeaf(ps.vpn*mem.PageSize, pt.Make(ps.nvmPFN, flags))
	} else {
		c.updateLeafFree(ps.vpn, pt.Make(ps.nvmPFN, flags))
	}
	c.m.TLB.Invalidate(ps.vpn)
	// Update the lookup table entry (timed).
	ea := c.tableBase + mem.PhysAddr((ps.dramPFN%4096)*16)
	if c.cfg.ChargeOSTime {
		c.m.AccessTimed(ea, true)
	}
	delete(c.byVPN, ps.vpn)
	delete(c.byDst, ps.dramPFN)
	ps.nvmPFN, ps.vpn, ps.dirty = 0, 0, false
}

// copyPage performs the page-copy step of a migration: flush the NVM
// page's cache lines, copy NVM→DRAM, update the PTE and lookup table,
// invalidate the TLB entry.
func (c *Controller) copyPage(ps *pageState, vpn, nvmPFN uint64) {
	m := c.m
	start := m.Clock.Now()

	c.transferPage(mem.FrameBase(nvmPFN), mem.FrameBase(ps.dramPFN), c.cfg.ChargeOSTime)

	// Remap the PTE to the DRAM frame (NVM flag cleared: the page is now
	// DRAM-cached; the lookup table remembers the home frame).
	flags := uint64(pt.FlagUser | pt.FlagWritable)
	newPTE := pt.Make(ps.dramPFN, flags)
	if c.cfg.ChargeOSTime {
		c.proc.Table.UpdateLeaf(vpn*mem.PageSize, newPTE)
	} else {
		c.updateLeafFree(vpn, newPTE)
	}
	m.TLB.Invalidate(vpn)
	ea := c.tableBase + mem.PhysAddr((nvmPFN%4096)*16)
	if c.cfg.ChargeOSTime {
		m.AccessTimed(ea, true)
	}

	ps.nvmPFN, ps.vpn, ps.dirty = nvmPFN, vpn, false
	c.byVPN[vpn] = ps
	c.byDst[ps.dramPFN] = ps
	c.recent = append(c.recent, ps)
	if c.cfg.ChargeOSTime {
		m.Stats.Add("hscc.page_copy_cycles", uint64(m.Clock.Now()-start))
	}
}

// transferPage copies one 4 KiB page line by line. When timed, the source
// lines are flushed from the caches first (the paper's page-copy step) and
// every line transfer is a pair of simulated memory accesses.
func (c *Controller) transferPage(src, dst mem.PhysAddr, timed bool) {
	m := c.m
	for off := mem.PhysAddr(0); off < mem.PageSize; off += mem.LineSize {
		if timed {
			m.Core.Clwb(src + off)
			m.AccessTimed(src+off, false)
			m.AccessTimed(dst+off, true)
		}
	}
	m.Ctrl.Backing().CopyFrame(mem.FrameNumber(dst), mem.FrameNumber(src))
	if m.Cfg.Layout.KindOf(dst) == mem.NVM {
		m.CommitRange(dst, mem.PageSize)
	}
	m.Stats.Inc("hscc.page_transfer")
}

// updateLeafFree rewrites a leaf PTE without charging time (hardware-only
// baseline). It temporarily replaces the table's write hook, so the HSCC
// hardware-only mode must not be combined with the persistent page-table
// scheme (whose hook it would bypass); the experiments never pair them.
func (c *Controller) updateLeafFree(vpn uint64, e pt.PTE) {
	// Perform the update functionally by temporarily hooking the write.
	tbl := c.proc.Table
	tbl.SetWriteHook(func(pa mem.PhysAddr, v pt.PTE) sim.Cycles {
		c.m.StoreU64(pa, uint64(v))
		return 0
	})
	tbl.UpdateLeaf(vpn*mem.PageSize, e)
	tbl.SetWriteHook(nil)
}

// CachedPages reports how many pages currently live in the DRAM pool.
func (c *Controller) CachedPages() int { return len(c.byVPN) }

// PoolCounts reports the list sizes (free, clean, dirty).
func (c *Controller) PoolCounts() (free, clean, dirty int) {
	return len(c.free), len(c.clean) + len(c.recent), len(c.dirty)
}

// Detach releases the DRAM pool and restores NVM mappings.
func (c *Controller) Detach() {
	c.Stop()
	all := append(append(append([]*pageState{}, c.free...), c.clean...), c.dirty...)
	for _, ps := range append(all, c.recent...) {
		if ps.nvmPFN != 0 {
			c.transferPage(mem.FrameBase(ps.dramPFN), mem.FrameBase(ps.nvmPFN), false)
			c.unmapCached(ps)
		}
		c.k.Alloc.FreeFrame(ps.dramPFN)
	}
	c.free, c.clean, c.dirty, c.recent = nil, nil, nil, nil
	c.m.Core.SetHooks(nil)
	c.m.TLB.SetEvictHook(nil)
}
