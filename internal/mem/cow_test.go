package mem

import (
	"sync"
	"testing"
)

// COW fork tests: Fork freezes the frame directory and shares slabs
// read-only; writes on either side privatize a 2 MiB slab without the
// other side observing anything. Run under -race these also pin that
// parent, children and siblings never touch shared bytes concurrently.

func TestBackingForkCOWIsolation(t *testing.T) {
	b := NewBacking()
	sparsePFN := uint64(maxDenseSlabs*slabFrames) + 3
	b.WriteU64(FrameBase(10), 0xAAAA)
	b.WriteU64(FrameBase(sparsePFN), 0xBBBB)

	frozen := b.Fork()
	c1 := frozen.Fork()
	c2 := frozen.Fork()

	// Child writes privatize; the parent and the sibling keep old bytes.
	c1.WriteU64(FrameBase(10), 0x1111)
	c1.WriteU64(FrameBase(sparsePFN), 0x2222)
	if v := b.ReadU64(FrameBase(10)); v != 0xAAAA {
		t.Fatalf("parent dense frame mutated by child write: %#x", v)
	}
	if v := c2.ReadU64(FrameBase(sparsePFN)); v != 0xBBBB {
		t.Fatalf("sibling sparse frame mutated by child write: %#x", v)
	}

	// Parent writes after the fork stay invisible to children.
	b.WriteU64(FrameBase(10)+8, 0x3333)
	if v := c2.ReadU64(FrameBase(10) + 8); v != 0 {
		t.Fatalf("child sees parent's post-fork write: %#x", v)
	}
	if v := c1.ReadU64(FrameBase(10)); v != 0x1111 {
		t.Fatalf("child's own write lost: %#x", v)
	}
}

func TestBackingForkOfFork(t *testing.T) {
	a := NewBacking()
	a.WriteU64(FrameBase(0), 1)

	bb := a.Fork().Fork() // generation B
	bb.WriteU64(FrameBase(0), 2)
	bb.WriteU64(FrameBase(1), 20) // new frame only B has

	cc := bb.Fork().Fork() // generation C, forked off the modified B
	cc.WriteU64(FrameBase(0), 3)
	cc.WriteU64(FrameBase(2), 30)

	if v := a.ReadU64(FrameBase(0)); v != 1 {
		t.Fatalf("grandparent frame 0 = %d, want 1", v)
	}
	if v := bb.ReadU64(FrameBase(0)); v != 2 {
		t.Fatalf("parent frame 0 = %d, want 2", v)
	}
	if v := cc.ReadU64(FrameBase(0)); v != 3 {
		t.Fatalf("grandchild frame 0 = %d, want 3", v)
	}
	if v := cc.ReadU64(FrameBase(1)); v != 20 {
		t.Fatalf("grandchild lost inherited frame 1: %d", v)
	}
	if v := a.ReadU64(FrameBase(2)); v != 0 {
		t.Fatalf("grandparent sees grandchild's frame 2: %d", v)
	}
	if v := bb.ReadU64(FrameBase(2)); v != 0 {
		t.Fatalf("parent sees grandchild's frame 2: %d", v)
	}
}

// TestBackingForkZeroPageIsolation: a child writing to a frame nobody ever
// touched must not materialize that frame for the parent — the shared
// zero-page aliasing stays private per store.
func TestBackingForkZeroPageIsolation(t *testing.T) {
	b := NewBacking()
	b.WriteU64(FrameBase(0), 7) // one populated frame so the slab exists

	child := b.Fork().Fork()
	child.WriteU64(FrameBase(1), 42) // untouched (zero) frame in a shared slab

	if v := b.ReadU64(FrameBase(1)); v != 0 {
		t.Fatalf("parent's zero page dirtied by child: %d", v)
	}
	if n := b.PopulatedFrames(); n != 1 {
		t.Fatalf("parent PopulatedFrames = %d, want 1", n)
	}
	if n := child.PopulatedFrames(); n != 2 {
		t.Fatalf("child PopulatedFrames = %d, want 2", n)
	}
}

// TestBackingForkDropRange drops frames on one side of a shared slab; the
// other side must keep its bytes (shared slabs are replaced, not mutated).
func TestBackingForkDropRange(t *testing.T) {
	b := NewBacking()
	b.WriteU64(FrameBase(0), 100)
	b.WriteU64(FrameBase(1), 101)
	b.WriteU64(FrameBase(2), 102)

	child := b.Fork().Fork()

	// Partial drop on a shared slab: survivors deep-copy into a private slab.
	child.DropRange(FrameBase(1), PageSize)
	if v := child.ReadU64(FrameBase(1)); v != 0 {
		t.Fatalf("child frame 1 survived drop: %d", v)
	}
	if v := child.ReadU64(FrameBase(2)); v != 102 {
		t.Fatalf("child lost surviving frame 2: %d", v)
	}
	if v := b.ReadU64(FrameBase(1)); v != 101 {
		t.Fatalf("parent frame 1 dropped through shared slab: %d", v)
	}

	// Full-slab drop on the parent side: detaches without touching bytes.
	b.DropRange(FrameBase(0), 3*PageSize)
	if v := child.ReadU64(FrameBase(0)); v != 100 {
		t.Fatalf("child frame 0 dropped by parent's full drop: %d", v)
	}
	if n := b.PopulatedFrames(); n != 0 {
		t.Fatalf("parent PopulatedFrames after full drop = %d, want 0", n)
	}
}

// TestBackingForkConcurrentWriters hammers one frozen snapshot from many
// goroutines (plus the parent) — meaningful primarily under -race, where
// any write into genuinely shared memory trips the detector.
func TestBackingForkConcurrentWriters(t *testing.T) {
	parent := NewBacking()
	for pfn := uint64(0); pfn < 64; pfn++ {
		parent.WriteU64(FrameBase(pfn), pfn)
	}
	frozen := parent.Fork()

	const workers = 8
	children := make([]*Backing, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := frozen.Fork()
			for pfn := uint64(0); pfn < 64; pfn++ {
				c.WriteU64(FrameBase(pfn)+8, uint64(i+1)*1000+pfn)
			}
			children[i] = c
		}(i)
	}
	for pfn := uint64(0); pfn < 64; pfn++ {
		parent.WriteU64(FrameBase(pfn)+16, pfn*7)
	}
	wg.Wait()

	for i, c := range children {
		for pfn := uint64(0); pfn < 64; pfn++ {
			if v := c.ReadU64(FrameBase(pfn)); v != pfn {
				t.Fatalf("child %d lost inherited word: frame %d = %d", i, pfn, v)
			}
			if v := c.ReadU64(FrameBase(pfn) + 8); v != uint64(i+1)*1000+pfn {
				t.Fatalf("child %d lost own write at frame %d: %d", i, pfn, v)
			}
			if v := c.ReadU64(FrameBase(pfn) + 16); v != 0 {
				t.Fatalf("child %d sees parent's post-fork write at frame %d", i, pfn)
			}
		}
	}
	for pfn := uint64(0); pfn < 64; pfn++ {
		if v := parent.ReadU64(FrameBase(pfn) + 8); v != 0 {
			t.Fatalf("parent sees a child's write at frame %d: %d", pfn, v)
		}
	}
}

// TestBackingImageRoundTrip materializes a forked store and rebuilds it.
func TestBackingImageRoundTrip(t *testing.T) {
	b := NewBacking()
	sparsePFN := uint64(maxDenseSlabs*slabFrames) + 9
	b.WriteU64(FrameBase(3), 0x33)
	b.WriteU64(FrameBase(slabFrames+1), 0x44)
	b.WriteU64(FrameBase(sparsePFN), 0x55)

	img := b.Fork().Image()
	if len(img.PFNs) != 3 {
		t.Fatalf("image has %d frames, want 3", len(img.PFNs))
	}
	for i := 1; i < len(img.PFNs); i++ {
		if img.PFNs[i] <= img.PFNs[i-1] {
			t.Fatalf("image PFNs not ascending: %v", img.PFNs)
		}
	}
	nb, err := NewBackingFromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if v := nb.ReadU64(FrameBase(3)); v != 0x33 {
		t.Fatalf("rebuilt frame 3 = %#x", v)
	}
	if v := nb.ReadU64(FrameBase(sparsePFN)); v != 0x55 {
		t.Fatalf("rebuilt sparse frame = %#x", v)
	}
	if n := nb.PopulatedFrames(); n != 3 {
		t.Fatalf("rebuilt PopulatedFrames = %d, want 3", n)
	}
}
