// Package mem models the physical memory system of a Kindle machine: the
// hybrid DRAM+NVM address layout (with an e820-style BIOS map), a lazily
// allocated functional backing store, device timing models for DDR4 DRAM and
// PCM NVM (including the NVM controller's read/write buffers), a persist
// domain implementing crash semantics for NVM, and the memory controller
// that routes accesses.
package mem

import "fmt"

// PhysAddr is a physical byte address.
type PhysAddr uint64

// Kind identifies which memory technology backs an address.
type Kind uint8

const (
	// DRAM is volatile DDR4 memory.
	DRAM Kind = iota
	// NVM is persistent PCM memory.
	NVM
	// Hole marks unmapped physical space.
	Hole
)

func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	default:
		return "hole"
	}
}

// Size constants.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	// PageSize is the 4 KiB base page used throughout.
	PageSize = 4 * KiB
	// LineSize is the 64-byte cache line.
	LineSize = 64
	// LinesPerPage is how many cache lines a page holds (64 — one bit per
	// line fits a uint64 bitmap, which SSP exploits).
	LinesPerPage = PageSize / LineSize
)

// Layout partitions the flat physical address space between DRAM and NVM,
// mirroring the e820 entries Kindle inserts into the gem5 BIOS map.
// Paper configuration (Table I): 3 GB DRAM + 2 GB NVM.
type Layout struct {
	DRAMBase PhysAddr
	DRAMSize uint64
	NVMBase  PhysAddr
	NVMSize  uint64
}

// DefaultLayout returns the paper's Table I memory capacity: DRAM at
// [0, 3 GiB) and NVM at [3 GiB, 5 GiB).
func DefaultLayout() Layout {
	return Layout{DRAMBase: 0, DRAMSize: 3 * GiB, NVMBase: 3 * GiB, NVMSize: 2 * GiB}
}

// SmallLayout is a reduced map for unit tests: 64 MiB DRAM + 64 MiB NVM.
func SmallLayout() Layout {
	return Layout{DRAMBase: 0, DRAMSize: 64 * MiB, NVMBase: 64 * MiB, NVMSize: 64 * MiB}
}

// KindOf classifies a physical address.
func (l Layout) KindOf(pa PhysAddr) Kind {
	switch {
	case pa >= l.DRAMBase && pa < l.DRAMBase+PhysAddr(l.DRAMSize):
		return DRAM
	case pa >= l.NVMBase && pa < l.NVMBase+PhysAddr(l.NVMSize):
		return NVM
	default:
		return Hole
	}
}

// Contains reports whether [pa, pa+size) lies fully inside one region.
func (l Layout) Contains(pa PhysAddr, size uint64) bool {
	k := l.KindOf(pa)
	if k == Hole || size == 0 {
		return false
	}
	return l.KindOf(pa+PhysAddr(size-1)) == k
}

// Total returns the total installed bytes.
func (l Layout) Total() uint64 { return l.DRAMSize + l.NVMSize }

// Region is one e820 map entry.
type Region struct {
	Base PhysAddr
	Size uint64
	Kind Kind
}

func (r Region) String() string {
	return fmt.Sprintf("e820: [%#012x-%#012x] %s", r.Base, uint64(r.Base)+r.Size-1, r.Kind)
}

// E820 returns the BIOS memory map entries Kindle would install: one usable
// DRAM region and one NVM region, in address order.
func (l Layout) E820() []Region {
	regions := []Region{
		{Base: l.DRAMBase, Size: l.DRAMSize, Kind: DRAM},
		{Base: l.NVMBase, Size: l.NVMSize, Kind: NVM},
	}
	if regions[0].Base > regions[1].Base {
		regions[0], regions[1] = regions[1], regions[0]
	}
	return regions
}

// FrameNumber returns the 4 KiB frame index of pa.
func FrameNumber(pa PhysAddr) uint64 { return uint64(pa) / PageSize }

// FrameBase returns the base address of frame pfn.
func FrameBase(pfn uint64) PhysAddr { return PhysAddr(pfn * PageSize) }

// LineBase aligns pa down to its cache line.
func LineBase(pa PhysAddr) PhysAddr { return pa &^ (LineSize - 1) }

// PageBase aligns pa down to its page.
func PageBase(pa PhysAddr) PhysAddr { return pa &^ (PageSize - 1) }
