package mem

import (
	"bytes"
	"testing"
)

// TestBackingSparseAddresses exercises the map fallback above the dense
// slab window (PFN >= maxDenseSlabs*slabFrames): read/write must behave
// exactly like the dense path.
func TestBackingSparseAddresses(t *testing.T) {
	b := NewBacking()
	highPFN := uint64(maxDenseSlabs*slabFrames) + 12345
	pa := FrameBase(highPFN) + 100

	var zero [16]byte
	got := make([]byte, 16)
	b.Read(pa, got)
	if !bytes.Equal(got, zero[:]) {
		t.Fatalf("untouched sparse read = %v, want zeroes", got)
	}

	b.Write(pa, []byte("sparse-slab-data"))
	b.Read(pa, got)
	if string(got) != "sparse-slab-data" {
		t.Fatalf("sparse round trip = %q", got)
	}
	if n := b.PopulatedFrames(); n != 1 {
		t.Fatalf("PopulatedFrames = %d, want 1", n)
	}

	b.ZeroFrame(highPFN)
	b.Read(pa, got)
	if !bytes.Equal(got, zero[:]) {
		t.Fatalf("sparse frame survived ZeroFrame: %v", got)
	}
	if n := b.PopulatedFrames(); n != 0 {
		t.Fatalf("PopulatedFrames after ZeroFrame = %d, want 0", n)
	}
}

// TestBackingCrossSlabWrite writes a run spanning a slab boundary and
// checks both halves plus the populated-frame accounting.
func TestBackingCrossSlabWrite(t *testing.T) {
	b := NewBacking()
	// Last frame of slab 0 and first frame of slab 1.
	pa := FrameBase(slabFrames) - 8
	src := []byte("0123456789abcdef")
	b.Write(pa, src)
	got := make([]byte, len(src))
	b.Read(pa, got)
	if !bytes.Equal(got, src) {
		t.Fatalf("cross-slab round trip = %q, want %q", got, src)
	}
	if n := b.PopulatedFrames(); n != 2 {
		t.Fatalf("PopulatedFrames = %d, want 2", n)
	}
}

// TestBackingDropRangeAcrossSlabs populates frames in several slabs (dense
// and sparse) and drops a window covering a subset.
func TestBackingDropRangeAcrossSlabs(t *testing.T) {
	b := NewBacking()
	highPFN := uint64(maxDenseSlabs * slabFrames) // first sparse slab
	pfns := []uint64{0, 1, slabFrames - 1, slabFrames, 3 * slabFrames, highPFN}
	for _, pfn := range pfns {
		b.WriteU64(FrameBase(pfn), pfn+1)
	}
	if n := b.PopulatedFrames(); n != len(pfns) {
		t.Fatalf("PopulatedFrames = %d, want %d", n, len(pfns))
	}

	// Drop [frame 1, frame slabFrames] inclusive: kills 1, slabFrames-1,
	// slabFrames; keeps 0, 3*slabFrames and the sparse frame.
	b.DropRange(FrameBase(1), uint64(slabFrames)*PageSize)
	if n := b.PopulatedFrames(); n != 3 {
		t.Fatalf("PopulatedFrames after drop = %d, want 3", n)
	}
	for _, pfn := range []uint64{1, slabFrames - 1, slabFrames} {
		if v := b.ReadU64(FrameBase(pfn)); v != 0 {
			t.Errorf("frame %d survived DropRange: %#x", pfn, v)
		}
	}
	for _, pfn := range []uint64{0, 3 * slabFrames, highPFN} {
		if v := b.ReadU64(FrameBase(pfn)); v != pfn+1 {
			t.Errorf("frame %d = %#x, want %#x", pfn, v, pfn+1)
		}
	}

	// A drop window covering the sparse slab reaches the map fallback too.
	b.DropRange(FrameBase(highPFN), PageSize)
	if v := b.ReadU64(FrameBase(highPFN)); v != 0 {
		t.Errorf("sparse frame survived DropRange: %#x", v)
	}
	if n := b.PopulatedFrames(); n != 2 {
		t.Fatalf("PopulatedFrames after sparse drop = %d, want 2", n)
	}
}

// TestBackingUnalignedU64 checks the slow path of ReadU64/WriteU64 where
// the word straddles a frame boundary.
func TestBackingUnalignedU64(t *testing.T) {
	b := NewBacking()
	pa := FrameBase(7) - 3 // 3 bytes in frame 6, 5 bytes in frame 7
	const v = uint64(0x1122334455667788)
	b.WriteU64(pa, v)
	if got := b.ReadU64(pa); got != v {
		t.Fatalf("straddling ReadU64 = %#x, want %#x", got, v)
	}
	if n := b.PopulatedFrames(); n != 2 {
		t.Fatalf("PopulatedFrames = %d, want 2", n)
	}
}

// TestBackingCopyFrameSparse copies between dense and sparse regions.
func TestBackingCopyFrameSparse(t *testing.T) {
	b := NewBacking()
	highPFN := uint64(maxDenseSlabs*slabFrames) + 7
	b.WriteU64(FrameBase(5)+8, 0xdead)
	b.CopyFrame(highPFN, 5)
	if v := b.ReadU64(FrameBase(highPFN) + 8); v != 0xdead {
		t.Fatalf("copied sparse frame = %#x, want 0xdead", v)
	}
	// Copying from an untouched source zeroes the destination.
	b.CopyFrame(highPFN, 99)
	if v := b.ReadU64(FrameBase(highPFN) + 8); v != 0 {
		t.Fatalf("copy-from-untouched left %#x", v)
	}
}
