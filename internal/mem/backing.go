package mem

import "fmt"

// Backing is the functional content store for physical memory. Frames are
// allocated lazily so a 5 GB machine does not cost 5 GB of host memory;
// only frames actually written exist. Reads of untouched memory return
// zeroes, matching real hardware after the memory controller scrubs.
type Backing struct {
	frames map[uint64]*[PageSize]byte
}

// NewBacking returns an empty content store.
func NewBacking() *Backing {
	return &Backing{frames: make(map[uint64]*[PageSize]byte)}
}

// Read copies len(dst) bytes at pa into dst. Crossing frame boundaries is
// supported.
func (b *Backing) Read(pa PhysAddr, dst []byte) {
	for len(dst) > 0 {
		pfn := FrameNumber(pa)
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if f := b.frames[pfn]; f != nil {
			copy(dst[:n], f[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		pa += PhysAddr(n)
	}
}

// Write copies src into memory at pa.
func (b *Backing) Write(pa PhysAddr, src []byte) {
	for len(src) > 0 {
		pfn := FrameNumber(pa)
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		f := b.frames[pfn]
		if f == nil {
			f = new([PageSize]byte)
			b.frames[pfn] = f
		}
		copy(f[off:off+n], src[:n])
		src = src[n:]
		pa += PhysAddr(n)
	}
}

// ReadU64 reads a little-endian uint64 at pa.
func (b *Backing) ReadU64(pa PhysAddr) uint64 {
	var buf [8]byte
	b.Read(pa, buf[:])
	return uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
}

// WriteU64 writes a little-endian uint64 at pa.
func (b *Backing) WriteU64(pa PhysAddr, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	b.Write(pa, buf[:])
}

// ZeroFrame clears an entire 4 KiB frame (releasing backing storage).
func (b *Backing) ZeroFrame(pfn uint64) { delete(b.frames, pfn) }

// CopyFrame copies a whole frame from src to dst frame numbers.
func (b *Backing) CopyFrame(dstPFN, srcPFN uint64) {
	src := b.frames[srcPFN]
	if src == nil {
		delete(b.frames, dstPFN)
		return
	}
	dst := b.frames[dstPFN]
	if dst == nil {
		dst = new([PageSize]byte)
		b.frames[dstPFN] = dst
	}
	*dst = *src
}

// DropRange forgets contents of every frame that overlaps [base, base+size).
// Machine crash uses this to lose DRAM.
func (b *Backing) DropRange(base PhysAddr, size uint64) {
	first := FrameNumber(base)
	last := FrameNumber(base + PhysAddr(size) - 1)
	for pfn := range b.frames {
		if pfn >= first && pfn <= last {
			delete(b.frames, pfn)
		}
	}
}

// PopulatedFrames reports how many frames hold data (test/diagnostic aid).
func (b *Backing) PopulatedFrames() int { return len(b.frames) }

func (b *Backing) String() string {
	return fmt.Sprintf("mem.Backing{frames: %d}", len(b.frames))
}
