package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

const (
	// slabFrameBits sizes the leaf of the frame directory: 2^9 = 512
	// frames (2 MiB of simulated memory) per slab, so a slab's pointer
	// array is exactly one host page.
	slabFrameBits = 9
	slabFrames    = 1 << slabFrameBits

	// maxDenseSlabs bounds the flat directory: slabs below this index
	// (64 GiB of physical address space) are reached with two array
	// indexations; anything above falls back to a map, so arbitrary
	// addresses still work without a huge allocation.
	maxDenseSlabs = 1 << 15
)

// zeroFrame is the shared source for reads of untouched memory.
var zeroFrame [PageSize]byte

// frameSlab is one directory leaf: lazily allocated frames for a 2 MiB
// aligned run of physical memory.
//
// A slab marked shared is frozen: its frame array and every frame behind
// it are owned jointly by every Backing that references it (the parent a
// snapshot was taken from plus all its forks), and none of them may write
// through it. Writers privatize first — copy-on-write at 2 MiB slab
// granularity, the same aliasing idiom the package-level zeroFrame uses
// for untouched reads. Once shared, a slab stays shared forever; owners
// drop their directory entry and substitute a private copy instead, so no
// reference counting is needed and concurrent forks never race.
type frameSlab struct {
	shared bool
	frames [slabFrames]*[PageSize]byte
}

// clone deep-copies s into a fresh private slab. Frame contents are
// copied, not aliased: a pointer-only copy would let the new owner write
// bytes every other referent of s still reads.
func (s *frameSlab) clone() *frameSlab {
	ns := &frameSlab{}
	for fi, f := range s.frames {
		if f != nil {
			nf := new([PageSize]byte)
			*nf = *f
			ns.frames[fi] = nf
		}
	}
	return ns
}

// Backing is the functional content store for physical memory. Frames are
// allocated lazily so a 5 GB machine does not cost 5 GB of host memory;
// only frames actually written exist. Reads of untouched memory return
// zeroes, matching real hardware after the memory controller scrubs.
//
// Frames live behind a two-level directory (dense slab array -> frame
// pointers) indexed by PFN, so the per-access cost is two array loads
// instead of a map probe.
//
// Fork snapshots the store in O(directory) by freezing every slab and
// sharing the leaves copy-on-write; see frameSlab.
type Backing struct {
	dense     []*frameSlab          // slabs below maxDenseSlabs, grown on demand
	sparse    map[uint64]*frameSlab // slabs at/above the dense window (rare)
	populated atomic.Int64          // frames currently holding data
}

// NewBacking returns an empty content store.
func NewBacking() *Backing {
	return &Backing{}
}

// NewBackingSized returns an empty content store with the dense slab
// directory pre-sized to cover physical addresses [0, limit), so steady
// state never pays the append-grow path. Addresses past limit (or past
// the 64 GiB dense window) still work via the usual fallbacks.
func NewBackingSized(limit PhysAddr) *Backing {
	slabs := (FrameNumber(limit+PageSize-1) + slabFrames - 1) >> slabFrameBits
	if slabs > maxDenseSlabs {
		slabs = maxDenseSlabs
	}
	return &Backing{dense: make([]*frameSlab, slabs)}
}

// frame returns the frame for pfn, or nil if untouched.
func (b *Backing) frame(pfn uint64) *[PageSize]byte {
	si := pfn >> slabFrameBits
	var s *frameSlab
	if si < uint64(len(b.dense)) {
		s = b.dense[si]
	} else if si >= maxDenseSlabs {
		s = b.sparse[si]
	}
	if s == nil {
		return nil
	}
	return s.frames[pfn&(slabFrames-1)]
}

// slabForWrite returns a private (writable) slab for pfn, allocating a
// fresh slab or privatizing a shared one as needed.
func (b *Backing) slabForWrite(pfn uint64) *frameSlab {
	si := pfn >> slabFrameBits
	if si < maxDenseSlabs {
		for uint64(len(b.dense)) <= si {
			b.dense = append(b.dense, nil)
		}
		s := b.dense[si]
		switch {
		case s == nil:
			s = &frameSlab{}
			b.dense[si] = s
		case s.shared:
			s = s.clone()
			b.dense[si] = s
		}
		return s
	}
	s := b.sparse[si]
	switch {
	case s == nil:
		if b.sparse == nil {
			b.sparse = make(map[uint64]*frameSlab)
		}
		s = &frameSlab{}
		b.sparse[si] = s
	case s.shared:
		s = s.clone()
		b.sparse[si] = s
	}
	return s
}

// ensureFrame returns the frame for pfn, allocating it (and its slab) if
// needed. The returned frame is always private: callers write through it.
func (b *Backing) ensureFrame(pfn uint64) *[PageSize]byte {
	s := b.slabForWrite(pfn)
	fi := pfn & (slabFrames - 1)
	f := s.frames[fi]
	if f == nil {
		f = new([PageSize]byte)
		s.frames[fi] = f
		b.populated.Add(1)
	}
	return f
}

// Fork freezes b's current contents and returns a new Backing sharing
// them copy-on-write: both sides see identical bytes now, and a 2 MiB
// slab is deep-copied by whichever side first writes into it. The call
// itself copies only the directory, so forking a multi-GiB store is
// cheap.
//
// Fork must be called from the goroutine that owns b (it marks live slabs
// shared). A Backing that is never written after a Fork — a snapshot held
// only for further forking — keeps every slab shared, so concurrent Forks
// of it are pure reads and race-free.
func (b *Backing) Fork() *Backing {
	for _, s := range b.dense {
		if s != nil && !s.shared {
			s.shared = true
		}
	}
	for _, s := range b.sparse {
		if !s.shared {
			s.shared = true
		}
	}
	nb := &Backing{}
	if len(b.dense) > 0 {
		nb.dense = make([]*frameSlab, len(b.dense))
		copy(nb.dense, b.dense)
	}
	if len(b.sparse) > 0 {
		nb.sparse = make(map[uint64]*frameSlab, len(b.sparse))
		for si, s := range b.sparse {
			nb.sparse[si] = s
		}
	}
	nb.populated.Store(b.populated.Load())
	return nb
}

// Read copies len(dst) bytes at pa into dst. Crossing frame boundaries is
// supported.
func (b *Backing) Read(pa PhysAddr, dst []byte) {
	for len(dst) > 0 {
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if f := b.frame(FrameNumber(pa)); f != nil {
			copy(dst[:n], f[off:off+n])
		} else {
			copy(dst[:n], zeroFrame[off:off+n])
		}
		dst = dst[n:]
		pa += PhysAddr(n)
	}
}

// Write copies src into memory at pa.
func (b *Backing) Write(pa PhysAddr, src []byte) {
	for len(src) > 0 {
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		f := b.ensureFrame(FrameNumber(pa))
		copy(f[off:off+n], src[:n])
		src = src[n:]
		pa += PhysAddr(n)
	}
}

// ReadU64 reads a little-endian uint64 at pa.
func (b *Backing) ReadU64(pa PhysAddr) uint64 {
	if off := uint64(pa) % PageSize; off <= PageSize-8 {
		f := b.frame(FrameNumber(pa))
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(f[off:])
	}
	var buf [8]byte
	b.Read(pa, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteU64 writes a little-endian uint64 at pa.
func (b *Backing) WriteU64(pa PhysAddr, v uint64) {
	if off := uint64(pa) % PageSize; off <= PageSize-8 {
		f := b.ensureFrame(FrameNumber(pa))
		binary.LittleEndian.PutUint64(f[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(pa, buf[:])
}

// ZeroFrame clears an entire 4 KiB frame (releasing backing storage).
func (b *Backing) ZeroFrame(pfn uint64) {
	si := pfn >> slabFrameBits
	var s *frameSlab
	if si < uint64(len(b.dense)) {
		s = b.dense[si]
	} else if si >= maxDenseSlabs {
		s = b.sparse[si]
	}
	if s == nil {
		return
	}
	fi := pfn & (slabFrames - 1)
	if s.frames[fi] == nil {
		return
	}
	if s.shared {
		s = b.slabForWrite(pfn)
	}
	s.frames[fi] = nil
	b.populated.Add(-1)
}

// CopyFrame copies a whole frame from src to dst frame numbers.
func (b *Backing) CopyFrame(dstPFN, srcPFN uint64) {
	src := b.frame(srcPFN)
	if src == nil {
		b.ZeroFrame(dstPFN)
		return
	}
	dst := b.ensureFrame(dstPFN)
	// ensureFrame may have privatized the slab holding src; re-resolve so
	// the copy reads the surviving frame, not a stale pointer.
	if dstPFN>>slabFrameBits == srcPFN>>slabFrameBits {
		src = b.frame(srcPFN)
	}
	*dst = *src
}

// DropRange forgets contents of every frame that overlaps [base, base+size).
// Machine crash uses this to lose DRAM.
func (b *Backing) DropRange(base PhysAddr, size uint64) {
	if size == 0 {
		return
	}
	first := FrameNumber(base)
	last := FrameNumber(base + PhysAddr(size) - 1)
	for si := first >> slabFrameBits; si <= last>>slabFrameBits && si < uint64(len(b.dense)); si++ {
		b.dense[si] = b.dropFromSlab(b.dense[si], si, first, last)
	}
	for si, s := range b.sparse {
		if si >= first>>slabFrameBits && si <= last>>slabFrameBits {
			if ns := b.dropFromSlab(s, si, first, last); ns != s {
				if ns == nil {
					delete(b.sparse, si)
				} else {
					b.sparse[si] = ns
				}
			}
		}
	}
}

// dropFromSlab clears every populated frame of s whose PFN is in
// [first, last] and returns the slab to keep in the directory: s itself
// when it was private, nil when a shared slab was dropped whole, or a
// fresh private slab holding the surviving frames of a partially covered
// shared one (the frozen original is never mutated).
func (b *Backing) dropFromSlab(s *frameSlab, si, first, last uint64) *frameSlab {
	if s == nil {
		return nil
	}
	slabBase := si << slabFrameBits
	if s.shared {
		if first <= slabBase && slabBase+slabFrames-1 <= last {
			// Whole slab covered: detach it instead of copying.
			var dropped int64
			for _, f := range s.frames {
				if f != nil {
					dropped++
				}
			}
			b.populated.Add(-dropped)
			return nil
		}
		ns := &frameSlab{}
		var dropped int64
		for fi, f := range s.frames {
			if f == nil {
				continue
			}
			pfn := slabBase + uint64(fi)
			if pfn >= first && pfn <= last {
				dropped++
				continue
			}
			nf := new([PageSize]byte)
			*nf = *f
			ns.frames[fi] = nf
		}
		b.populated.Add(-dropped)
		return ns
	}
	for fi := range s.frames {
		pfn := slabBase + uint64(fi)
		if pfn >= first && pfn <= last && s.frames[fi] != nil {
			s.frames[fi] = nil
			b.populated.Add(-1)
		}
	}
	return s
}

// PopulatedFrames reports how many frames hold data (test/diagnostic aid).
func (b *Backing) PopulatedFrames() int { return int(b.populated.Load()) }

// FrameCount reports the populated-frame count. Unlike the rest of the
// Backing API it is safe to call concurrently with simulation (the count
// is atomic), which is what the /metrics resident-frames gauge needs.
func (b *Backing) FrameCount() int64 { return b.populated.Load() }

// ResidentBytes reports the simulated bytes currently holding data.
func (b *Backing) ResidentBytes() int64 { return b.populated.Load() * PageSize }

// BackingImage is a flat, serializable copy of a Backing's populated
// frames, in ascending PFN order (deterministic for byte-diffing snapshot
// files).
type BackingImage struct {
	PFNs   []uint64
	Frames [][]byte // PageSize bytes each, parallel to PFNs
}

// Image materializes b's populated frames for serialization.
func (b *Backing) Image() BackingImage {
	var img BackingImage
	collect := func(s *frameSlab, si uint64) {
		if s == nil {
			return
		}
		slabBase := si << slabFrameBits
		for fi, f := range s.frames {
			if f != nil {
				img.PFNs = append(img.PFNs, slabBase+uint64(fi))
				img.Frames = append(img.Frames, append([]byte(nil), f[:]...))
			}
		}
	}
	for si, s := range b.dense {
		collect(s, uint64(si))
	}
	sis := make([]uint64, 0, len(b.sparse))
	for si := range b.sparse {
		sis = append(sis, si)
	}
	sort.Slice(sis, func(i, j int) bool { return sis[i] < sis[j] })
	for _, si := range sis {
		collect(b.sparse[si], si)
	}
	return img
}

// NewBackingFromImage rebuilds a content store from a serialized image.
func NewBackingFromImage(img BackingImage) (*Backing, error) {
	if len(img.PFNs) != len(img.Frames) {
		return nil, fmt.Errorf("mem: backing image: %d pfns vs %d frames", len(img.PFNs), len(img.Frames))
	}
	b := NewBacking()
	for i, pfn := range img.PFNs {
		if len(img.Frames[i]) != PageSize {
			return nil, fmt.Errorf("mem: backing image: frame %d has %d bytes", i, len(img.Frames[i]))
		}
		copy(b.ensureFrame(pfn)[:], img.Frames[i])
	}
	return b, nil
}

func (b *Backing) String() string {
	return fmt.Sprintf("mem.Backing{frames: %d}", b.populated.Load())
}
