package mem

import (
	"encoding/binary"
	"fmt"
)

const (
	// slabFrameBits sizes the leaf of the frame directory: 2^9 = 512
	// frames (2 MiB of simulated memory) per slab, so a slab's pointer
	// array is exactly one host page.
	slabFrameBits = 9
	slabFrames    = 1 << slabFrameBits

	// maxDenseSlabs bounds the flat directory: slabs below this index
	// (64 GiB of physical address space) are reached with two array
	// indexations; anything above falls back to a map, so arbitrary
	// addresses still work without a huge allocation.
	maxDenseSlabs = 1 << 15
)

// zeroFrame is the shared source for reads of untouched memory.
var zeroFrame [PageSize]byte

// frameSlab is one directory leaf: lazily allocated frames for a 2 MiB
// aligned run of physical memory.
type frameSlab struct {
	frames [slabFrames]*[PageSize]byte
}

// Backing is the functional content store for physical memory. Frames are
// allocated lazily so a 5 GB machine does not cost 5 GB of host memory;
// only frames actually written exist. Reads of untouched memory return
// zeroes, matching real hardware after the memory controller scrubs.
//
// Frames live behind a two-level directory (dense slab array -> frame
// pointers) indexed by PFN, so the per-access cost is two array loads
// instead of a map probe.
type Backing struct {
	dense     []*frameSlab          // slabs below maxDenseSlabs, grown on demand
	sparse    map[uint64]*frameSlab // slabs at/above the dense window (rare)
	populated int                   // frames currently holding data
}

// NewBacking returns an empty content store.
func NewBacking() *Backing {
	return &Backing{}
}

// frame returns the frame for pfn, or nil if untouched.
func (b *Backing) frame(pfn uint64) *[PageSize]byte {
	si := pfn >> slabFrameBits
	var s *frameSlab
	if si < uint64(len(b.dense)) {
		s = b.dense[si]
	} else if si >= maxDenseSlabs {
		s = b.sparse[si]
	}
	if s == nil {
		return nil
	}
	return s.frames[pfn&(slabFrames-1)]
}

// ensureFrame returns the frame for pfn, allocating it (and its slab) if
// needed.
func (b *Backing) ensureFrame(pfn uint64) *[PageSize]byte {
	si := pfn >> slabFrameBits
	var s *frameSlab
	if si < maxDenseSlabs {
		for uint64(len(b.dense)) <= si {
			b.dense = append(b.dense, nil)
		}
		s = b.dense[si]
		if s == nil {
			s = &frameSlab{}
			b.dense[si] = s
		}
	} else {
		s = b.sparse[si]
		if s == nil {
			if b.sparse == nil {
				b.sparse = make(map[uint64]*frameSlab)
			}
			s = &frameSlab{}
			b.sparse[si] = s
		}
	}
	fi := pfn & (slabFrames - 1)
	f := s.frames[fi]
	if f == nil {
		f = new([PageSize]byte)
		s.frames[fi] = f
		b.populated++
	}
	return f
}

// Read copies len(dst) bytes at pa into dst. Crossing frame boundaries is
// supported.
func (b *Backing) Read(pa PhysAddr, dst []byte) {
	for len(dst) > 0 {
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if f := b.frame(FrameNumber(pa)); f != nil {
			copy(dst[:n], f[off:off+n])
		} else {
			copy(dst[:n], zeroFrame[off:off+n])
		}
		dst = dst[n:]
		pa += PhysAddr(n)
	}
}

// Write copies src into memory at pa.
func (b *Backing) Write(pa PhysAddr, src []byte) {
	for len(src) > 0 {
		off := uint64(pa) % PageSize
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		f := b.ensureFrame(FrameNumber(pa))
		copy(f[off:off+n], src[:n])
		src = src[n:]
		pa += PhysAddr(n)
	}
}

// ReadU64 reads a little-endian uint64 at pa.
func (b *Backing) ReadU64(pa PhysAddr) uint64 {
	if off := uint64(pa) % PageSize; off <= PageSize-8 {
		f := b.frame(FrameNumber(pa))
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(f[off:])
	}
	var buf [8]byte
	b.Read(pa, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteU64 writes a little-endian uint64 at pa.
func (b *Backing) WriteU64(pa PhysAddr, v uint64) {
	if off := uint64(pa) % PageSize; off <= PageSize-8 {
		f := b.ensureFrame(FrameNumber(pa))
		binary.LittleEndian.PutUint64(f[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(pa, buf[:])
}

// ZeroFrame clears an entire 4 KiB frame (releasing backing storage).
func (b *Backing) ZeroFrame(pfn uint64) {
	si := pfn >> slabFrameBits
	var s *frameSlab
	if si < uint64(len(b.dense)) {
		s = b.dense[si]
	} else if si >= maxDenseSlabs {
		s = b.sparse[si]
	}
	if s == nil {
		return
	}
	fi := pfn & (slabFrames - 1)
	if s.frames[fi] != nil {
		s.frames[fi] = nil
		b.populated--
	}
}

// CopyFrame copies a whole frame from src to dst frame numbers.
func (b *Backing) CopyFrame(dstPFN, srcPFN uint64) {
	src := b.frame(srcPFN)
	if src == nil {
		b.ZeroFrame(dstPFN)
		return
	}
	dst := b.ensureFrame(dstPFN)
	*dst = *src
}

// DropRange forgets contents of every frame that overlaps [base, base+size).
// Machine crash uses this to lose DRAM.
func (b *Backing) DropRange(base PhysAddr, size uint64) {
	if size == 0 {
		return
	}
	first := FrameNumber(base)
	last := FrameNumber(base + PhysAddr(size) - 1)
	for si := first >> slabFrameBits; si <= last>>slabFrameBits && si < uint64(len(b.dense)); si++ {
		b.dropFromSlab(b.dense[si], si, first, last)
	}
	for si, s := range b.sparse {
		if si >= first>>slabFrameBits && si <= last>>slabFrameBits {
			b.dropFromSlab(s, si, first, last)
		}
	}
}

// dropFromSlab clears every populated frame of s whose PFN is in
// [first, last].
func (b *Backing) dropFromSlab(s *frameSlab, si, first, last uint64) {
	if s == nil {
		return
	}
	slabBase := si << slabFrameBits
	for fi := range s.frames {
		pfn := slabBase + uint64(fi)
		if pfn >= first && pfn <= last && s.frames[fi] != nil {
			s.frames[fi] = nil
			b.populated--
		}
	}
}

// PopulatedFrames reports how many frames hold data (test/diagnostic aid).
func (b *Backing) PopulatedFrames() int { return b.populated }

func (b *Backing) String() string {
	return fmt.Sprintf("mem.Backing{frames: %d}", b.populated)
}
