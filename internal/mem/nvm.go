package mem

import "kindle/internal/sim"

// NVMTiming holds the PCM interface parameters. The paper configures gem5's
// NVM interface with PCM timings based on Song et al. (ISMM'20), which in
// turn follow Lee et al. (ISCA'09): array reads around 150 ns and writes
// (SET/RESET programming) several times slower. The controller buffers
// writes (48 entries) and reads (64 entries), per Table I.
type NVMTiming struct {
	ReadNanos  float64 // array read latency for a 64B line
	WriteNanos float64 // programming latency for a 64B line
	Burst      float64 // interface transfer time for 64B
	WriteBuf   int     // write buffer entries (Table I: 48)
	ReadBuf    int     // read buffer entries (Table I: 64)
}

// PCM returns the Table I configuration.
func PCM() NVMTiming {
	return NVMTiming{
		ReadNanos:  150,
		WriteNanos: 500,
		Burst:      3.33,
		WriteBuf:   48,
		ReadBuf:    64,
	}
}

// NVMSim models the NVM device + controller front-end. Writes are absorbed
// into a write buffer and drain in the background at the device programming
// rate; a write only stalls the requester when the buffer is full. Reads
// that hit a buffered write are served from the buffer; otherwise they pay
// the array read latency. This captures the two effects the paper's
// experiments depend on: writes are cheap until sustained write bandwidth
// exceeds the drain rate (checkpoint storms), and reads are uniformly slow
// (page-table walks in NVM).
type NVMSim struct {
	timing NVMTiming
	clock  *sim.Clock
	stats  *sim.Stats

	writes          *sim.Counter
	writeStalls     *sim.Counter
	writeStallCycle *sim.Counter
	reads           *sim.Counter
	readWbufHits    *sim.Counter

	readCycles  sim.Cycles
	writeCycles sim.Cycles
	burstCycles sim.Cycles

	// Write buffer: each entry is the line address and its drain deadline.
	// drainFree is the cycle at which the device can start the next drain.
	// The FIFO's live entries are drainHead[drainAt:]; expired entries are
	// skipped by advancing drainAt and the storage is compacted in place
	// when full, so the buffer reaches a steady capacity and never
	// reallocates again (the replay step must stay allocation-free).
	wbuf      map[PhysAddr]sim.Cycles // line -> drain completion
	drainHead []wbufEntry             // FIFO storage; live from drainAt
	drainAt   int
	drainFree sim.Cycles

	// Drain-completion event ("nvm.drain"): armed at the oldest live
	// entry's completion so the event-driven run loop sees the buffer
	// emptying as a deadline instead of discovering it lazily on the next
	// access. expire is idempotent and side-effect-free on stats, so the
	// event firing earlier than the next access changes nothing observable.
	// One Event allocation is reused for the life of the sim (Reschedule)
	// to keep the replay steady state allocation-free.
	events     *sim.Queue
	drainEv    *sim.Event
	drainFn    func(sim.Cycles)
	drainArmed bool
}

type wbufEntry struct {
	line PhysAddr
	done sim.Cycles
}

// NewNVMSim builds the NVM device model.
func NewNVMSim(t NVMTiming, clock *sim.Clock, stats *sim.Stats) *NVMSim {
	return &NVMSim{
		timing:      t,
		clock:       clock,
		stats:       stats,
		readCycles:  sim.FromNanos(t.ReadNanos),
		writeCycles: sim.FromNanos(t.WriteNanos),
		burstCycles: sim.FromNanos(t.Burst),
		wbuf:        make(map[PhysAddr]sim.Cycles),

		writes:          stats.Counter("nvm.write"),
		writeStalls:     stats.Counter("nvm.write_stall"),
		writeStallCycle: stats.Counter("nvm.write_stall_cycles"),
		reads:           stats.Counter("nvm.read"),
		readWbufHits:    stats.Counter("nvm.read_wbuf_hit"),
	}
}

// SetEvents registers the machine's event queue so buffered-write drain
// completions surface as scheduled events. Without a queue the buffer
// expires lazily on the next access, which is timing-equivalent but
// invisible to an event-driven run loop.
func (n *NVMSim) SetEvents(q *sim.Queue) {
	n.events = q
	n.drainFn = func(sim.Cycles) {
		n.drainArmed = false
		n.expire(n.clock.Now())
		n.armDrain()
	}
}

// armDrain schedules (or re-arms) the drain event at the oldest live
// entry's completion.
func (n *NVMSim) armDrain() {
	if n.events == nil || n.drainArmed || n.buffered() == 0 {
		return
	}
	when := n.drainHead[n.drainAt].done
	if n.drainEv == nil {
		n.drainEv = n.events.Schedule(when, "nvm.drain", n.drainFn)
	} else {
		n.events.Reschedule(n.drainEv, when)
	}
	n.drainArmed = true
}

// buffered reports the live write-buffer occupancy.
func (n *NVMSim) buffered() int { return len(n.drainHead) - n.drainAt }

// expire drops buffer entries whose programming completed by now.
func (n *NVMSim) expire(now sim.Cycles) {
	i := n.drainAt
	for ; i < len(n.drainHead); i++ {
		e := n.drainHead[i]
		if e.done > now {
			break
		}
		if n.wbuf[e.line] == e.done {
			delete(n.wbuf, e.line)
		}
	}
	n.drainAt = i
	if n.drainAt == len(n.drainHead) {
		n.drainHead = n.drainHead[:0]
		n.drainAt = 0
	}
}

// Access returns the latency of one 64-byte line access at pa.
func (n *NVMSim) Access(pa PhysAddr, write bool) sim.Cycles {
	line := LineBase(pa)
	now := n.clock.Now()
	n.expire(now)
	if write {
		n.writes.Inc()
		lat := n.burstCycles
		// If the buffer is full, stall until the oldest entry drains.
		if n.buffered() >= n.timing.WriteBuf {
			oldest := n.drainHead[n.drainAt]
			if oldest.done > now {
				stall := oldest.done - now
				lat += stall
				now = oldest.done
				n.writeStallCycle.Add(uint64(stall))
				n.writeStalls.Inc()
			}
			n.expire(now)
		}
		// Queue the programming operation: the device drains entries
		// serially at the programming rate.
		start := n.drainFree
		if start < now {
			start = now
		}
		done := start + n.writeCycles
		n.drainFree = done
		n.wbuf[line] = done
		if n.drainAt > 0 && len(n.drainHead) == cap(n.drainHead) {
			// Slide the live tail to the front instead of growing.
			live := copy(n.drainHead, n.drainHead[n.drainAt:])
			n.drainHead = n.drainHead[:live]
			n.drainAt = 0
		}
		n.drainHead = append(n.drainHead, wbufEntry{line: line, done: done})
		n.armDrain()
		return lat
	}
	n.reads.Inc()
	// Read hit in the write buffer: served at interface speed.
	if _, ok := n.wbuf[line]; ok {
		n.readWbufHits.Inc()
		return n.burstCycles
	}
	return n.readCycles + n.burstCycles
}

// DrainLatency returns how long the requester must wait for every buffered
// write to reach the array (a persist barrier / flush-on-fence).
func (n *NVMSim) DrainLatency() sim.Cycles {
	now := n.clock.Now()
	n.expire(now)
	if n.drainFree <= now {
		return 0
	}
	return n.drainFree - now
}

// Pending reports the number of writes still in the buffer.
func (n *NVMSim) Pending() int {
	n.expire(n.clock.Now())
	return n.buffered()
}

// Reset clears the write buffer (power-up after crash; buffered writes that
// had not reached the array are lost — the persist domain models the data
// loss, this models the timing state).
func (n *NVMSim) Reset() {
	n.wbuf = make(map[PhysAddr]sim.Cycles)
	n.drainHead = n.drainHead[:0]
	n.drainAt = 0
	n.drainFree = n.clock.Now()
	if n.drainArmed {
		n.events.Cancel(n.drainEv)
		n.drainArmed = false
	}
}
