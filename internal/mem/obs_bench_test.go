package mem

import (
	"testing"

	"kindle/internal/obs"
	"kindle/internal/sim"
)

// TestAccessLineNoAllocTracerDisabled pins the observability contract: the
// instrumented hot path must not allocate when tracing is off (nil tracer,
// the default). NVM writes are excluded — the device model itself appends
// to its drain queue — so the assertion covers DRAM read/write and NVM
// read, the paths a disabled tracer must leave untouched.
func TestAccessLineNoAllocTracerDisabled(t *testing.T) {
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), sim.NewClock(), sim.NewStats())
	dram := c.Layout.DRAMBase
	nvm := c.Layout.NVMBase
	// Warm up histogram registration and device state.
	c.AccessLine(dram, false)
	c.AccessLine(dram, true)
	c.AccessLine(nvm, false)
	allocs := testing.AllocsPerRun(1000, func() {
		c.AccessLine(dram, false)
		c.AccessLine(dram, true)
		c.AccessLine(nvm, false)
	})
	if allocs != 0 {
		t.Fatalf("AccessLine allocates %v per run with tracing disabled", allocs)
	}
}

// BenchmarkTracerDisabled measures the instrumented AccessLine with no
// tracer installed — the overhead every non-tracing run pays.
func BenchmarkTracerDisabled(b *testing.B) {
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), sim.NewClock(), sim.NewStats())
	pa := c.Layout.DRAMBase
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AccessLine(pa, i&1 == 1)
	}
}

// BenchmarkTracerEnabled is the paired measurement with all categories on,
// quantifying the cost of emission into the ring buffer.
func BenchmarkTracerEnabled(b *testing.B) {
	clock := sim.NewClock()
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), clock, sim.NewStats())
	c.SetTracer(obs.New(clock, obs.DefaultBufferCap, obs.CatAll))
	pa := c.Layout.DRAMBase
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AccessLine(pa, i&1 == 1)
	}
}
