package mem

import "testing"

// The backing-store benchmarks exercise the functional path every simulated
// byte takes: 8-byte reads/writes striding across a working set of frames
// (the frame-resolution cost dominates), plus reads of untouched memory
// (the zero-fill path demand faults hit first).

const benchFrames = 1 << 14 // 64 MiB working set

func BenchmarkBackingWrite8(b *testing.B) {
	bk := NewBacking()
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := PhysAddr(uint64(i%benchFrames)*PageSize + uint64(i)%PageSize&^7)
		bk.Write(pa, buf[:])
	}
}

func BenchmarkBackingRead8(b *testing.B) {
	bk := NewBacking()
	var buf [8]byte
	for f := 0; f < benchFrames; f++ {
		bk.Write(PhysAddr(f)*PageSize, buf[:])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := PhysAddr(uint64(i%benchFrames)*PageSize + uint64(i)%PageSize&^7)
		bk.Read(pa, buf[:])
	}
}

func BenchmarkBackingReadUntouchedLine(b *testing.B) {
	bk := NewBacking()
	var line [LineSize]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Read(PhysAddr(uint64(i%benchFrames)*PageSize), line[:])
	}
}
