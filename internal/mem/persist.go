package mem

import (
	"fmt"
	"sort"

	"kindle/internal/sim"
)

// PersistDomain implements NVM crash semantics on top of the functional
// Backing store. CPU stores to NVM first land in the volatile cache
// hierarchy; they become durable only when the line is written back —
// explicitly (clwb + fence) or implicitly (dirty eviction). A power failure
// loses everything not yet written back.
//
// Rather than holding data functionally inside the simulated caches, the
// domain keeps two images per dirty NVM line: the *committed* bytes (what
// the array holds) and the *pending* bytes (what the caches hold). Commit
// moves pending to committed; Crash discards pending. Reads through the
// memory system observe pending data (caches are coherent); recovery code
// running after a crash observes committed data only.
type PersistDomain struct {
	layout  Layout
	backing *Backing
	stats   *sim.Stats

	// pending maps a line base address to the cached (not yet durable)
	// contents of the full 64-byte line. The backing store continues to
	// hold the committed image until commit time.
	pending map[PhysAddr]*[LineSize]byte

	// freeBufs recycles line buffers between pending cycles (a line going
	// dirty → committed → dirty again is the common case and should not
	// allocate each round trip).
	freeBufs []*[LineSize]byte

	// hook, when non-nil, observes (and may intercept) every line commit.
	// Fault injection installs one; nil costs a single branch.
	hook CommitHook

	commits *sim.Counter
}

// CommitOutcome tells the domain what to do with one line commit.
type CommitOutcome int

const (
	// CommitFull lets the whole line become durable (the default).
	CommitFull CommitOutcome = iota
	// CommitNone suppresses the commit: the line stays volatile.
	CommitNone
	// CommitTorn makes only the first Words 8-byte words of the line
	// durable, modeling a power failure mid-line on a device with an
	// 8-byte atomic write unit (PCM).
	CommitTorn
)

// CommitDecision is a CommitHook's verdict on one durability event. The
// zero value means "commit fully, keep running".
type CommitDecision struct {
	Outcome CommitOutcome
	// Words is the torn-prefix length in 8-byte words (1..7) for
	// CommitTorn.
	Words int
	// Crash aborts the simulation at this exact point by panicking with
	// CommitCrash after the outcome is applied; the harness recovers the
	// panic and calls Machine.Crash (see internal/fault).
	Crash bool
}

// CommitHook observes every NVM line-commit (durability) event: clwb/clflush
// completion, dirty write-back from the cache hierarchy, and each line of a
// CommitRange/CommitAll. It runs before the line becomes durable.
type CommitHook interface {
	OnCommit(line PhysAddr) CommitDecision
}

// CommitCrash is the panic value a CommitDecision with Crash set raises; it
// models a power failure at a precise durability event.
type CommitCrash struct {
	Line PhysAddr
}

func (c CommitCrash) String() string {
	return fmt.Sprintf("injected crash at commit of line %#x", uint64(c.Line))
}

// SetCommitHook installs (nil removes) the commit interceptor.
func (p *PersistDomain) SetCommitHook(h CommitHook) { p.hook = h }

// NewPersistDomain wraps backing with crash semantics for the NVM region of
// layout.
func NewPersistDomain(layout Layout, backing *Backing, stats *sim.Stats) *PersistDomain {
	return &PersistDomain{
		layout:  layout,
		backing: backing,
		stats:   stats,
		pending: make(map[PhysAddr]*[LineSize]byte),
		commits: stats.Counter("persist.commit"),
	}
}

// isNVM reports whether pa belongs to the persistent region.
func (p *PersistDomain) isNVM(pa PhysAddr) bool { return p.layout.KindOf(pa) == NVM }

// pendingNVM returns the pending buffer for line if pa is NVM and the line
// has one.
func (p *PersistDomain) pendingNVM(pa, line PhysAddr) (*[LineSize]byte, bool) {
	if !p.isNVM(pa) {
		return nil, false
	}
	buf, ok := p.pending[line]
	return buf, ok
}

// Read copies the *cache-visible* bytes at pa into dst: pending data where
// it exists, committed data elsewhere. Accesses may span lines.
func (p *PersistDomain) Read(pa PhysAddr, dst []byte) {
	for len(dst) > 0 {
		line := LineBase(pa)
		off := uint64(pa - line)
		n := uint64(LineSize) - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		// Test the region before probing the pending map: DRAM reads (the
		// page-walk path issues many) never have pending data, and the
		// layout check is two compares against a map lookup.
		if buf, ok := p.pendingNVM(pa, line); ok {
			copy(dst[:n], buf[off:off+n])
		} else {
			p.backing.Read(pa, dst[:n])
		}
		dst = dst[n:]
		pa += PhysAddr(n)
	}
}

// Write stores src at pa with cache-visible (volatile for NVM) semantics.
// DRAM writes go straight to backing — DRAM has no durability to model and
// is dropped wholesale on crash. NVM writes populate the pending image.
func (p *PersistDomain) Write(pa PhysAddr, src []byte) {
	for len(src) > 0 {
		line := LineBase(pa)
		off := uint64(pa - line)
		n := uint64(LineSize) - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		if p.isNVM(pa) {
			buf, ok := p.pending[line]
			if !ok {
				if n := len(p.freeBufs); n > 0 {
					buf = p.freeBufs[n-1]
					p.freeBufs = p.freeBufs[:n-1]
				} else {
					buf = new([LineSize]byte)
				}
				p.backing.Read(line, buf[:]) // start from committed image
				p.pending[line] = buf
			}
			copy(buf[off:off+n], src[:n])
		} else {
			p.backing.Write(pa, src[:n])
		}
		src = src[n:]
		pa += PhysAddr(n)
	}
}

// CommitLine makes the pending contents of the line containing pa durable.
// Called on clwb/clflush completion and on dirty write-back of an NVM line
// from the cache hierarchy. Committing a line with no pending data is a
// no-op (clwb of a clean line).
func (p *PersistDomain) CommitLine(pa PhysAddr) {
	line := LineBase(pa)
	buf, ok := p.pending[line]
	if !ok {
		return
	}
	if p.hook != nil {
		d := p.hook.OnCommit(line)
		switch d.Outcome {
		case CommitNone:
			// The line stays volatile (and is lost if d.Crash follows).
			if d.Crash {
				panic(CommitCrash{Line: line})
			}
			return
		case CommitTorn:
			w := d.Words
			if w < 1 {
				w = 1
			}
			if w > LineSize/8-1 {
				w = LineSize/8 - 1
			}
			p.backing.Write(line, buf[:w*8])
			p.stats.Inc("persist.commit_torn")
			if d.Crash {
				panic(CommitCrash{Line: line})
			}
			return
		default:
			if d.Crash {
				// Full commit, then power loss: the line is durable but
				// nothing after it is.
				p.backing.Write(line, buf[:])
				p.release(line, buf)
				p.commits.Inc()
				panic(CommitCrash{Line: line})
			}
		}
	}
	p.backing.Write(line, buf[:])
	p.release(line, buf)
	p.commits.Inc()
}

// release retires a no-longer-pending line's buffer into the recycle pool
// (bounded so one huge dirty burst cannot pin buffers forever).
func (p *PersistDomain) release(line PhysAddr, buf *[LineSize]byte) {
	delete(p.pending, line)
	if len(p.freeBufs) < 1<<14 {
		p.freeBufs = append(p.freeBufs, buf)
	}
}

// CommitRange commits every pending line overlapping [pa, pa+size).
func (p *PersistDomain) CommitRange(pa PhysAddr, size uint64) int {
	if size == 0 {
		return 0
	}
	n := 0
	for line := LineBase(pa); line < pa+PhysAddr(size); line += LineSize {
		if _, ok := p.pending[line]; ok {
			p.CommitLine(line)
			n++
		}
	}
	return n
}

// CommitAll drains every pending line (a full persist barrier, used by the
// checkpoint boundary, orderly shutdown and tests). Lines commit in address
// order so the sequence of durability events is deterministic — commit-point
// fault injection replays runs and must observe identical event streams.
func (p *PersistDomain) CommitAll() int {
	lines := make([]PhysAddr, 0, len(p.pending))
	for line := range p.pending {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		p.CommitLine(line)
	}
	return len(lines)
}

// PendingLines reports how many NVM lines are dirty-in-cache.
func (p *PersistDomain) PendingLines() int { return len(p.pending) }

// PendingInRange reports dirty-in-cache lines overlapping [pa, pa+size).
func (p *PersistDomain) PendingInRange(pa PhysAddr, size uint64) int {
	n := 0
	end := pa + PhysAddr(size)
	for line := range p.pending {
		if line >= pa && line < end {
			n++
		}
	}
	return n
}

// Crash models power loss: all pending (non-durable) NVM data is lost and
// all DRAM contents disappear. The committed NVM image survives untouched.
func (p *PersistDomain) Crash() {
	dropped := len(p.pending)
	for line, buf := range p.pending {
		p.release(line, buf)
	}
	p.pending = make(map[PhysAddr]*[LineSize]byte)
	p.stats.Add("persist.crash_lost_lines", uint64(dropped))
	p.backing.DropRange(p.layout.DRAMBase, p.layout.DRAMSize)
	p.stats.Inc("persist.crashes")
}

// ReadCommitted reads the durable image directly, bypassing pending data.
// Only post-crash assertions in tests need it; recovery code simply uses
// Read after Crash has discarded pending lines.
func (p *PersistDomain) ReadCommitted(pa PhysAddr, dst []byte) {
	p.backing.Read(pa, dst)
}
