package mem

import "kindle/internal/sim"

// PersistDomain implements NVM crash semantics on top of the functional
// Backing store. CPU stores to NVM first land in the volatile cache
// hierarchy; they become durable only when the line is written back —
// explicitly (clwb + fence) or implicitly (dirty eviction). A power failure
// loses everything not yet written back.
//
// Rather than holding data functionally inside the simulated caches, the
// domain keeps two images per dirty NVM line: the *committed* bytes (what
// the array holds) and the *pending* bytes (what the caches hold). Commit
// moves pending to committed; Crash discards pending. Reads through the
// memory system observe pending data (caches are coherent); recovery code
// running after a crash observes committed data only.
type PersistDomain struct {
	layout  Layout
	backing *Backing
	stats   *sim.Stats

	// pending maps a line base address to the cached (not yet durable)
	// contents of the full 64-byte line. The backing store continues to
	// hold the committed image until commit time.
	pending map[PhysAddr]*[LineSize]byte

	commits *sim.Counter
}

// NewPersistDomain wraps backing with crash semantics for the NVM region of
// layout.
func NewPersistDomain(layout Layout, backing *Backing, stats *sim.Stats) *PersistDomain {
	return &PersistDomain{
		layout:  layout,
		backing: backing,
		stats:   stats,
		pending: make(map[PhysAddr]*[LineSize]byte),
		commits: stats.Counter("persist.commit"),
	}
}

// isNVM reports whether pa belongs to the persistent region.
func (p *PersistDomain) isNVM(pa PhysAddr) bool { return p.layout.KindOf(pa) == NVM }

// Read copies the *cache-visible* bytes at pa into dst: pending data where
// it exists, committed data elsewhere. Accesses may span lines.
func (p *PersistDomain) Read(pa PhysAddr, dst []byte) {
	for len(dst) > 0 {
		line := LineBase(pa)
		off := uint64(pa - line)
		n := uint64(LineSize) - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if buf, ok := p.pending[line]; ok && p.isNVM(pa) {
			copy(dst[:n], buf[off:off+n])
		} else {
			p.backing.Read(pa, dst[:n])
		}
		dst = dst[n:]
		pa += PhysAddr(n)
	}
}

// Write stores src at pa with cache-visible (volatile for NVM) semantics.
// DRAM writes go straight to backing — DRAM has no durability to model and
// is dropped wholesale on crash. NVM writes populate the pending image.
func (p *PersistDomain) Write(pa PhysAddr, src []byte) {
	for len(src) > 0 {
		line := LineBase(pa)
		off := uint64(pa - line)
		n := uint64(LineSize) - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		if p.isNVM(pa) {
			buf, ok := p.pending[line]
			if !ok {
				buf = new([LineSize]byte)
				p.backing.Read(line, buf[:]) // start from committed image
				p.pending[line] = buf
			}
			copy(buf[off:off+n], src[:n])
		} else {
			p.backing.Write(pa, src[:n])
		}
		src = src[n:]
		pa += PhysAddr(n)
	}
}

// CommitLine makes the pending contents of the line containing pa durable.
// Called on clwb/clflush completion and on dirty write-back of an NVM line
// from the cache hierarchy. Committing a line with no pending data is a
// no-op (clwb of a clean line).
func (p *PersistDomain) CommitLine(pa PhysAddr) {
	line := LineBase(pa)
	buf, ok := p.pending[line]
	if !ok {
		return
	}
	p.backing.Write(line, buf[:])
	delete(p.pending, line)
	p.commits.Inc()
}

// CommitRange commits every pending line overlapping [pa, pa+size).
func (p *PersistDomain) CommitRange(pa PhysAddr, size uint64) int {
	if size == 0 {
		return 0
	}
	n := 0
	for line := LineBase(pa); line < pa+PhysAddr(size); line += LineSize {
		if _, ok := p.pending[line]; ok {
			p.CommitLine(line)
			n++
		}
	}
	return n
}

// CommitAll drains every pending line (a full persist barrier, used by
// orderly shutdown and by tests).
func (p *PersistDomain) CommitAll() int {
	n := 0
	for line := range p.pending {
		p.CommitLine(line)
		n++
	}
	return n
}

// PendingLines reports how many NVM lines are dirty-in-cache.
func (p *PersistDomain) PendingLines() int { return len(p.pending) }

// PendingInRange reports dirty-in-cache lines overlapping [pa, pa+size).
func (p *PersistDomain) PendingInRange(pa PhysAddr, size uint64) int {
	n := 0
	end := pa + PhysAddr(size)
	for line := range p.pending {
		if line >= pa && line < end {
			n++
		}
	}
	return n
}

// Crash models power loss: all pending (non-durable) NVM data is lost and
// all DRAM contents disappear. The committed NVM image survives untouched.
func (p *PersistDomain) Crash() {
	dropped := len(p.pending)
	p.pending = make(map[PhysAddr]*[LineSize]byte)
	p.stats.Add("persist.crash_lost_lines", uint64(dropped))
	p.backing.DropRange(p.layout.DRAMBase, p.layout.DRAMSize)
	p.stats.Inc("persist.crashes")
}

// ReadCommitted reads the durable image directly, bypassing pending data.
// Only post-crash assertions in tests need it; recovery code simply uses
// Read after Crash has discarded pending lines.
func (p *PersistDomain) ReadCommitted(pa PhysAddr, dst []byte) {
	p.backing.Read(pa, dst)
}
