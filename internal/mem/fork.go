package mem

import (
	"fmt"
	"sort"

	"kindle/internal/sim"
)

// This file captures and restores the memory system's mutable state for
// machine snapshots. Frame contents do not appear here — they ride in the
// copy-on-write Backing (Backing.Fork) and are swapped in wholesale on
// restore; what this file mirrors is the small device/domain state around
// them: DRAM open rows, the NVM write buffer, and the persist domain's
// dirty-in-cache lines. Every State type is plain data (gob-encodable)
// with deterministic slice ordering.

// WBufEntryState is one live NVM write-buffer entry (FIFO order).
type WBufEntryState struct {
	Line uint64
	Done sim.Cycles
}

// NVMState mirrors the NVM controller front-end: the live drain FIFO (the
// line->deadline map is derivable from it) and the device's next free
// programming slot. The drain event's arming is captured with the rest of
// the pending events by the machine layer, not here.
type NVMState struct {
	Drain     []WBufEntryState
	DrainFree sim.Cycles
}

// PendingLineState is one dirty-in-cache NVM line: volatile contents that
// a crash would lose.
type PendingLineState struct {
	Line uint64
	Data [LineSize]byte
}

// ControllerState is the memory system's snapshot (minus frame contents).
type ControllerState struct {
	DRAMOpenRows []int64
	NVM          NVMState
	Pending      []PendingLineState
}

// CaptureState copies the controller's mutable device and domain state.
func (c *Controller) CaptureState() ControllerState {
	var st ControllerState
	st.DRAMOpenRows = append([]int64(nil), c.dram.openRow...)
	live := c.nvm.drainHead[c.nvm.drainAt:]
	st.NVM.Drain = make([]WBufEntryState, len(live))
	for i, e := range live {
		st.NVM.Drain[i] = WBufEntryState{Line: uint64(e.line), Done: e.done}
	}
	st.NVM.DrainFree = c.nvm.drainFree
	st.Pending = make([]PendingLineState, 0, len(c.domain.pending))
	for line, buf := range c.domain.pending {
		st.Pending = append(st.Pending, PendingLineState{Line: uint64(line), Data: *buf})
	}
	sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].Line < st.Pending[j].Line })
	return st
}

// RestoreState overwrites the controller's device/domain state from a
// capture and swaps in backing as the functional store (normally a
// Backing.Fork of the captured machine's). The controller must be freshly
// constructed with the same layout and timing parameters.
func (c *Controller) RestoreState(st ControllerState, backing *Backing) error {
	if backing == nil {
		return fmt.Errorf("mem: RestoreState needs a backing store")
	}
	c.backing = backing
	c.domain.backing = backing

	if len(st.DRAMOpenRows) != len(c.dram.openRow) {
		return fmt.Errorf("mem: RestoreState: %d open rows vs %d banks", len(st.DRAMOpenRows), len(c.dram.openRow))
	}
	copy(c.dram.openRow, st.DRAMOpenRows)

	n := c.nvm
	n.drainHead = n.drainHead[:0]
	n.drainAt = 0
	n.wbuf = make(map[PhysAddr]sim.Cycles, len(st.NVM.Drain))
	for _, e := range st.NVM.Drain {
		n.drainHead = append(n.drainHead, wbufEntry{line: PhysAddr(e.Line), done: e.Done})
		// Later entries for the same line overwrite earlier ones, exactly
		// the state the live writes left behind.
		n.wbuf[PhysAddr(e.Line)] = e.Done
	}
	n.drainFree = st.NVM.DrainFree
	n.drainArmed = false

	p := c.domain
	p.pending = make(map[PhysAddr]*[LineSize]byte, len(st.Pending))
	for i := range st.Pending {
		buf := new([LineSize]byte)
		*buf = st.Pending[i].Data
		p.pending[PhysAddr(st.Pending[i].Line)] = buf
	}
	return nil
}

// RearmDrain re-arms the drain-completion event at an exact deadline
// captured from a snapshot's pending-event list. Restores use this
// instead of armDrain so a fork reproduces the parent's (possibly stale,
// harmlessly early) arming rather than re-deriving it from the FIFO.
func (n *NVMSim) RearmDrain(when sim.Cycles) {
	if n.events == nil {
		return
	}
	if n.drainArmed {
		n.events.Cancel(n.drainEv)
	}
	if n.drainEv == nil {
		n.drainEv = n.events.Schedule(when, "nvm.drain", n.drainFn)
	} else {
		n.events.Reschedule(n.drainEv, when)
	}
	n.drainArmed = true
}
