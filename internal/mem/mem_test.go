package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"kindle/internal/sim"
)

func TestLayoutKinds(t *testing.T) {
	l := DefaultLayout()
	if l.Total() != 5*GiB {
		t.Fatalf("total = %d, want 5GiB", l.Total())
	}
	cases := []struct {
		pa   PhysAddr
		want Kind
	}{
		{0, DRAM},
		{3*GiB - 1, DRAM},
		{3 * GiB, NVM},
		{5*GiB - 1, NVM},
		{5 * GiB, Hole},
	}
	for _, tc := range cases {
		if got := l.KindOf(tc.pa); got != tc.want {
			t.Errorf("KindOf(%#x) = %v, want %v", tc.pa, got, tc.want)
		}
	}
	if !l.Contains(0, PageSize) || l.Contains(3*GiB-1, 2) || l.Contains(5*GiB-1, 2) {
		t.Fatal("Contains misjudges region boundaries")
	}
	if l.Contains(0, 0) {
		t.Fatal("Contains(_, 0) should be false")
	}
}

func TestE820(t *testing.T) {
	regions := DefaultLayout().E820()
	if len(regions) != 2 {
		t.Fatalf("e820 entries = %d, want 2", len(regions))
	}
	if regions[0].Kind != DRAM || regions[0].Size != 3*GiB {
		t.Fatalf("first region %+v", regions[0])
	}
	if regions[1].Kind != NVM || regions[1].Base != 3*GiB || regions[1].Size != 2*GiB {
		t.Fatalf("second region %+v", regions[1])
	}
	if regions[0].String() == "" || DRAM.String() != "DRAM" || NVM.String() != "NVM" || Hole.String() != "hole" {
		t.Fatal("String() renderings broken")
	}
}

func TestFrameHelpers(t *testing.T) {
	if FrameNumber(PageSize+5) != 1 || FrameBase(3) != 3*PageSize {
		t.Fatal("frame helpers wrong")
	}
	if LineBase(130) != 128 || PageBase(PageSize+17) != PageSize {
		t.Fatal("alignment helpers wrong")
	}
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
}

func TestBackingReadWrite(t *testing.T) {
	b := NewBacking()
	data := []byte("hello hybrid memory")
	// Write across a frame boundary.
	pa := PhysAddr(PageSize - 5)
	b.Write(pa, data)
	got := make([]byte, len(data))
	b.Read(pa, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-frame round trip: got %q", got)
	}
	// Untouched memory reads zero.
	z := make([]byte, 16)
	b.Read(10*PageSize, z)
	for _, v := range z {
		if v != 0 {
			t.Fatal("untouched memory not zero")
		}
	}
}

func TestBackingU64(t *testing.T) {
	b := NewBacking()
	b.WriteU64(1000, 0xDEADBEEFCAFEF00D)
	if got := b.ReadU64(1000); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("u64 round trip = %#x", got)
	}
	if b.ReadU64(5000) != 0 {
		t.Fatal("untouched u64 not zero")
	}
}

func TestBackingRoundTripProperty(t *testing.T) {
	b := NewBacking()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		pa := PhysAddr(off)
		b.Write(pa, data)
		got := make([]byte, len(data))
		b.Read(pa, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackingCopyZeroFrame(t *testing.T) {
	b := NewBacking()
	b.Write(FrameBase(2), []byte{1, 2, 3})
	b.CopyFrame(5, 2)
	got := make([]byte, 3)
	b.Read(FrameBase(5), got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("CopyFrame: %v", got)
	}
	// Copy from an unpopulated frame zeroes the destination.
	b.CopyFrame(5, 9)
	b.Read(FrameBase(5), got)
	if !bytes.Equal(got, []byte{0, 0, 0}) {
		t.Fatalf("CopyFrame from empty: %v", got)
	}
	b.Write(FrameBase(7), []byte{9})
	b.ZeroFrame(7)
	one := make([]byte, 1)
	b.Read(FrameBase(7), one)
	if one[0] != 0 {
		t.Fatal("ZeroFrame did not clear")
	}
}

func TestBackingDropRange(t *testing.T) {
	b := NewBacking()
	b.Write(FrameBase(1), []byte{1})
	b.Write(FrameBase(10), []byte{2})
	b.DropRange(FrameBase(0), 5*PageSize)
	one := make([]byte, 1)
	b.Read(FrameBase(1), one)
	if one[0] != 0 {
		t.Fatal("DropRange missed frame 1")
	}
	b.Read(FrameBase(10), one)
	if one[0] != 2 {
		t.Fatal("DropRange dropped out-of-range frame")
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	stats := sim.NewStats()
	d := NewDRAMSim(DDR4_2400(), 0, stats)
	// First access opens the row.
	first := d.Access(0, false)
	// Second access in the same row is a row hit and strictly cheaper.
	hit := d.Access(64, false)
	if hit >= first {
		t.Fatalf("row hit (%d) not cheaper than row open (%d)", hit, first)
	}
	// Access to a different row in the same bank is a row miss, the most
	// expensive case.
	rowSz := DDR4_2400().RowSz
	banks := uint64(DDR4_2400().Banks)
	miss := d.Access(PhysAddr(rowSz*banks), false) // same bank, next row
	if miss <= hit {
		t.Fatalf("row miss (%d) not dearer than hit (%d)", miss, hit)
	}
	if stats.Get("dram.row_hit") != 1 || stats.Get("dram.row_miss") != 2 {
		t.Fatalf("row stats: hit=%d miss=%d", stats.Get("dram.row_hit"), stats.Get("dram.row_miss"))
	}
	d.Reset()
	if got := d.Access(0, true); got != first {
		t.Fatalf("after Reset, access = %d, want %d (row closed again)", got, first)
	}
}

func TestNVMReadWriteAsymmetry(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	n := NewNVMSim(PCM(), clock, stats)
	r := n.Access(0, false)
	w := n.Access(64, true)
	// An isolated write is absorbed by the buffer: cheaper than an array
	// read from the requester's perspective.
	if w >= r {
		t.Fatalf("buffered write (%d) should beat array read (%d)", w, r)
	}
	if r < sim.FromNanos(150) {
		t.Fatalf("read latency %d below array time", r)
	}
}

func TestNVMWriteBufferFillsAndStalls(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	n := NewNVMSim(PCM(), clock, stats)
	// Issue a burst of writes with no time passing: buffer must fill at
	// its capacity (48) and then writes must stall.
	for i := 0; i < PCM().WriteBuf; i++ {
		lat := n.Access(PhysAddr(i*64), true)
		clock.Advance(lat)
	}
	if stats.Get("nvm.write_stall") != 0 {
		t.Fatal("stalled before buffer was full")
	}
	lat := n.Access(PhysAddr(999*64), true)
	if stats.Get("nvm.write_stall") == 0 {
		t.Fatal("no stall when buffer full")
	}
	if lat <= sim.FromNanos(PCM().Burst) {
		t.Fatalf("stalled write latency %d suspiciously low", lat)
	}
}

func TestNVMWriteBufferDrains(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	n := NewNVMSim(PCM(), clock, stats)
	for i := 0; i < 10; i++ {
		clock.Advance(n.Access(PhysAddr(i*64), true))
	}
	if n.Pending() == 0 {
		t.Fatal("no pending writes after burst")
	}
	clock.Advance(n.DrainLatency())
	if n.Pending() != 0 {
		t.Fatalf("pending = %d after waiting for drain", n.Pending())
	}
	if n.DrainLatency() != 0 {
		t.Fatal("drain latency nonzero when buffer empty")
	}
}

// TestNVMDrainEvents: with an event queue attached, buffered writes arm an
// "nvm.drain" deadline so an event-driven run loop sees the buffer empty
// without another access; the event re-arms while entries remain, disarms
// when the buffer is empty, and Reset (power failure) cancels it.
func TestNVMDrainEvents(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	q := sim.NewQueue()
	n := NewNVMSim(PCM(), clock, stats)
	n.SetEvents(q)

	for i := 0; i < 10; i++ {
		clock.Advance(n.Access(PhysAddr(i*64), true))
	}
	if q.Len() != 1 {
		t.Fatalf("pending events = %d, want 1 armed drain", q.Len())
	}
	when, _ := q.NextDeadline()
	if when <= clock.Now() {
		t.Fatalf("drain armed at %d, not in the future of %d", when, clock.Now())
	}
	// Walk the clock forward firing only events: the buffer must empty
	// through the drain chain alone (no further accesses), and the last
	// firing must disarm the event.
	for q.Len() > 0 {
		next, _ := q.NextDeadline()
		clock.AdvanceTo(next)
		q.RunDue(next)
	}
	if got := n.buffered(); got != 0 {
		t.Fatalf("buffer holds %d entries after drain events", got)
	}
	if n.DrainLatency() != 0 {
		t.Fatal("drain latency nonzero after event-driven drain")
	}

	// A new write re-arms; Reset must cancel the pending drain.
	n.Access(4096, true)
	if q.Len() != 1 {
		t.Fatalf("pending events after new write = %d, want 1", q.Len())
	}
	n.Reset()
	if q.Len() != 0 {
		t.Fatalf("pending events after Reset = %d, want 0", q.Len())
	}
	// And re-arming after a Reset reuses the same handle safely.
	n.Access(8192, true)
	if q.Len() != 1 {
		t.Fatalf("pending events after post-reset write = %d, want 1", q.Len())
	}
}

func TestNVMReadHitsWriteBuffer(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	n := NewNVMSim(PCM(), clock, stats)
	n.Access(128, true)
	lat := n.Access(128, false)
	if lat >= sim.FromNanos(PCM().ReadNanos) {
		t.Fatalf("read of buffered line paid array latency: %d", lat)
	}
	if stats.Get("nvm.read_wbuf_hit") != 1 {
		t.Fatal("write-buffer read hit not counted")
	}
}

func TestPersistDomainCommitAndCrash(t *testing.T) {
	l := SmallLayout()
	stats := sim.NewStats()
	b := NewBacking()
	p := NewPersistDomain(l, b, stats)
	nvmPA := l.NVMBase

	p.Write(nvmPA, []byte("durable?"))
	// Cache-visible read sees pending data.
	got := make([]byte, 8)
	p.Read(nvmPA, got)
	if string(got) != "durable?" {
		t.Fatalf("pending read: %q", got)
	}
	// Not yet committed: crash loses it.
	p.Crash()
	p.Read(nvmPA, got)
	if string(got) == "durable?" {
		t.Fatal("uncommitted NVM write survived crash")
	}

	p.Write(nvmPA, []byte("durable!"))
	p.CommitLine(nvmPA)
	p.Crash()
	p.Read(nvmPA, got)
	if string(got) != "durable!" {
		t.Fatalf("committed NVM write lost: %q", got)
	}
}

func TestPersistDomainDRAMLostOnCrash(t *testing.T) {
	l := SmallLayout()
	p := NewPersistDomain(l, NewBacking(), sim.NewStats())
	p.Write(l.DRAMBase+100, []byte{42})
	p.Crash()
	got := make([]byte, 1)
	p.Read(l.DRAMBase+100, got)
	if got[0] != 0 {
		t.Fatal("DRAM contents survived crash")
	}
}

func TestPersistDomainCommitRange(t *testing.T) {
	l := SmallLayout()
	p := NewPersistDomain(l, NewBacking(), sim.NewStats())
	for i := 0; i < 4; i++ {
		p.Write(l.NVMBase+PhysAddr(i*LineSize), []byte{byte(i + 1)})
	}
	if p.PendingLines() != 4 {
		t.Fatalf("pending = %d, want 4", p.PendingLines())
	}
	if n := p.PendingInRange(l.NVMBase, 2*LineSize); n != 2 {
		t.Fatalf("PendingInRange = %d, want 2", n)
	}
	n := p.CommitRange(l.NVMBase, 2*LineSize)
	if n != 2 || p.PendingLines() != 2 {
		t.Fatalf("CommitRange committed %d, pending %d", n, p.PendingLines())
	}
	p.Crash()
	got := make([]byte, 1)
	p.Read(l.NVMBase, got)
	if got[0] != 1 {
		t.Fatal("committed line lost")
	}
	p.Read(l.NVMBase+2*LineSize, got)
	if got[0] != 0 {
		t.Fatal("uncommitted line survived")
	}
}

func TestPersistDomainCommitAll(t *testing.T) {
	l := SmallLayout()
	p := NewPersistDomain(l, NewBacking(), sim.NewStats())
	for i := 0; i < 8; i++ {
		p.Write(l.NVMBase+PhysAddr(i*LineSize), []byte{0xAB})
	}
	if got := p.CommitAll(); got != 8 {
		t.Fatalf("CommitAll = %d, want 8", got)
	}
	if p.PendingLines() != 0 {
		t.Fatal("pending lines remain after CommitAll")
	}
	// Idempotent on clean lines.
	p.CommitLine(l.NVMBase)
	if got := p.CommitAll(); got != 0 {
		t.Fatalf("CommitAll on clean domain = %d", got)
	}
}

func TestPersistPropertyCommittedSurvives(t *testing.T) {
	l := SmallLayout()
	p := NewPersistDomain(l, NewBacking(), sim.NewStats())
	f := func(lineIdx uint8, val byte, commit bool) bool {
		pa := l.NVMBase + PhysAddr(uint64(lineIdx)*LineSize)
		p.Write(pa, []byte{val})
		if commit {
			p.CommitLine(pa)
		}
		p.Crash()
		got := make([]byte, 1)
		p.Read(pa, got)
		if commit {
			return got[0] == val
		}
		// Without commit, the line must hold whatever was last committed
		// there (possibly from an earlier iteration) — never the fresh val
		// unless val coincides. We can only assert the value equals the
		// committed image.
		comm := make([]byte, 1)
		p.ReadCommitted(pa, comm)
		return got[0] == comm[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRouting(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), clock, stats)
	dLat := c.AccessLine(0, false)
	nLat := c.AccessLine(c.Layout.NVMBase, false)
	if nLat <= dLat {
		t.Fatalf("NVM read (%d) should be slower than DRAM read (%d)", nLat, dLat)
	}
	if stats.Get("dram.read") != 1 || stats.Get("nvm.read") != 1 {
		t.Fatal("routing stats wrong")
	}
}

func TestControllerUnmappedPanics(t *testing.T) {
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), sim.NewClock(), sim.NewStats())
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic")
		}
	}()
	c.AccessLine(PhysAddr(10*GiB), false)
}

func TestControllerFunctionalU64(t *testing.T) {
	c := NewController(SmallLayout(), DDR4_2400(), PCM(), sim.NewClock(), sim.NewStats())
	c.WriteU64(c.Layout.NVMBase+8, 12345)
	if got := c.ReadU64(c.Layout.NVMBase + 8); got != 12345 {
		t.Fatalf("controller u64 = %d", got)
	}
	c.Domain().CommitLine(c.Layout.NVMBase + 8)
	c.Crash()
	if got := c.ReadU64(c.Layout.NVMBase + 8); got != 12345 {
		t.Fatalf("after crash committed u64 = %d", got)
	}
}

func BenchmarkDRAMAccessSequential(b *testing.B) {
	d := NewDRAMSim(DDR4_2400(), 0, sim.NewStats())
	for i := 0; i < b.N; i++ {
		d.Access(PhysAddr((i*64)%(1<<26)), false)
	}
}

func BenchmarkNVMWrite(b *testing.B) {
	clock := sim.NewClock()
	n := NewNVMSim(PCM(), clock, sim.NewStats())
	for i := 0; i < b.N; i++ {
		clock.Advance(n.Access(PhysAddr((i*64)%(1<<26)), true))
	}
}

func BenchmarkPersistDomainWrite(b *testing.B) {
	l := SmallLayout()
	p := NewPersistDomain(l, NewBacking(), sim.NewStats())
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		p.Write(l.NVMBase+PhysAddr((i*8)%(1<<20)), buf)
	}
}

func TestNVMSameLineRewriteCoalesces(t *testing.T) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	n := NewNVMSim(PCM(), clock, stats)
	// Two writes to the same line enqueue two drains; the buffer entry
	// tracks the newest. A read between them still hits the buffer, and
	// draining clears both without panicking or leaking entries.
	n.Access(64, true)
	n.Access(64, true)
	if lat := n.Access(64, false); lat >= sim.FromNanos(PCM().ReadNanos) {
		t.Fatalf("read after rewrite paid array latency: %d", lat)
	}
	clock.Advance(n.DrainLatency())
	if n.Pending() != 0 {
		t.Fatalf("pending after drain: %d", n.Pending())
	}
	// After the drain, reads pay the array again.
	if lat := n.Access(64, false); lat < sim.FromNanos(PCM().ReadNanos) {
		t.Fatalf("post-drain read too cheap: %d", lat)
	}
}

func TestDRAMDifferentBanksIndependentRows(t *testing.T) {
	stats := sim.NewStats()
	d := NewDRAMSim(DDR4_2400(), 0, stats)
	rowSz := DDR4_2400().RowSz
	// Open rows in two banks; re-touching each is a hit for both.
	d.Access(0, false)                  // bank 0
	d.Access(PhysAddr(rowSz), false)    // bank 1
	d.Access(32, false)                 // bank 0 again
	d.Access(PhysAddr(rowSz+32), false) // bank 1 again
	if stats.Get("dram.row_hit") != 2 {
		t.Fatalf("row hits = %d, want 2 (independent banks)", stats.Get("dram.row_hit"))
	}
}
