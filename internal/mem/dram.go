package mem

import "kindle/internal/sim"

// DRAMTiming holds the DDR4-2400 16x4 device parameters used by the paper
// (Table I). Values are nanoseconds of the standard JEDEC timings.
type DRAMTiming struct {
	TRCD  float64 // ACT to internal read/write
	TCAS  float64 // CAS latency
	TRP   float64 // precharge
	Burst float64 // data burst transfer time for one 64B line
	Banks int     // banks per rank used for row-buffer interleave
	RowSz uint64  // row (page) size per bank in bytes
}

// DDR4_2400 returns DDR4-2400 timing: tCL-tRCD-tRP = 17-17-17 DRAM clocks at
// 1200 MHz → 14.16 ns each; a 64-byte burst (BL8) moves in 8 beats at
// 2400 MT/s → 3.33 ns.
func DDR4_2400() DRAMTiming {
	return DRAMTiming{
		TRCD:  14.16,
		TCAS:  14.16,
		TRP:   14.16,
		Burst: 3.33,
		Banks: 16,
		RowSz: 8 * KiB,
	}
}

// DRAMSim is the timing model of the DRAM device behind the controller. It
// tracks an open row per bank; accesses hitting the open row pay CAS only,
// misses pay precharge+activate+CAS. This reproduces the locality behaviour
// (sequential scans fast, random pointer-chasing slow) without simulating
// command-bus scheduling.
type DRAMSim struct {
	timing  DRAMTiming
	base    PhysAddr
	openRow []int64 // open row id per bank, -1 when closed
	stats   *sim.Stats

	rowHitCycles  sim.Cycles
	rowMissCycles sim.Cycles
	burstCycles   sim.Cycles

	rowHits   *sim.Counter
	rowMisses *sim.Counter
	writes    *sim.Counter
	reads     *sim.Counter
}

// NewDRAMSim builds the device model for the region starting at base.
func NewDRAMSim(t DRAMTiming, base PhysAddr, stats *sim.Stats) *DRAMSim {
	d := &DRAMSim{
		timing:  t,
		base:    base,
		openRow: make([]int64, t.Banks),
		stats:   stats,

		rowHits:   stats.Counter("dram.row_hit"),
		rowMisses: stats.Counter("dram.row_miss"),
		writes:    stats.Counter("dram.write"),
		reads:     stats.Counter("dram.read"),
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	d.rowHitCycles = sim.FromNanos(t.TCAS)
	d.rowMissCycles = sim.FromNanos(t.TRP + t.TRCD + t.TCAS)
	d.burstCycles = sim.FromNanos(t.Burst)
	return d
}

// bankAndRow decodes the bank index and row id of a line address. Rows are
// interleaved across banks at row granularity, the common open-page mapping.
func (d *DRAMSim) bankAndRow(pa PhysAddr) (bank int, row int64) {
	off := uint64(pa - d.base)
	rowGlobal := off / d.timing.RowSz
	return int(rowGlobal % uint64(d.timing.Banks)), int64(rowGlobal / uint64(d.timing.Banks))
}

// Access returns the device latency for one 64-byte line transfer at pa.
// Write and read share timing at the device level for DRAM.
func (d *DRAMSim) Access(pa PhysAddr, write bool) sim.Cycles {
	bank, row := d.bankAndRow(pa)
	lat := d.burstCycles
	if d.openRow[bank] == row {
		lat += d.rowHitCycles
		d.rowHits.Inc()
	} else {
		if d.openRow[bank] == -1 {
			lat += sim.FromNanos(d.timing.TRCD + d.timing.TCAS)
		} else {
			lat += d.rowMissCycles
		}
		d.openRow[bank] = row
		d.rowMisses.Inc()
	}
	if write {
		d.writes.Inc()
	} else {
		d.reads.Inc()
	}
	return lat
}

// Reset closes all rows (power-up state).
func (d *DRAMSim) Reset() {
	for i := range d.openRow {
		d.openRow[i] = -1
	}
}
