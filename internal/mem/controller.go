package mem

import (
	"fmt"

	"kindle/internal/obs"
	"kindle/internal/sim"
)

// Controller is the memory-side port of the machine: it routes line-sized
// timing requests to the DRAM or NVM device model and byte-ranged functional
// requests to the persist-domain-wrapped backing store.
type Controller struct {
	Layout  Layout
	clock   *sim.Clock
	stats   *sim.Stats
	dram    *DRAMSim
	nvm     *NVMSim
	domain  *PersistDomain
	backing *Backing

	tr *obs.Tracer // nil when tracing is off

	// Per-kind device-latency distributions plus NVM write-buffer
	// occupancy, sampled on every timing access.
	dramReadLat  *sim.Histogram
	dramWriteLat *sim.Histogram
	nvmReadLat   *sim.Histogram
	nvmWriteLat  *sim.Histogram
	nvmWbufOcc   *sim.Histogram
}

// NewController assembles the full memory system for layout.
func NewController(layout Layout, dramT DRAMTiming, nvmT NVMTiming, clock *sim.Clock, stats *sim.Stats) *Controller {
	end := layout.DRAMBase + PhysAddr(layout.DRAMSize)
	if nvmEnd := layout.NVMBase + PhysAddr(layout.NVMSize); nvmEnd > end {
		end = nvmEnd
	}
	backing := NewBackingSized(end)
	return &Controller{
		Layout:       layout,
		clock:        clock,
		stats:        stats,
		dram:         NewDRAMSim(dramT, layout.DRAMBase, stats),
		nvm:          NewNVMSim(nvmT, clock, stats),
		domain:       NewPersistDomain(layout, backing, stats),
		backing:      backing,
		dramReadLat:  stats.Hist("mem.dram.read_lat"),
		dramWriteLat: stats.Hist("mem.dram.write_lat"),
		nvmReadLat:   stats.Hist("mem.nvm.read_lat"),
		nvmWriteLat:  stats.Hist("mem.nvm.write_lat"),
		nvmWbufOcc:   stats.Hist("mem.nvm.wbuf_occupancy"),
	}
}

// SetTracer installs the event tracer (nil disables).
func (c *Controller) SetTracer(tr *obs.Tracer) { c.tr = tr }

// AccessLine returns the device latency for one 64-byte line at pa. It is
// the timing path used by the cache hierarchy on misses and write-backs.
func (c *Controller) AccessLine(pa PhysAddr, write bool) sim.Cycles {
	switch c.Layout.KindOf(pa) {
	case DRAM:
		lat := c.dram.Access(pa, write)
		if write {
			c.dramWriteLat.ObserveCycles(lat)
		} else {
			c.dramReadLat.ObserveCycles(lat)
		}
		if c.tr.Enabled(obs.CatMem) {
			name := "dram.read"
			if write {
				name = "dram.write"
			}
			c.tr.Span(obs.CatMem, name, c.clock.Now(), lat, "pa", uint64(pa))
		}
		return lat
	case NVM:
		lat := c.nvm.Access(pa, write)
		if write {
			c.nvmWriteLat.ObserveCycles(lat)
		} else {
			c.nvmReadLat.ObserveCycles(lat)
		}
		c.nvmWbufOcc.Observe(uint64(c.nvm.buffered()))
		if c.tr.Enabled(obs.CatMem) {
			name := "nvm.read"
			if write {
				name = "nvm.write"
			}
			c.tr.Span(obs.CatMem, name, c.clock.Now(), lat, "pa", uint64(pa))
			c.tr.Counter(obs.CatMem, "nvm.wbuf", uint64(c.nvm.buffered()))
		}
		return lat
	default:
		panic(fmt.Sprintf("mem: access to unmapped physical address %#x", pa))
	}
}

// Read performs a functional read of cache-visible data.
func (c *Controller) Read(pa PhysAddr, dst []byte) { c.domain.Read(pa, dst) }

// Write performs a functional write with cache-visible semantics (volatile
// for NVM until committed).
func (c *Controller) Write(pa PhysAddr, src []byte) { c.domain.Write(pa, src) }

// ReadU64 reads a little-endian uint64 (cache-visible).
func (c *Controller) ReadU64(pa PhysAddr) uint64 {
	var buf [8]byte
	c.domain.Read(pa, buf[:])
	return uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
}

// WriteU64 writes a little-endian uint64 (cache-visible).
func (c *Controller) WriteU64(pa PhysAddr, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	c.domain.Write(pa, buf[:])
}

// Domain exposes the persist domain (commit, crash, pending queries).
func (c *Controller) Domain() *PersistDomain { return c.domain }

// NVM exposes the NVM device model (drain latency for fences).
func (c *Controller) NVM() *NVMSim { return c.nvm }

// DRAM exposes the DRAM device model.
func (c *Controller) DRAM() *DRAMSim { return c.dram }

// Backing exposes the raw functional store (page-copy helpers).
func (c *Controller) Backing() *Backing { return c.backing }

// Crash applies power-failure semantics to the whole memory system: DRAM
// and non-committed NVM lines are lost; device timing state resets.
func (c *Controller) Crash() {
	c.domain.Crash()
	c.dram.Reset()
	c.nvm.Reset()
}
