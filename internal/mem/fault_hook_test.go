package mem

import (
	"testing"

	"kindle/internal/sim"
)

// hookFunc adapts a closure to CommitHook for tests.
type hookFunc func(line PhysAddr) CommitDecision

func (f hookFunc) OnCommit(line PhysAddr) CommitDecision { return f(line) }

func newTestDomain() (*PersistDomain, Layout) {
	l := SmallLayout()
	return NewPersistDomain(l, NewBacking(), sim.NewStats()), l
}

// TestCommitHookTorn: a CommitTorn decision persists only the prefix of
// 8-byte words, leaving the tail at its previously committed image.
func TestCommitHookTorn(t *testing.T) {
	p, l := newTestDomain()
	line := l.NVMBase

	// Establish a committed baseline.
	for w := 0; w < 8; w++ {
		var buf [8]byte
		buf[0] = byte(0x10 + w)
		p.Write(line+PhysAddr(w*8), buf[:])
	}
	p.CommitLine(line)

	// Overwrite every word, then commit torn after 3 words.
	for w := 0; w < 8; w++ {
		var buf [8]byte
		buf[0] = byte(0xA0 + w)
		p.Write(line+PhysAddr(w*8), buf[:])
	}
	p.SetCommitHook(hookFunc(func(PhysAddr) CommitDecision {
		return CommitDecision{Outcome: CommitTorn, Words: 3}
	}))
	p.CommitLine(line)
	p.SetCommitHook(nil)

	var got [8]byte
	for w := 0; w < 8; w++ {
		p.ReadCommitted(line+PhysAddr(w*8), got[:])
		want := byte(0x10 + w)
		if w < 3 {
			want = byte(0xA0 + w)
		}
		if got[0] != want {
			t.Fatalf("word %d: committed %#x, want %#x", w, got[0], want)
		}
	}
}

// TestCommitHookNoneKeepsLineVolatile: a suppressed commit leaves the line
// pending, and a crash then drops it back to the committed image.
func TestCommitHookNoneKeepsLineVolatile(t *testing.T) {
	p, l := newTestDomain()
	line := l.NVMBase
	p.Write(line, []byte{1})
	p.CommitLine(line)

	p.Write(line, []byte{2})
	p.SetCommitHook(hookFunc(func(PhysAddr) CommitDecision {
		return CommitDecision{Outcome: CommitNone}
	}))
	p.CommitLine(line)
	p.SetCommitHook(nil)
	if p.PendingLines() != 1 {
		t.Fatalf("suppressed commit left %d pending lines, want 1", p.PendingLines())
	}
	p.Crash()
	var b [1]byte
	p.Read(line, b[:])
	if b[0] != 1 {
		t.Fatalf("after crash read %d, want committed 1", b[0])
	}
}

// TestCommitHookCrashPanics: Crash in the decision raises CommitCrash after
// applying the outcome (here: full commit, then power loss).
func TestCommitHookCrashPanics(t *testing.T) {
	p, l := newTestDomain()
	line := l.NVMBase
	p.Write(line, []byte{7})
	p.SetCommitHook(hookFunc(func(PhysAddr) CommitDecision {
		return CommitDecision{Outcome: CommitFull, Crash: true}
	}))
	defer func() {
		r := recover()
		cc, ok := r.(CommitCrash)
		if !ok {
			t.Fatalf("recovered %v, want CommitCrash", r)
		}
		if cc.Line != LineBase(line) {
			t.Fatalf("CommitCrash.Line = %#x, want %#x", uint64(cc.Line), uint64(LineBase(line)))
		}
		// The decision was CommitFull: the line landed before the failure.
		var b [1]byte
		p.ReadCommitted(line, b[:])
		if b[0] != 7 {
			t.Fatalf("full-commit-then-crash lost the line: %d", b[0])
		}
	}()
	p.CommitLine(line)
	t.Fatal("CommitLine returned despite Crash decision")
}

// TestCommitAllAddressOrder: the full persist barrier commits lines in
// ascending address order so fault-injection replays see a deterministic
// event stream regardless of map iteration order.
func TestCommitAllAddressOrder(t *testing.T) {
	p, l := newTestDomain()
	// Dirty lines in a scattered order.
	for _, off := range []uint64{7, 2, 5, 0, 3, 6, 1, 4} {
		p.Write(l.NVMBase+PhysAddr(off*LineSize), []byte{byte(off + 1)})
	}
	var seen []PhysAddr
	p.SetCommitHook(hookFunc(func(line PhysAddr) CommitDecision {
		seen = append(seen, line)
		return CommitDecision{}
	}))
	if n := p.CommitAll(); n != 8 {
		t.Fatalf("CommitAll committed %d lines, want 8", n)
	}
	p.SetCommitHook(nil)
	if len(seen) != 8 {
		t.Fatalf("hook saw %d commits, want 8", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("commit order not ascending: %#x after %#x", uint64(seen[i]), uint64(seen[i-1]))
		}
	}
}
