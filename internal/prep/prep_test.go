package prep

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDriverRunsAllBenchmarks(t *testing.T) {
	d := &Driver{Small: true}
	for _, name := range Benchmarks() {
		res, err := d.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Image.Benchmark != name {
			t.Fatalf("benchmark name mismatch: %s", res.Image.Benchmark)
		}
		if len(res.Image.Records) == 0 {
			t.Fatalf("%s produced empty trace", name)
		}
		if res.MapsText == "" || res.TemplateCode == "" {
			t.Fatalf("%s missing artifacts", name)
		}
	}
}

func TestDriverRejectsUnknown(t *testing.T) {
	d := &Driver{Small: true}
	if _, err := d.Run("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMapsTextFormat(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchPageRank)
	lines := strings.Split(strings.TrimSpace(res.MapsText), "\n")
	if len(lines) != len(res.Image.Areas) {
		t.Fatalf("maps lines = %d, areas = %d", len(lines), len(res.Image.Areas))
	}
	for _, l := range lines {
		if !strings.Contains(l, "-") || !strings.Contains(l, "p ") {
			t.Fatalf("malformed maps line: %q", l)
		}
	}
	if !strings.Contains(res.MapsText, "[heap.rank]") {
		t.Fatal("heap area missing from maps")
	}
	if !strings.Contains(res.MapsText, "[stack.main]") {
		t.Fatal("stack area missing from maps (SniP capture)")
	}
}

func TestStackAreas(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchYCSB)
	stacks := StackAreas(res.Image)
	if len(stacks) != 1 || !strings.HasPrefix(stacks[0].Name, "stack") {
		t.Fatalf("stacks = %+v", stacks)
	}
}

func TestTemplateCode(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchSSSP)
	code := res.TemplateCode
	for _, want := range []string{"MAP_NVM", "mmap(NULL", "kindle_next_tuple", "munmap(", "G500_sssp"} {
		if !strings.Contains(code, want) {
			t.Fatalf("template missing %q", want)
		}
	}
	// One mmap per area.
	if got := strings.Count(code, "mmap(NULL"); got != len(res.Image.Areas) {
		t.Fatalf("mmap count %d, areas %d", got, len(res.Image.Areas))
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := &Driver{Small: true, OutDir: dir}
	res, err := d.Run(BenchYCSB)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImagePath != filepath.Join(dir, "Ycsb_mem.img") {
		t.Fatalf("image path %q", res.ImagePath)
	}
	img, err := ReadImageFile(res.ImagePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Records) != len(res.Image.Records) {
		t.Fatal("records lost in file round trip")
	}
	if _, err := ReadImageFile(filepath.Join(dir, "missing.img")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDriverStreamsV2 runs the driver in streaming mode: records must flow
// straight to the compressed on-disk image, never materializing, and the
// image must decode to exactly what a materialized run produces.
func TestDriverStreamsV2(t *testing.T) {
	dir := t.TempDir()
	d := &Driver{OutDir: dir, Small: true, Format: FormatV2}
	res, err := d.Run(BenchYCSB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Image.Records) != 0 {
		t.Fatalf("streaming run materialized %d records", len(res.Image.Records))
	}
	if res.Records == 0 || res.ReadPct <= 0 || res.WritePct <= 0 {
		t.Fatalf("summary empty: %d records, %.0f/%.0f", res.Records, res.ReadPct, res.WritePct)
	}

	ref, err := (&Driver{Small: true}).Run(BenchYCSB)
	if err != nil {
		t.Fatal(err)
	}
	img, err := ReadImageFile(res.ImagePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Records) != len(ref.Image.Records) {
		t.Fatalf("streamed image has %d records, materialized %d", len(img.Records), len(ref.Image.Records))
	}
	for i := range ref.Image.Records {
		if img.Records[i] != ref.Image.Records[i] {
			t.Fatalf("record %d differs: %+v != %+v", i, img.Records[i], ref.Image.Records[i])
		}
	}
	if res.Records != len(ref.Image.Records) {
		t.Fatalf("res.Records = %d, want %d", res.Records, len(ref.Image.Records))
	}
}

// TestDriverV2SmallerOnDisk checks the format actually pays for itself.
func TestDriverV2SmallerOnDisk(t *testing.T) {
	dirV1 := t.TempDir()
	dirV2 := t.TempDir()
	if _, err := (&Driver{OutDir: dirV1, Small: true}).Run(BenchYCSB); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Driver{OutDir: dirV2, Small: true, Format: FormatV2}).Run(BenchYCSB); err != nil {
		t.Fatal(err)
	}
	s1 := fileSize(t, filepath.Join(dirV1, BenchYCSB+".img"))
	s2 := fileSize(t, filepath.Join(dirV2, BenchYCSB+".img"))
	if s2*2 > s1 {
		t.Fatalf("v2 image %d B not ≥2x smaller than v1 %d B", s2, s1)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestConvertImage round-trips v1 → v2 → v1 through the converter.
func TestConvertImage(t *testing.T) {
	dir := t.TempDir()
	res, err := (&Driver{OutDir: dir, Small: true}).Run(BenchYCSB)
	if err != nil {
		t.Fatal(err)
	}
	v2Path := filepath.Join(dir, "conv.v2.img")
	n, err := ConvertImage(res.ImagePath, v2Path, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Image.Records) {
		t.Fatalf("converted %d records, want %d", n, len(res.Image.Records))
	}
	v1Path := filepath.Join(dir, "conv.v1.img")
	if _, err := ConvertImage(v2Path, v1Path, FormatV1); err != nil {
		t.Fatal(err)
	}
	img, err := ReadImageFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Image.Records {
		if img.Records[i] != res.Image.Records[i] {
			t.Fatalf("record %d lost in conversion", i)
		}
	}
	if _, err := ConvertImage(res.ImagePath, v1Path, "v3"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestOpenImageStream decodes both formats through the streaming opener.
func TestOpenImageStream(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{FormatV1, FormatV2} {
		d := &Driver{OutDir: filepath.Join(dir, format), Small: true, Format: format}
		res, err := d.Run(BenchYCSB)
		if err != nil {
			t.Fatal(err)
		}
		src, err := OpenImageStream(res.ImagePath)
		if err != nil {
			t.Fatal(err)
		}
		if src.Benchmark() != BenchYCSB {
			t.Fatalf("%s: benchmark %q", format, src.Benchmark())
		}
		if src.Total() != res.Records {
			t.Fatalf("%s: total %d, want %d", format, src.Total(), res.Records)
		}
		n := 0
		for {
			batch, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(batch)
		}
		if n != res.Records {
			t.Fatalf("%s: streamed %d of %d records", format, n, res.Records)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
