package prep

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDriverRunsAllBenchmarks(t *testing.T) {
	d := &Driver{Small: true}
	for _, name := range Benchmarks() {
		res, err := d.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Image.Benchmark != name {
			t.Fatalf("benchmark name mismatch: %s", res.Image.Benchmark)
		}
		if len(res.Image.Records) == 0 {
			t.Fatalf("%s produced empty trace", name)
		}
		if res.MapsText == "" || res.TemplateCode == "" {
			t.Fatalf("%s missing artifacts", name)
		}
	}
}

func TestDriverRejectsUnknown(t *testing.T) {
	d := &Driver{Small: true}
	if _, err := d.Run("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMapsTextFormat(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchPageRank)
	lines := strings.Split(strings.TrimSpace(res.MapsText), "\n")
	if len(lines) != len(res.Image.Areas) {
		t.Fatalf("maps lines = %d, areas = %d", len(lines), len(res.Image.Areas))
	}
	for _, l := range lines {
		if !strings.Contains(l, "-") || !strings.Contains(l, "p ") {
			t.Fatalf("malformed maps line: %q", l)
		}
	}
	if !strings.Contains(res.MapsText, "[heap.rank]") {
		t.Fatal("heap area missing from maps")
	}
	if !strings.Contains(res.MapsText, "[stack.main]") {
		t.Fatal("stack area missing from maps (SniP capture)")
	}
}

func TestStackAreas(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchYCSB)
	stacks := StackAreas(res.Image)
	if len(stacks) != 1 || !strings.HasPrefix(stacks[0].Name, "stack") {
		t.Fatalf("stacks = %+v", stacks)
	}
}

func TestTemplateCode(t *testing.T) {
	d := &Driver{Small: true}
	res, _ := d.Run(BenchSSSP)
	code := res.TemplateCode
	for _, want := range []string{"MAP_NVM", "mmap(NULL", "kindle_next_tuple", "munmap(", "G500_sssp"} {
		if !strings.Contains(code, want) {
			t.Fatalf("template missing %q", want)
		}
	}
	// One mmap per area.
	if got := strings.Count(code, "mmap(NULL"); got != len(res.Image.Areas) {
		t.Fatalf("mmap count %d, areas %d", got, len(res.Image.Areas))
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := &Driver{Small: true, OutDir: dir}
	res, err := d.Run(BenchYCSB)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImagePath != filepath.Join(dir, "Ycsb_mem.img") {
		t.Fatalf("image path %q", res.ImagePath)
	}
	img, err := ReadImageFile(res.ImagePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Records) != len(res.Image.Records) {
		t.Fatal("records lost in file round trip")
	}
	if _, err := ReadImageFile(filepath.Join(dir, "missing.img")); err == nil {
		t.Fatal("missing file accepted")
	}
}
