// Package prep is Kindle's preparation component. In the paper it is the
// host-side half of the framework: a driver program coordinates the
// application's execution under Intel Pin (and SniP for per-thread stacks),
// captures the virtual memory layout from /proc/pid/maps, and an
// image/code generator turns the trace into (a) a disk image of
// (period, offset, operation, size, area) tuples for gem5 and (b) a gemOS
// template program that replays them.
//
// Here the instrumented workloads (internal/workloads) play the role of
// Pin: they emit the same tuples. This package provides the rest — the
// driver orchestration, the maps-format layout capture, the stack-area
// capture, the binary disk image on disk, and the generated template code.
package prep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// Benchmark names accepted by the driver (Table II, plus the
// multi-threaded YCSB variant exercising the SniP stack capture).
const (
	BenchPageRank = "Gapbs_pr"
	BenchSSSP     = "G500_sssp"
	BenchYCSB     = "Ycsb_mem"
	BenchYCSBMT   = "Ycsb_mem_mt"
)

// Benchmarks lists the standard applications in Table II order (the
// multi-threaded variant last).
func Benchmarks() []string { return []string{BenchPageRank, BenchSSSP, BenchYCSB, BenchYCSBMT} }

// Result is everything the preparation run produces.
type Result struct {
	Image        *trace.Image
	MapsText     string // /proc/pid/maps-style capture
	TemplateCode string // generated gemOS replay template
	ImagePath    string // written disk image ("" when OutDir unset)
	TemplatePath string
}

// Driver coordinates tracing and image generation, the role of the paper's
// driver program (1) and code/image generator (2).
type Driver struct {
	// OutDir, when set, receives the disk image and template code files.
	OutDir string
	// Small selects the reduced test-scale workload configurations.
	Small bool
}

// Run traces the named benchmark and generates its artifacts.
func (d *Driver) Run(benchmark string) (*Result, error) {
	img, err := d.traceBenchmark(benchmark)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Image:        img,
		MapsText:     MapsText(img),
		TemplateCode: GenerateTemplate(img),
	}
	if d.OutDir != "" {
		if err := os.MkdirAll(d.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("prep: %w", err)
		}
		res.ImagePath = filepath.Join(d.OutDir, benchmark+".img")
		if err := WriteImageFile(res.ImagePath, img); err != nil {
			return nil, err
		}
		res.TemplatePath = filepath.Join(d.OutDir, benchmark+"_template.c")
		if err := os.WriteFile(res.TemplatePath, []byte(res.TemplateCode), 0o644); err != nil {
			return nil, fmt.Errorf("prep: writing template: %w", err)
		}
	}
	return res, nil
}

// traceBenchmark runs the instrumented application (the Pin stand-in).
func (d *Driver) traceBenchmark(benchmark string) (*trace.Image, error) {
	switch benchmark {
	case BenchPageRank:
		cfg := workloads.DefaultPageRank()
		if d.Small {
			cfg = workloads.SmallPageRank()
		}
		return workloads.PageRank(cfg)
	case BenchSSSP:
		cfg := workloads.DefaultSSSP()
		if d.Small {
			cfg = workloads.SmallSSSP()
		}
		return workloads.SSSP(cfg)
	case BenchYCSB:
		cfg := workloads.DefaultYCSB()
		if d.Small {
			cfg = workloads.SmallYCSB()
		}
		return workloads.YCSB(cfg)
	case BenchYCSBMT:
		cfg := workloads.DefaultYCSBMT()
		if d.Small {
			cfg = workloads.SmallYCSBMT()
		}
		return workloads.YCSBMT(cfg)
	default:
		return nil, fmt.Errorf("prep: unknown benchmark %q (want one of %v)", benchmark, Benchmarks())
	}
}

// MapsText renders the captured virtual memory layout in the
// /proc/pid/maps format the driver program reads on Linux. Areas are
// placed at synthetic base addresses in capture order; stack areas (the
// SniP-captured regions for threads) render with their thread tag.
func MapsText(img *trace.Image) string {
	var b strings.Builder
	base := uint64(0x4000_0000)
	for _, a := range img.Areas {
		perms := "r--p"
		if a.Write {
			perms = "rw-p"
		}
		name := a.Name
		switch {
		case strings.HasPrefix(name, "heap"):
			name = "[" + name + "]"
		case strings.HasPrefix(name, "stack"):
			name = "[" + name + "]"
		}
		fmt.Fprintf(&b, "%012x-%012x %s 00000000 00:00 0    %s\n", base, base+a.Size, perms, name)
		base += a.Size + 0x10000 // guard gap
	}
	return b.String()
}

// StackAreas returns the stack areas of the image — the part of the layout
// SniP contributes for multi-threaded applications (the maps file alone
// cannot attribute thread stacks).
func StackAreas(img *trace.Image) []trace.Area {
	var out []trace.Area
	for _, a := range img.Areas {
		if strings.HasPrefix(a.Name, "stack") {
			out = append(out, a)
		}
	}
	return out
}

// GenerateTemplate emits the gemOS template program the code generator
// produces: heap and stack allocations matching the traced layout plus the
// replay loop reading tuples from the disk image. Users of Kindle edit this
// template to add functionality before launching init.
func GenerateTemplate(img *trace.Image) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* Generated by Kindle's code generator for %s.\n", img.Benchmark)
	b.WriteString(" * Allocations mirror the traced application's layout; the replay loop\n")
	b.WriteString(" * reads (period, offset, operation, size, area) tuples from the disk\n")
	b.WriteString(" * image and mimics each access. Edit before launching init if needed. */\n\n")
	b.WriteString("#include <gemos.h>\n\n")
	fmt.Fprintf(&b, "static void *area[%d];\n\n", len(img.Areas))
	b.WriteString("int main(void) {\n")
	for i, a := range img.Areas {
		flags := "0"
		if a.NVM {
			flags = "MAP_NVM"
		}
		prot := "PROT_READ"
		if a.Write {
			prot = "PROT_READ|PROT_WRITE"
		}
		fmt.Fprintf(&b, "    area[%d] = mmap(NULL, %d, %s, %s); /* %s */\n", i, a.Size, prot, flags, a.Name)
	}
	b.WriteString("\n    struct kindle_tuple t;\n")
	b.WriteString("    while (kindle_next_tuple(&t) == 0) {\n")
	b.WriteString("        char *p = (char *)area[t.area] + t.offset;\n")
	b.WriteString("        if (t.op == KINDLE_WRITE)\n")
	b.WriteString("            kindle_touch_write(p, t.size);\n")
	b.WriteString("        else\n")
	b.WriteString("            kindle_touch_read(p, t.size);\n")
	b.WriteString("    }\n\n")
	for i := range img.Areas {
		fmt.Fprintf(&b, "    munmap(area[%d], %d);\n", i, img.Areas[i].Size)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// WriteImageFile writes the binary disk image.
func WriteImageFile(path string, img *trace.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prep: %w", err)
	}
	defer f.Close()
	if err := trace.Encode(f, img); err != nil {
		return fmt.Errorf("prep: encoding image: %w", err)
	}
	return f.Sync()
}

// ReadImageFile loads a disk image written by WriteImageFile.
func ReadImageFile(path string) (*trace.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prep: %w", err)
	}
	defer f.Close()
	img, err := trace.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("prep: decoding %s: %w", path, err)
	}
	return img, nil
}
