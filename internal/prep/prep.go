// Package prep is Kindle's preparation component. In the paper it is the
// host-side half of the framework: a driver program coordinates the
// application's execution under Intel Pin (and SniP for per-thread stacks),
// captures the virtual memory layout from /proc/pid/maps, and an
// image/code generator turns the trace into (a) a disk image of
// (period, offset, operation, size, area) tuples for gem5 and (b) a gemOS
// template program that replays them.
//
// Here the instrumented workloads (internal/workloads) play the role of
// Pin: they emit the same tuples. This package provides the rest — the
// driver orchestration, the maps-format layout capture, the stack-area
// capture, the binary disk image on disk, and the generated template code.
package prep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// Benchmark names accepted by the driver (Table II, plus the
// multi-threaded YCSB variant exercising the SniP stack capture).
const (
	BenchPageRank = "Gapbs_pr"
	BenchSSSP     = "G500_sssp"
	BenchYCSB     = "Ycsb_mem"
	BenchYCSBMT   = "Ycsb_mem_mt"
)

// Benchmarks lists the standard applications in Table II order (the
// multi-threaded variant last).
func Benchmarks() []string { return []string{BenchPageRank, BenchSSSP, BenchYCSB, BenchYCSBMT} }

// Disk-image format names accepted by Driver.Format and ConvertImage.
const (
	FormatV1 = "v1" // materialized, written by trace.Encode
	FormatV2 = "v2" // chunked + compressed, written by trace.StreamWriter
)

// Result is everything the preparation run produces.
type Result struct {
	// Image holds the captured trace. When the driver streamed the
	// records straight to disk (Format "v2" with OutDir set) it carries
	// the header only — benchmark and area table, no records.
	Image        *trace.Image
	MapsText     string // /proc/pid/maps-style capture
	TemplateCode string // generated gemOS replay template
	ImagePath    string // written disk image ("" when OutDir unset)
	TemplatePath string

	Records  int // traced record count (also valid when streamed)
	ReadPct  float64
	WritePct float64
}

// Driver coordinates tracing and image generation, the role of the paper's
// driver program (1) and code/image generator (2).
type Driver struct {
	// OutDir, when set, receives the disk image and template code files.
	OutDir string
	// Small selects the reduced test-scale workload configurations.
	Small bool
	// Format selects the disk-image format: FormatV1 (default) or
	// FormatV2. With FormatV2 and OutDir set, records stream from the
	// instrumented workload straight to the compressed image — the trace
	// is never materialized in memory.
	Format string
}

// Run traces the named benchmark and generates its artifacts.
func (d *Driver) Run(benchmark string) (*Result, error) {
	format := d.Format
	if format == "" {
		format = FormatV1
	}
	if format != FormatV1 && format != FormatV2 {
		return nil, fmt.Errorf("prep: unknown image format %q (want %q or %q)", format, FormatV1, FormatV2)
	}
	streaming := format == FormatV2 && d.OutDir != ""

	var (
		imagePath string
		imageFile *os.File
		sw        *trace.StreamWriter
		sink      workloads.SinkOpenFunc
	)
	if streaming {
		if err := os.MkdirAll(d.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("prep: %w", err)
		}
		imagePath = filepath.Join(d.OutDir, benchmark+".img")
		sink = func(bm string, areas []trace.Area) (trace.RecordSink, error) {
			f, err := os.Create(imagePath)
			if err != nil {
				return nil, err
			}
			w, err := trace.NewStreamWriter(f, bm, areas, trace.StreamOptions{})
			if err != nil {
				f.Close()
				return nil, err
			}
			imageFile, sw = f, w
			return w, nil
		}
	}
	defer func() {
		// On error paths, don't leak the half-written image.
		if imageFile != nil {
			imageFile.Close()
			os.Remove(imagePath)
		}
	}()

	img, err := d.traceBenchmark(benchmark, sink)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Image:        img,
		MapsText:     MapsText(img),
		TemplateCode: GenerateTemplate(img),
	}
	if streaming && sw != nil {
		if err := sw.Close(); err != nil {
			return nil, fmt.Errorf("prep: finishing image: %w", err)
		}
		if err := imageFile.Sync(); err != nil {
			return nil, fmt.Errorf("prep: %w", err)
		}
		if err := imageFile.Close(); err != nil {
			return nil, fmt.Errorf("prep: %w", err)
		}
		imageFile = nil
		res.ImagePath = imagePath
		res.Records = sw.Count()
		res.ReadPct, res.WritePct = sw.Mix()
	} else {
		res.Records = len(img.Records)
		res.ReadPct, res.WritePct = img.Mix()
	}
	if d.OutDir != "" {
		if err := os.MkdirAll(d.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("prep: %w", err)
		}
		if !streaming {
			res.ImagePath = filepath.Join(d.OutDir, benchmark+".img")
			if err := writeImageFormat(res.ImagePath, img, format); err != nil {
				return nil, err
			}
		}
		res.TemplatePath = filepath.Join(d.OutDir, benchmark+"_template.c")
		if err := os.WriteFile(res.TemplatePath, []byte(res.TemplateCode), 0o644); err != nil {
			return nil, fmt.Errorf("prep: writing template: %w", err)
		}
	}
	return res, nil
}

// traceBenchmark runs the instrumented application (the Pin stand-in). A
// non-nil sink streams records to disk as they are captured.
func (d *Driver) traceBenchmark(benchmark string, sink workloads.SinkOpenFunc) (*trace.Image, error) {
	switch benchmark {
	case BenchPageRank:
		cfg := workloads.DefaultPageRank()
		if d.Small {
			cfg = workloads.SmallPageRank()
		}
		cfg.Sink = sink
		return workloads.PageRank(cfg)
	case BenchSSSP:
		cfg := workloads.DefaultSSSP()
		if d.Small {
			cfg = workloads.SmallSSSP()
		}
		cfg.Sink = sink
		return workloads.SSSP(cfg)
	case BenchYCSB:
		cfg := workloads.DefaultYCSB()
		if d.Small {
			cfg = workloads.SmallYCSB()
		}
		cfg.Sink = sink
		return workloads.YCSB(cfg)
	case BenchYCSBMT:
		cfg := workloads.DefaultYCSBMT()
		if d.Small {
			cfg = workloads.SmallYCSBMT()
		}
		cfg.Sink = sink
		return workloads.YCSBMT(cfg)
	default:
		return nil, fmt.Errorf("prep: unknown benchmark %q (want one of %v)", benchmark, Benchmarks())
	}
}

// MapsText renders the captured virtual memory layout in the
// /proc/pid/maps format the driver program reads on Linux. Areas are
// placed at synthetic base addresses in capture order; stack areas (the
// SniP-captured regions for threads) render with their thread tag.
func MapsText(img *trace.Image) string {
	var b strings.Builder
	base := uint64(0x4000_0000)
	for _, a := range img.Areas {
		perms := "r--p"
		if a.Write {
			perms = "rw-p"
		}
		name := a.Name
		switch {
		case strings.HasPrefix(name, "heap"):
			name = "[" + name + "]"
		case strings.HasPrefix(name, "stack"):
			name = "[" + name + "]"
		}
		fmt.Fprintf(&b, "%012x-%012x %s 00000000 00:00 0    %s\n", base, base+a.Size, perms, name)
		base += a.Size + 0x10000 // guard gap
	}
	return b.String()
}

// StackAreas returns the stack areas of the image — the part of the layout
// SniP contributes for multi-threaded applications (the maps file alone
// cannot attribute thread stacks).
func StackAreas(img *trace.Image) []trace.Area {
	var out []trace.Area
	for _, a := range img.Areas {
		if strings.HasPrefix(a.Name, "stack") {
			out = append(out, a)
		}
	}
	return out
}

// GenerateTemplate emits the gemOS template program the code generator
// produces: heap and stack allocations matching the traced layout plus the
// replay loop reading tuples from the disk image. Users of Kindle edit this
// template to add functionality before launching init.
func GenerateTemplate(img *trace.Image) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* Generated by Kindle's code generator for %s.\n", img.Benchmark)
	b.WriteString(" * Allocations mirror the traced application's layout; the replay loop\n")
	b.WriteString(" * reads (period, offset, operation, size, area) tuples from the disk\n")
	b.WriteString(" * image and mimics each access. Edit before launching init if needed. */\n\n")
	b.WriteString("#include <gemos.h>\n\n")
	fmt.Fprintf(&b, "static void *area[%d];\n\n", len(img.Areas))
	b.WriteString("int main(void) {\n")
	for i, a := range img.Areas {
		flags := "0"
		if a.NVM {
			flags = "MAP_NVM"
		}
		prot := "PROT_READ"
		if a.Write {
			prot = "PROT_READ|PROT_WRITE"
		}
		fmt.Fprintf(&b, "    area[%d] = mmap(NULL, %d, %s, %s); /* %s */\n", i, a.Size, prot, flags, a.Name)
	}
	b.WriteString("\n    struct kindle_tuple t;\n")
	b.WriteString("    while (kindle_next_tuple(&t) == 0) {\n")
	b.WriteString("        char *p = (char *)area[t.area] + t.offset;\n")
	b.WriteString("        if (t.op == KINDLE_WRITE)\n")
	b.WriteString("            kindle_touch_write(p, t.size);\n")
	b.WriteString("        else\n")
	b.WriteString("            kindle_touch_read(p, t.size);\n")
	b.WriteString("    }\n\n")
	for i := range img.Areas {
		fmt.Fprintf(&b, "    munmap(area[%d], %d);\n", i, img.Areas[i].Size)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// WriteImageFile writes the binary disk image in the v1 format.
func WriteImageFile(path string, img *trace.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prep: %w", err)
	}
	defer f.Close()
	if err := trace.Encode(f, img); err != nil {
		return fmt.Errorf("prep: encoding image: %w", err)
	}
	return f.Sync()
}

// WriteImageFileV2 writes the binary disk image in the chunked compressed
// v2 format.
func WriteImageFileV2(path string, img *trace.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prep: %w", err)
	}
	defer f.Close()
	if err := trace.EncodeV2(f, img, trace.StreamOptions{}); err != nil {
		return fmt.Errorf("prep: encoding image: %w", err)
	}
	return f.Sync()
}

func writeImageFormat(path string, img *trace.Image, format string) error {
	if format == FormatV2 {
		return WriteImageFileV2(path, img)
	}
	return WriteImageFile(path, img)
}

// ReadImageFile loads a disk image written by WriteImageFile or
// WriteImageFileV2 (the decoder sniffs the format from the header).
func ReadImageFile(path string) (*trace.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prep: %w", err)
	}
	defer f.Close()
	img, err := trace.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("prep: decoding %s: %w", path, err)
	}
	return img, nil
}

// ImageStream is an open disk image whose records decode on demand.
// Closing it closes the underlying file.
type ImageStream struct {
	trace.RecordSource
	f *os.File
}

// Close releases the decoder and the underlying file.
func (s *ImageStream) Close() error {
	err := s.RecordSource.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenImageStream opens a disk image (either format) for bounded-memory
// streamed replay with the default decode configuration. The caller must
// Close the returned stream.
func OpenImageStream(path string) (*ImageStream, error) {
	return OpenImageStreamConfig(path, trace.StreamConfig{})
}

// OpenImageStreamConfig is OpenImageStream with an explicit stream
// configuration (decode worker count).
func OpenImageStreamConfig(path string, cfg trace.StreamConfig) (*ImageStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prep: %w", err)
	}
	src, err := trace.OpenStreamConfig(f, cfg)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("prep: opening %s: %w", path, err)
	}
	return &ImageStream{RecordSource: src, f: f}, nil
}

// DecodeSource returns the stream's underlying record source — the target
// for trace.DecodeStatsSource type assertions, which the embedded-interface
// indirection would otherwise hide.
func (s *ImageStream) DecodeSource() trace.RecordSource { return s.RecordSource }

// ConvertImage rewrites a disk image into the given format ("v1" or "v2"),
// streaming record-by-record — converting to v2 never materializes the
// trace. It returns the number of records converted.
func ConvertImage(srcPath, dstPath, format string) (int, error) {
	switch format {
	case FormatV1:
		img, err := ReadImageFile(srcPath)
		if err != nil {
			return 0, err
		}
		if err := WriteImageFile(dstPath, img); err != nil {
			return 0, err
		}
		return len(img.Records), nil
	case FormatV2:
		src, err := OpenImageStream(srcPath)
		if err != nil {
			return 0, err
		}
		defer src.Close()
		f, err := os.Create(dstPath)
		if err != nil {
			return 0, fmt.Errorf("prep: %w", err)
		}
		defer f.Close()
		sw, err := trace.NewStreamWriter(f, src.Benchmark(), src.Areas(), trace.StreamOptions{})
		if err != nil {
			return 0, fmt.Errorf("prep: %w", err)
		}
		n, err := trace.CopyStream(sw, src)
		if err != nil {
			return 0, fmt.Errorf("prep: converting %s: %w", srcPath, err)
		}
		if err := sw.Close(); err != nil {
			return 0, fmt.Errorf("prep: finishing %s: %w", dstPath, err)
		}
		return n, f.Sync()
	default:
		return 0, fmt.Errorf("prep: unknown image format %q (want %q or %q)", format, FormatV1, FormatV2)
	}
}
