package fault

import (
	"testing"

	"kindle/internal/mem"
)

func TestCrashBeforeFiresOnce(t *testing.T) {
	inj := NewCrashBefore(2)
	if d := inj.OnCommit(0x1000); d.Outcome != mem.CommitFull || d.Crash {
		t.Fatalf("event 1 intercepted: %+v", d)
	}
	d := inj.OnCommit(0x1040)
	if d.Outcome != mem.CommitNone || !d.Crash {
		t.Fatalf("event 2 not intercepted: %+v", d)
	}
	// The harness normally crashes here; if the simulation were to continue
	// the injector must not fire again.
	if d := inj.OnCommit(0x1080); d.Outcome != mem.CommitFull || d.Crash {
		t.Fatalf("post-fire event intercepted: %+v", d)
	}
	if !inj.Fired() || inj.Events() != 3 {
		t.Fatalf("fired=%v events=%d", inj.Fired(), inj.Events())
	}
}

func TestTornDecision(t *testing.T) {
	inj := NewTorn(1, 5)
	d := inj.OnCommit(0x2000)
	if d.Outcome != mem.CommitTorn || d.Words != 5 || !d.Crash {
		t.Fatalf("torn decision: %+v", d)
	}
}

func TestObserverAndRecorder(t *testing.T) {
	obs := NewObserver()
	for i := 0; i < 5; i++ {
		if d := obs.OnCommit(mem.PhysAddr(i * 64)); d != (mem.CommitDecision{}) {
			t.Fatalf("observer interfered: %+v", d)
		}
	}
	if obs.Events() != 5 || obs.Fired() || obs.Trace() != nil {
		t.Fatalf("observer state: events=%d fired=%v trace=%v", obs.Events(), obs.Fired(), obs.Trace())
	}

	rec := NewRecorder()
	rec.OnCommit(0x40)
	rec.OnCommit(0x80)
	tr := rec.Trace()
	if len(tr) != 2 || tr[0] != 0x40 || tr[1] != 0x80 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestCrashedRecoversInjectedCrash(t *testing.T) {
	if !Crashed(func() { panic(mem.CommitCrash{Line: 0x40}) }) {
		t.Fatal("Crashed did not report an injected crash")
	}
	if Crashed(func() {}) {
		t.Fatal("Crashed reported a crash for a clean run")
	}
}

func TestCrashedPropagatesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the original panic", r)
		}
	}()
	Crashed(func() { panic("boom") })
	t.Fatal("unrelated panic swallowed")
}
