// Package fault injects power failures at NVM commit-point granularity.
//
// The simulated machine's durability events — clwb/clflush completions,
// dirty NVM write-backs from the cache hierarchy, and each line of a commit
// barrier — form a deterministic stream (the persist domain commits barrier
// lines in address order for exactly this reason). An Injector installed
// via Machine.SetCommitHook counts those events and, in the crashing modes,
// cuts the run at the k-th one:
//
//   - CrashBefore(k): the k-th commit does not land; everything volatile at
//     that instant is lost. This explores persist-ordering windows that
//     op-granularity crash tests (crashing *between* workload operations)
//     can never reach.
//   - Torn(k, words): only the first `words` 8-byte words of the k-th line
//     become durable, modeling a power failure mid-line on a device with an
//     8-byte atomic write unit (PCM).
//
// A crashing injector aborts the run by letting the domain panic with
// mem.CommitCrash; Crashed wraps the run and recovers exactly that panic,
// after which the harness applies machine.Crash, reboots and checks the
// recovery invariants.
package fault

import "kindle/internal/mem"

// Mode selects the injector's behavior at the target event.
type Mode int

const (
	// Observe counts (and optionally records) events without interfering.
	Observe Mode = iota
	// CrashBefore suppresses the target commit and crashes the machine.
	CrashBefore
	// Torn commits a prefix of the target line and crashes the machine.
	Torn
)

// Injector implements mem.CommitHook. It is not safe for concurrent use;
// every simulated machine gets its own.
type Injector struct {
	mode   Mode
	target uint64 // 1-based index of the durability event to intercept
	words  int    // torn-prefix length for Torn

	events uint64
	fired  bool
	record bool
	trace  []mem.PhysAddr
}

// NewObserver returns a counting-only injector (the reference "plan" run of
// a sweep uses it to learn the total event count E).
func NewObserver() *Injector { return &Injector{mode: Observe} }

// NewRecorder is NewObserver plus a full trace of committed line addresses,
// for tests that assert durability *ordering* directly.
func NewRecorder() *Injector { return &Injector{mode: Observe, record: true} }

// NewCrashBefore returns an injector that crashes the machine at the k-th
// durability event (1-based); that event does not land.
func NewCrashBefore(k uint64) *Injector { return &Injector{mode: CrashBefore, target: k} }

// NewTorn returns an injector that makes only the first words 8-byte words
// of the k-th committed line durable, then crashes the machine.
func NewTorn(k uint64, words int) *Injector {
	return &Injector{mode: Torn, target: k, words: words}
}

// OnCommit implements mem.CommitHook.
func (i *Injector) OnCommit(line mem.PhysAddr) mem.CommitDecision {
	i.events++
	if i.record {
		i.trace = append(i.trace, line)
	}
	if i.mode == Observe || i.fired || i.events != i.target {
		return mem.CommitDecision{}
	}
	i.fired = true
	if i.mode == Torn {
		return mem.CommitDecision{Outcome: mem.CommitTorn, Words: i.words, Crash: true}
	}
	return mem.CommitDecision{Outcome: mem.CommitNone, Crash: true}
}

// Events reports how many durability events the injector has seen
// (including the intercepted one).
func (i *Injector) Events() uint64 { return i.events }

// Advance credits the injector with n durability events that already
// happened before it was armed — a run resumed from a snapshot whose
// prefix produced n events uses it to keep crash-point indices absolute.
func (i *Injector) Advance(n uint64) { i.events += n }

// Target returns the 1-based index of the event this injector intercepts
// (0 for observers, which never fire).
func (i *Injector) Target() uint64 { return i.target }

// Fired reports whether the crash point was reached.
func (i *Injector) Fired() bool { return i.fired }

// Trace returns the recorded line addresses (NewRecorder only), in commit
// order.
func (i *Injector) Trace() []mem.PhysAddr { return i.trace }

// Crashed runs fn and reports whether it was cut short by an injected
// machine crash (a mem.CommitCrash panic). Any other panic propagates.
func Crashed(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(mem.CommitCrash); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}
