package cache

import (
	"bytes"
	"testing"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// TestMRUProbeEquivalenceRandomized runs two full hierarchies — MRU-way
// probe on and off — through the same randomized access/clwb/flush/
// invalidate sequence and requires identical per-op latencies, clocks and
// statistics. The probe must be an invisible host-side shortcut: if it
// perturbs hit detection, LRU state, dirty bits or writeback timing, the
// two runs diverge here at the exact operation that broke.
func TestMRUProbeEquivalenceRandomized(t *testing.T) {
	for _, seed := range []uint64{2, 11, 0xC0FFEE} {
		onH, _, onClock, onStats := newTestHier(t)
		offH, _, offClock, offStats := newTestHier(t)
		offH.SetMRUProbe(false)

		// Lines drawn from a working set larger than L2 but well inside
		// the LLC, straddling the DRAM/NVM boundary so both memory paths
		// (and dirty writebacks to each) stay exercised. Repeated lines
		// keep MRU-way hits frequent — that is the path under test.
		const span = 4 * mem.MiB
		base := mem.PhysAddr(64*mem.MiB - span/2)
		rng := sim.NewRNG(seed)
		for i := 0; i < 30_000; i++ {
			pa := base + mem.PhysAddr(rng.Uint64n(span/mem.LineSize)*mem.LineSize)
			var latOn, latOff sim.Cycles
			var what string
			switch op := rng.Intn(100); {
			case op < 80:
				write := rng.Intn(3) == 0
				what = "access"
				latOn = onH.Access(pa, write)
				latOff = offH.Access(pa, write)
			case op < 88:
				what = "clwb"
				latOn = onH.Clwb(pa)
				latOff = offH.Clwb(pa)
			case op < 94:
				what = "flush"
				latOn = onH.Flush(pa)
				latOff = offH.Flush(pa)
			case op < 99:
				what = "invalidate"
				onH.InvalidateLine(pa)
				offH.InvalidateLine(pa)
			default:
				what = "reset"
				onH.Reset()
				offH.Reset()
			}
			if latOn != latOff {
				t.Fatalf("seed %d op %d: %s(%#x) latency %d with probe, %d without",
					seed, i, what, pa, latOn, latOff)
			}
			// Advance time the way a core would, so clock-dependent
			// machinery (the NVM write-buffer drain) stays live.
			onClock.Advance(latOn + 1)
			offClock.Advance(latOff + 1)
			if onH.Resident(pa) != offH.Resident(pa) {
				t.Fatalf("seed %d op %d: %s(%#x) residency disagrees", seed, i, what, pa)
			}
			if onClock.Now() != offClock.Now() {
				t.Fatalf("seed %d op %d: %s(%#x) clock %d with probe, %d without",
					seed, i, what, pa, onClock.Now(), offClock.Now())
			}
		}
		var dumpOn, dumpOff bytes.Buffer
		if err := onStats.WriteStatsFile(&dumpOn); err != nil {
			t.Fatal(err)
		}
		if err := offStats.WriteStatsFile(&dumpOff); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dumpOn.Bytes(), dumpOff.Bytes()) {
			t.Fatalf("seed %d: stats dumps differ with/without MRU probe", seed)
		}
	}
}
