package cache

import (
	"fmt"

	"kindle/internal/mem"
)

// Snapshot mirrors of the cache tag state, for machine forks. The mirrors
// are plain data (gob-encodable); geometry (sets/ways/latency) is not
// captured — it is derived from the machine Config the restoring side
// rebuilds with, and RestoreState rejects a mismatch.

// WayState is one tag-store record.
type WayState struct {
	Addr uint64
	LRU  uint64
}

// LevelState mirrors one cache level's mutable state.
type LevelState struct {
	Tags  []WayState
	Dirty []uint32
	Lens  []int32
	MRU   []int32
	Clock uint64
}

// HierarchyState mirrors the full three-level stack.
type HierarchyState struct {
	L1, L2, LLC LevelState
}

func (l *Level) captureState() LevelState {
	st := LevelState{
		Tags:  make([]WayState, len(l.tags)),
		Dirty: append([]uint32(nil), l.dirtyBits...),
		Lens:  append([]int32(nil), l.lens...),
		MRU:   append([]int32(nil), l.mru...),
		Clock: l.clock,
	}
	for i, w := range l.tags {
		st.Tags[i] = WayState{Addr: uint64(w.addr), LRU: w.lru}
	}
	return st
}

func (l *Level) restoreState(st LevelState) error {
	if len(st.Tags) != len(l.tags) || len(st.Lens) != len(l.lens) {
		return fmt.Errorf("cache: %s geometry mismatch: %d/%d tags, %d/%d sets",
			l.name, len(st.Tags), len(l.tags), len(st.Lens), len(l.lens))
	}
	for i, w := range st.Tags {
		l.tags[i] = way{addr: mem.PhysAddr(w.Addr), lru: w.LRU}
	}
	copy(l.dirtyBits, st.Dirty)
	copy(l.lens, st.Lens)
	copy(l.mru, st.MRU)
	l.clock = st.Clock
	return nil
}

// CaptureState copies the hierarchy's mutable tag state.
func (h *Hierarchy) CaptureState() HierarchyState {
	return HierarchyState{
		L1:  h.l1.captureState(),
		L2:  h.l2.captureState(),
		LLC: h.llc.captureState(),
	}
}

// RestoreState overwrites the hierarchy's tag state from a capture taken
// on an identically configured hierarchy.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if err := h.l1.restoreState(st.L1); err != nil {
		return err
	}
	if err := h.l2.restoreState(st.L2); err != nil {
		return err
	}
	return h.llc.restoreState(st.LLC)
}
