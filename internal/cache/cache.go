// Package cache models the on-chip cache hierarchy of a Kindle machine:
// three levels of set-associative, write-back, write-allocate caches (32 KB
// L1, 512 KB L2, 2 MB LLC per the paper's gem5 configuration) plus the
// clwb-style cache-line write-back instruction the persistence schemes rely
// on.
//
// The caches are timing + coherence-of-durability models: they track which
// line addresses are resident and dirty, charge hit/miss latencies, and
// notify the memory controller's persist domain when a dirty NVM line
// becomes durable (explicit clwb or dirty eviction). Data contents live in
// the functional backing store — a single-core machine needs no functional
// coherence in the caches themselves.
package cache

import (
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Level is a single set-associative cache.
//
// The tag store is flat: set si owns tags[si*ways : si*ways+lens[si]],
// each way a 16-byte {addr, lru} record so a probe's tag compare and its
// LRU re-stamp share one host cache line, while dirty bits live in a
// small per-set bitmask array. That keeps the simulated LLC's tag state
// compact (the structure is walked randomly and is far bigger than the
// host L2) and makes residency scans stride 16 bytes, not a full record.
type Level struct {
	name    string
	sets    int
	ways    int
	latency sim.Cycles
	stats   *sim.Stats

	tags      []way    // flat sets*ways tag store
	dirtyBits []uint32 // dirty bitmask per set (bit = way index)
	lens      []int32  // valid ways per set
	clock     uint64   // LRU timestamp source

	setMask uint64 // sets-1 when sets is a power of two, else 0 (use modulo)

	// mru[set] is the way index of the set's last hit or fill — a probe
	// hint only, always verified against the tag before use.
	mru    []int32
	mruOff bool // disables the MRU fast probe (equivalence testing)

	evicts *sim.Counter // "cache.<name>.evict", resolved once
}

type way struct {
	addr mem.PhysAddr // line base address
	lru  uint64       // LRU timestamp
}

// Config describes one cache level.
type Config struct {
	Name    string
	Size    uint64 // bytes
	Ways    int
	Latency sim.Cycles // access (hit) latency
}

// NewLevel builds one cache level. Size must be a multiple of
// Ways*LineSize.
func NewLevel(cfg Config, stats *sim.Stats) *Level {
	linesTotal := int(cfg.Size / mem.LineSize)
	if cfg.Ways <= 0 || cfg.Ways > 32 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry for %s: %d lines, %d ways", cfg.Name, linesTotal, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	l := &Level{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		latency:   cfg.Latency,
		stats:     stats,
		tags:      make([]way, sets*cfg.Ways),
		dirtyBits: make([]uint32, sets),
		lens:      make([]int32, sets),
		mru:       make([]int32, sets),
		evicts:    stats.Counter("cache." + cfg.Name + ".evict"),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	return l
}

func (l *Level) setIndex(addr mem.PhysAddr) int {
	if l.setMask != 0 || l.sets == 1 {
		return int((uint64(addr) / mem.LineSize) & l.setMask)
	}
	return int((uint64(addr) / mem.LineSize) % uint64(l.sets))
}

// lookup returns the set index and way index of addr, or way -1.
func (l *Level) lookup(addr mem.PhysAddr) (si, w int) {
	si = l.setIndex(addr)
	b := si * l.ways
	set := l.tags[b : b+int(l.lens[si])]
	for i := range set {
		if set[i].addr == addr {
			return si, i
		}
	}
	return si, -1
}

// Probe reports residency without touching LRU state or stats.
func (l *Level) Probe(addr mem.PhysAddr) bool {
	_, w := l.lookup(mem.LineBase(addr))
	return w >= 0
}

// access touches addr; returns hit. On hit, LRU is refreshed and the line
// is marked dirty when write.
func (l *Level) access(addr mem.PhysAddr, write bool) bool {
	si := l.setIndex(addr)
	b := si * l.ways
	set := l.tags[b : b+int(l.lens[si])]
	if !l.mruOff {
		// Probe the last-hit way before scanning the set; the hint is
		// verified against the tag, and the hit-side effects are identical
		// to a scan hit, so simulated state cannot diverge.
		if m := int(l.mru[si]); m < len(set) && set[m].addr == addr {
			l.clock++
			set[m].lru = l.clock
			if write {
				l.dirtyBits[si] |= 1 << uint(m)
			}
			return true
		}
	}
	for i := range set {
		if set[i].addr == addr {
			l.clock++
			set[i].lru = l.clock
			if write {
				l.dirtyBits[si] |= 1 << uint(i)
			}
			l.mru[si] = int32(i)
			return true
		}
	}
	return false
}

// fill inserts addr, evicting the LRU line if the set is full. The evicted
// line (if any, with its dirty bit) is returned.
func (l *Level) fill(addr mem.PhysAddr, dirty bool) (victim mem.PhysAddr, victimDirty, evicted bool) {
	si := l.setIndex(addr)
	b := si * l.ways
	n := int(l.lens[si])
	l.clock++
	if n < l.ways {
		l.tags[b+n] = way{addr: addr, lru: l.clock}
		l.setDirty(si, n, dirty)
		l.lens[si] = int32(n + 1)
		l.mru[si] = int32(n)
		return 0, false, false
	}
	// Evict LRU.
	set := l.tags[b : b+n]
	lruIdx := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[lruIdx].lru {
			lruIdx = i
		}
	}
	victim = set[lruIdx].addr
	victimDirty = l.dirtyBits[si]&(1<<uint(lruIdx)) != 0
	set[lruIdx] = way{addr: addr, lru: l.clock}
	l.setDirty(si, lruIdx, dirty)
	l.mru[si] = int32(lruIdx)
	return victim, victimDirty, true
}

// setDirty writes way w's dirty bit in set si.
func (l *Level) setDirty(si, w int, dirty bool) {
	if dirty {
		l.dirtyBits[si] |= 1 << uint(w)
	} else {
		l.dirtyBits[si] &^= 1 << uint(w)
	}
}

// invalidate removes addr (swap-remove with the set's last way),
// returning whether it was present and dirty.
func (l *Level) invalidate(addr mem.PhysAddr) (present, dirty bool) {
	si, w := l.lookup(addr)
	if w < 0 {
		return false, false
	}
	b := si * l.ways
	last := int(l.lens[si]) - 1
	dirty = l.dirtyBits[si]&(1<<uint(w)) != 0
	l.tags[b+w] = l.tags[b+last]
	l.setDirty(si, w, l.dirtyBits[si]&(1<<uint(last)) != 0)
	l.setDirty(si, last, false)
	l.lens[si] = int32(last)
	return true, dirty
}

// clean clears the dirty bit of addr if resident; reports prior dirtiness.
func (l *Level) clean(addr mem.PhysAddr) (present, wasDirty bool) {
	si, w := l.lookup(addr)
	if w < 0 {
		return false, false
	}
	wasDirty = l.dirtyBits[si]&(1<<uint(w)) != 0
	l.dirtyBits[si] &^= 1 << uint(w)
	return true, wasDirty
}

// reset empties the level, keeping the backing arrays.
func (l *Level) reset() {
	for i := range l.lens {
		l.lens[i] = 0
		l.dirtyBits[i] = 0
	}
}
