// Package cache models the on-chip cache hierarchy of a Kindle machine:
// three levels of set-associative, write-back, write-allocate caches (32 KB
// L1, 512 KB L2, 2 MB LLC per the paper's gem5 configuration) plus the
// clwb-style cache-line write-back instruction the persistence schemes rely
// on.
//
// The caches are timing + coherence-of-durability models: they track which
// line addresses are resident and dirty, charge hit/miss latencies, and
// notify the memory controller's persist domain when a dirty NVM line
// becomes durable (explicit clwb or dirty eviction). Data contents live in
// the functional backing store — a single-core machine needs no functional
// coherence in the caches themselves.
package cache

import (
	"fmt"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Level is a single set-associative cache.
type Level struct {
	name    string
	sets    int
	ways    int
	latency sim.Cycles
	stats   *sim.Stats

	// tags[set] is an LRU-ordered slice (front = MRU) of resident lines.
	// Set slices are allocated with ways capacity on first touch so
	// steady-state fills never reallocate.
	tags  [][]line
	clock uint64 // LRU timestamp source

	evicts *sim.Counter // "cache.<name>.evict", resolved once
}

type line struct {
	addr  mem.PhysAddr // line base address
	dirty bool
	lru   uint64
}

// Config describes one cache level.
type Config struct {
	Name    string
	Size    uint64 // bytes
	Ways    int
	Latency sim.Cycles // access (hit) latency
}

// NewLevel builds one cache level. Size must be a multiple of
// Ways*LineSize.
func NewLevel(cfg Config, stats *sim.Stats) *Level {
	linesTotal := int(cfg.Size / mem.LineSize)
	if cfg.Ways <= 0 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry for %s: %d lines, %d ways", cfg.Name, linesTotal, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	l := &Level{
		name:    cfg.Name,
		sets:    sets,
		ways:    cfg.Ways,
		latency: cfg.Latency,
		stats:   stats,
		tags:    make([][]line, sets),
		evicts:  stats.Counter("cache." + cfg.Name + ".evict"),
	}
	return l
}

func (l *Level) setIndex(addr mem.PhysAddr) int {
	return int((uint64(addr) / mem.LineSize) % uint64(l.sets))
}

// lookup returns the way index of addr in its set, or -1.
func (l *Level) lookup(addr mem.PhysAddr) int {
	set := l.tags[l.setIndex(addr)]
	for i := range set {
		if set[i].addr == addr {
			return i
		}
	}
	return -1
}

// Probe reports residency without touching LRU state or stats.
func (l *Level) Probe(addr mem.PhysAddr) bool {
	return l.lookup(mem.LineBase(addr)) >= 0
}

// access touches addr; returns hit. On hit, LRU is refreshed and the line
// is marked dirty when write.
func (l *Level) access(addr mem.PhysAddr, write bool) bool {
	si := l.setIndex(addr)
	set := l.tags[si]
	for i := range set {
		if set[i].addr == addr {
			l.clock++
			set[i].lru = l.clock
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// fill inserts addr, evicting the LRU line if the set is full. The evicted
// line (if any, with its dirty bit) is returned.
func (l *Level) fill(addr mem.PhysAddr, dirty bool) (victim mem.PhysAddr, victimDirty, evicted bool) {
	si := l.setIndex(addr)
	set := l.tags[si]
	l.clock++
	if len(set) < l.ways {
		if set == nil {
			set = make([]line, 0, l.ways)
		}
		l.tags[si] = append(set, line{addr: addr, dirty: dirty, lru: l.clock})
		return 0, false, false
	}
	// Evict LRU.
	lruIdx := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[lruIdx].lru {
			lruIdx = i
		}
	}
	victim, victimDirty = set[lruIdx].addr, set[lruIdx].dirty
	set[lruIdx] = line{addr: addr, dirty: dirty, lru: l.clock}
	return victim, victimDirty, true
}

// invalidate removes addr, returning whether it was present and dirty.
func (l *Level) invalidate(addr mem.PhysAddr) (present, dirty bool) {
	si := l.setIndex(addr)
	set := l.tags[si]
	for i := range set {
		if set[i].addr == addr {
			dirty = set[i].dirty
			set[i] = set[len(set)-1]
			l.tags[si] = set[:len(set)-1]
			return true, dirty
		}
	}
	return false, false
}

// clean clears the dirty bit of addr if resident; reports prior dirtiness.
func (l *Level) clean(addr mem.PhysAddr) (present, wasDirty bool) {
	si := l.setIndex(addr)
	set := l.tags[si]
	for i := range set {
		if set[i].addr == addr {
			wasDirty = set[i].dirty
			set[i].dirty = false
			return true, wasDirty
		}
	}
	return false, false
}

// reset empties the level.
func (l *Level) reset() {
	for i := range l.tags {
		l.tags[i] = nil
	}
}
