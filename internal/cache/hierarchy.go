package cache

import (
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/sim"
)

// HierConfig describes the full hierarchy. Defaults follow the paper: 32 KB
// L1, 512 KB L2, 2 MB LLC (per core).
type HierConfig struct {
	L1, L2, LLC Config
}

// DefaultHierConfig returns the paper's cache configuration with
// conventional latencies for those sizes (4 / 14 / 40 cycles).
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1:  Config{Name: "l1d", Size: 32 * mem.KiB, Ways: 8, Latency: 4},
		L2:  Config{Name: "l2", Size: 512 * mem.KiB, Ways: 8, Latency: 14},
		LLC: Config{Name: "llc", Size: 2 * mem.MiB, Ways: 16, Latency: 40},
	}
}

// MissObserver is notified when an access misses the whole hierarchy (i.e.
// goes to memory). HSCC hooks this to count per-page LLC misses.
type MissObserver func(pa mem.PhysAddr, write bool)

// Hierarchy is the three-level cache stack in front of the memory
// controller.
type Hierarchy struct {
	l1, l2, llc *Level
	ctrl        *mem.Controller
	clock       *sim.Clock
	stats       *sim.Stats

	// onMiss, when non-nil, observes LLC misses.
	onMiss MissObserver

	tr *obs.Tracer // nil when tracing is off

	// Hit-latency distributions per level (the recorded latency is the
	// cumulative probe time down to the hitting level) and the full-miss
	// latency including the memory access.
	l1HitLat  *sim.Histogram
	l2HitLat  *sim.Histogram
	llcHitLat *sim.Histogram
	missLat   *sim.Histogram

	// Per-level hit/miss and write-back counters, resolved once.
	l1Hit, l1Miss   *sim.Counter
	l2Hit, l2Miss   *sim.Counter
	llcHit, llcMiss *sim.Counter
	writebacks      *sim.Counter
	writebacksNVM   *sim.Counter
	clwbClean       *sim.Counter
	clwbDirty       *sim.Counter
	clflushes       *sim.Counter
}

// NewHierarchy builds the cache stack over the memory controller.
func NewHierarchy(cfg HierConfig, ctrl *mem.Controller, clock *sim.Clock, stats *sim.Stats) *Hierarchy {
	return &Hierarchy{
		l1:        NewLevel(cfg.L1, stats),
		l2:        NewLevel(cfg.L2, stats),
		llc:       NewLevel(cfg.LLC, stats),
		ctrl:      ctrl,
		clock:     clock,
		stats:     stats,
		l1HitLat:  stats.Hist("cache.l1.hit_lat"),
		l2HitLat:  stats.Hist("cache.l2.hit_lat"),
		llcHitLat: stats.Hist("cache.llc.hit_lat"),
		missLat:   stats.Hist("cache.miss_lat"),

		l1Hit: stats.Counter("cache.l1.hit"), l1Miss: stats.Counter("cache.l1.miss"),
		l2Hit: stats.Counter("cache.l2.hit"), l2Miss: stats.Counter("cache.l2.miss"),
		llcHit: stats.Counter("cache.llc.hit"), llcMiss: stats.Counter("cache.llc.miss"),
		writebacks:    stats.Counter("cache.writeback"),
		writebacksNVM: stats.Counter("cache.writeback_nvm"),
		clwbClean:     stats.Counter("cache.clwb_clean"),
		clwbDirty:     stats.Counter("cache.clwb_dirty"),
		clflushes:     stats.Counter("cache.clflush"),
	}
}

// SetMissObserver installs the LLC-miss hook (nil to remove).
func (h *Hierarchy) SetMissObserver(fn MissObserver) { h.onMiss = fn }

// SetMRUProbe enables or disables the per-set last-hit-way fast probe in
// every level (on by default); see Level.access. The probe never changes
// simulated state — the switch exists for the equivalence tests.
func (h *Hierarchy) SetMRUProbe(on bool) {
	h.l1.mruOff = !on
	h.l2.mruOff = !on
	h.llc.mruOff = !on
}

// SetTracer installs the event tracer (nil disables).
func (h *Hierarchy) SetTracer(tr *obs.Tracer) { h.tr = tr }

// Access performs a timed access to the line containing pa. It returns the
// total latency, which the caller adds to the clock. Multi-line requests
// must be split by the caller (the CPU does).
//
// Miss handling is write-allocate: the line is filled into every level.
// Dirty victims are written back to memory; dirty NVM victims become
// durable (persist-domain commit), matching real CPUs where an evicted line
// reaches the ADR/memory controller domain.
func (h *Hierarchy) Access(pa mem.PhysAddr, write bool) sim.Cycles {
	addr := mem.LineBase(pa)
	lat := h.l1.latency
	if h.l1.access(addr, write) {
		h.l1Hit.Inc()
		h.l1HitLat.ObserveCycles(lat)
		return lat
	}
	h.l1Miss.Inc()
	lat += h.l2.latency
	if h.l2.access(addr, write) {
		h.l2Hit.Inc()
		h.l2HitLat.ObserveCycles(lat)
		h.fillInto(h.l1, addr, write)
		return lat
	}
	h.l2Miss.Inc()
	lat += h.llc.latency
	if h.llc.access(addr, write) {
		h.llcHit.Inc()
		h.llcHitLat.ObserveCycles(lat)
		h.fillInto(h.l2, addr, false)
		h.fillInto(h.l1, addr, write)
		return lat
	}
	h.llcMiss.Inc()
	if h.onMiss != nil {
		h.onMiss(addr, write)
	}
	start := h.clock.Now()
	// Memory access. Write-allocate: a store still fetches the line.
	lat += h.ctrl.AccessLine(addr, false)
	h.missLat.ObserveCycles(lat)
	if h.tr.Enabled(obs.CatCache) {
		h.tr.Span(obs.CatCache, "llc.miss", start, lat, "pa", uint64(addr))
	}
	h.fillInto(h.llc, addr, false)
	h.fillInto(h.l2, addr, false)
	h.fillInto(h.l1, addr, write)
	return lat
}

// fillInto inserts addr into level l, handling victim write-back.
func (h *Hierarchy) fillInto(l *Level, addr mem.PhysAddr, dirty bool) {
	victim, victimDirty, evicted := l.fill(addr, dirty)
	if !evicted {
		return
	}
	l.evicts.Inc()
	if !victimDirty {
		return
	}
	// Dirty victim propagates down. From L1/L2 it merges into the next
	// level if resident there; from the LLC it goes to memory.
	switch l {
	case h.l1:
		if present, _ := h.l2.cleanToDirty(victim); present {
			return
		}
		if present, _ := h.llc.cleanToDirty(victim); present {
			return
		}
		h.writebackToMemory(victim)
	case h.l2:
		if present, _ := h.llc.cleanToDirty(victim); present {
			return
		}
		h.writebackToMemory(victim)
	default:
		h.writebackToMemory(victim)
	}
}

// cleanToDirty marks addr dirty if resident.
func (l *Level) cleanToDirty(addr mem.PhysAddr) (present, prev bool) {
	si, w := l.lookup(addr)
	if w < 0 {
		return false, false
	}
	prev = l.dirtyBits[si]&(1<<uint(w)) != 0
	l.dirtyBits[si] |= 1 << uint(w)
	return true, prev
}

// writebackToMemory sends a dirty line to the controller. The write-back is
// asynchronous from the core's perspective (no latency charged to the
// requester), but it occupies the device and, for NVM, commits durability.
func (h *Hierarchy) writebackToMemory(addr mem.PhysAddr) {
	h.writebacks.Inc()
	h.ctrl.AccessLine(addr, true)
	if h.ctrl.Layout.KindOf(addr) == mem.NVM {
		h.ctrl.Domain().CommitLine(addr)
		h.writebacksNVM.Inc()
	}
}

// Clwb write-backs the line containing pa without invalidating it,
// returning the latency. A clean or absent line costs only the pipeline
// issue overhead. For a dirty NVM line the data becomes durable.
func (h *Hierarchy) Clwb(pa mem.PhysAddr) sim.Cycles {
	addr := mem.LineBase(pa)
	const issue = sim.Cycles(2)
	dirty := false
	if _, d := h.l1.clean(addr); d {
		dirty = true
	}
	if _, d := h.l2.clean(addr); d {
		dirty = true
	}
	if _, d := h.llc.clean(addr); d {
		dirty = true
	}
	if !dirty {
		h.clwbClean.Inc()
		return issue
	}
	h.clwbDirty.Inc()
	return issue + h.writebackTimed(addr)
}

// Flush invalidates the line everywhere (clflush), writing back if dirty.
func (h *Hierarchy) Flush(pa mem.PhysAddr) sim.Cycles {
	addr := mem.LineBase(pa)
	const issue = sim.Cycles(2)
	dirty := false
	if _, d := h.l1.invalidate(addr); d {
		dirty = true
	}
	if _, d := h.l2.invalidate(addr); d {
		dirty = true
	}
	if _, d := h.llc.invalidate(addr); d {
		dirty = true
	}
	h.clflushes.Inc()
	if !dirty {
		return issue
	}
	return issue + h.writebackTimed(addr)
}

// writebackTimed performs a write-back whose latency the requester waits
// for (clwb/clflush semantics under a following fence).
func (h *Hierarchy) writebackTimed(addr mem.PhysAddr) sim.Cycles {
	lat := h.ctrl.AccessLine(addr, true)
	if h.ctrl.Layout.KindOf(addr) == mem.NVM {
		h.ctrl.Domain().CommitLine(addr)
	}
	return lat
}

// InvalidateLine drops the line without write-back (used on crash reset and
// by page-copy flows that flushed already).
func (h *Hierarchy) InvalidateLine(pa mem.PhysAddr) {
	addr := mem.LineBase(pa)
	h.l1.invalidate(addr)
	h.l2.invalidate(addr)
	h.llc.invalidate(addr)
}

// Resident reports whether the line containing pa is in any level.
func (h *Hierarchy) Resident(pa mem.PhysAddr) bool {
	addr := mem.LineBase(pa)
	return h.l1.Probe(addr) || h.l2.Probe(addr) || h.llc.Probe(addr)
}

// Reset empties all levels (machine crash / reboot: caches are volatile).
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	h.llc.reset()
}
