package cache

import (
	"testing"
	"testing/quick"

	"kindle/internal/mem"
	"kindle/internal/sim"
)

func newTestHier(t testing.TB) (*Hierarchy, *mem.Controller, *sim.Clock, *sim.Stats) {
	t.Helper()
	clock := sim.NewClock()
	stats := sim.NewStats()
	ctrl := mem.NewController(mem.SmallLayout(), mem.DDR4_2400(), mem.PCM(), clock, stats)
	h := NewHierarchy(DefaultHierConfig(), ctrl, clock, stats)
	return h, ctrl, clock, stats
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewLevel(Config{Name: "x", Size: 100, Ways: 3}, sim.NewStats())
}

func TestHitLatencyOrdering(t *testing.T) {
	h, _, _, stats := newTestHier(t)
	missLat := h.Access(0, false) // cold miss to memory
	l1Lat := h.Access(0, false)   // now L1 hit
	if l1Lat >= missLat {
		t.Fatalf("L1 hit (%d) not cheaper than miss (%d)", l1Lat, missLat)
	}
	if l1Lat != DefaultHierConfig().L1.Latency {
		t.Fatalf("L1 hit latency = %d", l1Lat)
	}
	if stats.Get("cache.l1.hit") != 1 || stats.Get("cache.llc.miss") != 1 {
		t.Fatal("hit/miss stats wrong")
	}
}

func TestL2AndLLCHits(t *testing.T) {
	h, _, _, stats := newTestHier(t)
	h.Access(0, false)
	// Evict line 0 from L1 by filling its set (8 ways; same set every
	// 32KB/8 = 4KB stride... set index = (addr/64) % 64 for 32KB 8-way).
	l1Sets := 32 * mem.KiB / mem.LineSize / 8
	for i := 1; i <= 8; i++ {
		h.Access(mem.PhysAddr(i*l1Sets*mem.LineSize), false)
	}
	before := stats.Get("cache.l2.hit")
	h.Access(0, false)
	if stats.Get("cache.l2.hit") != before+1 {
		t.Fatalf("expected L2 hit after L1 eviction (l2.hit=%d)", stats.Get("cache.l2.hit"))
	}
}

func TestDirtyEvictionCommitsNVM(t *testing.T) {
	h, ctrl, _, stats := newTestHier(t)
	nvm := ctrl.Layout.NVMBase
	// Functionally write, then dirty the line in cache.
	ctrl.Write(nvm, []byte{0x5A})
	h.Access(nvm, true)
	if stats.Get("persist.commit") != 0 {
		t.Fatal("committed too early")
	}
	// Force eviction from every level by streaming >2MB of conflicting
	// lines through the hierarchy.
	for i := 1; i < 3*64*1024; i++ {
		h.Access(mem.PhysAddr(i*mem.LineSize), true)
	}
	if h.Resident(nvm) {
		t.Fatal("line survived a 12MB stream through a 2MB LLC")
	}
	if stats.Get("cache.writeback_nvm") == 0 {
		t.Fatal("dirty NVM eviction did not write back")
	}
	if stats.Get("persist.commit") == 0 {
		t.Fatal("dirty NVM eviction did not commit durability")
	}
	ctrl.Crash()
	got := make([]byte, 1)
	ctrl.Read(nvm, got)
	if got[0] != 0x5A {
		t.Fatal("evicted dirty line not durable after crash")
	}
}

func TestClwbMakesDurable(t *testing.T) {
	h, ctrl, _, stats := newTestHier(t)
	nvm := ctrl.Layout.NVMBase + 128
	ctrl.Write(nvm, []byte{7})
	h.Access(nvm, true)
	lat := h.Clwb(nvm)
	if lat <= 2 {
		t.Fatalf("clwb of dirty line too cheap: %d", lat)
	}
	if stats.Get("cache.clwb_dirty") != 1 {
		t.Fatal("clwb_dirty not counted")
	}
	// Line stays resident (clwb does not invalidate).
	if !h.Resident(nvm) {
		t.Fatal("clwb invalidated the line")
	}
	// Second clwb: clean now.
	if lat2 := h.Clwb(nvm); lat2 != 2 {
		t.Fatalf("clwb of clean line = %d, want 2", lat2)
	}
	ctrl.Crash()
	got := make([]byte, 1)
	ctrl.Read(nvm, got)
	if got[0] != 7 {
		t.Fatal("clwb'd data lost on crash")
	}
}

func TestFlushInvalidates(t *testing.T) {
	h, ctrl, _, _ := newTestHier(t)
	nvm := ctrl.Layout.NVMBase
	ctrl.Write(nvm, []byte{9})
	h.Access(nvm, true)
	h.Flush(nvm)
	if h.Resident(nvm) {
		t.Fatal("flush left line resident")
	}
	ctrl.Crash()
	got := make([]byte, 1)
	ctrl.Read(nvm, got)
	if got[0] != 9 {
		t.Fatal("flushed data lost on crash")
	}
	// Flushing an absent line is cheap and safe.
	if lat := h.Flush(nvm + 4096); lat != 2 {
		t.Fatalf("flush of absent line = %d", lat)
	}
}

func TestWritebackMergesIntoLowerLevel(t *testing.T) {
	h, _, _, stats := newTestHier(t)
	// Dirty a line in L1, then evict it from L1 while it is still in L2:
	// the dirty bit must merge into L2, not go to memory.
	h.Access(0, true)
	l1Sets := 32 * mem.KiB / mem.LineSize / 8
	for i := 1; i <= 8; i++ {
		h.Access(mem.PhysAddr(i*l1Sets*mem.LineSize), false)
	}
	if stats.Get("cache.writeback") != 0 {
		t.Fatal("L1 dirty eviction went to memory despite L2 residency")
	}
	// The data must still be considered dirty: stream to evict everything
	// and expect exactly one memory write-back for line 0.
	for i := 1; i < 3*64*1024; i++ {
		h.Access(mem.PhysAddr(i*mem.LineSize), false)
	}
	if stats.Get("cache.writeback") == 0 {
		t.Fatal("merged dirty line never written back")
	}
}

func TestInvalidateLine(t *testing.T) {
	h, _, _, _ := newTestHier(t)
	h.Access(0, true)
	h.InvalidateLine(0)
	if h.Resident(0) {
		t.Fatal("InvalidateLine left line resident")
	}
}

func TestReset(t *testing.T) {
	h, _, _, _ := newTestHier(t)
	for i := 0; i < 100; i++ {
		h.Access(mem.PhysAddr(i*mem.LineSize), true)
	}
	h.Reset()
	for i := 0; i < 100; i++ {
		if h.Resident(mem.PhysAddr(i * mem.LineSize)) {
			t.Fatal("Reset left lines resident")
		}
	}
}

func TestMissObserver(t *testing.T) {
	h, _, _, _ := newTestHier(t)
	var misses []mem.PhysAddr
	h.SetMissObserver(func(pa mem.PhysAddr, write bool) { misses = append(misses, pa) })
	h.Access(0, false)
	h.Access(0, false) // hit: not observed
	h.Access(64, false)
	if len(misses) != 2 || misses[0] != 0 || misses[1] != 64 {
		t.Fatalf("observed misses %v", misses)
	}
	h.SetMissObserver(nil)
	h.Access(128, false)
	if len(misses) != 2 {
		t.Fatal("observer fired after removal")
	}
}

func TestAccessPropertySecondAccessHits(t *testing.T) {
	h, _, _, stats := newTestHier(t)
	f := func(lineIdx uint16, write bool) bool {
		pa := mem.PhysAddr(uint64(lineIdx) * mem.LineSize)
		h.Access(pa, write)
		before := stats.Get("cache.l1.hit")
		h.Access(pa, false)
		return stats.Get("cache.l1.hit") == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	h, _, _, stats := newTestHier(t)
	h.Access(0, false)
	hits := stats.Get("cache.l1.hit")
	if !h.Resident(0) {
		t.Fatal("Resident false for cached line")
	}
	if stats.Get("cache.l1.hit") != hits {
		t.Fatal("Resident counted as an access")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	h, _, _, _ := newTestHier(b)
	h.Access(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, false)
	}
}

func BenchmarkCacheMissStream(b *testing.B) {
	h, _, _, _ := newTestHier(b)
	for i := 0; i < b.N; i++ {
		h.Access(mem.PhysAddr((i*mem.LineSize)%(32*mem.MiB)), false)
	}
}
