package persist

import (
	"fmt"

	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/pt"
)

// RecoveryExpectation parameterizes CheckRecoveryInvariants with the facts
// the harness knows about the pre-crash run.
type RecoveryExpectation struct {
	// MaxOps, when non-zero, bounds the workload op counter the sweep
	// workload stamps into GPR[0]: a recovered value above it means the
	// checkpoint captured state that never existed.
	MaxOps uint64
	// MaxGen, checked when CheckGen is set, bounds the recovered slot
	// generation: it can never exceed the number of checkpoints *started*
	// before the crash (a crash mid-checkpoint may leave a durable
	// generation one past the last *completed* checkpoint, so the bound is
	// starts, not completions).
	MaxGen   uint64
	CheckGen bool
	// WantProcs is the exact number of processes recovery must yield, or
	// -1 when the crash point makes either outcome legal (e.g. a crash
	// while the slot's valid flip was still volatile).
	WantProcs int
}

// CheckRecoveryInvariants verifies the post-recovery state of mgr's kernel
// against the crash-consistency invariants every commit point must satisfy:
//
//  1. the recovered process count matches the expectation;
//  2. each recovered VMA layout is internally consistent (sorted,
//     non-overlapping, non-empty regions);
//  3. the recovered registers come from one consistent snapshot (the sweep
//     workload maintains GPR[0]*16 == RIP as it runs) and never from the
//     future (GPR[0] ≤ MaxOps);
//  4. the recovered slot generation is monotone-bounded by MaxGen;
//  5. every recovered NVM page-table mapping points at an NVM frame the
//     recovered allocator considers in use, inside a recovered NVM VMA;
//  6. the recovered process is runnable: every NVM VMA can be touched.
//
// It is exported so the go-test sweep, the bench crash-sweep experiment and
// the op-granularity crash test all apply the same definition of "recovered
// correctly".
func CheckRecoveryInvariants(mgr *Manager, procs []*gemos.Process, exp RecoveryExpectation) error {
	if exp.WantProcs >= 0 && len(procs) != exp.WantProcs {
		return fmt.Errorf("recovered %d processes, want %d", len(procs), exp.WantProcs)
	}
	m := mgr.M
	k := mgr.K
	for _, rp := range procs {
		// (2) VMA layout internally consistent, and coherent with the
		// recovered allocation cursor: mmap only hands out cursor-region
		// addresses below the cursor, so a recovered VMA beyond it means
		// the layout and the cursor come from different snapshots (the
		// checkpoint-flip ordering bug manifested exactly this way — a
		// durable flip over a stale cursor/counts line).
		var prevEnd uint64
		for _, v := range rp.AS.All() {
			if v.Start < prevEnd || v.Start >= v.End {
				return fmt.Errorf("pid %d: inconsistent recovered VMA [%#x,%#x)", rp.PID, v.Start, v.End)
			}
			prevEnd = v.End
			if v.Kind == mem.NVM && v.Start >= gemos.MmapBase && v.End > rp.MmapCursor() {
				return fmt.Errorf("pid %d: recovered VMA [%#x,%#x) beyond recovered mmap cursor %#x",
					rp.PID, v.Start, v.End, rp.MmapCursor())
			}
		}

		// (3) Registers from one consistent snapshot.
		if rp.Regs.GPR[0]*16 != rp.Regs.RIP {
			return fmt.Errorf("pid %d: torn registers: gpr0=%d rip=%d", rp.PID, rp.Regs.GPR[0], rp.Regs.RIP)
		}
		if exp.MaxOps > 0 && rp.Regs.GPR[0] > exp.MaxOps {
			return fmt.Errorf("pid %d: registers from the future: op %d > max %d",
				rp.PID, rp.Regs.GPR[0], exp.MaxOps)
		}

		// (4) Generation monotonicity.
		if exp.CheckGen {
			if gen, _, ok := mgr.SlotOf(rp); ok && gen > exp.MaxGen {
				return fmt.Errorf("pid %d: recovered generation %d exceeds checkpoints started %d",
					rp.PID, gen, exp.MaxGen)
			}
		}

		// (5) Mappings point at in-use NVM frames inside NVM VMAs.
		var mapErr error
		rp.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
			if !e.NVM() {
				return true
			}
			if m.Cfg.Layout.KindOf(mem.FrameBase(e.PFN())) != mem.NVM {
				mapErr = fmt.Errorf("pid %d: NVM-flagged PTE va=%#x points at %v frame",
					rp.PID, va, m.Cfg.Layout.KindOf(mem.FrameBase(e.PFN())))
				return false
			}
			if !k.Alloc.InUse(e.PFN()) {
				mapErr = fmt.Errorf("pid %d: recovered mapping va=%#x uses free frame %#x",
					rp.PID, va, e.PFN())
				return false
			}
			v := rp.AS.Find(va)
			if v == nil || v.Kind != mem.NVM {
				mapErr = fmt.Errorf("pid %d: recovered NVM mapping va=%#x outside NVM VMAs", rp.PID, va)
				return false
			}
			return true
		})
		if mapErr != nil {
			return mapErr
		}

		// (6) Runnable: touch every NVM VMA.
		k.Switch(rp)
		for _, v := range rp.AS.All() {
			if v.Kind != mem.NVM {
				continue
			}
			if _, err := m.Core.Access(v.Start, false, 8); err != nil {
				return fmt.Errorf("pid %d: recovered area [%#x,%#x) unusable: %v",
					rp.PID, v.Start, v.End, err)
			}
		}
	}
	return nil
}
