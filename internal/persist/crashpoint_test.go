package persist

import (
	"testing"
	"time"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/sim"
)

// TestCrashAnywhereInvariants is the op-granularity failure-injection sweep:
// the deterministic sweep workload runs under periodic checkpointing and the
// machine crashes after every k-th operation (for a spread of k). The
// recovery invariants (see CheckRecoveryInvariants) must hold at every crash
// point. The finer-grained commit-point sweep lives in sweep_test.go.
func TestCrashAnywhereInvariants(t *testing.T) {
	for _, scheme := range []Scheme{Rebuild, Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for crashAfter := 5; crashAfter <= 125; crashAfter += 8 {
				runOpCrashPoint(t, scheme, crashAfter)
			}
		})
	}
}

func runOpCrashPoint(t *testing.T, scheme Scheme, crashAfter int) {
	t.Helper()
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	mgr, err := Attach(k, scheme, sim.FromDuration(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	mgr.Start()

	o := &sweepOps{k: k, p: p, rng: sim.NewRNG(uint64(crashAfter) * 977)}
	for i := 0; i < crashAfter; i++ {
		if err := o.step(); err != nil {
			t.Fatalf("crashAfter=%d op %d: %v", crashAfter, i, err)
		}
		// Let time pass so checkpoints interleave with ops at varying
		// phases.
		m.Clock.Advance(sim.FromDuration(20 * time.Microsecond))
		k.Tick()
	}
	started := m.Stats.Get("persist.checkpoints_started")

	// Crash mid-flight, reboot, recover.
	m.Crash()
	k2 := gemos.Boot(m)
	mgr2, err := Reattach(k2, sim.FromDuration(100*time.Microsecond))
	if err != nil {
		t.Fatalf("crashAfter=%d: reattach: %v", crashAfter, err)
	}
	procs, err := mgr2.Recover()
	if err != nil {
		t.Fatalf("crashAfter=%d: recover: %v", crashAfter, err)
	}
	exp := RecoveryExpectation{
		MaxOps:    uint64(crashAfter),
		MaxGen:    started,
		CheckGen:  true,
		WantProcs: 1,
	}
	if err := CheckRecoveryInvariants(mgr2, procs, exp); err != nil {
		t.Fatalf("crashAfter=%d: %v", crashAfter, err)
	}
}
