package persist

import (
	"testing"
	"time"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

// TestCrashAnywhereInvariants is the failure-injection sweep: a workload
// of mmap/store/munmap operations runs under periodic checkpointing and
// the machine crashes after every k-th operation (for a spread of k). The
// recovery invariants must hold at every crash point:
//
//  1. recovery succeeds and yields the process;
//  2. the recovered VMA layout is internally consistent (sorted,
//     non-overlapping) and is a layout the process actually had at some
//     checkpoint;
//  3. every recovered page-table mapping points at an NVM frame that the
//     recovered allocator considers in use (no dangling frames);
//  4. recovered NVM mappings fall inside recovered NVM VMAs;
//  5. the recovered register file equals the values captured at some
//     checkpoint (never a torn mixture).
func TestCrashAnywhereInvariants(t *testing.T) {
	for _, scheme := range []Scheme{Rebuild, Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for crashAfter := 5; crashAfter <= 125; crashAfter += 8 {
				runCrashPoint(t, scheme, crashAfter)
			}
		})
	}
}

// opLog drives a deterministic mixed workload, one op at a time.
type opLog struct {
	k   *gemos.Kernel
	p   *gemos.Process
	rng *sim.RNG

	regions []uint64 // live NVM mmap bases (fixed 4-page regions)
	opCount int
}

const crashRegionPages = 4

func (o *opLog) step() error {
	o.opCount++
	// Stamp the registers with the op counter so torn recovery is
	// detectable: a consistent copy always holds a single opCount value.
	o.k.M.Core.Regs.GPR[0] = uint64(o.opCount)
	o.k.M.Core.Regs.RIP = uint64(o.opCount) * 16

	switch o.rng.Intn(4) {
	case 0, 1: // mmap + touch
		a, err := o.k.Mmap(o.p, 0, crashRegionPages*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		if err != nil {
			return err
		}
		o.regions = append(o.regions, a)
		for i := uint64(0); i < crashRegionPages; i++ {
			if _, err := o.k.M.Core.Access(a+i*mem.PageSize, true, 8); err != nil {
				return err
			}
		}
	case 2: // munmap a region if any
		if len(o.regions) == 0 {
			return nil
		}
		idx := o.rng.Intn(len(o.regions))
		a := o.regions[idx]
		o.regions = append(o.regions[:idx], o.regions[idx+1:]...)
		return o.k.Munmap(o.p, a, crashRegionPages*mem.PageSize)
	default: // touch a random live page
		if len(o.regions) == 0 {
			return nil
		}
		a := o.regions[o.rng.Intn(len(o.regions))]
		off := uint64(o.rng.Intn(crashRegionPages)) * mem.PageSize
		if _, err := o.k.M.Core.Access(a+off, true, 8); err != nil {
			return err
		}
	}
	return nil
}

func runCrashPoint(t *testing.T, scheme Scheme, crashAfter int) {
	t.Helper()
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	mgr, err := Attach(k, scheme, sim.FromDuration(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	mgr.Start()

	o := &opLog{k: k, p: p, rng: sim.NewRNG(uint64(crashAfter) * 977)}
	for i := 0; i < crashAfter; i++ {
		if err := o.step(); err != nil {
			t.Fatalf("crashAfter=%d op %d: %v", crashAfter, i, err)
		}
		// Let time pass so checkpoints interleave with ops at varying
		// phases.
		m.Clock.Advance(sim.FromDuration(20 * time.Microsecond))
		k.Tick()
	}

	// Crash mid-flight, reboot, recover.
	m.Crash()
	k2 := gemos.Boot(m)
	mgr2, err := Reattach(k2, sim.FromDuration(100*time.Microsecond))
	if err != nil {
		t.Fatalf("crashAfter=%d: reattach: %v", crashAfter, err)
	}
	procs, err := mgr2.Recover()
	if err != nil {
		t.Fatalf("crashAfter=%d: recover: %v", crashAfter, err)
	}
	if len(procs) != 1 {
		t.Fatalf("crashAfter=%d: recovered %d processes", crashAfter, len(procs))
	}
	rp := procs[0]

	// (2) VMA layout internally consistent.
	var prevEnd uint64
	for _, v := range rp.AS.All() {
		if v.Start < prevEnd || v.Start >= v.End {
			t.Fatalf("crashAfter=%d: inconsistent recovered VMA %v", crashAfter, v)
		}
		prevEnd = v.End
	}

	// (5) Registers from one consistent snapshot: GPR[0]*16 == RIP.
	if rp.Regs.GPR[0]*16 != rp.Regs.RIP {
		t.Fatalf("crashAfter=%d: torn registers: gpr0=%d rip=%d",
			crashAfter, rp.Regs.GPR[0], rp.Regs.RIP)
	}
	if rp.Regs.GPR[0] > uint64(crashAfter) {
		t.Fatalf("crashAfter=%d: registers from the future (%d)", crashAfter, rp.Regs.GPR[0])
	}

	// (3) + (4): mappings point at in-use NVM frames inside NVM VMAs.
	rp.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		if !e.NVM() {
			return true
		}
		if m.Cfg.Layout.KindOf(mem.FrameBase(e.PFN())) != mem.NVM {
			t.Fatalf("crashAfter=%d: NVM-flagged PTE points at %v frame",
				crashAfter, m.Cfg.Layout.KindOf(mem.FrameBase(e.PFN())))
		}
		if !k2.Alloc.InUse(e.PFN()) {
			t.Fatalf("crashAfter=%d: recovered mapping va=%#x uses free frame %#x",
				crashAfter, va, e.PFN())
		}
		v := rp.AS.Find(va)
		if v == nil || v.Kind != mem.NVM {
			t.Fatalf("crashAfter=%d: recovered NVM mapping va=%#x outside NVM VMAs", crashAfter, va)
		}
		return true
	})

	// The recovered process must be runnable: touch every NVM VMA.
	k2.Switch(rp)
	for _, v := range rp.AS.All() {
		if v.Kind != mem.NVM {
			continue
		}
		if _, err := m.Core.Access(v.Start, false, 8); err != nil {
			t.Fatalf("crashAfter=%d: recovered area unusable: %v", crashAfter, err)
		}
	}
}
