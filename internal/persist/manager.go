package persist

import (
	"fmt"
	"sort"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

// CostModel exposes the calibration knobs of operations whose per-item cost
// is charged in bulk rather than simulated byte-by-byte (keeping host time
// bounded on 100k-page address spaces). All other costs come from real
// simulated memory operations.
type CostModel struct {
	// CheckPerPage is the per-mapped-NVM-page cost of the rebuild scheme's
	// checkpoint verification pass ("the overhead to check and update
	// virtual to physical address mapping during each checkpoint"): a PTE
	// read, an NVM-resident v2p index probe and the comparison.
	// Default 3 µs, calibrated against the relative costs in the
	// paper's Fig. 4/Table IV (see EXPERIMENTS.md).
	CheckPerPage sim.Cycles
	// TableScanPerPage is the per-page-table-page cost of traversing the
	// process page table during the same pass. Default 1 µs.
	TableScanPerPage sim.Cycles
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() CostModel {
	return CostModel{
		CheckPerPage:     sim.FromNanos(3000),
		TableScanPerPage: sim.FromNanos(1000),
	}
}

// v2pEntry is one virtual→NVM-physical mapping.
type v2pEntry struct {
	vpn uint64
	pfn uint64
}

// v2pMirror is the host-side mirror of a slot's mapping list; the NVM copy
// is serialized from it at each checkpoint.
type v2pMirror struct {
	entries []v2pEntry
	index   map[uint64]int
}

func newV2PMirror() *v2pMirror {
	return &v2pMirror{index: make(map[uint64]int)}
}

// set inserts or updates vpn→pfn and returns the index of the entry slot
// that was written (the appended slot for an insert, the existing slot for
// an update).
func (v *v2pMirror) set(vpn, pfn uint64) int {
	if i, ok := v.index[vpn]; ok {
		v.entries[i].pfn = pfn
		return i
	}
	i := len(v.entries)
	v.index[vpn] = i
	v.entries = append(v.entries, v2pEntry{vpn: vpn, pfn: pfn})
	return i
}

// remove deletes vpn and returns the index of the entry slot rewritten by
// the swap-with-last compaction, or -1 when no slot was written (vpn absent
// or the removed entry was the last one).
func (v *v2pMirror) remove(vpn uint64) int {
	i, ok := v.index[vpn]
	if !ok {
		return -1
	}
	last := len(v.entries) - 1
	v.entries[i] = v.entries[last]
	v.index[v.entries[i].vpn] = i
	v.entries = v.entries[:last]
	delete(v.index, vpn)
	if i == last {
		return -1
	}
	return i
}

func (v *v2pMirror) len() int { return len(v.entries) }

// mapChange is a pending (not yet checkpointed) mapping mutation.
type mapChange struct {
	pfn    uint64
	mapped bool
}

// procDirty accumulates metadata changes for one process since its last
// checkpoint.
type procDirty struct {
	vmaDirty bool
	changes  map[uint64]mapChange
}

type slotState struct {
	used   bool
	pid    int
	which  int // which copy is consistent (0=A, 1=B)
	gen    uint64
	mirror *v2pMirror
}

// Manager implements process persistence over a gemOS kernel. It is the
// gemos.MetaLogger and owns the checkpoint timer, the saved-state slots and
// the recovery procedure.
type Manager struct {
	K        *gemos.Kernel
	M        *machine.Machine
	Scheme   Scheme
	Interval sim.Cycles
	Costs    CostModel

	geo   geometry
	log   *redoLog
	slots [SlotCount]slotState
	dirty map[int]*procDirty // keyed by pid

	ptLogHead uint64
	ckptEvent *sim.Event
	started   bool

	ckptLat     *sim.Histogram
	recoveryLat *sim.Histogram

	// Hot-path counters: PTE wrapping fires on every page-table store of a
	// persistent process; the v2p pair on every checkpointed mapping.
	pteWraps     *sim.Counter
	v2pUpdates   *sim.Counter
	v2pChecked   *sim.Counter
	kernelCycles *sim.Counter
}

// Attach wires process persistence into k with the given page-table scheme
// and checkpoint interval. It configures the kernel (table hosting kind,
// PTE write wrapping, metadata logging) and initializes the NVM area. Call
// Start to begin periodic checkpointing.
func Attach(k *gemos.Kernel, scheme Scheme, interval sim.Cycles) (*Manager, error) {
	base, size := k.PersistArea()
	geo, err := newGeometry(base, size)
	if err != nil {
		return nil, err
	}
	mgr := &Manager{
		K:        k,
		M:        k.M,
		Scheme:   scheme,
		Interval: interval,
		Costs:    DefaultCosts(),
		geo:      geo,
		log:      newRedoLog(k.M, geo.redoBase, redoLogSize),
		dirty:    make(map[int]*procDirty),

		pteWraps:     k.M.Stats.Counter("persist.pte_wrap"),
		v2pUpdates:   k.M.Stats.Counter("persist.v2p_update"),
		v2pChecked:   k.M.Stats.Counter("persist.v2p_checked"),
		kernelCycles: k.M.Stats.Counter("cpu.kernel_cycles"),
	}
	mgr.configureKernel()

	// Initialize the area header and invalidate all slots (fresh boot).
	m := k.M
	m.StoreU64(base, areaMagic)
	m.StoreU64(base+8, uint64(scheme))
	for i := 0; i < SlotCount; i++ {
		m.StoreU64(geo.slotAddr(i)+hdrMagic, 0)
		m.StoreU64(geo.slotAddr(i)+hdrValid, 0)
		m.CommitRange(geo.slotAddr(i), mem.LineSize)
	}
	m.CommitRange(base, mem.LineSize)
	return mgr, nil
}

// Reattach builds a Manager over an already-initialized NVM area after a
// reboot, without clearing the slots. Use it on the post-crash kernel
// before calling Recover.
func Reattach(k *gemos.Kernel, interval sim.Cycles) (*Manager, error) {
	base, size := k.PersistArea()
	geo, err := newGeometry(base, size)
	if err != nil {
		return nil, err
	}
	if k.M.LoadU64(base) != areaMagic {
		return nil, fmt.Errorf("persist: no valid area header at %#x", base)
	}
	scheme := Scheme(k.M.LoadU64(base + 8))
	if scheme != Rebuild && scheme != Persistent {
		return nil, fmt.Errorf("persist: corrupted area header at %#x: unknown page-table scheme %d",
			base, uint64(scheme))
	}
	mgr := &Manager{
		K:        k,
		M:        k.M,
		Scheme:   scheme,
		Interval: interval,
		Costs:    DefaultCosts(),
		geo:      geo,
		log:      newRedoLog(k.M, geo.redoBase, redoLogSize),
		dirty:    make(map[int]*procDirty),

		pteWraps:     k.M.Stats.Counter("persist.pte_wrap"),
		v2pUpdates:   k.M.Stats.Counter("persist.v2p_update"),
		v2pChecked:   k.M.Stats.Counter("persist.v2p_checked"),
		kernelCycles: k.M.Stats.Counter("cpu.kernel_cycles"),
	}
	mgr.configureKernel()
	return mgr, nil
}

// configureKernel installs the scheme-specific hooks.
func (mgr *Manager) configureKernel() {
	k := mgr.K
	mgr.ckptLat = mgr.M.Stats.Hist("persist.checkpoint_lat")
	mgr.recoveryLat = mgr.M.Stats.Hist("persist.recovery_lat")
	if mgr.Scheme == Persistent {
		k.PTKind = mem.NVM
		k.PTEHook = mgr.pteHook
	} else {
		k.PTKind = mem.DRAM
		k.PTEHook = nil
	}
	k.Meta = mgr
	k.OnSpawn = mgr.onSpawn
	k.OnExit = mgr.onExit
	// NVM frames freed between checkpoints stay reserved until the next
	// consistent-copy flip commits, keeping the durable allocator bitmap
	// from running ahead of the durable process metadata.
	k.Alloc.SetDeferNVMFrees(true)
}

// pteHook wraps every page-table store of a persistent-scheme process in
// the NVM consistency mechanism: append a log record, store the PTE, write
// the line back, fence. This is the per-update price the persistent scheme
// pays so recovery can trust the in-NVM table.
func (mgr *Manager) pteHook(p *gemos.Process) pt.WriteHook {
	m := mgr.M
	return func(pa mem.PhysAddr, v pt.PTE) sim.Cycles {
		// Undo-style ordering (per the NVRAM-consistency primitives the
		// paper builds on): read the old entry, persist the log record,
		// fence, then persist the new entry, fence again.
		la := mgr.geo.ptLogBase + mem.PhysAddr(mgr.ptLogHead%ptLogSize)
		mgr.ptLogHead += mem.LineSize
		lat := m.AccessTimed(pa, false) // old PTE value for the undo record
		m.StoreU64(la, uint64(pa))
		m.StoreU64(la+8, uint64(v))
		lat += m.AccessTimed(la, true)
		lat += m.Core.Clwb(la)
		lat += m.Core.Fence()
		m.StoreU64(pa, uint64(v))
		lat += m.AccessTimed(pa, true)
		lat += m.Core.Clwb(pa)
		lat += m.Core.Fence()
		mgr.pteWraps.Inc()
		return lat
	}
}

// dirtyFor returns (creating) the dirty set of pid.
func (mgr *Manager) dirtyFor(pid int) *procDirty {
	d := mgr.dirty[pid]
	if d == nil {
		d = &procDirty{changes: make(map[uint64]mapChange)}
		mgr.dirty[pid] = d
	}
	return d
}

// LogVMAChange implements gemos.MetaLogger.
func (mgr *Manager) LogVMAChange(p *gemos.Process) {
	if p.Slot < 0 {
		return
	}
	mgr.dirtyFor(p.PID).vmaDirty = true
	mgr.log.append(logVMAChange, p.PID, 0, 0)
}

// LogMapping implements gemos.MetaLogger. Only the rebuild scheme needs the
// virtual→NVM-physical list maintained; the persistent scheme's table is
// authoritative in NVM already.
func (mgr *Manager) LogMapping(p *gemos.Process, vpn, pfn uint64, mapped bool) {
	if p.Slot < 0 || mgr.Scheme != Rebuild {
		return
	}
	d := mgr.dirtyFor(p.PID)
	d.changes[vpn] = mapChange{pfn: pfn, mapped: mapped}
	typ := uint64(logMapAdd)
	if !mapped {
		typ = logMapRemove
	}
	mgr.log.append(typ, p.PID, vpn, pfn)
}

// onSpawn assigns a saved-state slot and writes the initial consistent
// context.
func (mgr *Manager) onSpawn(p *gemos.Process) {
	slot := -1
	for i := range mgr.slots {
		if !mgr.slots[i].used {
			slot = i
			break
		}
	}
	if slot < 0 {
		// No slot: the process simply runs unpersisted.
		mgr.M.Stats.Inc("persist.slot_exhausted")
		return
	}
	mgr.slots[slot] = slotState{used: true, pid: p.PID, which: 0, mirror: newV2PMirror()}
	p.Slot = slot

	m := mgr.M
	sa := mgr.geo.slotAddr(slot)
	m.StoreU64(sa+hdrMagic, slotMagic)
	m.StoreU64(sa+hdrPID, uint64(p.PID))
	m.StoreU64(sa+hdrValid, 0)
	m.StoreU64(sa+hdrWhich, 0)
	m.StoreU64(sa+hdrPTRoot, uint64(p.Table.Root()))
	m.StoreU64(sa+hdrGeneration, 0)
	name := p.Name
	if len(name) > 64 {
		name = name[:64]
	}
	m.StoreU64(sa+hdrNameLen, uint64(len(name)))
	m.Ctrl.Write(sa+hdrName, []byte(name))
	mgr.writeRegs(slot, 0, p.Regs.GPR[:], p.Regs.RIP, p.Regs.RFLAGS)
	m.StoreU64(sa+hdrCursorA, p.MmapCursor())
	mgr.writeVMATable(slot, 0, p)
	m.StoreU64(sa+hdrV2PCountA, 0)
	// Durability, in dependency order: copy-A payload and the header page
	// first (valid still 0 — a crash here leaves the slot invisible), and
	// only then the single-line valid flip.
	m.CommitRange(mgr.geo.vmaTableAddr(slot, 0), vmaTableSize)
	m.CommitRange(sa, slotHeaderSize)
	// Timed: header lines + VMA lines.
	for off := mem.PhysAddr(0); off < 0x340; off += mem.LineSize {
		m.AccessTimed(sa+off, true)
		m.Core.Clwb(sa + off)
	}
	m.Core.Fence()
	m.StoreU64(sa+hdrValid, 1)
	m.AccessTimed(sa+hdrValid, true)
	m.Core.Clwb(sa + hdrValid)
	m.Core.Fence()
	m.CommitRange(sa, mem.LineSize)
	m.Stats.Inc("persist.slot_init")
}

// onExit releases the slot.
func (mgr *Manager) onExit(p *gemos.Process) {
	if p.Slot < 0 {
		return
	}
	sa := mgr.geo.slotAddr(p.Slot)
	mgr.M.StoreU64(sa+hdrValid, 0)
	mgr.M.AccessTimed(sa+hdrValid, true)
	mgr.M.Core.Clwb(sa + hdrValid)
	mgr.M.Core.Fence()
	mgr.M.CommitRange(sa, mem.LineSize)
	mgr.slots[p.Slot] = slotState{}
	delete(mgr.dirty, p.PID)
	p.Slot = -1
}

// writeRegs serializes a register file into copy copyIdx of slot (functional).
func (mgr *Manager) writeRegs(slot, copyIdx int, gpr []uint64, rip, rflags uint64) {
	ra := mgr.geo.regsAddr(slot, copyIdx)
	for i, v := range gpr {
		mgr.M.StoreU64(ra+mem.PhysAddr(i*8), v)
	}
	mgr.M.StoreU64(ra+16*8, rip)
	mgr.M.StoreU64(ra+17*8, rflags)
}

// readRegs deserializes copy copyIdx of slot.
func (mgr *Manager) readRegs(slot, copyIdx int) (gpr [16]uint64, rip, rflags uint64) {
	ra := mgr.geo.regsAddr(slot, copyIdx)
	for i := range gpr {
		gpr[i] = mgr.M.LoadU64(ra + mem.PhysAddr(i*8))
	}
	return gpr, mgr.M.LoadU64(ra + 16*8), mgr.M.LoadU64(ra + 17*8)
}

// writeVMATable serializes p's VMAs into copy copyIdx (functional), and
// stores the count in the header field for that copy.
func (mgr *Manager) writeVMATable(slot, copyIdx int, p *gemos.Process) int {
	va := mgr.geo.vmaTableAddr(slot, copyIdx)
	vmas := p.AS.All()
	n := len(vmas)
	if n > MaxVMAs {
		n = MaxVMAs
		mgr.M.Stats.Inc("persist.vma_truncated")
	}
	for i := 0; i < n; i++ {
		v := vmas[i]
		ea := va + mem.PhysAddr(i*vmaEntrySize)
		mgr.M.StoreU64(ea, v.Start)
		mgr.M.StoreU64(ea+8, v.End)
		mgr.M.StoreU64(ea+16, uint64(v.Prot)|uint64(v.Kind)<<8)
		mgr.M.StoreU64(ea+24, nameTag(v.Name))
	}
	cnt := mem.PhysAddr(hdrVMACountA)
	if copyIdx == 1 {
		cnt = hdrVMACountB
	}
	mgr.M.StoreU64(mgr.geo.slotAddr(slot)+cnt, uint64(n))
	return n
}

// nameTag packs up to 8 name bytes for diagnostics.
func nameTag(s string) uint64 {
	var v uint64
	for i := 0; i < len(s) && i < 8; i++ {
		v |= uint64(s[i]) << (8 * i)
	}
	return v
}

func tagName(v uint64) string {
	var b []byte
	for i := 0; i < 8; i++ {
		c := byte(v >> (8 * i))
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}

// Start schedules the periodic checkpoint. The first checkpoint fires one
// interval from now; each subsequent one is scheduled an interval after the
// previous *completes* (an overrunning checkpoint delays the next rather
// than stacking).
func (mgr *Manager) Start() {
	if mgr.started {
		return
	}
	mgr.started = true
	mgr.schedule()
}

// Stop cancels periodic checkpointing. The event allocation is kept for the
// next Start.
func (mgr *Manager) Stop() {
	mgr.M.Events.Cancel(mgr.ckptEvent)
	mgr.started = false
}

// schedule arms the next checkpoint timer, reusing one Event allocation for
// the manager's lifetime.
func (mgr *Manager) schedule() {
	mgr.scheduleAt(mgr.M.Clock.Now() + mgr.Interval)
}

// scheduleAt arms the checkpoint timer at an explicit deadline (schedule's
// body, shared with the fork path's RearmCheckpoint).
func (mgr *Manager) scheduleAt(when sim.Cycles) {
	if mgr.ckptEvent != nil {
		mgr.M.Events.Reschedule(mgr.ckptEvent, when)
		return
	}
	mgr.ckptEvent = mgr.M.Events.Schedule(when, "persist.checkpoint", func(sim.Cycles) {
		mgr.Checkpoint()
		if mgr.started {
			mgr.schedule()
		}
	})
}

// Checkpoint makes every persisted process's working copy consistent: CPU
// state is logged, redo-log entries are applied to the working copy, the
// rebuild scheme refreshes the virtual→NVM-physical list, and the
// consistent-copy pointer flips. The simulated cost is charged as kernel
// time.
func (mgr *Manager) Checkpoint() {
	m := mgr.M
	start := m.Clock.Now()
	// Counted at entry (the completion counter is persist.checkpoints):
	// a crash mid-checkpoint may already have flipped some slots' durable
	// generation, so the monotonicity bound is checkpoints *started*.
	m.Stats.Inc("persist.checkpoints_started")
	m.Core.EnterKernel()
	defer m.Core.ExitKernel()
	tracing := m.Tracer.Enabled(obs.CatCheckpoint)

	for slot := range mgr.slots {
		st := &mgr.slots[slot]
		if !st.used {
			continue
		}
		p := mgr.K.Process(st.pid)
		if p == nil {
			continue
		}
		target := 1 - st.which
		sa := mgr.geo.slotAddr(slot)
		phaseStart := m.Clock.Now()

		// 1. Log the CPU state ("we first log the CPU state"), then write
		// it into the working copy.
		regs := p.Regs
		if mgr.K.Current() == p {
			regs = m.Core.Regs
		}
		mgr.log.append(logRegs, st.pid, regs.RIP, regs.GPR[0])
		mgr.writeRegs(slot, target, regs.GPR[:], regs.RIP, regs.RFLAGS)
		ra := mgr.geo.regsAddr(slot, target)
		for off := mem.PhysAddr(0); off < regsBytes; off += mem.LineSize {
			m.AccessTimed(ra+off, true)
			m.Core.Clwb(ra + off)
		}
		cursorOff := mem.PhysAddr(hdrCursorA)
		if target == 1 {
			cursorOff = hdrCursorB
		}
		m.StoreU64(sa+cursorOff, p.MmapCursor())
		phaseStart = mgr.endPhase(tracing, "checkpoint.regs", "persist.ckpt.regs_cycles", phaseStart, slot)

		// 2. Apply metadata changes: rewrite the VMA table of the working
		// copy when the layout changed this interval.
		d := mgr.dirty[st.pid]
		nv := mgr.writeVMATable(slot, target, p)
		if d != nil && d.vmaDirty {
			va := mgr.geo.vmaTableAddr(slot, target)
			lines := (nv*vmaEntrySize + mem.LineSize - 1) / mem.LineSize
			for i := 0; i < lines; i++ {
				ea := va + mem.PhysAddr(i*mem.LineSize)
				m.AccessTimed(ea, true)
				m.Core.Clwb(ea)
			}
		}

		phaseStart = mgr.endPhase(tracing, "checkpoint.vma", "persist.ckpt.vma_cycles", phaseStart, slot)

		// 3. Rebuild scheme: maintain the virtual→NVM-physical list.
		if mgr.Scheme == Rebuild {
			mgr.maintainV2P(slot, st, d, target)
		}
		phaseStart = mgr.endPhase(tracing, "checkpoint.v2p", "persist.ckpt.v2p_cycles", phaseStart, slot)

		// 4. Make the working copy durable *before* the flip: VMA table,
		// registers, and the header line holding the copy's cursor and
		// VMA/v2p counts (hdrCursorA..hdrV2PCountB share one 64-byte line
		// at +0x300, distinct from the line holding hdrWhich). Only once
		// all of it is durable does the consistent pointer flip commit
		// (single-line write + clwb + fence = atomic; gen and PTRoot ride
		// on the same line as hdrWhich). A crash between the two fences
		// now lands entirely on one side: either the old copy with its old
		// counts, or the new copy with its new counts.
		m.CommitRange(mgr.geo.vmaTableAddr(slot, target), vmaTableSize)
		m.CommitRange(ra, regsBytes)
		m.AccessTimed(sa+hdrCursorA, true)
		m.Core.Clwb(sa + hdrCursorA)
		m.Core.Fence()
		m.CommitRange(sa+hdrCursorA, mem.LineSize)
		st.gen++
		m.StoreU64(sa+hdrGeneration, st.gen)
		m.StoreU64(sa+hdrPTRoot, uint64(p.Table.Root()))
		m.StoreU64(sa+hdrWhich, uint64(target))
		m.AccessTimed(sa+hdrWhich, true)
		m.Core.Clwb(sa + hdrWhich)
		m.Core.Fence()
		m.CommitRange(sa, mem.LineSize)
		// Safety net only — the flip above must already have made the new
		// copy recoverable; nothing below this line is load-bearing.
		m.CommitRange(sa, slotHeaderSize)
		st.which = target
		mgr.endPhase(tracing, "checkpoint.flip", "persist.ckpt.flip_cycles", phaseStart, slot)

		if d != nil {
			d.vmaDirty = false
			d.changes = make(map[uint64]mapChange)
		}
	}

	// Apply (and retire) every redo-log entry accumulated this interval,
	// including the just-logged CPU states.
	drainStart := m.Clock.Now()
	mgr.log.drain()
	mgr.endPhase(tracing, "checkpoint.redo_drain", "persist.ckpt.redo_cycles", drainStart, -1)

	// The paper assumes heap/stack data pages are kept consistent in NVM
	// by existing memory-consistency techniques; emulate that assumption
	// by making all pending NVM data durable at the checkpoint boundary
	// (not charged — SSP is the component that *measures* that cost).
	m.Ctrl.Domain().CommitAll()

	// With every slot's consistent copy flipped, deferred NVM frees can
	// take effect: no durable saved state references those frames now.
	mgr.K.Alloc.FlushDeferredFrees()

	total := m.Clock.Now() - start
	mgr.ckptLat.ObserveCycles(total)
	if tracing {
		m.Tracer.Span(obs.CatCheckpoint, "checkpoint", start, total, "gen", uint64(m.BootGeneration()))
	}
	m.Stats.Inc("persist.checkpoints")
	m.Stats.Add("persist.checkpoint_cycles", uint64(total))
}

// endPhase closes one checkpoint/recovery phase that began at phaseStart:
// the elapsed cycles are added to counter, a sub-span named name is emitted
// when tracing, and the new phase start (now) is returned. slot < 0 means
// the phase is not slot-scoped.
func (mgr *Manager) endPhaseCat(tracing bool, cat obs.Category, name, counter string, phaseStart sim.Cycles, slot int) sim.Cycles {
	now := mgr.M.Clock.Now()
	mgr.M.Stats.Add(counter, uint64(now-phaseStart))
	if tracing {
		if slot < 0 {
			mgr.M.Tracer.Span(cat, name, phaseStart, now-phaseStart, "", 0)
		} else {
			mgr.M.Tracer.Span(cat, name, phaseStart, now-phaseStart, "slot", uint64(slot))
		}
	}
	return now
}

func (mgr *Manager) endPhase(tracing bool, name, counter string, phaseStart sim.Cycles, slot int) sim.Cycles {
	return mgr.endPhaseCat(tracing, obs.CatCheckpoint, name, counter, phaseStart, slot)
}

// maintainV2P applies this interval's mapping changes to the slot's list
// and charges the verification pass over all mapped pages.
func (mgr *Manager) maintainV2P(slot int, st *slotState, d *procDirty, target int) {
	m := mgr.M

	// Per-change update: log append happened at mutation time; here the
	// entry is written into the NVM list with write-back + fence so the
	// list is durably consistent entry by entry.
	if d != nil && len(d.changes) > 0 {
		vpns := make([]uint64, 0, len(d.changes))
		for vpn := range d.changes {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		base := mgr.geo.v2pAddr(slot, target)
		for _, vpn := range vpns {
			ch := d.changes[vpn]
			var idx int
			if ch.mapped {
				idx = st.mirror.set(vpn, ch.pfn)
			} else {
				idx = st.mirror.remove(vpn)
			}
			mgr.v2pUpdates.Inc()
			// Timed: one entry write in the target copy + clwb + fence,
			// charged at the address of the entry slot actually written
			// (a removal that only shrinks the list writes no slot).
			if idx < 0 {
				continue
			}
			ui := uint64(idx)
			if ui >= mgr.geo.v2pCap {
				ui = mgr.geo.v2pCap - 1
			}
			ea := base + mem.PhysAddr(ui*v2pEntrySize)
			m.AccessTimed(ea, true)
			m.Core.Clwb(ea)
			m.Core.Fence()
		}
	}

	// Traversal of the process page table plus the verification pass over
	// every mapped entry (bulk-charged at the calibrated per-item costs).
	n := uint64(st.mirror.len())
	if p := mgr.K.Process(st.pid); p != nil {
		tp := uint64(p.Table.TablePageCount())
		scan := sim.Cycles(tp) * mgr.Costs.TableScanPerPage
		m.Clock.Advance(scan)
		mgr.kernelCycles.Add(uint64(scan))
	}
	if n > 0 {
		m.Clock.Advance(sim.Cycles(n) * mgr.Costs.CheckPerPage)
		mgr.kernelCycles.Add(n * uint64(mgr.Costs.CheckPerPage))
		mgr.v2pChecked.Add(n)
	}

	// Serialize the mirror into the target copy (functional) and record
	// the count.
	base := mgr.geo.v2pAddr(slot, target)
	if n > mgr.geo.v2pCap {
		n = mgr.geo.v2pCap
		m.Stats.Inc("persist.v2p_truncated")
	}
	for i := uint64(0); i < n; i++ {
		e := st.mirror.entries[i]
		m.StoreU64(base+mem.PhysAddr(i*v2pEntrySize), e.vpn)
		m.StoreU64(base+mem.PhysAddr(i*v2pEntrySize+8), e.pfn)
	}
	m.CommitRange(base, n*v2pEntrySize)
	cnt := mem.PhysAddr(hdrV2PCountA)
	if target == 1 {
		cnt = hdrV2PCountB
	}
	m.StoreU64(mgr.geo.slotAddr(slot)+cnt, n)
}

// PendingRedoEntries exposes the outstanding redo-log depth (tests).
func (mgr *Manager) PendingRedoEntries() uint64 { return mgr.log.pending() }

// SlotOf returns the slot state for a process (tests/diagnostics).
func (mgr *Manager) SlotOf(p *gemos.Process) (gen uint64, mappings int, ok bool) {
	if p.Slot < 0 || !mgr.slots[p.Slot].used {
		return 0, 0, false
	}
	st := &mgr.slots[p.Slot]
	return st.gen, st.mirror.len(), true
}
