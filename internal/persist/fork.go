package persist

import (
	"fmt"
	"sort"

	"kindle/internal/gemos"
	"kindle/internal/sim"
)

// Snapshot mirrors of the persistence manager, for machine forks. The NVM
// area itself (slot copies, redo-log ring, PTE undo log) lives in physical
// memory and rides in the copy-on-write frame store; only the host-side
// bookkeeping is mirrored here: slot assignments, the v2p mirrors, dirty
// sets and ring cursors.

// V2PEntryState is one virtual→NVM-physical mapping, in mirror list order.
// Order is load-bearing: checkpoint updates address entries by index and
// removals compact swap-with-last, so a reordered mirror would write
// different NVM slots after a fork than the parent would have.
type V2PEntryState struct {
	VPN, PFN uint64
}

// SlotSnapshot mirrors one saved-state slot's host bookkeeping.
type SlotSnapshot struct {
	Used  bool
	PID   int
	Which int
	Gen   uint64
	V2P   []V2PEntryState
}

// MapChangeState is one pending (un-checkpointed) mapping mutation.
type MapChangeState struct {
	VPN, PFN uint64
	Mapped   bool
}

// DirtyState mirrors one process's accumulated metadata changes.
type DirtyState struct {
	PID      int
	VMADirty bool
	Changes  []MapChangeState // vpn-sorted (map mirror)
}

// ManagerState mirrors the whole manager. The checkpoint timer is captured
// with the machine's pending events ("persist.checkpoint") and re-armed via
// RearmCheckpoint.
type ManagerState struct {
	Scheme    Scheme
	Interval  sim.Cycles
	Costs     CostModel
	PTLogHead uint64
	Started   bool
	LogHead   uint64
	LogLive   uint64
	Slots     []SlotSnapshot // len SlotCount
	Dirty     []DirtyState   // pid-sorted
}

// CaptureState copies the manager's host-side bookkeeping.
func (mgr *Manager) CaptureState() ManagerState {
	st := ManagerState{
		Scheme:    mgr.Scheme,
		Interval:  mgr.Interval,
		Costs:     mgr.Costs,
		PTLogHead: mgr.ptLogHead,
		Started:   mgr.started,
		LogHead:   mgr.log.head,
		LogLive:   mgr.log.live,
		Slots:     make([]SlotSnapshot, SlotCount),
	}
	for i := range mgr.slots {
		s := &mgr.slots[i]
		ss := SlotSnapshot{Used: s.used, PID: s.pid, Which: s.which, Gen: s.gen}
		if s.mirror != nil {
			ss.V2P = make([]V2PEntryState, len(s.mirror.entries))
			for j, e := range s.mirror.entries {
				ss.V2P[j] = V2PEntryState{VPN: e.vpn, PFN: e.pfn}
			}
		}
		st.Slots[i] = ss
	}
	st.Dirty = make([]DirtyState, 0, len(mgr.dirty))
	for pid, d := range mgr.dirty {
		ds := DirtyState{PID: pid, VMADirty: d.vmaDirty}
		ds.Changes = make([]MapChangeState, 0, len(d.changes))
		for vpn, ch := range d.changes {
			ds.Changes = append(ds.Changes, MapChangeState{VPN: vpn, PFN: ch.pfn, Mapped: ch.mapped})
		}
		sort.Slice(ds.Changes, func(i, j int) bool { return ds.Changes[i].VPN < ds.Changes[j].VPN })
		st.Dirty = append(st.Dirty, ds)
	}
	sort.Slice(st.Dirty, func(i, j int) bool { return st.Dirty[i].PID < st.Dirty[j].PID })
	return st
}

// RestoreManager rebuilds a Manager over a kernel restored by
// gemos.RestoreKernel: same construction as Reattach (the NVM area is
// already initialized — it came along in the frame store) but with the
// host bookkeeping overlaid instead of empty, and with each persisted
// process's page-table write hook reinstalled (pt.FromState left them at
// the default). The checkpoint timer is NOT re-armed here — pass
// RearmCheckpoint as the "persist.checkpoint" handler to
// machine.RearmEvents.
func RestoreManager(k *gemos.Kernel, st ManagerState) (*Manager, error) {
	base, size := k.PersistArea()
	geo, err := newGeometry(base, size)
	if err != nil {
		return nil, err
	}
	mgr := &Manager{
		K:        k,
		M:        k.M,
		Scheme:   st.Scheme,
		Interval: st.Interval,
		Costs:    st.Costs,
		geo:      geo,
		log:      newRedoLog(k.M, geo.redoBase, redoLogSize),
		dirty:    make(map[int]*procDirty, len(st.Dirty)),

		ptLogHead: st.PTLogHead,
		started:   st.Started,

		pteWraps:     k.M.Stats.Counter("persist.pte_wrap"),
		v2pUpdates:   k.M.Stats.Counter("persist.v2p_update"),
		v2pChecked:   k.M.Stats.Counter("persist.v2p_checked"),
		kernelCycles: k.M.Stats.Counter("cpu.kernel_cycles"),
	}
	mgr.log.head = st.LogHead
	mgr.log.live = st.LogLive
	if len(st.Slots) != SlotCount {
		return nil, fmt.Errorf("persist: restore: %d slots captured, want %d", len(st.Slots), SlotCount)
	}
	for i, ss := range st.Slots {
		if !ss.Used {
			continue
		}
		mirror := newV2PMirror()
		for _, e := range ss.V2P {
			mirror.index[e.VPN] = len(mirror.entries)
			mirror.entries = append(mirror.entries, v2pEntry{vpn: e.VPN, pfn: e.PFN})
		}
		mgr.slots[i] = slotState{used: true, pid: ss.PID, which: ss.Which, gen: ss.Gen, mirror: mirror}
	}
	for _, ds := range st.Dirty {
		d := &procDirty{vmaDirty: ds.VMADirty, changes: make(map[uint64]mapChange, len(ds.Changes))}
		for _, ch := range ds.Changes {
			d.changes[ch.VPN] = mapChange{pfn: ch.PFN, mapped: ch.Mapped}
		}
		mgr.dirty[ds.PID] = d
	}
	mgr.configureKernel()
	if mgr.Scheme == Persistent {
		for _, p := range k.Processes() {
			p.Table.SetWriteHook(mgr.pteHook(p))
		}
	}
	return mgr, nil
}

// RearmCheckpoint re-arms the periodic checkpoint timer at the exact
// deadline a snapshot captured for its "persist.checkpoint" event, so a
// forked machine's checkpoint fires at the same cycle the parent's would
// have. Subsequent checkpoints self-schedule as usual.
func (mgr *Manager) RearmCheckpoint(when sim.Cycles) {
	mgr.scheduleAt(when)
}
