package persist

import (
	"strings"
	"testing"
	"time"

	"kindle/internal/fault"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
)

// sweepTestCfg keeps the commit-point sweep's event count small enough to
// enumerate exhaustively under `go test` while still spanning several
// checkpoints; the bench crash-sweep experiment runs the bigger version.
func sweepTestCfg(scheme Scheme) SweepConfig {
	return SweepConfig{Scheme: scheme, Ops: 10, Seed: 3}
}

// TestCommitPointSweep replays the sweep workload with an injected power
// failure at every durability event (strided only if the stream is large),
// for both page-table schemes, in both crash-before and torn-line modes.
// Every commit point must recover to an invariant-satisfying state.
func TestCommitPointSweep(t *testing.T) {
	for _, scheme := range []Scheme{Rebuild, Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := sweepTestCfg(scheme)
			plan, err := PlanSweep(cfg)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			const maxPoints = 160
			stride := uint64(1)
			if plan.Events > maxPoints {
				stride = (plan.Events + maxPoints - 1) / maxPoints
			}
			t.Logf("%v: %d events, %d checkpoints, stride %d",
				scheme, plan.Events, plan.Checkpoints, stride)
			for k := uint64(1); k <= plan.Events; k += stride {
				if err := RunCrashPoint(cfg, plan, fault.NewCrashBefore(k)); err != nil {
					t.Errorf("crash-before %d: %v", k, err)
				}
			}
			// Always include the last event: crash at the final commit.
			if err := RunCrashPoint(cfg, plan, fault.NewCrashBefore(plan.Events)); err != nil {
				t.Errorf("crash-before last (%d): %v", plan.Events, err)
			}
			// Torn-line mode at a spread of points with varying prefix
			// lengths (PCM's 8-byte atomic write unit).
			for k := uint64(1); k <= plan.Events; k += stride * 4 {
				words := int(k%7) + 1
				if err := RunCrashPoint(cfg, plan, fault.NewTorn(k, words)); err != nil {
					t.Errorf("torn %d (%d words): %v", k, words, err)
				}
			}
		})
	}
}

// TestCheckpointFlipOrdering pins the durability order of the checkpoint's
// commit sequence: the header line holding the target copy's cursor and
// VMA/v2p counts (+0x300) must become durable before the line holding the
// consistent-copy flip (+0x0). Before the ordering fix the counts line was
// only committed by the trailing header CommitRange — after the flip — so
// this test fails on that code.
func TestCheckpointFlipOrdering(t *testing.T) {
	for _, scheme := range []Scheme{Rebuild, Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			m := machine.New(machine.TestConfig())
			k := gemos.Boot(m)
			mgr, err := Attach(k, scheme, sim.FromDuration(100*time.Microsecond))
			if err != nil {
				t.Fatal(err)
			}
			p, err := k.Spawn("flip")
			if err != nil {
				t.Fatal(err)
			}
			k.Switch(p)
			// Churn the layout so the checkpoint writes fresh VMA and count
			// values (do not Start the timer; Checkpoint is invoked
			// directly under the recorder).
			o := &sweepOps{k: k, p: p, rng: sim.NewRNG(7)}
			for i := 0; i < 12; i++ {
				if err := o.step(); err != nil {
					t.Fatal(err)
				}
			}

			rec := fault.NewRecorder()
			m.SetCommitHook(rec)
			mgr.Checkpoint()
			m.SetCommitHook(nil)

			sa := mgr.geo.slotAddr(p.Slot)
			counts, flip := -1, -1
			for i, line := range rec.Trace() {
				if line == sa+hdrCursorA && counts < 0 {
					counts = i
				}
				if line == sa && flip < 0 {
					flip = i
				}
			}
			if counts < 0 || flip < 0 {
				t.Fatalf("trace missing header commits: counts=%d flip=%d (trace len %d)",
					counts, flip, len(rec.Trace()))
			}
			if counts > flip {
				t.Fatalf("consistent-copy flip (event %d) became durable before the counts line (event %d)",
					flip, counts)
			}
		})
	}
}

// TestFlipWindowCrashPoints replays the workload with a crash targeted at
// every commit of the slot-header flip line: suppressing the flip itself
// (old copy must recover), crashing right after it (the pre-fix window:
// flip durable, everything later volatile), and tearing it. This is the
// regression pin for the flip-ordering bug — with the trailing-commit
// ordering, "right after the flip" recovered a copy whose counts were
// stale.
func TestFlipWindowCrashPoints(t *testing.T) {
	for _, scheme := range []Scheme{Rebuild, Persistent} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := sweepTestCfg(scheme).withDefaults()
			plan, err := PlanSweep(cfg)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			// Locate the slot-0 header line in NVM.
			gm := machine.New(machine.TestConfig())
			gk := gemos.Boot(gm)
			base, size := gk.PersistArea()
			geo, err := newGeometry(base, size)
			if err != nil {
				t.Fatal(err)
			}
			sa := geo.slotAddr(0)

			// Record the full event trace (deterministic: identical to the
			// plan run and to every replay).
			rec := fault.NewRecorder()
			rm := machine.New(machine.TestConfig())
			rm.SetCommitHook(rec)
			if err := runSweepWorkload(rm, cfg, rec, nil); err != nil {
				t.Fatalf("recorder run: %v", err)
			}
			if rec.Events() != plan.Events {
				t.Fatalf("nondeterministic event stream: %d vs planned %d", rec.Events(), plan.Events)
			}

			var flips []uint64 // 1-based event indices committing the flip line
			for i, line := range rec.Trace() {
				if line == sa {
					flips = append(flips, uint64(i)+1)
				}
			}
			if len(flips) < 2 {
				t.Fatalf("workload committed the flip line only %d times", len(flips))
			}
			for _, ev := range flips {
				// The flip itself does not land.
				if err := RunCrashPoint(cfg, plan, fault.NewCrashBefore(ev)); err != nil {
					t.Errorf("suppressed flip at event %d: %v", ev, err)
				}
				// The flip lands, the very next event does not: the old
				// trailing-commit window.
				if ev < plan.Events {
					if err := RunCrashPoint(cfg, plan, fault.NewCrashBefore(ev+1)); err != nil {
						t.Errorf("window after flip at event %d: %v", ev, err)
					}
				}
				// The flip line tears mid-write.
				for _, words := range []int{1, 3, 6} {
					if err := RunCrashPoint(cfg, plan, fault.NewTorn(ev, words)); err != nil {
						t.Errorf("torn flip at event %d (%d words): %v", ev, words, err)
					}
				}
			}
		})
	}
}

// TestReattachRejectsCorruptScheme: a durable area header whose scheme word
// is garbage must fail Reattach instead of configuring the kernel with an
// undefined page-table scheme.
func TestReattachRejectsCorruptScheme(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	if _, err := Attach(k, Rebuild, sim.FromDuration(100*time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	base, _ := k.PersistArea()
	m.StoreU64(base+8, 99) // corrupt the scheme word, keep the magic
	m.CommitRange(base, mem.LineSize)
	m.Crash()

	k2 := gemos.Boot(m)
	_, err := Reattach(k2, sim.FromDuration(100*time.Microsecond))
	if err == nil {
		t.Fatal("Reattach accepted a corrupt scheme word")
	}
	if !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRedoLogWrapAccounting pins the ring accounting across a wrap: pending
// never exceeds capacity, overwritten entries are counted as lost, and
// drain reads (and reports) only live entries.
func TestRedoLogWrapAccounting(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	base, _ := k.PersistArea()
	l := newRedoLog(m, base, 4*logEntrySize) // capacity: 4 entries

	for i := 0; i < 3; i++ {
		l.append(logVMAChange, 1, 0, 0)
	}
	if got := l.pending(); got != 3 {
		t.Fatalf("pending after 3 appends = %d", got)
	}
	if n, _ := l.drain(); n != 3 {
		t.Fatalf("drain returned %d, want 3", n)
	}
	if got := l.pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}

	// Overfill: 6 appends into a 4-entry ring → one wrap, two lost.
	for i := 0; i < 6; i++ {
		l.append(logMapAdd, 1, uint64(i), 0)
	}
	if got := l.pending(); got != 4 {
		t.Fatalf("pending after overfill = %d, want capacity 4", got)
	}
	if got := m.Stats.Get("persist.redo_wrap"); got != 1 {
		t.Fatalf("redo_wrap = %d, want 1", got)
	}
	if got := m.Stats.Get("persist.redo_lost"); got != 2 {
		t.Fatalf("redo_lost = %d, want 2", got)
	}
	if n, _ := l.drain(); n != 4 {
		t.Fatalf("drain after overfill returned %d, want 4", n)
	}
	if got := l.pending(); got != 0 {
		t.Fatalf("pending after second drain = %d", got)
	}
}

// TestV2PMirrorIndices pins which entry slot each mutation reports as
// written — the address the checkpoint's timed v2p update is charged at.
func TestV2PMirrorIndices(t *testing.T) {
	v := newV2PMirror()
	if got := v.set(10, 100); got != 0 {
		t.Fatalf("first insert index = %d", got)
	}
	if got := v.set(20, 200); got != 1 {
		t.Fatalf("second insert index = %d", got)
	}
	if got := v.set(10, 101); got != 0 {
		t.Fatalf("in-place update index = %d", got)
	}
	if got := v.remove(99); got != -1 {
		t.Fatalf("absent remove index = %d", got)
	}
	if got := v.remove(20); got != -1 {
		t.Fatalf("last-entry remove index = %d (no slot is rewritten)", got)
	}
	if v.len() != 1 {
		t.Fatalf("len = %d", v.len())
	}
	v.set(30, 300)
	v.set(40, 400)
	if got := v.remove(10); got != 0 {
		t.Fatalf("swap-compacting remove index = %d, want 0", got)
	}
	if v.entries[0].vpn != 40 || v.entries[0].pfn != 400 {
		t.Fatalf("swap-compaction wrote %+v into slot 0", v.entries[0])
	}
}

// TestSweepPrefixForkIdentity pins the prefix-fork claim directly: running
// the op loop on a machine forked from the plan's prefix snapshot must end
// in a state byte-identical to a cold machine running boot + ops end to
// end, under both clock engines.
func TestSweepPrefixForkIdentity(t *testing.T) {
	for _, eventClock := range []bool{false, true} {
		name := "stepped"
		if eventClock {
			name = "event-clock"
		}
		t.Run(name, func(t *testing.T) {
			cfg := sweepTestCfg(Rebuild)
			cfg.EventClock = eventClock
			full := cfg.withDefaults()

			cold := machine.New(cfg.machineConfig())
			cold.SetCommitHook(fault.NewObserver())
			if err := runSweepWorkload(cold, full, fault.NewObserver(), nil); err != nil {
				t.Fatal(err)
			}
			coldDump := cold.Stats.Dump("")
			coldClock := cold.Clock.Now()

			plan, err := PlanSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plan.prefix == nil {
				t.Fatal("plan carries no prefix snapshot")
			}
			fm, k, _, err := plan.prefix.resume()
			if err != nil {
				t.Fatal(err)
			}
			fm.SetCommitHook(fault.NewObserver())
			p := k.Current()
			if p == nil {
				t.Fatal("forked kernel has no current process")
			}
			if err := sweepRun(k, p, full); err != nil {
				t.Fatal(err)
			}
			if got := fm.Clock.Now(); got != coldClock {
				t.Fatalf("forked clock %d != cold %d", got, coldClock)
			}
			if got := fm.Stats.Dump(""); got != coldDump {
				t.Fatalf("forked sweep dump differs from cold run")
			}
		})
	}
}
