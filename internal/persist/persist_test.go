package persist

import (
	"testing"
	"time"

	"kindle/internal/cpu"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
)

const testInterval = 10 * time.Millisecond

func boot(t testing.TB, scheme Scheme) (*machine.Machine, *gemos.Kernel, *Manager, *gemos.Process) {
	t.Helper()
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	mgr, err := Attach(k, scheme, sim.FromDuration(testInterval))
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("app")
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	return m, k, mgr, p
}

// crashAndRecover reboots the machine and returns the recovered kernel,
// manager and processes.
func crashAndRecover(t testing.TB, m *machine.Machine) (*gemos.Kernel, *Manager, []*gemos.Process) {
	t.Helper()
	m.Crash()
	k2 := gemos.Boot(m)
	mgr2, err := Reattach(k2, sim.FromDuration(testInterval))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return k2, mgr2, procs
}

func TestSlotAssignment(t *testing.T) {
	_, k, mgr, p := boot(t, Rebuild)
	if p.Slot != 0 {
		t.Fatalf("slot = %d", p.Slot)
	}
	p2, _ := k.Spawn("second")
	if p2.Slot != 1 {
		t.Fatalf("second slot = %d", p2.Slot)
	}
	if _, _, ok := mgr.SlotOf(p); !ok {
		t.Fatal("SlotOf failed")
	}
	k.Exit(p2)
	if p2.Slot != -1 {
		t.Fatal("slot not released on exit")
	}
	p3, _ := k.Spawn("third")
	if p3.Slot != 1 {
		t.Fatalf("released slot not reused: %d", p3.Slot)
	}
}

func TestSlotExhaustion(t *testing.T) {
	m, k, _, _ := boot(t, Rebuild)
	for i := 1; i < SlotCount; i++ {
		k.Spawn("filler")
	}
	overflow, err := k.Spawn("overflow")
	if err != nil {
		t.Fatal(err)
	}
	if overflow.Slot != -1 {
		t.Fatal("overflow process got a slot")
	}
	if m.Stats.Get("persist.slot_exhausted") != 1 {
		t.Fatal("exhaustion not counted")
	}
}

func TestRedoLogAccumulatesAndDrains(t *testing.T) {
	_, k, mgr, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 4*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 4; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	if mgr.PendingRedoEntries() == 0 {
		t.Fatal("no redo entries after mmap+faults")
	}
	mgr.Checkpoint()
	if mgr.PendingRedoEntries() != 0 {
		t.Fatal("redo log not drained by checkpoint")
	}
}

func TestCheckpointTracksMappings(t *testing.T) {
	_, k, mgr, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 8*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 8; i++ {
		k.M.Core.Access(a+i*4096, true, 1)
	}
	mgr.Checkpoint()
	if _, n, _ := mgr.SlotOf(p); n != 8 {
		t.Fatalf("v2p mirror = %d, want 8", n)
	}
	k.Munmap(p, a, 4*4096)
	mgr.Checkpoint()
	if _, n, _ := mgr.SlotOf(p); n != 4 {
		t.Fatalf("v2p mirror after munmap = %d, want 4", n)
	}
}

func testCrashRecoveryRoundTrip(t *testing.T, scheme Scheme) {
	m, k, mgr, p := boot(t, scheme)
	// Map NVM memory, write recognizable data, record registers.
	a, err := k.Mmap(p, 0, 16*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		if _, err := m.Core.Access(a+i*4096, true, 8); err != nil {
			t.Fatal(err)
		}
		pa, _ := m.Core.VirtToPhys(a + i*4096)
		m.Ctrl.WriteU64(pa, 0xBEEF0000+i)
	}
	m.Core.Regs.GPR[cpu.RAX] = 0x1234
	m.Core.Regs.RIP = 0x400080
	pid := p.PID
	vmaCount := p.AS.Count()

	mgr.Checkpoint()

	// Post-checkpoint work that must NOT survive (it is torn).
	b, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	m.Core.Access(b, true, 8)
	m.Core.Regs.GPR[cpu.RAX] = 0xFFFF

	k2, _, procs := crashAndRecover(t, m)
	if len(procs) != 1 {
		t.Fatalf("recovered %d processes, want 1", len(procs))
	}
	rp := procs[0]
	if rp.PID != pid || rp.Name != "app" || !rp.Recovered {
		t.Fatalf("identity lost: %+v", rp)
	}
	// Registers from the last consistent copy.
	if rp.Regs.GPR[cpu.RAX] != 0x1234 || rp.Regs.RIP != 0x400080 {
		t.Fatalf("registers: rax=%#x rip=%#x", rp.Regs.GPR[cpu.RAX], rp.Regs.RIP)
	}
	// VMA layout from the checkpoint (without the post-checkpoint mmap).
	if rp.AS.Count() != vmaCount {
		t.Fatalf("VMAs = %d, want %d", rp.AS.Count(), vmaCount)
	}
	if rp.AS.Find(a) == nil {
		t.Fatal("NVM VMA lost")
	}
	// Page table: all 16 pages translate and data is intact.
	k2.Switch(rp)
	for i := uint64(0); i < 16; i++ {
		e, ok := rp.Table.Lookup(a + i*4096)
		if !ok {
			t.Fatalf("page %d unmapped after recovery", i)
		}
		pa := mem.FrameBase(e.PFN()) + mem.PhysAddr((a+i*4096)%mem.PageSize)
		if got := m.Ctrl.ReadU64(pa); got != 0xBEEF0000+i {
			t.Fatalf("page %d data = %#x, want %#x", i, got, 0xBEEF0000+i)
		}
		// And the access path works.
		if _, err := m.Core.Access(a+i*4096, false, 8); err != nil {
			t.Fatalf("access after recovery: %v", err)
		}
	}
}

func TestCrashRecoveryRebuild(t *testing.T)    { testCrashRecoveryRoundTrip(t, Rebuild) }
func TestCrashRecoveryPersistent(t *testing.T) { testCrashRecoveryRoundTrip(t, Persistent) }

func TestRecoveryDropsPostCheckpointMappings(t *testing.T) {
	m, k, mgr, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 4*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 4; i++ {
		m.Core.Access(a+i*4096, true, 1)
	}
	mgr.Checkpoint()
	// Map more after the checkpoint.
	b, _ := k.Mmap(p, 0, 4*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 4; i++ {
		m.Core.Access(b+i*4096, true, 1)
	}
	_, _, procs := crashAndRecover(t, m)
	rp := procs[0]
	if rp.Table.Mapped() != 4 {
		t.Fatalf("recovered mappings = %d, want 4 (checkpoint state)", rp.Table.Mapped())
	}
	if rp.AS.Find(b) != nil {
		t.Fatal("post-checkpoint VMA survived")
	}
}

func TestPersistentSchemeSurvivesWithoutV2P(t *testing.T) {
	m, k, mgr, p := boot(t, Persistent)
	a, _ := k.Mmap(p, 0, 4*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 4; i++ {
		m.Core.Access(a+i*4096, true, 1)
	}
	// Under the persistent scheme even *post-checkpoint* mappings survive
	// (the table itself is durable), though the VMA metadata reverts to
	// the last checkpoint. Verify the table contents survive a crash that
	// happens right after the faults, with one checkpoint for metadata.
	mgr.Checkpoint()
	_, _, procs := crashAndRecover(t, m)
	rp := procs[0]
	if rp.Table.Mapped() != 4 {
		t.Fatalf("recovered table mappings = %d, want 4", rp.Table.Mapped())
	}
	if rp.Table.Kind() != mem.NVM {
		t.Fatal("recovered table not NVM-hosted")
	}
	if m.Stats.Get("persist.recover_attach") != 1 {
		t.Fatal("persistent recovery did not attach")
	}
	if m.Stats.Get("persist.recover_replay") != 0 {
		t.Fatal("persistent recovery replayed v2p entries")
	}
}

func TestRecoveryWithoutCheckpointYieldsInitialState(t *testing.T) {
	m, k, _, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	m.Core.Access(a, true, 1)
	// No checkpoint: only the slot-init state is durable.
	_, _, procs := crashAndRecover(t, m)
	if len(procs) != 1 {
		t.Fatalf("recovered %d", len(procs))
	}
	rp := procs[0]
	if rp.Table.Mapped() != 0 {
		t.Fatal("mappings survived without checkpoint (rebuild)")
	}
	// The initial state still has the default stack VMA.
	if rp.AS.Count() != 1 {
		t.Fatalf("VMAs = %d, want 1 (stack)", rp.AS.Count())
	}
}

func TestPeriodicCheckpointFires(t *testing.T) {
	m, k, mgr, p := boot(t, Rebuild)
	mgr.Start()
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	// Run simulated time past several intervals.
	for i := 0; i < 50; i++ {
		m.Core.Access(a, true, 8)
		m.Clock.Advance(sim.FromDuration(time.Millisecond))
		k.Tick()
	}
	if got := m.Stats.Get("persist.checkpoints"); got < 3 {
		t.Fatalf("checkpoints = %d, want >= 3", got)
	}
	mgr.Stop()
	before := m.Stats.Get("persist.checkpoints")
	m.Clock.Advance(sim.FromDuration(100 * time.Millisecond))
	k.Tick()
	if m.Stats.Get("persist.checkpoints") != before {
		t.Fatal("checkpoint fired after Stop")
	}
}

func TestCheckpointCadenceAfterCompletion(t *testing.T) {
	m, _, mgr, _ := boot(t, Rebuild)
	mgr.Start()
	// Each checkpoint reschedules an interval after completion, so exactly
	// one fires per interval worth of advancing.
	for i := 0; i < 5; i++ {
		m.Clock.Advance(sim.FromDuration(testInterval))
		m.Tick()
	}
	got := m.Stats.Get("persist.checkpoints")
	if got < 4 || got > 5 {
		t.Fatalf("checkpoints = %d, want ~5", got)
	}
}

func TestPersistentSchemeWrapsPTEs(t *testing.T) {
	m, k, _, p := boot(t, Persistent)
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	before := m.Stats.Get("persist.pte_wrap")
	m.Core.Access(a, true, 1)
	if m.Stats.Get("persist.pte_wrap") <= before {
		t.Fatal("PTE install not wrapped")
	}
	if p.Table.Kind() != mem.NVM {
		t.Fatal("persistent scheme table not in NVM")
	}
}

func TestRebuildSchemeKeepsTableInDRAM(t *testing.T) {
	m, _, _, p := boot(t, Rebuild)
	if p.Table.Kind() != mem.DRAM {
		t.Fatal("rebuild scheme table not in DRAM")
	}
	if m.Cfg.Layout.KindOf(p.Table.Root()) != mem.DRAM {
		t.Fatal("root not in DRAM")
	}
}

func TestCheckpointCostScalesWithMappedPages(t *testing.T) {
	// The rebuild scheme's checkpoint must get dearer as the NVM-mapped
	// footprint grows — the root cause of Fig. 4a.
	costAt := func(pages uint64) sim.Cycles {
		m, k, mgr, p := boot(t, Rebuild)
		a, _ := k.Mmap(p, 0, pages*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		for i := uint64(0); i < pages; i++ {
			m.Core.Access(a+i*4096, true, 1)
		}
		mgr.Checkpoint() // absorbs the alloc-phase updates
		start := m.Clock.Now()
		mgr.Checkpoint() // steady-state: pure verification pass
		return m.Clock.Now() - start
	}
	small := costAt(16)
	big := costAt(256)
	if big < small*8 {
		t.Fatalf("checkpoint cost not scaling: 16 pages=%d, 256 pages=%d", small, big)
	}
}

func TestPersistentCheckpointCostFlat(t *testing.T) {
	// Table IV: the persistent scheme's checkpoint does not grow with the
	// mapped footprint (no v2p maintenance).
	costAt := func(pages uint64) sim.Cycles {
		m, k, mgr, p := boot(t, Persistent)
		a, _ := k.Mmap(p, 0, pages*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		for i := uint64(0); i < pages; i++ {
			m.Core.Access(a+i*4096, true, 1)
		}
		mgr.Checkpoint()
		start := m.Clock.Now()
		mgr.Checkpoint()
		return m.Clock.Now() - start
	}
	small := costAt(16)
	big := costAt(256)
	if big > small*3 {
		t.Fatalf("persistent checkpoint cost grew: 16p=%d 256p=%d", small, big)
	}
}

func TestDoubleCrashRecovery(t *testing.T) {
	// Crash, recover, run more, checkpoint, crash again, recover again.
	m, k, mgr, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 4*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 4; i++ {
		m.Core.Access(a+i*4096, true, 1)
	}
	mgr.Checkpoint()

	k2, mgr2, procs := crashAndRecover(t, m)
	rp := procs[0]
	k2.Switch(rp)
	b, _ := k2.Mmap(rp, 0, 2*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 2; i++ {
		if _, err := m.Core.Access(b+i*4096, true, 1); err != nil {
			t.Fatal(err)
		}
	}
	mgr2.Checkpoint()

	_, _, procs2 := crashAndRecover(t, m)
	rp2 := procs2[0]
	if rp2.Table.Mapped() != 6 {
		t.Fatalf("after second recovery mapped = %d, want 6", rp2.Table.Mapped())
	}
	if m.BootGeneration() != 2 {
		t.Fatalf("boot generation = %d", m.BootGeneration())
	}
}

func TestMultiProcessRecovery(t *testing.T) {
	m, k, mgr, p1 := boot(t, Rebuild)
	p2, _ := k.Spawn("two")
	a1, _ := k.Mmap(p1, 0, 2*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	k.Switch(p1)
	m.Core.Access(a1, true, 1)
	k.Switch(p2)
	a2, _ := k.Mmap(p2, 0, 3*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 3; i++ {
		m.Core.Access(a2+i*4096, true, 1)
	}
	mgr.Checkpoint()
	_, _, procs := crashAndRecover(t, m)
	if len(procs) != 2 {
		t.Fatalf("recovered %d processes, want 2", len(procs))
	}
	byName := map[string]*gemos.Process{}
	for _, p := range procs {
		byName[p.Name] = p
	}
	if byName["app"].Table.Mapped() != 1 || byName["two"].Table.Mapped() != 3 {
		t.Fatalf("mapped: app=%d two=%d", byName["app"].Table.Mapped(), byName["two"].Table.Mapped())
	}
}

func TestRecoveredAllocatorConsistency(t *testing.T) {
	// After recovery, the allocator must refuse to hand out frames owned
	// by recovered processes.
	m, k, mgr, p := boot(t, Rebuild)
	a, _ := k.Mmap(p, 0, 8*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 8; i++ {
		m.Core.Access(a+i*4096, true, 1)
	}
	mgr.Checkpoint()
	k2, _, procs := crashAndRecover(t, m)
	rp := procs[0]
	owned := map[uint64]bool{}
	rp.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		if e.NVM() {
			owned[e.PFN()] = true
		}
		return true
	})
	// Allocate a burst of NVM frames; none may collide with owned frames.
	for i := 0; i < 100; i++ {
		pfn, err := k2.Alloc.AllocFrame(mem.NVM)
		if err != nil {
			break
		}
		if owned[pfn] {
			t.Fatalf("allocator handed out recovered frame %#x", pfn)
		}
	}
}

func TestV2PMirror(t *testing.T) {
	v := newV2PMirror()
	v.set(1, 10)
	v.set(2, 20)
	v.set(1, 11) // update in place
	if v.len() != 2 || v.entries[v.index[1]].pfn != 11 {
		t.Fatalf("mirror state: %+v", v.entries)
	}
	v.remove(1)
	if v.len() != 1 || v.entries[0].vpn != 2 {
		t.Fatalf("after remove: %+v", v.entries)
	}
	v.remove(99) // absent: no-op
	if v.len() != 1 {
		t.Fatal("remove of absent changed length")
	}
}

func TestNameTagRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "abcdefgh", "long-name-truncated"} {
		want := s
		if len(want) > 8 {
			want = want[:8]
		}
		if got := tagName(nameTag(s)); got != want {
			t.Fatalf("tag round trip %q -> %q", s, got)
		}
	}
}

func TestGeometry(t *testing.T) {
	g, err := newGeometry(0x1000, 32*mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if g.v2pCap == 0 {
		t.Fatal("zero v2p capacity")
	}
	// Slots must not overlap.
	if g.slotAddr(1)-g.slotAddr(0) != mem.PhysAddr(g.slotSize) {
		t.Fatal("slot stride wrong")
	}
	// v2p copies must fit inside the slot.
	end := g.v2pAddr(0, 1) + mem.PhysAddr(g.v2pCap*v2pEntrySize)
	if end > g.slotAddr(1) {
		t.Fatal("v2p copy B overflows slot")
	}
	if _, err := newGeometry(0, 2*mem.MiB); err == nil {
		t.Fatal("tiny area accepted")
	}
}

func BenchmarkCheckpointSteadyState(b *testing.B) {
	m, k, mgr, p := boot(b, Rebuild)
	a, _ := k.Mmap(p, 0, 64*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	for i := uint64(0); i < 64; i++ {
		m.Core.Access(a+i*4096, true, 1)
	}
	mgr.Checkpoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Checkpoint()
	}
}

func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, k, mgr, p := boot(b, Rebuild)
		a, _ := k.Mmap(p, 0, 32*4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		for j := uint64(0); j < 32; j++ {
			m.Core.Access(a+j*4096, true, 1)
		}
		mgr.Checkpoint()
		m.Crash()
		k2 := gemos.Boot(m)
		mgr2, _ := Reattach(k2, sim.FromDuration(testInterval))
		b.StartTimer()
		if _, err := mgr2.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRedoLogWraps(t *testing.T) {
	m := machine.New(machine.TestConfig())
	k := gemos.Boot(m)
	mgr, err := Attach(k, Rebuild, sim.FromDuration(testInterval))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn("wrapper")
	k.Switch(p)
	// Overflow the 2 MiB ring (64 B/entry -> 32768 entries) with VMA
	// change records; the ring must wrap, count it, and keep working.
	for i := 0; i < 33000; i++ {
		mgr.LogVMAChange(p)
	}
	if m.Stats.Get("persist.redo_wrap") == 0 {
		t.Fatal("ring never wrapped")
	}
	mgr.Checkpoint()
	if mgr.PendingRedoEntries() != 0 {
		t.Fatal("drain after wrap failed")
	}
	// Still fully functional afterwards.
	a, _ := k.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if _, err := m.Core.Access(a, true, 1); err != nil {
		t.Fatal(err)
	}
	mgr.Checkpoint()
}

func TestGeometryV2PCapacityProperty(t *testing.T) {
	// For any sane area size, both v2p copies and both VMA tables must fit
	// strictly inside a slot, and slots inside the area.
	for sizeMB := 8; sizeMB <= 256; sizeMB *= 2 {
		g, err := newGeometry(0x10000, uint64(sizeMB)<<20)
		if err != nil {
			t.Fatalf("size %dMB: %v", sizeMB, err)
		}
		endB := g.v2pAddr(SlotCount-1, 1) + mem.PhysAddr(g.v2pCap*v2pEntrySize)
		if endB > g.base+mem.PhysAddr(g.size) {
			t.Fatalf("size %dMB: slot %d v2p copy B overruns the area", sizeMB, SlotCount-1)
		}
		if g.vmaTableAddr(0, 1)+vmaTableSize > g.v2pAddr(0, 0) {
			t.Fatalf("size %dMB: VMA table B collides with v2p A", sizeMB)
		}
	}
}
