// Commit-point crash-injection sweep: run a deterministic workload once to
// learn the total number of NVM durability events E, then replay it from a
// fresh machine with an injected power failure at the k-th event, reboot,
// recover, and check the recovery invariants. Because the persist domain
// commits barrier lines in address order and the workload is seeded, the
// event stream is identical across replays, so "crash before event k" names
// one exact machine state for every k in [1, E].

package persist

import (
	"fmt"
	"time"

	"kindle/internal/fault"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
)

// SweepConfig describes one sweep workload. The zero value of any field is
// replaced by the default (48 ops, seed 1, 100 µs checkpoint interval,
// 20 µs between ops).
type SweepConfig struct {
	Scheme   Scheme
	Ops      int
	Seed     uint64
	Interval sim.Cycles
	OpGap    sim.Cycles

	// IdleTick is the cycle-group grain used to pass OpGap between ops
	// (0 = a single step, the historical behavior). The gap goes through
	// Kernel.Idle, so the sweep exercises whichever clock engine the
	// machine is configured with.
	IdleTick sim.Cycles

	// EventClock runs the sweep machines with the event-driven clock
	// engine (machine.Config.EventDrivenClock) instead of the stepped one.
	// Outcomes are identical either way; the switch exists so crash sweeps
	// cover both engines.
	EventClock bool
}

// machineConfig builds the sweep's machine configuration.
func (c SweepConfig) machineConfig() machine.Config {
	mc := machine.TestConfig()
	mc.EventDrivenClock = c.EventClock
	return mc
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Ops == 0 {
		c.Ops = 48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Interval == 0 {
		c.Interval = sim.FromDuration(100 * time.Microsecond)
	}
	if c.OpGap == 0 {
		c.OpGap = sim.FromDuration(20 * time.Microsecond)
	}
	return c
}

// SweepPlan is what the reference (observer) run learns about the workload's
// durability-event stream.
type SweepPlan struct {
	// Events is the total number of durability events E in the full run.
	Events uint64
	// AttachEvents is the event count when Attach returned. A crash at or
	// before this point may legitimately leave the NVM area header
	// non-durable, so a failed Reattach is a legal outcome there.
	AttachEvents uint64
	// SpawnEvents is the event count when the workload process's slot
	// became durable (Spawn + Switch returned). Past this point recovery
	// must always yield exactly one process.
	SpawnEvents uint64
	// Checkpoints is the number of checkpoints started during the full
	// run — the generation-monotonicity bound.
	Checkpoints uint64

	// prefix is the frozen pre-ops state (boot + attach + spawn + switch +
	// checkpoint timer armed) every crash point whose target lies past the
	// prefix forks from, instead of re-simulating it. Nil when the plan
	// predates capture (zero value) — crash points then cold-boot.
	prefix *sweepPrefix
}

// sweepPrefix is the shared warm prefix of a sweep: the machine snapshot
// plus the OS layers, and how many durability events producing it took.
type sweepPrefix struct {
	m      *machine.Snapshot
	kernel gemos.KernelState
	mgr    ManagerState
	events uint64
}

// resume forks a machine+kernel+manager off the prefix. Safe to call once
// per crash point, concurrently: the snapshot is only read.
func (sp *sweepPrefix) resume() (*machine.Machine, *gemos.Kernel, *Manager, error) {
	m, err := machine.NewFromSnapshot(sp.m)
	if err != nil {
		return nil, nil, nil, err
	}
	k, err := gemos.RestoreKernel(m, sp.kernel)
	if err != nil {
		return nil, nil, nil, err
	}
	mgr, err := RestoreManager(k, sp.mgr)
	if err != nil {
		return nil, nil, nil, err
	}
	extra := map[string]func(when sim.Cycles){"persist.checkpoint": mgr.RearmCheckpoint}
	if err := m.RearmEvents(sp.m, extra); err != nil {
		return nil, nil, nil, err
	}
	return m, k, mgr, nil
}

// sweepOps drives the deterministic mixed mmap/touch/munmap workload, one op
// at a time, stamping the op counter into the register file so torn recovery
// is detectable (a consistent snapshot always has GPR[0]*16 == RIP).
type sweepOps struct {
	k   *gemos.Kernel
	p   *gemos.Process
	rng *sim.RNG

	regions []uint64 // live NVM mmap bases (fixed 4-page regions)
	opCount int
}

const sweepRegionPages = 4

func (o *sweepOps) step() error {
	o.opCount++
	o.k.M.Core.Regs.GPR[0] = uint64(o.opCount)
	o.k.M.Core.Regs.RIP = uint64(o.opCount) * 16

	switch o.rng.Intn(4) {
	case 0, 1: // mmap + touch
		a, err := o.k.Mmap(o.p, 0, sweepRegionPages*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		if err != nil {
			return err
		}
		o.regions = append(o.regions, a)
		for i := uint64(0); i < sweepRegionPages; i++ {
			if _, err := o.k.M.Core.Access(a+i*mem.PageSize, true, 8); err != nil {
				return err
			}
		}
	case 2: // munmap a region if any
		if len(o.regions) == 0 {
			return nil
		}
		idx := o.rng.Intn(len(o.regions))
		a := o.regions[idx]
		o.regions = append(o.regions[:idx], o.regions[idx+1:]...)
		return o.k.Munmap(o.p, a, sweepRegionPages*mem.PageSize)
	default: // touch a random live page
		if len(o.regions) == 0 {
			return nil
		}
		a := o.regions[o.rng.Intn(len(o.regions))]
		off := uint64(o.rng.Intn(sweepRegionPages)) * mem.PageSize
		if _, err := o.k.M.Core.Access(a+off, true, 8); err != nil {
			return err
		}
	}
	return nil
}

// sweepBoot runs the shared sweep prefix on m: boot the kernel, attach
// persistence, spawn and dispatch the workload process, start the
// checkpoint timer. When plan is non-nil the phase boundaries are recorded
// from the injector's event counter.
func sweepBoot(m *machine.Machine, cfg SweepConfig, inj *fault.Injector, plan *SweepPlan) (*gemos.Kernel, *gemos.Process, *Manager, error) {
	k := gemos.Boot(m)
	mgr, err := Attach(k, cfg.Scheme, cfg.Interval)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("attach: %w", err)
	}
	if plan != nil {
		plan.AttachEvents = inj.Events()
	}
	p, err := k.Spawn("sweep")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("spawn: %w", err)
	}
	k.Switch(p)
	if plan != nil {
		plan.SpawnEvents = inj.Events()
	}
	mgr.Start()
	return k, p, mgr, nil
}

// sweepRun drives the deterministic op loop after the prefix — the part a
// forked crash point re-executes.
func sweepRun(k *gemos.Kernel, p *gemos.Process, cfg SweepConfig) error {
	o := &sweepOps{k: k, p: p, rng: sim.NewRNG(cfg.Seed)}
	for i := 0; i < cfg.Ops; i++ {
		if err := o.step(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		// Let time pass so checkpoints interleave with ops at varying
		// phases.
		k.Idle(cfg.OpGap, cfg.IdleTick)
	}
	return nil
}

// runSweepWorkload is the whole workload: prefix then op loop.
func runSweepWorkload(m *machine.Machine, cfg SweepConfig, inj *fault.Injector, plan *SweepPlan) error {
	k, p, _, err := sweepBoot(m, cfg, inj, plan)
	if err != nil {
		return err
	}
	return sweepRun(k, p, cfg)
}

// PlanSweep runs the workload once with a counting-only injector and returns
// the event-stream plan the crash replays enumerate against. The plan also
// carries a copy-on-write snapshot of the pre-ops prefix; RunCrashPoint
// forks it for every crash point that lands past the prefix instead of
// re-simulating boot+attach+spawn each time.
func PlanSweep(cfg SweepConfig) (SweepPlan, error) {
	cfg = cfg.withDefaults()
	obs := fault.NewObserver()
	m := machine.New(cfg.machineConfig())
	m.SetCommitHook(obs)
	var plan SweepPlan
	k, p, mgr, err := sweepBoot(m, cfg, obs, &plan)
	if err != nil {
		return SweepPlan{}, err
	}
	plan.prefix = &sweepPrefix{
		m:      m.Snapshot(),
		kernel: k.CaptureState(),
		mgr:    mgr.CaptureState(),
		events: obs.Events(),
	}
	if err := sweepRun(k, p, cfg); err != nil {
		return SweepPlan{}, err
	}
	plan.Events = obs.Events()
	plan.Checkpoints = m.Stats.Get("persist.checkpoints_started")
	if plan.Events == 0 {
		return SweepPlan{}, fmt.Errorf("sweep plan observed no durability events")
	}
	return plan, nil
}

// RunCrashPoint replays the planned workload with inj armed (typically
// fault.NewCrashBefore(k) or fault.NewTorn(k, words)), applies the power
// failure, reboots, recovers, and checks the recovery invariants. A nil
// return means this commit point recovers correctly.
//
// When the plan carries a prefix snapshot and the crash target lies past
// the prefix's durability events, the machine forks the frozen prefix
// copy-on-write instead of re-simulating boot+attach+spawn — the
// injector's counter is advanced by the prefix events so crash indices
// stay absolute. Targets inside the prefix (and observers) replay cold.
func RunCrashPoint(cfg SweepConfig, plan SweepPlan, inj *fault.Injector) error {
	cfg = cfg.withDefaults()
	var m *machine.Machine
	var runErr error
	var crashed bool
	if sp := plan.prefix; sp != nil && inj.Target() > sp.events {
		fm, k, _, err := sp.resume()
		if err != nil {
			return fmt.Errorf("forking sweep prefix: %w", err)
		}
		m = fm
		inj.Advance(sp.events)
		m.SetCommitHook(inj)
		p := k.Current()
		crashed = fault.Crashed(func() {
			runErr = sweepRun(k, p, cfg)
		})
	} else {
		m = machine.New(cfg.machineConfig())
		m.SetCommitHook(inj)
		crashed = fault.Crashed(func() {
			runErr = runSweepWorkload(m, cfg, inj, nil)
		})
	}
	if runErr != nil {
		return fmt.Errorf("workload: %w", runErr)
	}
	// Host-side stats survive the simulated power failure; the pre-crash
	// count of started checkpoints bounds any recoverable generation.
	started := m.Stats.Get("persist.checkpoints_started")

	m.Crash()
	// Disarm before recovery: the injected failure already happened; the
	// recovery path's own durability events must not crash again.
	m.SetCommitHook(nil)

	k2 := gemos.Boot(m)
	mgr2, err := Reattach(k2, cfg.Interval)
	if err != nil {
		if crashed && inj.Events() <= plan.AttachEvents {
			// Legal: the crash predates the area header becoming durable
			// (or tore the header line itself); a real system would treat
			// the area as never initialized.
			return nil
		}
		return fmt.Errorf("reattach after crash at event %d: %w", inj.Events(), err)
	}
	procs, err := mgr2.Recover()
	if err != nil {
		return fmt.Errorf("recover after crash at event %d: %w", inj.Events(), err)
	}
	want := -1
	if !crashed || inj.Events() > plan.SpawnEvents {
		// Past the slot's valid flip (or no crash at all) the process must
		// be recoverable; before it, either outcome is legal.
		want = 1
	}
	exp := RecoveryExpectation{
		MaxOps:    uint64(cfg.Ops),
		MaxGen:    started,
		CheckGen:  true,
		WantProcs: want,
	}
	if err := CheckRecoveryInvariants(mgr2, procs, exp); err != nil {
		return fmt.Errorf("crash at event %d/%d: %w", inj.Events(), plan.Events, err)
	}
	return nil
}
