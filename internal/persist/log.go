package persist

import (
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Redo-log entry types. The log captures modifications to OS-level process
// metadata between checkpoints; the checkpoint applies all logged entries
// to the working copy of the context and then marks it consistent.
const (
	logVMAChange = iota + 1
	logMapAdd
	logMapRemove
	logRegs
)

const logEntrySize = 64 // one cache line per entry

// redoLog is an NVM-resident ring of fixed-size entries. Appends are timed
// (one line write + clwb, the paper's "redo log stored in NVM"); the
// checkpoint reads and applies entries (timed reads), then resets the head.
type redoLog struct {
	m     *machine.Machine
	base  mem.PhysAddr
	size  uint64
	head  uint64 // next append offset (bytes)
	count uint64

	appends *sim.Counter // "persist.redo_append", one per metadata change
	wraps   *sim.Counter // "persist.redo_wrap"
}

func newRedoLog(m *machine.Machine, base mem.PhysAddr, size uint64) *redoLog {
	return &redoLog{
		m: m, base: base, size: size,
		appends: m.Stats.Counter("persist.redo_append"),
		wraps:   m.Stats.Counter("persist.redo_wrap"),
	}
}

// append writes one entry: {type, pid, a, b} packed into a line.
func (l *redoLog) append(typ uint64, pid int, a, b uint64) sim.Cycles {
	if l.head+logEntrySize > l.size {
		// Ring wrapped within one checkpoint interval: the paper's design
		// sizes the log for an interval; we fall back to overwriting from
		// the start after accounting. Entries already applied are gone.
		l.head = 0
		l.wraps.Inc()
	}
	ea := l.base + mem.PhysAddr(l.head)
	l.m.StoreU64(ea, typ)
	l.m.StoreU64(ea+8, uint64(pid))
	l.m.StoreU64(ea+16, a)
	l.m.StoreU64(ea+24, b)
	lat := l.m.AccessTimed(ea, true)
	lat += l.m.Core.Clwb(ea)
	l.head += logEntrySize
	l.count++
	l.appends.Inc()
	return lat
}

// drain charges the cost of reading every outstanding entry (the
// checkpoint's "applying changes in the redo log") and resets the ring.
// It returns the number of entries applied.
func (l *redoLog) drain() (entries uint64, lat sim.Cycles) {
	for off := uint64(0); off < l.head; off += logEntrySize {
		lat += l.m.AccessTimed(l.base+mem.PhysAddr(off), false)
	}
	entries = l.count
	l.head = 0
	l.count = 0
	return entries, lat
}

// pending reports outstanding (un-checkpointed) entries.
func (l *redoLog) pending() uint64 { return l.count }
