package persist

import (
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
)

// Redo-log entry types. The log captures modifications to OS-level process
// metadata between checkpoints; the checkpoint applies all logged entries
// to the working copy of the context and then marks it consistent.
const (
	logVMAChange = iota + 1
	logMapAdd
	logMapRemove
	logRegs
)

const logEntrySize = 64 // one cache line per entry

// redoLog is an NVM-resident ring of fixed-size entries. Appends are timed
// (one line write + clwb, the paper's "redo log stored in NVM"); the
// checkpoint reads and applies entries (timed reads), then resets the head.
type redoLog struct {
	m    *machine.Machine
	base mem.PhysAddr
	size uint64
	head uint64 // next append offset (bytes)
	live uint64 // entries currently in the ring (≤ capacity)

	appends *sim.Counter // "persist.redo_append", one per metadata change
	wraps   *sim.Counter // "persist.redo_wrap"
	lost    *sim.Counter // "persist.redo_lost", un-drained entries overwritten
}

func newRedoLog(m *machine.Machine, base mem.PhysAddr, size uint64) *redoLog {
	return &redoLog{
		m: m, base: base, size: size,
		appends: m.Stats.Counter("persist.redo_append"),
		wraps:   m.Stats.Counter("persist.redo_wrap"),
		lost:    m.Stats.Counter("persist.redo_lost"),
	}
}

// capEntries is the ring capacity in entries.
func (l *redoLog) capEntries() uint64 { return l.size / logEntrySize }

// append writes one entry: {type, pid, a, b} packed into a line.
func (l *redoLog) append(typ uint64, pid int, a, b uint64) sim.Cycles {
	if l.head+logEntrySize > l.size {
		// Ring wrapped within one checkpoint interval: the paper's design
		// sizes the log for an interval; we fall back to overwriting from
		// the start after accounting.
		l.head = 0
		l.wraps.Inc()
	}
	if l.live == l.capEntries() {
		// The ring is full of un-drained entries; this append overwrites
		// the oldest one, which is lost to the next checkpoint.
		l.lost.Inc()
	} else {
		l.live++
	}
	ea := l.base + mem.PhysAddr(l.head)
	l.m.StoreU64(ea, typ)
	l.m.StoreU64(ea+8, uint64(pid))
	l.m.StoreU64(ea+16, a)
	l.m.StoreU64(ea+24, b)
	lat := l.m.AccessTimed(ea, true)
	lat += l.m.Core.Clwb(ea)
	l.head += logEntrySize
	l.appends.Inc()
	return lat
}

// drain charges the cost of reading every live entry (the checkpoint's
// "applying changes in the redo log") and resets the ring. It returns the
// number of entries applied — which equals the entries actually read: when
// the ring has not wrapped they occupy [0, head); once it has wrapped every
// slot of the ring is live.
func (l *redoLog) drain() (entries uint64, lat sim.Cycles) {
	span := l.live * logEntrySize
	for off := uint64(0); off < span; off += logEntrySize {
		lat += l.m.AccessTimed(l.base+mem.PhysAddr(off), false)
	}
	entries = l.live
	l.head = 0
	l.live = 0
	return entries, lat
}

// pending reports outstanding (un-checkpointed) entries live in the ring.
func (l *redoLog) pending() uint64 { return l.live }
