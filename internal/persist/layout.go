// Package persist implements Kindle's core contribution: full process
// persistence in a hybrid memory system. Each persisted process keeps a
// *saved state* in NVM holding two copies of its execution context (one
// consistent, one working), an NVM redo log captures OS metadata changes
// between checkpoints, and a periodic checkpoint makes the working copy
// consistent. Two page-table consistency schemes are provided:
//
//   - Rebuild: the page table lives in DRAM; a virtual→NVM-physical mapping
//     list is maintained in the saved state at every checkpoint and replayed
//     to rebuild the table after a crash.
//   - Persistent: the page table lives in NVM; every page-table store is
//     wrapped in an NVM consistency mechanism (log append + clwb + fence);
//     recovery just points the PTBR at the surviving root.
package persist

import (
	"fmt"

	"kindle/internal/mem"
)

// Scheme selects how the page table is kept consistent.
type Scheme int

// The two schemes compared in the paper's §III-A.
const (
	Rebuild Scheme = iota
	Persistent
)

func (s Scheme) String() string {
	if s == Persistent {
		return "persistent"
	}
	return "rebuild"
}

// Magic values identifying on-NVM structures.
const (
	areaMagic = 0x4B494E444C_450001 // "KINDLE" v1
	slotMagic = 0x4B494E444C_530001
)

// Area geometry (offsets from the kernel's persist-area base).
const (
	areaHeaderSize = mem.PageSize
	ptLogSize      = 64 * mem.KiB // persistent-scheme page-table write log ring
	redoLogSize    = 2 * mem.MiB

	// SlotCount is how many processes can be persisted concurrently.
	SlotCount = 8

	// Slot-internal offsets.
	slotHeaderSize = mem.PageSize
	vmaTableSize   = 8 * mem.KiB // 256 VMAs x 32 B
	vmaEntrySize   = 32
	// MaxVMAs bounds the serialized VMA table.
	MaxVMAs = vmaTableSize / vmaEntrySize

	v2pEntrySize = 16 // vpn u64 + pfn u64
)

// Slot header field offsets.
const (
	hdrMagic      = 0x00
	hdrPID        = 0x08
	hdrValid      = 0x10
	hdrWhich      = 0x18 // 0 = copy A consistent, 1 = copy B
	hdrPTRoot     = 0x20 // persistent scheme: surviving PML4 base
	hdrGeneration = 0x28 // checkpoint count
	hdrNameLen    = 0x30
	hdrName       = 0x38 // 64 bytes
	hdrRegsA      = 0x100
	hdrRegsB      = 0x200
	hdrCursorA    = 0x300
	hdrCursorB    = 0x308
	hdrVMACountA  = 0x310
	hdrVMACountB  = 0x318
	hdrV2PCountA  = 0x320
	hdrV2PCountB  = 0x328

	regsBytes = 18 * 8 // 16 GPR + RIP + RFLAGS
)

// geometry describes where everything lives for a given persist area.
type geometry struct {
	base mem.PhysAddr
	size uint64

	ptLogBase mem.PhysAddr
	redoBase  mem.PhysAddr
	slotBase  mem.PhysAddr
	slotSize  uint64
	v2pCap    uint64 // entries per v2p copy
}

func newGeometry(base mem.PhysAddr, size uint64) (geometry, error) {
	g := geometry{base: base, size: size}
	g.ptLogBase = base + areaHeaderSize
	g.redoBase = g.ptLogBase + ptLogSize
	g.slotBase = g.redoBase + redoLogSize
	const overhead = areaHeaderSize + ptLogSize + redoLogSize
	if size <= overhead {
		return g, fmt.Errorf("persist: area too small: %d bytes", size)
	}
	avail := size - overhead
	g.slotSize = avail / SlotCount
	fixed := uint64(slotHeaderSize + 2*vmaTableSize)
	if g.slotSize <= fixed+2*v2pEntrySize {
		return g, fmt.Errorf("persist: area too small: %d bytes for %d slots", size, SlotCount)
	}
	g.v2pCap = (g.slotSize - fixed) / (2 * v2pEntrySize)
	return g, nil
}

// slotAddr returns the base of slot i.
func (g geometry) slotAddr(i int) mem.PhysAddr {
	return g.slotBase + mem.PhysAddr(uint64(i)*g.slotSize)
}

// vmaTableAddr returns the VMA table copy (0=A, 1=B) base of slot i.
func (g geometry) vmaTableAddr(i, copyIdx int) mem.PhysAddr {
	return g.slotAddr(i) + slotHeaderSize + mem.PhysAddr(copyIdx*vmaTableSize)
}

// v2pAddr returns the v2p list copy (0=A, 1=B) base of slot i.
func (g geometry) v2pAddr(i, copyIdx int) mem.PhysAddr {
	return g.slotAddr(i) + slotHeaderSize + 2*vmaTableSize +
		mem.PhysAddr(uint64(copyIdx)*g.v2pCap*v2pEntrySize)
}

// regsAddr returns the register area of copy 0/1 in slot i.
func (g geometry) regsAddr(i, copyIdx int) mem.PhysAddr {
	off := mem.PhysAddr(hdrRegsA)
	if copyIdx == 1 {
		off = hdrRegsB
	}
	return g.slotAddr(i) + off
}
