package persist

import (
	"fmt"

	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/pt"
)

// Recover reconstructs every persisted process from the saved states in
// NVM after a crash and reboot. It restores the physical allocator from the
// persisted bitmap, then for each valid slot recreates the execution
// context from the latest consistent copy: registers, VMA layout, and the
// page table — replayed from the virtual→NVM-physical list under the
// rebuild scheme, or re-attached via the surviving root under the
// persistent scheme. Recovered processes are ready to run.
//
// The simulated time of the recovery work (reads of saved state, page-table
// reconstruction) is charged as kernel time, making the schemes' recovery
// trade-off measurable.
func (mgr *Manager) Recover() ([]*gemos.Process, error) {
	m := mgr.M
	k := mgr.K
	m.Core.EnterKernel()
	defer m.Core.ExitKernel()
	startCycles := m.Clock.Now()
	tracing := m.Tracer.Enabled(obs.CatRecovery)

	k.Alloc.RecoverFromBitmap()
	phaseStart := mgr.endPhaseCat(tracing, obs.CatRecovery, "recovery.bitmap", "persist.rec.bitmap_cycles", startCycles, -1)

	var recovered []*gemos.Process
	for slot := 0; slot < SlotCount; slot++ {
		sa := mgr.geo.slotAddr(slot)
		m.AccessTimed(sa, false)
		if m.LoadU64(sa+hdrMagic) != slotMagic || m.LoadU64(sa+hdrValid) != 1 {
			continue
		}
		phaseStart = m.Clock.Now()
		pid := int(m.LoadU64(sa + hdrPID))
		which := int(m.LoadU64(sa + hdrWhich))
		gen := m.LoadU64(sa + hdrGeneration)
		nameLen := m.LoadU64(sa + hdrNameLen)
		if nameLen > 64 {
			nameLen = 64
		}
		nameBuf := make([]byte, nameLen)
		m.Ctrl.Read(sa+hdrName, nameBuf)

		p := &gemos.Process{
			PID:       pid,
			Name:      string(nameBuf),
			State:     gemos.ProcReady,
			Slot:      slot,
			Recovered: true,
		}
		gpr, rip, rflags := mgr.readRegs(slot, which)
		p.Regs.GPR = gpr
		p.Regs.RIP = rip
		p.Regs.RFLAGS = rflags
		cursorOff := mem.PhysAddr(hdrCursorA)
		if which == 1 {
			cursorOff = hdrCursorB
		}
		p.SetMmapCursor(m.LoadU64(sa + cursorOff))
		phaseStart = mgr.endPhaseCat(tracing, obs.CatRecovery, "recovery.regs", "persist.rec.regs_cycles", phaseStart, slot)

		if err := mgr.recoverVMAs(slot, which, p); err != nil {
			return recovered, fmt.Errorf("persist: slot %d: %w", slot, err)
		}
		phaseStart = mgr.endPhaseCat(tracing, obs.CatRecovery, "recovery.vma", "persist.rec.vma_cycles", phaseStart, slot)
		if err := mgr.recoverTable(slot, which, p); err != nil {
			return recovered, fmt.Errorf("persist: slot %d: %w", slot, err)
		}
		mgr.endPhaseCat(tracing, obs.CatRecovery, "recovery.table", "persist.rec.table_cycles", phaseStart, slot)

		mgr.slots[slot] = slotState{used: true, pid: pid, which: which, gen: gen, mirror: mgr.mirrorFromNVM(slot, which)}
		k.Adopt(p)
		recovered = append(recovered, p)
		m.Stats.Inc("persist.recovered")
	}

	reconcileStart := m.Clock.Now()

	// Reconciliation: under the persistent scheme the page table is
	// durable instantly while the VMA layout is checkpoint-consistent, so
	// the recovered table can be *ahead* of the recovered layout. Trim
	// mappings that fall outside the recovered VMAs (their mmap/fault
	// happened after the last checkpoint and rolls back with it).
	if mgr.Scheme == Persistent {
		for _, p := range recovered {
			mgr.reconcileTable(p)
		}
	}

	// Garbage collection: frames the durable bitmap marks used but that no
	// recovered structure references were allocated after the last
	// checkpoint (or belonged to exited processes); sweep them back into
	// the pool.
	referenced := make(map[uint64]bool)
	for _, p := range recovered {
		p.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
			referenced[e.PFN()] = true
			return true
		})
		if p.Table.Kind() == mem.NVM {
			for _, pfn := range p.Table.TablePages() {
				referenced[pfn] = true
			}
		}
	}
	if n := k.Alloc.ReclaimUnreferenced(referenced); n > 0 {
		m.Stats.Add("persist.gc_reclaimed", uint64(n))
	}
	mgr.endPhaseCat(tracing, obs.CatRecovery, "recovery.reconcile", "persist.rec.reconcile_cycles", reconcileStart, -1)

	total := m.Clock.Now() - startCycles
	mgr.recoveryLat.ObserveCycles(total)
	if tracing {
		m.Tracer.Span(obs.CatRecovery, "recovery", startCycles, total, "procs", uint64(len(recovered)))
	}
	m.Stats.Add("persist.recovery_cycles", uint64(total))
	return recovered, nil
}

// reconcileTable removes recovered page-table mappings not covered by the
// recovered VMA layout (persistent scheme only). The frames are not freed
// here — the GC sweep that follows reclaims anything unreferenced.
func (mgr *Manager) reconcileTable(p *gemos.Process) {
	type orphan struct{ va uint64 }
	var orphans []orphan
	p.Table.ForEachMapped(func(va uint64, e pt.PTE) bool {
		v := p.AS.Find(va)
		if v == nil || (e.NVM() != (v.Kind == mem.NVM)) {
			orphans = append(orphans, orphan{va: va})
		}
		return true
	})
	for _, o := range orphans {
		p.Table.Remove(o.va)
		mgr.M.Stats.Inc("persist.reconcile_unmap")
	}
}

// recoverVMAs deserializes the consistent VMA table into p.
func (mgr *Manager) recoverVMAs(slot, which int, p *gemos.Process) error {
	m := mgr.M
	sa := mgr.geo.slotAddr(slot)
	cnt := mem.PhysAddr(hdrVMACountA)
	if which == 1 {
		cnt = hdrVMACountB
	}
	n := m.LoadU64(sa + cnt)
	if n > MaxVMAs {
		n = MaxVMAs
	}
	base := mgr.geo.vmaTableAddr(slot, which)
	for i := uint64(0); i < n; i++ {
		ea := base + mem.PhysAddr(i*vmaEntrySize)
		m.AccessTimed(ea, false)
		start := m.LoadU64(ea)
		end := m.LoadU64(ea + 8)
		pk := m.LoadU64(ea + 16)
		v := &gemos.VMA{
			Start: start,
			End:   end,
			Prot:  gemos.Prot(pk & 0xFF),
			Kind:  mem.Kind(pk >> 8),
			Name:  tagName(m.LoadU64(ea + 24)),
		}
		if err := p.AS.Insert(v); err != nil {
			return fmt.Errorf("restoring VMA %d: %w", i, err)
		}
	}
	return nil
}

// recoverTable rebuilds or re-attaches the page table for p.
func (mgr *Manager) recoverTable(slot, which int, p *gemos.Process) error {
	m := mgr.M
	k := mgr.K
	sa := mgr.geo.slotAddr(slot)

	if mgr.Scheme == Persistent {
		// The table survived in NVM; recovery only needs to point the
		// PTBR at the first level ("this only requires setting the PTBR").
		root := mem.PhysAddr(m.LoadU64(sa + hdrPTRoot))
		if m.Cfg.Layout.KindOf(root) != mem.NVM {
			return fmt.Errorf("persistent-scheme root %#x not in NVM", root)
		}
		p.Table = pt.Attach(m, k.Alloc, mem.NVM, root, m.Stats)
		p.Table.SetWriteHook(mgr.pteHook(p))
		m.Stats.Inc("persist.recover_attach")
		return nil
	}

	// Rebuild scheme: allocate a fresh DRAM-hosted table and replay the
	// virtual→NVM-physical list. Every entry costs a timed read of the
	// list plus the timed page-table installs.
	tbl, err := pt.New(m, k.Alloc, mem.DRAM, m.Stats)
	if err != nil {
		return err
	}
	p.Table = tbl
	cnt := mem.PhysAddr(hdrV2PCountA)
	if which == 1 {
		cnt = hdrV2PCountB
	}
	n := m.LoadU64(sa + cnt)
	base := mgr.geo.v2pAddr(slot, which)
	for i := uint64(0); i < n; i++ {
		ea := base + mem.PhysAddr(i*v2pEntrySize)
		m.AccessTimed(ea, false)
		vpn := m.LoadU64(ea)
		pfn := m.LoadU64(ea + 8)
		flags := uint64(pt.FlagUser | pt.FlagWritable | pt.FlagNVM)
		if _, _, err := tbl.Install(vpn*mem.PageSize, pfn, flags); err != nil {
			return fmt.Errorf("replaying v2p entry %d: %w", i, err)
		}
		// The replayed frame is owned by this process; the allocator
		// already marks it used (persisted bitmap).
		m.Stats.Inc("persist.recover_replay")
	}
	return nil
}

// mirrorFromNVM reloads the host-side v2p mirror from the consistent copy.
func (mgr *Manager) mirrorFromNVM(slot, which int) *v2pMirror {
	m := mgr.M
	sa := mgr.geo.slotAddr(slot)
	cnt := mem.PhysAddr(hdrV2PCountA)
	if which == 1 {
		cnt = hdrV2PCountB
	}
	n := m.LoadU64(sa + cnt)
	base := mgr.geo.v2pAddr(slot, which)
	mirror := newV2PMirror()
	for i := uint64(0); i < n; i++ {
		ea := base + mem.PhysAddr(i*v2pEntrySize)
		mirror.set(m.LoadU64(ea), m.LoadU64(ea+8))
	}
	return mirror
}
