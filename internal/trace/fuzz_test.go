package trace

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeeds returns representative inputs for FuzzDecode: well-formed v1
// and v2 images (raw and compressed chunks), their truncations, and a few
// corrupted headers. The same set is checked in under
// testdata/fuzz/FuzzDecode so CI's fuzz smoke starts from real coverage.
func fuzzSeeds() [][]byte {
	img := sample()
	var v1 bytes.Buffer
	if err := Encode(&v1, img); err != nil {
		panic(err)
	}
	var v2 bytes.Buffer
	if err := EncodeV2(&v2, img, StreamOptions{}); err != nil {
		panic(err)
	}
	var v2raw bytes.Buffer
	if err := EncodeV2(&v2raw, img, StreamOptions{NoCompress: true, ChunkRecords: 2}); err != nil {
		panic(err)
	}
	badMagic := append([]byte(nil), v1.Bytes()...)
	badMagic[0] ^= 0xFF
	badVer := append([]byte(nil), v2.Bytes()...)
	badVer[4] = 99
	seeds := [][]byte{
		v1.Bytes(),
		v2.Bytes(),
		v2raw.Bytes(),
		v1.Bytes()[:v1.Len()/2],
		v2.Bytes()[:v2.Len()/2],
		v2.Bytes()[:v2.Len()-5],
		badMagic,
		badVer,
		{},
		{0x43, 0x52, 0x54, 0x4B}, // magic only
	}
	return seeds
}

// nonSeeker hides the Seek method so OpenStream takes the pure-stream path
// (no footer preread, Total unknown).
type fuzzNonSeeker struct{ r io.Reader }

func (n fuzzNonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

// FuzzDecode throws arbitrary bytes at the binary decoders (v1 and v2 take
// the same entry point; the version byte routes). Any input must either
// fail with an error or produce a valid image — and the seekable and
// non-seekable decode paths must agree.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(bytes.NewReader(data))
		if err != nil {
			if img != nil {
				t.Fatal("Decode returned both image and error")
			}
		} else {
			if err := img.Validate(); err != nil {
				t.Fatalf("decoded image invalid: %v", err)
			}
		}
		img2, err2 := Decode(fuzzNonSeeker{bytes.NewReader(data)})
		if (err == nil) != (err2 == nil) {
			t.Fatalf("seekable err=%v, streamed err=%v", err, err2)
		}
		if err == nil {
			if img.Benchmark != img2.Benchmark || len(img.Records) != len(img2.Records) {
				t.Fatal("seekable and streamed decodes disagree")
			}
			for i := range img.Records {
				if img.Records[i] != img2.Records[i] {
					t.Fatalf("record %d differs across decode paths", i)
				}
			}
		}
	})
}
