// Package trace defines Kindle's memory-trace format. The preparation
// component records every memory access of an instrumented application as a
// (period, offset, operation, size, area) tuple — exactly the tuple the
// paper's image generator emits — and packs traces plus the captured
// virtual-memory layout into a disk image the simulation side replays.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Op is the memory operation type.
type Op uint8

// Operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// Record is one traced memory access:
//
//	Period — logical time of the access (instruction count at capture)
//	Offset — byte offset of the access within its memory area
//	Op     — read or write
//	Size   — access size in bytes
//	Area   — index into the image's area table (which heap/stack area)
type Record struct {
	Period uint64
	Offset uint64
	Op     Op
	Size   uint32
	Area   uint32
}

// Area describes one memory region of the traced application, as captured
// from the /proc/pid/maps-style layout (stack areas come from the SniP
// stand-in for multi-threaded programs).
type Area struct {
	Name  string // e.g. "heap0", "stack.tid3"
	Size  uint64 // bytes, page aligned
	NVM   bool   // replayed with MAP_NVM
	Write bool   // mapped writable
}

// Image is the disk image consumed by the simulation component: the area
// table plus the access stream.
type Image struct {
	Benchmark string
	Areas     []Area
	Records   []Record

	// validated memoizes a successful Validate of the current Records
	// slice (identified by backing pointer and length), so repeated
	// launches of the same write-once image skip the full record scan.
	// Replacing or appending to Records invalidates the memo; editing a
	// record in place does not, so treat a validated image as immutable.
	validated struct {
		first *Record
		n     int
	}
}

// Validate checks internal consistency.
func (img *Image) Validate() error {
	if err := ValidateHeader(img.Benchmark, img.Areas); err != nil {
		return err
	}
	if len(img.Records) > 0 && img.validated.first == &img.Records[0] && img.validated.n == len(img.Records) {
		return nil
	}
	// The record loop runs once per image over the whole trace, so the
	// happy path is a handful of branches inline; only a failing record
	// drops to validateRecord for the precise error text.
	areas := img.Areas
	var lastPeriod uint64
	for i := range img.Records {
		r := &img.Records[i]
		end := r.Offset + uint64(r.Size)
		if int(r.Area) >= len(areas) || r.Size == 0 || r.Period < lastPeriod || r.Op > Write ||
			end > areas[r.Area].Size || end < r.Offset {
			return validateRecord(*r, areas, lastPeriod, i)
		}
		lastPeriod = r.Period
	}
	if len(img.Records) > 0 {
		img.validated.first = &img.Records[0]
		img.validated.n = len(img.Records)
	}
	return nil
}

// Mix reports the read/write percentages of the trace (Table II columns).
func (img *Image) Mix() (readPct, writePct float64) {
	if len(img.Records) == 0 {
		return 0, 0
	}
	var w int
	for _, r := range img.Records {
		if r.Op == Write {
			w++
		}
	}
	writePct = 100 * float64(w) / float64(len(img.Records))
	return 100 - writePct, writePct
}

// Footprint returns the total bytes across all areas.
func (img *Image) Footprint() uint64 {
	var n uint64
	for _, a := range img.Areas {
		n += a.Size
	}
	return n
}

const (
	formatMagic  = uint32(0x4B545243) // "KTRC"
	formatVer    = uint32(1)
	maxNameBytes = 255
)

// Encode writes the image in the binary on-disk format.
func Encode(w io.Writer, img *Image) error {
	if err := img.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if len(s) > maxNameBytes {
			return fmt.Errorf("trace: name %q too long", s)
		}
		if err := bw.WriteByte(byte(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := putU32(formatMagic); err != nil {
		return err
	}
	if err := putU32(formatVer); err != nil {
		return err
	}
	if err := putString(img.Benchmark); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(img.Areas))); err != nil {
		return err
	}
	for _, a := range img.Areas {
		if err := putString(a.Name); err != nil {
			return err
		}
		if err := putUvarint(a.Size); err != nil {
			return err
		}
		var flags byte
		if a.NVM {
			flags |= 1
		}
		if a.Write {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(img.Records))); err != nil {
		return err
	}
	// Records are delta-encoded on Period (Validate guarantees it is
	// monotone non-decreasing) and raw-varint elsewhere.
	var lastPeriod uint64
	for _, r := range img.Records {
		if err := putUvarint(r.Period - lastPeriod); err != nil {
			return err
		}
		lastPeriod = r.Period
		if err := putUvarint(r.Offset); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Size)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Area)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode materializes an image from either binary format — version 1
// (written by Encode) or version 2 (written by EncodeV2/StreamWriter) —
// sniffing the version from the header. Truncated or corrupt input yields
// a descriptive error naming the file offset and what was expected there,
// never a partially zero image. For bounded-memory replay of large images
// use OpenStream instead.
func Decode(r io.Reader) (*Image, error) {
	src, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	img := &Image{Benchmark: src.Benchmark(), Areas: src.Areas()}
	// Preallocate from the header's count, capped so a corrupt count
	// cannot balloon the allocation before the decode loop fails.
	if t := src.Total(); t > 0 {
		img.Records = make([]Record, 0, min(t, 1<<21))
	}
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		img.Records = append(img.Records, batch...)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
