package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// mkRandImage builds a random valid image: 1-4 areas of random sizes,
// monotonic periods with plateaus and jumps, random in-bounds accesses.
func mkRandImage(rng *rand.Rand, n int) *Image {
	img := &Image{Benchmark: "pipe"}
	nAreas := rng.Intn(4) + 1
	for a := 0; a < nAreas; a++ {
		img.Areas = append(img.Areas, Area{
			Name:  fmt.Sprintf("area%d", a),
			Size:  uint64(rng.Intn(1<<20) + 4096),
			NVM:   rng.Intn(2) == 0,
			Write: true,
		})
	}
	var period uint64
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // plateau
		case 1:
			period += uint64(rng.Intn(3))
		default:
			period += uint64(rng.Intn(1000))
		}
		area := rng.Intn(nAreas)
		size := uint32(1 << rng.Intn(7))
		off := uint64(rng.Int63n(int64(img.Areas[area].Size - uint64(size))))
		img.Records = append(img.Records, Record{
			Period: period,
			Offset: off,
			Op:     Op(rng.Intn(2)),
			Size:   size,
			Area:   uint32(area),
		})
	}
	return img
}

// drainAll pulls every batch out of a source, copying records (batches are
// only valid until the next Next call), and returns the prefix decoded
// before the stream ended plus the terminating error (nil for clean EOF).
func drainAll(src RecordSource) ([]Record, error) {
	var out []Record
	for {
		batch, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, batch...)
	}
}

// openDrain opens data with the given worker count, drains it, and closes
// the source. Open-time errors come back as the error with nil records.
func openDrain(t *testing.T, data []byte, workers int) ([]Record, error) {
	t.Helper()
	src, err := OpenStreamConfig(bytes.NewReader(data), StreamConfig{DecodeWorkers: workers})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return drainAll(src)
}

// TestPipelinedDecodeMatchesSerial is the property test for the decode
// pool: over random images, chunk sizes and codecs, every pipelined worker
// count must yield the byte-identical record sequence of the serial
// decoder.
func TestPipelinedDecodeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		img := mkRandImage(rng, rng.Intn(3000)+1)
		opt := StreamOptions{
			ChunkRecords: rng.Intn(256) + 1,
			NoCompress:   rng.Intn(2) == 0,
		}
		var buf bytes.Buffer
		if err := EncodeV2(&buf, img, opt); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		serial, err := openDrain(t, buf.Bytes(), 1)
		if err != nil {
			t.Fatalf("trial %d: serial drain: %v", trial, err)
		}
		sameRecords(t, serial, img.Records)
		for _, workers := range []int{2, 3, 8} {
			piped, err := openDrain(t, buf.Bytes(), workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: pipelined drain: %v", trial, workers, err)
			}
			if len(piped) != len(serial) {
				t.Fatalf("trial %d workers %d: %d records, serial %d", trial, workers, len(piped), len(serial))
			}
			for i := range serial {
				if piped[i] != serial[i] {
					t.Fatalf("trial %d workers %d: record %d = %+v, serial %+v",
						trial, workers, i, piped[i], serial[i])
				}
			}
		}
	}
}

// TestPipelinedDecodeErrorParity pins error-propagation order: over random
// truncations and byte flips of a valid stream, the pipelined decoder must
// deliver the same decoded prefix and the same terminating error (by
// message) as the serial decoder — corruption in chunk k never surfaces
// before chunks 0..k-1 are emitted, exactly like the serial pass.
func TestPipelinedDecodeErrorParity(t *testing.T) {
	img := mkImage(3000)
	for _, opt := range []StreamOptions{
		{ChunkRecords: 64},
		{ChunkRecords: 64, NoCompress: true},
	} {
		var buf bytes.Buffer
		if err := EncodeV2(&buf, img, opt); err != nil {
			t.Fatal(err)
		}
		clean := buf.Bytes()
		rng := rand.New(rand.NewSource(int64(len(clean))))
		for trial := 0; trial < 120; trial++ {
			data := append([]byte(nil), clean...)
			if trial%2 == 0 {
				data = data[:rng.Intn(len(data))] // torn stream
			} else {
				pos := rng.Intn(len(data))
				data[pos] ^= byte(1 << rng.Intn(8)) // flipped bit
			}
			serial, serialErr := openDrain(t, data, 1)
			piped, pipedErr := openDrain(t, data, 4)
			if (serialErr == nil) != (pipedErr == nil) {
				t.Fatalf("trial %d: serial err %v, pipelined err %v", trial, serialErr, pipedErr)
			}
			if serialErr != nil && serialErr.Error() != pipedErr.Error() {
				t.Fatalf("trial %d: serial err %q, pipelined err %q", trial, serialErr, pipedErr)
			}
			if len(piped) != len(serial) {
				t.Fatalf("trial %d: pipelined decoded %d records before error, serial %d (err %v)",
					trial, len(piped), len(serial), serialErr)
			}
			for i := range serial {
				if piped[i] != serial[i] {
					t.Fatalf("trial %d: record %d = %+v, serial %+v", trial, i, piped[i], serial[i])
				}
			}
		}
	}
}

// TestPipelinedDecodeStats checks the decode pool reports its shape and
// progress through DecodeStatsSource.
func TestPipelinedDecodeStats(t *testing.T) {
	img := mkImage(2000)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 100}); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStreamConfig(bytes.NewReader(buf.Bytes()), StreamConfig{DecodeWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ds, ok := src.(DecodeStatsSource)
	if !ok {
		t.Fatal("pipelined source does not implement DecodeStatsSource")
	}
	if _, err := drainAll(src); err != nil {
		t.Fatal(err)
	}
	st := ds.DecodeStats()
	if st.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", st.Workers)
	}
	if st.Chunks != 20 {
		t.Fatalf("Chunks = %d, want 20", st.Chunks)
	}
}

// TestSerialSourceHasNoDecodeStats pins the contract that only the
// pipelined decoder exposes stall counters.
func TestSerialSourceHasNoDecodeStats(t *testing.T) {
	img := mkImage(10)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStreamConfig(bytes.NewReader(buf.Bytes()), StreamConfig{DecodeWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, ok := src.(DecodeStatsSource); ok {
		t.Fatal("serial source unexpectedly implements DecodeStatsSource")
	}
}

// TestPipelinedCloseMidStream checks Close unwinds the pipeline cleanly
// with chunks still in flight (no goroutine leak panics under -race, no
// hang).
func TestPipelinedCloseMidStream(t *testing.T) {
	img := mkImage(5000)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 16}); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		src, err := OpenStreamConfig(bytes.NewReader(buf.Bytes()), StreamConfig{DecodeWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < trial; i++ {
			if _, err := src.Next(); err != nil {
				t.Fatalf("trial %d: Next %d: %v", trial, i, err)
			}
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
