package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Stream format (version 2): the chunked, varint-delta-compressed on-disk
// trace. Unlike version 1 — a single header followed by one flat record
// stream whose decoder materializes everything — a v2 image is a sequence
// of independently decodable chunks, so paper-scale traces replay in
// bounded memory and the reader can stay one chunk ahead of the consumer.
//
// Layout:
//
//	u32    magic "KTRC"
//	u32    version = 2
//	string benchmark          (length byte + bytes)
//	uvarint area count, then per area: string name, uvarint size, byte flags
//	chunks, each:
//	    uvarint record count  (0 terminates the chunk sequence)
//	    byte    codec         (0 = raw, 1 = DEFLATE)
//	    uvarint base period   (period preceding the chunk's first record)
//	    uvarint raw payload bytes
//	    uvarint disk payload bytes
//	    payload
//	footer (after the 0 terminator):
//	    uvarint chunk count, then per chunk: uvarint records, uvarint disk bytes
//	    uvarint total records
//	u32 footer length (bytes of the footer block above)
//	u32 footer magic "KIDX"
//
// Chunk payloads encode each record as four varints: the period delta
// against the previous record (the chunk's base period for the first), a
// tag packing area<<1|op, the offset as a zigzag delta against the same
// area's previous offset within the chunk (absolute at chunk start), and
// the size. Delta state resets at every chunk boundary, which is what
// makes chunks independently decodable and lets the trailing footer index
// support seeking.

const (
	formatVer2 = uint32(2)

	// DefaultChunkRecords is the records-per-chunk target of the v2
	// writer: big enough to amortize chunk framing and compression,
	// small enough that two resident chunks stay a few MiB.
	DefaultChunkRecords = 1 << 16

	footerMagic = uint32(0x4B494458) // "KIDX"

	codecRaw   = 0
	codecFlate = 1

	// Decoder hard limits: no well-formed writer output exceeds these, so
	// anything past them is corruption — reject it before allocating.
	maxChunkRecords = 1 << 22
	maxChunkBytes   = 1 << 28
	maxAreas        = 1 << 20
)

// ErrCorrupt tags decode failures caused by malformed input (as opposed to
// I/O errors); wrap-checked with errors.Is.
var ErrCorrupt = errors.New("corrupt trace")

// RecordSink consumes records one at a time; *StreamWriter implements it,
// as does anything that wants to observe a trace as it is captured.
type RecordSink interface {
	Write(rec Record) error
}

// RecordSource is a streamed trace: the header up front, records in
// batches. Next returns the next batch, valid only until the following
// Next call, and io.EOF after the last one. Total is the record count when
// known (materialized images, v1 streams, seekable v2 streams) and -1
// otherwise. Close releases the decoder; it never closes the underlying
// reader.
type RecordSource interface {
	Benchmark() string
	Areas() []Area
	Total() int
	Next() ([]Record, error)
	Close() error
}

// ValidateHeader checks the header invariants shared by materialized
// images and streams: a benchmark name and at least one area, every area
// named and sized.
func ValidateHeader(benchmark string, areas []Area) error {
	if benchmark == "" {
		return errors.New("trace: image without benchmark name")
	}
	if len(areas) == 0 {
		return errors.New("trace: image without areas")
	}
	for i, a := range areas {
		if a.Name == "" {
			return fmt.Errorf("trace: area %d unnamed", i)
		}
		if a.Size == 0 {
			return fmt.Errorf("trace: area %q has zero size", a.Name)
		}
	}
	return nil
}

// validateRecord checks one record against the area table. index is the
// record's position in the stream, used only for the error text.
func validateRecord(rec Record, areas []Area, lastPeriod uint64, index int) error {
	if int(rec.Area) >= len(areas) {
		return fmt.Errorf("trace: record %d references area %d of %d: %w", index, rec.Area, len(areas), ErrCorrupt)
	}
	a := areas[rec.Area]
	if rec.Size == 0 {
		return fmt.Errorf("trace: record %d has zero size: %w", index, ErrCorrupt)
	}
	if rec.Offset+uint64(rec.Size) > a.Size || rec.Offset+uint64(rec.Size) < rec.Offset {
		return fmt.Errorf("trace: record %d overruns area %q (%d+%d > %d): %w",
			index, a.Name, rec.Offset, rec.Size, a.Size, ErrCorrupt)
	}
	if rec.Period < lastPeriod {
		return fmt.Errorf("trace: record %d period goes backwards (%d < %d): %w",
			index, rec.Period, lastPeriod, ErrCorrupt)
	}
	if rec.Op != Read && rec.Op != Write {
		return fmt.Errorf("trace: record %d has op %d: %w", index, rec.Op, ErrCorrupt)
	}
	return nil
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// countingReader tracks the byte offset of a buffered reader so decode
// errors can point at the exact spot in the file.
type countingReader struct {
	r   *bufio.Reader
	off int64
}

func newCountingReader(r io.Reader) *countingReader {
	return &countingReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// fail wraps a low-level read error with the current file offset and what
// the decoder was expecting there. A clean EOF in the middle of a
// structure is truncation, not end-of-input.
func (c *countingReader) fail(what string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: offset %d: reading %s: %w", c.off, what, err)
}

func (c *countingReader) u32(what string) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		return 0, c.fail(what, err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (c *countingReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, c.fail(what, err)
	}
	return v, nil
}

func (c *countingReader) str(what string) (string, error) {
	n, err := c.ReadByte()
	if err != nil {
		return "", c.fail(what+" length", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", c.fail(what, err)
	}
	return string(buf), nil
}

// streamHeader is the part of either format preceding the records.
type streamHeader struct {
	version   uint32
	benchmark string
	areas     []Area
}

// readStreamHeader parses the common header and sniffs the version.
func readStreamHeader(c *countingReader) (*streamHeader, error) {
	magic, err := c.u32("magic")
	if err != nil {
		return nil, err
	}
	if magic != formatMagic {
		return nil, fmt.Errorf("trace: offset 0: bad magic %#x (want %#x): %w", magic, formatMagic, ErrCorrupt)
	}
	ver, err := c.u32("version")
	if err != nil {
		return nil, err
	}
	if ver != formatVer && ver != formatVer2 {
		return nil, fmt.Errorf("trace: offset 4: unsupported version %d: %w", ver, ErrCorrupt)
	}
	h := &streamHeader{version: ver}
	if h.benchmark, err = c.str("benchmark name"); err != nil {
		return nil, err
	}
	nAreas, err := c.uvarint("area count")
	if err != nil {
		return nil, err
	}
	if nAreas > maxAreas {
		return nil, fmt.Errorf("trace: offset %d: area count %d exceeds limit %d: %w", c.off, nAreas, maxAreas, ErrCorrupt)
	}
	h.areas = make([]Area, 0, min(nAreas, 4096))
	for i := uint64(0); i < nAreas; i++ {
		var a Area
		if a.Name, err = c.str(fmt.Sprintf("area %d name", i)); err != nil {
			return nil, err
		}
		if a.Size, err = c.uvarint(fmt.Sprintf("area %d size", i)); err != nil {
			return nil, err
		}
		flags, err := c.ReadByte()
		if err != nil {
			return nil, c.fail(fmt.Sprintf("area %d flags", i), err)
		}
		a.NVM = flags&1 != 0
		a.Write = flags&2 != 0
		h.areas = append(h.areas, a)
	}
	if err := ValidateHeader(h.benchmark, h.areas); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrCorrupt)
	}
	return h, nil
}

// StreamConfig tunes how OpenStreamConfig decodes a stream. The zero value
// is the default configuration.
type StreamConfig struct {
	// DecodeWorkers bounds the concurrent chunk decoders of a v2 stream:
	// 0 picks GOMAXPROCS, 1 selects the serial single-goroutine read-ahead
	// decoder, and values above 1 enable the pipelined worker pool (one
	// reader goroutine framing compressed chunks, DecodeWorkers goroutines
	// decompressing and decoding them, a reorder buffer restoring chunk
	// order). Record sequence and error order are identical either way;
	// only the host-side decode concurrency changes. v1 streams ignore it.
	DecodeWorkers int
}

// OpenStream opens a binary trace for streamed replay with the default
// configuration; see OpenStreamConfig.
func OpenStream(r io.Reader) (RecordSource, error) {
	return OpenStreamConfig(r, StreamConfig{})
}

// OpenStreamConfig opens a binary trace for streamed replay, sniffing the
// format version from the header: v1 images decode incrementally in
// DefaultChunkRecords batches, v2 images chunk-by-chunk — serially with one
// chunk of read-ahead, or through a decode worker pool (see
// StreamConfig.DecodeWorkers). The caller must Close the source (which does
// not close r) and keeps ownership of r.
func OpenStreamConfig(r io.Reader, cfg StreamConfig) (RecordSource, error) {
	total := -1
	if rs, ok := r.(io.ReadSeeker); ok {
		if t, ok := readV2FooterTotal(rs); ok {
			total = t
		}
	}
	c := newCountingReader(r)
	h, err := readStreamHeader(c)
	if err != nil {
		return nil, err
	}
	switch h.version {
	case formatVer:
		n, err := c.uvarint("record count")
		if err != nil {
			return nil, err
		}
		if n > 1<<62 {
			return nil, fmt.Errorf("trace: offset %d: implausible record count %d: %w", c.off, n, ErrCorrupt)
		}
		return &v1Source{c: c, h: h, total: int(n)}, nil
	default:
		workers := cfg.DecodeWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > 1 {
			return newPipelineSource(c, h, total, workers), nil
		}
		s := &v2Source{
			h:     h,
			total: total,
			out:   make(chan v2Batch, 1),
			free:  make(chan []Record, 2),
			stop:  make(chan struct{}),
		}
		s.free <- nil
		s.free <- nil
		go s.run(c)
		return s, nil
	}
}

// readV2FooterTotal fetches the total record count from a seekable v2
// stream's trailing footer without disturbing the read position. ok is
// false for v1 images, non-seekable readers and anything malformed — the
// sequential decoder then discovers the truth on its own.
func readV2FooterTotal(rs io.ReadSeeker) (total int, ok bool) {
	start, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, false
	}
	defer rs.Seek(start, io.SeekStart)
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil || end-start < 8 {
		return 0, false
	}
	var tail [8]byte
	if _, err := rs.Seek(end-8, io.SeekStart); err != nil {
		return 0, false
	}
	if _, err := io.ReadFull(rs, tail[:]); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint32(tail[4:]) != footerMagic {
		return 0, false
	}
	fLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if fLen <= 0 || fLen > 1<<24 || end-8-fLen < start {
		return 0, false
	}
	if _, err := rs.Seek(end-8-fLen, io.SeekStart); err != nil {
		return 0, false
	}
	buf := make([]byte, fLen)
	if _, err := io.ReadFull(rs, buf); err != nil {
		return 0, false
	}
	pos := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	nChunks, ok2 := next()
	if !ok2 || nChunks > uint64(fLen) {
		return 0, false
	}
	for i := uint64(0); i < nChunks; i++ {
		if _, ok2 = next(); !ok2 { // records
			return 0, false
		}
		if _, ok2 = next(); !ok2 { // disk bytes
			return 0, false
		}
	}
	t, ok2 := next()
	if !ok2 || t > 1<<62 {
		return 0, false
	}
	return int(t), true
}

// NewImageSource adapts a materialized image to the streamed interface:
// one batch aliasing img.Records, then io.EOF. The image must already be
// Validated; the source performs no per-record checks.
func NewImageSource(img *Image) RecordSource { return &imageSource{img: img} }

type imageSource struct {
	img  *Image
	done bool
}

func (s *imageSource) Benchmark() string { return s.img.Benchmark }
func (s *imageSource) Areas() []Area     { return s.img.Areas }
func (s *imageSource) Total() int        { return len(s.img.Records) }
func (s *imageSource) Close() error      { return nil }

func (s *imageSource) Next() ([]Record, error) {
	if s.done || len(s.img.Records) == 0 {
		return nil, io.EOF
	}
	s.done = true
	return s.img.Records, nil
}

// v1Source streams a version-1 image: the flat record stream decodes on
// demand into one reusable batch, so even the legacy format replays
// without materializing.
type v1Source struct {
	c          *countingReader
	h          *streamHeader
	total      int
	read       int
	lastPeriod uint64
	batch      []Record
}

func (s *v1Source) Benchmark() string { return s.h.benchmark }
func (s *v1Source) Areas() []Area     { return s.h.areas }
func (s *v1Source) Total() int        { return s.total }
func (s *v1Source) Close() error      { return nil }

func (s *v1Source) Next() ([]Record, error) {
	if s.read >= s.total {
		return nil, io.EOF
	}
	n := min(s.total-s.read, DefaultChunkRecords)
	if cap(s.batch) < n {
		s.batch = make([]Record, n)
	}
	batch := s.batch[:n]
	c := s.c
	// Field labels are static: formatting the record index into every
	// context string allocated four strings per record on the happy path.
	// The error's byte offset (and validateRecord's index) still localize
	// any failure.
	for i := range batch {
		idx := s.read + i
		d, err := c.uvarint("record period delta")
		if err != nil {
			return nil, err
		}
		s.lastPeriod += d
		batch[i].Period = s.lastPeriod
		if batch[i].Offset, err = c.uvarint("record offset"); err != nil {
			return nil, err
		}
		op, err := c.ReadByte()
		if err != nil {
			return nil, c.fail("record op", err)
		}
		batch[i].Op = Op(op)
		sz, err := c.uvarint("record size")
		if err != nil {
			return nil, err
		}
		batch[i].Size = uint32(sz)
		ar, err := c.uvarint("record area")
		if err != nil {
			return nil, err
		}
		batch[i].Area = uint32(ar)
		if err := validateRecord(batch[i], s.h.areas, s.lastPeriod, idx); err != nil {
			return nil, err
		}
	}
	s.read += n
	return batch, nil
}

// v2Batch carries one decoded chunk (or the stream's final error) from the
// read-ahead goroutine to the consumer.
type v2Batch struct {
	recs []Record
	err  error
}

// v2Source decodes chunks one ahead of the consumer: a single goroutine
// reads, decompresses and decodes the next chunk into one of two recycled
// record buffers while the previous one is being replayed, so at most two
// chunks are ever resident regardless of trace length.
type v2Source struct {
	h     *streamHeader
	total int

	out  chan v2Batch
	free chan []Record
	stop chan struct{}

	cur       []Record
	closeOnce sync.Once
}

func (s *v2Source) Benchmark() string { return s.h.benchmark }
func (s *v2Source) Areas() []Area     { return s.h.areas }
func (s *v2Source) Total() int        { return s.total }

func (s *v2Source) Next() ([]Record, error) {
	if s.cur != nil {
		s.free <- s.cur[:0] // hand the consumed buffer back; never blocks (cap 2)
		s.cur = nil
	}
	b, ok := <-s.out
	if !ok {
		return nil, io.EOF
	}
	if b.err != nil {
		return nil, b.err
	}
	s.cur = b.recs
	return b.recs, nil
}

// Close stops the read-ahead goroutine and waits for it to exit, so the
// caller may close the underlying reader afterwards.
func (s *v2Source) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	for range s.out {
	}
	return nil
}

// chunkFrame is one parsed v2 chunk frame header: everything before the
// payload, plus the reader offsets decode errors must point at. A frame
// with terminator set marks the end of the chunk sequence (the footer
// index follows).
type chunkFrame struct {
	count      uint64
	codec      byte
	basePeriod uint64
	rawLen     uint64
	diskLen    uint64
	// basePeriodOff is the reader offset right after the base-period
	// varint — where the cross-chunk monotonicity error points. The
	// monotonicity check itself is the caller's: only a decoder that
	// consumes chunks in stream order knows the previous chunk's last
	// period.
	basePeriodOff int64
	// payloadStart is the reader offset of the first payload byte.
	payloadStart int64
	terminator   bool
}

// readChunkFrame parses the next chunk's frame header, validating every
// field against the decoder hard limits. It is shared by the serial
// decoder, the pipelined decoder's reader goroutine, the chunk-index
// scanner and the range source, so all of them reject corruption with
// identical errors.
func readChunkFrame(c *countingReader) (chunkFrame, error) {
	var f chunkFrame
	count, err := c.uvarint("chunk record count")
	if err != nil {
		return f, err
	}
	if count == 0 {
		f.terminator = true
		return f, nil
	}
	if count > maxChunkRecords {
		return f, fmt.Errorf("trace: offset %d: chunk of %d records exceeds limit %d: %w", c.off, count, maxChunkRecords, ErrCorrupt)
	}
	f.count = count
	codec, err := c.ReadByte()
	if err != nil {
		return f, c.fail("chunk codec", err)
	}
	if codec != codecRaw && codec != codecFlate {
		return f, fmt.Errorf("trace: offset %d: unknown chunk codec %d: %w", c.off, codec, ErrCorrupt)
	}
	f.codec = codec
	if f.basePeriod, err = c.uvarint("chunk base period"); err != nil {
		return f, err
	}
	f.basePeriodOff = c.off
	if f.rawLen, err = c.uvarint("chunk raw length"); err != nil {
		return f, err
	}
	if f.diskLen, err = c.uvarint("chunk disk length"); err != nil {
		return f, err
	}
	if f.rawLen > maxChunkBytes || f.diskLen > maxChunkBytes {
		return f, fmt.Errorf("trace: offset %d: chunk payload %d/%d bytes exceeds limit %d: %w", c.off, f.rawLen, f.diskLen, maxChunkBytes, ErrCorrupt)
	}
	if codec == codecRaw && f.rawLen != f.diskLen {
		return f, fmt.Errorf("trace: offset %d: raw chunk with disk length %d != raw length %d: %w", c.off, f.diskLen, f.rawLen, ErrCorrupt)
	}
	f.payloadStart = c.off
	return f, nil
}

// errBasePeriodBackwards renders the cross-chunk monotonicity violation for
// a frame, identically wherever in the pipeline it is detected.
func errBasePeriodBackwards(f chunkFrame, lastPeriod uint64) error {
	return fmt.Errorf("trace: offset %d: chunk base period goes backwards (%d < %d): %w", f.basePeriodOff, f.basePeriod, lastPeriod, ErrCorrupt)
}

// chunkDecoder holds the reusable per-decoder scratch state: the disk and
// raw buffers grow to the largest chunk and stay there, the inflater and
// its bytes.Reader reset in place, and the overrun scratch byte is hoisted,
// so the steady-state chunk loop performs no heap allocation at all (the
// zero-alloc CI guards pin this). Each concurrent decoder owns one.
type chunkDecoder struct {
	disk, raw []byte
	inflate   io.ReadCloser
	diskRd    bytes.Reader
	overrun   [1]byte
}

// readDisk reads the frame's on-disk payload into the decoder's reused
// disk buffer.
func (d *chunkDecoder) readDisk(c *countingReader, f chunkFrame) error {
	if uint64(cap(d.disk)) < f.diskLen {
		d.disk = make([]byte, f.diskLen)
	}
	d.disk = d.disk[:f.diskLen]
	if _, err := io.ReadFull(c, d.disk); err != nil {
		return c.fail("chunk payload", err)
	}
	return nil
}

// inflatePayload turns a frame's on-disk payload bytes into the raw chunk
// payload: returned as-is for raw chunks, inflated into the reused raw
// buffer for DEFLATE chunks.
func (d *chunkDecoder) inflatePayload(f chunkFrame, disk []byte) ([]byte, error) {
	if f.codec != codecFlate {
		return disk, nil
	}
	if uint64(cap(d.raw)) < f.rawLen {
		d.raw = make([]byte, f.rawLen)
	}
	d.raw = d.raw[:f.rawLen]
	d.diskRd.Reset(disk)
	if d.inflate == nil {
		d.inflate = flate.NewReader(&d.diskRd)
	} else if err := d.inflate.(flate.Resetter).Reset(&d.diskRd, nil); err != nil {
		return nil, fmt.Errorf("trace: offset %d: resetting inflater: %w", f.payloadStart, err)
	}
	if _, err := io.ReadFull(d.inflate, d.raw); err != nil {
		return nil, fmt.Errorf("trace: offset %d: inflating chunk: %w: %w", f.payloadStart, err, ErrCorrupt)
	}
	if n, _ := d.inflate.Read(d.overrun[:]); n != 0 {
		return nil, fmt.Errorf("trace: offset %d: chunk inflates past its declared %d bytes: %w", f.payloadStart, f.rawLen, ErrCorrupt)
	}
	return d.raw, nil
}

// run is the read-ahead loop. It owns the reader; it exits when the stream
// ends, on the first error, or when Close fires, and always closes out.
func (s *v2Source) run(c *countingReader) {
	defer close(s.out)
	var (
		recIndex   int
		lastPeriod uint64
		dec        chunkDecoder
		seenChunks []chunkIndexEntry
		lastOffs   = make([]uint64, len(s.h.areas))
	)
	if s.total >= 0 {
		seenChunks = make([]chunkIndexEntry, 0, s.total/DefaultChunkRecords+1)
	}
	emitErr := func(err error) {
		select {
		case s.out <- v2Batch{err: err}:
		case <-s.stop:
		}
	}
	for {
		f, err := readChunkFrame(c)
		if err != nil {
			emitErr(err)
			return
		}
		if f.terminator {
			emitErr(checkStreamFooter(c, seenChunks, recIndex))
			return
		}
		if f.basePeriod < lastPeriod {
			emitErr(errBasePeriodBackwards(f, lastPeriod))
			return
		}
		if err := dec.readDisk(c, f); err != nil {
			emitErr(err)
			return
		}
		payload, err := dec.inflatePayload(f, dec.disk)
		if err != nil {
			emitErr(err)
			return
		}

		var buf []Record
		select {
		case buf = <-s.free:
		case <-s.stop:
			return
		}
		clear(lastOffs)
		recs, last, err := decodeChunkPayload(payload, int(f.count), f.basePeriod, s.h.areas, lastOffs, buf, recIndex, f.payloadStart)
		if err != nil {
			emitErr(err)
			return
		}
		lastPeriod = last
		seenChunks = append(seenChunks, chunkIndexEntry{records: f.count, diskBytes: f.diskLen})
		recIndex += int(f.count)
		select {
		case s.out <- v2Batch{recs: recs}:
		case <-s.stop:
			return
		}
	}
}

// checkStreamFooter parses the trailing index and cross-checks it against
// what the sequential pass actually decoded. A clean match ends the stream
// with io.EOF.
func checkStreamFooter(c *countingReader, seen []chunkIndexEntry, totalRecs int) error {
	nChunks, err := c.uvarint("footer chunk count")
	if err != nil {
		return err
	}
	if nChunks != uint64(len(seen)) {
		return fmt.Errorf("trace: offset %d: footer indexes %d chunks, stream held %d: %w", c.off, nChunks, len(seen), ErrCorrupt)
	}
	for i := range seen {
		recs, err := c.uvarint(fmt.Sprintf("footer chunk %d records", i))
		if err != nil {
			return err
		}
		diskBytes, err := c.uvarint(fmt.Sprintf("footer chunk %d disk bytes", i))
		if err != nil {
			return err
		}
		if recs != seen[i].records || diskBytes != seen[i].diskBytes {
			return fmt.Errorf("trace: offset %d: footer chunk %d is (%d recs, %d B), stream held (%d, %d): %w",
				c.off, i, recs, diskBytes, seen[i].records, seen[i].diskBytes, ErrCorrupt)
		}
	}
	total, err := c.uvarint("footer total records")
	if err != nil {
		return err
	}
	if total != uint64(totalRecs) {
		return fmt.Errorf("trace: offset %d: footer says %d records, stream held %d: %w", c.off, total, totalRecs, ErrCorrupt)
	}
	if _, err := c.u32("footer length"); err != nil {
		return err
	}
	magic, err := c.u32("footer magic")
	if err != nil {
		return err
	}
	if magic != footerMagic {
		return fmt.Errorf("trace: offset %d: bad footer magic %#x: %w", c.off-4, magic, ErrCorrupt)
	}
	return io.EOF
}

// decodeChunkPayload decodes count records from one chunk's raw payload
// into buf (grown as needed), returning the record slice and the last
// period. lastOff must hold one zeroed slot per area; recBase and fileOff
// only feed error messages. The varint loop is hand-rolled: this is the
// replay pipeline's decode hot path, and one-byte varints (the common case
// for period deltas, tags and sizes) must not pay binary.Uvarint's full
// loop or a closure call per field.
// chunkFieldErr reports a malformed varint field. It is a plain function
// rather than a closure so the decode loop's byte cursor stays in a
// register instead of being spilled for capture.
func chunkFieldErr(fileOff int64, rec int, what string, pos int) error {
	return fmt.Errorf("trace: offset %d: record %d %s (chunk byte %d): %w",
		fileOff, rec, what, pos, ErrCorrupt)
}

func decodeChunkPayload(payload []byte, count int, basePeriod uint64, areas []Area, lastOff []uint64, buf []Record, recBase int, fileOff int64) ([]Record, uint64, error) {
	if cap(buf) < count {
		buf = make([]Record, count)
	}
	recs := buf[:count]
	nAreas := uint64(len(areas))
	lastPeriod := basePeriod
	pos := 0
	for i := 0; i < count; i++ {
		// Field 1: period delta.
		var v uint64
		if pos < len(payload) && payload[pos] < 0x80 {
			v = uint64(payload[pos])
			pos++
		} else {
			var n int
			if v, n = binary.Uvarint(payload[pos:]); n <= 0 {
				return nil, 0, chunkFieldErr(fileOff, recBase+i, "period delta", pos)
			} else {
				pos += n
			}
		}
		lastPeriod += v

		// Field 2: tag = area<<1 | op.
		if pos < len(payload) && payload[pos] < 0x80 {
			v = uint64(payload[pos])
			pos++
		} else {
			var n int
			if v, n = binary.Uvarint(payload[pos:]); n <= 0 {
				return nil, 0, chunkFieldErr(fileOff, recBase+i, "tag", pos)
			} else {
				pos += n
			}
		}
		area := v >> 1
		op := Op(v & 1)
		if area >= nAreas {
			return nil, 0, fmt.Errorf("trace: offset %d: record %d references area %d of %d: %w",
				fileOff, recBase+i, area, nAreas, ErrCorrupt)
		}

		// Field 3: zigzag offset delta.
		if pos < len(payload) && payload[pos] < 0x80 {
			v = uint64(payload[pos])
			pos++
		} else {
			var n int
			if v, n = binary.Uvarint(payload[pos:]); n <= 0 {
				return nil, 0, chunkFieldErr(fileOff, recBase+i, "offset delta", pos)
			} else {
				pos += n
			}
		}
		off := lastOff[area] + uint64(unzigzag(v))
		lastOff[area] = off

		// Field 4: size.
		if pos < len(payload) && payload[pos] < 0x80 {
			v = uint64(payload[pos])
			pos++
		} else {
			var n int
			if v, n = binary.Uvarint(payload[pos:]); n <= 0 {
				return nil, 0, chunkFieldErr(fileOff, recBase+i, "size", pos)
			} else {
				pos += n
			}
		}
		size := uint32(v)
		if v == 0 || v > uint64(^uint32(0)) {
			return nil, 0, chunkFieldErr(fileOff, recBase+i, "size (zero or oversized)", pos)
		}
		if end := off + uint64(size); end > areas[area].Size || end < off {
			return nil, 0, fmt.Errorf("trace: offset %d: record %d overruns area %q (%d+%d > %d): %w",
				fileOff, recBase+i, areas[area].Name, off, size, areas[area].Size, ErrCorrupt)
		}
		recs[i] = Record{
			Period: lastPeriod,
			Offset: off,
			Op:     op,
			Size:   size,
			Area:   uint32(area),
		}
	}
	if pos != len(payload) {
		return nil, 0, fmt.Errorf("trace: offset %d: chunk has %d trailing payload bytes after %d records: %w",
			fileOff, len(payload)-pos, count, ErrCorrupt)
	}
	return recs, lastPeriod, nil
}

type chunkIndexEntry struct {
	records   uint64
	diskBytes uint64
}

// StreamOptions tunes the v2 writer. The zero value is the default:
// DefaultChunkRecords per chunk, DEFLATE-compressed payloads.
type StreamOptions struct {
	// ChunkRecords caps records per chunk (0 = DefaultChunkRecords).
	ChunkRecords int
	// NoCompress stores chunk payloads raw. Decoding raw chunks is
	// cheaper; the on-disk image is a few times larger.
	NoCompress bool
}

// StreamWriter emits the v2 format incrementally: records go to disk as
// they are written, so a capture as large as the disk never materializes
// in memory. Close flushes the tail chunk and writes the footer index.
type StreamWriter struct {
	bw        *bufio.Writer
	areas     []Area
	chunkRecs int
	compress  bool

	payload    bytes.Buffer
	deflated   bytes.Buffer
	deflater   *flate.Writer
	count      int
	basePeriod uint64 // last period committed before the open chunk
	lastPeriod uint64
	lastOff    []uint64
	index      []chunkIndexEntry
	total      int
	writes     int
	scratch    [binary.MaxVarintLen64]byte
	closed     bool
}

// NewStreamWriter starts a v2 image on w with the given header. The areas
// must be final: the chunk encoder's per-area delta state is sized here.
func NewStreamWriter(w io.Writer, benchmark string, areas []Area, opt StreamOptions) (*StreamWriter, error) {
	if err := ValidateHeader(benchmark, areas); err != nil {
		return nil, err
	}
	if len(benchmark) > maxNameBytes {
		return nil, fmt.Errorf("trace: name %q too long", benchmark)
	}
	for _, a := range areas {
		if len(a.Name) > maxNameBytes {
			return nil, fmt.Errorf("trace: name %q too long", a.Name)
		}
	}
	chunkRecs := opt.ChunkRecords
	if chunkRecs <= 0 {
		chunkRecs = DefaultChunkRecords
	}
	if chunkRecs > maxChunkRecords {
		return nil, fmt.Errorf("trace: chunk size %d exceeds limit %d", chunkRecs, maxChunkRecords)
	}
	sw := &StreamWriter{
		bw:        bufio.NewWriterSize(w, 1<<16),
		areas:     append([]Area(nil), areas...),
		chunkRecs: chunkRecs,
		compress:  !opt.NoCompress,
		lastOff:   make([]uint64, len(areas)),
	}
	if err := sw.writeHeader(benchmark); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *StreamWriter) putU32(v uint32) error {
	binary.LittleEndian.PutUint32(sw.scratch[:4], v)
	_, err := sw.bw.Write(sw.scratch[:4])
	return err
}

func (sw *StreamWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(sw.scratch[:], v)
	_, err := sw.bw.Write(sw.scratch[:n])
	return err
}

func (sw *StreamWriter) putString(s string) error {
	if err := sw.bw.WriteByte(byte(len(s))); err != nil {
		return err
	}
	_, err := sw.bw.WriteString(s)
	return err
}

func (sw *StreamWriter) writeHeader(benchmark string) error {
	if err := sw.putU32(formatMagic); err != nil {
		return err
	}
	if err := sw.putU32(formatVer2); err != nil {
		return err
	}
	if err := sw.putString(benchmark); err != nil {
		return err
	}
	if err := sw.putUvarint(uint64(len(sw.areas))); err != nil {
		return err
	}
	for _, a := range sw.areas {
		if err := sw.putString(a.Name); err != nil {
			return err
		}
		if err := sw.putUvarint(a.Size); err != nil {
			return err
		}
		var flags byte
		if a.NVM {
			flags |= 1
		}
		if a.Write {
			flags |= 2
		}
		if err := sw.bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return nil
}

// Write appends one record, validating it against the header. Records must
// arrive in period order, exactly as a Validate-clean image would hold
// them.
func (sw *StreamWriter) Write(rec Record) error {
	if sw.closed {
		return errors.New("trace: write to closed stream writer")
	}
	if err := validateRecord(rec, sw.areas, sw.lastPeriod, sw.total); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		sw.payload.Write(tmp[:n])
	}
	put(rec.Period - sw.lastPeriod)
	sw.lastPeriod = rec.Period
	put(uint64(rec.Area)<<1 | uint64(rec.Op))
	put(zigzag(int64(rec.Offset - sw.lastOff[rec.Area])))
	sw.lastOff[rec.Area] = rec.Offset
	put(uint64(rec.Size))
	sw.count++
	sw.total++
	if rec.Op == Write {
		sw.writes++
	}
	if sw.count >= sw.chunkRecs {
		return sw.flushChunk()
	}
	return nil
}

// flushChunk commits the open chunk: frame header, (optionally deflated)
// payload, index entry; then resets the delta state for the next chunk.
func (sw *StreamWriter) flushChunk() error {
	if sw.count == 0 {
		return nil
	}
	rawLen := sw.payload.Len()
	codec := byte(codecRaw)
	out := sw.payload.Bytes()
	if sw.compress {
		sw.deflated.Reset()
		if sw.deflater == nil {
			var err error
			if sw.deflater, err = flate.NewWriter(&sw.deflated, flate.BestSpeed); err != nil {
				return err
			}
		} else {
			sw.deflater.Reset(&sw.deflated)
		}
		if _, err := sw.deflater.Write(out); err != nil {
			return err
		}
		if err := sw.deflater.Close(); err != nil {
			return err
		}
		// Keep the raw payload if deflate didn't help (tiny chunks).
		if sw.deflated.Len() < rawLen {
			codec = codecFlate
			out = sw.deflated.Bytes()
		}
	}
	if err := sw.putUvarint(uint64(sw.count)); err != nil {
		return err
	}
	if err := sw.bw.WriteByte(codec); err != nil {
		return err
	}
	if err := sw.putUvarint(sw.basePeriod); err != nil {
		return err
	}
	if err := sw.putUvarint(uint64(rawLen)); err != nil {
		return err
	}
	if err := sw.putUvarint(uint64(len(out))); err != nil {
		return err
	}
	if _, err := sw.bw.Write(out); err != nil {
		return err
	}
	sw.index = append(sw.index, chunkIndexEntry{records: uint64(sw.count), diskBytes: uint64(len(out))})
	sw.basePeriod = sw.lastPeriod
	sw.count = 0
	sw.payload.Reset()
	clear(sw.lastOff)
	return nil
}

// Close flushes the tail chunk, writes the terminator and footer index,
// and flushes the buffered writer. It does not close the underlying
// writer. Close is not idempotent-safe for further Writes.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.flushChunk(); err != nil {
		return err
	}
	if err := sw.putUvarint(0); err != nil {
		return err
	}
	var footer bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		footer.Write(tmp[:n])
	}
	put(uint64(len(sw.index)))
	for _, e := range sw.index {
		put(e.records)
		put(e.diskBytes)
	}
	put(uint64(sw.total))
	if _, err := sw.bw.Write(footer.Bytes()); err != nil {
		return err
	}
	if err := sw.putU32(uint32(footer.Len())); err != nil {
		return err
	}
	if err := sw.putU32(footerMagic); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// Count returns the records written so far.
func (sw *StreamWriter) Count() int { return sw.total }

// Mix reports the read/write percentages of the records written so far.
func (sw *StreamWriter) Mix() (readPct, writePct float64) {
	if sw.total == 0 {
		return 0, 0
	}
	writePct = 100 * float64(sw.writes) / float64(sw.total)
	return 100 - writePct, writePct
}

// EncodeV2 writes a materialized image in the v2 chunked format.
func EncodeV2(w io.Writer, img *Image, opt StreamOptions) error {
	if err := img.Validate(); err != nil {
		return err
	}
	sw, err := NewStreamWriter(w, img.Benchmark, img.Areas, opt)
	if err != nil {
		return err
	}
	for _, rec := range img.Records {
		if err := sw.Write(rec); err != nil {
			return err
		}
	}
	return sw.Close()
}

// CopyStream drains src into sink. It is the convert primitive: v1→v2
// re-encoding without materializing the trace.
func CopyStream(sink RecordSink, src RecordSource) (int, error) {
	n := 0
	for {
		batch, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		for _, rec := range batch {
			if err := sink.Write(rec); err != nil {
				return n, err
			}
			n++
		}
	}
}
