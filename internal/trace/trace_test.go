package trace

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Image {
	return &Image{
		Benchmark: "sample",
		Areas: []Area{
			{Name: "heap0", Size: 8192, NVM: true, Write: true},
			{Name: "stack", Size: 4096, Write: true},
		},
		Records: []Record{
			{Period: 1, Offset: 0, Op: Read, Size: 8, Area: 0},
			{Period: 2, Offset: 64, Op: Write, Size: 8, Area: 0},
			{Period: 2, Offset: 16, Op: Write, Size: 4, Area: 1},
			{Period: 9, Offset: 8000, Op: Read, Size: 64, Area: 0},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	img := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != img.Benchmark {
		t.Fatal("name lost")
	}
	for i := range img.Records {
		if got.Records[i] != img.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], img.Records[i])
		}
	}
	for i := range img.Areas {
		if got.Areas[i] != img.Areas[i] {
			t.Fatalf("area %d mismatch", i)
		}
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("op strings")
	}
}

func TestMix(t *testing.T) {
	img := sample()
	r, w := img.Mix()
	if r != 50 || w != 50 {
		t.Fatalf("mix %v/%v", r, w)
	}
	empty := &Image{Benchmark: "e", Areas: []Area{{Name: "a", Size: 4096}}}
	if r, w := empty.Mix(); r != 0 || w != 0 {
		t.Fatal("empty mix nonzero")
	}
}

func TestFootprint(t *testing.T) {
	if got := sample().Footprint(); got != 12288 {
		t.Fatalf("footprint %d", got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	img := sample()
	img.Records[0].Area = 99
	var buf bytes.Buffer
	if err := Encode(&buf, img); err == nil {
		t.Fatal("invalid image encoded")
	}
}

func TestEncodeLongNameRejected(t *testing.T) {
	img := sample()
	img.Areas[0].Name = string(make([]byte, 300))
	// Area overrun check happens first in Validate? The name length check
	// fires during encoding.
	var buf bytes.Buffer
	if err := Encode(&buf, img); err == nil {
		t.Fatal("300-byte name encoded")
	}
}

func TestDecodeTruncated(t *testing.T) {
	img := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated image at %d bytes decoded", cut)
		}
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	img := sample()
	var buf bytes.Buffer
	Encode(&buf, img)
	b := buf.Bytes()
	b[4] = 99 // version field
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestValidateAreaOverrun(t *testing.T) {
	img := sample()
	img.Records[0] = Record{Period: 1, Offset: 8190, Size: 8, Area: 0}
	if img.Validate() == nil {
		t.Fatal("overrun accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(offs []uint16, writes []bool) bool {
		img := &Image{Benchmark: "prop", Areas: []Area{{Name: "a", Size: 1 << 17, Write: true}}}
		for i, off := range offs {
			op := Read
			if i < len(writes) && writes[i] {
				op = Write
			}
			img.Records = append(img.Records, Record{
				Period: uint64(i + 1),
				Offset: uint64(off),
				Op:     op,
				Size:   4,
				Area:   0,
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Records) != len(img.Records) {
			return false
		}
		for i := range img.Records {
			if got.Records[i] != img.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeImageCompression(t *testing.T) {
	// Delta-encoded periods keep large sequential traces compact: under
	// ~8 bytes per record for this access pattern.
	img := &Image{Benchmark: "large", Areas: []Area{{Name: "a", Size: 1 << 20, Write: true}}}
	for i := 0; i < 100000; i++ {
		img.Records = append(img.Records, Record{
			Period: uint64(i),
			Offset: uint64(i*64) % (1 << 20),
			Op:     Op(i % 2),
			Size:   8,
			Area:   0,
		})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	if perRec := buf.Len() / len(img.Records); perRec > 8 {
		t.Fatalf("encoding too fat: %d bytes/record", perRec)
	}
	got, err := Decode(&buf)
	if err != nil || len(got.Records) != 100000 {
		t.Fatalf("large round trip: %v", err)
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 100 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestEncodeWriterError(t *testing.T) {
	img := sample()
	for i := 0; i < 1000; i++ {
		img.Records = append(img.Records, Record{Period: uint64(10 + i), Size: 8, Area: 0})
	}
	if err := Encode(&failingWriter{}, img); err == nil {
		t.Fatal("writer failure swallowed")
	}
}

func TestTextRoundTrip(t *testing.T) {
	img := sample()
	var buf bytes.Buffer
	if err := EncodeText(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != img.Benchmark || len(got.Areas) != len(img.Areas) {
		t.Fatal("headers lost")
	}
	for i := range img.Records {
		if got.Records[i] != img.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], img.Records[i])
		}
	}
}

func TestTextFormatTolerant(t *testing.T) {
	in := `
# a comment
benchmark demo

area heap 8192 1 1
# records
1 0 0 R 8
2 0 64 W 16
`
	img, err := DecodeText(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if img.Benchmark != "demo" || len(img.Records) != 2 || img.Records[1].Op != Write {
		t.Fatalf("parsed %+v", img)
	}
	if !img.Areas[0].NVM || !img.Areas[0].Write {
		t.Fatal("area flags lost")
	}
}

func TestTextFormatErrors(t *testing.T) {
	bad := []string{
		"benchmark a\narea h 4096 1 1\n1 0 0 X 8\n", // bad op
		"benchmark a\narea h 4096 1 1\n1 0 0 R\n",   // short record
		"benchmark a\narea h oops 1 1\n",            // bad size
		"benchmark a b c\n",                         // bad benchmark line
		"benchmark a\narea h 4096 1 1\n1 9 0 R 8\n", // bad area ref
		"benchmark a\narea h 4096 1 1\nx 0 0 R 8\n", // bad period
	}
	for i, in := range bad {
		if _, err := DecodeText(bytes.NewBufferString(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// goldenImage reconstructs the image stored in testdata/golden_v1.img. The
// file was written by the v1 encoder and is never regenerated: it stands in
// for images produced by prior releases.
func goldenImage() *Image {
	img := &Image{
		Benchmark: "golden",
		Areas: []Area{
			{Name: "heap0", Size: 65536, NVM: true, Write: true},
			{Name: "heap1", Size: 16384, NVM: true, Write: false},
			{Name: "stack.tid0", Size: 4096, Write: true},
		},
	}
	offs := []uint64{0, 1, 63, 64, 127, 128, 4095, 16383, 65528, 300, 70, 8}
	period := uint64(1)
	for i := 0; i < 64; i++ {
		area := uint32(i % 3)
		limit := img.Areas[area].Size
		off := offs[i%len(offs)] % (limit - 8)
		op := Read
		if area != 1 && i%3 == 0 {
			op = Write
		}
		period += uint64(i % 7)
		img.Records = append(img.Records, Record{
			Period: period, Offset: off, Op: op, Size: uint32(4 << (i % 3)), Area: area,
		})
	}
	return img
}

// TestGoldenV1Decodes pins backward compatibility: a v1 image written by a
// prior release must keep decoding bit-exactly, through both Decode and the
// streaming path.
func TestGoldenV1Decodes(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_v1.img")
	if err != nil {
		t.Fatal(err)
	}
	want := goldenImage()
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != want.Benchmark || len(got.Areas) != len(want.Areas) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range want.Areas {
		if got.Areas[i] != want.Areas[i] {
			t.Fatalf("area %d: %+v != %+v", i, got.Areas[i], want.Areas[i])
		}
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records: %d != %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], want.Records[i])
		}
	}
	// The v1 encoder must keep producing those exact bytes (images round
	// trip across releases in both directions).
	var reenc bytes.Buffer
	if err := Encode(&reenc, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), data) {
		t.Fatal("v1 encoder no longer reproduces the golden bytes")
	}
}

// TestDecodeErrorsDescriptive pins the error contract of the binary
// decoders: truncated or corrupt input yields an error naming the file
// offset and what was being read — never a silently short or zero-padded
// record list.
func TestDecodeErrorsDescriptive(t *testing.T) {
	img := sample()
	var v1buf bytes.Buffer
	if err := Encode(&v1buf, img); err != nil {
		t.Fatal(err)
	}
	v1 := v1buf.Bytes()
	mut := func(data []byte, off int, val byte) []byte {
		out := append([]byte(nil), data...)
		out[off] = val
		return out
	}
	// The full v1 header (magic, version, benchmark, area table) of
	// sample() spans 34 bytes; the record count varint follows.
	hugeCount := append([]byte(nil), v1[:34]...)
	hugeCount = append(hugeCount, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	cases := []struct {
		name string
		data []byte
		want []string // substrings the error must contain
	}{
		{"empty", nil, []string{"offset 0"}},
		{"magic only", v1[:4], []string{"offset", "version"}},
		{"bad magic", mut(v1, 0, 0xAA), []string{"offset 0", "magic"}},
		{"bad version", mut(v1, 4, 99), []string{"offset 4", "version"}},
		{"cut in benchmark name", v1[:10], []string{"offset", "benchmark"}},
		{"cut mid areas", v1[:16], []string{"offset"}},
		{"cut mid records", v1[:len(v1)-3], []string{"offset", "record"}},
		{"implausible record count", hugeCount, []string{"record count"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("decoded %d records from corrupt input", len(got.Records))
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// TestDecodeNoZeroTail guards the original bug class: a record stream that
// ends early must error, not fill the tail with zero-value records.
func TestDecodeNoZeroTail(t *testing.T) {
	img := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > len(full)-12; cut-- {
		got, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut %d: decoded without error", cut)
		}
		if got != nil {
			t.Fatalf("cut %d: returned image alongside error", cut)
		}
	}
}
