package trace

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Pipelined v2 decode: the chunked format's delta state resets at every
// chunk boundary, so chunks are independently decodable by design — the
// only serial work left in the stream is framing (chunk lengths sit in the
// frame headers) and ordering. v2PipelineSource exploits that:
//
//	reader ──jobs──▶ workers (decompress+decode) ──results──▶ emitter ──out──▶ Next
//
// One reader goroutine splits the stream into framed compressed chunks and
// hands them to a bounded worker pool; each worker owns its inflater and
// decode scratch and writes into a pooled record buffer; a reorder buffer
// in the emitter releases decoded batches strictly in chunk order, so the
// consumer sees the exact record sequence — and the exact error order —
// of the serial decoder. Buffers recycle through two fixed channels
// (compressed bytes, decoded records), preserving the zero-alloc steady
// state the CI guards pin.

// DecodeStats samples the pipelined decoder's progress and stall counters.
// Stalls localize the bottleneck: reorder stalls mean the emitter sat on
// out-of-order chunks waiting for a straggler decode (decode-bound; more
// workers or less compression helps), buffer stalls mean the reader waited
// for the consumer to hand record buffers back (replay-bound; the pipeline
// is keeping up). The monitor surfaces these as kindle_decode_* gauges.
type DecodeStats struct {
	// Workers is the decode pool size.
	Workers int
	// Chunks counts decoded chunks released to the consumer.
	Chunks uint64
	// ReorderStalls counts emitter waits with at least one out-of-order
	// chunk parked in the reorder buffer; ReorderStallNs is the time spent
	// in them.
	ReorderStalls  uint64
	ReorderStallNs uint64
	// BufferStalls counts reader waits for a free record buffer before
	// dispatching a chunk; BufferStallNs is the time spent in them.
	BufferStalls  uint64
	BufferStallNs uint64
}

// DecodeStatsSource is implemented by sources that can report pipelined-
// decode stall counters; sample with a type assertion. The serial decoder
// does not implement it (it has no pool to stall).
type DecodeStatsSource interface {
	DecodeStats() DecodeStats
}

// pipeJob is one framed compressed chunk travelling reader → worker. The
// reader attaches the pooled record buffer the worker will decode into:
// acquiring buffers in seq order is what makes the pipeline deadlock-free —
// the lowest undecoded chunk always already owns a buffer, so parked
// out-of-order results can never starve the chunk the emitter needs next.
type pipeJob struct {
	seq     int
	frame   chunkFrame
	disk    []byte
	buf     []Record
	recBase int // stream index of the chunk's first record (error text)
}

// pipeResult is one decoded chunk (or its error) travelling worker →
// emitter. terminal results come from the reader instead: the stream ended
// (err == io.EOF after a clean footer) or failed at frame level at this
// seq, and no results with a higher seq will ever arrive.
type pipeResult struct {
	seq        int
	frame      chunkFrame
	recs       []Record
	lastPeriod uint64
	err        error
	terminal   bool
}

// v2PipelineSource is the pipelined v2 decoder behind OpenStreamConfig for
// DecodeWorkers > 1.
type v2PipelineSource struct {
	h       *streamHeader
	total   int
	workers int

	out      chan v2Batch
	stop     chan struct{}
	jobs     chan pipeJob
	results  chan pipeResult
	diskFree chan []byte
	recFree  chan []Record

	cur       []Record
	closeOnce sync.Once
	wg        sync.WaitGroup

	chunks         atomic.Uint64
	reorderStalls  atomic.Uint64
	reorderStallNs atomic.Uint64
	bufferStalls   atomic.Uint64
	bufferStallNs  atomic.Uint64
}

// newPipelineSource starts the decode pipeline: one reader, workers
// decoders, one emitter. The reader owns c until the pipeline stops.
func newPipelineSource(c *countingReader, h *streamHeader, total, workers int) *v2PipelineSource {
	// Buffer accounting: every record buffer lives in exactly one place —
	// the free channel, a job in flight (the reader attaches buffers in seq
	// order), the emitter's park list or the consumer — so a free-channel
	// send never blocks and the park list (one slot past the buffer count)
	// never overflows. The compressed-payload buffers circulate reader →
	// worker the same way.
	nRecBufs := workers + 2
	s := &v2PipelineSource{
		h:        h,
		total:    total,
		workers:  workers,
		out:      make(chan v2Batch, 1),
		stop:     make(chan struct{}),
		jobs:     make(chan pipeJob, workers),
		results:  make(chan pipeResult, nRecBufs),
		diskFree: make(chan []byte, workers+2),
		recFree:  make(chan []Record, nRecBufs),
	}
	for i := 0; i < cap(s.diskFree); i++ {
		s.diskFree <- nil
	}
	for i := 0; i < nRecBufs; i++ {
		s.recFree <- nil
	}
	s.wg.Add(2 + workers)
	go s.readLoop(c)
	for i := 0; i < workers; i++ {
		go s.decodeLoop()
	}
	go s.emitLoop(nRecBufs)
	return s
}

func (s *v2PipelineSource) Benchmark() string { return s.h.benchmark }
func (s *v2PipelineSource) Areas() []Area     { return s.h.areas }
func (s *v2PipelineSource) Total() int        { return s.total }

func (s *v2PipelineSource) Next() ([]Record, error) {
	if s.cur != nil {
		s.recFree <- s.cur[:0] // pool-sized channel: never blocks
		s.cur = nil
	}
	b, ok := <-s.out
	if !ok {
		return nil, io.EOF
	}
	if b.err != nil {
		return nil, b.err
	}
	s.cur = b.recs
	return b.recs, nil
}

// Close stops every pipeline goroutine and waits for them all to exit, so
// the caller may close the underlying reader afterwards.
func (s *v2PipelineSource) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	for range s.out {
	}
	s.wg.Wait()
	return nil
}

// DecodeStats samples the stall counters; safe from any goroutine.
func (s *v2PipelineSource) DecodeStats() DecodeStats {
	return DecodeStats{
		Workers:        s.workers,
		Chunks:         s.chunks.Load(),
		ReorderStalls:  s.reorderStalls.Load(),
		ReorderStallNs: s.reorderStallNs.Load(),
		BufferStalls:   s.bufferStalls.Load(),
		BufferStallNs:  s.bufferStallNs.Load(),
	}
}

// readLoop owns the reader: it frames chunks (cheap — lengths are in the
// headers), reads their compressed payloads into pooled buffers and hands
// them to the workers. Frame-level failures and the end of the stream
// become the terminal result at the seq they occurred, so the emitter
// releases every earlier chunk first — identical error order to the
// serial decoder.
func (s *v2PipelineSource) readLoop(c *countingReader) {
	defer s.wg.Done()
	defer close(s.jobs)
	var seen []chunkIndexEntry
	if s.total >= 0 {
		seen = make([]chunkIndexEntry, 0, s.total/DefaultChunkRecords+1)
	}
	seq, recBase := 0, 0
	terminal := func(err error) {
		select {
		case s.results <- pipeResult{seq: seq, err: err, terminal: true}:
		case <-s.stop:
		}
	}
	for {
		f, err := readChunkFrame(c)
		if err != nil {
			terminal(err)
			return
		}
		if f.terminator {
			terminal(checkStreamFooter(c, seen, recBase))
			return
		}
		var disk []byte
		select {
		case disk = <-s.diskFree:
		case <-s.stop:
			return
		}
		if uint64(cap(disk)) < f.diskLen {
			disk = make([]byte, f.diskLen)
		}
		disk = disk[:f.diskLen]
		if _, err := io.ReadFull(c, disk); err != nil {
			// Carry the frame: the serial decoder checks base-period
			// monotonicity before reading the payload, so if this frame is
			// also backwards the emitter must surface that error instead.
			select {
			case s.results <- pipeResult{seq: seq, frame: f, err: c.fail("chunk payload", err), terminal: true}:
			case <-s.stop:
			}
			return
		}
		var buf []Record
		select {
		case buf = <-s.recFree:
		default:
			// Would block: decode is ahead of replay and every buffer is
			// downstream. Count the stall — it means the consumer, not the
			// decode pool, is the bottleneck.
			s.bufferStalls.Add(1)
			t0 := time.Now()
			select {
			case buf = <-s.recFree:
			case <-s.stop:
				return
			}
			s.bufferStallNs.Add(uint64(time.Since(t0)))
		}
		select {
		case s.jobs <- pipeJob{seq: seq, frame: f, disk: disk, buf: buf, recBase: recBase}:
		case <-s.stop:
			return
		}
		seen = append(seen, chunkIndexEntry{records: f.count, diskBytes: f.diskLen})
		recBase += int(f.count)
		seq++
	}
}

// decodeLoop is one pool worker: decompress into its own scratch, decode
// into a pooled record buffer, pass the result to the emitter. Decode
// errors ride the result — the emitter surfaces them in chunk order.
func (s *v2PipelineSource) decodeLoop() {
	defer s.wg.Done()
	var dec chunkDecoder
	lastOffs := make([]uint64, len(s.h.areas))
	for job := range s.jobs {
		res := pipeResult{seq: job.seq, frame: job.frame}
		payload, err := dec.inflatePayload(job.frame, job.disk)
		if err != nil {
			res.err = err
		} else {
			clear(lastOffs)
			res.recs, res.lastPeriod, res.err = decodeChunkPayload(
				payload, int(job.frame.count), job.frame.basePeriod,
				s.h.areas, lastOffs, job.buf, job.recBase, job.frame.payloadStart)
		}
		if res.err != nil {
			// Error results carry no records; recycle the job's buffer so
			// the reader never finds the pool short. The free channel holds
			// every buffer in existence, so this send cannot block.
			select {
			case s.recFree <- job.buf[:0]:
			default:
			}
		}
		// The decode read the disk buffer (directly for raw chunks), so it
		// goes back to the reader only now.
		select {
		case s.diskFree <- job.disk:
		default:
		}
		select {
		case s.results <- res:
		case <-s.stop:
			return
		}
	}
}

// emitLoop is the reorder buffer: it parks out-of-order results and
// releases batches to the consumer strictly by chunk seq, running the
// cross-chunk base-period monotonicity check the serial decoder does at
// frame-parse time. The park list is a fixed array scanned linearly — it
// can never overflow, because each parked success pins one of the nRecBufs
// pooled record buffers, decode errors dedup to the lowest seq (nothing
// past the first error in stream order is ever emitted, so later results
// are dropped and their buffers recycled), and the terminal result is held
// aside. Linear scans over ≤ nRecBufs+1 slots cost nothing next to a chunk
// decode.
func (s *v2PipelineSource) emitLoop(nRecBufs int) {
	defer s.wg.Done()
	defer close(s.out)
	parked := make([]pipeResult, nRecBufs+1)
	present := make([]bool, nRecBufs+1)
	nParked := 0
	next := 0
	var lastPeriod uint64
	var term, errRes pipeResult
	haveTerm, haveErr := false, false
	emit := func(b v2Batch) bool {
		select {
		case s.out <- b:
			return true
		case <-s.stop:
			return false
		}
	}
	take := func(seq int) (pipeResult, bool) {
		for i, ok := range present {
			if ok && parked[i].seq == seq {
				r := parked[i]
				present[i] = false
				parked[i] = pipeResult{}
				nParked--
				return r, true
			}
		}
		return pipeResult{}, false
	}
	park := func(r pipeResult) {
		for i, ok := range present {
			if !ok {
				parked[i] = r
				present[i] = true
				nParked++
				return
			}
		}
		// Unreachable by the buffer-pool accounting above; losing a result
		// would hang the consumer, so fail loudly instead.
		panic("trace: pipelined decode reorder buffer overflow")
	}
	for {
		// Release everything already in order.
		for {
			if haveErr && next == errRes.seq {
				if errRes.frame.basePeriod < lastPeriod {
					emit(v2Batch{err: errBasePeriodBackwards(errRes.frame, lastPeriod)})
				} else {
					emit(v2Batch{err: errRes.err})
				}
				return
			}
			if haveTerm && next == term.seq {
				switch {
				case term.frame.count > 0 && term.frame.basePeriod < lastPeriod:
					// The frame parsed but its payload read failed; the
					// serial decoder's monotonicity check runs first.
					emit(v2Batch{err: errBasePeriodBackwards(term.frame, lastPeriod)})
				case term.err != io.EOF:
					emit(v2Batch{err: term.err})
				}
				return
			}
			r, ok := take(next)
			if !ok {
				break
			}
			if r.frame.basePeriod < lastPeriod {
				emit(v2Batch{err: errBasePeriodBackwards(r.frame, lastPeriod)})
				return
			}
			lastPeriod = r.lastPeriod
			s.chunks.Add(1)
			if !emit(v2Batch{recs: r.recs}) {
				return
			}
			next++
		}
		// Wait for more results. Waiting while out-of-order chunks are
		// parked is a reorder stall: a straggler decode is head-of-line
		// blocking the consumer.
		var r pipeResult
		select {
		case r = <-s.results:
		default:
			if nParked > 0 {
				s.reorderStalls.Add(1)
				t0 := time.Now()
				select {
				case r = <-s.results:
				case <-s.stop:
					return
				}
				s.reorderStallNs.Add(uint64(time.Since(t0)))
			} else {
				select {
				case r = <-s.results:
				case <-s.stop:
					return
				}
			}
		}
		switch {
		case r.terminal:
			term, haveTerm = r, true
		case r.err != nil:
			// Only the lowest-seq error can ever surface; keep that one.
			if !haveErr || r.seq < errRes.seq {
				errRes, haveErr = r, true
			}
		case haveErr && r.seq > errRes.seq:
			// Past the first error in stream order: never emitted. Recycle
			// the buffer so Close never finds the pool short.
			select {
			case s.recFree <- r.recs[:0]:
			default:
			}
		default:
			park(r)
		}
	}
}
