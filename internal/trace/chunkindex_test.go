package trace

import (
	"bytes"
	"errors"
	"testing"
)

func TestScanChunkIndex(t *testing.T) {
	img := mkImage(1000)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 64}); err != nil {
		t.Fatal(err)
	}
	ix, err := ScanChunkIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Benchmark != img.Benchmark {
		t.Fatalf("benchmark %q", ix.Benchmark)
	}
	if len(ix.Areas) != len(img.Areas) {
		t.Fatalf("%d areas", len(ix.Areas))
	}
	wantChunks := (1000 + 63) / 64
	if len(ix.Chunks) != wantChunks {
		t.Fatalf("%d chunks, want %d", len(ix.Chunks), wantChunks)
	}
	if ix.Total != 1000 {
		t.Fatalf("Total = %d", ix.Total)
	}
	if ix.RangeTotal(0, len(ix.Chunks)) != 1000 {
		t.Fatalf("RangeTotal(full) = %d", ix.RangeTotal(0, len(ix.Chunks)))
	}
	// Chunk base periods must be the period preceding each chunk's first
	// record, i.e. the last period of the previous chunk.
	if ix.Chunks[0].BasePeriod != 0 {
		t.Fatalf("chunk 0 base period %d", ix.Chunks[0].BasePeriod)
	}
	for i := 1; i < len(ix.Chunks); i++ {
		want := img.Records[i*64-1].Period
		if ix.Chunks[i].BasePeriod != want {
			t.Fatalf("chunk %d base period %d, want %d", i, ix.Chunks[i].BasePeriod, want)
		}
	}
}

func TestScanChunkIndexRejectsV1(t *testing.T) {
	img := mkImage(10)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanChunkIndex(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 scan error = %v, want ErrCorrupt", err)
	}
}

func TestScanChunkIndexRejectsTruncation(t *testing.T) {
	img := mkImage(500)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 64}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ScanChunkIndex(bytes.NewReader(data[:len(data)-9])); err == nil {
		t.Fatal("truncated scan succeeded")
	}
}

func TestOpenRange(t *testing.T) {
	img := mkImage(1000)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 64}); err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(buf.Bytes())
	ix, err := ScanChunkIndex(rd)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{0, len(ix.Chunks)}, {0, 1}, {3, 7}, {len(ix.Chunks) - 1, len(ix.Chunks)}, {5, 5}} {
		lo, hi := tc[0], tc[1]
		src, err := ix.OpenRange(rd, lo, hi)
		if err != nil {
			t.Fatalf("OpenRange(%d, %d): %v", lo, hi, err)
		}
		got, err := drainAll(src)
		src.Close()
		if err != nil {
			t.Fatalf("range [%d, %d): %v", lo, hi, err)
		}
		want := img.Records[min(lo*64, 1000):min(hi*64, 1000)]
		if len(got) != len(want) {
			t.Fatalf("range [%d, %d): %d records, want %d", lo, hi, len(got), len(want))
		}
		if src.Total() != len(want) {
			t.Fatalf("range [%d, %d): Total %d, want %d", lo, hi, src.Total(), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range [%d, %d): record %d = %+v, want %+v", lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestOpenRangeRejectsBadRange(t *testing.T) {
	img := mkImage(100)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 64}); err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(buf.Bytes())
	ix, err := ScanChunkIndex(rd)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{-1, 1}, {0, len(ix.Chunks) + 1}, {2, 1}} {
		if _, err := ix.OpenRange(rd, tc[0], tc[1]); err == nil {
			t.Fatalf("OpenRange(%d, %d) succeeded", tc[0], tc[1])
		}
	}
}
