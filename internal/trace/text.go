package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format: a human-readable/ChampSim-interop rendering of a Kindle
// image. Unlike the binary disk-image format it can be produced by
// external tracers (or hand-written for debugging) and diffed in review.
//
// Layout:
//
//	# comment lines anywhere
//	benchmark <name>
//	area <name> <size> <nvm:0|1> <write:0|1>
//	...
//	<period> <area-index> <offset> <R|W> <size>
//	...
//
// Fields are space-separated; records follow all headers.

// EncodeText writes img in the text format.
func EncodeText(w io.Writer, img *Image) error {
	if err := img.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kindle trace v%d\n", formatVer)
	fmt.Fprintf(bw, "benchmark %s\n", img.Benchmark)
	for _, a := range img.Areas {
		fmt.Fprintf(bw, "area %s %d %d %d\n", a.Name, a.Size, b2i(a.NVM), b2i(a.Write))
	}
	for _, r := range img.Records {
		fmt.Fprintf(bw, "%d %d %d %s %d\n", r.Period, r.Area, r.Offset, r.Op, r.Size)
	}
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DecodeText parses the text format.
func DecodeText(r io.Reader) (*Image, error) {
	img := &Image{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "benchmark":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: benchmark wants one name", lineNo)
			}
			img.Benchmark = fields[1]
		case "area":
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: area wants 4 fields", lineNo)
			}
			size, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			img.Areas = append(img.Areas, Area{
				Name:  fields[1],
				Size:  size,
				NVM:   fields[3] == "1",
				Write: fields[4] == "1",
			})
		default:
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: record wants 5 fields", lineNo)
			}
			period, err := strconv.ParseUint(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: period: %w", lineNo, err)
			}
			area, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: area: %w", lineNo, err)
			}
			offset, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: offset: %w", lineNo, err)
			}
			var op Op
			switch fields[3] {
			case "R":
				op = Read
			case "W":
				op = Write
			default:
				return nil, fmt.Errorf("trace: line %d: op %q", lineNo, fields[3])
			}
			size, err := strconv.ParseUint(fields[4], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: size: %w", lineNo, err)
			}
			img.Records = append(img.Records, Record{
				Period: period,
				Area:   uint32(area),
				Offset: offset,
				Op:     op,
				Size:   uint32(size),
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
