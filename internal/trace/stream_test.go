package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"unsafe"
)

// mkImage builds a deterministic two-area image with n records mixing
// strided and pseudo-random offsets, period plateaus, and both ops.
func mkImage(n int) *Image {
	img := &Image{
		Benchmark: "stream",
		Areas: []Area{
			{Name: "heap0", Size: 1 << 24, NVM: true, Write: true},
			{Name: "stack", Size: 1 << 16, Write: true},
		},
	}
	var period uint64
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			period += uint64(i%5) + 1
		}
		rec := Record{
			Period: period,
			Op:     Op(i % 2),
			Size:   uint32(4 << (i % 4)),
			Area:   uint32(i % 2),
		}
		if rec.Area == 0 {
			rec.Offset = (uint64(i) * 2654435761) % (1<<24 - 64)
		} else {
			rec.Offset = uint64(i*8) % (1<<16 - 64)
		}
		img.Records = append(img.Records, rec)
	}
	return img
}

func drain(t *testing.T, src RecordSource) []Record {
	t.Helper()
	var out []Record
	for {
		batch, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("draining source: %v", err)
		}
		out = append(out, batch...)
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestV2RoundTrip(t *testing.T) {
	img := mkImage(1000)
	for _, tc := range []struct {
		name string
		opt  StreamOptions
	}{
		{"default", StreamOptions{}},
		{"raw", StreamOptions{NoCompress: true}},
		{"chunk1", StreamOptions{ChunkRecords: 1}},
		{"chunk7", StreamOptions{ChunkRecords: 7}},
		{"chunk1000", StreamOptions{ChunkRecords: 1000}}, // exact multiple
		{"chunk7raw", StreamOptions{ChunkRecords: 7, NoCompress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeV2(&buf, img, tc.opt); err != nil {
				t.Fatal(err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Benchmark != img.Benchmark {
				t.Fatalf("benchmark %q", got.Benchmark)
			}
			for i := range img.Areas {
				if got.Areas[i] != img.Areas[i] {
					t.Fatalf("area %d mismatch", i)
				}
			}
			sameRecords(t, got.Records, img.Records)
		})
	}
}

// TestV1V2Equivalence pins the satellite requirement: the same image
// encoded in both formats yields byte-wise identical records through
// RecordSource.
func TestV1V2Equivalence(t *testing.T) {
	img := mkImage(5000)
	var v1, v2 bytes.Buffer
	if err := Encode(&v1, img); err != nil {
		t.Fatal(err)
	}
	if err := EncodeV2(&v2, img, StreamOptions{ChunkRecords: 512}); err != nil {
		t.Fatal(err)
	}

	s1, err := OpenStream(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := OpenStream(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if s1.Benchmark() != s2.Benchmark() || len(s1.Areas()) != len(s2.Areas()) {
		t.Fatal("headers disagree")
	}
	if s1.Total() != len(img.Records) || s2.Total() != len(img.Records) {
		t.Fatalf("totals %d/%d, want %d", s1.Total(), s2.Total(), len(img.Records))
	}
	r1 := drain(t, s1)
	r2 := drain(t, s2)
	sameRecords(t, r1, r2)
	sameRecords(t, r1, img.Records)
}

func TestOpenStreamV1Batches(t *testing.T) {
	img := mkImage(3 * DefaultChunkRecords / 2) // forces two v1 batches
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sameRecords(t, drain(t, src), img.Records)
}

// nonSeeker hides the Seeker of a bytes.Reader, modelling a pipe.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestV2Total(t *testing.T) {
	img := mkImage(321)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 100}); err != nil {
		t.Fatal(err)
	}
	seekable, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer seekable.Close()
	if seekable.Total() != 321 {
		t.Fatalf("seekable total %d, want 321", seekable.Total())
	}
	piped, err := OpenStream(nonSeeker{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	defer piped.Close()
	if piped.Total() != -1 {
		t.Fatalf("piped total %d, want -1 (unknown)", piped.Total())
	}
	sameRecords(t, drain(t, piped), img.Records)
}

func TestV2ZeroRecords(t *testing.T) {
	img := &Image{Benchmark: "empty", Areas: []Area{{Name: "a", Size: 4096}}}
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 || got.Benchmark != "empty" {
		t.Fatalf("got %+v", got)
	}
}

func TestStreamWriterRejectsBadRecords(t *testing.T) {
	areas := []Area{{Name: "a", Size: 4096, Write: true}}
	cases := []struct {
		name string
		rec  Record
	}{
		{"bad area", Record{Period: 1, Area: 7, Size: 8}},
		{"zero size", Record{Period: 1, Area: 0, Size: 0}},
		{"overrun", Record{Period: 1, Area: 0, Offset: 4090, Size: 8}},
		{"bad op", Record{Period: 1, Area: 0, Size: 8, Op: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw, err := NewStreamWriter(&bytes.Buffer{}, "b", areas, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.Write(tc.rec); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	t.Run("period regression", func(t *testing.T) {
		sw, err := NewStreamWriter(&bytes.Buffer{}, "b", areas, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Write(Record{Period: 9, Area: 0, Size: 8}); err != nil {
			t.Fatal(err)
		}
		if err := sw.Write(Record{Period: 3, Area: 0, Size: 8}); err == nil {
			t.Fatal("backwards period accepted")
		}
	})
	t.Run("write after close", func(t *testing.T) {
		sw, err := NewStreamWriter(&bytes.Buffer{}, "b", areas, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sw.Write(Record{Period: 1, Area: 0, Size: 8}); err == nil {
			t.Fatal("write after close accepted")
		}
	})
}

func TestStreamWriterRejectsBadHeader(t *testing.T) {
	if _, err := NewStreamWriter(&bytes.Buffer{}, "", []Area{{Name: "a", Size: 1}}, StreamOptions{}); err == nil {
		t.Fatal("empty benchmark accepted")
	}
	if _, err := NewStreamWriter(&bytes.Buffer{}, "b", nil, StreamOptions{}); err == nil {
		t.Fatal("no areas accepted")
	}
	long := string(make([]byte, 300))
	if _, err := NewStreamWriter(&bytes.Buffer{}, long, []Area{{Name: "a", Size: 1}}, StreamOptions{}); err == nil {
		t.Fatal("long name accepted")
	}
}

// TestV2Truncation: every strict prefix of a v2 image must fail with a
// descriptive error — the trailing footer makes silent truncation
// impossible.
func TestV2Truncation(t *testing.T) {
	img := mkImage(300)
	for _, opt := range []StreamOptions{{ChunkRecords: 64}, {ChunkRecords: 64, NoCompress: true}} {
		var buf bytes.Buffer
		if err := EncodeV2(&buf, img, opt); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		for cut := 0; cut < len(full); cut++ {
			img2, err := Decode(bytes.NewReader(full[:cut]))
			if err == nil {
				t.Fatalf("prefix of %d/%d bytes decoded to %d records", cut, len(full), len(img2.Records))
			}
		}
	}
}

func TestV2CorruptFooter(t *testing.T) {
	img := mkImage(100)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 32}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xFF // footer magic
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt footer magic accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v not tagged ErrCorrupt", err)
	}

	// A wrong total in the footer must be caught by the cross-check. The
	// total is the last uvarint before the 8 trailing bytes; 100 encodes
	// as one byte.
	bad = append([]byte(nil), full...)
	bad[len(bad)-9] = 99
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong footer total accepted")
	}
}

func TestV2ErrorsNameOffsets(t *testing.T) {
	img := mkImage(50)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 16, NoCompress: true}); err != nil {
		t.Fatal(err)
	}
	_, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	if err == nil {
		t.Fatal("truncated image decoded")
	}
	if want := "offset "; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name a file offset", err)
	}
}

// TestReadAheadBufferReuse verifies the bounded-memory contract: however
// many chunks the stream holds, the decoder cycles through at most two
// record buffers.
func TestReadAheadBufferReuse(t *testing.T) {
	img := mkImage(640)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 64}); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	backing := map[*Record]bool{}
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		backing[&batch[:1][0]] = true
	}
	if len(backing) > 2 {
		t.Fatalf("decoder used %d distinct chunk buffers, want <= 2", len(backing))
	}
}

func TestCloseMidStream(t *testing.T) {
	img := mkImage(2000)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{ChunkRecords: 100}); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing again is fine.
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyStreamConvert(t *testing.T) {
	img := mkImage(700)
	var v1 bytes.Buffer
	if err := Encode(&v1, img); err != nil {
		t.Fatal(err)
	}
	src, err := OpenStream(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var v2 bytes.Buffer
	sw, err := NewStreamWriter(&v2, src.Benchmark(), src.Areas(), StreamOptions{ChunkRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CopyStream(sw, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(img.Records) || sw.Count() != n {
		t.Fatalf("copied %d (writer %d), want %d", n, sw.Count(), len(img.Records))
	}
	got, err := Decode(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got.Records, img.Records)
}

func TestStreamWriterMix(t *testing.T) {
	img := mkImage(100)
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, img.Benchmark, img.Areas, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range img.Records {
		if err := sw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	r1, w1 := img.Mix()
	r2, w2 := sw.Mix()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("writer mix %v/%v, image mix %v/%v", r2, w2, r1, w1)
	}
}

// TestV2Smaller pins the size win: on a strided trace the compressed v2
// image must be several times smaller than v1.
func TestV2Smaller(t *testing.T) {
	img := &Image{Benchmark: "large", Areas: []Area{{Name: "a", Size: 1 << 20, Write: true}}}
	for i := 0; i < 100000; i++ {
		img.Records = append(img.Records, Record{
			Period: uint64(i),
			Offset: uint64(i*64) % (1 << 20),
			Op:     Op(i % 2),
			Size:   8,
			Area:   0,
		})
	}
	var v1, v2 bytes.Buffer
	if err := Encode(&v1, img); err != nil {
		t.Fatal(err)
	}
	if err := EncodeV2(&v2, img, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if v2.Len()*2 >= v1.Len() {
		t.Fatalf("v2 %d bytes not at least 2x smaller than v1 %d bytes", v2.Len(), v1.Len())
	}
	got, err := Decode(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got.Records, img.Records)
}

func TestImageSource(t *testing.T) {
	img := mkImage(10)
	src := NewImageSource(img)
	if src.Total() != 10 || src.Benchmark() != img.Benchmark {
		t.Fatal("header lost")
	}
	sameRecords(t, drain(t, src), img.Records)
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF after drain", err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV2OffsetDeltaWrap exercises offsets whose per-area deltas exceed
// int64 range in magnitude (wraparound arithmetic must round-trip).
func TestV2OffsetDeltaWrap(t *testing.T) {
	img := &Image{
		Benchmark: "wrap",
		Areas:     []Area{{Name: "huge", Size: ^uint64(0) - 1, Write: true}},
		Records: []Record{
			{Period: 1, Offset: 0, Size: 8},
			{Period: 2, Offset: 1 << 63, Size: 8, Op: Write},
			{Period: 3, Offset: 5, Size: 8},
			{Period: 4, Offset: ^uint64(0) - 16, Size: 8, Op: Write},
		},
	}
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{NoCompress: true}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got.Records, img.Records)
}

func BenchmarkV2Decode(b *testing.B) {
	img := mkImage(200_000)
	for _, tc := range []struct {
		name string
		opt  StreamOptions
	}{
		{"flate", StreamOptions{}},
		{"raw", StreamOptions{NoCompress: true}},
	} {
		var buf bytes.Buffer
		if err := EncodeV2(&buf, img, tc.opt); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s_%.1fB/rec", tc.name, float64(buf.Len())/float64(len(img.Records))), func(b *testing.B) {
			b.SetBytes(int64(len(img.Records)))
			for i := 0; i < b.N; i++ {
				src, err := OpenStream(bytes.NewReader(buf.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					batch, err := src.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					n += len(batch)
				}
				src.Close()
				if n != len(img.Records) {
					b.Fatalf("decoded %d", n)
				}
			}
		})
	}
}

// TestStreamDecodeBoundedMemory pins the memory contract of the tentpole:
// draining a multi-million-record v2 stream must keep live heap growth
// bounded by a couple of chunks, while materializing the same image holds
// the full record slice. Skipped in -short runs (it allocates a 2M-record
// trace).
func TestStreamDecodeBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 2_000_000
	img := mkImage(n)
	var buf bytes.Buffer
	if err := EncodeV2(&buf, img, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	recordBytes := uint64(n) * uint64(unsafe.Sizeof(Record{}))
	img = nil

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	base := heap()
	src, err := OpenStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var peak uint64
	count := 0
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count += len(batch)
		if count%(1<<19) < DefaultChunkRecords {
			if h := heap(); h > peak {
				peak = h
			}
		}
	}
	src.Close()
	if count != n {
		t.Fatalf("streamed %d of %d records", count, n)
	}
	growth := peak - base
	t.Logf("streaming: peak live heap growth %d KiB over %d records (%d KiB materialized)",
		growth/1024, n, recordBytes/1024)
	// Two chunks of 64K records at 32 B/record is 4 MiB; allow decoder
	// scratch on top, but stay far under the 64 MiB record slice.
	if growth > recordBytes/4 {
		t.Fatalf("streaming held %d B live, more than 1/4 of the %d B record slice", growth, recordBytes)
	}

	mid := heap()
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	matGrowth := heap() - mid
	if len(got.Records) != n {
		t.Fatal("materialized decode lost records")
	}
	if matGrowth < recordBytes/2 {
		t.Fatalf("materialized decode held only %d B — measurement broken?", matGrowth)
	}
	t.Logf("materialized: live heap growth %d KiB", matGrowth/1024)
	runtime.KeepAlive(got)
}
