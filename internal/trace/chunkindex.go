package trace

import (
	"fmt"
	"io"
)

// Chunk-range access: sharded replay partitions a v2 image by chunk, so it
// needs the chunk boundaries up front (ScanChunkIndex) and a decoder that
// replays just a half-open chunk range (OpenRange). Both lean on the same
// frame parser and payload decoder as the streaming sources, so a range
// decode rejects corruption with identical errors.

// ChunkRef locates one chunk of a v2 image.
type ChunkRef struct {
	// Offset is the file offset of the chunk's frame header.
	Offset int64
	// Records is the chunk's record count.
	Records int
	// BasePeriod is the period preceding the chunk's first record — the
	// delta base its first record encodes against. A range replay starting
	// here seeds its period clock with it.
	BasePeriod uint64
}

// ChunkIndex is the scanned structure of a v2 image: the header plus every
// chunk's location. It indexes the file it was scanned from; chunk offsets
// are meaningless against any other stream.
type ChunkIndex struct {
	Benchmark string
	Areas     []Area
	Chunks    []ChunkRef
	// Total is the image's record count (the sum of Chunks[i].Records,
	// cross-checked against the footer).
	Total int
}

// discard skips n payload bytes, tracking the offset like Read does.
func (c *countingReader) discard(n int64, what string) error {
	m, err := c.r.Discard(int(n))
	c.off += int64(m)
	if err != nil {
		return c.fail(what, err)
	}
	return nil
}

// ScanChunkIndex walks a v2 image from the start, validating every chunk
// frame and the footer, and returns the chunk index. Payloads are skipped,
// not decoded, so a scan is an order of magnitude cheaper than a replay.
// The reader is left at an unspecified position.
func ScanChunkIndex(rs io.ReadSeeker) (*ChunkIndex, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("trace: seeking to header: %w", err)
	}
	c := newCountingReader(rs)
	h, err := readStreamHeader(c)
	if err != nil {
		return nil, err
	}
	if h.version != formatVer2 {
		return nil, fmt.Errorf("trace: chunk index requires a v2 image (version %d): %w", h.version, ErrCorrupt)
	}
	ix := &ChunkIndex{Benchmark: h.benchmark, Areas: h.areas}
	var seen []chunkIndexEntry
	for {
		off := c.off
		f, err := readChunkFrame(c)
		if err != nil {
			return nil, err
		}
		if f.terminator {
			if err := checkStreamFooter(c, seen, ix.Total); err != io.EOF {
				return nil, err
			}
			return ix, nil
		}
		if err := c.discard(int64(f.diskLen), "chunk payload"); err != nil {
			return nil, err
		}
		ix.Chunks = append(ix.Chunks, ChunkRef{
			Offset:     off,
			Records:    int(f.count),
			BasePeriod: f.basePeriod,
		})
		seen = append(seen, chunkIndexEntry{records: f.count, diskBytes: f.diskLen})
		ix.Total += int(f.count)
	}
}

// RangeTotal returns the record count of the chunk range [lo, hi).
func (ix *ChunkIndex) RangeTotal(lo, hi int) int {
	n := 0
	for _, ref := range ix.Chunks[lo:hi] {
		n += ref.Records
	}
	return n
}

// OpenRange returns a RecordSource decoding exactly the chunks [lo, hi) of
// the indexed image. rs must be the stream the index was scanned from; the
// source seeks it and owns its position until Close, which does not close
// rs. The source decodes synchronously on the caller's goroutine —
// sharded replay gets its concurrency from running many ranges at once,
// not from read-ahead inside one.
func (ix *ChunkIndex) OpenRange(rs io.ReadSeeker, lo, hi int) (RecordSource, error) {
	if lo < 0 || hi > len(ix.Chunks) || lo > hi {
		return nil, fmt.Errorf("trace: chunk range [%d, %d) outside image of %d chunks", lo, hi, len(ix.Chunks))
	}
	s := &v2RangeSource{ix: ix, next: lo, hi: hi, total: ix.RangeTotal(lo, hi)}
	if lo < hi {
		if _, err := rs.Seek(ix.Chunks[lo].Offset, io.SeekStart); err != nil {
			return nil, fmt.Errorf("trace: seeking to chunk %d: %w", lo, err)
		}
		s.c = newCountingReader(rs)
		s.c.off = ix.Chunks[lo].Offset
		s.lastPeriod = ix.Chunks[lo].BasePeriod
		s.lastOffs = make([]uint64, len(ix.Areas))
		for _, ref := range ix.Chunks[:lo] {
			s.recBase += ref.Records
		}
	}
	return s, nil
}

// v2RangeSource decodes one chunk per Next call from a seekable v2 image,
// reusing one record buffer; the batch is valid until the following Next,
// per the RecordSource contract.
type v2RangeSource struct {
	ix       *ChunkIndex
	c        *countingReader
	next, hi int
	total    int
	recBase  int

	dec        chunkDecoder
	lastOffs   []uint64
	buf        []Record
	lastPeriod uint64
}

func (s *v2RangeSource) Benchmark() string { return s.ix.Benchmark }
func (s *v2RangeSource) Areas() []Area     { return s.ix.Areas }
func (s *v2RangeSource) Total() int        { return s.total }
func (s *v2RangeSource) Close() error      { return nil }

func (s *v2RangeSource) Next() ([]Record, error) {
	if s.next >= s.hi {
		return nil, io.EOF
	}
	f, err := readChunkFrame(s.c)
	if err != nil {
		return nil, err
	}
	if f.terminator {
		return nil, fmt.Errorf("trace: offset %d: stream terminates inside chunk range [%d, %d): %w",
			s.c.off, s.next, s.hi, ErrCorrupt)
	}
	if f.basePeriod < s.lastPeriod {
		return nil, errBasePeriodBackwards(f, s.lastPeriod)
	}
	if err := s.dec.readDisk(s.c, f); err != nil {
		return nil, err
	}
	payload, err := s.dec.inflatePayload(f, s.dec.disk)
	if err != nil {
		return nil, err
	}
	clear(s.lastOffs)
	recs, last, err := decodeChunkPayload(payload, int(f.count), f.basePeriod,
		s.ix.Areas, s.lastOffs, s.buf, s.recBase, f.payloadStart)
	if err != nil {
		return nil, err
	}
	s.buf = recs
	s.lastPeriod = last
	s.recBase += int(f.count)
	s.next++
	return recs, nil
}
