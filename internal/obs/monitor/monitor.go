// Package monitor is Kindle's live-telemetry endpoint: an optional HTTP
// server that makes a running simulation observable while it is in flight,
// instead of only through post-mortem stats files and trace exports.
//
//	/metrics   Prometheus text exposition of every sim.Stats counter and
//	           log2 histogram (names 1:1 with the stats dump, modulo
//	           Prometheus name sanitization) plus process/host gauges.
//	/events    Server-sent events: interval-stats delta blocks and obs
//	           trace events, fanned out through bounded per-subscriber
//	           queues that drop-and-count rather than block the run.
//	/progress  JSON progress/ETA for the current run or bench grid.
//	/debug/pprof/  net/http/pprof, on the same mux.
//
// The monitor never pauses the simulation: counter and histogram values
// are read through sim's lock-cheap snapshot API (atomic loads of live
// cells). A mid-run scrape therefore observes values that are a few
// machine instructions stale and mutually skewed by the scrape's own
// duration — the standard contract for live monitoring counters (cf.
// /proc), not for the byte-exact end-of-run stats files, which are
// unaffected. With the monitor disabled nothing here runs: no goroutines,
// no extra atomics, no hot-path cost.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"kindle/internal/obs"
	"kindle/internal/sim"
)

// Options selects what the monitor serves. Every field is optional; an
// endpoint whose source is missing answers 404.
type Options struct {
	// Stats is the simulation's registry, exported at /metrics.
	Stats *sim.Stats
	// Hub is the live-telemetry fan-out behind /events.
	Hub *Hub
	// Progress supplies the /progress payload; the returned value is
	// marshaled as JSON on every request.
	Progress func() any
	// Gauges supplies extra /metrics gauges (name -> value); names are
	// sanitized but not prefixed.
	Gauges func() map[string]float64
}

// Server is one live monitor endpoint.
type Server struct {
	opt   Options
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Listen binds addr (host:port; port 0 picks a free one) and serves the
// monitor endpoints from a background goroutine. Close shuts it down.
func Listen(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	s := &Server{opt: opt, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, closing active SSE streams.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "kindle monitor\n\n/metrics\t\tPrometheus text exposition\n/events\t\t\tSSE: interval stat blocks + trace events (?queue=N)\n/progress\t\tJSON progress/ETA\n/debug/pprof/\tprofiling\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var extra map[string]float64
	if s.opt.Gauges != nil {
		extra = s.opt.Gauges()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := writeMetrics(w, s.opt.Stats, extra, time.Since(s.start).Seconds()); err != nil {
		// The response is already partially written; nothing to do but log
		// at the connection level (the client sees the truncation).
		return
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if s.opt.Progress == nil {
		http.Error(w, "no progress source attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.opt.Progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// sseEvent is the wire form of a trace event on /events.
type sseTraceEvent struct {
	Cat   string  `json:"cat"`
	Kind  string  `json:"kind"`
	Name  string  `json:"name"`
	TsNs  float64 `json:"ts_ns"`
	DurNs float64 `json:"dur_ns,omitempty"`
	Arg   string  `json:"arg,omitempty"`
	Val   uint64  `json:"val"`
}

type sseInterval struct {
	Index int    `json:"index"`
	Block string `json:"block"`
}

type sseDrops struct {
	Dropped uint64 `json:"dropped"`
}

func kindName(k obs.EventKind) string {
	switch k {
	case obs.KindSpan:
		return "span"
	case obs.KindCounter:
		return "counter"
	default:
		return "instant"
	}
}

// writeFrame renders one hub message as an SSE frame.
func writeFrame(w io.Writer, m Message) error {
	switch m.Kind {
	case KindInterval:
		data, err := json.Marshal(sseInterval{Index: m.Index, Block: string(m.Block)})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "event: interval\ndata: %s\n\n", data)
		return err
	case KindTrace:
		e := m.Event
		data, err := json.Marshal(sseTraceEvent{
			Cat:   e.Cat.String(),
			Kind:  kindName(e.Kind),
			Name:  e.Name,
			TsNs:  e.Ts.Nanos(),
			DurNs: e.Dur.Nanos(),
			Arg:   e.Arg,
			Val:   e.Val,
		})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "event: trace\ndata: %s\n\n", data)
		return err
	}
	return nil
}

// writeDropsFrame reports the subscriber's cumulative drop count.
func writeDropsFrame(w io.Writer, dropped uint64) error {
	data, _ := json.Marshal(sseDrops{Dropped: dropped})
	_, err := fmt.Fprintf(w, "event: drops\ndata: %s\n\n", data)
	return err
}

// handleEvents streams hub messages as server-sent events. ?queue=N sizes
// this subscriber's bounded queue (default DefaultSubscriberQueue); a
// subscriber that cannot keep up loses messages — the stream interleaves
// `drops` frames carrying the accurate cumulative count — and the
// simulation never blocks on it.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opt.Hub == nil {
		http.Error(w, "no event hub attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	queue := 0
	if q := r.URL.Query().Get("queue"); q != "" {
		if n, err := strconv.Atoi(q); err == nil {
			queue = n
		}
	}
	sub := s.opt.Hub.Subscribe(queue)
	defer s.opt.Hub.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	fmt.Fprint(w, ": kindle monitor event stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	var reportedDrops uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case m := <-sub.ch:
			if err := writeFrame(w, m); err != nil {
				return
			}
			if d := sub.Dropped(); d != reportedDrops {
				reportedDrops = d
				if err := writeDropsFrame(w, d); err != nil {
					return
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
