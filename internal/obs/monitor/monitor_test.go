package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"kindle/internal/obs"
	"kindle/internal/sim"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposesEveryDumpStat: every stat line of the end-of-run dump
// (counters, histogram ::samples/::min_value/::max_value and each log2
// bucket) has a 1:1 image in /metrics modulo Prometheus sanitization, and
// the whole exposition parses.
func TestMetricsExposesEveryDumpStat(t *testing.T) {
	stats := sim.NewStats()
	stats.Counter("cache.l1d.miss").Add(41)
	stats.Counter("nvm.write.drained").Add(7)
	stats.Counter("os.fault_demand").Add(3)
	h := stats.Hist("mem.lat.dram_read")
	for _, v := range []uint64{0, 1, 2, 5, 900} {
		h.Observe(v)
	}

	srv, err := Listen("127.0.0.1:0", Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if n, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid after %d samples: %v\n%s", n, err, body)
	}

	// Map each dump line onto the metric name it must appear under.
	for _, line := range strings.Split(strings.TrimSpace(stats.Dump("")), "\n") {
		name := strings.Fields(line)[0]
		var want string
		switch {
		case strings.HasSuffix(name, "::mean"):
			continue // float stat: carried by _sum/_count
		case strings.HasSuffix(name, "::samples"):
			want = "kindle_" + sanitizeMetricName(strings.TrimSuffix(name, "::samples")) + "_count "
		case strings.HasSuffix(name, "::min_value"):
			want = "kindle_" + sanitizeMetricName(strings.TrimSuffix(name, "::min_value")) + "_min_value "
		case strings.HasSuffix(name, "::max_value"):
			want = "kindle_" + sanitizeMetricName(strings.TrimSuffix(name, "::max_value")) + "_max_value "
		case strings.Contains(name, "::"):
			base, rng, _ := strings.Cut(name, "::")
			_, hi, _ := strings.Cut(rng, "-")
			want = fmt.Sprintf("kindle_%s_bucket{le=\"%s\"} ", sanitizeMetricName(base), hi)
		default:
			want = "kindle_" + sanitizeMetricName(name) + " "
		}
		if !strings.Contains(body, "\n"+want) && !strings.HasPrefix(body, want) {
			t.Errorf("dump stat %q has no exposition image (looked for %q)", name, want)
		}
	}
	// Quiescent registry: sampled values must equal the dump values.
	if !strings.Contains(body, "kindle_cache_l1d_miss 41") {
		t.Errorf("counter value not exported:\n%s", body)
	}
	if !strings.Contains(body, "kindle_mem_lat_dram_read_sum 908") {
		t.Errorf("histogram sum not exported")
	}
	// Process gauges ride along.
	if !strings.Contains(body, "kindle_process_goroutines ") {
		t.Errorf("process gauges missing")
	}
}

// TestMetricsExtraGauges: caller-provided gauges are rendered and
// sanitized.
func TestMetricsExtraGauges(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", Options{
		Gauges: func() map[string]float64 {
			return map[string]float64{"kindle_bench.tasks_done": 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "kindle_bench_tasks_done 3") {
		t.Fatalf("extra gauge missing:\n%s", body)
	}
	if _, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
}

// TestSSEStreamsIntervalsAndTraceEvents: an /events subscriber receives
// published interval blocks and trace events as SSE frames.
func TestSSEStreamsIntervalsAndTraceEvents(t *testing.T) {
	hub := NewHub()
	srv, err := Listen("127.0.0.1:0", Options{Hub: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/events?queue=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish only once the handler has registered its subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for hub.NumSubscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	block := "---------- Begin Simulation Statistics ----------\ninterval.index 1\n---------- End Simulation Statistics   ----------\n"
	hub.PublishInterval(1, []byte(block))
	hub.TraceEvent(obs.Event{Cat: obs.CatCheckpoint, Kind: obs.KindSpan, Name: "checkpoint", Ts: 3000, Dur: 1500, Arg: "slot", Val: 2})

	sc := bufio.NewScanner(resp.Body)
	var event string
	frames := map[string]string{}
	for sc.Scan() && len(frames) < 2 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			frames[event] = strings.TrimPrefix(line, "data: ")
		}
	}
	var iv sseInterval
	if err := json.Unmarshal([]byte(frames["interval"]), &iv); err != nil {
		t.Fatalf("interval frame %q: %v", frames["interval"], err)
	}
	if iv.Index != 1 || iv.Block != block {
		t.Fatalf("interval frame = %+v", iv)
	}
	var te sseTraceEvent
	if err := json.Unmarshal([]byte(frames["trace"]), &te); err != nil {
		t.Fatalf("trace frame %q: %v", frames["trace"], err)
	}
	if te.Cat != "checkpoint" || te.Kind != "span" || te.Name != "checkpoint" || te.Val != 2 || te.Arg != "slot" {
		t.Fatalf("trace frame = %+v", te)
	}

	// Disconnecting unsubscribes.
	resp.Body.Close()
	deadline = time.Now().Add(5 * time.Second)
	for hub.NumSubscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never unregistered after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProgressEndpoint: /progress marshals the source's snapshot; without
// a source it answers 404.
func TestProgressEndpoint(t *testing.T) {
	type snap struct {
		Done  int     `json:"done"`
		Total int     `json:"total"`
		Frac  float64 `json:"fraction"`
	}
	srv, err := Listen("127.0.0.1:0", Options{
		Progress: func() any { return snap{Done: 3, Total: 4, Frac: 0.75} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("GET /progress = %d", code)
	}
	var got snap
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got != (snap{3, 4, 0.75}) {
		t.Fatalf("progress = %+v", got)
	}

	bare, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ := get(t, "http://"+bare.Addr()+"/progress"); code != http.StatusNotFound {
		t.Fatalf("progress without source = %d, want 404", code)
	}
	if code, _ := get(t, "http://"+bare.Addr()+"/events"); code != http.StatusNotFound {
		t.Fatalf("events without hub = %d, want 404", code)
	}
}

// TestPprofMounted: the profiling endpoints share the monitor mux.
func TestPprofMounted(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
}

// TestMetricsEmptyHistogramFamilyComplete is the satellite pin: a
// registered histogram that has not observed a sample yet must still expose
// a complete family — _count 0, _sum 0, and a cumulative le series with a
// finite bucket — not degenerate to a bare +Inf mid-run.
func TestMetricsEmptyHistogramFamilyComplete(t *testing.T) {
	stats := sim.NewStats()
	stats.Hist("mem.lat.idle") // registered, never observed
	stats.Counter("x").Add(1)
	srv, err := Listen("127.0.0.1:0", Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := get(t, "http://"+srv.Addr()+"/metrics")
	for _, want := range []string{
		"kindle_mem_lat_idle_bucket{le=\"0\"} 0",
		"kindle_mem_lat_idle_bucket{le=\"+Inf\"} 0",
		"kindle_mem_lat_idle_sum 0",
		"kindle_mem_lat_idle_count 0",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("empty-histogram exposition missing %q:\n%s", want, body)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("empty-histogram exposition rejected: %v\n%s", err, body)
	}
}

// TestValidateExpositionHistogramCompleteness: the validator must fail on
// the omissions the empty-histogram bug used to produce — a family with no
// finite bucket, a missing _count/_sum, a +Inf disagreeing with _count, or
// a non-cumulative bucket series.
func TestValidateExpositionHistogramCompleteness(t *testing.T) {
	complete := `# TYPE kindle_h histogram
kindle_h_bucket{le="0"} 0
kindle_h_bucket{le="+Inf"} 0
kindle_h_sum 0
kindle_h_count 0
`
	if _, err := ValidateExposition(strings.NewReader(complete)); err != nil {
		t.Fatalf("complete empty family rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"no finite bucket": `# TYPE kindle_h histogram
kindle_h_bucket{le="+Inf"} 0
kindle_h_sum 0
kindle_h_count 0
`,
		"no +Inf bucket": `# TYPE kindle_h histogram
kindle_h_bucket{le="4"} 2
kindle_h_sum 5
kindle_h_count 2
`,
		"missing _count": `# TYPE kindle_h histogram
kindle_h_bucket{le="4"} 2
kindle_h_bucket{le="+Inf"} 2
kindle_h_sum 5
`,
		"+Inf disagrees with _count": `# TYPE kindle_h histogram
kindle_h_bucket{le="4"} 2
kindle_h_bucket{le="+Inf"} 2
kindle_h_sum 5
kindle_h_count 3
`,
		"non-cumulative buckets": `# TYPE kindle_h histogram
kindle_h_bucket{le="4"} 5
kindle_h_bucket{le="8"} 2
kindle_h_bucket{le="+Inf"} 2
kindle_h_sum 9
kindle_h_count 2
`,
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ValidateExposition accepted histogram family with %s", name)
		}
	}
}

// TestValidateExpositionRejectsGarbage: the validator is a real gate, not
// a rubber stamp.
func TestValidateExpositionRejectsGarbage(t *testing.T) {
	good := "# TYPE a counter\na 1\nb{le=\"2\"} 3\nc 1.5e3\n"
	if n, err := ValidateExposition(strings.NewReader(good)); err != nil || n != 3 {
		t.Fatalf("good exposition: n=%d err=%v", n, err)
	}
	for _, bad := range []string{
		"",                      // no samples
		"1metric 3\n",           // bad name
		"a b c\n",               // non-numeric value
		"a{unterminated 1\n",    // broken labels
		"# TYPE 9bad counter\n", // bad declaration
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Fatalf("ValidateExposition accepted %q", bad)
		}
	}
}
