package monitor

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strings"

	"kindle/internal/sim"
)

// metricPrefix namespaces every exported simulator stat.
const metricPrefix = "kindle_"

// sanitizeMetricName maps a dotted Kindle stat name onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: every disallowed rune
// becomes '_'. The mapping keeps names 1:1 for Kindle's stat vocabulary
// (dots and dashes are the only offenders in practice).
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeMetrics renders one Prometheus text-exposition (version 0.0.4)
// scrape: every registered counter and histogram of stats (read through
// the lock-cheap snapshot API — the simulation is never paused), the
// process/host gauges, and any caller-provided extra gauges.
func writeMetrics(w io.Writer, stats *sim.Stats, extra map[string]float64, uptimeSec float64) error {
	bw := bufio.NewWriter(w)

	if stats != nil {
		idx := stats.Registered()
		for _, c := range idx.Counters {
			name := metricPrefix + sanitizeMetricName(c.Name())
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Sample())
		}
		for _, h := range idx.Hists {
			hs := h.Sample()
			base := metricPrefix + sanitizeMetricName(h.Name())
			fmt.Fprintf(bw, "# TYPE %s histogram\n", base)
			bks := hs.Buckets()
			if len(bks) == 0 {
				// A histogram with no samples yet must still expose a
				// complete family: one finite bucket anchors the cumulative
				// `le` series at zero so scrapers never see the family
				// degenerate to a bare +Inf mid-run (registered-but-idle
				// stats are common early in a run).
				fmt.Fprintf(bw, "%s_bucket{le=\"0\"} 0\n", base)
			}
			var cum uint64
			for _, bk := range bks {
				cum += bk.Count
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", base, bk.Hi, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", base, hs.Count)
			fmt.Fprintf(bw, "%s_sum %d\n", base, hs.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", base, hs.Count)
			// The gem5 dump's ::min_value / ::max_value lines keep their own
			// series so the exposition stays 1:1 with the stats file.
			fmt.Fprintf(bw, "# TYPE %s_min_value gauge\n%s_min_value %d\n", base, base, hs.Min)
			fmt.Fprintf(bw, "# TYPE %s_max_value gauge\n%s_max_value %d\n", base, base, hs.Max)
		}
	}

	// Process/host gauges: enough to spot a wedged or thrashing run from
	// the scrape alone.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(bw, "kindle_process_uptime_seconds", uptimeSec)
	writeGauge(bw, "kindle_process_goroutines", float64(runtime.NumGoroutine()))
	writeGauge(bw, "kindle_process_gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	writeGauge(bw, "kindle_process_cpus", float64(runtime.NumCPU()))
	writeGauge(bw, "kindle_process_heap_alloc_bytes", float64(ms.HeapAlloc))
	writeGauge(bw, "kindle_process_sys_bytes", float64(ms.Sys))
	fmt.Fprintf(bw, "# TYPE kindle_process_gc_total counter\nkindle_process_gc_total %d\n", ms.NumGC)

	if len(extra) > 0 {
		names := make([]string, 0, len(extra))
		for k := range extra {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			writeGauge(bw, sanitizeMetricName(k), extra[k])
		}
	}
	return bw.Flush()
}

func writeGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
}

var (
	promCommentRe  = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$`)
	promSampleRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)(?: [0-9]+)?$`)
	promHistTypeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) histogram$`)
	promBucketRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="([0-9]+)"\} ([0-9]+)$`)
	promSumCountRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_(sum|count) ([0-9]+)$`)
)

// histFamily accumulates what ValidateExposition saw of one declared
// histogram family.
type histFamily struct {
	finite    int    // finite-le bucket samples
	lastCum   uint64 // last cumulative bucket value
	monotone  bool
	infSeen   bool
	infVal    uint64
	sumSeen   bool
	countSeen bool
	countVal  uint64
}

// ValidateExposition checks that r is well-formed Prometheus text
// exposition (format 0.0.4): every line is a comment, a HELP/TYPE
// declaration, blank, or a sample with a legal metric name, optional
// labels, and a numeric value. Every family declared `# TYPE ... histogram`
// must additionally be complete — at least one finite `le` bucket (an empty
// histogram exposes `le="0"` 0, never a bare +Inf), a +Inf bucket agreeing
// with `_count`, a `_sum`, and a cumulative non-decreasing bucket series.
// It returns the number of sample lines. This is the parser the monitor
// smoke test (and CI) gates /metrics with.
func ValidateExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	hists := map[string]*histFamily{}
	var histOrder []string
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
				if !promCommentRe.MatchString(line) {
					return samples, fmt.Errorf("monitor: exposition line %d: malformed declaration %q", lineNo, line)
				}
			}
			if m := promHistTypeRe.FindStringSubmatch(line); m != nil {
				if _, ok := hists[m[1]]; !ok {
					hists[m[1]] = &histFamily{monotone: true}
					histOrder = append(histOrder, m[1])
				}
			}
			continue
		default:
			if !promSampleRe.MatchString(line) {
				return samples, fmt.Errorf("monitor: exposition line %d: malformed sample %q", lineNo, line)
			}
			samples++
			if m := promBucketRe.FindStringSubmatch(line); m != nil {
				if f, ok := hists[m[1]]; ok {
					v := mustUint(m[3])
					if v < f.lastCum {
						f.monotone = false
					}
					f.lastCum = v
					f.finite++
				}
				continue
			}
			// +Inf buckets carry a non-integer label; match them apart.
			if i := strings.Index(line, "_bucket{le=\"+Inf\"} "); i > 0 {
				if f, ok := hists[line[:i]]; ok {
					f.infSeen = true
					f.infVal = mustUint(line[i+len(`_bucket{le="+Inf"} `):])
				}
				continue
			}
			if m := promSumCountRe.FindStringSubmatch(line); m != nil {
				if f, ok := hists[m[1]]; ok {
					if m[2] == "sum" {
						f.sumSeen = true
					} else {
						f.countSeen = true
						f.countVal = mustUint(m[3])
					}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("monitor: exposition contains no samples")
	}
	for _, name := range histOrder {
		f := hists[name]
		switch {
		case f.finite == 0:
			return samples, fmt.Errorf("monitor: histogram %s has no finite le bucket (empty histograms must expose le=\"0\")", name)
		case !f.infSeen:
			return samples, fmt.Errorf("monitor: histogram %s has no +Inf bucket", name)
		case !f.countSeen || !f.sumSeen:
			return samples, fmt.Errorf("monitor: histogram %s is missing _sum or _count", name)
		case f.infVal != f.countVal:
			return samples, fmt.Errorf("monitor: histogram %s +Inf bucket %d disagrees with _count %d", name, f.infVal, f.countVal)
		case !f.monotone || f.lastCum > f.infVal:
			return samples, fmt.Errorf("monitor: histogram %s bucket series is not cumulative", name)
		}
	}
	return samples, nil
}

func mustUint(s string) uint64 {
	var v uint64
	for i := 0; i < len(s); i++ {
		v = v*10 + uint64(s[i]-'0')
	}
	return v
}
