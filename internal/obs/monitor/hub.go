package monitor

import (
	"sync"
	"sync/atomic"

	"kindle/internal/obs"
)

// MessageKind distinguishes the live-telemetry message shapes the hub fans
// out to SSE subscribers.
type MessageKind uint8

const (
	// KindInterval carries one gem5-format interval-stats delta block.
	KindInterval MessageKind = iota
	// KindTrace carries one obs trace event.
	KindTrace
)

// Message is one unit of live telemetry. It is a plain value: fanning it
// out to subscriber channels copies it without allocating.
type Message struct {
	Kind MessageKind

	// Interval fields (KindInterval). Block is immutable once published.
	Index int
	Block []byte

	// Event is the trace event (KindTrace).
	Event obs.Event
}

// DefaultSubscriberQueue is the per-subscriber bounded queue depth used
// when Subscribe is given a non-positive size.
const DefaultSubscriberQueue = 1024

// Subscriber is one bounded fan-out queue. The hub never blocks on a
// subscriber: when its queue is full, new messages are dropped and
// counted, so a stalled SSE client can never stall the simulation.
type Subscriber struct {
	ch      chan Message
	dropped atomic.Uint64
}

// C is the receive side of the subscriber's queue.
func (s *Subscriber) C() <-chan Message { return s.ch }

// Dropped reports how many messages were discarded because this
// subscriber's queue was full when they were published.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Hub fans live telemetry out to any number of subscribers. Publishing is
// wait-free for the simulation goroutine: the subscriber list is an
// immutable slice behind an atomic pointer (copy-on-write on the rare
// subscribe/unsubscribe), and each delivery is a non-blocking channel send
// that drops-and-counts on overflow. With no subscribers a publish is one
// atomic load and a length check.
type Hub struct {
	mu   sync.Mutex // serializes subscribe/unsubscribe
	subs atomic.Pointer[[]*Subscriber]

	intervals atomic.Uint64 // interval blocks ever published
	events    atomic.Uint64 // trace events ever published
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// Subscribe registers a new subscriber with the given queue depth
// (DefaultSubscriberQueue when <= 0).
func (h *Hub) Subscribe(queue int) *Subscriber {
	if queue <= 0 {
		queue = DefaultSubscriberQueue
	}
	s := &Subscriber{ch: make(chan Message, queue)}
	h.mu.Lock()
	defer h.mu.Unlock()
	var next []*Subscriber
	if cur := h.subs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	h.subs.Store(&next)
	return s
}

// Unsubscribe removes a subscriber. Its channel is left open (a publish
// racing the removal may still deliver into it); the subscriber simply
// stops receiving afterwards.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.subs.Load()
	if cur == nil {
		return
	}
	next := make([]*Subscriber, 0, len(*cur))
	for _, have := range *cur {
		if have != s {
			next = append(next, have)
		}
	}
	h.subs.Store(&next)
}

// NumSubscribers reports the current subscriber count.
func (h *Hub) NumSubscribers() int {
	if cur := h.subs.Load(); cur != nil {
		return len(*cur)
	}
	return 0
}

// IntervalsPublished and EventsPublished report how many messages of each
// kind the hub has fanned out (delivered or dropped).
func (h *Hub) IntervalsPublished() uint64 { return h.intervals.Load() }
func (h *Hub) EventsPublished() uint64    { return h.events.Load() }

// publish fans m out to every subscriber without ever blocking.
func (h *Hub) publish(m Message) {
	subs := h.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		select {
		case s.ch <- m:
		default:
			s.dropped.Add(1)
		}
	}
}

// PublishInterval fans out one interval-stats delta block. The caller must
// not modify block after publishing (hand over a private copy).
func (h *Hub) PublishInterval(index int, block []byte) {
	h.intervals.Add(1)
	h.publish(Message{Kind: KindInterval, Index: index, Block: block})
}

// TraceEvent fans out one trace event; it satisfies obs.EventSink so a hub
// plugs directly into Tracer.SetSink. Called on the simulation goroutine
// for every recorded event — it must stay non-blocking and
// allocation-free, which Message-by-value delivery guarantees.
func (h *Hub) TraceEvent(e obs.Event) {
	h.events.Add(1)
	h.publish(Message{Kind: KindTrace, Event: e})
}
