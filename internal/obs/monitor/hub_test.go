package monitor

import (
	"testing"
	"time"

	"kindle/internal/obs"
	"kindle/internal/sim"
)

// TestStalledSubscriberDropsWithoutBlocking: a subscriber that never
// drains its queue loses exactly the overflow, with an accurate count,
// and publishing returns promptly instead of waiting on it.
func TestStalledSubscriberDropsWithoutBlocking(t *testing.T) {
	h := NewHub()
	stalled := h.Subscribe(4)
	const published = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < published; i++ {
			h.PublishInterval(i+1, []byte("block"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a stalled subscriber")
	}
	if got, want := stalled.Dropped(), uint64(published-4); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	if got := len(stalled.ch); got != 4 {
		t.Fatalf("queued = %d, want 4", got)
	}
	// The retained messages are the oldest four, in order.
	for i := 0; i < 4; i++ {
		m := <-stalled.ch
		if m.Kind != KindInterval || m.Index != i+1 {
			t.Fatalf("message %d = %+v", i, m)
		}
	}
	if h.IntervalsPublished() != published {
		t.Fatalf("IntervalsPublished = %d, want %d", h.IntervalsPublished(), published)
	}
}

// TestHubFanoutAndUnsubscribe: every subscriber gets every message;
// removal stops delivery without disturbing the others.
func TestHubFanoutAndUnsubscribe(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(16)
	b := h.Subscribe(16)
	if h.NumSubscribers() != 2 {
		t.Fatalf("NumSubscribers = %d, want 2", h.NumSubscribers())
	}
	clock := sim.NewClock()
	tr := obs.New(clock, 16, obs.CatMem)
	tr.SetSink(h)
	tr.Instant(obs.CatMem, "hit", "pa", 0x40)
	if len(a.ch) != 1 || len(b.ch) != 1 {
		t.Fatalf("fanout delivered %d/%d, want 1/1", len(a.ch), len(b.ch))
	}
	m := <-a.ch
	if m.Kind != KindTrace || m.Event.Name != "hit" || m.Event.Val != 0x40 {
		t.Fatalf("trace message = %+v", m)
	}
	h.Unsubscribe(a)
	h.PublishInterval(1, []byte("x"))
	if len(a.ch) != 0 {
		t.Fatal("unsubscribed subscriber still receives")
	}
	if len(b.ch) != 2 {
		t.Fatalf("remaining subscriber has %d queued, want 2", len(b.ch))
	}
	if h.EventsPublished() != 1 {
		t.Fatalf("EventsPublished = %d, want 1", h.EventsPublished())
	}
}

// TestPublishWithoutSubscribersIsCheapAndSafe: no subscribers, no panic,
// counters still advance.
func TestPublishWithoutSubscribersIsCheapAndSafe(t *testing.T) {
	h := NewHub()
	h.PublishInterval(1, nil)
	h.TraceEvent(obs.Event{Name: "x"})
	if h.IntervalsPublished() != 1 || h.EventsPublished() != 1 {
		t.Fatalf("publish counters = %d/%d", h.IntervalsPublished(), h.EventsPublished())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.TraceEvent(obs.Event{Name: "x", Val: 1})
	})
	if allocs != 0 {
		t.Fatalf("subscriber-less TraceEvent allocates %v per publish", allocs)
	}
}
