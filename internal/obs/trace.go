// Package obs is Kindle's observability layer: a low-overhead structured
// event tracer plus the exporters that make a whole simulation — ticks,
// checkpoints, crash, recovery — inspectable after the fact.
//
// The tracer is a fixed-capacity ring buffer of value-typed events, gated
// by a category bitmask. Hot paths guard emission with Enabled so a
// disabled tracer costs one nil/mask check and zero allocations; event
// names and argument labels are static strings, so emission itself does
// not allocate either (the ring slot is overwritten in place). When the
// ring fills, the oldest events are dropped — the tracer behaves as a
// flight recorder keeping the most recent window of the run.
//
// Exported traces use the Chrome trace-event JSON format, so a simulation
// opens directly in chrome://tracing or Perfetto (ui.perfetto.dev).
package obs

import (
	"fmt"
	"strings"

	"kindle/internal/sim"
)

// Category classifies trace events; the tracer records only categories
// present in its mask. Categories are bits so they compose.
type Category uint32

const (
	// CatMem covers DRAM/NVM device accesses behind the controller.
	CatMem Category = 1 << iota
	// CatCache covers cache-hierarchy misses and write-backs.
	CatCache
	// CatTLB covers TLB misses and shootdowns.
	CatTLB
	// CatPTWalk covers hardware page-table walks.
	CatPTWalk
	// CatCheckpoint covers persistence checkpoints and their phases.
	CatCheckpoint
	// CatRecovery covers post-crash recovery and its phases.
	CatRecovery
	// CatSyscall covers gemOS syscalls and page faults.
	CatSyscall

	// CatAll enables every category.
	CatAll Category = 1<<iota - 1
)

// categoryNames maps flag-spelling names to bits, in display order.
var categoryNames = []struct {
	name string
	bit  Category
}{
	{"mem", CatMem},
	{"cache", CatCache},
	{"tlb", CatTLB},
	{"ptwalk", CatPTWalk},
	{"checkpoint", CatCheckpoint},
	{"recovery", CatRecovery},
	{"syscall", CatSyscall},
}

// ParseCategories converts a comma-separated list ("mem,checkpoint",
// "all", "") into a category mask. The empty string yields zero
// (tracing disabled).
func ParseCategories(s string) (Category, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	var mask Category
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "all" {
			mask |= CatAll
			continue
		}
		found := false
		for _, cn := range categoryNames {
			if cn.name == part {
				mask |= cn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("obs: unknown trace category %q (have mem, cache, tlb, ptwalk, checkpoint, recovery, syscall, all)", part)
		}
	}
	return mask, nil
}

// String renders the mask as the comma-separated list ParseCategories
// accepts.
func (c Category) String() string {
	if c == 0 {
		return "none"
	}
	if c&CatAll == CatAll {
		return "all"
	}
	var parts []string
	for _, cn := range categoryNames {
		if c&cn.bit != 0 {
			parts = append(parts, cn.name)
		}
	}
	return strings.Join(parts, ",")
}

// name returns the single-category display name (first match).
func (c Category) name() string {
	for _, cn := range categoryNames {
		if c&cn.bit != 0 {
			return cn.name
		}
	}
	return "other"
}

// EventKind distinguishes the trace-event shapes the tracer records.
type EventKind uint8

const (
	// KindInstant is a point-in-time marker.
	KindInstant EventKind = iota
	// KindSpan is a duration event (start + length in cycles).
	KindSpan
	// KindCounter samples a named value over time.
	KindCounter
)

// Event is one recorded trace event. It is a plain value: copying it into
// the ring allocates nothing as long as Name/Arg are static strings.
type Event struct {
	Cat  Category
	Kind EventKind
	Name string
	Ts   sim.Cycles // start time
	Dur  sim.Cycles // span length (KindSpan only)
	Arg  string     // optional numeric-argument label ("" = none)
	Val  uint64     // argument / counter value
}

// Config selects tracer parameters when wiring a machine.
type Config struct {
	// Categories enables tracing for the masked categories; zero disables
	// tracing entirely (the machine keeps a nil tracer).
	Categories Category
	// BufferCap is the ring capacity in events (default 1<<16).
	BufferCap int
}

// DefaultBufferCap is the ring capacity used when Config.BufferCap is 0.
const DefaultBufferCap = 1 << 16

// EventSink receives a copy of every event the tracer records, in emission
// order, on the emitting (simulation) goroutine. Sinks power live fan-out —
// the monitor endpoint's SSE stream — and must never block: do bounded
// hand-off and drop-and-count, or the hot path stalls with them.
type EventSink interface {
	TraceEvent(Event)
}

// Tracer records events into a ring buffer. A nil *Tracer is a valid,
// permanently-disabled tracer: every method is nil-safe, so components
// hold a plain pointer and need no wiring when tracing is off.
type Tracer struct {
	mask  Category
	clock *sim.Clock
	ring  []Event
	head  uint64 // total events ever emitted
	sink  EventSink
}

// New builds a tracer over the machine clock. capacity <= 0 selects
// DefaultBufferCap; a zero mask records nothing but still accepts calls.
func New(clock *sim.Clock, capacity int, mask Category) *Tracer {
	if capacity <= 0 {
		capacity = DefaultBufferCap
	}
	return &Tracer{mask: mask, clock: clock, ring: make([]Event, capacity)}
}

// Enabled reports whether events of category c would be recorded. Hot
// paths call it before assembling event arguments.
func (t *Tracer) Enabled(c Category) bool {
	return t != nil && t.mask&c != 0
}

// SetSink installs (nil removes) a live event sink. Install before the run
// starts: the sink is read on the emission path without synchronization.
// A nil tracer ignores the call (there is nothing to stream).
func (t *Tracer) SetSink(s EventSink) {
	if t != nil {
		t.sink = s
	}
}

// emit stores e in the ring, overwriting the oldest event when full, and
// forwards it to the live sink when one is attached (one nil check when
// not — and emit only runs for enabled categories in the first place).
func (t *Tracer) emit(e Event) {
	t.ring[t.head%uint64(len(t.ring))] = e
	t.head++
	if t.sink != nil {
		t.sink.TraceEvent(e)
	}
}

// Instant records a point event at the current simulated time. arg may be
// "" when there is no numeric payload.
func (t *Tracer) Instant(c Category, name, arg string, val uint64) {
	if !t.Enabled(c) {
		return
	}
	t.emit(Event{Cat: c, Kind: KindInstant, Name: name, Ts: t.clock.Now(), Arg: arg, Val: val})
}

// Span records a duration event covering [start, start+dur).
func (t *Tracer) Span(c Category, name string, start, dur sim.Cycles, arg string, val uint64) {
	if !t.Enabled(c) {
		return
	}
	t.emit(Event{Cat: c, Kind: KindSpan, Name: name, Ts: start, Dur: dur, Arg: arg, Val: val})
}

// Counter samples a named value at the current simulated time (rendered
// as a counter track in the trace viewer).
func (t *Tracer) Counter(c Category, name string, val uint64) {
	if !t.Enabled(c) {
		return
	}
	t.emit(Event{Cat: c, Kind: KindCounter, Name: name, Ts: t.clock.Now(), Val: val})
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.head < uint64(len(t.ring)) {
		return int(t.head)
	}
	return len(t.ring)
}

// Cap reports the ring capacity in events.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped reports how many events were overwritten because the ring was
// full.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.head <= uint64(len(t.ring)) {
		return 0
	}
	return t.head - uint64(len(t.ring))
}

// Events returns the recorded events in emission order (oldest first).
// The returned slice is a copy; it is safe to keep across further
// emission.
func (t *Tracer) Events() []Event {
	if t == nil || t.head == 0 {
		return nil
	}
	n := uint64(len(t.ring))
	if t.head <= n {
		out := make([]Event, t.head)
		copy(out, t.ring[:t.head])
		return out
	}
	out := make([]Event, 0, n)
	start := t.head % n
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Mask returns the enabled-category mask.
func (t *Tracer) Mask() Category {
	if t == nil {
		return 0
	}
	return t.mask
}
