package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"kindle/internal/sim"
)

func TestParseCategories(t *testing.T) {
	cases := []struct {
		in   string
		want Category
		err  bool
	}{
		{"", 0, false},
		{"all", CatAll, false},
		{"mem", CatMem, false},
		{"mem,checkpoint", CatMem | CatCheckpoint, false},
		{" tlb , ptwalk ", CatTLB | CatPTWalk, false},
		{"bogus", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseCategories(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParseCategories(%q) err = %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseCategories(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestCategoryStringRoundTrip(t *testing.T) {
	for _, c := range []Category{CatMem, CatCache | CatRecovery, CatAll} {
		back, err := ParseCategories(c.String())
		if err != nil || back != c {
			t.Fatalf("round trip %v via %q: got %v err %v", c, c.String(), back, err)
		}
	}
	if Category(0).String() != "none" {
		t.Fatalf("zero mask renders %q", Category(0).String())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(CatMem) {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Instant(CatMem, "x", "", 0)
	tr.Span(CatMem, "x", 0, 1, "", 0)
	tr.Counter(CatMem, "x", 1)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Mask() != 0 {
		t.Fatal("nil tracer holds state")
	}
}

func TestCategoryGating(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 16, CatCheckpoint)
	tr.Instant(CatMem, "ignored", "", 0)
	tr.Instant(CatCheckpoint, "kept", "", 0)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (category gating)", tr.Len())
	}
	if evs := tr.Events(); evs[0].Name != "kept" {
		t.Fatalf("recorded %q", evs[0].Name)
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 4, CatAll)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for i, n := range names {
		clock.AdvanceTo(sim.Cycles(i))
		tr.Instant(CatMem, n, "", 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	want := []string{"c", "d", "e", "f"}
	for i, w := range want {
		if evs[i].Name != w {
			t.Fatalf("Events[%d] = %q, want %q (order %v)", i, evs[i].Name, w, evs)
		}
	}
}

func TestSpanAndCounterFields(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 8, CatAll)
	tr.Span(CatCheckpoint, "checkpoint", 100, 50, "slot", 3)
	clock.Advance(10)
	tr.Counter(CatMem, "wbuf", 42)
	evs := tr.Events()
	if evs[0].Kind != KindSpan || evs[0].Ts != 100 || evs[0].Dur != 50 || evs[0].Arg != "slot" || evs[0].Val != 3 {
		t.Fatalf("span fields: %+v", evs[0])
	}
	if evs[1].Kind != KindCounter || evs[1].Ts != 10 || evs[1].Val != 42 {
		t.Fatalf("counter fields: %+v", evs[1])
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 64, CatAll)
	tr.Span(CatCheckpoint, "checkpoint", 3000, 1500, "slot", 0)
	tr.Span(CatRecovery, "recovery", 6000, 3000, "", 0)
	tr.Instant(CatSyscall, "page_fault", "va", 0x4000)
	tr.Counter(CatMem, "nvm.wbuf", 7)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]map[string]any{}
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = e
	}
	ck, ok := byName["checkpoint"]
	if !ok {
		t.Fatalf("no checkpoint event in %v", byName)
	}
	if ck["ph"] != "X" {
		t.Fatalf("checkpoint ph = %v, want X", ck["ph"])
	}
	// 3000 cycles at 3 GHz = 1000 ns = 1 µs.
	if ck["ts"].(float64) != 1.0 {
		t.Fatalf("checkpoint ts = %v µs, want 1", ck["ts"])
	}
	if ck["dur"].(float64) != 0.5 {
		t.Fatalf("checkpoint dur = %v µs, want 0.5", ck["dur"])
	}
	if _, ok := byName["recovery"]; !ok {
		t.Fatal("no recovery span")
	}
	if pf := byName["page_fault"]; pf["ph"] != "i" {
		t.Fatalf("instant ph = %v", pf["ph"])
	}
	if c := byName["nvm.wbuf"]; c["ph"] != "C" {
		t.Fatalf("counter ph = %v", c["ph"])
	}
	// Lane metadata present.
	if _, ok := byName["process_name"]; !ok {
		t.Fatal("missing process_name metadata")
	}
}

// collectSink records forwarded events for the sink tests.
type collectSink struct{ events []Event }

func (s *collectSink) TraceEvent(e Event) { s.events = append(s.events, e) }

// TestSinkReceivesEmittedEvents: an attached sink sees exactly the events
// the ring records (category-gated, emission order), and detaching stops
// the forwarding.
func TestSinkReceivesEmittedEvents(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 4, CatCheckpoint|CatMem)
	sink := &collectSink{}
	tr.SetSink(sink)
	tr.Instant(CatTLB, "gated_out", "", 0)
	tr.Instant(CatMem, "a", "", 1)
	tr.Span(CatCheckpoint, "b", 10, 5, "slot", 2)
	// Wrap the tiny ring: the sink still sees every emission, not just the
	// retained window.
	for i := 0; i < 6; i++ {
		tr.Instant(CatMem, "wrap", "", uint64(i))
	}
	if got := len(sink.events); got != 8 {
		t.Fatalf("sink saw %d events, want 8", got)
	}
	if sink.events[0].Name != "a" || sink.events[1].Name != "b" || sink.events[1].Val != 2 {
		t.Fatalf("sink order/fields wrong: %+v", sink.events[:2])
	}
	tr.SetSink(nil)
	tr.Instant(CatMem, "after_detach", "", 0)
	if len(sink.events) != 8 {
		t.Fatal("detached sink still receives events")
	}
	var nilTr *Tracer
	nilTr.SetSink(sink) // must not panic
}

// TestWriteChromeDroppedMetadata: a wrapped ring exports a metadata event
// carrying the drop count; an unwrapped ring exports none.
func TestWriteChromeDroppedMetadata(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 4, CatAll)
	for i := 0; i < 9; i++ {
		tr.Instant(CatMem, "e", "", uint64(i))
	}
	if tr.Dropped() != 5 {
		t.Fatalf("Dropped = %d, want 5", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e["name"] == "kindle_tracer_dropped" {
			found = true
			args := e["args"].(map[string]any)
			if args["dropped_events"] != "5" {
				t.Fatalf("dropped_events = %v, want \"5\"", args["dropped_events"])
			}
		}
	}
	if !found {
		t.Fatal("wrapped ring exported no kindle_tracer_dropped metadata event")
	}

	fresh := New(clock, 16, CatAll)
	fresh.Instant(CatMem, "e", "", 0)
	buf.Reset()
	if err := fresh.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("kindle_tracer_dropped")) {
		t.Fatal("unwrapped ring exported a dropped metadata event")
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 1024, CatAll)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(CatMem, "dram.access", 10, 5, "pa", 0x1000)
		tr.Instant(CatTLB, "miss", "", 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled emit allocates %v per run", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nilTr.Span(CatMem, "dram.access", 10, 5, "pa", 0x1000)
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %v per run", allocs)
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	tr := New(sim.NewClock(), 1<<14, CatAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(CatMem, "dram.access", sim.Cycles(i), 5, "pa", uint64(i))
	}
}

func BenchmarkTracerNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(CatMem, "dram.access", sim.Cycles(i), 5, "pa", uint64(i))
	}
}
