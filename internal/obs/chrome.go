package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"kindle/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds of simulated time.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// chromeMeta is a metadata event naming a process or thread lane.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTrace is the top-level JSON object container.
type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

const chromePID = 1

// tidFor maps a category to a stable thread id so each category renders
// as its own lane in the viewer.
func tidFor(c Category) int {
	for i, cn := range categoryNames {
		if c&cn.bit != 0 {
			return i + 1
		}
	}
	return len(categoryNames) + 1
}

func cyclesToMicros(c sim.Cycles) float64 { return c.Nanos() / 1e3 }

// WriteChrome exports the recorded events as Chrome trace-event JSON.
// The output opens directly in chrome://tracing and Perfetto.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	raw := make([]json.RawMessage, 0, len(events)+len(categoryNames)+1)

	appendJSON := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		raw = append(raw, b)
		return nil
	}

	// Metadata: one process for the machine, one named lane per category.
	if err := appendJSON(chromeMeta{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]string{"name": "kindle"},
	}); err != nil {
		return err
	}
	for i, cn := range categoryNames {
		if err := appendJSON(chromeMeta{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: i + 1,
			Args: map[string]string{"name": cn.name},
		}); err != nil {
			return err
		}
	}
	// The ring is a flight recorder: when it wrapped, this export is the
	// most recent window, not the whole run. Say so inside the trace itself
	// so a shared JSON file carries the caveat along.
	if d := t.Dropped(); d > 0 {
		if err := appendJSON(chromeMeta{
			Name: "kindle_tracer_dropped", Ph: "M", PID: chromePID, TID: 0,
			Args: map[string]string{
				"dropped_events": fmt.Sprintf("%d", d),
				"note":           "ring buffer wrapped; oldest events overwritten — this trace is the most recent window of the run",
			},
		}); err != nil {
			return err
		}
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat.name(),
			Ts:   cyclesToMicros(e.Ts),
			PID:  chromePID,
			TID:  tidFor(e.Cat),
		}
		if e.Arg != "" {
			ce.Args = map[string]uint64{e.Arg: e.Val}
		}
		switch e.Kind {
		case KindSpan:
			ce.Ph = "X"
			ce.Dur = cyclesToMicros(e.Dur)
			// chrome://tracing drops zero-duration complete events; clamp
			// to a visible sliver (one cycle is below 1ns at 3 GHz).
			if ce.Dur == 0 {
				ce.Dur = 0.001
			}
		case KindCounter:
			ce.Ph = "C"
			ce.Args = map[string]uint64{"value": e.Val}
		default:
			ce.Ph = "i"
			ce.Scope = "p" // process-scoped instant
		}
		if err := appendJSON(ce); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: raw, DisplayTimeUnit: "ns"})
}
