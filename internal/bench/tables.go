package bench

import (
	"fmt"
	"strings"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/mem"
)

// TableIResult echoes the machine configuration (the paper's Table I).
type TableIResult struct {
	Rows [][2]string
}

// TableI renders the active memory configuration.
func TableI() *TableIResult {
	cfg := machine.DefaultConfig()
	return &TableIResult{Rows: [][2]string{
		{"DRAM interface", "DDR4-2400 16x4"},
		{"NVM interface", "PCM"},
		{"NVM Write buffer size", fmt.Sprintf("%d", cfg.NVM.WriteBuf)},
		{"NVM Read buffer size", fmt.Sprintf("%d", cfg.NVM.ReadBuf)},
		{"Memory capacity", fmt.Sprintf("%dGB DRAM + %dGB NVM",
			cfg.Layout.DRAMSize/mem.GiB, cfg.Layout.NVMSize/mem.GiB)},
		{"CPU", "in-order x86-64 @ 3GHz"},
		{"Caches", fmt.Sprintf("%dKB L1 / %dKB L2 / %dMB LLC",
			cfg.Caches.L1.Size/mem.KiB, cfg.Caches.L2.Size/mem.KiB, cfg.Caches.LLC.Size/mem.MiB)},
	}}
}

// Render prints Table I.
func (r *TableIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table I: gem5 memory configuration\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %s\n", row[0], row[1])
	}
	return b.String()
}

// CheckShape verifies the configuration matches the paper.
func (r *TableIResult) CheckShape() error {
	want := map[string]string{
		"NVM Write buffer size": "48",
		"NVM Read buffer size":  "64",
		"Memory capacity":       "3GB DRAM + 2GB NVM",
	}
	got := map[string]string{}
	for _, row := range r.Rows {
		got[row[0]] = row[1]
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("tableI: %s = %q, want %q", k, got[k], v)
		}
	}
	return nil
}

// TableIIRow is one benchmark's trace statistics.
type TableIIRow struct {
	Benchmark string
	TotalOps  int
	ReadPct   float64
	WritePct  float64
}

// TableIIResult is Table II: benchmark details.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII regenerates the benchmark-details table by tracing each
// application at the requested scale.
func TableII(opt Options) (*TableIIResult, error) {
	res := &TableIIResult{}
	for _, b := range []string{core.BenchPageRank, core.BenchSSSP, core.BenchYCSB} {
		img, err := workloadImage(b, opt)
		if err != nil {
			return nil, err
		}
		r, w := img.Mix()
		res.Rows = append(res.Rows, TableIIRow{
			Benchmark: b,
			TotalOps:  len(img.Records),
			ReadPct:   r,
			WritePct:  w,
		})
	}
	return res, nil
}

// Render prints Table II.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table II: benchmark details\n")
	b.WriteString("Benchmark    Total Ops   read %   write %\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %10d %8.0f %9.0f\n", row.Benchmark, row.TotalOps, row.ReadPct, row.WritePct)
	}
	return b.String()
}

// CheckShape verifies the traced mixes match the paper's Table II within
// two percentage points.
func (r *TableIIResult) CheckShape() error {
	want := map[string]float64{
		core.BenchPageRank: 77,
		core.BenchSSSP:     68,
		core.BenchYCSB:     71,
	}
	for _, row := range r.Rows {
		w, ok := want[row.Benchmark]
		if !ok {
			return fmt.Errorf("tableII: unexpected benchmark %q", row.Benchmark)
		}
		if diff := row.ReadPct - w; diff > 2 || diff < -2 {
			return fmt.Errorf("tableII: %s read%% = %.1f, want %.0f±2", row.Benchmark, row.ReadPct, w)
		}
	}
	return nil
}

// Experiment is the common surface of every table/figure reproduction.
type Experiment interface {
	Render() string
	CheckShape() error
}

// Results bundles a full run of the evaluation.
type Results struct {
	TableI   *TableIResult
	TableII  *TableIIResult
	Fig4a    *Fig4aResult
	Fig4b    *Fig4bResult
	TableIII *TableIIIResult
	TableIV  *TableIVResult
	Fig5     *Fig5Result
	TableV   *TableVResult
	Fig6     *Fig6Result
	TableVI  *TableVIResult

	// Intervals is the observability addition: per-dump-window counter
	// deltas over a checkpointed run (not a paper table).
	Intervals *IntervalsResult
}

// All returns the experiments in paper order.
func (r *Results) All() []Experiment {
	return []Experiment{r.TableI, r.TableII, r.Fig4a, r.Fig4b, r.TableIII, r.TableIV,
		r.Fig5, r.TableV, r.Fig6, r.TableVI, r.Intervals}
}

// Render prints everything.
func (r *Results) Render() string {
	var b strings.Builder
	for _, e := range r.All() {
		b.WriteString(e.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// CheckShapes validates every experiment, collecting all failures.
func (r *Results) CheckShapes() error {
	var errs []string
	for _, e := range r.All() {
		if err := e.CheckShape(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("shape check failures:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// RunAll reproduces the complete evaluation. progress (optional) receives a
// line per completed experiment.
func RunAll(opt Options, progress func(string)) (*Results, error) {
	note := func(s string) {
		if progress != nil {
			progress(s)
		}
	}
	res := &Results{TableI: TableI()}
	note("Table I done")
	var err error
	if res.TableII, err = TableII(opt); err != nil {
		return nil, err
	}
	note("Table II done")
	if res.Fig4a, err = Fig4a(opt); err != nil {
		return nil, err
	}
	note("Figure 4a done")
	if res.Fig4b, err = Fig4b(opt); err != nil {
		return nil, err
	}
	note("Figure 4b done")
	if res.TableIII, err = TableIII(opt); err != nil {
		return nil, err
	}
	note("Table III done")
	if res.TableIV, err = TableIV(opt); err != nil {
		return nil, err
	}
	note("Table IV done")
	if res.Fig5, err = Fig5(opt); err != nil {
		return nil, err
	}
	note("Figure 5 done")
	if res.TableV, res.Fig6, res.TableVI, err = HSCCAll(opt); err != nil {
		return nil, err
	}
	note("Table V / Figure 6 / Table VI done")
	if res.Intervals, err = Intervals(opt); err != nil {
		return nil, err
	}
	note("Interval stats done")
	return res, nil
}
