package bench

import (
	"fmt"
	"strings"
	"sync"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/mem"
)

// TableIResult echoes the machine configuration (the paper's Table I).
type TableIResult struct {
	Rows [][2]string
}

// TableI renders the active memory configuration.
func TableI() *TableIResult {
	cfg := machine.DefaultConfig()
	return &TableIResult{Rows: [][2]string{
		{"DRAM interface", "DDR4-2400 16x4"},
		{"NVM interface", "PCM"},
		{"NVM Write buffer size", fmt.Sprintf("%d", cfg.NVM.WriteBuf)},
		{"NVM Read buffer size", fmt.Sprintf("%d", cfg.NVM.ReadBuf)},
		{"Memory capacity", fmt.Sprintf("%dGB DRAM + %dGB NVM",
			cfg.Layout.DRAMSize/mem.GiB, cfg.Layout.NVMSize/mem.GiB)},
		{"CPU", "in-order x86-64 @ 3GHz"},
		{"Caches", fmt.Sprintf("%dKB L1 / %dKB L2 / %dMB LLC",
			cfg.Caches.L1.Size/mem.KiB, cfg.Caches.L2.Size/mem.KiB, cfg.Caches.LLC.Size/mem.MiB)},
	}}
}

// Render prints Table I.
func (r *TableIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table I: gem5 memory configuration\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %s\n", row[0], row[1])
	}
	return b.String()
}

// CheckShape verifies the configuration matches the paper.
func (r *TableIResult) CheckShape() error {
	want := map[string]string{
		"NVM Write buffer size": "48",
		"NVM Read buffer size":  "64",
		"Memory capacity":       "3GB DRAM + 2GB NVM",
	}
	got := map[string]string{}
	for _, row := range r.Rows {
		got[row[0]] = row[1]
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("tableI: %s = %q, want %q", k, got[k], v)
		}
	}
	return nil
}

// TableIIRow is one benchmark's trace statistics.
type TableIIRow struct {
	Benchmark string
	TotalOps  int
	ReadPct   float64
	WritePct  float64
}

// TableIIResult is Table II: benchmark details.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII regenerates the benchmark-details table by tracing each
// application at the requested scale. The three traces are independent, so
// they run across the worker pool.
func TableII(opt Options) (*TableIIResult, error) {
	benchmarks := []string{core.BenchPageRank, core.BenchSSSP, core.BenchYCSB}
	res := &TableIIResult{Rows: make([]TableIIRow, len(benchmarks))}
	label := func(i int) string { return "tableII/" + benchmarks[i] }
	err := forEachTask(opt, len(benchmarks), label, func(i int) error {
		img, err := workloadImage(benchmarks[i], opt)
		if err != nil {
			return err
		}
		r, w := img.Mix()
		res.Rows[i] = TableIIRow{
			Benchmark: benchmarks[i],
			TotalOps:  len(img.Records),
			ReadPct:   r,
			WritePct:  w,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints Table II.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table II: benchmark details\n")
	b.WriteString("Benchmark    Total Ops   read %   write %\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %10d %8.0f %9.0f\n", row.Benchmark, row.TotalOps, row.ReadPct, row.WritePct)
	}
	return b.String()
}

// CheckShape verifies the traced mixes match the paper's Table II within
// two percentage points.
func (r *TableIIResult) CheckShape() error {
	want := map[string]float64{
		core.BenchPageRank: 77,
		core.BenchSSSP:     68,
		core.BenchYCSB:     71,
	}
	for _, row := range r.Rows {
		w, ok := want[row.Benchmark]
		if !ok {
			return fmt.Errorf("tableII: unexpected benchmark %q", row.Benchmark)
		}
		if diff := row.ReadPct - w; diff > 2 || diff < -2 {
			return fmt.Errorf("tableII: %s read%% = %.1f, want %.0f±2", row.Benchmark, row.ReadPct, w)
		}
	}
	return nil
}

// Experiment is the common surface of every table/figure reproduction.
type Experiment interface {
	Render() string
	CheckShape() error
}

// Results bundles a full run of the evaluation.
type Results struct {
	TableI   *TableIResult
	TableII  *TableIIResult
	Fig4a    *Fig4aResult
	Fig4b    *Fig4bResult
	TableIII *TableIIIResult
	TableIV  *TableIVResult
	Fig5     *Fig5Result
	TableV   *TableVResult
	Fig6     *Fig6Result
	TableVI  *TableVIResult

	// Intervals is the observability addition: per-dump-window counter
	// deltas over a checkpointed run (not a paper table).
	Intervals *IntervalsResult
	// ImageSizes compares v1 vs v2 disk-image sizes (not a paper table).
	ImageSizes *ImageSizesResult
}

// All returns the experiments in paper order.
func (r *Results) All() []Experiment {
	return []Experiment{r.TableI, r.TableII, r.Fig4a, r.Fig4b, r.TableIII, r.TableIV,
		r.Fig5, r.TableV, r.Fig6, r.TableVI, r.Intervals, r.ImageSizes}
}

// Render prints everything.
func (r *Results) Render() string {
	var b strings.Builder
	for _, e := range r.All() {
		b.WriteString(e.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// CheckShapes validates every experiment, collecting all failures.
func (r *Results) CheckShapes() error {
	var errs []string
	for _, e := range r.All() {
		if err := e.CheckShape(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("shape check failures:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// RunAll reproduces the complete evaluation. progress (optional) receives a
// line per completed experiment; with parallel workers the completion order
// varies, but the assembled Results are identical to a sequential run
// (every experiment writes its own slot, and each simulation owns its
// machine).
func RunAll(opt Options, progress func(string)) (*Results, error) {
	// Attach the warm-fork snapshot cache (if enabled) once, so experiments
	// with the same (scheme, interval) boot prefix share it across the run.
	opt = opt.warmed()
	var mu sync.Mutex
	note := func(s string) {
		if progress == nil {
			return
		}
		mu.Lock()
		progress(s)
		mu.Unlock()
	}
	res := &Results{}
	tasks := []struct {
		name string
		run  func() error
	}{
		{"Table I", func() error { res.TableI = TableI(); return nil }},
		{"Table II", func() (err error) { res.TableII, err = TableII(opt); return }},
		{"Figure 4a", func() (err error) { res.Fig4a, err = Fig4a(opt); return }},
		{"Figure 4b", func() (err error) { res.Fig4b, err = Fig4b(opt); return }},
		{"Table III", func() (err error) { res.TableIII, err = TableIII(opt); return }},
		{"Table IV", func() (err error) { res.TableIV, err = TableIV(opt); return }},
		{"Figure 5", func() (err error) { res.Fig5, err = Fig5(opt); return }},
		{"Table V / Figure 6 / Table VI", func() (err error) {
			res.TableV, res.Fig6, res.TableVI, err = HSCCAll(opt)
			return
		}},
		{"Interval stats", func() (err error) { res.Intervals, err = Intervals(opt); return }},
		{"Image sizes", func() (err error) { res.ImageSizes, err = ImageSizes(opt); return }},
	}
	opt.Progress.SetWorkers(opt.workers())
	err := forEachIndexed(opt.workers(), len(tasks), func(i int) error {
		opt.Progress.ExperimentStarted(tasks[i].name)
		if err := tasks[i].run(); err != nil {
			return err
		}
		opt.Progress.ExperimentFinished(tasks[i].name)
		note(tasks[i].name + " done")
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
