package bench

import (
	"fmt"
	"strings"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// This file holds the *extension* studies — experiments beyond the paper's
// published evaluation that the paper explicitly points at:
//
//   - §III-B: "[Kindle] also allows carrying out additional studies on the
//     influence of page consolidation thread invocation frequency on an
//     application by varying the thread time interval, which is not
//     explored in original SSP proposal" → ExtConsolidation.
//   - §V-D: "we can use Kindle to study other NVM technologies by changing
//     NVM interface parameters" → ExtNVMTech.
//   - §III-C: "the influence of other OS activities such as context
//     switches" → ExtContextSwitch.
//   - Table I's NVM write-buffer size is a first-class design parameter of
//     the memory controller → ExtWriteBuffer.

// ExtConsolidationRow is one consolidation-interval point.
type ExtConsolidationRow struct {
	Interval     time.Duration
	NormTime     float64 // vs no-consistency baseline
	Consolidated uint64
	ConsolCycles uint64
}

// ExtConsolidationResult sweeps the SSP page-consolidation thread period
// at a fixed 5 ms consistency interval.
type ExtConsolidationResult struct {
	Rows []ExtConsolidationRow
}

// ExtConsolidation runs the consolidation-frequency study on Ycsb_mem.
func ExtConsolidation(opt Options) (*ExtConsolidationResult, error) {
	img, err := workloadImage(core.BenchYCSB, opt)
	if err != nil {
		return nil, err
	}
	base, err := runSSP(img, 0, 0, opt)
	if err != nil {
		return nil, err
	}
	res := &ExtConsolidationResult{}
	for _, iv := range []time.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		f := core.NewDefault()
		cfg := ssp.Config{
			ConsistencyInterval:   sim.FromDuration(opt.scaleInterval(5 * time.Millisecond)),
			ConsolidationInterval: sim.FromDuration(opt.scaleInterval(iv)),
		}
		ctl, err := f.EnableSSP(cfg)
		if err != nil {
			return nil, err
		}
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			return nil, err
		}
		lo, hi := rep.NVMRange()
		ctl.Enable(lo, hi)
		start := f.M.Clock.Now()
		if err := rep.Run(); err != nil {
			return nil, err
		}
		opt.Progress.AddRecords(rep.Replayed())
		ctl.Disable()
		res.Rows = append(res.Rows, ExtConsolidationRow{
			Interval:     iv,
			NormTime:     (f.M.Clock.Now() - start).Millis() / base,
			Consolidated: f.M.Stats.Get("ssp.pages_consolidated"),
			ConsolCycles: f.M.Stats.Get("ssp.consolidation_cycles"),
		})
	}
	return res, nil
}

// Render prints the consolidation study.
func (r *ExtConsolidationResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: SSP consolidation-thread frequency (Ycsb_mem, 5ms consistency)\n")
	b.WriteString("Consolidation  Normalized  Pages merged  Consolidation cycles\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%13v  %9.2fx  %12d  %20d\n",
			row.Interval, row.NormTime, row.Consolidated, row.ConsolCycles)
	}
	return b.String()
}

// CheckShape verifies the expected trend: a more frequent consolidation
// thread spends more cycles consolidating (the overhead the paper
// anticipated when fixing it to 1 ms).
func (r *ExtConsolidationResult) CheckShape() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("extConsolidation: too few rows")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ConsolCycles > r.Rows[i-1].ConsolCycles*2 {
			return fmt.Errorf("extConsolidation: cycles grew with a wider interval (%d -> %d)",
				r.Rows[i-1].ConsolCycles, r.Rows[i].ConsolCycles)
		}
	}
	for _, row := range r.Rows {
		if row.NormTime <= 1 {
			return fmt.Errorf("extConsolidation: normalized time <= 1 at %v", row.Interval)
		}
	}
	return nil
}

// NVMTech is a named NVM interface parameterization (§V-D).
type NVMTech struct {
	Name   string
	Timing mem.NVMTiming
}

// Techs returns the studied technology points: PCM (the paper's default),
// a faster STT-MRAM-like part and a slower ReRAM-like part.
func Techs() []NVMTech {
	pcm := mem.PCM()
	stt := pcm
	stt.ReadNanos, stt.WriteNanos = 50, 120
	rer := pcm
	rer.ReadNanos, rer.WriteNanos = 300, 1200
	return []NVMTech{
		{Name: "STT-MRAM", Timing: stt},
		{Name: "PCM", Timing: pcm},
		{Name: "ReRAM", Timing: rer},
	}
}

// ExtNVMTechRow is one technology point.
type ExtNVMTechRow struct {
	Tech       string
	ReadNanos  float64
	WriteNanos float64
	ExecMs     float64 // Ycsb_mem replay
	CkptMs     float64 // persistent-scheme sequential alloc micro
}

// ExtNVMTechResult is the NVM-technology sweep.
type ExtNVMTechResult struct {
	Rows []ExtNVMTechRow
}

// ExtNVMTech reruns a workload replay and a persistence micro-benchmark
// under each NVM technology.
func ExtNVMTech(opt Options) (*ExtNVMTechResult, error) {
	img, err := workloadImage(core.BenchYCSB, opt)
	if err != nil {
		return nil, err
	}
	res := &ExtNVMTechResult{}
	for _, tech := range Techs() {
		cfg := machine.DefaultConfig()
		cfg.NVM = tech.Timing
		// All three technology rows replay through the same engine (plain,
		// or sharded under opt.Shards), so the cross-tech trend CheckShape
		// asserts is preserved either way.
		execMs, err := replayExecMs(img, cfg, opt)
		if err != nil {
			return nil, err
		}

		// Persistent-scheme micro: NVM latency hits page-table hosting.
		f2 := core.New(cfg)
		if _, err := f2.EnablePersistence(persist.Persistent, opt.scaleInterval(ckptInterval)); err != nil {
			return nil, err
		}
		p2, err := f2.K.Spawn("tech-micro")
		if err != nil {
			return nil, err
		}
		f2.K.Switch(p2)
		f2.Manager().Start()
		start2 := f2.M.Clock.Now()
		if err := seqAllocAccess(f2, p2, opt.scaleBytes(64<<20)); err != nil {
			return nil, err
		}
		ckptMs := (f2.M.Clock.Now() - start2).Millis()

		res.Rows = append(res.Rows, ExtNVMTechRow{
			Tech:       tech.Name,
			ReadNanos:  tech.Timing.ReadNanos,
			WriteNanos: tech.Timing.WriteNanos,
			ExecMs:     execMs,
			CkptMs:     ckptMs,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *ExtNVMTechResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: NVM technology sweep (§V-D)\n")
	b.WriteString("Tech       read(ns)  write(ns)  Ycsb exec(ms)  persistent-scheme micro(ms)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s  %8.0f  %9.0f  %13.2f  %27.2f\n",
			row.Tech, row.ReadNanos, row.WriteNanos, row.ExecMs, row.CkptMs)
	}
	return b.String()
}

// CheckShape verifies slower technologies cost more in both the
// application replay and the persistence path.
func (r *ExtNVMTechResult) CheckShape() error {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ExecMs <= r.Rows[i-1].ExecMs {
			return fmt.Errorf("extNVMTech: exec time not increasing (%s %.2f <= %s %.2f)",
				r.Rows[i].Tech, r.Rows[i].ExecMs, r.Rows[i-1].Tech, r.Rows[i-1].ExecMs)
		}
		if r.Rows[i].CkptMs <= r.Rows[i-1].CkptMs {
			return fmt.Errorf("extNVMTech: micro time not increasing at %s", r.Rows[i].Tech)
		}
	}
	return nil
}

// ExtWriteBufferRow is one buffer-size point.
type ExtWriteBufferRow struct {
	Entries int
	MicroMs float64
	Stalls  uint64
}

// ExtWriteBufferResult ablates the NVM controller's write-buffer depth
// (Table I fixes it at 48) on the write-heavy churn micro-benchmark.
type ExtWriteBufferResult struct {
	Rows []ExtWriteBufferRow
}

// ExtWriteBuffer runs the ablation.
func ExtWriteBuffer(opt Options) (*ExtWriteBufferResult, error) {
	res := &ExtWriteBufferResult{}
	for _, entries := range []int{8, 48, 192} {
		cfg := machine.DefaultConfig()
		cfg.NVM.WriteBuf = entries
		f := core.New(cfg)
		if _, err := f.EnablePersistence(persist.Persistent, opt.scaleInterval(ckptInterval)); err != nil {
			return nil, err
		}
		p, err := f.K.Spawn("wbuf-micro")
		if err != nil {
			return nil, err
		}
		f.K.Switch(p)
		f.Manager().Start()
		start := f.M.Clock.Now()
		if err := churn(f, p, opt.scaleBytes(128<<20), opt.scaleBytes(64<<20)); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtWriteBufferRow{
			Entries: entries,
			MicroMs: (f.M.Clock.Now() - start).Millis(),
			Stalls:  f.M.Stats.Get("nvm.write_stall"),
		})
	}
	return res, nil
}

// Render prints the ablation.
func (r *ExtWriteBufferResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: NVM write-buffer depth ablation (persistent scheme, churn micro)\n")
	b.WriteString("Entries   exec(ms)   write stalls\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d  %9.2f  %13d\n", row.Entries, row.MicroMs, row.Stalls)
	}
	return b.String()
}

// CheckShape verifies deeper buffers stall less and never run slower.
func (r *ExtWriteBufferResult) CheckShape() error {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Stalls > r.Rows[i-1].Stalls {
			return fmt.Errorf("extWriteBuffer: stalls grew with depth (%d: %d -> %d: %d)",
				r.Rows[i-1].Entries, r.Rows[i-1].Stalls, r.Rows[i].Entries, r.Rows[i].Stalls)
		}
		if r.Rows[i].MicroMs > r.Rows[i-1].MicroMs*1.02 {
			return fmt.Errorf("extWriteBuffer: exec time grew with depth at %d entries", r.Rows[i].Entries)
		}
	}
	return nil
}

// ExtContextSwitchResult measures the interference of a co-scheduled
// process on a benchmark — context-switch costs plus TLB/cache pollution,
// the OS activity the paper notes user-level simulators cannot observe.
type ExtContextSwitchResult struct {
	SoloMs       float64
	CoSchedMs    float64
	Slowdown     float64
	Switches     uint64
	TLBFlushes   uint64
	KernelMisses uint64 // LLC misses attributed to kernel-mode work
}

// ExtContextSwitch runs Ycsb_mem solo, then co-scheduled round-robin with
// a Gapbs_pr cache-thrasher under a 1 ms quantum, and reports the
// foreground slowdown attributable to OS scheduling.
func ExtContextSwitch(opt Options) (*ExtContextSwitchResult, error) {
	fg, err := workloadImage(core.BenchYCSB, opt)
	if err != nil {
		return nil, err
	}
	bgCfg := workloads.DefaultPageRank()
	bgCfg.Ops = len(fg.Records) // same length as the foreground
	bg, err := workloads.PageRank(bgCfg)
	if err != nil {
		return nil, err
	}

	solo, err := replaySolo(fg)
	if err != nil {
		return nil, err
	}

	// Co-scheduled: interleave the two replays under the round-robin
	// scheduler; measure the foreground's completion time.
	f := core.NewDefault()
	_, fgRep, err := f.LaunchInit(fg)
	if err != nil {
		return nil, err
	}
	_, bgRep, err := f.LaunchInit(bg)
	if err != nil {
		return nil, err
	}
	sched := gemos.NewScheduler(f.K, sim.FromDuration(opt.scaleInterval(time.Millisecond)))
	sched.Add(fgRep.P)
	sched.Add(bgRep.P)
	sched.Start()
	defer sched.Stop()

	start := f.M.Clock.Now()
	cur := sched.Resched()
	for !fgRep.Done() {
		var rep *core.Replay
		if cur == fgRep.P {
			rep = fgRep
		} else {
			rep = bgRep
		}
		if rep.Done() {
			cur = sched.Resched()
			if sched.Len() == 0 {
				break
			}
			continue
		}
		if _, err := rep.Step(256); err != nil {
			return nil, err
		}
		if sched.NeedsResched() {
			cur = sched.Resched()
		}
	}
	coMs := (f.M.Clock.Now() - start).Millis()
	// The foreground only got ~half the CPU; normalize to CPU share to
	// isolate the *interference* (switch costs, TLB/cache pollution) from
	// plain time slicing. bgDone records replayed by the background.
	bgDone := len(bg.Records) - bgRep.Remaining()
	share := float64(len(fg.Records)) / float64(len(fg.Records)+bgDone)
	effective := coMs * share

	return &ExtContextSwitchResult{
		SoloMs:       solo,
		CoSchedMs:    effective,
		Slowdown:     effective / solo,
		Switches:     f.M.Stats.Get("os.context_switch"),
		TLBFlushes:   f.M.Stats.Get("tlb.flush_all"),
		KernelMisses: f.M.Stats.Get("cache.llc_miss_kernel"),
	}, nil
}

func replaySolo(img *trace.Image) (float64, error) {
	f := core.NewDefault()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		return 0, err
	}
	start := f.M.Clock.Now()
	if err := rep.Run(); err != nil {
		return 0, err
	}
	return (f.M.Clock.Now() - start).Millis(), nil
}

// Render prints the interference study.
func (r *ExtContextSwitchResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: context-switch interference (Ycsb_mem vs co-scheduled Gapbs_pr)\n")
	fmt.Fprintf(&b, "solo:            %10.2f ms\n", r.SoloMs)
	fmt.Fprintf(&b, "co-scheduled:    %10.2f ms (CPU-share normalized)\n", r.CoSchedMs)
	fmt.Fprintf(&b, "interference:    %10.2fx\n", r.Slowdown)
	fmt.Fprintf(&b, "context switches %10d, TLB flushes %d, kernel-mode LLC misses %d\n",
		r.Switches, r.TLBFlushes, r.KernelMisses)
	return b.String()
}

// CheckShape verifies co-scheduling costs something beyond pure time
// slicing (pollution + switch overhead) and that switches happened.
func (r *ExtContextSwitchResult) CheckShape() error {
	if r.Switches == 0 {
		return fmt.Errorf("extContextSwitch: no context switches recorded")
	}
	if r.Slowdown <= 1.0 {
		return fmt.Errorf("extContextSwitch: no interference measured (%.3fx)", r.Slowdown)
	}
	return nil
}
