package bench

import (
	"fmt"
	"strings"

	"kindle/internal/gemos"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// ExtRecoveryRow is one footprint point of the recovery-time study.
type ExtRecoveryRow struct {
	SizeMB       int
	Pages        int
	PersistentMs float64
	RebuildMs    float64
}

// ExtRecoveryResult measures the *other* side of the page-table scheme
// trade-off: recovery time after a crash. The paper argues the persistent
// scheme "only requires setting the PTBR" while the rebuild scheme must
// replay its virtual→NVM-physical list into a fresh table — this study
// quantifies that asymmetry across footprints.
type ExtRecoveryResult struct {
	Rows []ExtRecoveryRow
}

// ExtRecoveryTime runs the study: allocate and touch an NVM footprint,
// checkpoint, crash, and time the recovery procedure under each scheme.
func ExtRecoveryTime(opt Options) (*ExtRecoveryResult, error) {
	res := &ExtRecoveryResult{}
	for _, sizeMB := range []int{64, 128, 256} {
		size := opt.scaleBytes(uint64(sizeMB) << 20)
		row := ExtRecoveryRow{SizeMB: sizeMB, Pages: int(size >> 12)}
		for _, scheme := range []persist.Scheme{persist.Persistent, persist.Rebuild} {
			ms, err := measureRecovery(scheme, size, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery %dMB %v: %w", sizeMB, scheme, err)
			}
			if scheme == persist.Persistent {
				row.PersistentMs = ms
			} else {
				row.RebuildMs = ms
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func measureRecovery(scheme persist.Scheme, size uint64, opt Options) (float64, error) {
	f, p, err := newPersistenceRun(scheme, opt.scaleInterval(ckptInterval))
	if err != nil {
		return 0, err
	}
	a, err := f.K.Mmap(p, 0, size, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		return 0, err
	}
	for va := a; va < a+size; va += 4096 {
		if _, err := f.M.Core.Access(va, true, 8); err != nil {
			return 0, err
		}
	}
	f.Manager().Checkpoint()
	f.Crash()

	k2 := gemos.Boot(f.M)
	mgr2, err := persist.Reattach(k2, sim.FromDuration(opt.scaleInterval(ckptInterval)))
	if err != nil {
		return 0, err
	}
	start := f.M.Clock.Now()
	procs, err := mgr2.Recover()
	if err != nil {
		return 0, err
	}
	if len(procs) != 1 {
		return 0, fmt.Errorf("recovered %d processes", len(procs))
	}
	if got := procs[0].Table.Mapped(); uint64(got) < size/4096 {
		return 0, fmt.Errorf("recovered only %d of %d mappings", got, size/4096)
	}
	return (f.M.Clock.Now() - start).Millis(), nil
}

// Render prints the study.
func (r *ExtRecoveryResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: crash-recovery time by page-table scheme\n")
	b.WriteString("Footprint     Pages  Persistent(ms)  Rebuild(ms)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6dMB  %9d  %14.3f  %11.3f\n",
			row.SizeMB, row.Pages, row.PersistentMs, row.RebuildMs)
	}
	return b.String()
}

// CheckShape verifies the asymmetry: persistent recovery is (near) flat in
// the footprint while rebuild recovery grows with it and always costs
// more.
func (r *ExtRecoveryResult) CheckShape() error {
	for i, row := range r.Rows {
		if row.RebuildMs <= row.PersistentMs {
			return fmt.Errorf("extRecovery: rebuild (%v) not slower than persistent (%v) at %dMB",
				row.RebuildMs, row.PersistentMs, row.SizeMB)
		}
		if i > 0 && row.RebuildMs <= r.Rows[i-1].RebuildMs {
			return fmt.Errorf("extRecovery: rebuild recovery not growing with footprint")
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.PersistentMs > first.PersistentMs*3 {
		return fmt.Errorf("extRecovery: persistent recovery not flat (%v -> %v)",
			first.PersistentMs, last.PersistentMs)
	}
	return nil
}
