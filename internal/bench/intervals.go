package bench

import (
	"bytes"
	"fmt"
	"strings"

	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// intervalCols selects the counters the intervals experiment tabulates —
// one hot counter per subsystem so phase behavior (fault storm at the
// start, steady-state stores, periodic checkpoints) is visible per column.
var intervalCols = []string{
	"cpu.store",
	"nvm.write",
	"os.fault_demand",
	"persist.checkpoints",
}

// IntervalsRow is one dump window: the counter deltas accumulated between
// two consecutive interval dumps.
type IntervalsRow struct {
	Index  int
	Deltas map[string]uint64
}

// IntervalsResult is the per-phase interval-stats experiment: a rebuild-
// scheme persistence run dumped every checkpoint period, à la `m5
// dumpstats`, showing how activity shifts across execution phases.
type IntervalsResult struct {
	Rows   []IntervalsRow
	Totals map[string]uint64
}

// Intervals runs the sequential allocate-and-access micro-benchmark under
// rebuild-scheme checkpointing while snapshotting interval stats each
// checkpoint period, then parses the emitted gem5 blocks back.
func Intervals(opt Options) (*IntervalsResult, error) {
	opt = opt.warmed()
	interval := opt.scaleInterval(ckptInterval)
	f, p, err := opt.persistenceRun(persist.Rebuild, interval)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	iv := sim.FromDuration(interval)
	var arm func()
	arm = func() {
		f.M.Events.Schedule(f.M.Clock.Now()+iv, "stats.interval", func(sim.Cycles) {
			if err == nil {
				err = f.M.Stats.DumpInterval(&buf)
			}
			arm()
		})
	}
	arm()

	size := opt.scaleBytes(64 << 20)
	k := f.K
	a, merr := k.Mmap(p, 0, size, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if merr != nil {
		return nil, merr
	}
	// First pass faults every page in; later passes are steady-state
	// stores. Run until three periodic dumps have fired so the table shows
	// the fault-storm, steady-state, and checkpoint-heavy windows (bounded
	// pass count as a safety net).
	pages := size / mem.PageSize
	for pass := 0; f.M.Stats.IntervalCount() < 3 && pass < 200; pass++ {
		for i := uint64(0); i < pages && f.M.Stats.IntervalCount() < 3; i++ {
			if _, aerr := f.M.Core.Access(a+i*mem.PageSize, true, 8); aerr != nil {
				return nil, aerr
			}
			if i%tickEvery == 0 {
				k.Tick()
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if err := f.M.Stats.DumpInterval(&buf); err != nil {
		return nil, err
	}

	blocks, err := sim.ParseStatsBlocks(&buf)
	if err != nil {
		return nil, err
	}
	res := &IntervalsResult{Totals: map[string]uint64{}}
	for _, name := range intervalCols {
		res.Totals[name] = f.M.Stats.Get(name)
	}
	for _, b := range blocks {
		row := IntervalsRow{Index: int(b["interval.index"]), Deltas: map[string]uint64{}}
		for _, name := range intervalCols {
			row.Deltas[name] = b[name]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the interval table.
func (r *IntervalsResult) Render() string {
	var b strings.Builder
	b.WriteString("Interval stats: per-dump counter deltas (rebuild scheme, 1 dump per checkpoint period)\n")
	fmt.Fprintf(&b, "%-9s", "interval")
	for _, name := range intervalCols {
		fmt.Fprintf(&b, " %20s", name)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9d", row.Index)
		for _, name := range intervalCols {
			fmt.Fprintf(&b, " %20d", row.Deltas[name])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-9s", "total")
	for _, name := range intervalCols {
		fmt.Fprintf(&b, " %20d", r.Totals[name])
	}
	b.WriteString("\n")
	return b.String()
}

// CheckShape verifies the m5-dumpstats invariants: at least two interval
// blocks, consecutive indices, and column deltas summing to the run totals.
func (r *IntervalsResult) CheckShape() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("intervals: %d blocks, want >= 2", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row.Index != i+1 {
			return fmt.Errorf("intervals: block %d has index %d", i, row.Index)
		}
	}
	for _, name := range intervalCols {
		var sum uint64
		for _, row := range r.Rows {
			sum += row.Deltas[name]
		}
		if sum != r.Totals[name] {
			return fmt.Errorf("intervals: %s deltas sum to %d, total %d", name, sum, r.Totals[name])
		}
	}
	if r.Totals["persist.checkpoints"] == 0 {
		return fmt.Errorf("intervals: no checkpoints fired")
	}
	return nil
}
