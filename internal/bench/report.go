package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable performance snapshot `make bench` writes
// to BENCH_replay.json. The CI bench-regression job records a fresh one on
// every PR and gates it against the committed snapshot with
// cmd/kindle-benchdiff.
type Report struct {
	// RecordsPerSec is BenchmarkReplayThroughput's custom metric: trace
	// records simulated per host second through the full access path,
	// replaying a materialized image.
	RecordsPerSec float64 `json:"records_per_sec"`
	// StreamRecordsPerSec is the same metric for
	// BenchmarkStreamReplayThroughput, replaying through the chunked v2
	// decoder with read-ahead. Zero in reports from before the streaming
	// pipeline existed.
	StreamRecordsPerSec float64 `json:"stream_records_per_sec,omitempty"`
	// StreamVsMaterialized records StreamRecordsPerSec/RecordsPerSec for
	// human readers of the snapshot; WriteFile keeps it in sync and
	// comparisons recompute it from the throughputs (see Ratio), so a
	// hand-edited value cannot skew the gate.
	StreamVsMaterialized float64 `json:"stream_vs_materialized,omitempty"`
	// ShardedRecordsPerSec is BenchmarkShardedReplayThroughput's metric:
	// records per host second through core.ReplaySharded at Shards shards.
	// Zero in reports from before sharded replay existed.
	ShardedRecordsPerSec float64 `json:"sharded_records_per_sec,omitempty"`
	// Shards is the shard count ShardedRecordsPerSec was measured at;
	// DecodeWorkers the decode pool size behind StreamRecordsPerSec. Both
	// are environment knobs: reports measured at different values are
	// refused without normalization, like gomaxprocs.
	Shards        int `json:"shards,omitempty"`
	DecodeWorkers int `json:"decode_workers,omitempty"`
	// EventClockSpeedup is the stepped-over-event-driven wall-clock ratio
	// on the idle-heavy long-horizon checkpoint lifecycle
	// (BenchmarkSteppedClockLongHorizon ns/op over
	// BenchmarkEventClockLongHorizon ns/op): >1 means the event-driven
	// clock's idle skipping wins. Informational, never gated (both engines
	// produce byte-identical stats; this only records the wall-clock win).
	// Zero in reports from before the event-driven clock existed.
	EventClockSpeedup float64 `json:"event_clock_speedup,omitempty"`
	// ForkSpeedup is the cold-boot-over-warm-fork wall-clock ratio for one
	// persistence-grid cell's boot prefix (BenchmarkColdGridWarmup ns/op
	// over BenchmarkForkGridWarmup ns/op): >1 means forking the shared
	// copy-on-write snapshot beats re-simulating the warmup. Informational,
	// never gated (fork and cold boot produce byte-identical results; this
	// only records the wall-clock win). Zero in reports from before machine
	// snapshots existed.
	ForkSpeedup float64 `json:"fork_speedup,omitempty"`
	// ForkAllocsPerFork is BenchmarkForkGridWarmup's allocs/op: the
	// allocation count of one copy-on-write fork+resume. Informational.
	ForkAllocsPerFork uint64 `json:"fork_allocs_per_fork,omitempty"`
	// SuiteWallClockSec is the wall-clock time of one full RunAll at
	// SuiteScale with the default worker pool.
	SuiteWallClockSec float64 `json:"suite_wall_clock_sec"`
	SuiteScale        float64 `json:"suite_scale"`
	// Fork records whether the suite ran with warm-forked grid cells
	// (Options.WarmFork). An environment knob like gomaxprocs: results are
	// identical either way but wall-clock is not, so reports measured with
	// differing fork settings are refused without normalization.
	Fork       bool `json:"fork,omitempty"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	// Env records the toolchain, platform and UTC time the report was
	// measured under. WriteFile stamps it automatically; it is printed by
	// kindle-benchdiff for provenance, never gated on. Nil in reports
	// written before env stamping.
	Env *ReportEnv `json:"env,omitempty"`
}

// ReportEnv is the provenance block stamped into every written report.
type ReportEnv struct {
	GoVersion    string `json:"go_version"`
	OSArch       string `json:"os_arch"`
	TimestampUTC string `json:"timestamp_utc"`
}

// CurrentEnv describes the running toolchain/platform at the current time.
func CurrentEnv() *ReportEnv {
	return &ReportEnv{
		GoVersion:    runtime.Version(),
		OSArch:       runtime.GOOS + "/" + runtime.GOARCH,
		TimestampUTC: time.Now().UTC().Format(time.RFC3339),
	}
}

// String renders the block for log lines; a nil receiver (pre-stamping
// report) says so instead of crashing.
func (e *ReportEnv) String() string {
	if e == nil {
		return "(env unrecorded)"
	}
	return fmt.Sprintf("%s %s @ %s", e.GoVersion, e.OSArch, e.TimestampUTC)
}

// LoadReport reads a bench report JSON file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.RecordsPerSec <= 0 {
		return nil, fmt.Errorf("bench: %s has no records_per_sec", path)
	}
	return &r, nil
}

// WriteFile writes the report as indented JSON, stamping the derived
// ratio and the measurement environment.
func (r *Report) WriteFile(path string) error {
	r.StreamVsMaterialized = r.Ratio()
	r.Env = CurrentEnv()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Ratio returns the streamed-to-materialized throughput ratio, the tracked
// measure of what chunked decode costs the replay pipeline on this host
// (read-ahead hides it only when a spare core exists). Zero when either
// throughput is missing.
func (r *Report) Ratio() float64 {
	if r.RecordsPerSec <= 0 || r.StreamRecordsPerSec <= 0 {
		return 0
	}
	return r.StreamRecordsPerSec / r.RecordsPerSec
}

// normProcs returns the divisor used to compare throughput across hosts
// with different core counts.
func (r *Report) normProcs() float64 {
	if r.GOMAXPROCS <= 0 {
		return 1
	}
	return float64(r.GOMAXPROCS)
}

// CompareOptions tunes CompareReports.
type CompareOptions struct {
	// WarnFrac and FailFrac bound the tolerated fractional throughput
	// drop: beyond WarnFrac (e.g. 0.10) a warning, beyond FailFrac (e.g.
	// 0.20) an error. Improvements never fail.
	WarnFrac, FailFrac float64
	// RatioWarnFrac and RatioFailFrac separately guard the streamed-to-
	// materialized throughput ratio (Report.Ratio): both absolute
	// throughputs can pass while the streamed path quietly loses ground on
	// the materialized one, so the ratio gets its own thresholds — a
	// fractional drop beyond RatioWarnFrac warns, beyond RatioFailFrac
	// fails. Zero disables either.
	RatioWarnFrac, RatioFailFrac float64
	// MinRatio is an absolute floor on the fresh report's ratio: with the
	// pipelined decoder the streamed path should at least match the
	// materialized one (ratio >= 1.0) wherever a spare core exists. Hosts
	// without one (single-core CI runners, laptops on battery) cannot meet
	// that regardless of code quality — set 0 there to disable the floor
	// (kindle-benchdiff -min-ratio 0). Zero disables.
	MinRatio float64
	// NormalizeEnv permits comparing reports recorded under different
	// gomaxprocs or suite_scale. Without it such comparisons are refused:
	// per-proc normalization is a coarse correction (the replay itself is
	// single-threaded) and suite wall-clock at different scales measures
	// different work, so crossing environments must be an explicit choice.
	NormalizeEnv bool
}

// CompareReports gates fresh against base. Reports from identical
// environments compare raw; differing gomaxprocs or suite_scale is refused
// unless opt.NormalizeEnv, which normalizes throughput per gomaxprocs and
// says so in a warning.
func CompareReports(base, fresh *Report, opt CompareOptions) (warnings []string, err error) {
	if base.GOMAXPROCS != fresh.GOMAXPROCS || base.SuiteScale != fresh.SuiteScale ||
		base.Shards != fresh.Shards || base.DecodeWorkers != fresh.DecodeWorkers ||
		base.Fork != fresh.Fork {
		desc := fmt.Sprintf("gomaxprocs %d vs %d, suite_scale %g vs %g, shards %d vs %d, decode_workers %d vs %d, fork %t vs %t; base %s, fresh %s",
			base.GOMAXPROCS, fresh.GOMAXPROCS, base.SuiteScale, fresh.SuiteScale,
			base.Shards, fresh.Shards, base.DecodeWorkers, fresh.DecodeWorkers,
			base.Fork, fresh.Fork,
			base.Env, fresh.Env)
		if !opt.NormalizeEnv {
			return nil, fmt.Errorf("bench: reports measured in different environments (%s); rerun with env normalization enabled (-normalize-env) to compare per-proc throughput anyway", desc)
		}
		warnings = append(warnings, fmt.Sprintf(
			"environments differ (%s): comparing throughput per gomaxprocs", desc))
	}
	type metric struct {
		name       string
		base, have float64
	}
	metrics := []metric{
		{"records_per_sec", base.RecordsPerSec / base.normProcs(), fresh.RecordsPerSec / fresh.normProcs()},
	}
	if base.StreamRecordsPerSec > 0 && fresh.StreamRecordsPerSec > 0 {
		metrics = append(metrics, metric{
			"stream_records_per_sec",
			base.StreamRecordsPerSec / base.normProcs(),
			fresh.StreamRecordsPerSec / fresh.normProcs(),
		})
	}
	if base.ShardedRecordsPerSec > 0 && fresh.ShardedRecordsPerSec > 0 {
		metrics = append(metrics, metric{
			"sharded_records_per_sec",
			base.ShardedRecordsPerSec / base.normProcs(),
			fresh.ShardedRecordsPerSec / fresh.normProcs(),
		})
	}
	var failures []string
	for _, m := range metrics {
		if m.base <= 0 {
			continue
		}
		drop := (m.base - m.have) / m.base
		line := fmt.Sprintf("%s: base %.0f/proc, fresh %.0f/proc (%+.1f%%)",
			m.name, m.base, m.have, -100*drop)
		switch {
		case drop > opt.FailFrac:
			failures = append(failures, line)
		case drop > opt.WarnFrac:
			warnings = append(warnings, line)
		}
	}
	// The ratio is recomputed from the throughputs, never read from the
	// stored stream_vs_materialized field.
	if rb, rf := base.Ratio(), fresh.Ratio(); rb > 0 && rf > 0 {
		drop := (rb - rf) / rb
		line := fmt.Sprintf(
			"stream_vs_materialized: base %.2f, fresh %.2f (%+.1f%%) — streamed decode losing ground on materialized replay",
			rb, rf, -100*drop)
		switch {
		case opt.RatioFailFrac > 0 && drop > opt.RatioFailFrac:
			failures = append(failures, line)
		case opt.RatioWarnFrac > 0 && drop > opt.RatioWarnFrac:
			warnings = append(warnings, line)
		}
	}
	if rf := fresh.Ratio(); opt.MinRatio > 0 && rf > 0 && rf < opt.MinRatio {
		failures = append(failures, fmt.Sprintf(
			"stream_vs_materialized: fresh %.2f below floor %.2f — pipelined decode should keep the streamed path at parity where a spare core exists (disable on constrained hosts with -min-ratio 0)",
			rf, opt.MinRatio))
	}
	if len(failures) > 0 {
		return warnings, fmt.Errorf("bench regression beyond %.0f%%:\n  %s",
			100*opt.FailFrac, joinLines(failures))
	}
	return warnings, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
