package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable performance snapshot `make bench` writes
// to BENCH_replay.json. The CI bench-regression job records a fresh one on
// every PR and gates it against the committed snapshot with
// cmd/kindle-benchdiff.
type Report struct {
	// RecordsPerSec is BenchmarkReplayThroughput's custom metric: trace
	// records simulated per host second through the full access path,
	// replaying a materialized image.
	RecordsPerSec float64 `json:"records_per_sec"`
	// StreamRecordsPerSec is the same metric for
	// BenchmarkStreamReplayThroughput, replaying through the chunked v2
	// decoder with read-ahead. Zero in reports from before the streaming
	// pipeline existed.
	StreamRecordsPerSec float64 `json:"stream_records_per_sec,omitempty"`
	// SuiteWallClockSec is the wall-clock time of one full RunAll at
	// SuiteScale with the default worker pool.
	SuiteWallClockSec float64 `json:"suite_wall_clock_sec"`
	SuiteScale        float64 `json:"suite_scale"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
}

// LoadReport reads a bench report JSON file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.RecordsPerSec <= 0 {
		return nil, fmt.Errorf("bench: %s has no records_per_sec", path)
	}
	return &r, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// normProcs returns the divisor used to compare throughput across hosts
// with different core counts.
func (r *Report) normProcs() float64 {
	if r.GOMAXPROCS <= 0 {
		return 1
	}
	return float64(r.GOMAXPROCS)
}

// CompareReports gates fresh against base. Throughputs are normalized by
// GOMAXPROCS so a snapshot recorded on an N-core box can be compared on a
// differently-sized CI runner (a coarse correction — the replay itself is
// single-threaded, but suite parallelism and machine class correlate with
// core count). A drop beyond failFrac (e.g. 0.20) is an error; beyond
// warnFrac (e.g. 0.10) a warning. Improvements never fail.
func CompareReports(base, fresh *Report, warnFrac, failFrac float64) (warnings []string, err error) {
	type metric struct {
		name       string
		base, have float64
	}
	metrics := []metric{
		{"records_per_sec", base.RecordsPerSec / base.normProcs(), fresh.RecordsPerSec / fresh.normProcs()},
	}
	if base.StreamRecordsPerSec > 0 && fresh.StreamRecordsPerSec > 0 {
		metrics = append(metrics, metric{
			"stream_records_per_sec",
			base.StreamRecordsPerSec / base.normProcs(),
			fresh.StreamRecordsPerSec / fresh.normProcs(),
		})
	}
	var failures []string
	for _, m := range metrics {
		if m.base <= 0 {
			continue
		}
		drop := (m.base - m.have) / m.base
		line := fmt.Sprintf("%s: base %.0f/proc, fresh %.0f/proc (%+.1f%%)",
			m.name, m.base, m.have, -100*drop)
		switch {
		case drop > failFrac:
			failures = append(failures, line)
		case drop > warnFrac:
			warnings = append(warnings, line)
		}
	}
	if len(failures) > 0 {
		return warnings, fmt.Errorf("bench regression beyond %.0f%%:\n  %s",
			100*failFrac, joinLines(failures))
	}
	return warnings, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
