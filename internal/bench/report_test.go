package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	r := &Report{RecordsPerSec: 7e6, StreamRecordsPerSec: 7.2e6, SuiteWallClockSec: 8, SuiteScale: 0.0625, GOMAXPROCS: 4}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

func TestLoadReportRejectsBad(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "not json",
		"empty.json":   "{}",
		"zero.json":    `{"records_per_sec": 0}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadReport(path); err == nil {
			t.Errorf("%s: LoadReport accepted bad input", name)
		}
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadReport accepted missing file")
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{RecordsPerSec: 1000, StreamRecordsPerSec: 900, GOMAXPROCS: 1}
	cases := []struct {
		name     string
		fresh    Report
		wantWarn bool
		wantFail bool
	}{
		{"unchanged", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, false, false},
		{"improved", Report{RecordsPerSec: 1500, StreamRecordsPerSec: 1400, GOMAXPROCS: 1}, false, false},
		{"small drop", Report{RecordsPerSec: 950, StreamRecordsPerSec: 870, GOMAXPROCS: 1}, false, false},
		{"warn drop", Report{RecordsPerSec: 850, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, true, false},
		{"fail drop", Report{RecordsPerSec: 700, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, false, true},
		{"stream fail", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 600, GOMAXPROCS: 1}, false, true},
		// 4000 rec/s on 4 procs is 1000/proc — equal after normalization.
		{"normalized", Report{RecordsPerSec: 4000, StreamRecordsPerSec: 3600, GOMAXPROCS: 4}, false, false},
		// 2000 rec/s on 4 procs is 500/proc — a 50% normalized drop.
		{"normalized fail", Report{RecordsPerSec: 2000, StreamRecordsPerSec: 3600, GOMAXPROCS: 4}, false, true},
		// Baseline without a stream metric skips that comparison.
		{"no stream metric", Report{RecordsPerSec: 1000, GOMAXPROCS: 1}, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warnings, err := CompareReports(base, &tc.fresh, 0.10, 0.20)
			if tc.wantFail != (err != nil) {
				t.Fatalf("err = %v, wantFail = %v", err, tc.wantFail)
			}
			if tc.wantFail && !strings.Contains(err.Error(), "regression") {
				t.Fatalf("error does not name the regression: %v", err)
			}
			if tc.wantWarn != (len(warnings) > 0) {
				t.Fatalf("warnings = %v, wantWarn = %v", warnings, tc.wantWarn)
			}
		})
	}
}
