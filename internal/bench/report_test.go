package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	r := &Report{RecordsPerSec: 7e6, StreamRecordsPerSec: 7.2e6, SuiteWallClockSec: 8, SuiteScale: 0.0625, GOMAXPROCS: 4}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Env == nil || got.Env.GoVersion != runtime.Version() ||
		got.Env.OSArch != runtime.GOOS+"/"+runtime.GOARCH {
		t.Fatalf("WriteFile did not stamp env: %+v", got.Env)
	}
	if ts, err := time.Parse(time.RFC3339, got.Env.TimestampUTC); err != nil || ts.Location() != time.UTC {
		t.Fatalf("env timestamp %q not RFC3339 UTC: %v", got.Env.TimestampUTC, err)
	}
	got.Env, r.Env = nil, nil
	if *got != *r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

// TestReportEnvString: pre-stamping reports (nil env) print a placeholder
// instead of crashing kindle-benchdiff.
func TestReportEnvString(t *testing.T) {
	var e *ReportEnv
	if e.String() != "(env unrecorded)" {
		t.Fatalf("nil env String = %q", e.String())
	}
	s := (&ReportEnv{GoVersion: "go1.24.0", OSArch: "linux/amd64", TimestampUTC: "2026-08-09T00:00:00Z"}).String()
	for _, want := range []string{"go1.24.0", "linux/amd64", "2026-08-09"} {
		if !strings.Contains(s, want) {
			t.Fatalf("env String %q missing %q", s, want)
		}
	}
}

func TestLoadReportRejectsBad(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "not json",
		"empty.json":   "{}",
		"zero.json":    `{"records_per_sec": 0}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadReport(path); err == nil {
			t.Errorf("%s: LoadReport accepted bad input", name)
		}
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadReport accepted missing file")
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{RecordsPerSec: 1000, StreamRecordsPerSec: 900, GOMAXPROCS: 1}
	opt := CompareOptions{WarnFrac: 0.10, FailFrac: 0.20, RatioWarnFrac: 0.10}
	normOpt := opt
	normOpt.NormalizeEnv = true
	cases := []struct {
		name     string
		fresh    Report
		opt      CompareOptions
		wantWarn bool
		wantFail bool
	}{
		{"unchanged", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, opt, false, false},
		{"improved", Report{RecordsPerSec: 1500, StreamRecordsPerSec: 1400, GOMAXPROCS: 1}, opt, false, false},
		{"small drop", Report{RecordsPerSec: 950, StreamRecordsPerSec: 870, GOMAXPROCS: 1}, opt, false, false},
		{"warn drop", Report{RecordsPerSec: 850, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, opt, true, false},
		{"fail drop", Report{RecordsPerSec: 700, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, opt, false, true},
		// The collapsed stream throughput fails outright and also trips
		// the ratio warning.
		{"stream fail", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 600, GOMAXPROCS: 1}, opt, true, true},
		// Both throughputs inside tolerance, but the streamed one slipped
		// 11% against the materialized one: ratio warning only.
		{"ratio warn", Report{RecordsPerSec: 1050, StreamRecordsPerSec: 840, GOMAXPROCS: 1}, opt, true, false},
		// Same ratio slip with the ratio guard disabled stays silent.
		{"ratio guard off", Report{RecordsPerSec: 1050, StreamRecordsPerSec: 840, GOMAXPROCS: 1},
			CompareOptions{WarnFrac: 0.10, FailFrac: 0.20}, false, false},
		// Differing environments are refused outright...
		{"env refused", Report{RecordsPerSec: 4000, StreamRecordsPerSec: 3600, GOMAXPROCS: 4}, opt, false, true},
		// ...and compare per-proc (with an explanatory warning) when
		// normalization is requested: 4000 rec/s on 4 procs is 1000/proc.
		{"normalized", Report{RecordsPerSec: 4000, StreamRecordsPerSec: 3600, GOMAXPROCS: 4}, normOpt, true, false},
		// 2000 rec/s on 4 procs is 500/proc — a 50% normalized drop.
		{"normalized fail", Report{RecordsPerSec: 2000, StreamRecordsPerSec: 3600, GOMAXPROCS: 4}, normOpt, true, true},
		// Baseline without a stream metric skips stream and ratio checks.
		{"no stream metric", Report{RecordsPerSec: 1000, GOMAXPROCS: 1}, opt, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warnings, err := CompareReports(base, &tc.fresh, tc.opt)
			if tc.wantFail != (err != nil) {
				t.Fatalf("err = %v, wantFail = %v", err, tc.wantFail)
			}
			if tc.wantFail && !strings.Contains(err.Error(), "regression") && !strings.Contains(err.Error(), "environments") {
				t.Fatalf("error does not explain itself: %v", err)
			}
			if tc.wantWarn != (len(warnings) > 0) {
				t.Fatalf("warnings = %v, wantWarn = %v", warnings, tc.wantWarn)
			}
		})
	}
}

// TestCompareReportsRatioGate pins the promoted ratio gate: a ratio drop
// beyond RatioFailFrac or a fresh ratio under the MinRatio floor is an
// error, not a warning, and the floor is independently disabled by zero.
func TestCompareReportsRatioGate(t *testing.T) {
	base := &Report{RecordsPerSec: 1000, StreamRecordsPerSec: 1100, GOMAXPROCS: 1}
	gate := CompareOptions{WarnFrac: 0.10, FailFrac: 0.20, RatioWarnFrac: 0.05, RatioFailFrac: 0.10, MinRatio: 1.0}
	cases := []struct {
		name     string
		fresh    Report
		opt      CompareOptions
		wantWarn bool
		wantFail bool
	}{
		{"ratio holds", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 1100, GOMAXPROCS: 1}, gate, false, false},
		// Ratio slips 8%: past RatioWarnFrac, inside RatioFailFrac, still
		// above the floor (1.10 -> 1.01) — warning only.
		{"ratio warn band", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 1012, GOMAXPROCS: 1}, gate, true, false},
		// Ratio collapses 18% and lands under the 1.0 floor — both failure
		// paths fire (the stream throughput drop also warns on its own).
		{"ratio fail", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 900, GOMAXPROCS: 1}, gate, true, true},
		// Floor alone: ratio drop below RatioFailFrac but fresh ratio 0.99.
		{"floor fail", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 990, GOMAXPROCS: 1},
			CompareOptions{WarnFrac: 0.10, FailFrac: 0.20, RatioFailFrac: 0.15, MinRatio: 1.0}, false, true},
		// Constrained-host override: MinRatio 0 disables the floor and the
		// same report passes with only the ratio-drop warning.
		{"floor disabled", Report{RecordsPerSec: 1000, StreamRecordsPerSec: 990, GOMAXPROCS: 1},
			CompareOptions{WarnFrac: 0.10, FailFrac: 0.20, RatioWarnFrac: 0.05, MinRatio: 0}, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warnings, err := CompareReports(base, &tc.fresh, tc.opt)
			if tc.wantFail != (err != nil) {
				t.Fatalf("err = %v, wantFail = %v", err, tc.wantFail)
			}
			if tc.wantWarn != (len(warnings) > 0) {
				t.Fatalf("warnings = %v, wantWarn = %v", warnings, tc.wantWarn)
			}
		})
	}
}

// TestCompareReportsShardedMetric: the sharded throughput is gated like the
// others when both reports carry it, and skipped when either lacks it.
func TestCompareReportsShardedMetric(t *testing.T) {
	opt := CompareOptions{WarnFrac: 0.10, FailFrac: 0.20}
	base := &Report{RecordsPerSec: 1000, ShardedRecordsPerSec: 2000, Shards: 4, GOMAXPROCS: 1}
	bad := &Report{RecordsPerSec: 1000, ShardedRecordsPerSec: 1400, Shards: 4, GOMAXPROCS: 1}
	if _, err := CompareReports(base, bad, opt); err == nil {
		t.Fatal("30% sharded throughput drop passed the gate")
	}
	missing := &Report{RecordsPerSec: 1000, GOMAXPROCS: 1, Shards: 4}
	if _, err := CompareReports(base, missing, opt); err != nil {
		t.Fatalf("report without sharded metric should skip that gate: %v", err)
	}
}

// TestCompareReportsRefusesShardMismatch: shards and decode_workers are
// environment knobs — reports measured at different values are refused
// without -normalize-env, like gomaxprocs.
func TestCompareReportsRefusesShardMismatch(t *testing.T) {
	opt := CompareOptions{WarnFrac: 0.10, FailFrac: 0.20}
	base := &Report{RecordsPerSec: 1000, Shards: 4, DecodeWorkers: 4, GOMAXPROCS: 1}
	for _, tc := range []struct {
		name  string
		fresh Report
	}{
		{"shards differ", Report{RecordsPerSec: 1000, Shards: 8, DecodeWorkers: 4, GOMAXPROCS: 1}},
		{"decode workers differ", Report{RecordsPerSec: 1000, Shards: 4, DecodeWorkers: 2, GOMAXPROCS: 1}},
		{"fork differs", Report{RecordsPerSec: 1000, Shards: 4, DecodeWorkers: 4, GOMAXPROCS: 1, Fork: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CompareReports(base, &tc.fresh, opt); err == nil {
				t.Fatal("cross-shard-count comparison accepted without NormalizeEnv")
			}
			norm := opt
			norm.NormalizeEnv = true
			warnings, err := CompareReports(base, &tc.fresh, norm)
			if err != nil {
				t.Fatalf("NormalizeEnv comparison failed: %v", err)
			}
			if len(warnings) == 0 {
				t.Fatal("normalized comparison produced no explanatory warning")
			}
		})
	}
}

func TestCompareReportsRefusesScaleMismatch(t *testing.T) {
	base := &Report{RecordsPerSec: 1000, SuiteScale: 1.0 / 16, GOMAXPROCS: 1}
	fresh := &Report{RecordsPerSec: 1000, SuiteScale: 1.0 / 4, GOMAXPROCS: 1}
	if _, err := CompareReports(base, fresh, CompareOptions{WarnFrac: 0.10, FailFrac: 0.20}); err == nil {
		t.Fatal("suite_scale mismatch accepted without NormalizeEnv")
	}
	warnings, err := CompareReports(base, fresh, CompareOptions{WarnFrac: 0.10, FailFrac: 0.20, NormalizeEnv: true})
	if err != nil {
		t.Fatalf("NormalizeEnv comparison failed: %v", err)
	}
	if len(warnings) == 0 {
		t.Fatal("normalized cross-environment comparison produced no explanatory warning")
	}
}
