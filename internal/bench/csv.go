package bench

import (
	"fmt"
	"strings"
	"time"
)

// RenderCSV emits every experiment's data points as one flat CSV
// (experiment, benchmark/series, x, y) — the input format for plotting
// scripts, mirroring the artifact's parse-then-plot pipeline.
func (r *Results) RenderCSV() string {
	var b strings.Builder
	b.WriteString("experiment,series,x,y\n")
	row := func(exp, series, x string, y float64) {
		fmt.Fprintf(&b, "%s,%s,%s,%g\n", exp, series, x, y)
	}
	if r.TableII != nil {
		for _, tr := range r.TableII.Rows {
			row("tableII", tr.Benchmark, "read_pct", tr.ReadPct)
			row("tableII", tr.Benchmark, "write_pct", tr.WritePct)
		}
	}
	if r.Fig4a != nil {
		for _, fr := range r.Fig4a.Rows {
			x := fmt.Sprintf("%dMB", fr.SizeMB)
			row("fig4a", "persistent", x, fr.PersistentMs)
			row("fig4a", "rebuild", x, fr.RebuildMs)
		}
	}
	if r.Fig4b != nil {
		for _, fr := range r.Fig4b.Rows {
			row("fig4b", "persistent", fr.Stride, fr.PersistentMs)
			row("fig4b", "rebuild", fr.Stride, fr.RebuildMs)
		}
	}
	if r.TableIII != nil {
		for _, tr := range r.TableIII.Rows {
			x := fmt.Sprintf("%dMB", tr.SizeMB)
			row("tableIII", "persistent", x, tr.PersistentMs)
			row("tableIII", "rebuild", x, tr.RebuildMs)
		}
	}
	if r.TableIV != nil {
		for _, tr := range r.TableIV.Rows {
			x := fmt.Sprintf("%dMB/%s", tr.SizeMB, fmtInterval(tr.Interval))
			row("tableIV", "persistent", x, tr.PersistentMs)
			row("tableIV", "rebuild", x, tr.RebuildMs)
		}
	}
	if r.Fig5 != nil {
		for _, fr := range r.Fig5.Rows {
			for _, iv := range r.Fig5.Intervals {
				row("fig5", fr.Benchmark, fmtInterval(iv), fr.Norm[iv])
			}
		}
	}
	if r.TableV != nil {
		for _, bn := range r.TableV.Benchmarks {
			for _, th := range r.TableV.Thresholds {
				row("tableV", bn, fmt.Sprintf("Th-%d", th), float64(r.TableV.Migrated[bn][th]))
			}
		}
	}
	if r.Fig6 != nil {
		for _, bn := range r.Fig6.Benchmarks {
			for _, th := range r.Fig6.Thresholds {
				row("fig6", bn, fmt.Sprintf("Th-%d", th), r.Fig6.Norm[bn][th])
			}
		}
	}
	if r.TableVI != nil {
		for _, bn := range r.TableVI.Benchmarks {
			for _, th := range r.TableVI.Thresholds {
				x := fmt.Sprintf("Th-%d", th)
				row("tableVI_select", bn, x, r.TableVI.SelectPct[bn][th])
				row("tableVI_copy", bn, x, r.TableVI.CopyPct[bn][th])
			}
		}
	}
	if r.Intervals != nil {
		for _, ir := range r.Intervals.Rows {
			for _, name := range intervalCols {
				row("intervals", name, fmt.Sprintf("%d", ir.Index), float64(ir.Deltas[name]))
			}
		}
	}
	if r.ImageSizes != nil {
		for _, ir := range r.ImageSizes.Rows {
			row("image_sizes", ir.Benchmark, "v1_bytes", float64(ir.V1Bytes))
			row("image_sizes", ir.Benchmark, "v2_bytes", float64(ir.V2Bytes))
		}
	}
	return b.String()
}

func fmtInterval(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%gms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%gus", float64(d)/float64(time.Microsecond))
	}
}
