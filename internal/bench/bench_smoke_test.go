package bench

import (
	"strings"
	"testing"
	"time"
)

// smokeOpts shrinks footprints ~16x so the whole experiment suite runs in
// test time while still exercising every mechanism.
var smokeOpts = Options{Scale: 1.0 / 16}

func TestFig4aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig4a(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestFig4bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig4b(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := TableIII(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := TableIV(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIShape(t *testing.T) {
	res := TableI()
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// SSSP needs a >1M-op window for its per-source relax phases to
	// average out to the published mix; 1/8 scale = 1.25M ops.
	res, err := TableII(Options{Scale: 1.0 / 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig5(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestHSCCShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tv, f6, t6, err := HSCCAll(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tv.Render() + "\n" + f6.Render() + "\n" + t6.Render())
	if err := tv.CheckShape(); err != nil {
		t.Error(err)
	}
	if err := f6.CheckShape(); err != nil {
		t.Error(err)
	}
	if err := t6.CheckShape(); err != nil {
		t.Error(err)
	}
}

func TestExtConsolidationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtConsolidation(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestExtNVMTechShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtNVMTech(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestExtWriteBufferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtWriteBuffer(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestExtContextSwitchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtContextSwitch(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderCSV(t *testing.T) {
	res := &Results{TableI: TableI()}
	res.TableII = &TableIIResult{Rows: []TableIIRow{{Benchmark: "Gapbs_pr", TotalOps: 10, ReadPct: 77, WritePct: 23}}}
	res.Fig4a = &Fig4aResult{Rows: []Fig4aRow{{SizeMB: 64, PersistentMs: 1, RebuildMs: 2}}}
	res.Fig5 = &Fig5Result{
		Intervals: []time.Duration{time.Millisecond},
		Rows:      []Fig5Row{{Benchmark: "Ycsb_mem", Norm: map[time.Duration]float64{time.Millisecond: 1.5}}},
	}
	csv := res.RenderCSV()
	for _, want := range []string{
		"experiment,series,x,y",
		"tableII,Gapbs_pr,read_pct,77",
		"fig4a,rebuild,64MB,2",
		"fig5,Ycsb_mem,1ms,1.5",
	} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
}

func TestExtCheckCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtCheckCost(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := CrashSweep(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestExtRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtRecoveryTime(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestImageSizesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ImageSizes(smokeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}
