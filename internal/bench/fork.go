package bench

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/persist"
	"kindle/internal/trace"
)

// Warm-forked grid cells: the persistence grids (Fig. 4, Tables III/IV, the
// ablations) boot an identical machine + persistence stack in every cell,
// differing only in the workload that runs afterwards. With Options.WarmFork
// that shared prefix is simulated once per (scheme, interval) key and frozen
// as a copy-on-write core.Snapshot; each cell forks it instead of
// re-simulating boot + attach + spawn. Results are byte-identical either way
// — pinned by TestGridWarmForkIdentity — the fork only removes redundant
// host work.

// warmKey identifies one shared boot prefix.
type warmKey struct {
	scheme   persist.Scheme
	interval time.Duration
}

// warmCache shares frozen boot prefixes across the grid cells of a run (and,
// through RunAll, across experiments). Snapshots are immutable once stored;
// concurrent cells resume them without coordination.
type warmCache struct {
	mu    sync.Mutex
	snaps map[warmKey]*core.Snapshot
}

// get returns the (scheme, interval) boot snapshot, simulating and freezing
// it on first use.
func (c *warmCache) get(scheme persist.Scheme, interval time.Duration) (*core.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := warmKey{scheme: scheme, interval: interval}
	if s, ok := c.snaps[key]; ok {
		return s, nil
	}
	f, _, err := newPersistenceRun(scheme, interval)
	if err != nil {
		return nil, err
	}
	s := f.Snapshot(nil)
	c.snaps[key] = s
	return s, nil
}

// warmed attaches the shared snapshot cache when WarmFork is on. Experiments
// call it once at the top so every cell closure shares the same cache
// pointer; RunAll calls it before fanning out so experiments share prefixes
// too.
func (o Options) warmed() Options {
	if o.WarmFork && o.warm == nil {
		o.warm = &warmCache{snaps: map[warmKey]*core.Snapshot{}}
	}
	return o
}

// persistenceRun is the grid cells' boot path: newPersistenceRun cold, or a
// copy-on-write fork of the shared (scheme, interval) snapshot under
// Options.WarmFork.
func (o Options) persistenceRun(scheme persist.Scheme, interval time.Duration) (*core.Framework, *gemos.Process, error) {
	if o.warm == nil {
		return newPersistenceRun(scheme, interval)
	}
	snap, err := o.warm.get(scheme, interval)
	if err != nil {
		return nil, nil, err
	}
	f, err := core.Resume(snap)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: forking %v/%v boot prefix: %w", scheme, interval, err)
	}
	p := f.K.Current()
	if p == nil {
		return nil, nil, fmt.Errorf("bench: forked %v boot prefix has no dispatched process", scheme)
	}
	return f, p, nil
}

// replayExecMs replays img on a machine with the given configuration and
// returns the simulated execution time in milliseconds. With opt.Shards > 0
// the replay goes through core.ReplaySharded — the same code path as
// `kindle -shards` — at that shard count (warm-forking the segment boot
// under opt.WarmFork); sharded times use cold segment boundaries, so runs
// at different shard counts only compare to themselves.
func replayExecMs(img *trace.Image, cfg machine.Config, opt Options) (float64, error) {
	if opt.Shards > 0 {
		var buf bytes.Buffer
		if err := trace.EncodeV2(&buf, img, trace.StreamOptions{}); err != nil {
			return 0, err
		}
		data := buf.Bytes()
		res, err := core.ReplaySharded(func() (io.ReadSeeker, error) {
			return bytes.NewReader(data), nil
		}, core.ShardedOptions{Shards: opt.Shards, Config: &cfg, WarmFork: opt.WarmFork})
		if err != nil {
			return 0, err
		}
		opt.Progress.AddRecords(res.Records)
		return res.Cycles.Millis(), nil
	}
	f := core.New(cfg)
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		return 0, err
	}
	start := f.M.Clock.Now()
	if err := rep.Run(); err != nil {
		return 0, err
	}
	opt.Progress.AddRecords(rep.Replayed())
	return (f.M.Clock.Now() - start).Millis(), nil
}
