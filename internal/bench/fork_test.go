package bench

import (
	"reflect"
	"testing"
)

// TestGridWarmForkIdentity pins the warm-fork contract: a grid run whose
// cells fork a shared copy-on-write boot snapshot produces exactly the rows
// a cold-boot run does, including with parallel workers racing over the
// shared snapshots.
func TestGridWarmForkIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cold := Options{Scale: 1.0 / 32}
	warm := Options{Scale: 1.0 / 32, WarmFork: true, Parallel: 2}

	coldRes, err := Fig4a(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Fig4a(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("fig4a rows differ under warm fork:\ncold: %+v\nwarm: %+v", coldRes, warmRes)
	}

	coldIII, err := TableIII(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmIII, err := TableIII(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldIII, warmIII) {
		t.Fatalf("tableIII rows differ under warm fork:\ncold: %+v\nwarm: %+v", coldIII, warmIII)
	}
}

// TestIntervalsWarmForkIdentity covers the one warm-forked experiment that
// arms its own events after the fork (the interval-dump timer) and reads
// interval stats off the restored registry.
func TestIntervalsWarmForkIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	coldRes, err := Intervals(Options{Scale: 1.0 / 32})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Intervals(Options{Scale: 1.0 / 32, WarmFork: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("interval rows differ under warm fork:\ncold: %+v\nwarm: %+v", coldRes, warmRes)
	}
}

// TestNVMTechSharded runs the technology sweep through the sharded replay
// engine and checks the cross-tech trend survives (sharded times are only
// comparable to sharded times; the trend across rows is what CheckShape
// asserts).
func TestNVMTechSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ExtNVMTech(Options{Scale: 1.0 / 16, Shards: 2, WarmFork: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}
