package bench

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 37
		var counts [n]atomic.Int64
		err := forEachIndexed(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexedFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		err := forEachIndexed(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errors.New("b")
			}
			return nil
		})
		// The lowest-index error must win regardless of completion order.
		if err != errA {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errA)
		}
	}
}

func TestForEachIndexedBoundsWorkers(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	var mu sync.Mutex
	err := forEachIndexed(workers, 24, func(i int) error {
		cur := active.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		defer active.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestForEachIndexedZeroItems(t *testing.T) {
	called := false
	if err := forEachIndexed(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}

// TestRunAllParallelDeterminism is the pin for the parallel runner: the
// full suite run with 8 workers must render byte-identically (text and
// CSV) to a sequential run. Every simulation owns its machine, so host
// scheduling must not leak into simulated results.
func TestRunAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq, err := RunAll(Options{Scale: smokeOpts.Scale, Parallel: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(Options{Scale: smokeOpts.Scale, Parallel: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel Render differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if s, p := seq.RenderCSV(), par.RenderCSV(); s != p {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestRunAllProgressSerialized checks the progress callback fires once per
// experiment under parallel execution (callers need not lock).
func TestRunAllProgressSerialized(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var lines []string
	_, err := RunAll(Options{Scale: smokeOpts.Scale, Parallel: 4}, func(s string) {
		lines = append(lines, s) // data race here would trip -race in make check
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 10 {
		t.Fatalf("got %d progress lines, want 10: %v", len(lines), lines)
	}
	seen := map[string]bool{}
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate progress line %q", l)
		}
		seen[l] = true
	}
}
