package bench

import (
	"testing"
)

// quickTrafficOpt keeps the grid cheap for unit tests.
func quickTrafficOpt(parallel int) Options {
	return Options{Scale: 0.125, Parallel: parallel}
}

func TestTrafficShape(t *testing.T) {
	res, err := Traffic(quickTrafficOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

// TestTrafficParallelIdentity pins the fan-out determinism contract on the
// per-tenant dump sections: every grid cell's traffic.* stats — per-tenant
// latency histograms, accounting counters, fairness summary — must be
// byte-identical whether the grid ran sequentially or across a worker
// pool. Each cell owns its whole machine, so worker scheduling must not be
// able to leak into simulated results.
func TestTrafficParallelIdentity(t *testing.T) {
	seq, err := Traffic(quickTrafficOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Traffic(quickTrafficOpt(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		s, p := seq.Rows[i], par.Rows[i]
		if s.Dump != p.Dump {
			t.Fatalf("cell %d (%d-tenant %s-loop): parallel dump section differs from sequential:\n%s",
				i, s.Tenants, s.Loop, firstDumpDiff([]byte(s.Dump), []byte(p.Dump)))
		}
		if s != p {
			t.Fatalf("cell %d rows differ beyond dumps:\n  seq: %+v\n  par: %+v", i, s, p)
		}
	}
}
