package bench

import (
	"fmt"
	"strings"

	"kindle/internal/fault"
	"kindle/internal/persist"
)

// CrashSweepRow summarizes one page-table scheme's commit-point sweep.
type CrashSweepRow struct {
	Scheme      string
	Events      uint64 // total durability events in the reference run
	Checkpoints uint64 // checkpoints started during it
	Points      int    // crash-before injection points replayed
	TornPoints  int    // torn-line injection points replayed
	Failures    int    // points whose recovery violated an invariant
}

// CrashSweepResult is the -experiment crash-sweep output: for each scheme,
// how many commit-point crash replays ran and how many recovered to an
// invariant-violating state (the published claim is zero — full process
// persistence means a power failure at *any* NVM durability event must
// recover to a consistent context).
type CrashSweepResult struct {
	Rows []CrashSweepRow
	// FailureSamples holds the first few failure messages (deterministic:
	// ordered by scheme, then injection index) for diagnosis.
	FailureSamples []string
}

// crashSweepJob is one injection point of the sweep.
type crashSweepJob struct {
	k     uint64
	torn  bool
	words int
}

// CrashSweep runs the commit-point crash-injection sweep for both schemes.
// The workload runs once per scheme under a counting-only injector to learn
// the total durability-event count E, then replays — exhaustively for small
// E, strided above the scale-derived point budget — with a power failure
// injected before the k-th commit (and, at a quarter of the points, a torn
// line with a varying 8-byte-word prefix). Replays are independent
// simulations and fan out over the worker pool.
func CrashSweep(opt Options) (*CrashSweepResult, error) {
	ops := int(256 * opt.scale())
	if ops < 16 {
		ops = 16
	}
	maxPoints := int(768 * opt.scale())
	if maxPoints < 48 {
		maxPoints = 48
	}

	res := &CrashSweepResult{}
	for _, scheme := range []persist.Scheme{persist.Rebuild, persist.Persistent} {
		cfg := persist.SweepConfig{Scheme: scheme, Ops: ops, Seed: 1}
		plan, err := persist.PlanSweep(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: crash-sweep plan (%v): %w", scheme, err)
		}

		stride := uint64(1)
		if plan.Events > uint64(maxPoints) {
			stride = (plan.Events + uint64(maxPoints) - 1) / uint64(maxPoints)
		}
		var jobs []crashSweepJob
		for k := uint64(1); k <= plan.Events; k += stride {
			jobs = append(jobs, crashSweepJob{k: k})
		}
		if jobs[len(jobs)-1].k != plan.Events {
			// Always include the final commit of the run.
			jobs = append(jobs, crashSweepJob{k: plan.Events})
		}
		points := len(jobs)
		for i := 0; i < points; i += 4 {
			k := jobs[i].k
			jobs = append(jobs, crashSweepJob{k: k, torn: true, words: int(k%7) + 1})
		}

		// Each replay owns a whole machine; failures land in by-index
		// slots so the report is independent of goroutine scheduling.
		failures := make([]string, len(jobs))
		label := func(i int) string {
			j := jobs[i]
			if j.torn {
				return fmt.Sprintf("crash-sweep/%v/torn-%dw/k=%d", scheme, j.words, j.k)
			}
			return fmt.Sprintf("crash-sweep/%v/k=%d", scheme, j.k)
		}
		if err := forEachTask(opt, len(jobs), label, func(i int) error {
			j := jobs[i]
			var inj *fault.Injector
			mode := "crash-before"
			if j.torn {
				inj = fault.NewTorn(j.k, j.words)
				mode = fmt.Sprintf("torn/%dw", j.words)
			} else {
				inj = fault.NewCrashBefore(j.k)
			}
			if err := persist.RunCrashPoint(cfg, plan, inj); err != nil {
				failures[i] = fmt.Sprintf("%v %s k=%d: %v", scheme, mode, j.k, err)
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("bench: crash-sweep (%v): %w", scheme, err)
		}

		row := CrashSweepRow{
			Scheme:      scheme.String(),
			Events:      plan.Events,
			Checkpoints: plan.Checkpoints,
			Points:      points,
			TornPoints:  len(jobs) - points,
		}
		for _, f := range failures {
			if f == "" {
				continue
			}
			row.Failures++
			if len(res.FailureSamples) < 8 {
				res.FailureSamples = append(res.FailureSamples, f)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep summary.
func (r *CrashSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Crash-injection sweep at NVM commit-point granularity\n")
	b.WriteString("Scheme      Events  Ckpts  CrashPts  TornPts  Failures\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s  %6d  %5d  %8d  %7d  %8d\n",
			row.Scheme, row.Events, row.Checkpoints, row.Points, row.TornPoints, row.Failures)
	}
	for _, f := range r.FailureSamples {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	return b.String()
}

// CheckShape: every scheme's sweep must have replayed real injection points
// across multiple checkpoints, and every point must have recovered cleanly.
func (r *CrashSweepResult) CheckShape() error {
	if len(r.Rows) != 2 {
		return fmt.Errorf("crashSweep: %d rows, want 2 schemes", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Points <= 0 || row.TornPoints <= 0 {
			return fmt.Errorf("crashSweep: %s replayed no injection points", row.Scheme)
		}
		if row.Checkpoints < 2 {
			return fmt.Errorf("crashSweep: %s spanned only %d checkpoints", row.Scheme, row.Checkpoints)
		}
		if row.Failures > 0 {
			msg := ""
			if len(r.FailureSamples) > 0 {
				msg = ": " + r.FailureSamples[0]
			}
			return fmt.Errorf("crashSweep: %s: %d of %d injection points violated recovery invariants%s",
				row.Scheme, row.Failures, row.Points+row.TornPoints, msg)
		}
	}
	return nil
}
