package bench

import (
	"fmt"
	"strings"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/traffic"
)

// trafficTenantCounts is the contention sweep of the traffic experiment:
// tenant fleets sharing one machine, from a pair to heavy time slicing.
var trafficTenantCounts = []int{2, 4, 8}

// trafficLoops is the load-generation axis: open-loop (backlog builds when
// the machine falls behind — the tail-latency regime) vs closed-loop (one
// outstanding op per tenant — the fairness regime).
var trafficLoops = []traffic.LoopKind{traffic.LoopOpen, traffic.LoopClosed}

// TrafficRow is one grid cell: a tenant-count × loop-mode run.
type TrafficRow struct {
	Tenants  int
	Loop     string
	Ops      uint64
	Mean     float64
	P50      uint64
	P95      uint64
	P99      uint64
	Jain     float64
	Switches uint64
	// Dump is the cell's traffic.* stats section — the byte-identity
	// artifact the parallel-vs-sequential test compares.
	Dump string
}

// TrafficResult is the multi-tenant fairness/tail-latency experiment.
type TrafficResult struct {
	Rows []TrafficRow
}

// trafficSpec builds the grid cell's workload: the default mixed
// point/scan/write Zipfian spec with the op budget scaled by -scale.
func trafficSpec(tenants int, loop traffic.LoopKind, opt Options) traffic.Spec {
	spec := traffic.DefaultSpec()
	spec.Tenants = tenants
	spec.Loop = loop
	spec.Ops = int(512 * opt.scale())
	if spec.Ops < 32 {
		spec.Ops = 32
	}
	return spec
}

// Traffic sweeps tenant count × loop mode on the small machine, reporting
// tail latency and Jain fairness per cell. Each cell owns its machine, so
// the fan-out is deterministic: results (including each cell's stats dump)
// are byte-identical whatever the worker count.
func Traffic(opt Options) (*TrafficResult, error) {
	type cell struct {
		tenants int
		loop    traffic.LoopKind
	}
	var cells []cell
	for _, n := range trafficTenantCounts {
		for _, loop := range trafficLoops {
			cells = append(cells, cell{n, loop})
		}
	}
	rows := make([]TrafficRow, len(cells))
	err := forEachTask(opt, len(cells),
		func(i int) string {
			return fmt.Sprintf("traffic %d-tenant %s-loop", cells[i].tenants, cells[i].loop)
		},
		func(i int) error {
			spec := trafficSpec(cells[i].tenants, cells[i].loop, opt)
			m := machine.New(machine.TestConfig())
			k := gemos.Boot(m)
			eng, err := traffic.New(k, spec)
			if err != nil {
				return err
			}
			res, err := eng.Run()
			if err != nil {
				return err
			}
			var sw uint64
			for _, t := range res.Tenants {
				sw += t.Acct.Switches
			}
			rows[i] = TrafficRow{
				Tenants:  spec.Tenants,
				Loop:     spec.Loop.String(),
				Ops:      res.Ops,
				Mean:     res.MeanLat,
				P50:      res.P50,
				P95:      res.P95,
				P99:      res.P99,
				Jain:     res.Jain,
				Switches: sw,
				Dump:     m.Stats.Dump("traffic."),
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &TrafficResult{Rows: rows}, nil
}

// Render prints the fairness/tail-latency grid.
func (r *TrafficResult) Render() string {
	var b strings.Builder
	b.WriteString("Multi-tenant traffic: tail latency and fairness vs tenant count (cycles)\n")
	fmt.Fprintf(&b, "%-8s %-7s %9s %10s %10s %10s %10s %8s %9s\n",
		"tenants", "loop", "ops", "mean", "p50", "p95", "p99", "jain", "switches")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %-7s %9d %10.0f %10d %10d %10d %8.4f %9d\n",
			row.Tenants, row.Loop, row.Ops, row.Mean, row.P50, row.P95, row.P99, row.Jain, row.Switches)
	}
	return b.String()
}

// CheckShape verifies the grid's invariants: every cell completed its full
// op budget, quantiles are ordered, fairness is a valid Jain index and
// time slicing actually happened.
func (r *TrafficResult) CheckShape() error {
	if len(r.Rows) != len(trafficTenantCounts)*len(trafficLoops) {
		return fmt.Errorf("traffic: %d rows, want %d", len(r.Rows), len(trafficTenantCounts)*len(trafficLoops))
	}
	for _, row := range r.Rows {
		if row.Ops == 0 {
			return fmt.Errorf("traffic: %d-tenant %s-loop cell completed no ops", row.Tenants, row.Loop)
		}
		if row.Ops%uint64(row.Tenants) != 0 {
			return fmt.Errorf("traffic: %d-tenant %s-loop completed %d ops, not a multiple of the tenant count",
				row.Tenants, row.Loop, row.Ops)
		}
		if !(row.P50 <= row.P95 && row.P95 <= row.P99) {
			return fmt.Errorf("traffic: %d-tenant %s-loop quantiles out of order: p50=%d p95=%d p99=%d",
				row.Tenants, row.Loop, row.P50, row.P95, row.P99)
		}
		if row.Jain <= 0 || row.Jain > 1 {
			return fmt.Errorf("traffic: %d-tenant %s-loop Jain index %v outside (0, 1]", row.Tenants, row.Loop, row.Jain)
		}
		if row.Tenants > 1 && row.Switches == 0 {
			return fmt.Errorf("traffic: %d-tenant %s-loop saw no context switches", row.Tenants, row.Loop)
		}
		if row.Dump == "" {
			return fmt.Errorf("traffic: %d-tenant %s-loop cell has an empty stats section", row.Tenants, row.Loop)
		}
	}
	return nil
}
