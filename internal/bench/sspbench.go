package bench

import (
	"fmt"
	"strings"
	"time"

	"kindle/internal/core"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// workloadImage produces the trace image for one Table II benchmark at the
// requested scale (ops scale down; data-structure footprints stay at paper
// size so cache and TLB pressure remain realistic).
func workloadImage(benchmark string, opt Options) (*trace.Image, error) {
	ops := int(float64(workloads.PaperOps) * opt.scale())
	if ops < 50_000 {
		ops = 50_000
	}
	switch benchmark {
	case core.BenchPageRank:
		cfg := workloads.DefaultPageRank()
		cfg.Ops = ops
		return workloads.PageRank(cfg)
	case core.BenchSSSP:
		cfg := workloads.DefaultSSSP()
		cfg.Ops = ops
		return workloads.SSSP(cfg)
	case core.BenchYCSB:
		cfg := workloads.DefaultYCSB()
		cfg.Ops = ops
		return workloads.YCSB(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
}

// Fig5Row is one benchmark's normalized execution times under the three
// consistency intervals.
type Fig5Row struct {
	Benchmark  string
	BaselineMs float64
	Norm       map[time.Duration]float64 // interval -> T/T_baseline
}

// Fig5Result is Figure 5: influence of the SSP memory-consistency interval
// on performance, normalized to execution with no memory consistency.
type Fig5Result struct {
	Intervals []time.Duration
	Rows      []Fig5Row
}

// Fig5 regenerates Figure 5 (intervals 1, 5, 10 ms; consolidation thread
// fixed at 1 ms). The benchmark x interval grid (plus one baseline column
// per benchmark) fans out over the worker pool; the replayer only reads
// the trace image, so all runs of a benchmark share it.
func Fig5(opt Options) (*Fig5Result, error) {
	intervals := []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond}
	benchmarks := []string{core.BenchPageRank, core.BenchSSSP, core.BenchYCSB}
	res := &Fig5Result{Intervals: intervals}

	imgs := make([]*trace.Image, len(benchmarks))
	traceLabel := func(i int) string { return "fig5/trace/" + benchmarks[i] }
	if err := forEachTask(opt, len(benchmarks), traceLabel, func(i int) error {
		var err error
		imgs[i], err = workloadImage(benchmarks[i], opt)
		return err
	}); err != nil {
		return nil, err
	}

	// Column 0 of each benchmark is the no-consistency baseline.
	cols := len(intervals) + 1
	times := make([]float64, len(benchmarks)*cols)
	label := func(idx int) string {
		bi, ci := idx/cols, idx%cols
		if ci == 0 {
			return "fig5/" + benchmarks[bi] + "/baseline"
		}
		return fmt.Sprintf("fig5/%s/%v", benchmarks[bi], intervals[ci-1])
	}
	err := forEachTask(opt, len(times), label, func(idx int) error {
		bi, ci := idx/cols, idx%cols
		if ci == 0 {
			t, err := runSSP(imgs[bi], 0, 0, opt)
			if err != nil {
				return fmt.Errorf("bench: fig5 %s baseline: %w", benchmarks[bi], err)
			}
			times[idx] = t
			return nil
		}
		t, err := runSSP(imgs[bi], intervals[ci-1], time.Millisecond, opt)
		if err != nil {
			return fmt.Errorf("bench: fig5 %s %v: %w", benchmarks[bi], intervals[ci-1], err)
		}
		times[idx] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	for bi, benchName := range benchmarks {
		row := Fig5Row{Benchmark: benchName, Norm: map[time.Duration]float64{}}
		row.BaselineMs = times[bi*cols]
		for ci, iv := range intervals {
			row.Norm[iv] = times[bi*cols+ci+1] / row.BaselineMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runSSP replays img with SSP enabled at the given consistency interval
// (zero disables SSP entirely — the baseline) and returns the execution
// time in milliseconds.
func runSSP(img *trace.Image, interval, consolidation time.Duration, opt Options) (float64, error) {
	f := core.NewDefault()
	var ctl *ssp.Controller
	if interval > 0 {
		cfg := ssp.Config{
			ConsistencyInterval:   sim.FromDuration(opt.scaleInterval(interval)),
			ConsolidationInterval: sim.FromDuration(opt.scaleInterval(consolidation)),
		}
		var err error
		ctl, err = f.EnableSSP(cfg)
		if err != nil {
			return 0, err
		}
	}
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		return 0, err
	}
	if ctl != nil {
		lo, hi := rep.NVMRange()
		ctl.Enable(lo, hi)
	}
	start := f.M.Clock.Now()
	if err := rep.Run(); err != nil {
		return 0, err
	}
	opt.Progress.AddRecords(rep.Replayed())
	if ctl != nil {
		ctl.Disable()
	}
	return (f.M.Clock.Now() - start).Millis(), nil
}

// Render prints Figure 5's series.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: SSP consistency-interval study (normalized to no consistency)\n")
	b.WriteString("Benchmark   ")
	for _, iv := range r.Intervals {
		fmt.Fprintf(&b, "%9s", iv)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s ", row.Benchmark)
		for _, iv := range r.Intervals {
			fmt.Fprintf(&b, "%8.2fx", row.Norm[iv])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CheckShape verifies Figure 5's findings: consistency always costs
// something (normalized > 1), the overhead shrinks monotonically as the
// interval widens, and the 10 ms interval cuts the overhead substantially
// versus 1 ms (paper: ~3x average reduction).
func (r *Fig5Result) CheckShape() error {
	if len(r.Rows) != 3 {
		return fmt.Errorf("fig5: want 3 benchmarks, got %d", len(r.Rows))
	}
	var totalReduction float64
	for _, row := range r.Rows {
		n1 := row.Norm[r.Intervals[0]]
		n5 := row.Norm[r.Intervals[1]]
		n10 := row.Norm[r.Intervals[2]]
		if n1 <= 1 || n5 <= 1 || n10 <= 1 {
			return fmt.Errorf("fig5: %s has normalized time <= 1 (%.3f %.3f %.3f)",
				row.Benchmark, n1, n5, n10)
		}
		if !(n1 > n5 && n5 > n10) {
			return fmt.Errorf("fig5: %s overhead not monotone in interval (%.3f %.3f %.3f)",
				row.Benchmark, n1, n5, n10)
		}
		totalReduction += (n1 - 1) / (n10 - 1)
	}
	if avg := totalReduction / float64(len(r.Rows)); avg < 1.5 {
		return fmt.Errorf("fig5: average overhead reduction 1ms→10ms only %.2fx", avg)
	}
	return nil
}
