package bench

import (
	"fmt"
	"strings"

	"kindle/internal/core"
	"kindle/internal/hscc"
	"kindle/internal/sim"
	"kindle/internal/trace"
	"time"
)

// hsccThresholds are the DRAM fetch thresholds of the paper's study.
var hsccThresholds = []uint32{5, 25, 50}

// hsccRun is the measured outcome of one (benchmark, threshold, mode) run.
type hsccRun struct {
	execMs         float64
	pagesMigrated  uint64
	selectionCycle uint64
	copyCycle      uint64
}

// runHSCC replays img with HSCC at the given threshold. chargeOS selects
// whether OS migration activities cost simulated time (false = the
// hardware-only baseline of Fig. 6).
func runHSCC(img *trace.Image, threshold uint32, chargeOS bool, opt Options) (hsccRun, error) {
	f := core.NewDefault()
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		return hsccRun{}, err
	}
	cfg := hscc.DefaultConfig()
	cfg.FetchThreshold = threshold
	cfg.ChargeOSTime = chargeOS
	// Fixed regardless of opt.Scale: the access-count regime depends on
	// memory operations per interval, and the replayer's op rate per
	// simulated millisecond is scale-invariant.
	cfg.MigrationInterval = sim.FromDuration(hsccMigrationInterval / hsccTimeCompression)
	ctl, err := f.EnableHSCC(p, cfg)
	if err != nil {
		return hsccRun{}, err
	}
	ctl.Start()
	start := f.M.Clock.Now()
	if err := rep.Run(); err != nil {
		return hsccRun{}, err
	}
	opt.Progress.AddRecords(rep.Replayed())
	ctl.Stop()
	return hsccRun{
		execMs:         (f.M.Clock.Now() - start).Millis(),
		pagesMigrated:  f.M.Stats.Get("hscc.pages_migrated"),
		selectionCycle: f.M.Stats.Get("hscc.page_selection_cycles"),
		copyCycle:      f.M.Stats.Get("hscc.page_copy_cycles"),
	}, nil
}

// hsccMigrationInterval is 31.25 ms (10^8 cycles in the HSCC paper).
const hsccMigrationInterval = 31250 * time.Microsecond

// hsccTimeCompression compensates for trace-time compression: Kindle's
// replayer charges ~2 cycles of compute per trace period, while the
// paper's gem5 executes every instruction of the application between
// memory operations, so a fixed wall-clock migration interval covers ~16x
// more memory operations here than there. Dividing the interval restores
// the paper's regime of per-page access counts per interval relative to
// the 5/25/50 fetch thresholds. See EXPERIMENTS.md.
const hsccTimeCompression = 16

// hsccStudy runs the full benchmark x threshold matrix once and shares the
// results across Table V, Fig. 6 and Table VI (the paper's three artifacts
// come from the same runs).
type hsccStudy struct {
	benchmarks []string
	withOS     map[string]map[uint32]hsccRun
	hwOnly     map[string]map[uint32]hsccRun
}

// runHSCCStudy runs the benchmark x threshold x {OS-charged, HW-only}
// grid over the worker pool. Each of the 18 runs owns its machine; the
// trace image of a benchmark is shared read-only across its six runs.
func runHSCCStudy(opt Options) (*hsccStudy, error) {
	st := &hsccStudy{
		benchmarks: []string{core.BenchPageRank, core.BenchSSSP, core.BenchYCSB},
		withOS:     map[string]map[uint32]hsccRun{},
		hwOnly:     map[string]map[uint32]hsccRun{},
	}
	imgs := make([]*trace.Image, len(st.benchmarks))
	traceLabel := func(i int) string { return "hscc/trace/" + st.benchmarks[i] }
	if err := forEachTask(opt, len(st.benchmarks), traceLabel, func(i int) error {
		var err error
		imgs[i], err = workloadImage(st.benchmarks[i], opt)
		return err
	}); err != nil {
		return nil, err
	}

	// Even index = OS time charged, odd = hardware-only baseline.
	runs := make([]hsccRun, len(st.benchmarks)*len(hsccThresholds)*2)
	label := func(idx int) string {
		cell := idx / 2
		l := fmt.Sprintf("hscc/%s/th-%d",
			st.benchmarks[cell/len(hsccThresholds)], hsccThresholds[cell%len(hsccThresholds)])
		if idx%2 != 0 {
			l += "/hw-only"
		}
		return l
	}
	err := forEachTask(opt, len(runs), label, func(idx int) error {
		cell, chargeOS := idx/2, idx%2 == 0
		bi, ti := cell/len(hsccThresholds), cell%len(hsccThresholds)
		r, err := runHSCC(imgs[bi], hsccThresholds[ti], chargeOS, opt)
		if err != nil {
			suffix := ""
			if !chargeOS {
				suffix = " hw-only"
			}
			return fmt.Errorf("bench: hscc %s th-%d%s: %w",
				st.benchmarks[bi], hsccThresholds[ti], suffix, err)
		}
		runs[idx] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	for bi, b := range st.benchmarks {
		st.withOS[b] = map[uint32]hsccRun{}
		st.hwOnly[b] = map[uint32]hsccRun{}
		for ti, th := range hsccThresholds {
			cell := bi*len(hsccThresholds) + ti
			st.withOS[b][th] = runs[cell*2]
			st.hwOnly[b][th] = runs[cell*2+1]
		}
	}
	return st, nil
}

// TableVResult is Table V: number of pages migrated per benchmark and
// fetch threshold.
type TableVResult struct {
	Benchmarks []string
	Thresholds []uint32
	Migrated   map[string]map[uint32]uint64
}

// Fig6Result is Figure 6: execution time with OS+HW migration normalized
// to HW-only migration, per threshold.
type Fig6Result struct {
	Benchmarks []string
	Thresholds []uint32
	Norm       map[string]map[uint32]float64
}

// TableVIResult is Table VI: the split of OS migration time between page
// selection and page copy.
type TableVIResult struct {
	Benchmarks []string
	Thresholds []uint32
	SelectPct  map[string]map[uint32]float64
	CopyPct    map[string]map[uint32]float64
}

// HSCCAll regenerates Table V, Figure 6 and Table VI from one study run.
func HSCCAll(opt Options) (*TableVResult, *Fig6Result, *TableVIResult, error) {
	st, err := runHSCCStudy(opt)
	if err != nil {
		return nil, nil, nil, err
	}
	tv := &TableVResult{Benchmarks: st.benchmarks, Thresholds: hsccThresholds, Migrated: map[string]map[uint32]uint64{}}
	f6 := &Fig6Result{Benchmarks: st.benchmarks, Thresholds: hsccThresholds, Norm: map[string]map[uint32]float64{}}
	t6 := &TableVIResult{Benchmarks: st.benchmarks, Thresholds: hsccThresholds,
		SelectPct: map[string]map[uint32]float64{}, CopyPct: map[string]map[uint32]float64{}}
	for _, b := range st.benchmarks {
		tv.Migrated[b] = map[uint32]uint64{}
		f6.Norm[b] = map[uint32]float64{}
		t6.SelectPct[b] = map[uint32]float64{}
		t6.CopyPct[b] = map[uint32]float64{}
		for _, th := range hsccThresholds {
			on, off := st.withOS[b][th], st.hwOnly[b][th]
			tv.Migrated[b][th] = on.pagesMigrated
			if off.execMs > 0 {
				f6.Norm[b][th] = on.execMs / off.execMs
			}
			if total := on.selectionCycle + on.copyCycle; total > 0 {
				t6.SelectPct[b][th] = 100 * float64(on.selectionCycle) / float64(total)
				t6.CopyPct[b][th] = 100 * float64(on.copyCycle) / float64(total)
			}
		}
	}
	return tv, f6, t6, nil
}

// Render prints Table V.
func (r *TableVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table V: number of pages migrated\n")
	b.WriteString("Benchmark   ")
	for _, th := range r.Thresholds {
		fmt.Fprintf(&b, "   Th-%-3d", th)
	}
	b.WriteString("\n")
	for _, bn := range r.Benchmarks {
		fmt.Fprintf(&b, "%-11s ", bn)
		for _, th := range r.Thresholds {
			fmt.Fprintf(&b, "%8d", r.Migrated[bn][th])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CheckShape verifies Table V: migrations fall sharply as the threshold
// rises for every benchmark (paper: Ycsb_mem ~13x fewer at Th-25, ~101x
// fewer at Th-50 vs Th-5).
func (r *TableVResult) CheckShape() error {
	for _, bn := range r.Benchmarks {
		m5, m25, m50 := r.Migrated[bn][5], r.Migrated[bn][25], r.Migrated[bn][50]
		if m5 == 0 {
			return fmt.Errorf("tableV: %s migrated nothing at Th-5", bn)
		}
		if !(m5 >= m25 && m25 >= m50) {
			return fmt.Errorf("tableV: %s migrations not decreasing (%d, %d, %d)", bn, m5, m25, m50)
		}
		if m5 < 2*m50 {
			return fmt.Errorf("tableV: %s Th-5 (%d) not sharply above Th-50 (%d)", bn, m5, m50)
		}
	}
	return nil
}

// Render prints Figure 6's series.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: OS migration overhead (normalized to HW-only migration)\n")
	b.WriteString("Benchmark   ")
	for _, th := range r.Thresholds {
		fmt.Fprintf(&b, "   Th-%-3d", th)
	}
	b.WriteString("\n")
	for _, bn := range r.Benchmarks {
		fmt.Fprintf(&b, "%-11s ", bn)
		for _, th := range r.Thresholds {
			fmt.Fprintf(&b, "%7.2fx", r.Norm[bn][th])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CheckShape verifies Figure 6's headline findings: OS activities always
// cost something (normalized > 1 — the insight a user-level simulator like
// ZSim cannot show), and the overhead falls as the threshold rises (fewer
// candidate pages migrate). The paper's secondary observation that
// Gapbs_pr shows the minimum overhead depends on its workload's exact
// locality at their scale and is reported, not asserted (see
// EXPERIMENTS.md).
func (r *Fig6Result) CheckShape() error {
	for _, bn := range r.Benchmarks {
		n5, n25, n50 := r.Norm[bn][5], r.Norm[bn][25], r.Norm[bn][50]
		if n5 <= 1 {
			return fmt.Errorf("fig6: %s shows no OS overhead at Th-5 (%.3f)", bn, n5)
		}
		if !(n5 >= n25 && n25 >= n50) {
			return fmt.Errorf("fig6: %s overhead not falling with threshold (%.3f %.3f %.3f)",
				bn, n5, n25, n50)
		}
	}
	return nil
}

// Render prints Table VI.
func (r *TableVIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table VI: share of OS migration time (page selection vs page copy)\n")
	b.WriteString("Benchmark   Threshold  Selection(%)  Copy(%)\n")
	for _, bn := range r.Benchmarks {
		for _, th := range r.Thresholds {
			fmt.Fprintf(&b, "%-11s  Th-%-6d %12.2f %8.2f\n",
				bn, th, r.SelectPct[bn][th], r.CopyPct[bn][th])
		}
	}
	return b.String()
}

// CheckShape verifies Table VI: page copy dominates OS migration time
// everywhere (paper: 62.65%–98.63%).
func (r *TableVIResult) CheckShape() error {
	for _, bn := range r.Benchmarks {
		for _, th := range r.Thresholds {
			cp := r.CopyPct[bn][th]
			sel := r.SelectPct[bn][th]
			if cp == 0 && sel == 0 {
				continue // no migrations at this threshold in a scaled run
			}
			if cp < 50 {
				return fmt.Errorf("tableVI: %s Th-%d copy share only %.1f%%", bn, th, cp)
			}
		}
	}
	return nil
}
