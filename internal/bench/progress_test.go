package bench

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for Tracker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTrackerSnapshotAndETA pins the ETA arithmetic: average completed-task
// duration times remaining tasks, divided across the worker pool.
func TestTrackerSnapshotAndETA(t *testing.T) {
	clk := &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	tr := newTrackerAt(clk.now)
	tr.SetWorkers(2)
	tr.AddTasks(8)
	tr.ExperimentStarted("Figure 4a")

	if s := tr.Snapshot(); s.ETASec != -1 {
		t.Fatalf("ETA before any completion = %v, want -1", s.ETASec)
	}

	// Two tasks of 10s each -> avg 10s; 6 remain over 2 workers -> 30s.
	for i := 0; i < 2; i++ {
		id := tr.taskStarted("fig4a/64MB/persistent")
		clk.advance(10 * time.Second)
		tr.taskFinished(id)
	}
	tr.AddRecords(1000)
	tr.AddRecords(500)
	id := tr.taskStarted("fig4a/128MB/rebuild")
	s := tr.Snapshot()
	if s.TasksDone != 2 || s.TasksPlanned != 8 {
		t.Fatalf("tasks = %d/%d, want 2/8", s.TasksDone, s.TasksPlanned)
	}
	if s.Fraction != 0.25 {
		t.Fatalf("fraction = %v", s.Fraction)
	}
	if s.ETASec != 30 {
		t.Fatalf("ETA = %v, want 30", s.ETASec)
	}
	if s.RecordsReplayed != 1500 {
		t.Fatalf("records = %d", s.RecordsReplayed)
	}
	if len(s.Active) != 1 || s.Active[0].Label != "fig4a/128MB/rebuild" {
		t.Fatalf("active = %+v", s.Active)
	}
	if len(s.Experiments) != 1 || s.Experiments[0].State != "running" {
		t.Fatalf("experiments = %+v", s.Experiments)
	}
	if s.StartedUTC != "2026-01-02T03:04:05Z" {
		t.Fatalf("started = %q", s.StartedUTC)
	}

	// Finish everything: fraction 1, ETA 0, experiment done.
	tr.taskFinished(id)
	for i := 0; i < 5; i++ {
		tr.taskFinished(tr.taskStarted("x"))
	}
	tr.ExperimentFinished("Figure 4a")
	s = tr.Snapshot()
	if s.Fraction != 1 || s.ETASec != 0 {
		t.Fatalf("final fraction/ETA = %v/%v", s.Fraction, s.ETASec)
	}
	if s.Experiments[0].State != "done" {
		t.Fatalf("experiment state = %q", s.Experiments[0].State)
	}
	if g := tr.Gauges(); g["kindle_bench_fraction"] != 1 || g["kindle_bench_records_replayed"] != 1500 {
		t.Fatalf("gauges = %v", g)
	}
}

// TestTrackerETAMonotoneOutOfOrder is the satellite pin for out-of-order
// completions under -parallel: tasks started together but finishing in
// shuffled order (short ones first, a long straggler late) must never make
// the reported ETA climb — a late long task folds into the average and
// would otherwise raise the raw estimate mid-run.
func TestTrackerETAMonotoneOutOfOrder(t *testing.T) {
	clk := &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	tr := newTrackerAt(clk.now)
	tr.SetWorkers(1)
	tr.AddTasks(12)

	// Six tasks start together; they complete in shuffled order with wildly
	// different durations (the straggler last), snapshotting after each.
	ids := make([]int, 6)
	for i := range ids {
		ids[i] = tr.taskStarted("task")
	}
	finishOrder := []int{2, 0, 5, 1, 4, 3}
	durs := []time.Duration{ // indexed by finish order: straggler at the end
		1 * time.Second, 1 * time.Second, 2 * time.Second,
		1 * time.Second, 2 * time.Second, 60 * time.Second,
	}
	last := -1.0
	elapsed := time.Duration(0)
	for step, which := range finishOrder {
		d := durs[step] - elapsed // advance to this task's absolute finish time
		if d > 0 {
			clk.advance(d)
			elapsed += d
		}
		tr.taskFinished(ids[which])
		s := tr.Snapshot()
		if s.ETASec <= 0 {
			t.Fatalf("step %d: ETA = %v, want > 0 with %d tasks remaining", step, s.ETASec, 12-step-1)
		}
		if last >= 0 && s.ETASec > last {
			t.Fatalf("step %d: ETA rose %.1fs -> %.1fs after a completion", step, last, s.ETASec)
		}
		last = s.ETASec
	}

	// New planned work resets the cap: the ETA may legitimately rise.
	tr.AddTasks(100)
	if s := tr.Snapshot(); s.ETASec <= last {
		t.Fatalf("ETA after AddTasks = %v, want > %v (cap must reset)", s.ETASec, last)
	}
}

// TestTrackerNilSafe: a nil tracker is a no-op everywhere, so call sites
// need no guards.
func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.SetWorkers(4)
	tr.AddTasks(10)
	tr.AddRecords(10)
	tr.ExperimentStarted("x")
	tr.ExperimentFinished("x")
	tr.taskFinished(tr.taskStarted("y"))
	if s := tr.Snapshot(); s.TasksPlanned != 0 || s.ETASec != -1 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestForEachTaskTracksAndDelegates: every index runs once, completions are
// counted even on error paths, and labels surface while tasks are active.
func TestForEachTaskTracksAndDelegates(t *testing.T) {
	tr := NewTracker()
	opt := Options{Parallel: 2, Progress: tr}
	boom := errors.New("boom")
	ran := make([]bool, 6)
	var mu sync.Mutex
	err := forEachTask(opt, len(ran), func(i int) string { return "job" }, func(i int) error {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 1 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("index %d never ran", i)
		}
	}
	s := tr.Snapshot()
	if s.TasksDone != 6 || s.TasksPlanned != 6 || s.Fraction != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Workers != 2 {
		t.Fatalf("workers = %d", s.Workers)
	}

	// Without a tracker it is plain forEachIndexed.
	n := 0
	if err := forEachTask(Options{Parallel: 1}, 3, func(int) string { return "" }, func(int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ran %d of 3 without tracker", n)
	}
}

// TestTrackerLine pins the stderr progress line's shape.
func TestTrackerLine(t *testing.T) {
	s := TrackerSnapshot{TasksDone: 3, TasksPlanned: 12, Fraction: 0.25, ETASec: 90,
		RecordsReplayed: 4096,
		Experiments: []ExperimentStatus{
			{Name: "Figure 5", State: "running"},
			{Name: "Table I", State: "done"},
		}}
	if got, want := s.Line(), " 25% (3/12 tasks, 4096 records, eta 1m30s)  [Figure 5]"; got != want {
		t.Fatalf("Line() = %q, want %q", got, want)
	}
	empty := TrackerSnapshot{ETASec: -1}
	if got, want := empty.Line(), "  0% (0/0 tasks, 0 records, eta --)"; got != want {
		t.Fatalf("Line() = %q, want %q", got, want)
	}
}

// TestIntervalsParallelByteIdentical is the satellite pin for interval
// stats under the parallel runner: the interval-stats experiment run with
// many workers (and with concurrent sibling simulations in flight) renders
// byte-identically to a sequential run — the per-machine clocks and stats
// are fully isolated, so host scheduling cannot skew dump windows.
func TestIntervalsParallelByteIdentical(t *testing.T) {
	opt := Options{Scale: smokeOpts.Scale, Parallel: 1}
	seq, err := Intervals(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render()

	// Eight concurrent replicas under a shared worker pool, racing each
	// other for host CPU, each with a live progress tracker attached.
	const replicas = 8
	par := Options{Scale: smokeOpts.Scale, Parallel: replicas, Progress: NewTracker()}
	outs := make([]string, replicas)
	if err := forEachTask(par, replicas, func(i int) string { return "intervals" }, func(i int) error {
		r, err := Intervals(par)
		if err != nil {
			return err
		}
		outs[i] = r.Render()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range outs {
		if got != want {
			t.Errorf("replica %d differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, want, got)
		}
	}
	if s := par.Progress.Snapshot(); s.TasksDone != replicas {
		t.Fatalf("tracker saw %d tasks, want %d", s.TasksDone, replicas)
	}
}
