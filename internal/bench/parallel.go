package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves Options.Parallel: values <= 0 mean one worker per
// available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed runs fn(0..n-1) across a pool of at most workers
// goroutines. Each index runs exactly once and must write only to its own
// result slot, which is what makes the fan-out deterministic: results are
// assembled by index afterwards, never in completion order.
//
// Every index runs even when another fails (simulations have no shared
// state to corrupt); the returned error is the lowest-index failure, so
// the outcome is independent of goroutine scheduling.
// forEachTask is forEachIndexed plus progress accounting: the n grid cells
// are registered with opt.Progress up front, and each one is tracked
// (label, wall-clock duration) while it runs — the feed behind /progress
// and the live ETA. Grid fan-outs should prefer this over forEachIndexed
// whenever the indices are meaningful units of work; with no Tracker
// attached it degenerates to forEachIndexed.
func forEachTask(opt Options, n int, label func(i int) string, fn func(i int) error) error {
	tr := opt.Progress
	tr.AddTasks(n)
	tr.SetWorkers(opt.workers())
	return forEachIndexed(opt.workers(), n, func(i int) error {
		id := tr.taskStarted(label(i))
		defer tr.taskFinished(id)
		return fn(i)
	})
}

func forEachIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
