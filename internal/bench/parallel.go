package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves Options.Parallel: values <= 0 mean one worker per
// available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed runs fn(0..n-1) across a pool of at most workers
// goroutines. Each index runs exactly once and must write only to its own
// result slot, which is what makes the fan-out deterministic: results are
// assembled by index afterwards, never in completion order.
//
// Every index runs even when another fails (simulations have no shared
// state to corrupt); the returned error is the lowest-index failure, so
// the outcome is independent of goroutine scheduling.
func forEachIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
