package bench

import (
	"fmt"
	"strings"

	"kindle/internal/core"
	"kindle/internal/trace"
)

// ImageSizeRow is one benchmark's on-disk image size in both formats.
type ImageSizeRow struct {
	Benchmark string
	Records   int
	V1Bytes   int64
	V2Bytes   int64
}

// ImageSizesResult compares the flat v1 disk images against the chunked
// compressed v2 format (not a paper table; added with the streaming trace
// pipeline).
type ImageSizesResult struct {
	Rows []ImageSizeRow
}

// countWriter discards the stream and counts its length, so the size
// comparison never materializes an encoded image.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// ImageSizes traces each Table II benchmark at the requested scale and
// encodes it in both formats, reporting the sizes.
func ImageSizes(opt Options) (*ImageSizesResult, error) {
	benchmarks := []string{core.BenchPageRank, core.BenchSSSP, core.BenchYCSB}
	res := &ImageSizesResult{Rows: make([]ImageSizeRow, len(benchmarks))}
	label := func(i int) string { return "image-sizes/" + benchmarks[i] }
	err := forEachTask(opt, len(benchmarks), label, func(i int) error {
		img, err := workloadImage(benchmarks[i], opt)
		if err != nil {
			return err
		}
		var v1, v2 countWriter
		if err := trace.Encode(&v1, img); err != nil {
			return err
		}
		if err := trace.EncodeV2(&v2, img, trace.StreamOptions{}); err != nil {
			return err
		}
		res.Rows[i] = ImageSizeRow{
			Benchmark: benchmarks[i],
			Records:   len(img.Records),
			V1Bytes:   v1.n,
			V2Bytes:   v2.n,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the size comparison.
func (r *ImageSizesResult) Render() string {
	var b strings.Builder
	b.WriteString("Disk image sizes: v1 (flat) vs v2 (chunked+compressed)\n")
	b.WriteString("Benchmark      Records    v1 KiB    v2 KiB   ratio\n")
	for _, row := range r.Rows {
		ratio := float64(row.V1Bytes) / float64(row.V2Bytes)
		fmt.Fprintf(&b, "%-11s %10d %9d %9d %6.1fx\n",
			row.Benchmark, row.Records, row.V1Bytes/1024, row.V2Bytes/1024, ratio)
	}
	return b.String()
}

// CheckShape verifies v2 actually shrinks every image (the format's whole
// point) — at least 2x on these traces.
func (r *ImageSizesResult) CheckShape() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("imageSizes: no rows")
	}
	for _, row := range r.Rows {
		if row.V2Bytes <= 0 || row.V1Bytes <= 0 {
			return fmt.Errorf("imageSizes: %s has empty encoding", row.Benchmark)
		}
		if float64(row.V1Bytes) < 2*float64(row.V2Bytes) {
			return fmt.Errorf("imageSizes: %s v2 %d B not ≥2x smaller than v1 %d B",
				row.Benchmark, row.V2Bytes, row.V1Bytes)
		}
	}
	return nil
}
